// The registry of firmware images cheriot_lint can analyze: every example
// and test image shipped in the repo, rebuilt structure-only (entry points
// are no-ops; the linter never runs guest code). Keeping the registry next
// to the CLI means "lint every image we ship" is one --all invocation, which
// is exactly what the CI lint gate runs.
#ifndef TOOLS_LINT_TARGETS_H_
#define TOOLS_LINT_TARGETS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/firmware/image.h"

namespace cheriot::tools {

struct LintTarget {
  std::string name;         // CLI name, e.g. "iot-mqtt-app"
  std::string description;  // one line for --list-targets
  std::function<FirmwareImage()> build;
};

// All shipped images, sorted by name.
const std::vector<LintTarget>& LintTargets();

// nullptr when unknown.
const LintTarget* FindLintTarget(const std::string& name);

}  // namespace cheriot::tools

#endif  // TOOLS_LINT_TARGETS_H_

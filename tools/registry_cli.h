// Shared scaffolding for the registry-driven CLIs (cheriot_trace,
// cheriot_health, cheriot_flow, cheriot_mc, cheriot_cov): the target
// selection flags, the --all expansion against the image registry, artifact
// writing, and the standard per-target run loop with its exit-code contract
// (0 ok, 1 a check failed, 2 usage or load failure). Each tool keeps its own
// option struct and Usage() text; this header only owns what every tool
// repeats verbatim.
#ifndef TOOLS_REGISTRY_CLI_H_
#define TOOLS_REGISTRY_CLI_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "tools/lint_targets.h"

namespace cheriot::tools {

class RegistryCli {
 public:
  explicit RegistryCli(std::string tool) : tool_(std::move(tool)) {}

  // Consumes the target-selection flags every registry CLI shares:
  // --list-targets, --all and --target=NAME[,NAME...]. Returns true when
  // `arg` was one of them; the tool's own flag parsing handles the rest.
  bool ParseTargetFlag(const std::string& arg);

  // The standard per-target loop. Handles --list-targets (prints the
  // registry, exit 0), expands --all, rejects an empty selection (prints
  // `usage` to stderr, exit 2) and unknown names (exit 2), and wraps each
  // run_target call in the shared try/catch (an exception is a load
  // failure, exit 2). run_target returning false marks a check failure;
  // the loop still visits every target and then exits 1.
  int Run(const std::function<bool(const LintTarget&)>& run_target,
          const std::function<void(std::FILE*)>& usage) const;

  // Additional (seeded) images resolvable by --target= and shown by
  // --list-targets, on top of the shipped registry. --all stays
  // registry-only: seeded true positives are opt-in.
  void AddExtraTargets(const std::vector<LintTarget>* extra) {
    extra_ = extra;
  }

  const std::string& tool() const { return tool_; }
  bool list_requested() const { return list_; }

 private:
  std::string tool_;
  std::vector<std::string> targets_;
  const std::vector<LintTarget>* extra_ = nullptr;
  bool all_ = false;
  bool list_ = false;
};

// "a,b,c" -> {"a", "b", "c"}; empty items are dropped.
std::vector<std::string> SplitCsv(const std::string& s);

// Writes text (or bytes) to `path`; on failure prints
// "<tool>: cannot write <path>" to stderr and returns false.
bool WriteArtifact(const std::string& tool, const std::string& path,
                   const std::string& text);
bool WriteArtifact(const std::string& tool, const std::string& path,
                   const std::vector<uint8_t>& bytes);

}  // namespace cheriot::tools

#endif  // TOOLS_REGISTRY_CLI_H_

// cheriot_mc: systematic concurrency exploration over a firmware image
// (src/mc/explorer.h). Boots the image once, snapshots the board, then
// explores the schedule space by restore-and-replay under a recording
// arbiter — quantum preemptions, IRQ delivery slots, futex wake order,
// multiwaiter completion order and (with --inject-faults) allocation
// failures and NIC frame loss are all branch points. Partial-order
// reduction prunes preemptions whose footprints cannot conflict. Failing
// schedules are reported with a minimal reproduction recipe (the frontier
// is explored in non-default-choice order, so the first hit is minimal).
//
// Targets come from the shipped-image registry (tools/lint_targets.h) plus
// the seeded-bug images (tools/mc_targets.h): the CI mc-images job runs the
// shipped set expecting clean and the seeded set expecting failures.
//
// Per-target artifact: mc_<name>.json — byte-stable (integers only, sorted
// keys), so reports diff cleanly across runs and machines.
//
// Exit codes: 0 all targets clean, 1 at least one failure found, 2 usage
// or load failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/mc/explorer.h"
#include "tools/mc_targets.h"

using namespace cheriot;
using cheriot::tools::FindMcTarget;
using cheriot::tools::LintTargets;
using cheriot::tools::McSeededTargets;

namespace {

struct CliOptions {
  std::vector<std::string> targets;
  bool all = false;            // all shipped images (not the seeded ones)
  bool list = false;
  mc::McOptions mc;
  std::string out_dir = ".";
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_mc [--all | --target=NAME[,NAME...]]"
               " [options]\n"
               "\n"
               "  --list-targets      list firmware images (shipped + seeded)\n"
               "  --all               explore every shipped image\n"
               "  --target=NAME       explore one image (repeatable; seeded\n"
               "                      bug images are addressed by name)\n"
               "  --max-schedules=N   schedule budget per image (default "
               "256)\n"
               "  --preempt-bound=K   max non-default preemption choices per\n"
               "                      schedule (default 2)\n"
               "  --inject-faults     also branch on allocation failure and\n"
               "                      NIC frame loss\n"
               "  --cycles=N          guest cycles per schedule (default "
               "2000000)\n"
               "  --out-dir=DIR       where to write mc_<name>.json "
               "(default .)\n");
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cheriot_mc: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

// Runs one target; returns false when the explorer found failures.
bool RunTarget(const tools::LintTarget& target, const CliOptions& opts) {
  const mc::McReport report = mc::Explore(target.name, target.build, opts.mc);
  const std::string path = opts.out_dir + "/mc_" + target.name + ".json";
  if (!WriteFile(path, report.ToJson().Dump(2) + "\n")) {
    return false;
  }
  std::printf("%-26s %4d schedules %3d branch points %3d%% pruned  %s\n",
              target.name.c_str(), report.schedules_explored,
              report.branch_points, report.pruned_pct(),
              report.clean() ? "clean" : "FAILURES");
  for (const auto& f : report.failures) {
    std::printf("  [%s] schedule %d (%zu forced choice%s): %s\n",
                f.kind.c_str(), f.schedule, f.repro.size(),
                f.repro.size() == 1 ? "" : "s", f.detail.c_str());
    for (const auto& r : f.repro) {
      std::printf("    force decision %d (%s, subject %u) -> choice %d\n",
                  r.index, DecisionKindName(r.kind), r.subject, r.chosen);
    }
  }
  return report.clean();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-targets") {
      opts.list = true;
    } else if (arg == "--all") {
      opts.all = true;
    } else if (arg == "--inject-faults") {
      opts.mc.inject_faults = true;
    } else if (const char* v = value("--target=")) {
      for (auto& t : SplitCsv(v)) {
        opts.targets.push_back(t);
      }
    } else if (const char* v = value("--max-schedules=")) {
      opts.mc.max_schedules = std::atoi(v);
    } else if (const char* v = value("--preempt-bound=")) {
      opts.mc.preempt_bound = std::atoi(v);
    } else if (const char* v = value("--cycles=")) {
      opts.mc.cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out-dir=")) {
      opts.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_mc: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  if (opts.list) {
    for (const auto& t : LintTargets()) {
      std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
    }
    for (const auto& t : McSeededTargets()) {
      std::printf("%-26s [seeded bug] %s\n", t.name.c_str(),
                  t.description.c_str());
    }
    return 0;
  }
  if (opts.all) {
    for (const auto& t : LintTargets()) {
      opts.targets.push_back(t.name);
    }
  }
  if (opts.targets.empty()) {
    Usage(stderr);
    return 2;
  }

  bool clean = true;
  for (const auto& name : opts.targets) {
    const tools::LintTarget* t = FindMcTarget(name);
    if (t == nullptr) {
      std::fprintf(stderr,
                   "cheriot_mc: unknown target '%s' (--list-targets)\n",
                   name.c_str());
      return 2;
    }
    try {
      clean = RunTarget(*t, opts) && clean;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cheriot_mc: %s failed: %s\n", name.c_str(),
                   e.what());
      return 2;
    }
  }
  return clean ? 0 : 1;
}

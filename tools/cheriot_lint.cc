// cheriot_lint: pre-boot static analysis over firmware audit reports.
//
// Loads one or more firmware images (or a report JSON from disk), builds the
// authority graph and runs the CL001..CL008 lint passes. Findings can be
// diffed against checked-in baselines so CI fails only on regressions:
// error-level findings always fail; warnings/info not present in the
// baseline are printed as NEW but do not fail the build.
//
// Exit codes: 0 clean (or only baselined/new non-error findings),
//             1 error-level findings present,
//             2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/audit/report.h"
#include "src/json/json.h"
#include "src/kernel/system.h"
#include "src/rtos.h"
#include "tools/cov_targets.h"
#include "tools/lint_targets.h"

using namespace cheriot;
using cheriot::tools::FindLintTarget;
using cheriot::tools::LintTargets;

namespace {

struct CliOptions {
  std::vector<std::string> targets;
  std::vector<std::string> report_files;
  bool all = false;
  bool list = false;
  bool json_format = false;
  bool fix_suggestions = false;
  bool update_baselines = false;
  std::string baseline_file;  // single-image baseline
  std::string baseline_dir;   // per-image baselines: DIR/<name>.json
  std::string coverage_file;  // CL010 evidence: a cheriot_cov export
  analysis::LintOptions lint;
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_lint [--all | --target=NAME[,NAME...] |"
               " --report=FILE]\n"
               "                    [options]\n"
               "\n"
               "  --list-targets        list the built-in firmware images\n"
               "  --all                 lint every built-in image\n"
               "  --target=NAME         lint one built-in image (repeatable)\n"
               "  --report=FILE         lint an audit-report JSON from disk\n"
               "  --format=text|json    output format (default text)\n"
               "  --restrict-mmio=A,B   devices only direct importers may\n"
               "                        reach; transitive paths are CL003\n"
               "  --baseline=FILE       known-findings baseline (one image)\n"
               "  --baseline-dir=DIR    per-image baselines, DIR/<name>.json\n"
               "  --update-baselines    rewrite DIR/<name>.json instead of\n"
               "                        checking (requires --baseline-dir)\n"
               "  --fix-suggestions     print the exact ImageBuilder call to\n"
               "                        delete for fixable findings\n"
               "  --coverage=FILE       cheriot_cov export used as dynamic\n"
               "                        evidence by rule CL010\n"
               "                        (unused-authority); without it the\n"
               "                        rule is silent\n");
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Identity of a finding for baseline matching. The path is deliberately not
// part of the key: a refactor that reroutes an authority path but keeps the
// same finding should not churn baselines.
std::string FindingKey(const std::string& rule, const std::string& subject,
                       const std::string& message) {
  return rule + "\x1f" + subject + "\x1f" + message;
}

std::set<std::string> LoadBaseline(const std::string& path, bool* ok) {
  std::set<std::string> keys;
  std::string text;
  *ok = ReadFile(path, &text);
  if (!*ok) {
    return keys;
  }
  try {
    const json::Value doc = json::Parse(text);
    const json::Value& findings = doc["findings"];
    for (size_t i = 0; i < findings.size(); ++i) {
      const json::Value& f = findings[i];
      keys.insert(FindingKey(f["rule"].AsString(), f["subject"].AsString(),
                             f["message"].AsString()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cheriot_lint: bad baseline %s: %s\n", path.c_str(),
                 e.what());
    *ok = false;
  }
  return keys;
}

struct ImageResult {
  std::string name;
  std::vector<analysis::Finding> findings;
  json::Value json;        // FindingsToJson document
  bool has_errors = false;
  int new_findings = 0;    // non-baselined, when a baseline was loaded
};

// Boots the image far enough to produce the linker report. Boot() runs the
// loader and TCB init only — no guest code executes.
json::Value ReportForTarget(const tools::LintTarget& target) {
  Machine machine;
  System sys(machine, target.build());
  sys.Boot();
  return audit::BuildReport(sys.boot());
}

ImageResult LintOne(const std::string& name, const json::Value& report,
                    const CliOptions& opts) {
  ImageResult r;
  r.name = name;
  r.findings = analysis::RunLints(report, opts.lint);
  r.json = analysis::FindingsToJson(report, r.findings);
  r.has_errors = analysis::HasErrors(r.findings);
  return r;
}

void PrintText(const ImageResult& r, const std::set<std::string>* baseline,
               const CliOptions& opts) {
  std::printf("== %s: %zu finding%s ==\n", r.name.c_str(), r.findings.size(),
              r.findings.size() == 1 ? "" : "s");
  for (const auto& f : r.findings) {
    const bool is_new =
        baseline != nullptr &&
        baseline->count(FindingKey(f.rule, f.subject, f.message)) == 0;
    std::printf("%s", is_new ? "NEW " : "");
    std::printf("[%s] %s %s: %s\n", f.severity.c_str(), f.rule.c_str(),
                f.name.c_str(), f.message.c_str());
    if (!f.path.empty()) {
      std::printf("        path: %s\n",
                  analysis::AuthorityGraph::RenderPath(f.path).c_str());
    }
    if (opts.fix_suggestions && !f.fix.empty()) {
      std::printf("        fix: %s\n", analysis::FixSuggestion(f).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-targets") {
      opts.list = true;
    } else if (arg == "--all") {
      opts.all = true;
    } else if (arg == "--fix-suggestions") {
      opts.fix_suggestions = true;
    } else if (arg == "--update-baselines") {
      opts.update_baselines = true;
    } else if (const char* v = value("--target=")) {
      for (auto& t : SplitCsv(v)) {
        opts.targets.push_back(t);
      }
    } else if (const char* v = value("--report=")) {
      opts.report_files.push_back(v);
    } else if (const char* v = value("--format=")) {
      if (std::string(v) == "json") {
        opts.json_format = true;
      } else if (std::string(v) != "text") {
        std::fprintf(stderr, "cheriot_lint: unknown format %s\n", v);
        return 2;
      }
    } else if (const char* v = value("--restrict-mmio=")) {
      for (auto& d : SplitCsv(v)) {
        opts.lint.restricted_mmio.push_back(d);
      }
    } else if (const char* v = value("--baseline=")) {
      opts.baseline_file = v;
    } else if (const char* v = value("--baseline-dir=")) {
      opts.baseline_dir = v;
    } else if (const char* v = value("--coverage=")) {
      opts.coverage_file = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_lint: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  if (opts.list) {
    for (const auto& t : LintTargets()) {
      std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
    }
    return 0;
  }
  if (opts.all) {
    for (const auto& t : LintTargets()) {
      opts.targets.push_back(t.name);
    }
  }
  if (opts.targets.empty() && opts.report_files.empty()) {
    Usage(stderr);
    return 2;
  }
  if (opts.update_baselines && opts.baseline_dir.empty()) {
    std::fprintf(stderr,
                 "cheriot_lint: --update-baselines requires --baseline-dir\n");
    return 2;
  }
  if (!opts.baseline_file.empty() &&
      opts.targets.size() + opts.report_files.size() > 1) {
    std::fprintf(stderr,
                 "cheriot_lint: --baseline applies to a single image; use "
                 "--baseline-dir\n");
    return 2;
  }

  // CL010 evidence, if supplied; owned here so LintOptions can hold a
  // pointer for the duration of every RunLints call.
  json::Value coverage_doc;
  if (!opts.coverage_file.empty()) {
    std::string text;
    if (!ReadFile(opts.coverage_file, &text)) {
      std::fprintf(stderr, "cheriot_lint: cannot read %s\n",
                   opts.coverage_file.c_str());
      return 2;
    }
    try {
      coverage_doc = json::Parse(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cheriot_lint: bad coverage %s: %s\n",
                   opts.coverage_file.c_str(), e.what());
      return 2;
    }
    opts.lint.coverage = &coverage_doc;
  }

  // Gather (name, report) pairs. FindCovTarget resolves the shipped
  // registry plus the seeded cov-overprivileged image (opt-in, not --all).
  std::vector<std::pair<std::string, json::Value>> reports;
  for (const auto& name : opts.targets) {
    const tools::LintTarget* t = tools::FindCovTarget(name);
    if (t == nullptr) {
      std::fprintf(stderr,
                   "cheriot_lint: unknown target '%s' (--list-targets)\n",
                   name.c_str());
      return 2;
    }
    try {
      reports.emplace_back(name, ReportForTarget(*t));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cheriot_lint: failed to load %s: %s\n",
                   name.c_str(), e.what());
      return 2;
    }
  }
  for (const auto& file : opts.report_files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::fprintf(stderr, "cheriot_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    try {
      json::Value report = json::Parse(text);
      std::string name = report["firmware"].is_null()
                             ? file
                             : report["firmware"].AsString();
      reports.emplace_back(std::move(name), std::move(report));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cheriot_lint: bad report %s: %s\n", file.c_str(),
                   e.what());
      return 2;
    }
  }

  bool any_errors = false;
  int total_new = 0;
  json::Array all_json;
  for (const auto& [name, report] : reports) {
    ImageResult r = LintOne(name, report, opts);

    if (opts.update_baselines) {
      const std::string path = opts.baseline_dir + "/" + name + ".json";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cheriot_lint: cannot write %s\n", path.c_str());
        return 2;
      }
      out << r.json.Dump(2) << "\n";
      std::fprintf(stderr, "wrote %s (%zu findings)\n", path.c_str(),
                   r.findings.size());
      any_errors = any_errors || r.has_errors;
      continue;
    }

    std::set<std::string> baseline;
    bool have_baseline = false;
    std::string baseline_path = opts.baseline_file;
    if (baseline_path.empty() && !opts.baseline_dir.empty()) {
      baseline_path = opts.baseline_dir + "/" + name + ".json";
    }
    if (!baseline_path.empty()) {
      baseline = LoadBaseline(baseline_path, &have_baseline);
      if (!have_baseline) {
        std::fprintf(stderr, "cheriot_lint: missing baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
    }
    for (const auto& f : r.findings) {
      if (have_baseline &&
          baseline.count(FindingKey(f.rule, f.subject, f.message)) == 0) {
        ++r.new_findings;
      }
    }

    if (opts.json_format) {
      all_json.push_back(r.json);
    } else {
      PrintText(r, have_baseline ? &baseline : nullptr, opts);
    }
    any_errors = any_errors || r.has_errors;
    total_new += r.new_findings;
  }

  if (opts.update_baselines) {
    return any_errors ? 1 : 0;
  }
  if (opts.json_format) {
    // One document per image keeps single-image output stable; --all wraps
    // the documents in an array.
    if (all_json.size() == 1) {
      std::printf("%s\n", all_json[0].Dump(2).c_str());
    } else {
      std::printf("%s\n", json::Value(std::move(all_json)).Dump(2).c_str());
    }
  }
  if (total_new > 0) {
    std::fprintf(stderr, "cheriot_lint: %d finding%s not in baseline\n",
                 total_new, total_new == 1 ? "" : "s");
  }
  return any_errors ? 1 : 0;
}

// cheriot_flow: run a shipped firmware image as a fleet with the flow
// recorder on and export the cross-board observability products — the causal
// flow table (per-frame provenance: tx -> fabric hops -> delivery/drop,
// gateway causality, MQTT publish fan-out), the per-topic / per-board-pair
// latency histograms, and the fleet metrics time-series.
//
// Targets come from the same registry as cheriot_lint/cheriot_trace, so
// "flow-trace every image we ship" is one --all invocation (the CI
// flow-images job). Flow tracing is fleet-level by construction (the causal
// graph spans boards and the gateway), so every run is a Fleet — --fleet=N
// picks the board count (default 2). Between run chunks the tool issues
// control MQTT publishes so the broker fan-out path is always exercised.
//
// --check enforces the two contracts from DESIGN.md §13:
//   1. Zero-guest-cycle: the same run with flow recording off must land on
//      identical fingerprints for EVERY board (ids are assigned either way;
//      only recording is gated).
//   2. Worker invariance: the three JSON exports must be byte-identical at
//      host_threads 1, 2 and 4.
//
// Exit codes: 0 ok, 1 --check failed, 2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/flow/flow.h"
#include "src/sim/fleet.h"
#include "tools/registry_cli.h"

using namespace cheriot;
using cheriot::tools::WriteArtifact;

namespace {

struct CliOptions {
  bool check = false;
  // Test hook: corrupt the flow-on fingerprint before the --check comparison
  // so the mismatch path (and its nonzero exit) stays covered.
  bool inject_check_failure = false;
  int fleet = 2;
  int host_threads = 1;
  int publishes = 3;  // control MQTT publishes spread across the run
  Cycles cycles = 20'000'000;
  Cycles metrics_interval = 1'000'000;
  std::string out_dir = ".";
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_flow [--all | --target=NAME[,NAME...]]"
               " [options]\n"
               "\n"
               "  --list-targets       list the built-in firmware images\n"
               "  --all                flow-trace every built-in image\n"
               "  --target=NAME        flow-trace one image (repeatable)\n"
               "  --fleet=N            boards in the fleet (default 2)\n"
               "  --cycles=N           guest cycles to run (default 20000000)\n"
               "  --publishes=N        control MQTT publishes spread across\n"
               "                       the run (default 3)\n"
               "  --host-threads=N     fleet worker threads (default 1; the\n"
               "                       exports are identical for any value)\n"
               "  --metrics-interval=N metrics sampling cadence in cycles\n"
               "                       (default 1000000)\n"
               "  --out-dir=DIR        where to write artifacts (default .)\n"
               "  --check              verify flow recording moved no guest\n"
               "                       cycle (all-board fingerprints) and the\n"
               "                       exports are byte-identical at 1/2/4\n"
               "                       worker threads\n"
               "\n"
               "artifacts (per target): flow_<name>.json        (flow table)\n"
               "                        flowhist_<name>.json    (histograms)\n"
               "                        fleetmetrics_<name>.json (series)\n");
}

struct RunArtifacts {
  std::string flow_json;
  std::string hist_json;
  std::string metrics_json;
  std::vector<sim::Board::Fingerprint> fingerprints;
  Cycles now = 0;
  uint64_t flows = 0;
  uint64_t deliveries = 0;
  uint64_t drops = 0;
};

// One deterministic fleet run: the same chunked schedule (with control
// publishes at fixed chunk boundaries) regardless of `flow` / worker count,
// so every invocation is comparing like with like.
RunArtifacts RunFleet(const tools::LintTarget& target, const CliOptions& opts,
                      bool flow, int host_threads) {
  sim::FleetOptions fopts;
  fopts.host_threads = host_threads;
  fopts.flow = flow;
  fopts.flow_options.metrics_interval = opts.metrics_interval;
  sim::Fleet fleet(fopts);
  for (int i = 0; i < opts.fleet; ++i) {
    fleet.AddBoard(target.build());
  }
  fleet.Boot();
  const int chunks = opts.publishes + 1;
  const Cycles chunk = opts.cycles / static_cast<Cycles>(chunks);
  for (int i = 0; i < chunks; ++i) {
    fleet.Run(i + 1 == chunks ? opts.cycles - chunk * (chunks - 1) : chunk);
    if (i + 1 < chunks) {
      const std::string payload = "cmd" + std::to_string(i);
      fleet.PublishMqtt("leds",
                        net::Bytes(payload.begin(), payload.end()));
    }
  }
  RunArtifacts a;
  a.fingerprints = fleet.Fingerprints();
  a.now = fleet.Now();
  if (flow::FlowRecorder* fr = fleet.flow_recorder()) {
    a.flows = fr->flow_count();
    a.deliveries = fr->deliveries();
    a.drops = fr->drops();
    a.flow_json = fr->FlowTableJson().Dump(2) + "\n";
    a.hist_json = fr->HistogramsJson().Dump(2) + "\n";
    a.metrics_json = fr->MetricsJson().Dump(2) + "\n";
  }
  return a;
}

// Runs one target; returns false on a --check failure.
bool RunTarget(const tools::LintTarget& target, const CliOptions& opts) {
  RunArtifacts flowed = RunFleet(target, opts, true, opts.host_threads);

  const std::string base = opts.out_dir + "/";
  if (!WriteArtifact("cheriot_flow", base + "flow_" + target.name + ".json",
                     flowed.flow_json) ||
      !WriteArtifact("cheriot_flow",
                     base + "flowhist_" + target.name + ".json",
                     flowed.hist_json) ||
      !WriteArtifact("cheriot_flow",
                     base + "fleetmetrics_" + target.name + ".json",
                     flowed.metrics_json)) {
    return false;
  }
  std::printf("%-26s %12llu cycles %6llu flows %6llu delivered %4llu dropped\n",
              target.name.c_str(), static_cast<unsigned long long>(flowed.now),
              static_cast<unsigned long long>(flowed.flows),
              static_cast<unsigned long long>(flowed.deliveries),
              static_cast<unsigned long long>(flowed.drops));

  if (!opts.check) {
    return true;
  }
  if (opts.inject_check_failure && !flowed.fingerprints.empty()) {
    ++flowed.fingerprints[0].uart_hash;
  }
  bool ok = true;
  // Contract 1: recording off, same run — every board's fingerprint matches.
  RunArtifacts plain = RunFleet(target, opts, false, opts.host_threads);
  for (size_t b = 0; b < flowed.fingerprints.size(); ++b) {
    if (!(plain.fingerprints[b] == flowed.fingerprints[b])) {
      std::fprintf(stderr,
                   "cheriot_flow: %s: flow recording changed board %zu's "
                   "fingerprint (now %llu vs %llu, uart %016llx vs %016llx)\n",
                   target.name.c_str(), b,
                   static_cast<unsigned long long>(flowed.fingerprints[b].now),
                   static_cast<unsigned long long>(plain.fingerprints[b].now),
                   static_cast<unsigned long long>(
                       flowed.fingerprints[b].uart_hash),
                   static_cast<unsigned long long>(
                       plain.fingerprints[b].uart_hash));
      ok = false;
    }
  }
  // Contract 2: exports byte-identical at 1, 2 and 4 worker threads.
  const RunArtifacts one = RunFleet(target, opts, true, 1);
  for (int threads : {2, 4}) {
    const RunArtifacts multi = RunFleet(target, opts, true, threads);
    if (multi.flow_json != one.flow_json ||
        multi.hist_json != one.hist_json ||
        multi.metrics_json != one.metrics_json) {
      std::fprintf(stderr,
                   "cheriot_flow: %s: exports differ between 1 and %d worker "
                   "threads\n",
                   target.name.c_str(), threads);
      ok = false;
    }
  }
  if (ok) {
    std::printf("%-26s check ok: fingerprints invariant on %zu boards, "
                "exports stable at 1/2/4 workers\n",
                target.name.c_str(), flowed.fingerprints.size());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  tools::RegistryCli cli("cheriot_flow");
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (cli.ParseTargetFlag(arg)) {
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--inject-check-failure") {
      opts.inject_check_failure = true;
    } else if (const char* v = value("--cycles=")) {
      opts.cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--fleet=")) {
      opts.fleet = std::atoi(v);
    } else if (const char* v = value("--publishes=")) {
      opts.publishes = std::atoi(v);
    } else if (const char* v = value("--host-threads=")) {
      opts.host_threads = std::atoi(v);
    } else if (const char* v = value("--metrics-interval=")) {
      opts.metrics_interval = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out-dir=")) {
      opts.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_flow: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  if (!cli.list_requested() && (opts.fleet < 1 || opts.publishes < 0)) {
    Usage(stderr);
    return 2;
  }
  return cli.Run(
      [&opts](const tools::LintTarget& t) { return RunTarget(t, opts); },
      Usage);
}

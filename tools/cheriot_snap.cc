// cheriot_snap: save, restore, inspect and compare deterministic machine
// snapshots (DESIGN.md §10) of the shipped firmware images.
//
// Targets come from the same registry as cheriot_lint/cheriot_trace/
// cheriot_health. A snapshot records everything the simulation is a function
// of — SRAM + tag bitmaps, kernel/scheduler/allocator state, device queues
// and the replay log of external inputs — so `restore` rebuilds the exact
// machine (Restore self-verifies byte-for-byte) and can keep running it.
//
//   save     run a target for --cycles and write the snapshot blob
//   restore  rebuild a board (or fleet) from a blob, optionally run further
//   info     print a blob's header, flags and section sizes
//   diff     byte-compare two blobs section by section
//
// Exit codes: 0 ok (diff: identical), 1 snapshots differ or verify failed,
// 2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/snap/diff.h"
#include "src/snap/snapshot.h"
#include "tools/lint_targets.h"

using namespace cheriot;
using cheriot::tools::FindLintTarget;
using cheriot::tools::LintTargets;

namespace {

struct CliOptions {
  std::string command;
  std::string target;
  std::string in_path;
  std::string out_path;
  std::string a_path;
  std::string b_path;
  Cycles cycles = 20'000'000;
  bool cycles_set = false;
  int fleet = 0;         // 0 = single board
  int host_threads = 1;  // fleet restore worker threads
  bool trace = false;
  bool forensics = false;
};

void Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: cheriot_snap <command> [options]\n"
      "\n"
      "commands:\n"
      "  save     --target=NAME --out=FILE [--cycles=N] [--fleet=N]\n"
      "           [--trace] [--forensics]\n"
      "  restore  --target=NAME --in=FILE [--cycles=N] [--fleet=N]\n"
      "           [--host-threads=N]\n"
      "  info     --in=FILE\n"
      "  diff     --a=FILE --b=FILE\n"
      "  list-targets\n"
      "\n"
      "  --target=NAME      a built-in firmware image (see list-targets)\n"
      "  --cycles=N         save: cycles to run before snapshotting\n"
      "                     restore: extra cycles to run after restoring\n"
      "                     (default 20000000 / 0)\n"
      "  --fleet=N          snapshot a fleet of N boards of the image\n"
      "  --host-threads=N   fleet restore worker threads (default 1; the\n"
      "                     restored state is identical for any value)\n"
      "  --trace/--forensics  attach recorders before boot (save only)\n");
}

bool ReadBlob(const std::string& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cheriot_snap: cannot read %s\n", path.c_str());
    return false;
  }
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

bool WriteBlob(const std::string& path, const std::vector<uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cheriot_snap: cannot write %s\n", path.c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  return out.good();
}

void PrintFingerprint(const char* label, const sim::Board::Fingerprint& f) {
  std::printf(
      "%s now=%llu accesses=%llu cap=%llu/%llu traps=%llu idle=%llu"
      " uart=%llu/%016llx reboots=%u\n",
      label, static_cast<unsigned long long>(f.now),
      static_cast<unsigned long long>(f.accesses),
      static_cast<unsigned long long>(f.cap_loads),
      static_cast<unsigned long long>(f.cap_stores),
      static_cast<unsigned long long>(f.traps),
      static_cast<unsigned long long>(f.idle_cycles),
      static_cast<unsigned long long>(f.uart_bytes),
      static_cast<unsigned long long>(f.uart_hash), f.reboots);
}

std::string FlagNames(uint32_t flags) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) {
      out += ",";
    }
    out += name;
  };
  if (flags & snap::kColdRestorable) add("cold-restorable");
  if (flags & snap::kHasReplayLog) add("replay-log");
  if (flags & snap::kHasTrace) add("trace");
  if (flags & snap::kHasForensics) add("forensics");
  if (flags & snap::kEmbedded) add("embedded");
  return out.empty() ? "none" : out;
}

const char* KindName(uint8_t kind) {
  switch (kind) {
    case snap::kBoard: return "board";
    case snap::kFleet: return "fleet";
    case snap::kScene: return "crash-scene";
  }
  return "unknown";
}

int CmdSave(const CliOptions& opts) {
  const tools::LintTarget* t = FindLintTarget(opts.target);
  if (t == nullptr || opts.out_path.empty()) {
    std::fprintf(stderr, "cheriot_snap: save needs --target and --out\n");
    return 2;
  }
  std::vector<uint8_t> blob;
  if (opts.fleet > 0) {
    sim::FleetOptions fopts;
    fopts.trace = opts.trace;
    fopts.forensics = opts.forensics;
    sim::Fleet fleet(fopts);
    for (int i = 0; i < opts.fleet; ++i) {
      fleet.AddBoard(t->build());
    }
    fleet.Boot();
    fleet.Run(opts.cycles);
    fleet.Snapshot(blob);
    std::printf("%s: fleet of %d at cycle %llu -> %s (%zu bytes)\n",
                opts.target.c_str(), opts.fleet,
                static_cast<unsigned long long>(fleet.Now()),
                opts.out_path.c_str(), blob.size());
  } else {
    sim::Board board(t->build(), {});
    if (opts.trace) {
      board.EnableTrace();
    }
    if (opts.forensics) {
      board.EnableForensics();
    }
    board.Boot();
    if (opts.cycles > 0) {
      board.StepTo(opts.cycles);
    }
    board.Snapshot(blob);
    PrintFingerprint("saved state:", board.fingerprint());
    std::printf("%s: board at cycle %llu -> %s (%zu bytes)\n",
                opts.target.c_str(),
                static_cast<unsigned long long>(board.Now()),
                opts.out_path.c_str(), blob.size());
  }
  return WriteBlob(opts.out_path, blob) ? 0 : 2;
}

int CmdRestore(const CliOptions& opts) {
  const tools::LintTarget* t = FindLintTarget(opts.target);
  if (t == nullptr || opts.in_path.empty()) {
    std::fprintf(stderr, "cheriot_snap: restore needs --target and --in\n");
    return 2;
  }
  std::vector<uint8_t> blob;
  if (!ReadBlob(opts.in_path, blob)) {
    return 2;
  }
  const snap::Container c = snap::Container::Parse(blob);
  if (c.kind == snap::kFleet) {
    auto fleet = sim::Fleet::Restore(
        blob, [&](int) { return t->build(); }, opts.host_threads);
    std::printf("restored fleet of %zu at cycle %llu (verified)\n",
                fleet->size(),
                static_cast<unsigned long long>(fleet->Now()));
    if (opts.cycles > 0) {
      fleet->Run(opts.cycles);
    }
    for (const auto& f : fleet->Fingerprints()) {
      PrintFingerprint("  board:", f);
    }
  } else {
    auto board = sim::Board::Restore(blob, t->build());
    std::printf("restored board at cycle %llu (verified, %s)\n",
                static_cast<unsigned long long>(board->Now()),
                (c.flags & snap::kColdRestorable) ? "cold path"
                                                  : "replay path");
    if (opts.cycles > 0) {
      board->StepTo(board->Now() + opts.cycles);
    }
    PrintFingerprint("restored state:", board->fingerprint());
  }
  return 0;
}

int CmdInfo(const CliOptions& opts) {
  if (opts.in_path.empty()) {
    std::fprintf(stderr, "cheriot_snap: info needs --in\n");
    return 2;
  }
  std::vector<uint8_t> blob;
  if (!ReadBlob(opts.in_path, blob)) {
    return 2;
  }
  const snap::Container c = snap::Container::Parse(blob);
  std::printf("%s: %s snapshot, flags [%s], %zu sections, %zu bytes\n",
              opts.in_path.c_str(), KindName(c.kind),
              FlagNames(c.flags).c_str(), c.sections.size(), blob.size());
  for (const auto& s : c.sections) {
    std::printf("  %-4s %12zu bytes\n", snap::SectionName(s.id).c_str(),
                s.body.size());
  }
  return 0;
}

int CmdDiff(const CliOptions& opts) {
  if (opts.a_path.empty() || opts.b_path.empty()) {
    std::fprintf(stderr, "cheriot_snap: diff needs --a and --b\n");
    return 2;
  }
  std::vector<uint8_t> ab;
  std::vector<uint8_t> bb;
  if (!ReadBlob(opts.a_path, ab) || !ReadBlob(opts.b_path, bb)) {
    return 2;
  }
  const snap::BlobDiff d = snap::DiffBlobs(ab, bb);
  if (d.header_differs) {
    std::printf("header differs: %s\n", d.header_detail.c_str());
  }
  for (const snap::SectionDiff& sd : d.divergent) {
    if (sd.only_in_a || sd.only_in_b) {
      std::printf("  %-4s only in %s\n", sd.name.c_str(),
                  sd.only_in_a ? "A" : "B");
    } else {
      std::printf(
          "  %-4s differs at body byte %zu (abs %zu vs %zu; %zu vs %zu "
          "bytes)\n",
          sd.name.c_str(), sd.first_diff_offset, sd.abs_offset_a,
          sd.abs_offset_b, sd.size_a, sd.size_b);
    }
  }
  if (d.equal) {
    std::printf("snapshots identical\n");
  } else {
    std::printf("first divergence: %s\n", d.summary.c_str());
  }
  return d.equal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (argc >= 2 && argv[1][0] != '-') {
    opts.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--target=")) {
      opts.target = v;
    } else if (const char* v = value("--in=")) {
      opts.in_path = v;
    } else if (const char* v = value("--out=")) {
      opts.out_path = v;
    } else if (const char* v = value("--a=")) {
      opts.a_path = v;
    } else if (const char* v = value("--b=")) {
      opts.b_path = v;
    } else if (const char* v = value("--cycles=")) {
      opts.cycles = std::strtoull(v, nullptr, 10);
      opts.cycles_set = true;
    } else if (const char* v = value("--fleet=")) {
      opts.fleet = std::atoi(v);
    } else if (const char* v = value("--host-threads=")) {
      opts.host_threads = std::atoi(v);
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg == "--forensics") {
      opts.forensics = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_snap: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  if (opts.command == "restore" && !opts.cycles_set) {
    opts.cycles = 0;  // restore default: just rebuild and verify
  }
  try {
    if (opts.command == "list-targets") {
      for (const auto& t : LintTargets()) {
        std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
      }
      return 0;
    }
    if (opts.command == "save") {
      return CmdSave(opts);
    }
    if (opts.command == "restore") {
      return CmdRestore(opts);
    }
    if (opts.command == "info") {
      return CmdInfo(opts);
    }
    if (opts.command == "diff") {
      return CmdDiff(opts);
    }
  } catch (const snap::SnapshotError& e) {
    std::fprintf(stderr, "cheriot_snap: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cheriot_snap: %s\n", e.what());
    return 2;
  }
  Usage(stderr);
  return 2;
}

#include "tools/lint_targets.h"

#include <algorithm>

#include "src/compat/posix_shim.h"
#include "src/js/minivm.h"
#include "src/net/netstack.h"
#include "src/rtos.h"
#include "src/sim/fleet_app.h"
#include "src/sync/sync.h"

namespace cheriot::tools {

namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

// examples/quickstart.cpp
FirmwareImage Quickstart() {
  ImageBuilder b("quickstart");
  b.Compartment("adder").Globals(64).Export("add", Nop());
  b.Compartment("app").ImportCompartment("adder.add").Export("main", Nop());
  b.Thread("main", 1, 4096, 8, "app.main");
  return b.Build();
}

// examples/audit_firmware.cpp and tests/audit_test.cpp (Fig. 4 image)
FirmwareImage HttpClient(bool backdoored) {
  ImageBuilder b(backdoored ? "http-firmware-BACKDOORED" : "http-firmware");
  b.Compartment("NetAPI")
      .CodeSize(4096)
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("http_client")
      .CodeSize(8192)
      .AllocCap("http_quota", 16 * 1024)
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("fetch", Nop(), 1024);
  auto compressor = b.Compartment("compressor");
  compressor.CodeSize(20 * 1024).Export("decompress", Nop(), 512);
  if (backdoored) {
    compressor.ImportCompartment("NetAPI.network_socket_connect_tcp");
  }
  b.Thread("main", 1, 2048, 4, "http_client.fetch");
  return b.Build();
}

// examples/producer_consumer.cpp
FirmwareImage ProducerConsumer() {
  ImageBuilder b("producer-consumer");
  b.Compartment("producer")
      .Globals(32)
      .AllocCap("pq", 8 * 1024)
      .Export("main", Nop())
      .Export("get_queue", Nop());
  b.Compartment("consumer")
      .ImportCompartment("producer.get_queue")
      .Export("main", Nop());
  sync::UseQueueCompartment(b, "producer");
  sync::UseQueueCompartment(b, "consumer");
  sync::UseScheduler(b, "producer");
  sync::UseScheduler(b, "consumer");
  sync::UseAllocator(b, "producer");
  b.Thread("consumer", 3, 8192, 8, "consumer.main");
  b.Thread("producer", 2, 8192, 8, "producer.main");
  return b.Build();
}

// examples/fault_tolerance.cpp
FirmwareImage FaultTolerance() {
  ImageBuilder b("fault-tolerance");
  b.Compartment("self_healing").Globals(64).Export("read_config", Nop());
  b.Compartment("counter")
      .Globals(32)
      .AllocCap("cq", 4096)
      .Export("serve", Nop());
  sync::UseAllocator(b, "counter");
  b.Compartment("app")
      .ImportCompartment("self_healing.read_config")
      .ImportCompartment("counter.serve")
      .Export("main", Nop());
  b.Thread("main", 1, 8192, 8, "app.main");
  return b.Build();
}

// examples/iot_mqtt_app.cpp (§5.3.3 case study)
FirmwareImage IotMqttApp() {
  ImageBuilder b("iot-mqtt-app");
  b.Compartment("js_app")
      .Globals(128)
      .AllocCap("app_quota", 33 * 1024)
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportLibrary("minivm.interpreter")
      .Export("main", Nop());
  js::RegisterMiniVmLibrary(b);
  net::UseNetwork(b, "js_app");
  sync::UseAllocator(b, "js_app");
  sync::UseScheduler(b, "js_app");
  compat::UseMalloc(b, "js_app", 8 * 1024);
  b.Thread("app", 3, 16 * 1024, 12, "js_app.main");
  return b.Build();
}

// src/sim/fleet_app.cc — the image every fleet board boots
FirmwareImage FleetNode() {
  return sim::BuildFleetAppImage(std::make_shared<sim::FleetAppState>(), {});
}

std::vector<LintTarget> MakeTargets() {
  std::vector<LintTarget> t = {
      {"fault-tolerance", "micro-reboot / error-handler example image",
       FaultTolerance},
      {"fleet-node", "fleet simulation board firmware (src/sim/fleet_app)",
       FleetNode},
      {"http-firmware", "Fig. 4 auditing example image (clean)",
       [] { return HttpClient(false); }},
      {"http-firmware-backdoored",
       "Fig. 4 image with the liblzma-style backdoored compressor",
       [] { return HttpClient(true); }},
      {"iot-mqtt-app", "§5.3.3 MQTT-over-TLS case-study image", IotMqttApp},
      {"producer-consumer", "hardened message-queue example image",
       ProducerConsumer},
      {"quickstart", "two-compartment quickstart image", Quickstart},
  };
  std::sort(t.begin(), t.end(),
            [](const LintTarget& a, const LintTarget& b) {
              return a.name < b.name;
            });
  return t;
}

}  // namespace

const std::vector<LintTarget>& LintTargets() {
  static const std::vector<LintTarget> kTargets = MakeTargets();
  return kTargets;
}

const LintTarget* FindLintTarget(const std::string& name) {
  for (const auto& t : LintTargets()) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

}  // namespace cheriot::tools

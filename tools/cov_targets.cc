#include "tools/cov_targets.h"

#include "src/rtos.h"

namespace cheriot::tools {

namespace {

// Two compartments, four grants, two of them dead. The sensor's entry point
// runs for real (blinks the LED, calls actuator.set), which makes the
// compartment *active* in coverage terms — so its unexercised grants are
// differential evidence and surface as warnings, not info:
//   - ImportCompartment("actuator.diag"): never called (dead import)
//   - ImportMmio("ethernet"): never touched (over-wide device authority)
FirmwareImage CovOverprivileged() {
  ImageBuilder b("cov-overprivileged");
  b.Compartment("actuator")
      .Globals(32)
      .Export("set",
              [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
                ctx.StoreWord(ctx.globals(), 0,
                              args.empty() ? 1u : args[0].word());
                return StatusCap(Status::kOk);
              })
      .Export("diag",
              [](CompartmentCtx&, const std::vector<Capability>&) {
                return Capability();
              });
  b.Compartment("sensor")
      .Globals(64)
      .ImportCompartment("actuator.set")
      .ImportCompartment("actuator.diag")
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true)
      .Export("main",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability led = ctx.Mmio("led");
                ctx.StoreWord(led, 0, 1);
                ctx.Call("actuator.set", {WordCap(7)});
                return StatusCap(Status::kOk);
              });
  b.Thread("main", 1, 4096, 8, "sensor.main");
  return b.Build();
}

}  // namespace

const std::vector<LintTarget>& CovSeededTargets() {
  static const std::vector<LintTarget> kTargets = {
      {"cov-overprivileged",
       "seeded image with a dead call import and an untouched MMIO grant",
       CovOverprivileged},
  };
  return kTargets;
}

const LintTarget* FindCovTarget(const std::string& name) {
  for (const auto& t : CovSeededTargets()) {
    if (t.name == name) {
      return &t;
    }
  }
  return FindLintTarget(name);
}

}  // namespace cheriot::tools

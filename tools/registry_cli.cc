#include "tools/registry_cli.h"

#include <exception>
#include <fstream>
#include <sstream>

namespace cheriot::tools {

bool RegistryCli::ParseTargetFlag(const std::string& arg) {
  if (arg == "--list-targets") {
    list_ = true;
    return true;
  }
  if (arg == "--all") {
    all_ = true;
    return true;
  }
  constexpr const char kTarget[] = "--target=";
  constexpr size_t kTargetLen = sizeof(kTarget) - 1;
  if (arg.compare(0, kTargetLen, kTarget) == 0) {
    for (auto& t : SplitCsv(arg.substr(kTargetLen))) {
      targets_.push_back(std::move(t));
    }
    return true;
  }
  return false;
}

int RegistryCli::Run(const std::function<bool(const LintTarget&)>& run_target,
                     const std::function<void(std::FILE*)>& usage) const {
  if (list_) {
    for (const auto& t : LintTargets()) {
      std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
    }
    if (extra_ != nullptr) {
      for (const auto& t : *extra_) {
        std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
      }
    }
    return 0;
  }
  std::vector<std::string> names = targets_;
  if (all_) {
    for (const auto& t : LintTargets()) {
      names.push_back(t.name);
    }
  }
  if (names.empty()) {
    usage(stderr);
    return 2;
  }
  bool ok = true;
  for (const auto& name : names) {
    const LintTarget* t = nullptr;
    if (extra_ != nullptr) {
      for (const auto& e : *extra_) {
        if (e.name == name) {
          t = &e;
        }
      }
    }
    if (t == nullptr) {
      t = FindLintTarget(name);
    }
    if (t == nullptr) {
      std::fprintf(stderr, "%s: unknown target '%s' (--list-targets)\n",
                   tool_.c_str(), name.c_str());
      return 2;
    }
    try {
      ok = run_target(*t) && ok;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s failed: %s\n", tool_.c_str(), name.c_str(),
                   e.what());
      return 2;
    }
  }
  return ok ? 0 : 1;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool WriteArtifact(const std::string& tool, const std::string& path,
                   const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) {
    out << text;
  }
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool.c_str(), path.c_str());
    return false;
  }
  return true;
}

bool WriteArtifact(const std::string& tool, const std::string& path,
                   const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool.c_str(), path.c_str());
    return false;
  }
  return true;
}

}  // namespace cheriot::tools

// Seeded-bug firmware images for cheriot-mc: each contains one deliberate
// concurrency bug that only manifests under a non-default schedule, so the
// default run (and every other tool in the repo) sees them behave normally
// while `cheriot_mc` must find the bug within a small preemption bound.
// They double as regression anchors: if a kernel change makes the explorer
// stop finding one of these, the explorer (or the kernel) regressed.
//
// The CI `mc-images` job runs these as expected-fail targets next to the
// shipped images (tools/lint_targets.h), which must all pass clean.
#ifndef TOOLS_MC_TARGETS_H_
#define TOOLS_MC_TARGETS_H_

#include <string>
#include <vector>

#include "tools/lint_targets.h"

namespace cheriot::tools {

// The seeded-bug images, sorted by name:
//   seeded-lost-wake   check-then-wait race: a flag and the futex word are
//                      distinct, so a wake delivered between the flag check
//                      and the wait is lost -> deadlock (1 forced choice)
//   seeded-quota-race  TOCTOU between HeapQuotaRemaining and HeapAllocate:
//                      a rival thread drains the quota in the window, the
//                      unchecked allocation result is stored through ->
//                      tag-violation trap (1 forced choice)
//   seeded-wake-order  two same-priority workers apply non-commutative
//                      updates in wake order; flipping the FIFO pop order
//                      changes the UART output -> divergence (1 forced
//                      choice)
const std::vector<LintTarget>& McSeededTargets();

// Looks up `name` among the seeded images, then the shipped lint targets.
// nullptr when unknown.
const LintTarget* FindMcTarget(const std::string& name);

}  // namespace cheriot::tools

#endif  // TOOLS_MC_TARGETS_H_

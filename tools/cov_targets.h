// Seeded over-privileged image for cheriot_cov and the CL010 tests: a
// firmware whose static grant table is deliberately wider than its dynamic
// behaviour, so the least-privilege report and lint rule CL010 have a known
// true positive (a dead call import and an untouched MMIO window) to flag.
// Kept out of lint_targets.cc so --all over the shipped registry stays
// clean-by-construction.
#ifndef TOOLS_COV_TARGETS_H_
#define TOOLS_COV_TARGETS_H_

#include "tools/lint_targets.h"

namespace cheriot::tools {

// The seeded images, sorted by name (currently just cov-overprivileged).
const std::vector<LintTarget>& CovSeededTargets();

// Seeded images first, then the shipped registry; nullptr when unknown.
const LintTarget* FindCovTarget(const std::string& name);

}  // namespace cheriot::tools

#endif  // TOOLS_COV_TARGETS_H_

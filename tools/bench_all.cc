// bench_all: run every benchmark target in one invocation and validate the
// provenance stamp (git SHA, build type, UTC timestamp) in each emitted
// BENCH_*.json. The CI bench-all job runs this non-gating and uploads the
// JSON artifacts so the paper-figure numbers carry their origin with them.
//
// Four benches emit machine-readable BENCH_*.json (bench_sim_throughput,
// bench_fleet_scale, bench_trace_overhead, bench_flow_overhead); the rest
// print their tables to
// stdout and are only checked for a clean exit. --quick passes
// --benchmark_min_time=0.01 to the google-benchmark targets so a smoke run
// stays under a minute.
//
// --compare=DIR diffs each emitted JSON against the checked-in baseline
// (bench/baselines/BENCH_<name>.json). Host-timing keys — names containing
// per_sec / seconds / overhead / speedup — get a relative tolerance band
// (--tolerance, default 0.75: CI runners vary a lot, so only gross
// regressions fail); every other key is guest-deterministic and must match
// exactly; keys appearing on only one side fail (schema drift must update
// the baseline). Host-environment keys (provenance,
// host_hardware_concurrency, host_undersized) are skipped.
//
// Exit codes: 0 all benches ran and every emitted JSON validated (and, with
// --compare, stayed inside the band), 1 a bench failed, a provenance field
// is malformed or a comparison regressed, 2 usage.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/json/json.h"

namespace {

struct BenchTarget {
  std::string name;
  bool gbench;      // accepts google-benchmark flags
  bool emits_json;  // accepts --json=PATH and writes BENCH_<name>.json
};

// Every target bench/CMakeLists.txt builds, in a fixed run order.
const std::vector<BenchTarget>& BenchTargets() {
  static const std::vector<BenchTarget> targets = {
      {"bench_memory_usage", false, false},
      {"bench_call_latency", true, false},
      {"bench_core_apis", true, false},
      {"bench_alloc_throughput", true, false},
      {"bench_cap_overhead", true, false},
      {"bench_case_study", false, false},
      {"bench_sim_throughput", false, true},
      {"bench_fleet_scale", false, true},
      {"bench_trace_overhead", false, true},
      {"bench_flow_overhead", false, true},
  };
  return targets;
}

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bench_all [options]\n"
               "\n"
               "  --bin-dir=DIR   directory holding the bench binaries\n"
               "                  (default: directory of this binary's\n"
               "                  invocation, i.e. '.')\n"
               "  --out-dir=DIR   where BENCH_*.json land (default .)\n"
               "  --only=NAME[,NAME...]  run a subset\n"
               "  --skip=NAME[,NAME...]  skip targets\n"
               "  --quick         pass --benchmark_min_time=0.01 to the\n"
               "                  google-benchmark targets\n"
               "  --compare=DIR   diff each emitted JSON against the\n"
               "                  baseline BENCH_*.json in DIR; host-timing\n"
               "                  keys get a tolerance band, the rest must\n"
               "                  match exactly\n"
               "  --tolerance=F   relative band for host-timing keys with\n"
               "                  --compare (default 0.75)\n"
               "  --list          list bench targets and exit\n");
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  for (const auto& e : v) {
    if (e == s) {
      return true;
    }
  }
  return false;
}

bool IsHex40(const std::string& s) {
  if (s.size() != 40) {
    return false;
  }
  for (char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

// "2026-08-06T12:34:56Z" — the exact shape bench/provenance.h emits.
bool IsUtcStamp(const std::string& s) {
  static const char* pattern = "dddd-dd-ddTdd:dd:ddZ";
  if (s.size() != std::strlen(pattern)) {
    return false;
  }
  for (size_t i = 0; pattern[i] != '\0'; ++i) {
    if (pattern[i] == 'd') {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
        return false;
      }
    } else if (s[i] != pattern[i]) {
      return false;
    }
  }
  return true;
}

// Validates the provenance block of one emitted BENCH_*.json.
bool ValidateProvenance(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_all: %s: bench exited 0 but wrote no JSON\n",
                 path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  cheriot::json::Value doc;
  try {
    doc = cheriot::json::Parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_all: %s: malformed JSON: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!doc.Has("provenance")) {
    std::fprintf(stderr, "bench_all: %s: missing \"provenance\"\n",
                 path.c_str());
    return false;
  }
  const cheriot::json::Value& p = doc["provenance"];
  bool ok = true;
  const std::string build_type =
      p.Has("build_type") ? p["build_type"].AsString() : "";
  if (build_type.empty()) {
    std::fprintf(stderr, "bench_all: %s: provenance.build_type missing/empty\n",
                 path.c_str());
    ok = false;
  }
  const std::string stamp =
      p.Has("generated_utc") ? p["generated_utc"].AsString() : "";
  if (!IsUtcStamp(stamp)) {
    std::fprintf(stderr,
                 "bench_all: %s: provenance.generated_utc '%s' is not "
                 "YYYY-MM-DDTHH:MM:SSZ\n",
                 path.c_str(), stamp.c_str());
    ok = false;
  }
  const std::string sha = p.Has("git_sha") ? p["git_sha"].AsString() : "";
  if (sha == "unknown") {
    // Legal outside a git checkout, but worth a line in the CI log.
    std::fprintf(stderr, "bench_all: %s: provenance.git_sha is \"unknown\"\n",
                 path.c_str());
  } else if (!IsHex40(sha)) {
    std::fprintf(stderr,
                 "bench_all: %s: provenance.git_sha '%s' is neither a 40-hex "
                 "SHA nor \"unknown\"\n",
                 path.c_str(), sha.c_str());
    ok = false;
  }
  if (ok) {
    std::printf("  provenance ok: %s (%s, %s)\n", path.c_str(),
                build_type.c_str(), stamp.c_str());
  }
  return ok;
}

// ---- --compare support ------------------------------------------------
//
// Key classes for the baseline diff. Host-timing keys carry wall-clock
// measurements and get a relative band; host-environment keys describe the
// machine the bench ran on and are skipped outright; everything else is
// derived from deterministic guest execution and must match exactly.

bool IsHostTimingKey(const std::string& key) {
  return key.find("per_sec") != std::string::npos ||
         key.find("seconds") != std::string::npos ||
         key.find("overhead") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

// Ratio-valued timing keys (overhead fractions, speedup factors) also get
// an *absolute* band of the same magnitude: an overhead measured over a
// millisecond-scale run swings wildly in relative terms around zero
// (0.17 vs 0.45 is run-to-run noise, not a regression) while staying tiny
// in absolute terms.
bool IsRatioKey(const std::string& key) {
  return key.find("overhead") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

bool IsHostEnvKey(const std::string& key) {
  return key == "provenance" || key == "host_hardware_concurrency" ||
         key == "host_undersized";
}

bool IsNumber(const cheriot::json::Value& v) {
  return v.type() == cheriot::json::Value::Type::kInt ||
         v.type() == cheriot::json::Value::Type::kDouble;
}

bool LoadJsonFile(const std::string& path, cheriot::json::Value* doc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_all: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    *doc = cheriot::json::Parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_all: %s: malformed JSON: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  return true;
}

// Recursively diffs a fresh value against its baseline. `ctx` is the dotted
// key path for messages. Returns true when everything is inside the band.
bool CompareValues(const std::string& ctx, const cheriot::json::Value& base,
                   const cheriot::json::Value& fresh, double tolerance) {
  using Type = cheriot::json::Value::Type;
  // Host-timing leaves may legitimately flip between int and double
  // (e.g. a rate that rounds to a whole number), so numeric-vs-numeric is
  // never a type error.
  if (IsNumber(base) && IsNumber(fresh)) {
    const double b = base.AsDouble();
    const double f = fresh.AsDouble();
    if (IsHostTimingKey(ctx)) {
      const double denom = std::max(std::abs(b), 1e-9);
      const double rel = std::abs(f - b) / denom;
      if (rel > tolerance && !(IsRatioKey(ctx) && std::abs(f - b) <= tolerance)) {
        std::fprintf(stderr,
                     "bench_all: compare: %s = %g vs baseline %g "
                     "(rel delta %.2f > tolerance %.2f)\n",
                     ctx.c_str(), f, b, rel, tolerance);
        return false;
      }
      return true;
    }
    if (b != f) {
      std::fprintf(stderr,
                   "bench_all: compare: deterministic key %s = %g vs "
                   "baseline %g\n",
                   ctx.c_str(), f, b);
      return false;
    }
    return true;
  }
  if (base.type() != fresh.type()) {
    std::fprintf(stderr, "bench_all: compare: %s changed JSON type\n",
                 ctx.c_str());
    return false;
  }
  bool ok = true;
  switch (base.type()) {
    case Type::kObject: {
      for (const auto& [key, bval] : base.AsObject()) {
        if (IsHostEnvKey(key)) {
          continue;
        }
        const std::string sub = ctx.empty() ? key : ctx + "." + key;
        if (!fresh.Has(key)) {
          std::fprintf(stderr, "bench_all: compare: %s missing from fresh "
                       "output (baseline is stale? regenerate it)\n",
                       sub.c_str());
          ok = false;
          continue;
        }
        if (!CompareValues(sub, bval, fresh[key], tolerance)) {
          ok = false;
        }
      }
      for (const auto& [key, fval] : fresh.AsObject()) {
        (void)fval;
        if (!IsHostEnvKey(key) && !base.Has(key)) {
          std::fprintf(stderr, "bench_all: compare: %s%s%s not in baseline "
                       "(schema drift — update bench/baselines/)\n",
                       ctx.c_str(), ctx.empty() ? "" : ".", key.c_str());
          ok = false;
        }
      }
      break;
    }
    case Type::kArray: {
      if (base.size() != fresh.size()) {
        std::fprintf(stderr,
                     "bench_all: compare: %s length %zu vs baseline %zu\n",
                     ctx.c_str(), fresh.size(), base.size());
        return false;
      }
      for (size_t i = 0; i < base.size(); ++i) {
        const std::string sub = ctx + "[" + std::to_string(i) + "]";
        if (!CompareValues(sub, base[i], fresh[i], tolerance)) {
          ok = false;
        }
      }
      break;
    }
    case Type::kBool:
      if (base.AsBool() != fresh.AsBool()) {
        std::fprintf(stderr, "bench_all: compare: %s = %s vs baseline %s\n",
                     ctx.c_str(), fresh.AsBool() ? "true" : "false",
                     base.AsBool() ? "true" : "false");
        ok = false;
      }
      break;
    case Type::kString:
      if (base.AsString() != fresh.AsString()) {
        std::fprintf(stderr,
                     "bench_all: compare: %s = \"%s\" vs baseline \"%s\"\n",
                     ctx.c_str(), fresh.AsString().c_str(),
                     base.AsString().c_str());
        ok = false;
      }
      break;
    case Type::kNull:
      break;
    default:
      break;
  }
  return ok;
}

// Diffs one emitted BENCH_*.json against bench/baselines/BENCH_*.json.
bool CompareAgainstBaseline(const std::string& json_path,
                            const std::string& baseline_path,
                            double tolerance) {
  cheriot::json::Value base;
  cheriot::json::Value fresh;
  if (!LoadJsonFile(baseline_path, &base) ||
      !LoadJsonFile(json_path, &fresh)) {
    return false;
  }
  if (!CompareValues("", base, fresh, tolerance)) {
    return false;
  }
  std::printf("  compare ok: %s within %.0f%% of %s\n", json_path.c_str(),
              tolerance * 100.0, baseline_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bin_dir = ".";
  std::string out_dir = ".";
  std::string compare_dir;
  double tolerance = 0.75;
  std::vector<std::string> only;
  std::vector<std::string> skip;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--bin-dir=")) {
      bin_dir = v;
    } else if (const char* v = value("--out-dir=")) {
      out_dir = v;
    } else if (const char* v = value("--only=")) {
      for (auto& t : SplitCsv(v)) {
        only.push_back(t);
      }
    } else if (const char* v = value("--skip=")) {
      for (auto& t : SplitCsv(v)) {
        skip.push_back(t);
      }
    } else if (arg == "--quick") {
      quick = true;
    } else if (const char* v = value("--compare=")) {
      compare_dir = v;
    } else if (const char* v = value("--tolerance=")) {
      char* end = nullptr;
      tolerance = std::strtod(v, &end);
      if (end == v || *end != '\0' || tolerance < 0) {
        std::fprintf(stderr, "bench_all: bad --tolerance value %s\n", v);
        return 2;
      }
    } else if (arg == "--list") {
      for (const auto& t : BenchTargets()) {
        std::printf("%-24s%s%s\n", t.name.c_str(),
                    t.gbench ? " [gbench]" : "",
                    t.emits_json ? " [json]" : "");
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "bench_all: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  int ran = 0;
  int failed = 0;
  for (const auto& t : BenchTargets()) {
    if (!only.empty() && !Contains(only, t.name)) {
      continue;
    }
    if (Contains(skip, t.name)) {
      continue;
    }
    std::string json_path;
    std::string cmd = bin_dir + "/" + t.name;
    if (t.gbench && quick) {
      cmd += " --benchmark_min_time=0.01";
    }
    if (t.emits_json) {
      json_path = out_dir + "/BENCH_" + t.name.substr(6) + ".json";
      cmd += " --json=" + json_path;
    }
    std::printf("=== %s ===\n", cmd.c_str());
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    ++ran;
    if (rc != 0) {
      std::fprintf(stderr, "bench_all: %s exited with status %d\n",
                   t.name.c_str(), rc);
      ++failed;
      continue;
    }
    if (t.emits_json && !ValidateProvenance(json_path)) {
      ++failed;
      continue;
    }
    if (t.emits_json && !compare_dir.empty()) {
      const std::string baseline =
          compare_dir + "/BENCH_" + t.name.substr(6) + ".json";
      if (!CompareAgainstBaseline(json_path, baseline, tolerance)) {
        ++failed;
      }
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "bench_all: no targets selected\n");
    return 2;
  }
  std::printf("bench_all: %d target(s) run, %d failed\n", ran, failed);
  return failed == 0 ? 0 : 1;
}

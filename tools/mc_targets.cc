#include "tools/mc_targets.h"

#include <algorithm>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot::tools {

namespace {

// Check-then-wait with the flag and the futex word in different granules:
// the waiter tests `flag` and then sleeps on `wake_word`, so a signal that
// lands between the test and the sleep is lost — the signaler bumps only
// the flag, the futex compare on `wake_word` still sees the expected value
// and the waiter blocks forever. The default schedule never preempts in
// that window; one forced sync-preempt at the FutexWait entry does.
FirmwareImage SeededLostWake() {
  ImageBuilder b("seeded-lost-wake");
  b.Compartment("app")
      .Globals(64)
      .Export("waiter",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability flag = ctx.globals();
                const Capability wake_word = ctx.globals().AddOffset(4);
                // BUG: the condition lives in `flag` but the wait is keyed
                // on `wake_word`, which nobody ever writes — the atomicity
                // of check+wait rests entirely on not being preempted here.
                while (ctx.LoadWord(flag) == 0) {
                  ctx.FutexWait(wake_word, 0, ~0u);
                }
                return StatusCap(Status::kOk);
              })
      .Export("signaler",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.StoreWord(ctx.globals(), 0, 1);
                ctx.FutexWake(ctx.globals().AddOffset(4), 1);
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "app");
  // Same priority: the sync-preempt branch round-robins to the signaler.
  b.Thread("waiter", 2, 4096, 8, "app.waiter");
  b.Thread("signaler", 2, 4096, 8, "app.signaler");
  return b.Build();
}

// Two same-priority workers block FIFO on a futex; the main thread wakes
// both at once and then prints the accumulator. The workers' updates do not
// commute (*3 vs +5), so the wake order is guest-visible: FIFO gives
// (0*3)+5 = 5, the flipped order gives (0+5)*3 = 15 on the UART.
FirmwareImage SeededWakeOrder() {
  ImageBuilder b("seeded-wake-order");
  auto worker = [](Word mul, Word add) {
    return [mul, add](CompartmentCtx& ctx, const std::vector<Capability>&) {
      const Capability wake_word = ctx.globals();
      const Capability acc = ctx.globals().AddOffset(4);
      ctx.FutexWait(wake_word, 0, ~0u);
      // BUG: read-modify-write in wake order with non-commutative updates;
      // the result depends on which waiter the kernel pops first.
      ctx.StoreWord(acc, 0, ctx.LoadWord(acc) * mul + add);
      return StatusCap(Status::kOk);
    };
  };
  b.Compartment("app")
      .Globals(64)
      .ImportMmio("uart", kUartMmioBase, kMmioRegionSize, true)
      .Export("w1", worker(3, 0))
      .Export("w2", worker(1, 5))
      .Export("main",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability wake_word = ctx.globals();
                ctx.StoreWord(wake_word, 0, 1);
                ctx.FutexWake(wake_word, 2);
                const Word g = ctx.LoadWord(ctx.globals(), 4);
                const Capability uart = ctx.Mmio("uart");
                char buf[16];
                int n = std::snprintf(buf, sizeof(buf), "acc=%u\n",
                                      static_cast<unsigned>(g));
                for (int i = 0; i < n; ++i) {
                  ctx.StoreWord(uart, 0, static_cast<uint8_t>(buf[i]));
                }
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "app");
  // Workers outrank main so both are parked on the futex before the wake;
  // equal worker priorities make the ready order follow the pop order.
  b.Thread("w1", 2, 4096, 8, "app.w1");
  b.Thread("w2", 2, 4096, 8, "app.w2");
  b.Thread("main", 1, 4096, 8, "app.main");
  return b.Build();
}

// TOCTOU across the allocator boundary: the racer checks the quota, a rival
// drains it in the preemption window, and the racer stores through the
// unchecked HeapAllocate result — an untagged status capability — and traps.
// The quota (600) fits exactly one 512-byte allocation (charged 512+16).
FirmwareImage SeededQuotaRace() {
  ImageBuilder b("seeded-quota-race");
  b.Compartment("app")
      .Globals(64)
      .AllocCap("q", 600)
      .Export("racer",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability q = ctx.SealedImport("q");
                if (ctx.HeapQuotaRemaining(q) >= 512 + 16) {
                  const Capability p = ctx.HeapAllocate(q, 512, 0);
                  // BUG: no tag check — the quota probe above is stale the
                  // moment another thread allocates against the same quota.
                  ctx.StoreWord(p, 0, 42);
                }
                return StatusCap(Status::kOk);
              })
      .Export("rival",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability q = ctx.SealedImport("q");
                const Capability p = ctx.HeapAllocate(q, 512, 0);
                if (p.tag()) {
                  ctx.StoreWord(p, 0, 7);  // held, never freed
                }
                return StatusCap(Status::kOk);
              });
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  // Same priority: the sync-preempt branch at the racer's HeapAllocate
  // entry round-robins to the rival, which drains the quota and exits.
  b.Thread("racer", 2, 8192, 8, "app.racer");
  b.Thread("rival", 2, 8192, 8, "app.rival");
  return b.Build();
}

std::vector<LintTarget> MakeSeeded() {
  std::vector<LintTarget> t = {
      {"seeded-lost-wake",
       "check-then-wait lost-wake bug; one preemption deadlocks it",
       SeededLostWake},
      {"seeded-quota-race",
       "quota check/allocate TOCTOU; one preemption traps it",
       SeededQuotaRace},
      {"seeded-wake-order",
       "non-commutative updates in wake order; flipped pop order diverges",
       SeededWakeOrder},
  };
  std::sort(t.begin(), t.end(),
            [](const LintTarget& a, const LintTarget& b) {
              return a.name < b.name;
            });
  return t;
}

}  // namespace

const std::vector<LintTarget>& McSeededTargets() {
  static const std::vector<LintTarget> kTargets = MakeSeeded();
  return kTargets;
}

const LintTarget* FindMcTarget(const std::string& name) {
  for (const auto& t : McSeededTargets()) {
    if (t.name == name) {
      return &t;
    }
  }
  return FindLintTarget(name);
}

}  // namespace cheriot::tools

// cheriot_health: run a shipped firmware image with the crash-forensics
// recorder on and export the results — a schema-versioned JSON health report
// (anomaly detectors, counters, the full crash-record ring with capability
// registers decoded and allocation-site provenance resolved) and a
// human-readable crash dump.
//
// Targets come from the same registry as cheriot_lint/cheriot_trace, so
// "assess every image we ship" is one --all invocation (the CI health-images
// job). --fleet=N runs N boards of the image under the simulated fabric and
// emits the merged fleet report, which is byte-identical for any
// --host-threads value. --check re-runs the image with forensics off and
// fails unless the fingerprints match (forensics must not move a guest
// cycle).
//
// Exit codes: 0 ok, 1 --check failed, 2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/health/forensics.h"
#include "src/health/monitor.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "tools/registry_cli.h"

using namespace cheriot;
using cheriot::tools::WriteArtifact;

namespace {

struct CliOptions {
  bool check = false;
  bool scenes = false;
  int fleet = 0;        // 0 = single board
  int host_threads = 1; // fleet worker threads
  Cycles cycles = 20'000'000;
  size_t ring = 256;
  std::string out_dir = ".";
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_health [--all | --target=NAME[,NAME...]]"
               " [options]\n"
               "\n"
               "  --list-targets     list the built-in firmware images\n"
               "  --all              assess every built-in image\n"
               "  --target=NAME      assess one built-in image (repeatable)\n"
               "  --cycles=N         guest cycles to run (default 20000000)\n"
               "  --fleet=N          run N boards under the fabric and emit\n"
               "                     the merged fleet health report\n"
               "  --host-threads=N   fleet worker threads (default 1; the\n"
               "                     report is byte-identical for any value)\n"
               "  --ring=N           crash-record ring capacity (default 256)\n"
               "  --out-dir=DIR      where to write artifacts (default .)\n"
               "  --check            verify forensics moved no guest cycle\n"
               "  --scenes           capture a full machine-state scene at\n"
               "                     each crash and dump the blobs (inspect\n"
               "                     them with cheriot_snap info/diff)\n"
               "\n"
               "artifacts (per target): health_<name>.json (schema v1)\n"
               "                        crash_<name>.txt   (crash dump)\n"
               "                        scene_<name>_*.snap (with --scenes)\n");
}

struct RunArtifacts {
  std::string health_json;
  std::string crash_txt;
  std::vector<sim::Board::Fingerprint> fingerprints;  // one per board
  // Crash-scene blobs (name suffix, serialized machine state), --scenes only.
  std::vector<std::pair<std::string, std::vector<uint8_t>>> scenes;
  Cycles now = 0;
  uint64_t crash_records = 0;
  uint64_t anomalies = 0;
  bool healthy = true;
};

void CollectScenes(health::ForensicsRecorder& recorder,
                   const std::string& prefix, RunArtifacts& a) {
  for (const auto& rec : recorder.Records()) {
    if (!rec.scene.empty()) {
      a.scenes.emplace_back(prefix + std::to_string(rec.seq), rec.scene);
    }
  }
}

RunArtifacts RunBoard(const tools::LintTarget& target, const CliOptions& opts,
                      bool forensics) {
  sim::Board board(target.build(), {});
  if (forensics) {
    health::ForensicsOptions fopts;
    fopts.ring_capacity = opts.ring;
    fopts.capture_crash_scene = opts.scenes;
    board.EnableForensics(fopts);
  }
  board.Boot();
  board.StepTo(opts.cycles);
  RunArtifacts a;
  a.fingerprints.push_back(board.fingerprint());
  a.now = board.Now();
  if (forensics) {
    const health::BoardHealth h = health::AssessBoard(board);
    a.crash_records = h.crash_records;
    a.anomalies = h.anomalies.size();
    a.healthy = h.healthy;
    a.health_json = health::HealthReport(board).Dump(2) + "\n";
    a.crash_txt = health::CrashDumpText(*board.forensics_recorder());
    CollectScenes(*board.forensics_recorder(), "", a);
  }
  return a;
}

RunArtifacts RunFleet(const tools::LintTarget& target, const CliOptions& opts,
                      bool forensics) {
  sim::FleetOptions fopts;
  fopts.host_threads = opts.host_threads;
  fopts.forensics = forensics;
  fopts.forensics_options.ring_capacity = opts.ring;
  fopts.forensics_options.capture_crash_scene = opts.scenes;
  sim::Fleet fleet(fopts);
  for (int i = 0; i < opts.fleet; ++i) {
    fleet.AddBoard(target.build());
  }
  fleet.Boot();
  fleet.Run(opts.cycles);
  RunArtifacts a;
  a.fingerprints = fleet.Fingerprints();
  a.now = fleet.Now();
  if (forensics) {
    a.health_json = health::FleetHealthReport(fleet).Dump(2) + "\n";
    for (size_t i = 0; i < fleet.size(); ++i) {
      sim::Board& b = fleet.board(i);
      const health::BoardHealth h = health::AssessBoard(b);
      a.crash_records += h.crash_records;
      a.anomalies += h.anomalies.size();
      a.healthy = a.healthy && h.healthy;
      a.crash_txt += health::CrashDumpText(*b.forensics_recorder());
      a.crash_txt += "\n";
      CollectScenes(*b.forensics_recorder(), "b" + std::to_string(i) + "_", a);
    }
  }
  return a;
}

// Runs one target; returns false on a --check failure.
bool RunTarget(const tools::LintTarget& target, const CliOptions& opts) {
  const bool fleet_mode = opts.fleet > 0;
  RunArtifacts on = fleet_mode ? RunFleet(target, opts, true)
                               : RunBoard(target, opts, true);

  const std::string base = opts.out_dir + "/";
  if (!WriteArtifact("cheriot_health",
                     base + "health_" + target.name + ".json",
                     on.health_json) ||
      !WriteArtifact("cheriot_health", base + "crash_" + target.name + ".txt",
                     on.crash_txt)) {
    return false;
  }
  for (const auto& [suffix, blob] : on.scenes) {
    if (!WriteArtifact("cheriot_health",
                       base + "scene_" + target.name + "_" + suffix + ".snap",
                       blob)) {
      return false;
    }
  }
  if (opts.scenes) {
    std::printf("%-26s %zu crash scene(s) dumped\n", target.name.c_str(),
                on.scenes.size());
  }
  std::printf("%-26s %12llu cycles %5llu crash records %3llu anomalies  %s\n",
              target.name.c_str(), static_cast<unsigned long long>(on.now),
              static_cast<unsigned long long>(on.crash_records),
              static_cast<unsigned long long>(on.anomalies),
              on.healthy ? "healthy" : "UNHEALTHY");

  if (!opts.check) {
    return true;
  }
  // Invariance: the same run with forensics off must land on the same
  // fingerprint(s) — enabling the recorder moved no guest cycle.
  RunArtifacts off = fleet_mode ? RunFleet(target, opts, false)
                                : RunBoard(target, opts, false);
  bool ok = on.fingerprints.size() == off.fingerprints.size();
  for (size_t i = 0; ok && i < on.fingerprints.size(); ++i) {
    ok = on.fingerprints[i] == off.fingerprints[i];
  }
  if (!ok) {
    std::fprintf(stderr,
                 "cheriot_health: %s: forensics changed the fingerprint\n",
                 target.name.c_str());
    for (size_t i = 0; i < on.fingerprints.size() &&
                       i < off.fingerprints.size();
         ++i) {
      const auto& a = on.fingerprints[i];
      const auto& b = off.fingerprints[i];
      if (a == b) {
        continue;
      }
      std::fprintf(
          stderr,
          "  board %zu with forensics: now=%llu accesses=%llu cap=%llu/%llu"
          " traps=%llu idle=%llu uart=%llu/%016llx reboots=%u\n"
          "  board %zu without:        now=%llu accesses=%llu cap=%llu/%llu"
          " traps=%llu idle=%llu uart=%llu/%016llx reboots=%u\n",
          i, static_cast<unsigned long long>(a.now),
          static_cast<unsigned long long>(a.accesses),
          static_cast<unsigned long long>(a.cap_loads),
          static_cast<unsigned long long>(a.cap_stores),
          static_cast<unsigned long long>(a.traps),
          static_cast<unsigned long long>(a.idle_cycles),
          static_cast<unsigned long long>(a.uart_bytes),
          static_cast<unsigned long long>(a.uart_hash), a.reboots, i,
          static_cast<unsigned long long>(b.now),
          static_cast<unsigned long long>(b.accesses),
          static_cast<unsigned long long>(b.cap_loads),
          static_cast<unsigned long long>(b.cap_stores),
          static_cast<unsigned long long>(b.traps),
          static_cast<unsigned long long>(b.idle_cycles),
          static_cast<unsigned long long>(b.uart_bytes),
          static_cast<unsigned long long>(b.uart_hash), b.reboots);
    }
    return false;
  }
  std::printf("%-26s check ok: fingerprint invariant across %zu board(s)\n",
              target.name.c_str(), on.fingerprints.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tools::RegistryCli cli("cheriot_health");
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (cli.ParseTargetFlag(arg)) {
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--scenes") {
      opts.scenes = true;
    } else if (const char* v = value("--cycles=")) {
      opts.cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--fleet=")) {
      opts.fleet = std::atoi(v);
    } else if (const char* v = value("--host-threads=")) {
      opts.host_threads = std::atoi(v);
    } else if (const char* v = value("--ring=")) {
      opts.ring = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out-dir=")) {
      opts.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_health: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  return cli.Run(
      [&opts](const tools::LintTarget& t) { return RunTarget(t, opts); },
      Usage);
}

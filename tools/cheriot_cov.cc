// cheriot_cov: run a shipped firmware image as a fleet with the authority-
// coverage recorder on and export what the firmware actually *used* of its
// static grants — cross-compartment call edges, library calls, MMIO granules
// touched, sealing keys exercised, allocation-quota consumption and peak
// trusted-stack depth per export — as the schema-versioned cov_<name>.json.
//
// --report additionally diffs the dynamic edge set against the §4 audit
// report (the static authority graph) into the least-privilege report:
// unused imports, MMIO granted-but-untouched, never-called exports, quota
// headroom, each with a suggested tightening. The same coverage file feeds
// lint rule CL010 (cheriot_lint --coverage=FILE).
//
// Targets come from the same registry as the other tools, plus the seeded
// cov-overprivileged image (a known true positive; not part of --all). The
// run is always a Fleet (--fleet=N, default 2) on the same chunked
// control-publish schedule as cheriot_flow, so broker fan-out and the
// network compartments are exercised.
//
// --check enforces the recorder contracts from DESIGN.md §14:
//   1. Zero-guest-cycle: the same run with coverage off must land on
//      identical fingerprints for EVERY board.
//   2. Worker invariance: cov_<name>.json must be byte-identical at
//      host_threads 1, 2 and 4.
//
// Exit codes: 0 ok, 1 --check failed, 2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/audit/report.h"
#include "src/cov/coverage.h"
#include "src/cov/report.h"
#include "src/json/json.h"
#include "src/kernel/system.h"
#include "src/sim/fleet.h"
#include "tools/cov_targets.h"
#include "tools/registry_cli.h"

using namespace cheriot;
using cheriot::tools::WriteArtifact;

namespace {

struct CliOptions {
  bool check = false;
  bool report = false;
  bool granules = true;
  // Test hook: corrupt the coverage-on fingerprint before the --check
  // comparison so the mismatch path (and its nonzero exit) stays covered.
  bool inject_check_failure = false;
  int fleet = 2;
  int host_threads = 1;
  int publishes = 3;  // control MQTT publishes spread across the run
  Cycles cycles = 20'000'000;
  std::string out_dir = ".";
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_cov [--all | --target=NAME[,NAME...]]"
               " [options]\n"
               "\n"
               "  --list-targets       list the built-in firmware images\n"
               "  --all                cover every built-in image (the seeded\n"
               "                       cov-overprivileged image is opt-in)\n"
               "  --target=NAME        cover one image (repeatable)\n"
               "  --fleet=N            boards in the fleet (default 2)\n"
               "  --cycles=N           guest cycles to run (default 20000000)\n"
               "  --publishes=N        control MQTT publishes spread across\n"
               "                       the run (default 3)\n"
               "  --host-threads=N     fleet worker threads (default 1; the\n"
               "                       export is identical for any value)\n"
               "  --no-granules        disable per-granule MMIO bitmaps\n"
               "  --out-dir=DIR        where to write artifacts (default .)\n"
               "  --report             also emit the least-privilege report\n"
               "                       (static grants vs dynamic exercise)\n"
               "  --check              verify coverage recording moved no\n"
               "                       guest cycle (all-board fingerprints)\n"
               "                       and the export is byte-identical at\n"
               "                       1/2/4 worker threads\n"
               "\n"
               "artifacts (per target): cov_<name>.json        (coverage)\n"
               "                        covreport_<name>.json  (--report)\n"
               "                        covreport_<name>.txt   (--report)\n");
}

struct RunArtifacts {
  std::string image;  // the firmware's own name (not the registry name)
  std::string cov_json;
  std::vector<sim::Board::Fingerprint> fingerprints;
  Cycles now = 0;
  uint64_t calls = 0;
};

// One deterministic fleet run: the same chunked schedule (with control
// publishes at fixed chunk boundaries) regardless of `cov` / worker count,
// so every invocation is comparing like with like.
RunArtifacts RunFleet(const tools::LintTarget& target, const CliOptions& opts,
                      bool cov_on, int host_threads) {
  sim::FleetOptions fopts;
  fopts.host_threads = host_threads;
  fopts.cov = cov_on;
  fopts.cov_options.mmio_granules = opts.granules;
  sim::Fleet fleet(fopts);
  RunArtifacts a;
  for (int i = 0; i < opts.fleet; ++i) {
    FirmwareImage image = target.build();
    a.image = image.name;
    fleet.AddBoard(std::move(image));
  }
  fleet.Boot();
  const int chunks = opts.publishes + 1;
  const Cycles chunk = opts.cycles / static_cast<Cycles>(chunks);
  for (int i = 0; i < chunks; ++i) {
    fleet.Run(i + 1 == chunks ? opts.cycles - chunk * (chunks - 1) : chunk);
    if (i + 1 < chunks) {
      const std::string payload = "cmd" + std::to_string(i);
      fleet.PublishMqtt("leds", net::Bytes(payload.begin(), payload.end()));
    }
  }
  a.fingerprints = fleet.Fingerprints();
  a.now = fleet.Now();
  if (cov_on) {
    const std::vector<const cov::CovRecorder*> boards = fleet.CovRecorders();
    a.cov_json = cov::CoverageJson(a.image, boards).Dump(2) + "\n";
    for (const cov::CovRecorder* r : boards) {
      a.calls += r->calls_recorded();
    }
  }
  return a;
}

// The static side of the diff: boot the image on a throwaway machine (the
// loader runs, no guest instruction does) and serialize the grant table.
json::Value AuditReportForTarget(const tools::LintTarget& target) {
  Machine machine;
  System sys(machine, target.build());
  sys.Boot();
  return audit::BuildReport(sys.boot());
}

// Runs one target; returns false on a --check failure.
bool RunTarget(const tools::LintTarget& target, const CliOptions& opts) {
  RunArtifacts covered = RunFleet(target, opts, true, opts.host_threads);

  const std::string base = opts.out_dir + "/";
  if (!WriteArtifact("cheriot_cov", base + "cov_" + target.name + ".json",
                     covered.cov_json)) {
    return false;
  }
  uint64_t warnings = 0;
  if (opts.report) {
    const json::Value coverage = json::Parse(covered.cov_json);
    const json::Value report =
        cov::LeastPrivilegeJson(AuditReportForTarget(target), coverage);
    warnings = static_cast<uint64_t>(report["summary"]["warnings"].AsInt());
    if (!WriteArtifact("cheriot_cov",
                       base + "covreport_" + target.name + ".json",
                       report.Dump(2) + "\n") ||
        !WriteArtifact("cheriot_cov",
                       base + "covreport_" + target.name + ".txt",
                       cov::LeastPrivilegeText(report))) {
      return false;
    }
  }
  std::printf("%-26s %12llu cycles %8llu calls%s\n", target.name.c_str(),
              static_cast<unsigned long long>(covered.now),
              static_cast<unsigned long long>(covered.calls),
              opts.report
                  ? ("  " + std::to_string(warnings) + " warning(s)").c_str()
                  : "");

  if (!opts.check) {
    return true;
  }
  if (opts.inject_check_failure && !covered.fingerprints.empty()) {
    ++covered.fingerprints[0].uart_hash;
  }
  bool ok = true;
  // Contract 1: recording off, same run — every board's fingerprint matches.
  RunArtifacts plain = RunFleet(target, opts, false, opts.host_threads);
  for (size_t b = 0; b < covered.fingerprints.size(); ++b) {
    if (!(plain.fingerprints[b] == covered.fingerprints[b])) {
      std::fprintf(
          stderr,
          "cheriot_cov: %s: coverage recording changed board %zu's "
          "fingerprint (now %llu vs %llu, uart %016llx vs %016llx)\n",
          target.name.c_str(), b,
          static_cast<unsigned long long>(covered.fingerprints[b].now),
          static_cast<unsigned long long>(plain.fingerprints[b].now),
          static_cast<unsigned long long>(covered.fingerprints[b].uart_hash),
          static_cast<unsigned long long>(plain.fingerprints[b].uart_hash));
      ok = false;
    }
  }
  // Contract 2: the export is byte-identical at 1, 2 and 4 worker threads.
  const RunArtifacts one = RunFleet(target, opts, true, 1);
  for (int threads : {2, 4}) {
    const RunArtifacts multi = RunFleet(target, opts, true, threads);
    if (multi.cov_json != one.cov_json) {
      std::fprintf(stderr,
                   "cheriot_cov: %s: coverage differs between 1 and %d "
                   "worker threads\n",
                   target.name.c_str(), threads);
      ok = false;
    }
  }
  if (ok) {
    std::printf("%-26s check ok: fingerprints invariant on %zu boards, "
                "coverage stable at 1/2/4 workers\n",
                target.name.c_str(), covered.fingerprints.size());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  tools::RegistryCli cli("cheriot_cov");
  cli.AddExtraTargets(&tools::CovSeededTargets());
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (cli.ParseTargetFlag(arg)) {
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--report") {
      opts.report = true;
    } else if (arg == "--no-granules") {
      opts.granules = false;
    } else if (arg == "--inject-check-failure") {
      opts.inject_check_failure = true;
    } else if (const char* v = value("--cycles=")) {
      opts.cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--fleet=")) {
      opts.fleet = std::atoi(v);
    } else if (const char* v = value("--publishes=")) {
      opts.publishes = std::atoi(v);
    } else if (const char* v = value("--host-threads=")) {
      opts.host_threads = std::atoi(v);
    } else if (const char* v = value("--out-dir=")) {
      opts.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_cov: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (!cli.list_requested() && (opts.fleet < 1 || opts.publishes < 0)) {
    Usage(stderr);
    return 2;
  }
  return cli.Run(
      [&opts](const tools::LintTarget& t) { return RunTarget(t, opts); },
      Usage);
}

// cheriot_trace: run a shipped firmware image with the flight recorder on
// and export the results — Chrome trace-event JSON (load in Perfetto or
// chrome://tracing), a per-compartment cycle profile with collapsed stacks,
// and a versioned metrics snapshot.
//
// Targets come from the same registry as cheriot_lint, so "trace every image
// we ship" is one --all invocation (the CI trace-images job). --fleet=N runs
// N boards of the image under the simulated fabric and merges the per-board
// streams into one trace. --check re-runs the image with tracing off and
// fails unless the fingerprints match (tracing must not move a guest cycle)
// and the profiler's attributed cycles equal the board's cycle counter.
//
// Exit codes: 0 ok, 1 --check failed, 2 usage or load failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "tools/lint_targets.h"

using namespace cheriot;
using cheriot::tools::FindLintTarget;
using cheriot::tools::LintTargets;

namespace {

struct CliOptions {
  std::vector<std::string> targets;
  bool all = false;
  bool list = false;
  bool check = false;
  // Test hook: corrupt the traced fingerprint before the --check comparison
  // so the mismatch path (and its nonzero exit) stays covered.
  bool inject_check_failure = false;
  int fleet = 0;        // 0 = single board
  int host_threads = 1; // fleet worker threads
  Cycles cycles = 20'000'000;
  size_t ring = 1 << 16;
  std::string out_dir = ".";
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cheriot_trace [--all | --target=NAME[,NAME...]]"
               " [options]\n"
               "\n"
               "  --list-targets     list the built-in firmware images\n"
               "  --all              trace every built-in image\n"
               "  --target=NAME      trace one built-in image (repeatable)\n"
               "  --cycles=N         guest cycles to run (default 20000000)\n"
               "  --fleet=N          run N boards under the fabric and merge\n"
               "  --host-threads=N   fleet worker threads (default 1; the\n"
               "                     result is identical for any value)\n"
               "  --ring=N           ring capacity in events (default 65536)\n"
               "  --out-dir=DIR      where to write artifacts (default .)\n"
               "  --check            verify tracing moved no guest cycle and\n"
               "                     attributed cycles == the cycle counter\n"
               "\n"
               "artifacts (per target): trace_<name>.json  (Perfetto)\n"
               "                        profile_<name>.txt (table + stacks)\n"
               "                        metrics_<name>.json (schema v1)\n");
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cheriot_trace: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

std::vector<trace::ThreadStackStats> StatsFor(System& sys) {
  std::vector<trace::ThreadStackStats> out;
  for (const GuestThread& t : sys.threads()) {
    out.push_back({t.name, t.stack_size, t.peak_stack_bytes,
                   t.compartment_calls});
  }
  return out;
}

struct RunArtifacts {
  std::string trace_json;
  std::string metrics_json;
  std::string profile_txt;
  sim::Board::Fingerprint fingerprint;
  Cycles now = 0;
  // One (cycle counter, attributed cycles) pair per board. The profiler's
  // invariant is per board: every guest cycle lands in exactly one bucket,
  // so the two must be equal.
  std::vector<std::pair<Cycles, Cycles>> attribution;
  uint64_t events = 0;
  uint64_t dropped = 0;
};

RunArtifacts RunBoard(const tools::LintTarget& target, const CliOptions& opts,
                      bool traced) {
  sim::Board board(target.build(), {});
  trace::TraceRecorder* tr = nullptr;
  if (traced) {
    trace::TraceOptions topts;
    topts.ring_capacity = opts.ring;
    tr = board.EnableTrace(topts);
  }
  board.Boot();
  board.StepTo(opts.cycles);
  RunArtifacts a;
  a.fingerprint = board.fingerprint();
  a.now = board.Now();
  if (tr != nullptr) {
    a.attribution.emplace_back(board.Now(), tr->attributed_cycles());
    a.events = tr->emitted();
    a.dropped = tr->dropped();
    a.trace_json = trace::ChromeTrace(*tr).Dump(2) + "\n";
    a.metrics_json =
        trace::MetricsSnapshot(*tr, StatsFor(board.system())).Dump(2) + "\n";
    a.profile_txt =
        trace::ProfileText(*tr) + "\n" + trace::CollapsedStacksText(*tr);
  }
  return a;
}

RunArtifacts RunFleet(const tools::LintTarget& target, const CliOptions& opts,
                      bool traced) {
  sim::FleetOptions fopts;
  fopts.host_threads = opts.host_threads;
  fopts.trace = traced;
  fopts.trace_options.ring_capacity = opts.ring;
  sim::Fleet fleet(fopts);
  for (int i = 0; i < opts.fleet; ++i) {
    fleet.AddBoard(target.build());
  }
  fleet.Boot();
  fleet.Run(opts.cycles);
  RunArtifacts a;
  a.fingerprint = fleet.board(0).fingerprint();
  a.now = fleet.Now();
  if (traced) {
    a.trace_json = trace::MergedChromeTrace(fleet.TraceRecorders()).Dump(2) +
                   "\n";
    json::Array metrics;
    std::string profiles;
    for (trace::TraceRecorder* tr : fleet.TraceRecorders()) {
      std::vector<trace::ThreadStackStats> stats;
      if (tr->board_index() >= 0) {
        sim::Board& b = fleet.board(static_cast<size_t>(tr->board_index()));
        stats = StatsFor(b.system());
        a.attribution.emplace_back(b.Now(), tr->attributed_cycles());
      }
      a.events += tr->emitted();
      a.dropped += tr->dropped();
      metrics.push_back(trace::MetricsSnapshot(*tr, stats));
      profiles += trace::ProfileText(*tr) + "\n";
      profiles += trace::CollapsedStacksText(*tr) + "\n";
    }
    a.metrics_json = json::Value(std::move(metrics)).Dump(2) + "\n";
    a.profile_txt = std::move(profiles);
  }
  return a;
}

// Runs one target; returns false on a --check failure.
bool RunTarget(const tools::LintTarget& target, const CliOptions& opts) {
  const bool fleet_mode = opts.fleet > 0;
  RunArtifacts traced = fleet_mode ? RunFleet(target, opts, true)
                                   : RunBoard(target, opts, true);

  const std::string base = opts.out_dir + "/";
  if (!WriteFile(base + "trace_" + target.name + ".json", traced.trace_json) ||
      !WriteFile(base + "metrics_" + target.name + ".json",
                 traced.metrics_json) ||
      !WriteFile(base + "profile_" + target.name + ".txt",
                 traced.profile_txt)) {
    return false;
  }
  std::printf("%-26s %12llu cycles %8llu events (%llu dropped)\n",
              target.name.c_str(),
              static_cast<unsigned long long>(traced.now),
              static_cast<unsigned long long>(traced.events),
              static_cast<unsigned long long>(traced.dropped));

  if (!opts.check) {
    return true;
  }
  if (opts.inject_check_failure) {
    ++traced.fingerprint.uart_hash;
  }
  // Invariance: the same run with tracing off must land on the same
  // fingerprint — enabling the recorder moved no guest cycle.
  RunArtifacts plain = fleet_mode ? RunFleet(target, opts, false)
                                  : RunBoard(target, opts, false);
  bool ok = true;
  if (!(plain.fingerprint == traced.fingerprint)) {
    const auto& a = traced.fingerprint;
    const auto& b = plain.fingerprint;
    std::fprintf(stderr,
                 "cheriot_trace: %s: tracing changed the fingerprint\n"
                 "  traced:   now=%llu accesses=%llu cap=%llu/%llu traps=%llu"
                 " idle=%llu uart=%llu/%016llx reboots=%u\n"
                 "  untraced: now=%llu accesses=%llu cap=%llu/%llu traps=%llu"
                 " idle=%llu uart=%llu/%016llx reboots=%u\n",
                 target.name.c_str(),
                 static_cast<unsigned long long>(a.now),
                 static_cast<unsigned long long>(a.accesses),
                 static_cast<unsigned long long>(a.cap_loads),
                 static_cast<unsigned long long>(a.cap_stores),
                 static_cast<unsigned long long>(a.traps),
                 static_cast<unsigned long long>(a.idle_cycles),
                 static_cast<unsigned long long>(a.uart_bytes),
                 static_cast<unsigned long long>(a.uart_hash), a.reboots,
                 static_cast<unsigned long long>(b.now),
                 static_cast<unsigned long long>(b.accesses),
                 static_cast<unsigned long long>(b.cap_loads),
                 static_cast<unsigned long long>(b.cap_stores),
                 static_cast<unsigned long long>(b.traps),
                 static_cast<unsigned long long>(b.idle_cycles),
                 static_cast<unsigned long long>(b.uart_bytes),
                 static_cast<unsigned long long>(b.uart_hash), b.reboots);
    ok = false;
  }
  // Attribution: every guest cycle lands in exactly one bucket, so each
  // board's attributed cycles must equal its own cycle counter exactly.
  Cycles counter = 0;
  Cycles attributed = 0;
  for (size_t i = 0; i < traced.attribution.size(); ++i) {
    const auto& [now, attr] = traced.attribution[i];
    counter += now;
    attributed += attr;
    if (attr != now) {
      std::fprintf(stderr,
                   "cheriot_trace: %s: board %zu attributed %llu != cycle "
                   "counter %llu\n",
                   target.name.c_str(), i,
                   static_cast<unsigned long long>(attr),
                   static_cast<unsigned long long>(now));
      ok = false;
    }
  }
  if (ok) {
    std::printf("%-26s check ok: fingerprint invariant, %llu/%llu cycles "
                "attributed\n",
                target.name.c_str(),
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(counter));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-targets") {
      opts.list = true;
    } else if (arg == "--all") {
      opts.all = true;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--inject-check-failure") {
      opts.inject_check_failure = true;
    } else if (const char* v = value("--target=")) {
      for (auto& t : SplitCsv(v)) {
        opts.targets.push_back(t);
      }
    } else if (const char* v = value("--cycles=")) {
      opts.cycles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--fleet=")) {
      opts.fleet = std::atoi(v);
    } else if (const char* v = value("--host-threads=")) {
      opts.host_threads = std::atoi(v);
    } else if (const char* v = value("--ring=")) {
      opts.ring = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out-dir=")) {
      opts.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cheriot_trace: unknown option %s\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }

  if (opts.list) {
    for (const auto& t : LintTargets()) {
      std::printf("%-26s %s\n", t.name.c_str(), t.description.c_str());
    }
    return 0;
  }
  if (opts.all) {
    for (const auto& t : LintTargets()) {
      opts.targets.push_back(t.name);
    }
  }
  if (opts.targets.empty()) {
    Usage(stderr);
    return 2;
  }

  bool ok = true;
  for (const auto& name : opts.targets) {
    const tools::LintTarget* t = FindLintTarget(name);
    if (t == nullptr) {
      std::fprintf(stderr,
                   "cheriot_trace: unknown target '%s' (--list-targets)\n",
                   name.c_str());
      return 2;
    }
    try {
      ok = RunTarget(*t, opts) && ok;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cheriot_trace: %s failed: %s\n", name.c_str(),
                   e.what());
      return 2;
    }
  }
  return ok ? 0 : 1;
}

// Table 3 reproduction: average latencies of the core CHERIoT RTOS APIs
// (opaque objects, allocation, interface hardening, error handling), in
// simulated CPU cycles.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

// Runs `body` in a fully-wired compartment and returns the cycles it stores.
double RunGuestBench(const std::function<double(CompartmentCtx&)>& body,
                     ErrorHandlerFn handler = nullptr) {
  Machine machine;
  auto cycles = std::make_shared<double>(0);
  ImageBuilder b("bench");
  auto comp = b.Compartment("bench");
  comp.Globals(64)
      .AllocCap("q", 64 * 1024)
      .AllocCap("q2", 64 * 1024)
      .Export("main", [body, cycles](CompartmentCtx& ctx,
                                     const std::vector<Capability>&) {
        *cycles = body(ctx);
        return StatusCap(Status::kOk);
      });
  if (handler) {
    comp.ErrorHandler(std::move(handler));
  }
  sync::UseAllocator(b, "bench");
  sync::UseScheduler(b, "bench");
  b.Compartment("bench")
      .ImportCompartment("alloc.token_key_new")
      .ImportCompartment("alloc.token_obj_new")
      .ImportCompartment("alloc.token_obj_destroy");
  b.Thread("t", 2, 8192, 8, "bench.main");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(20'000'000'000ull);
  return *cycles;
}

template <typename Fn>
double Average(CompartmentCtx& ctx, int iterations, Fn&& op) {
  op();  // warm-up
  const Cycles t0 = ctx.Now();
  for (int i = 0; i < iterations; ++i) {
    op();
  }
  return static_cast<double>(ctx.Now() - t0) / iterations;
}

double MeasureUnseal() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability q = ctx.SealedImport("q");
    const Capability key = ctx.TokenKeyNew();
    const Capability obj = ctx.TokenObjNew(q, key, 32);
    return Average(ctx, 50, [&] {
      benchmark::DoNotOptimize(ctx.TokenUnseal(key, obj));
    });
  });
}

double MeasureSealedAlloc() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability q = ctx.SealedImport("q");
    const Capability key = ctx.TokenKeyNew();
    std::vector<Capability> objs;
    const double cycles = Average(ctx, 20, [&] {
      objs.push_back(ctx.TokenObjNew(q, key, 32));
    });
    for (const auto& o : objs) {
      ctx.TokenObjDestroy(q, key, o);
    }
    return cycles;
  });
}

double MeasureKeyNew() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    return Average(ctx, 20, [&] { benchmark::DoNotOptimize(ctx.TokenKeyNew()); });
  });
}

double MeasureDeprivilege() {
  // Pure capability register manipulation; modelled at a handful of cycles
  // (Table 3 reports "<10").
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability g = ctx.globals();
    const Cycles t0 = ctx.Now();
    for (int i = 0; i < 100; ++i) {
      ctx.Burn(cost::kInstruction * 4);  // candidate: 2 bounds + 2 perms ops
      benchmark::DoNotOptimize(hardening::ImmutableNoCapture(g));
    }
    return static_cast<double>(ctx.Now() - t0) / 100;
  });
}

double MeasureCheckPointer() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability g = ctx.globals();
    const Cycles t0 = ctx.Now();
    for (int i = 0; i < 100; ++i) {
      benchmark::DoNotOptimize(hardening::CheckPointerCosted(
          ctx.machine(), g, 16,
          PermissionSet({Permission::kLoad, Permission::kStore})));
    }
    return static_cast<double>(ctx.Now() - t0) / 100;
  });
}

double MeasureEphemeralClaim() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability q = ctx.SealedImport("q");
    const Capability p = ctx.HeapAllocate(q, 64);
    return Average(ctx, 50, [&] { ctx.EphemeralClaim(p); });
  });
}

double MeasureClaimUnclaim() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    const Capability q = ctx.SealedImport("q");
    const Capability q2 = ctx.SealedImport("q2");
    const Capability p = ctx.HeapAllocate(q, 64);
    return Average(ctx, 20, [&] {
      ctx.HeapClaim(q2, p);
      ctx.HeapFree(q2, p);  // releases the claim
    });
  });
}

double MeasureUnwindNoHandler() {
  // Fault in a handler-less callee: cost above an empty call is the trap +
  // default unwind path.
  Machine machine;
  auto cycles = std::make_shared<double>(0);
  ImageBuilder b("unwind");
  b.Compartment("victim")
      .Export("nop",
              [](CompartmentCtx&, const std::vector<Capability>&) {
                return StatusCap(Status::kOk);
              })
      .Export("crash", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.LoadWord(Capability::FromWord(1), 0);
        return StatusCap(Status::kOk);
      });
  b.Compartment("bench")
      .ImportCompartment("victim.nop")
      .ImportCompartment("victim.crash")
      .Export("main", [cycles](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.Call("victim.nop", {});
        ctx.Call("victim.crash", {});
        const Cycles t0 = ctx.Now();
        for (int i = 0; i < 20; ++i) {
          ctx.Call("victim.crash", {});
        }
        const double with_fault = static_cast<double>(ctx.Now() - t0) / 20;
        const Cycles t1 = ctx.Now();
        for (int i = 0; i < 20; ++i) {
          ctx.Call("victim.nop", {});
        }
        const double plain = static_cast<double>(ctx.Now() - t1) / 20;
        // The faulting load itself costs kLoadWord before trapping.
        *cycles = with_fault - plain - cost::kLoadWord;
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 2, 8192, 8, "bench.main");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(8'000'000'000ull);
  return *cycles;
}

double MeasureGlobalHandlerFault() {
  return RunGuestBench(
      [](CompartmentCtx& ctx) {
        const Capability g = ctx.globals();
        // Handler corrects the authority, so the op resumes (install-context).
        const Cycles t0 = ctx.Now();
        for (int i = 0; i < 20; ++i) {
          benchmark::DoNotOptimize(ctx.LoadWord(Capability::FromWord(1), 0));
        }
        return static_cast<double>(ctx.Now() - t0) / 20 -
               2 * cost::kLoadWord;  // the faulting + retried loads
      },
      [](CompartmentCtx& ctx, TrapInfo& info) {
        info.regs.a[0] = ctx.globals();
        return ErrorRecovery::kInstallContext;
      });
}

double MeasureScopedNonError() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    return Average(ctx, 50, [&] { ctx.Try([] {}); });
  });
}

double MeasureScopedFault() {
  return RunGuestBench([](CompartmentCtx& ctx) {
    return Average(ctx, 50, [&] {
      ctx.Try([&] { ctx.LoadWord(Capability::FromWord(1), 0); });
    }) - cost::kLoadWord;
  });
}

struct Row {
  const char* section;
  const char* name;
  double (*fn)();
  const char* paper;
};

const Row kRows[] = {
    {"Opaque Objects", "Unseal an object", MeasureUnseal, "44.8"},
    {"Opaque Objects", "Allocate a sealed object", MeasureSealedAlloc, "2432.2"},
    {"Opaque Objects", "Allocate a new key", MeasureKeyNew, "688"},
    {"Interface Hardening", "De-privilege a pointer", MeasureDeprivilege, "<10"},
    {"Interface Hardening", "Check a pointer", MeasureCheckPointer, "44"},
    {"Interface Hardening", "Ephemeral claim", MeasureEphemeralClaim, "182"},
    {"Interface Hardening", "Heap claim + unclaim", MeasureClaimUnclaim, "3714"},
    {"Error Handling", "Fault + unwind (no handler)", MeasureUnwindNoHandler, "109"},
    {"Error Handling", "Fault + resume (global handler)", MeasureGlobalHandlerFault, "413"},
    {"Error Handling", "Scoped handler, non-error path", MeasureScopedNonError, "87"},
    {"Error Handling", "Scoped handler, fault", MeasureScopedFault, "222"},
};

void RegisterAll() {
  for (const Row& row : kRows) {
    benchmark::RegisterBenchmark(row.name, [&row](benchmark::State& state) {
      const double cycles = row.fn();
      for (auto _ : state) {
        benchmark::DoNotOptimize(cycles);
      }
      state.counters["sim_cycles"] = cycles;
    });
  }
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  cheriot::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Table 3: average latencies of core APIs (cycles) ===\n");
  std::printf("  %-22s %-32s %10s %10s\n", "API", "operation", "measured",
              "paper");
  for (const auto& row : cheriot::kRows) {
    std::printf("  %-22s %-32s %10.1f %10s\n", row.section, row.name,
                row.fn(), row.paper);
  }
  return 0;
}

// Fleet scaling: aggregate simulated board-cycles per wall-clock second as a
// function of host worker threads, measured over the fleet's *busy* phase —
// boot, DHCP, TLS-lite handshake and a burst of back-to-back MQTT publishes
// from every board. The idle steady state is deliberately excluded: idle
// boards skip cycles in O(1), so including it would measure epoch-barrier
// overhead rather than parallel simulation. Because the determinism contract
// makes results bit-identical for every thread count (tests/fleet_test.cpp),
// the thread axis only moves wall-clock time — which is exactly what this
// bench records in BENCH_fleet_scale.json.
//
// Note: the measured speedup is bounded by the host's physical core count
// (recorded in the JSON). On a single-core host every worker serializes and
// each epoch barrier adds context switches, so speedup_4_vs_1 lands at or
// below 1.0; that is the honest number for that host, not a bug.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/provenance.h"
#include "src/base/costs.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"

namespace cheriot {
namespace {

constexpr int kBoards = 8;
constexpr int kBusyPublishes = 64;
constexpr int kPublishGoal = 1 + kBusyPublishes;  // announce + burst
constexpr Cycles kMaxHorizon = 60 * cost::kCoreHz;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Result {
  int threads;
  double seconds;
  uint64_t sim_cycles;  // summed over boards
  uint64_t frames;
  bool completed;
  double cycles_per_sec() const { return sim_cycles / seconds; }
  double frames_per_sec() const { return frames / seconds; }
};

Result RunConfig(int host_threads) {
  sim::FleetOptions options;
  options.host_threads = host_threads;
  sim::Fleet fleet(options);
  std::vector<std::shared_ptr<sim::FleetAppState>> states;
  for (int i = 0; i < kBoards; ++i) {
    auto state = std::make_shared<sim::FleetAppState>();
    sim::FleetAppOptions app;
    app.board_index = i;
    app.busy_publishes = kBusyPublishes;
    fleet.AddBoard(sim::BuildFleetAppImage(state, app));
    states.push_back(std::move(state));
  }
  fleet.Boot();

  const auto t0 = std::chrono::steady_clock::now();
  const bool completed = fleet.RunUntil(
      [&] {
        for (const auto& s : states) {
          if (s->publishes < kPublishGoal) {
            return false;
          }
        }
        return true;
      },
      kMaxHorizon);
  Result r;
  r.threads = host_threads;
  r.seconds = SecondsSince(t0);
  r.sim_cycles = 0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    r.sim_cycles += fleet.board(i).Now();
  }
  r.frames = fleet.frames_exchanged();
  r.completed = completed;
  benchmark::DoNotOptimize(r.frames);
  return r;
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_fleet_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // Reach steady-state CPU frequency before timing anything.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  std::printf(
      "=== fleet scaling: %d boards, busy phase = bring-up + %d publishes "
      "===\n",
      kBoards, kBusyPublishes);
  std::printf("host hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  const int kThreadCounts[] = {1, 2, 4};
  std::vector<Result> results;
  for (int threads : kThreadCounts) {
    // Best of three: the minimum is least disturbed by host scheduling noise.
    Result best = RunConfig(threads);
    for (int run = 1; run < 3; ++run) {
      Result r = RunConfig(threads);
      if (r.seconds < best.seconds) {
        best = r;
      }
    }
    std::printf(
        "  threads=%d  %8.1f M sim-cycles/s  %8.0f frames/s  (%.3f s%s)\n",
        best.threads, best.cycles_per_sec() / 1e6, best.frames_per_sec(),
        best.seconds, best.completed ? "" : ", workload DID NOT complete");
    results.push_back(best);
  }

  const double speedup_4_vs_1 =
      results[2].cycles_per_sec() / results[0].cycles_per_sec();
  std::printf("  speedup 4 threads vs 1: %.2fx\n", speedup_4_vs_1);

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"fleet_scale\",\n");
  std::fprintf(f,
               "  \"unit\": \"aggregate simulated cycles per host second\",\n");
  std::fprintf(f, "  \"boards\": %d,\n", kBoards);
  std::fprintf(f, "  \"busy_publishes\": %d,\n", kBusyPublishes);
  std::fprintf(f, "  \"host_hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  for (const Result& r : results) {
    std::fprintf(f, "  \"threads_%d_cycles_per_sec\": %.0f,\n", r.threads,
                 r.cycles_per_sec());
    std::fprintf(f, "  \"threads_%d_frames_per_sec\": %.0f,\n", r.threads,
                 r.frames_per_sec());
  }
  std::fprintf(f, "  \"speedup_4_vs_1\": %.3f\n}\n", speedup_4_vs_1);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

// Fleet scaling: aggregate simulated board-cycles per wall-clock second as a
// function of host worker threads, measured over the fleet's *busy* phase —
// boot, DHCP, TLS-lite handshake and a burst of back-to-back MQTT publishes
// from every board. Because the determinism contract makes results
// bit-identical for every thread count (tests/fleet_test.cpp), the thread
// axis only moves wall-clock time — which is exactly what this bench records
// in BENCH_fleet_scale.json, together with the busy/idle cycle split and the
// number of epoch barriers each configuration took.
//
// A second, idle-heavy scenario measures what idle fast-forward and adaptive
// epoch coarsening buy on their own: the same fleet brought up to steady
// state and then left polling for 60 simulated seconds, run single-worker
// with fast-forward on vs off. Idle boards skip to their next event in O(1)
// and all-idle fleets coarsen the epoch past the link-latency bound, so this
// ratio is the headline win for telemetry-style fleets.
//
// Honesty on small hosts: the busy-phase speedup is bounded by the host's
// physical core count. When host_hardware_concurrency < the largest worker
// count tested, every worker serializes and each epoch barrier adds host
// context switches; the JSON then carries "host_undersized": true and the
// console omits the speedup headline rather than print a misleading one.
//
// --demo-boards=N boots an N-board fleet (no busy burst), brings it to DHCP
// steady state and idles it for 10 simulated seconds — the 1000-board demo
// from EXPERIMENTS.md. Off by default; it is a demo, not a benchmark.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/provenance.h"
#include "src/base/costs.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"

namespace cheriot {
namespace {

constexpr int kBoards = 8;
constexpr int kBusyPublishes = 64;
constexpr int kPublishGoal = 1 + kBusyPublishes;  // announce + burst
constexpr Cycles kMaxHorizon = 60 * cost::kCoreHz;
constexpr Cycles kIdleHorizon = 60 * cost::kCoreHz;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Result {
  int threads;
  double seconds;
  uint64_t sim_cycles;    // summed over boards
  uint64_t busy_cycles;   // sim_cycles minus the idle share
  uint64_t idle_cycles;   // summed idle_cycles fingerprint field
  uint64_t barriers;      // epoch barriers the run took
  uint64_t frames;
  bool completed;
  double cycles_per_sec() const { return sim_cycles / seconds; }
  double frames_per_sec() const { return frames / seconds; }
};

struct FleetUnderTest {
  std::unique_ptr<sim::Fleet> fleet;
  std::vector<std::shared_ptr<sim::FleetAppState>> states;
};

FleetUnderTest MakeFleet(int boards, int host_threads, int busy_publishes,
                         Cycles poll_timeout = 0) {
  FleetUnderTest out;
  sim::FleetOptions options;
  options.host_threads = host_threads;
  out.fleet = std::make_unique<sim::Fleet>(options);
  for (int i = 0; i < boards; ++i) {
    auto state = std::make_shared<sim::FleetAppState>();
    sim::FleetAppOptions app;
    app.board_index = i;
    app.busy_publishes = busy_publishes;
    app.poll_timeout = poll_timeout;
    out.fleet->AddBoard(sim::BuildFleetAppImage(state, app));
    out.states.push_back(std::move(state));
  }
  out.fleet->Boot();
  return out;
}

// Sums the per-board fingerprints into the Result's cycle split. busy + idle
// == clock by construction (DESIGN.md §6.1), so busy is derived, not sampled.
void FillCycleSplit(sim::Fleet& fleet, Result* r) {
  r->sim_cycles = 0;
  r->idle_cycles = 0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    auto fp = fleet.board(i).fingerprint();
    r->sim_cycles += fp.now;
    r->idle_cycles += fp.idle_cycles;
  }
  r->busy_cycles = r->sim_cycles - r->idle_cycles;
  r->barriers = fleet.barriers();
  r->frames = fleet.frames_exchanged();
}

Result RunBusyConfig(int host_threads) {
  FleetUnderTest f = MakeFleet(kBoards, host_threads, kBusyPublishes);
  const auto t0 = std::chrono::steady_clock::now();
  const bool completed = f.fleet->RunUntil(
      [&] {
        for (const auto& s : f.states) {
          if (s->publishes < kPublishGoal) {
            return false;
          }
        }
        return true;
      },
      kMaxHorizon);
  Result r;
  r.threads = host_threads;
  r.seconds = SecondsSince(t0);
  r.completed = completed;
  FillCycleSplit(*f.fleet, &r);
  benchmark::DoNotOptimize(r.frames);
  return r;
}

// Idle-heavy scenario: bring the fleet to MQTT steady state (untimed), then
// time 60 simulated seconds of the poll loop. fast-forward on/off is forced
// through the env override so the comparison uses the exact production path.
Result RunIdleConfig(bool fast_forward) {
  setenv("CHERIOT_FLEET_FAST_FORWARD", fast_forward ? "1" : "0", 1);
  // Telemetry cadence: boards sleep 5 simulated seconds between polls, so
  // nearly all of the measured span is idle time.
  FleetUnderTest f = MakeFleet(kBoards, /*host_threads=*/1,
                               /*busy_publishes=*/0,
                               /*poll_timeout=*/5 * cost::kCoreHz);
  f.fleet->RunUntil(
      [&] {
        for (const auto& s : f.states) {
          if (!s->connected) {
            return false;
          }
        }
        return true;
      },
      kMaxHorizon);
  const uint64_t barriers_before = f.fleet->barriers();
  uint64_t cycles_before = 0;
  for (size_t i = 0; i < f.fleet->size(); ++i) {
    cycles_before += f.fleet->board(i).Now();
  }
  const auto t0 = std::chrono::steady_clock::now();
  f.fleet->Run(kIdleHorizon);
  Result r;
  r.threads = 1;
  r.seconds = SecondsSince(t0);
  r.completed = true;
  FillCycleSplit(*f.fleet, &r);
  r.sim_cycles -= cycles_before;  // time only the idle span
  r.barriers -= barriers_before;
  unsetenv("CHERIOT_FLEET_FAST_FORWARD");
  benchmark::DoNotOptimize(r.frames);
  return r;
}

// --demo-boards=N: DHCP bring-up + 10 idle seconds at fleet scale.
void RunDemo(int boards) {
  std::printf("=== fleet demo: %d boards, bring-up + 10 idle seconds ===\n",
              boards);
  const auto t0 = std::chrono::steady_clock::now();
  FleetUnderTest f = MakeFleet(boards, /*host_threads=*/4,
                               /*busy_publishes=*/0);
  const bool up = f.fleet->RunUntil(
      [&] {
        for (const auto& s : f.states) {
          if (!s->ready) {
            return false;
          }
        }
        return true;
      },
      kMaxHorizon);
  const double bringup = SecondsSince(t0);
  const auto t1 = std::chrono::steady_clock::now();
  f.fleet->Run(10 * cost::kCoreHz);
  const double idle = SecondsSince(t1);
  Result r;
  r.seconds = bringup + idle;
  FillCycleSplit(*f.fleet, &r);
  std::printf(
      "  bring-up%s %.1f s, idle span %.1f s, %llu barriers, "
      "%llu frames, busy/idle = %llu/%llu Mcycles\n",
      up ? "" : " (incomplete)", bringup, idle,
      static_cast<unsigned long long>(r.barriers),
      static_cast<unsigned long long>(r.frames),
      static_cast<unsigned long long>(r.busy_cycles / 1000000),
      static_cast<unsigned long long>(r.idle_cycles / 1000000));
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_fleet_scale.json";
  int demo_boards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--demo-boards=", 14) == 0) {
      demo_boards = std::atoi(argv[i] + 14);
    }
  }
  if (demo_boards > 0) {
    RunDemo(demo_boards);
    return 0;
  }

  // Reach steady-state CPU frequency before timing anything.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  std::printf(
      "=== fleet scaling: %d boards, busy phase = bring-up + %d publishes "
      "===\n",
      kBoards, kBusyPublishes);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host hardware concurrency: %u\n", hw);

  const int kThreadCounts[] = {1, 2, 4};
  const bool host_undersized =
      hw < static_cast<unsigned>(kThreadCounts[2]);
  std::vector<Result> results;
  for (int threads : kThreadCounts) {
    // Best of three: the minimum is least disturbed by host scheduling noise.
    Result best = RunBusyConfig(threads);
    for (int run = 1; run < 3; ++run) {
      Result r = RunBusyConfig(threads);
      if (r.seconds < best.seconds) {
        best = r;
      }
    }
    std::printf(
        "  threads=%d  %8.1f M sim-cycles/s  %8.0f frames/s  "
        "%llu barriers  busy/idle = %llu/%llu Mcycles  (%.3f s%s)\n",
        best.threads, best.cycles_per_sec() / 1e6, best.frames_per_sec(),
        static_cast<unsigned long long>(best.barriers),
        static_cast<unsigned long long>(best.busy_cycles / 1000000),
        static_cast<unsigned long long>(best.idle_cycles / 1000000),
        best.seconds, best.completed ? "" : ", workload DID NOT complete");
    results.push_back(best);
  }

  const double speedup_4_vs_1 =
      results[2].cycles_per_sec() / results[0].cycles_per_sec();
  if (host_undersized) {
    std::printf(
        "  host undersized (%u hardware threads < 4 workers): speedup "
        "headline suppressed; see host_undersized in the JSON\n",
        hw);
  } else {
    std::printf("  speedup 4 threads vs 1: %.2fx\n", speedup_4_vs_1);
  }

  Result idle_off = RunIdleConfig(/*fast_forward=*/false);
  Result idle_on = RunIdleConfig(/*fast_forward=*/true);
  const double idle_speedup =
      idle_on.cycles_per_sec() / idle_off.cycles_per_sec();
  std::printf(
      "=== idle-heavy: %d boards, 60 idle sim-seconds, 1 worker ===\n"
      "  fast-forward off: %8.1f M sim-cycles/s  %llu barriers\n"
      "  fast-forward on:  %8.1f M sim-cycles/s  %llu barriers\n"
      "  fast-forward speedup: %.1fx\n",
      kBoards, idle_off.cycles_per_sec() / 1e6,
      static_cast<unsigned long long>(idle_off.barriers),
      idle_on.cycles_per_sec() / 1e6,
      static_cast<unsigned long long>(idle_on.barriers), idle_speedup);

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"fleet_scale\",\n");
  std::fprintf(f,
               "  \"unit\": \"aggregate simulated cycles per host second\",\n");
  std::fprintf(f, "  \"boards\": %d,\n", kBoards);
  std::fprintf(f, "  \"busy_publishes\": %d,\n", kBusyPublishes);
  std::fprintf(f, "  \"host_hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"host_undersized\": %s,\n",
               host_undersized ? "true" : "false");
  for (const Result& r : results) {
    std::fprintf(f, "  \"threads_%d_cycles_per_sec\": %.0f,\n", r.threads,
                 r.cycles_per_sec());
    std::fprintf(f, "  \"threads_%d_frames_per_sec\": %.0f,\n", r.threads,
                 r.frames_per_sec());
    std::fprintf(f, "  \"threads_%d_busy_cycles\": %llu,\n", r.threads,
                 static_cast<unsigned long long>(r.busy_cycles));
    std::fprintf(f, "  \"threads_%d_idle_cycles\": %llu,\n", r.threads,
                 static_cast<unsigned long long>(r.idle_cycles));
    std::fprintf(f, "  \"threads_%d_barriers\": %llu,\n", r.threads,
                 static_cast<unsigned long long>(r.barriers));
  }
  std::fprintf(f, "  \"idle_ff_off_cycles_per_sec\": %.0f,\n",
               idle_off.cycles_per_sec());
  std::fprintf(f, "  \"idle_ff_off_barriers\": %llu,\n",
               static_cast<unsigned long long>(idle_off.barriers));
  std::fprintf(f, "  \"idle_ff_on_cycles_per_sec\": %.0f,\n",
               idle_on.cycles_per_sec());
  std::fprintf(f, "  \"idle_ff_on_barriers\": %llu,\n",
               static_cast<unsigned long long>(idle_on.barriers));
  std::fprintf(f, "  \"idle_ff_speedup\": %.3f,\n", idle_speedup);
  std::fprintf(f, "  \"speedup_4_vs_1\": %.3f\n}\n", speedup_4_vs_1);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

// Table 2 reproduction: code and data size of CHERIoT RTOS components, for
// the base system and the base+network-stack configuration, plus the
// per-compartment overhead (§5.3.1).
//
// Data-side numbers (globals, stacks, trusted stacks, import/export
// metadata) are *measured* from the loader's layout; code sizes are the
// modelled per-component sizes (see EXPERIMENTS.md for the accounting).
#include <cstdio>

#include "src/debug/debug.h"
#include "src/net/netstack.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

struct ImageStats {
  LayoutStats layout;
  std::vector<std::pair<std::string, std::pair<uint32_t, uint32_t>>>
      components;  // name -> (code, wrapper)
  std::vector<std::pair<std::string, uint32_t>> data_sizes;
  size_t compartments = 0;
};

ImageStats Measure(FirmwareImage image) {
  Machine machine;
  System sys(machine, std::move(image));
  sys.Boot();
  const BootInfo& boot = sys.boot();
  ImageStats stats;
  stats.layout = boot.stats;
  stats.compartments = boot.compartments.size();
  for (const auto& rt : boot.compartments) {
    stats.components.push_back(
        {rt.name, {rt.def->code_size, rt.def->wrapper_code_size}});
    stats.data_sizes.push_back({rt.name, rt.globals_size});
  }
  return stats;
}

FirmwareImage BaseImage() {
  ImageBuilder b("base-system");
  b.Compartment("app").CodeSize(2048).Globals(64).Export("main", Nop());
  b.Thread("app", 1, 1024, 4, "app.main");  // minimal two-thread system:
  b.Thread("idle", 0, 512, 2, "app.main");  // scheduler counts as thread 1
  return b.Build();
}

FirmwareImage NetworkImage() {
  ImageBuilder b("base-plus-network");
  b.Compartment("app").CodeSize(2048).Globals(64).Export("main", Nop());
  net::UseNetwork(b, "app");
  debug::UseConsole(b, "app");
  b.Thread("app", 1, 4096, 8, "app.main");
  return b.Build();
}

// Measures the marginal metadata cost of one extra (empty) compartment.
Address PerCompartmentOverhead() {
  auto image_with = [](int extra) {
    ImageBuilder b("overhead");
    b.Compartment("main").Export("main", Nop());
    for (int i = 0; i < extra; ++i) {
      const std::string name = "extra" + std::to_string(i);
      b.Compartment(name).CodeSize(0).Globals(0).Export("fn", Nop());
      b.Compartment("main").ImportCompartment(name + ".fn");
    }
    b.Thread("t", 1, 512, 4, "main.main");
    return b.Build();
  };
  Machine m1, m2;
  System s1(m1, image_with(4));
  System s2(m2, image_with(5));
  s1.Boot();
  s2.Boot();
  return s2.boot().stats.metadata_bytes - s1.boot().stats.metadata_bytes;
}

void PrintStats(const char* title, const ImageStats& s, double paper_kb) {
  std::printf("\n%s\n", title);
  std::printf("  %-18s %10s %10s %10s\n", "component", "code(B)", "wrapper%",
              "data(B)");
  uint32_t code_total = 0;
  for (size_t i = 0; i < s.components.size(); ++i) {
    const auto& [name, sizes] = s.components[i];
    const auto& [code, wrapper] = sizes;
    code_total += code;
    std::printf("  %-18s %10u %9.0f%% %10u\n", name.c_str(), code,
                code > 0 ? 100.0 * wrapper / code : 0.0,
                s.data_sizes[i].second);
  }
  std::printf("  %-18s %10u\n", "TOTAL code", code_total);
  std::printf("  measured data: globals=%u B, stacks=%u B, trusted stacks=%u B,"
              " metadata=%u B, sealed objs=%u B\n",
              s.layout.globals_bytes, s.layout.stack_bytes,
              s.layout.trusted_stack_bytes, s.layout.metadata_bytes,
              s.layout.sealed_object_bytes);
  const double total_kb =
      (code_total + s.layout.globals_bytes + s.layout.stack_bytes +
       s.layout.trusted_stack_bytes + s.layout.metadata_bytes +
       s.layout.sealed_object_bytes) /
      1024.0;
  std::printf("  overall: %.1f KB   (paper: %.1f KB)\n", total_kb, paper_kb);
  std::printf("  heap remaining: %u KB of 256 KB SRAM\n",
              s.layout.heap_bytes / 1024);
}

}  // namespace
}  // namespace cheriot

int main() {
  using namespace cheriot;
  std::printf("=== Table 2: code and data size of CHERIoT RTOS components ===\n");
  std::printf("(code sizes modelled per component; data sizes measured from the"
              " loader layout)\n");

  // The loader (erased at boot) and switcher are kernel C++ in this model;
  // their paper sizes are listed for completeness of the Table 2 shape.
  std::printf("\nTCB components not materialized as guest code bytes:\n");
  std::printf("  %-18s %10s %10s   (paper values; loader erased after boot)\n",
              "loader", "7680", "66");
  std::printf("  %-18s %10s %10s   (355 instructions of assembly)\n",
              "switcher", "1400", "0");

  const ImageStats base = Measure(BaseImage());
  PrintStats("-- Base system (paper: 25.9 KB code + 3.7 KB data) --", base,
             29.6);

  const ImageStats net = Measure(NetworkImage());
  PrintStats("-- Base + network stack (paper: 151.8 KB code + 20.4 KB data) --",
             net, 172.2);

  const Address overhead = PerCompartmentOverhead();
  std::printf("\nPer-compartment overhead: %u B  (paper: 83 B; Tock: 164 B)\n",
              overhead);
  std::printf("Compartments in networked image: %zu\n", net.compartments);
  return 0;
}

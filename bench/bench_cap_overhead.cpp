// §5.3 "Hardware performance" ablation: CoreMark-style workload on the
// CHERIoT memory model versus a baseline RV32E cost model.
//
// The paper attributes the 20.65% CoreMark overhead to (a) the load filter
// (~8%), (b) the narrow 33-bit bus making each 8-byte capability load two
// bus reads (~8%), and (c) temporal checks / compiler maturity (~5%). The
// ablation runs CoreMark's three kernel shapes — linked-list traversal
// (capability-heavy), matrix multiply (word-heavy) and CRC (byte-heavy) —
// measures CHERIoT cycles, and recomputes the baseline by removing exactly
// the per-capability-load penalty the paper describes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/rtos.h"

namespace cheriot {
namespace {

struct Ablation {
  double cheriot_cycles = 0;
  double baseline_cycles = 0;
  uint64_t cap_loads = 0;
  double overhead_percent() const {
    return 100.0 * (cheriot_cycles - baseline_cycles) / baseline_cycles;
  }
};

Ablation RunWorkload() {
  Machine machine;
  auto out = std::make_shared<Ablation>();
  ImageBuilder b("coremark");
  b.Compartment("bench")
      .Globals(8 * 1024)
      .Export("main", [out, &machine](CompartmentCtx& ctx,
                                      const std::vector<Capability>&) {
        const Capability g = ctx.globals();
        Memory& mem = ctx.machine().memory();

        // --- Build a 64-node linked list of {next_cap, value} nodes.
        constexpr int kNodes = 64;
        constexpr Word kNodeBytes = 16;
        for (int i = 0; i < kNodes; ++i) {
          const Capability node = g.AddOffset(i * kNodeBytes);
          const int next = (i * 7 + 1) % kNodes;  // scrambled order
          ctx.StoreCap(node, 0,
                       g.AddOffset(next * kNodeBytes).WithBoundsAtCursor(
                           kNodeBytes));
          ctx.StoreWord(node, 8, static_cast<Word>(i * 3));
        }
        const Address matrix = 64 * kNodeBytes;

        mem.ResetAccessCounters();
        machine.Tick(0);
        const Cycles t0 = ctx.Now();

        // Kernel 1: pointer chasing (capability loads exercise the load
        // filter and the two-bus-read penalty).
        Word acc = 0;
        Capability cursor = g.WithBoundsAtCursor(kNodeBytes);
        for (int step = 0; step < 2000; ++step) {
          acc += ctx.LoadWord(cursor, 8);
          cursor = ctx.LoadCap(cursor, 0);
          ctx.Burn(3 * cost::kInstruction);  // index arithmetic + compare
        }

        // Kernel 2: 8x8 integer matrix multiply (word traffic).
        for (int i = 0; i < 8; ++i) {
          for (int j = 0; j < 8; ++j) {
            Word sum = 0;
            for (int k = 0; k < 8; ++k) {
              const Word a = ctx.LoadWord(g, matrix + 4 * (8 * i + k));
              const Word bb = ctx.LoadWord(g, matrix + 256 + 4 * (8 * k + j));
              sum += a * bb;
              ctx.Burn(2 * cost::kInstruction);  // MAC + loop bookkeeping
            }
            ctx.StoreWord(g, matrix + 512 + 4 * (8 * i + j), sum);
          }
        }

        // Kernel 3: CRC over a 1 KiB buffer (byte traffic + ALU).
        Word crc = 0xFFFF;
        for (int i = 0; i < 1024; ++i) {
          const uint8_t byte = ctx.LoadByte(g, matrix + (i % 512));
          crc ^= byte;
          for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1) ? 0xA001 : 0);
          }
          ctx.Burn(18 * cost::kInstruction);  // 8 shift/xor rounds
        }
        benchmark::DoNotOptimize(acc + crc);

        out->cheriot_cycles = static_cast<double>(ctx.Now() - t0);
        out->cap_loads = mem.cap_load_count();
        // Baseline RV32E: pointers are 4-byte words — one bus read, no load
        // filter, no tag maintenance on pointer stores.
        const double cap_load_penalty =
            static_cast<double>(cost::kLoadCap - cost::kLoadWord +
                                cost::kLoadFilter);
        const double cap_store_penalty =
            static_cast<double>(cost::kStoreCap - cost::kStoreWord);
        out->baseline_cycles =
            out->cheriot_cycles -
            mem.cap_load_count() * cap_load_penalty -
            mem.cap_store_count() * cap_store_penalty;
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 4, "bench.main");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(8'000'000'000ull);
  return *out;
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  benchmark::RegisterBenchmark("coremark_ablation", [](benchmark::State& state) {
    const Ablation a = RunWorkload();
    for (auto _ : state) {
      benchmark::DoNotOptimize(a.cheriot_cycles);
    }
    state.counters["cheriot_cycles"] = a.cheriot_cycles;
    state.counters["baseline_cycles"] = a.baseline_cycles;
    state.counters["overhead_pct"] = a.overhead_percent();
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const Ablation a = RunWorkload();
  std::printf("\n=== §5.3 hardware-performance ablation (CoreMark-style) ===\n");
  std::printf("  CHERIoT cycles:  %.0f\n", a.cheriot_cycles);
  std::printf("  baseline cycles: %.0f (capability-load penalty removed)\n",
              a.baseline_cycles);
  std::printf("  capability loads: %llu\n",
              static_cast<unsigned long long>(a.cap_loads));
  std::printf("  overhead: %.2f%%   (paper: 20.65%% on CoreMark; ~8%% load "
              "filter + ~8%% bus width + rest compiler/temporal)\n",
              a.overhead_percent());
  return 0;
}

// Host-side cost of cheriot-trace (DESIGN.md §8): wall-clock time to run the
// same firmware image (a) untraced, (b) with the flight recorder + profiler
// on, and (c) with tracing on plus a full Chrome-trace/metrics/profile
// export. Guest cycles are identical in all three modes by construction —
// the cycle-model-invariance contract — and this bench hard-asserts that by
// comparing fingerprints before reporting any number. What tracing costs is
// host time only, and BENCH_trace_overhead.json records how much.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/provenance.h"
#include "src/sim/board.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

constexpr Cycles kRunCycles = 2'000'000;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

enum class Mode { kOff, kRing, kExport };

struct Result {
  double seconds = 0;
  uint64_t emitted = 0;
  sim::Board::Fingerprint fingerprint;
};

Result RunOnce(const tools::LintTarget& target, Mode mode) {
  sim::Board board(target.build(), sim::BoardOptions{});
  trace::TraceRecorder* rec = nullptr;
  if (mode != Mode::kOff) {
    rec = board.EnableTrace({});
  }
  const auto t0 = std::chrono::steady_clock::now();
  board.Boot();
  board.StepTo(kRunCycles);
  std::string exported;
  if (mode == Mode::kExport) {
    exported = trace::ChromeTrace(*rec).Dump(2);
    exported += trace::MetricsSnapshot(*rec).Dump(2);
    exported += trace::ProfileText(*rec);
    exported += trace::CollapsedStacksText(*rec);
  }
  Result r;
  r.seconds = SecondsSince(t0);
  r.emitted = rec ? rec->emitted() : 0;
  r.fingerprint = board.fingerprint();
  benchmark::DoNotOptimize(exported);
  return r;
}

Result Best(const tools::LintTarget& target, Mode mode, int runs) {
  Result best = RunOnce(target, mode);
  for (int i = 1; i < runs; ++i) {
    Result r = RunOnce(target, mode);
    if (r.seconds < best.seconds) {
      best = r;
    }
  }
  return best;
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_trace_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // Reach steady-state CPU frequency before timing anything.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  const tools::LintTarget* target = tools::FindLintTarget("fleet-node");
  if (!target) {
    std::fprintf(stderr, "lint target 'fleet-node' missing\n");
    return 1;
  }

  std::printf("=== cheriot-trace host overhead (%s, %llu guest cycles) ===\n",
              target->name.c_str(),
              static_cast<unsigned long long>(kRunCycles));
  const Result off = Best(*target, Mode::kOff, 5);
  const Result ring = Best(*target, Mode::kRing, 5);
  const Result full = Best(*target, Mode::kExport, 5);

  // The whole point of the recorder is that it never moves a guest cycle.
  // If these ever diverge the numbers below are meaningless — abort loudly.
  if (!(off.fingerprint == ring.fingerprint) ||
      !(off.fingerprint == full.fingerprint)) {
    std::fprintf(stderr,
                 "FATAL: tracing changed the guest fingerprint; "
                 "cycle-model invariance is broken\n");
    return 2;
  }

  const double ring_overhead = ring.seconds / off.seconds - 1.0;
  const double full_overhead = full.seconds / off.seconds - 1.0;
  std::printf("  off:         %.4f s\n", off.seconds);
  std::printf("  ring on:     %.4f s  (+%.1f%%, %llu events)\n", ring.seconds,
              100.0 * ring_overhead,
              static_cast<unsigned long long>(ring.emitted));
  std::printf("  full export: %.4f s  (+%.1f%%)\n", full.seconds,
              100.0 * full_overhead);

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"trace_overhead\",\n");
  std::fprintf(f, "  \"unit\": \"host seconds for %llu guest cycles\",\n",
               static_cast<unsigned long long>(kRunCycles));
  std::fprintf(f, "  \"image\": \"%s\",\n", target->name.c_str());
  std::fprintf(f, "  \"events_emitted\": %llu,\n",
               static_cast<unsigned long long>(ring.emitted));
  std::fprintf(f, "  \"off_seconds\": %.6f,\n", off.seconds);
  std::fprintf(f, "  \"ring_seconds\": %.6f,\n", ring.seconds);
  std::fprintf(f, "  \"export_seconds\": %.6f,\n", full.seconds);
  std::fprintf(f, "  \"ring_overhead\": %.4f,\n", ring_overhead);
  std::fprintf(f, "  \"export_overhead\": %.4f,\n", full_overhead);
  std::fprintf(f, "  \"fingerprint_invariant\": true\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

// Host-side cost of cheriot-flow (DESIGN.md §13): wall-clock time to run the
// same 4-board fleet-node fleet (a) with flow recording off, (b) with the
// flow recorder on, and (c) with recording on plus a full flow-table /
// histogram / metrics export. Flow ids are assigned in all three modes —
// only recording is gated — so every board's guest cycles are identical by
// construction, and this bench hard-asserts that by comparing all four
// fingerprints before reporting any number. What flow tracing costs is host
// time only, and BENCH_flow_overhead.json records how much.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/provenance.h"
#include "src/flow/flow.h"
#include "src/sim/fleet.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

constexpr Cycles kRunCycles = 2'000'000;
constexpr int kBoards = 4;
constexpr int kControlPublishes = 3;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

enum class Mode { kOff, kFlow, kExport };

struct Result {
  double seconds = 0;
  uint64_t flows = 0;
  uint64_t deliveries = 0;
  std::vector<sim::Board::Fingerprint> fingerprints;
};

Result RunOnce(const tools::LintTarget& target, Mode mode) {
  sim::FleetOptions fopts;
  fopts.flow = mode != Mode::kOff;
  sim::Fleet fleet(fopts);
  for (int i = 0; i < kBoards; ++i) {
    fleet.AddBoard(target.build());
  }
  const auto t0 = std::chrono::steady_clock::now();
  fleet.Boot();
  const Cycles chunk = kRunCycles / (kControlPublishes + 1);
  for (int i = 0; i <= kControlPublishes; ++i) {
    fleet.Run(chunk);
    if (i < kControlPublishes) {
      fleet.PublishMqtt("leds", {'c', 'm', 'd', static_cast<uint8_t>('0' + i)});
    }
  }
  std::string exported;
  if (mode == Mode::kExport) {
    flow::FlowRecorder* fr = fleet.flow_recorder();
    exported = fr->FlowTableJson().Dump(2);
    exported += fr->HistogramsJson().Dump(2);
    exported += fr->MetricsJson().Dump(2);
  }
  Result r;
  r.seconds = SecondsSince(t0);
  if (flow::FlowRecorder* fr = fleet.flow_recorder()) {
    r.flows = fr->flow_count();
    r.deliveries = fr->deliveries();
  }
  r.fingerprints = fleet.Fingerprints();
  benchmark::DoNotOptimize(exported);
  return r;
}

Result Best(const tools::LintTarget& target, Mode mode, int runs) {
  Result best = RunOnce(target, mode);
  for (int i = 1; i < runs; ++i) {
    Result r = RunOnce(target, mode);
    if (r.seconds < best.seconds) {
      best = r;
    }
  }
  return best;
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_flow_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // Reach steady-state CPU frequency before timing anything.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  const tools::LintTarget* target = tools::FindLintTarget("fleet-node");
  if (!target) {
    std::fprintf(stderr, "lint target 'fleet-node' missing\n");
    return 1;
  }

  std::printf(
      "=== cheriot-flow host overhead (%s x%d, %llu guest cycles) ===\n",
      target->name.c_str(), kBoards,
      static_cast<unsigned long long>(kRunCycles));
  const Result off = Best(*target, Mode::kOff, 5);
  const Result flow = Best(*target, Mode::kFlow, 5);
  const Result full = Best(*target, Mode::kExport, 5);

  // The whole point of the recorder is that it never moves a guest cycle.
  // If any board diverges the numbers below are meaningless — abort loudly.
  for (int b = 0; b < kBoards; ++b) {
    if (!(off.fingerprints[b] == flow.fingerprints[b]) ||
        !(off.fingerprints[b] == full.fingerprints[b])) {
      std::fprintf(stderr,
                   "FATAL: flow recording changed board %d's fingerprint; "
                   "cycle-model invariance is broken\n",
                   b);
      return 2;
    }
  }

  const double flow_overhead = flow.seconds / off.seconds - 1.0;
  const double full_overhead = full.seconds / off.seconds - 1.0;
  std::printf("  off:         %.4f s\n", off.seconds);
  std::printf("  flow on:     %.4f s  (+%.1f%%, %llu flows, %llu deliveries)\n",
              flow.seconds, 100.0 * flow_overhead,
              static_cast<unsigned long long>(flow.flows),
              static_cast<unsigned long long>(flow.deliveries));
  std::printf("  full export: %.4f s  (+%.1f%%)\n", full.seconds,
              100.0 * full_overhead);

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"flow_overhead\",\n");
  std::fprintf(f, "  \"unit\": \"host seconds for %llu guest cycles\",\n",
               static_cast<unsigned long long>(kRunCycles));
  std::fprintf(f, "  \"image\": \"%s\",\n", target->name.c_str());
  std::fprintf(f, "  \"boards\": %d,\n", kBoards);
  std::fprintf(f, "  \"flows\": %llu,\n",
               static_cast<unsigned long long>(flow.flows));
  std::fprintf(f, "  \"deliveries\": %llu,\n",
               static_cast<unsigned long long>(flow.deliveries));
  std::fprintf(f, "  \"off_seconds\": %.6f,\n", off.seconds);
  std::fprintf(f, "  \"flow_seconds\": %.6f,\n", flow.seconds);
  std::fprintf(f, "  \"export_seconds\": %.6f,\n", full.seconds);
  std::fprintf(f, "  \"flow_overhead\": %.4f,\n", flow_overhead);
  std::fprintf(f, "  \"export_overhead\": %.4f,\n", full_overhead);
  std::fprintf(f, "  \"fingerprint_invariant\": true\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

// Shared provenance stamp for every BENCH_*.json this repo checks in.
//
// A benchmark number without its commit, build type and capture time is
// unreviewable — it cannot be regenerated or compared against a later run.
// Every bench that writes a BENCH_*.json emits ProvenanceJson() right after
// the opening brace so the stamp appears uniformly as:
//
//   "provenance": {
//     "build_type": "Release",
//     "generated_utc": "2026-08-06T12:34:56Z",
//     "git_sha": "abc123..."
//   },
#ifndef BENCH_PROVENANCE_H_
#define BENCH_PROVENANCE_H_

#include <cstdio>
#include <ctime>
#include <string>

namespace cheriot::bench {

inline std::string GitSha() {
#ifdef CHERIOT_BENCH_SRCDIR
  const std::string cmd =
      "git -C \"" CHERIOT_BENCH_SRCDIR "\" rev-parse HEAD 2>/dev/null";
  if (FILE* p = ::popen(cmd.c_str(), "r")) {
    char buf[64] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, p);
    ::pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (sha.size() == 40 &&
        sha.find_first_not_of("0123456789abcdef") == std::string::npos) {
      return sha;
    }
  }
#endif
  return "unknown";
}

inline std::string BuildType() {
#ifdef CHERIOT_BUILD_TYPE
  const std::string type = CHERIOT_BUILD_TYPE;
  return type.empty() ? "unspecified" : type;
#else
  return "unspecified";
#endif
}

inline std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

// The "provenance" member, ready to fprintf immediately after the document's
// opening "{\n" (keys sorted, two-space indent, trailing comma).
inline std::string ProvenanceJson() {
  std::string out = "  \"provenance\": {\n";
  out += "    \"build_type\": \"" + BuildType() + "\",\n";
  out += "    \"generated_utc\": \"" + UtcTimestamp() + "\",\n";
  out += "    \"git_sha\": \"" + GitSha() + "\"\n";
  out += "  },\n";
  return out;
}

}  // namespace cheriot::bench

#endif  // BENCH_PROVENANCE_H_

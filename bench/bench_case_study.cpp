// Fig. 7 reproduction (§5.3.3): a JavaScript-driven IoT application that
// connects to an MQTT broker over TLS, subscribes to notifications, and
// flashes the board's LEDs when one arrives. Mid-run, a "ping of death"
// crashes the TCP/IP compartment, which micro-reboots; the application
// re-establishes its connection and service resumes.
//
// The harness samples CPU load (1 - idle fraction) in fixed slices, prints
// the per-phase table and a load timeline, and reports the micro-reboot
// duration. Timeline is compressed relative to the paper's 52 s FPGA run
// (our simulated network round-trips are milliseconds, not seconds); the
// *shape* — idle network phases, the handshake-bound setup spike, the
// micro-reboot dip and recovery — is the reproduction target.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/compat/posix_shim.h"
#include "src/debug/debug.h"
#include "src/js/minivm.h"
#include "src/net/netstack.h"
#include "src/net/world.h"
#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct AppState {
  struct Phase {
    std::string name;
    Cycles start;
  };
  std::vector<Phase> phases;
  int notifications = 0;
  int reconnects = 0;
  bool failed = false;
};

constexpr Cycles kSecond = cost::kCoreHz;

// The notification handler script: flash the LEDs (host fn 0 = led_set).
const char* kFlashScript = R"(
  push 255
  callhost 0 1
  drop
  push 0
  callhost 0 1
  drop
  push 1
  halt
)";

EntryFn AppMain(std::shared_ptr<AppState> state) {
  return [state](CompartmentCtx& ctx, const std::vector<Capability>&) {
    auto phase = [&](const std::string& name) {
      state->phases.push_back({name, ctx.Now()});
    };
    const Capability quota = ctx.SealedImport("app_quota");
    const Capability led = ctx.Mmio("led");
    const js::Program flash = js::Assemble(kFlashScript);
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    std::vector<js::HostFn> host = {
        [led](CompartmentCtx& c, const std::vector<Word>& args) -> Word {
          c.StoreWord(led, 0, args.empty() ? 0 : args[0]);
          return 0;
        }};

    // --- Setup: DHCP/ARP bring-up, confirm connectivity. ---
    phase("Setup");
    if (static_cast<int32_t>(
            ctx.Call("tcpip.wait_ready", {WordCap(~0u)}).word()) != 0) {
      state->failed = true;
      return StatusCap(Status::kCompartmentFail);
    }
    ctx.Call("tcpip.ping", {WordCap(net::kWorldIp), WordCap(kSecond)});

    // --- NTP sync: periodic exchanges, almost entirely idle. ---
    phase("NTP Sync.");
    for (int i = 0; i < 3; ++i) {
      ctx.Call("sntp.sync", {WordCap(kSecond)});
      ctx.SleepCycles(kSecond / 2);
    }

    // --- App setup: DNS + TCP + TLS handshake + MQTT subscribe. ---
    auto connect = [&]() -> Capability {
      auto name_buf = ctx.AllocStack(32);
      const char kBroker[] = "mqtt.example.com";
      ctx.WriteBytes(name_buf.cap(), 0, kBroker, sizeof(kBroker) - 1);
      const Word ip =
          ctx.Call("dns.resolve",
                   {name_buf.cap(), WordCap(sizeof(kBroker) - 1)})
              .word();
      if (ip == 0) {
        return Capability();
      }
      auto id = ctx.AllocStack(8);
      ctx.WriteBytes(id.cap(), 0, "js-dev", 6);
      const Capability session = ctx.Call(
          "mqtt.connect", {quota, WordCap(ip), WordCap(net::kMqttTlsPort),
                           id.cap(), WordCap(6)});
      if (!session.tag()) {
        return session;
      }
      auto topic = ctx.AllocStack(8);
      ctx.WriteBytes(topic.cap(), 0, "leds", 4);
      ctx.Call("mqtt.subscribe", {session, topic.cap(), WordCap(4)});
      return session;
    };

    phase("App. Setup");
    Capability session = connect();
    if (!session.tag()) {
      state->failed = true;
      return StatusCap(Status::kCompartmentFail);
    }

    // --- Steady state: wait for notifications; recover from stack faults.
    phase("Steady");
    for (;;) {
      auto out = ctx.AllocStack(128);
      const Capability r = ctx.Call(
          "mqtt.poll",
          {session, out.cap(), WordCap(128), WordCap(kSecond / 2)});
      const auto n = static_cast<int32_t>(r.word());
      if (n > 0) {
        // Run the notification handler in the JavaScript VM.
        js::ResetArena(ctx, arena);
        const js::VmResult vm = js::Run(ctx, arena, flash, host);
        if (vm.kind == js::VmResult::Kind::kHalted) {
          ++state->notifications;
        }
        continue;
      }
      const auto status = static_cast<Status>(n);
      if (status == Status::kTimedOut) {
        continue;  // nothing this interval
      }
      // The stack died under us (micro-reboot): reconnect from scratch.
      ++state->reconnects;
      phase("App. Setup#2");
      do {
        ctx.SleepCycles(kSecond / 4);
        session = connect();
      } while (!session.tag());
      phase("Steady#2");
    }
    return StatusCap(Status::kOk);
  };
}

}  // namespace
}  // namespace cheriot

int main() {
  using namespace cheriot;
  Machine machine;
  net::NetWorld world(machine);
  auto state = std::make_shared<AppState>();

  ImageBuilder b("iot-deployment");
  net::NetStackOptions net_options;
  net_options.ping_of_death_bug = true;  // the §5.3.3 crash trigger
  b.Compartment("js_app")
      .CodeSize(3 * 1024)
      .Globals(128)
      .AllocCap("app_quota", 33 * 1024)  // paper: 33 KB heap for the app
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportLibrary("minivm.interpreter")
      .Export("main", AppMain(state));
  js::RegisterMiniVmLibrary(b);
  net::UseNetwork(b, "js_app", net_options);
  sync::UseAllocator(b, "js_app");
  sync::UseScheduler(b, "js_app");
  compat::UseMalloc(b, "js_app", 8 * 1024);
  debug::AddConsoleCompartment(b);
  b.Thread("app", 3, 16 * 1024, 12, "js_app.main");

  System sys(machine, b.Build());
  sys.Boot();

  const size_t compartments = sys.boot().compartments.size();
  const auto& stats = sys.boot().stats;

  // --- Drive the run in slices, sampling CPU load. ---
  constexpr Cycles kSlice = cost::kCoreHz / 4;  // 250 ms
  struct Sample {
    double seconds;
    double load;
  };
  std::vector<Sample> timeline;
  Cycles idle_before = 0;
  Cycles pod_at = 0;
  Cycles stack_restored_at = 0;
  uint32_t dhcp_acks_before_pod = 0;
  bool published_first = false;
  bool pod_sent = false;
  bool published_second = false;
  Cycles steady2_publish_at = 0;

  auto current_phase = [&]() -> std::string {
    return state->phases.empty() ? "Boot" : state->phases.back().name;
  };

  for (int slice = 0; slice < 4 * 60; ++slice) {
    sys.Run(kSlice);
    const Cycles idle_now = sys.sched().idle_cycles();
    const double load =
        1.0 - static_cast<double>(idle_now - idle_before) / kSlice;
    idle_before = idle_now;
    timeline.push_back(
        {static_cast<double>(sys.Now()) / cost::kCoreHz, load});

    const std::string phase = current_phase();
    if (phase == "Steady" && !published_first) {
      world.PublishMqtt("leds", {'o', 'n'});
      published_first = true;
    } else if (published_first && !pod_sent && state->notifications >= 1) {
      dhcp_acks_before_pod = world.dhcp_acks_sent();
      world.SendPingOfDeath();
      pod_sent = true;
      pod_at = sys.Now();
    } else if (pod_sent && stack_restored_at == 0 &&
               world.dhcp_acks_sent() > dhcp_acks_before_pod) {
      stack_restored_at = sys.Now();  // the rebooted stack redid DHCP
    } else if (phase == "Steady#2" && !published_second) {
      if (steady2_publish_at == 0) {
        steady2_publish_at = sys.Now() + cost::kCoreHz;
      } else if (sys.Now() >= steady2_publish_at) {
        world.PublishMqtt("leds", {'o', 'f', 'f'});
        published_second = true;
      }
    } else if (published_second && state->notifications >= 2) {
      sys.Run(kSlice);  // a little tail
      break;
    }
    if (state->failed) {
      break;
    }
  }

  // --- Report. ---
  std::printf("=== Figure 7: full-system CPU load for an IoT deployment ===\n");
  std::printf("compartments: %zu (paper: 13)   code+data: %.0f KB code, "
              "%.1f KB data+stacks, heap %u KB\n",
              compartments, stats.code_bytes / 1024.0,
              (stats.globals_bytes + stats.stack_bytes +
               stats.trusted_stack_bytes + stats.metadata_bytes) /
                  1024.0,
              stats.heap_bytes / 1024);

  std::printf("\nExecution phases (timeline compressed vs paper, see header):\n");
  std::printf("  %-14s %10s %10s %10s\n", "phase", "start(s)", "length(s)",
              "avg load");
  for (size_t i = 0; i < state->phases.size(); ++i) {
    const double start =
        static_cast<double>(state->phases[i].start) / cost::kCoreHz;
    const double end = (i + 1 < state->phases.size())
                           ? static_cast<double>(state->phases[i + 1].start) /
                                 cost::kCoreHz
                           : timeline.back().seconds;
    double load_sum = 0;
    int load_n = 0;
    for (const auto& s : timeline) {
      if (s.seconds > start && s.seconds <= end + 0.25) {
        load_sum += s.load;
        ++load_n;
      }
    }
    std::printf("  %-14s %10.2f %10.2f %9.0f%%\n",
                state->phases[i].name.c_str(), start, end - start,
                load_n > 0 ? 100.0 * load_sum / load_n : 0.0);
  }

  std::printf("\nCPU load timeline (250 ms samples):\n");
  for (const auto& s : timeline) {
    const int bar = static_cast<int>(s.load * 50);
    std::printf("  %6.2fs %5.1f%% %s\n", s.seconds, 100 * s.load,
                std::string(static_cast<size_t>(bar < 0 ? 0 : bar), '#')
                    .c_str());
  }

  const auto* tcpip = sys.boot().FindCompartment("tcpip");
  std::printf("\nMicro-reboot: count=%u, orchestration=%.4f s (unwind + "
              "heap_free_all + globals reset)\n",
              tcpip->reboot_count,
              tcpip->reboot_count
                  ? static_cast<double>(tcpip->last_reboot_duration) /
                        cost::kCoreHz
                  : 0.0);
  if (stack_restored_at != 0 && pod_at != 0) {
    std::printf("Network stack back on the air (DHCP redone) %.3f s after "
                "the attack (paper: 0.27 s)\n",
                static_cast<double>(stack_restored_at - pod_at) /
                    cost::kCoreHz);
  }
  if (pod_at != 0) {
    std::printf("ping-of-death injected at t=%.2f s\n",
                static_cast<double>(pod_at) / cost::kCoreHz);
  }
  std::printf("notifications handled by the JS VM: %d (LED events: %zu)\n",
              state->notifications, machine.leds().events().size());
  std::printf("app reconnects after fault: %d\n", state->reconnects);
  double total_load = 0;
  for (const auto& s : timeline) {
    total_load += s.load;
  }
  std::printf("average CPU load over the run: %.1f%% (paper: 46.5%% over "
              "52 s, mostly waiting on the network)\n",
              timeline.empty() ? 0 : 100 * total_load / timeline.size());
  return state->failed ? 1 : 0;
}

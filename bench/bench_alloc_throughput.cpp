// Fig. 6b reproduction: sustained memory-allocation rate as a function of
// allocation size. Allocate/free identically-sized buffers for a total of
// 8x the heap size and report MiB/s of allocated memory at the simulated
// 33 MHz clock (§5.3.2).
//
// Expected regimes (paper): below 32 KiB throughput is bounded by the two
// compartment calls per buffer (rising roughly linearly with size); above
// 32 KiB the revoker becomes the bottleneck; past ~1/3 and ~1/2 of the heap
// only two / one object(s) fit and every free synchronizes with a full
// revocation sweep.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Sample {
  Word size = 0;
  double mib_per_s = 0;
  double cycles_per_pair = 0;
  uint32_t failures = 0;
};

Sample MeasureSize(Word size) {
  Machine machine;
  auto sample = std::make_shared<Sample>();
  sample->size = size;
  ImageBuilder b("alloc-bench");
  b.Compartment("bench")
      .Globals(32)
      // Quota: the whole heap (the paper sizes its heap at 228 KiB).
      .AllocCap("q", 256 * 1024)
      .Export("main", [sample, size](CompartmentCtx& ctx,
                                     const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        // Total traffic: 8x a 228 KiB heap, at least 24 pairs.
        const uint64_t total_bytes = 8ull * 228 * 1024;
        uint64_t pairs = total_bytes / size;
        if (pairs < 24) {
          pairs = 24;
        }
        if (pairs > 20000) {
          pairs = 20000;  // keep host time sane for tiny sizes
        }
        const Cycles t0 = ctx.Now();
        uint64_t allocated = 0;
        for (uint64_t i = 0; i < pairs; ++i) {
          const Capability p = ctx.HeapAllocate(q, size, ~0u);
          if (!p.tag()) {
            ++sample->failures;
            continue;
          }
          allocated += size;
          ctx.HeapFree(q, p);
        }
        const double cycles = static_cast<double>(ctx.Now() - t0);
        sample->cycles_per_pair = cycles / pairs;
        const double seconds = cycles / cost::kCoreHz;
        sample->mib_per_s = (allocated / (1024.0 * 1024.0)) / seconds;
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "bench");
  sync::UseScheduler(b, "bench");
  b.Thread("t", 2, 8192, 8, "bench.main");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(400'000'000'000ull);
  return *sample;
}

const Word kSizes[] = {64,    128,   256,   512,    1024,  2048,
                       4096,  8192,  16384, 32768,  49152, 65536,
                       81920, 98304, 114688};

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  for (Word size : kSizes) {
    benchmark::RegisterBenchmark(
        ("alloc_rate/" + std::to_string(size)).c_str(),
        [size](benchmark::State& state) {
          const Sample s = MeasureSize(size);
          for (auto _ : state) {
            benchmark::DoNotOptimize(s.mib_per_s);
          }
          state.counters["MiBps"] = s.mib_per_s;
          state.counters["cycles_per_pair"] = s.cycles_per_pair;
        });
  }
  benchmark::Initialize(&argc, argv);
  // The per-size measurement is deterministic; a single gbench iteration
  // suffices, so run the table directly for the figure.
  benchmark::Shutdown();

  std::printf("=== Figure 6b: sustained allocation rate vs allocation size ===\n");
  std::printf("(heap ~228 KiB of 256 KiB SRAM; malloc+free pairs; 33 MHz)\n\n");
  std::printf("  %10s %12s %16s %10s  %s\n", "size(B)", "MiB/s",
              "cycles/pair", "failures", "rate");
  double peak = 0;
  std::vector<Sample> samples;
  for (Word size : kSizes) {
    samples.push_back(MeasureSize(size));
    peak = std::max(peak, samples.back().mib_per_s);
  }
  for (const Sample& s : samples) {
    const int bar = peak > 0 ? static_cast<int>(40 * s.mib_per_s / peak) : 0;
    std::printf("  %10u %12.2f %16.0f %10u  %s\n", s.size, s.mib_per_s,
                s.cycles_per_pair, s.failures,
                std::string(static_cast<size_t>(bar), '#').c_str());
  }
  std::printf("\npaper reference: ~5 MiB/s at 1 KiB buffers; throughput "
              "rises with size until ~32 KiB,\nthen the revoker dominates; "
              "past ~80/112 KiB each free synchronizes with a full sweep.\n");
  return 0;
}

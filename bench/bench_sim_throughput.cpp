// Host-side simulator throughput: simulated accesses per wall-clock second.
//
// Every protection property in this reproduction is enforced on every
// simulated access (DESIGN.md §1), so `Memory::Load*/Store*` dominates the
// wall-clock time of every bench and test. This bench records the perf
// trajectory of that hot path in BENCH_sim_throughput.json. Simulated cycle
// accounting is exercised but never asserted here — the cycle-model
// invariance rule (DESIGN.md "Simulator fast path") is enforced by
// tests/invariance_test.cpp; this file only measures host speed.
//
// Alongside the real memory system it times a frozen "naive dispatch"
// reference that reproduces the seed implementation's hot path (std::function
// access hook, linear MMIO scan over std::function handlers, vector<bool>
// tag/revocation bitmaps, per-granule tag-clear loop) on the same workload
// mix, so the JSON carries a measured fast-vs-naive speedup in every run.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/provenance.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

constexpr int kWindowBytes = 16 * 1024;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- Workloads over the real memory system --------------------------------
// Each returns the number of simulated accesses performed.

struct Harness {
  Machine machine;
  Capability root;
  uint64_t hook_hits = 0;

  Harness()
      : root(Capability::RootReadWrite(
            machine.memory().sram_base(),
            machine.memory().sram_base() + machine.memory().sram_size())) {
    // Stand-in for the kernel's preemption check so hook dispatch cost is
    // included, exactly as System::Boot installs it.
    machine.memory().SetAccessHook(
        [](void* self) { ++static_cast<Harness*>(self)->hook_hits; }, this);
  }
};

uint64_t WordTraffic(Harness& h, int iters) {
  Memory& mem = h.machine.memory();
  const Address base = mem.sram_base();
  for (int it = 0; it < iters; ++it) {
    for (Address off = 0; off < kWindowBytes; off += 4) {
      mem.StoreWord(h.root, base + off, off ^ it);
    }
    Word acc = 0;
    for (Address off = 0; off < kWindowBytes; off += 4) {
      acc += mem.LoadWord(h.root, base + off);
    }
    benchmark::DoNotOptimize(acc);
  }
  return static_cast<uint64_t>(iters) * 2 * (kWindowBytes / 4);
}

uint64_t ByteHalfTraffic(Harness& h, int iters) {
  Memory& mem = h.machine.memory();
  const Address base = mem.sram_base();
  for (int it = 0; it < iters; ++it) {
    Word acc = 0;
    for (Address off = 0; off < kWindowBytes / 4; ++off) {
      mem.StoreByte(h.root, base + off, static_cast<uint8_t>(off));
      acc += mem.LoadByte(h.root, base + off);
    }
    for (Address off = 0; off < kWindowBytes / 4; off += 2) {
      mem.StoreHalf(h.root, base + 0x1000 + off, static_cast<uint16_t>(off));
      acc += mem.LoadHalf(h.root, base + 0x1000 + off);
    }
    benchmark::DoNotOptimize(acc);
  }
  return static_cast<uint64_t>(iters) *
         (2 * (kWindowBytes / 4) + (kWindowBytes / 4));
}

uint64_t CapTraffic(Harness& h, int iters) {
  Memory& mem = h.machine.memory();
  const Address base = mem.sram_base();
  const int slots = 256;
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < slots; ++i) {
      mem.StoreCap(h.root, base + 8 * i,
                   h.root.WithBounds(base + 0x100 * (i % 64), 0x40));
    }
    bool any = false;
    for (int i = 0; i < slots; ++i) {
      any ^= mem.LoadCap(h.root, base + 8 * i).tag();
    }
    benchmark::DoNotOptimize(any);
  }
  return static_cast<uint64_t>(iters) * 2 * slots;
}

uint64_t MmioTraffic(Harness& h, int iters) {
  Memory& mem = h.machine.memory();
  const Capability uart =
      Capability::RootReadWrite(kUartMmioBase, kUartMmioBase + kMmioRegionSize);
  const Capability led =
      Capability::RootReadWrite(kLedMmioBase, kLedMmioBase + kMmioRegionSize);
  for (int it = 0; it < iters; ++it) {
    Word acc = 0;
    for (int i = 0; i < 512; ++i) {
      acc += mem.LoadWord(uart, kUartMmioBase + 4);  // status poll
      mem.StoreWord(led, kLedMmioBase, i & 0xFF);
    }
    benchmark::DoNotOptimize(acc);
  }
  return static_cast<uint64_t>(iters) * 2 * 512;
}

// --- Frozen naive-dispatch reference (the seed hot path) ------------------

class NaiveMemory {
 public:
  using Handler = std::function<Word(Address, bool, Word)>;
  using Hook = std::function<void()>;

  NaiveMemory(Address base, Address size, CycleClock* clock)
      : base_(base),
        size_(size),
        clock_(clock),
        bytes_(size, 0),
        tags_(size / kGranuleBytes, false),
        revocation_(size / kGranuleBytes, false) {}

  void AddRegion(Address base, Address size, Handler h) {
    regions_.push_back({base, size, std::move(h)});
  }
  void SetHook(Hook h) { hook_ = std::move(h); }

  // noinline: the seed's Memory::LoadWord/StoreWord lived in memory.cc and
  // could never inline into callers; without this the optimizer sees through
  // the same-TU reference class and the baseline is unfairly fast.
  [[gnu::noinline]] Word LoadWord(const Capability& authority, Address addr) {
    Tick(cost::kLoadWord);
    Check(authority, addr, 4, Permission::kLoad);
    if (auto* r = Find(addr, 4)) {
      return r->handler(addr - r->base, false, 0);
    }
    Word v;
    std::memcpy(&v, &bytes_[addr - base_], 4);
    return v;
  }

  [[gnu::noinline]] void StoreWord(const Capability& authority, Address addr,
                                   Word value) {
    Tick(cost::kStoreWord);
    Check(authority, addr, 4, Permission::kStore);
    if (auto* r = Find(addr, 4)) {
      r->handler(addr - r->base, true, value);
      return;
    }
    ClearTags(addr, 4);
    std::memcpy(&bytes_[addr - base_], &value, 4);
  }

  uint64_t access_count() const { return accesses_; }

 private:
  struct Region {
    Address base;
    Address size;
    Handler handler;
  };

  void Tick(Cycles c) {
    ++accesses_;
    if (hook_) {
      hook_();
    }
    clock_->Tick(c);
  }

  void Check(const Capability& a, Address addr, Address size,
             Permission perm) const {
    if (!a.tag() || a.IsSealed() || !a.permissions().Has(perm) ||
        !a.InBounds(addr, size)) {
      throw TrapException(TrapCode::kBoundsViolation, addr, "naive check");
    }
    if (!a.permissions().Has(Permission::kRevocationExempt) &&
        a.base() >= base_ && (a.base() - base_) / kGranuleBytes < revocation_.size() &&
        revocation_[(a.base() - base_) / kGranuleBytes]) {
      throw TrapException(TrapCode::kTagViolation, addr, "revoked");
    }
    if (size == 4 && (addr & 3)) {
      throw TrapException(TrapCode::kAlignmentFault, addr, "misaligned");
    }
  }

  Region* Find(Address addr, Address size) {
    for (auto& r : regions_) {
      if (addr >= r.base && addr + size <= r.base + r.size) {
        return &r;
      }
    }
    return nullptr;
  }

  void ClearTags(Address addr, Address len) {
    const size_t first = (AlignDown(addr, kGranuleBytes) - base_) / kGranuleBytes;
    const size_t last =
        (AlignDown(addr + len - 1, kGranuleBytes) - base_) / kGranuleBytes;
    for (size_t g = first; g <= last && g < tags_.size(); ++g) {
      tags_[g] = false;
    }
  }

  Address base_;
  Address size_;
  CycleClock* clock_;
  std::vector<uint8_t> bytes_;
  std::vector<bool> tags_;
  std::vector<bool> revocation_;
  std::vector<Region> regions_;
  Hook hook_;
  uint64_t accesses_ = 0;
};

// The seed Machine's background hardware, reached through the clock's
// std::function hook on every simulated access. Both members were
// out-of-line early-out functions in their own translation units.
struct NaiveBackground {
  bool sweeping = false;
  bool armed = false;
  uint64_t work = 0;
  [[gnu::noinline]] void Advance(Cycles) {
    if (sweeping) {
      ++work;
    }
  }
  [[gnu::noinline]] void Poll() {
    if (armed) {
      ++work;
    }
  }
};

uint64_t NaiveWordTraffic(NaiveMemory& mem, const Capability& root,
                          Address base, int iters) {
  for (int it = 0; it < iters; ++it) {
    for (Address off = 0; off < kWindowBytes; off += 4) {
      mem.StoreWord(root, base + off, off ^ it);
    }
    Word acc = 0;
    for (Address off = 0; off < kWindowBytes; off += 4) {
      acc += mem.LoadWord(root, base + off);
    }
    benchmark::DoNotOptimize(acc);
  }
  return static_cast<uint64_t>(iters) * 2 * (kWindowBytes / 4);
}

// --- Driver ----------------------------------------------------------------

struct Result {
  std::string name;
  uint64_t accesses;
  double seconds;
  double per_sec() const { return accesses / seconds; }
};

template <typename Fn>
Result Measure(const std::string& name, Fn&& body) {
  body(2);  // warm-up
  // Scale iterations so each timed run takes ~0.3 s.
  const auto probe0 = std::chrono::steady_clock::now();
  body(8);
  const double probe = SecondsSince(probe0) / 8;
  const int iters = std::max(8, static_cast<int>(0.3 / std::max(probe, 1e-9)));
  // Best of five timed runs: the minimum wall-clock is the least disturbed
  // by scheduling noise (and, on virtualized hosts, hypervisor steal time).
  uint64_t accesses = 0;
  double secs = 0;
  for (int run = 0; run < 5; ++run) {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t n = body(iters);
    const double s = SecondsSince(t0);
    if (run == 0 || s < secs) {
      accesses = n;
      secs = s;
    }
  }
  std::printf("  %-18s %9.3f M accesses/s  (%llu accesses in %.3f s)\n",
              name.c_str(), accesses / secs / 1e6,
              static_cast<unsigned long long>(accesses), secs);
  return {name, accesses, secs};
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // Spin for a moment before timing anything so the host core reaches its
  // steady-state frequency; otherwise the first workload measured pays the
  // ramp-up and the comparison between early and late workloads skews.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  std::printf("=== simulator memory-system throughput (host wall-clock) ===\n");
  std::vector<Result> results;
  {
    Harness h;
    results.push_back(
        Measure("word_rw", [&](int it) { return WordTraffic(h, it); }));
  }
  {
    Harness h;
    results.push_back(
        Measure("byte_half_rw", [&](int it) { return ByteHalfTraffic(h, it); }));
  }
  {
    Harness h;
    results.push_back(
        Measure("cap_spill_reload", [&](int it) { return CapTraffic(h, it); }));
  }
  {
    Harness h;
    results.push_back(
        Measure("mmio_poll", [&](int it) { return MmioTraffic(h, it); }));
  }

  // Naive-dispatch reference on the word workload, same SoC MMIO map shape.
  // The clock hook stands in for the seed Machine's per-tick std::function
  // dispatch into the revoker/timer background work: Revoker::Advance and
  // Timer::Poll were out-of-line functions called on every access.
  CycleClock naive_clock;
  NaiveBackground naive_bg;
  naive_clock.AddHook([&naive_bg](Cycles d) {
    naive_bg.Advance(d);
    naive_bg.Poll();
  });
  constexpr Address kBase = 0x20000000;
  NaiveMemory naive(kBase, 256 * 1024, &naive_clock);
  for (Address dev = kUartMmioBase; dev <= kEntropyMmioBase; dev += 0x1000) {
    naive.AddRegion(dev, kMmioRegionSize,
                    [](Address, bool, Word) { return 0u; });
  }
  uint64_t naive_hook_hits = 0;
  naive.SetHook([&naive_hook_hits] { ++naive_hook_hits; });
  const Capability naive_root =
      Capability::RootReadWrite(kBase, kBase + 256 * 1024);
  const Result naive_result = Measure("naive_word_rw", [&](int it) {
    return NaiveWordTraffic(naive, naive_root, kBase, it);
  });
  benchmark::DoNotOptimize(naive_hook_hits);
  benchmark::DoNotOptimize(naive_bg.work);

  const Result& fast_word = results[0];
  const double speedup = fast_word.per_sec() / naive_result.per_sec();
  std::printf("  fast-path speedup vs naive dispatch (word_rw): %.2fx\n",
              speedup);

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"unit\": \"simulated accesses per host second\",\n");
  for (const Result& r : results) {
    std::fprintf(f, "  \"%s_per_sec\": %.0f,\n", r.name.c_str(), r.per_sec());
  }
  std::fprintf(f, "  \"naive_word_rw_per_sec\": %.0f,\n",
               naive_result.per_sec());
  std::fprintf(f, "  \"speedup_vs_naive_word_rw\": %.3f\n}\n", speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

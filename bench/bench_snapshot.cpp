// Snapshot/restore cost (DESIGN.md §10): serialization throughput, blob
// sizes and restore wall time for a representative board (mid-run, replay
// restore) and its cold post-boot snapshot (the warm-boot fixture path),
// plus warm-boot vs. cold-boot time — the number the test fixture banks on.
// Every restore self-verifies byte-for-byte, so the times below include the
// verify; BENCH_snapshot.json records the results with the usual provenance
// stamp.
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/provenance.h"
#include "src/sim/board.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

constexpr Cycles kRunCycles = 2'000'000;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename Fn>
double BestOf(int runs, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = SecondsSince(t0);
    if (i == 0 || s < best) {
      best = s;
    }
  }
  return best;
}

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  using namespace cheriot;
  const char* json_path = "BENCH_snapshot.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // Reach steady-state CPU frequency before timing anything.
  {
    volatile uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (SecondsSince(t0) < 0.5) {
      for (int i = 0; i < 4096; ++i) {
        sink += i;
      }
    }
  }

  const tools::LintTarget* target = tools::FindLintTarget("fleet-node");
  if (!target) {
    std::fprintf(stderr, "lint target 'fleet-node' missing\n");
    return 1;
  }

  std::printf("=== snapshot/restore cost (%s, %llu guest cycles) ===\n",
              target->name.c_str(),
              static_cast<unsigned long long>(kRunCycles));

  // Mid-run board: snapshot throughput + replay restore time.
  sim::Board board(target->build(), {});
  board.Boot();
  board.StepTo(kRunCycles);
  std::vector<uint8_t> blob;
  const double snap_s = BestOf(5, [&] { board.Snapshot(blob); });
  const double snap_mbps = blob.size() / snap_s / 1e6;

  const double restore_s = BestOf(3, [&] {
    auto restored = sim::Board::Restore(blob, target->build());
    benchmark::DoNotOptimize(restored);
  });

  // Cold post-boot snapshot: the warm-boot fixture path.
  sim::Board booted(target->build(), {});
  booted.Boot();
  std::vector<uint8_t> cold_blob;
  booted.Snapshot(cold_blob);

  const double cold_boot_s = BestOf(5, [&] {
    sim::Board b(target->build(), {});
    b.Boot();
    benchmark::DoNotOptimize(b.Now());
  });
  const double warm_boot_s = BestOf(5, [&] {
    auto b = sim::Board::Restore(cold_blob, target->build());
    benchmark::DoNotOptimize(b);
  });

  std::printf("  snapshot:      %.4f s  (%zu bytes, %.1f MB/s)\n", snap_s,
              blob.size(), snap_mbps);
  std::printf("  replay restore %.4f s  (incl. byte-for-byte verify)\n",
              restore_s);
  std::printf("  cold boot:     %.4f s  (loader)\n", cold_boot_s);
  std::printf("  warm boot:     %.4f s  (%zu-byte snapshot, incl. verify)\n",
              warm_boot_s, cold_blob.size());

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write '%s': %s\n", json_path,
                 std::strerror(errno));
    return 1;
  }
  std::fprintf(f, "{\n%s", bench::ProvenanceJson().c_str());
  std::fprintf(f, "  \"bench\": \"snapshot\",\n");
  std::fprintf(f, "  \"image\": \"%s\",\n", target->name.c_str());
  std::fprintf(f, "  \"run_cycles\": %llu,\n",
               static_cast<unsigned long long>(kRunCycles));
  std::fprintf(f, "  \"blob_bytes\": %zu,\n", blob.size());
  std::fprintf(f, "  \"cold_blob_bytes\": %zu,\n", cold_blob.size());
  std::fprintf(f, "  \"snapshot_seconds\": %.6f,\n", snap_s);
  std::fprintf(f, "  \"snapshot_mb_per_s\": %.2f,\n", snap_mbps);
  std::fprintf(f, "  \"replay_restore_seconds\": %.6f,\n", restore_s);
  std::fprintf(f, "  \"cold_boot_seconds\": %.6f,\n", cold_boot_s);
  std::fprintf(f, "  \"warm_boot_seconds\": %.6f\n}\n", warm_boot_s);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}

// Fig. 6a reproduction: call and interrupt latencies, measured in simulated
// cycles on the booted system (google-benchmark harness; the simulated
// cycle counts are reported as the `sim_cycles` counter — wall time of the
// host is irrelevant).
//
// Paper reference points: function call 6, library call 14, empty
// compartment call 209, +2x256 B stack zeroing 452, 2x1 KiB worst case 1284,
// interrupt latency 1028 cycles.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Measured {
  double cycles = 0;
};

// Runs `body` in a guest compartment and returns what it stores into
// Measured (average simulated cycles for the operation under test).
Measured RunGuestBench(
    const std::function<void(CompartmentCtx&, Measured*)>& body) {
  Machine machine;
  auto result = std::make_shared<Measured>();
  ImageBuilder b("bench");
  b.Compartment("callee")
      .Globals(32)
      .Export("nop",
              [](CompartmentCtx&, const std::vector<Capability>&) {
                return StatusCap(Status::kOk);
              })
      .Export("use_stack",
              [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
                // Dirty `bytes` of callee stack (one store per granule).
                const Word bytes = args[0].word();
                auto buf = ctx.AllocStack(bytes);
                for (Word off = 0; off + 8 <= bytes; off += 8) {
                  ctx.StoreWord(buf.cap(), off, 0xD1);
                }
                return StatusCap(Status::kOk);
              },
              2048);
  b.Compartment("bench")
      .Globals(32)
      .ImportCompartment("callee.nop")
      .ImportCompartment("callee.use_stack")
      .Export("main", [body, result](CompartmentCtx& ctx,
                                     const std::vector<Capability>&) {
        body(ctx, result.get());
        return StatusCap(Status::kOk);
      });
  sync::UseLocks(b, "bench");
  b.Thread("t", 2, 8192, 8, "bench.main");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(8'000'000'000ull);
  return *result;
}

double MeasureCompartmentCall(Word stack_bytes) {
  const Measured m = RunGuestBench([stack_bytes](CompartmentCtx& ctx,
                                                 Measured* out) {
    // One warm-up call, then twenty measured calls (paper methodology).
    auto dirty_caller_stack = [&] {
      if (stack_bytes == 0) {
        return;
      }
      auto buf = ctx.AllocStack(stack_bytes);
      for (Word off = 0; off + 8 <= stack_bytes; off += 8) {
        ctx.StoreWord(buf.cap(), off, 0xD1);
      }
      // Buffer released here: the dirty region sits below sp for the call.
    };
    const char* target = stack_bytes == 0 ? "callee.nop" : "callee.use_stack";
    dirty_caller_stack();
    ctx.Call(target, {WordCap(stack_bytes)});
    Cycles total = 0;
    for (int i = 0; i < 20; ++i) {
      dirty_caller_stack();
      const Cycles t0 = ctx.Now();
      ctx.Call(target, {WordCap(stack_bytes)});
      total += ctx.Now() - t0;
      if (stack_bytes != 0) {
        // Subtract the callee's own stack-dirtying stores so only the
        // switcher path (incl. zeroing) is reported.
        total -= (stack_bytes / 8) * cost::kStoreWord;
      }
    }
    out->cycles = static_cast<double>(total) / 20;
  });
  return m.cycles;
}

double MeasureLibraryCall() {
  const Measured m = RunGuestBench([](CompartmentCtx& ctx, Measured* out) {
    sync::Mutex mutex(ctx.globals());
    // Warm-up.
    ctx.LibCall("locks.mutex_trylock", {ctx.globals()});
    ctx.LibCall("locks.mutex_unlock", {ctx.globals()});
    const Cycles t0 = ctx.Now();
    for (int i = 0; i < 20; ++i) {
      ctx.LibCall("locks.mutex_unlock", {ctx.globals()});
    }
    // Each iteration: library call + 1 load + 1 store of the lock word.
    out->cycles =
        static_cast<double>(ctx.Now() - t0) / 20 -
        (cost::kLoadWord + cost::kStoreWord);
  });
  return m.cycles;
}

double MeasureFunctionCall() {
  // A plain intra-compartment function call has the modelled cost.
  return static_cast<double>(cost::kFunctionCall);
}

double MeasureInterruptLatency() {
  // Paper methodology (§5.3.2): a high-priority thread asks the revoker for
  // an interrupt and waits on its interrupt futex; a low-priority thread
  // continually records the current timestamp; the latency is the gap
  // between the low-priority thread's last timestamp and the high-priority
  // thread's wake-up timestamp.
  Machine machine;
  struct State {
    std::vector<double> samples;
  };
  auto state = std::make_shared<State>();
  ImageBuilder b("irq-bench");
  b.Compartment("hi")
      .Globals(32)
      .ImportMmio("revoker", kRevokerMmioBase, kMmioRegionSize, true)
      .ImportCompartment("sched.interrupt_futex_get")
      .Export("main", [state](CompartmentCtx& ctx,
                              const std::vector<Capability>&) {
        const Capability futex = ctx.InterruptFutex(IrqLine::kRevoker);
        const Capability revoker = ctx.Mmio("revoker");
        for (int i = 0; i < 10; ++i) {
          const Word seen = ctx.LoadWord(futex, 0);
          ctx.StoreWord(revoker, 12, 1);  // request completion IRQ
          ctx.FutexWait(futex, seen, ~0u);
          const Cycles t2 = ctx.Now();
          // t1 lives in the shared global written by the low-prio thread.
          const Word t1 = ctx.LoadWord(ctx.globals(), 0);
          state->samples.push_back(static_cast<double>(t2 - t1));
        }
        ctx.StoreWord(ctx.globals(), 4, 1);  // stop the low-prio thread
        return StatusCap(Status::kOk);
      });
  b.Compartment("hi").Export(
      "spin", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        while (ctx.LoadWord(ctx.globals(), 4) == 0) {
          ctx.StoreWord(ctx.globals(), 0, static_cast<Word>(ctx.Now()));
        }
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "hi");
  b.Thread("hi", 8, 4096, 8, "hi.main");
  b.Thread("lo", 1, 4096, 8, "hi.spin");
  System sys(machine, b.Build());
  sys.Boot();
  sys.Run(8'000'000'000ull);
  double sum = 0;
  for (double s : state->samples) {
    sum += s;
  }
  return state->samples.empty() ? 0 : sum / state->samples.size();
}

void Report(benchmark::State& state, double cycles) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_cycles"] = cycles;
}

void BM_FunctionCall(benchmark::State& state) {
  Report(state, MeasureFunctionCall());
}
void BM_LibraryCall(benchmark::State& state) {
  Report(state, MeasureLibraryCall());
}
void BM_CompartmentCallEmpty(benchmark::State& state) {
  Report(state, MeasureCompartmentCall(0));
}
void BM_CompartmentCall256B(benchmark::State& state) {
  Report(state, MeasureCompartmentCall(256));
}
void BM_CompartmentCall1KiB(benchmark::State& state) {
  Report(state, MeasureCompartmentCall(1024));
}
void BM_InterruptLatency(benchmark::State& state) {
  Report(state, MeasureInterruptLatency());
}

BENCHMARK(BM_FunctionCall);
BENCHMARK(BM_LibraryCall);
BENCHMARK(BM_CompartmentCallEmpty);
BENCHMARK(BM_CompartmentCall256B);
BENCHMARK(BM_CompartmentCall1KiB);
BENCHMARK(BM_InterruptLatency);

}  // namespace
}  // namespace cheriot

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace cheriot;
  std::printf("\n=== Figure 6a: call and interrupt latencies (cycles) ===\n");
  std::printf("  %-34s %10s %10s\n", "operation", "measured", "paper");
  std::printf("  %-34s %10.1f %10s\n", "function call", MeasureFunctionCall(), "6");
  std::printf("  %-34s %10.1f %10s\n", "library call", MeasureLibraryCall(), "14");
  std::printf("  %-34s %10.1f %10s\n", "compartment call (empty)",
              MeasureCompartmentCall(0), "209");
  std::printf("  %-34s %10.1f %10s\n", "compartment call (2x256 B stack)",
              MeasureCompartmentCall(256), "452");
  std::printf("  %-34s %10.1f %10s\n", "compartment call (2x1 KiB stack)",
              MeasureCompartmentCall(1024), "1284");
  std::printf("  %-34s %10.1f %10s\n", "interrupt latency",
              MeasureInterruptLatency(), "1028");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/audit_firmware.dir/audit_firmware.cpp.o"
  "CMakeFiles/audit_firmware.dir/audit_firmware.cpp.o.d"
  "audit_firmware"
  "audit_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

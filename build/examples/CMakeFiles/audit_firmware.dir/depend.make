# Empty dependencies file for audit_firmware.
# This may be replaced when dependencies are built.

# Empty dependencies file for iot_mqtt_app.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/iot_mqtt_app.dir/iot_mqtt_app.cpp.o"
  "CMakeFiles/iot_mqtt_app.dir/iot_mqtt_app.cpp.o.d"
  "iot_mqtt_app"
  "iot_mqtt_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_mqtt_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cheriot.
# This may be replaced when dependencies are built.

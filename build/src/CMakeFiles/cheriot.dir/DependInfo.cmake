
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cc" "src/CMakeFiles/cheriot.dir/alloc/allocator.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/alloc/allocator.cc.o.d"
  "/root/repo/src/audit/policy.cc" "src/CMakeFiles/cheriot.dir/audit/policy.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/audit/policy.cc.o.d"
  "/root/repo/src/audit/report.cc" "src/CMakeFiles/cheriot.dir/audit/report.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/audit/report.cc.o.d"
  "/root/repo/src/base/clock.cc" "src/CMakeFiles/cheriot.dir/base/clock.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/base/clock.cc.o.d"
  "/root/repo/src/base/log.cc" "src/CMakeFiles/cheriot.dir/base/log.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/base/log.cc.o.d"
  "/root/repo/src/cap/capability.cc" "src/CMakeFiles/cheriot.dir/cap/capability.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/cap/capability.cc.o.d"
  "/root/repo/src/compat/freertos_shim.cc" "src/CMakeFiles/cheriot.dir/compat/freertos_shim.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/compat/freertos_shim.cc.o.d"
  "/root/repo/src/compat/posix_shim.cc" "src/CMakeFiles/cheriot.dir/compat/posix_shim.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/compat/posix_shim.cc.o.d"
  "/root/repo/src/debug/debug.cc" "src/CMakeFiles/cheriot.dir/debug/debug.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/debug/debug.cc.o.d"
  "/root/repo/src/firmware/image.cc" "src/CMakeFiles/cheriot.dir/firmware/image.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/firmware/image.cc.o.d"
  "/root/repo/src/hw/devices.cc" "src/CMakeFiles/cheriot.dir/hw/devices.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/hw/devices.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/CMakeFiles/cheriot.dir/hw/machine.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/hw/machine.cc.o.d"
  "/root/repo/src/hw/revoker.cc" "src/CMakeFiles/cheriot.dir/hw/revoker.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/hw/revoker.cc.o.d"
  "/root/repo/src/js/assembler.cc" "src/CMakeFiles/cheriot.dir/js/assembler.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/js/assembler.cc.o.d"
  "/root/repo/src/js/minivm.cc" "src/CMakeFiles/cheriot.dir/js/minivm.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/js/minivm.cc.o.d"
  "/root/repo/src/json/json.cc" "src/CMakeFiles/cheriot.dir/json/json.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/json/json.cc.o.d"
  "/root/repo/src/kernel/system.cc" "src/CMakeFiles/cheriot.dir/kernel/system.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/kernel/system.cc.o.d"
  "/root/repo/src/loader/loader.cc" "src/CMakeFiles/cheriot.dir/loader/loader.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/loader/loader.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/cheriot.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/mem/memory.cc.o.d"
  "/root/repo/src/net/crypto.cc" "src/CMakeFiles/cheriot.dir/net/crypto.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/crypto.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/CMakeFiles/cheriot.dir/net/dns.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/dns.cc.o.d"
  "/root/repo/src/net/firewall.cc" "src/CMakeFiles/cheriot.dir/net/firewall.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/firewall.cc.o.d"
  "/root/repo/src/net/mqtt.cc" "src/CMakeFiles/cheriot.dir/net/mqtt.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/mqtt.cc.o.d"
  "/root/repo/src/net/netstack_image.cc" "src/CMakeFiles/cheriot.dir/net/netstack_image.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/netstack_image.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/cheriot.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/packet.cc.o.d"
  "/root/repo/src/net/sntp.cc" "src/CMakeFiles/cheriot.dir/net/sntp.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/sntp.cc.o.d"
  "/root/repo/src/net/tcpip.cc" "src/CMakeFiles/cheriot.dir/net/tcpip.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/tcpip.cc.o.d"
  "/root/repo/src/net/tls.cc" "src/CMakeFiles/cheriot.dir/net/tls.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/tls.cc.o.d"
  "/root/repo/src/net/world.cc" "src/CMakeFiles/cheriot.dir/net/world.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/net/world.cc.o.d"
  "/root/repo/src/runtime/compartment_ctx.cc" "src/CMakeFiles/cheriot.dir/runtime/compartment_ctx.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/runtime/compartment_ctx.cc.o.d"
  "/root/repo/src/runtime/hardening.cc" "src/CMakeFiles/cheriot.dir/runtime/hardening.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/runtime/hardening.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/cheriot.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/switcher/switcher.cc" "src/CMakeFiles/cheriot.dir/switcher/switcher.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/switcher/switcher.cc.o.d"
  "/root/repo/src/switcher/trusted_stack.cc" "src/CMakeFiles/cheriot.dir/switcher/trusted_stack.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/switcher/trusted_stack.cc.o.d"
  "/root/repo/src/sync/event_group.cc" "src/CMakeFiles/cheriot.dir/sync/event_group.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/sync/event_group.cc.o.d"
  "/root/repo/src/sync/locks.cc" "src/CMakeFiles/cheriot.dir/sync/locks.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/sync/locks.cc.o.d"
  "/root/repo/src/sync/queue.cc" "src/CMakeFiles/cheriot.dir/sync/queue.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/sync/queue.cc.o.d"
  "/root/repo/src/sync/semaphore.cc" "src/CMakeFiles/cheriot.dir/sync/semaphore.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/sync/semaphore.cc.o.d"
  "/root/repo/src/token/token.cc" "src/CMakeFiles/cheriot.dir/token/token.cc.o" "gcc" "src/CMakeFiles/cheriot.dir/token/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_cap_overhead.dir/bench_cap_overhead.cpp.o"
  "CMakeFiles/bench_cap_overhead.dir/bench_cap_overhead.cpp.o.d"
  "bench_cap_overhead"
  "bench_cap_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cap_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_cap_overhead.
# This may be replaced when dependencies are built.

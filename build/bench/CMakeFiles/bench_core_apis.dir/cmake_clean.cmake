file(REMOVE_RECURSE
  "CMakeFiles/bench_core_apis.dir/bench_core_apis.cpp.o"
  "CMakeFiles/bench_core_apis.dir/bench_core_apis.cpp.o.d"
  "bench_core_apis"
  "bench_core_apis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_core_apis.
# This may be replaced when dependencies are built.

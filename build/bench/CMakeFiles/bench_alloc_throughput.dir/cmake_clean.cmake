file(REMOVE_RECURSE
  "CMakeFiles/bench_alloc_throughput.dir/bench_alloc_throughput.cpp.o"
  "CMakeFiles/bench_alloc_throughput.dir/bench_alloc_throughput.cpp.o.d"
  "bench_alloc_throughput"
  "bench_alloc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alloc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_call_latency.dir/bench_call_latency.cpp.o"
  "CMakeFiles/bench_call_latency.dir/bench_call_latency.cpp.o.d"
  "bench_call_latency"
  "bench_call_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_call_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

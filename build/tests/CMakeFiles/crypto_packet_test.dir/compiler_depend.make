# Empty compiler generated dependencies file for crypto_packet_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crypto_packet_test.dir/crypto_packet_test.cpp.o"
  "CMakeFiles/crypto_packet_test.dir/crypto_packet_test.cpp.o.d"
  "crypto_packet_test"
  "crypto_packet_test.pdb"
  "crypto_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

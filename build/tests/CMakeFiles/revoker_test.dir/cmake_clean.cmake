file(REMOVE_RECURSE
  "CMakeFiles/revoker_test.dir/revoker_test.cpp.o"
  "CMakeFiles/revoker_test.dir/revoker_test.cpp.o.d"
  "revoker_test"
  "revoker_test.pdb"
  "revoker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revoker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

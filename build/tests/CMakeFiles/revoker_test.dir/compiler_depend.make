# Empty compiler generated dependencies file for revoker_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/switcher_test.dir/switcher_test.cpp.o"
  "CMakeFiles/switcher_test.dir/switcher_test.cpp.o.d"
  "switcher_test"
  "switcher_test.pdb"
  "switcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for switcher_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/capability_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/revoker_test[1]_include.cmake")
include("/root/repo/build/tests/loader_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/hardening_test[1]_include.cmake")
include("/root/repo/build/tests/switcher_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_packet_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")

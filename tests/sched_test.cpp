// Scheduler behaviour tests (§3.1.4): strict priority, round-robin within a
// priority level, sleep timing, wake ordering, interrupt futexes and the
// scheduler's limited trust (availability only).
#include <gtest/gtest.h>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<int> order;
  std::vector<Cycles> times;
  Word value = 0;
};

class SchedTest : public ::testing::Test {
 protected:
  Machine machine_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(SchedTest, StrictPriorityOrdering) {
  auto shared = shared_;
  ImageBuilder b("prio");
  b.Compartment("c").Export(
      "note", [shared](CompartmentCtx& ctx, const std::vector<Capability>& a) {
        shared->order.push_back(static_cast<int>(a[0].word()));
        return StatusCap(Status::kOk);
      });
  // Threads started together run strictly by priority.
  b.Compartment("c")
      .ImportCompartment("c.note")
      .Export("run", [shared](CompartmentCtx& ctx,
                              const std::vector<Capability>& a) {
        ctx.Call("c.note", {a.empty() ? WordCap(0) : a[0]});
        shared->order.push_back(100 + static_cast<int>(ctx.ThreadId()));
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "c");
  b.Thread("low", 1, 2048, 6, "c.run");
  b.Thread("high", 9, 2048, 6, "c.run");
  b.Thread("mid", 5, 2048, 6, "c.run");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(2'000'000'000ull), System::RunResult::kAllExited);
  // Thread ids: low=0, high=1, mid=2. Completion order: high, mid, low.
  std::vector<int> completions;
  for (int v : shared->order) {
    if (v >= 100) {
      completions.push_back(v - 100);
    }
  }
  EXPECT_EQ(completions, (std::vector<int>{1, 2, 0}));
}

TEST_F(SchedTest, SleepWakesAtRequestedTime) {
  auto shared = shared_;
  ImageBuilder b("sleep");
  b.Compartment("c").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        for (Cycles delay : {10'000ull, 100'000ull, 1'000'000ull}) {
          const Cycles t0 = ctx.Now();
          ctx.SleepCycles(delay);
          shared->times.push_back(ctx.Now() - t0 - delay);  // overshoot
        }
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "c");
  b.Thread("t", 1, 2048, 6, "c.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  ASSERT_EQ(shared->times.size(), 3u);
  for (Cycles overshoot : shared->times) {
    // Wakes at or shortly after the deadline (bounded by delivery costs).
    EXPECT_LT(overshoot, 3'000u);
  }
}

TEST_F(SchedTest, FutexWakeCountIsRespected) {
  auto shared = shared_;
  ImageBuilder b("wakecount");
  b.Compartment("c")
      .Globals(16)
      .Export("waiter",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.FutexWait(ctx.globals(), 0, ~0u);
                shared->order.push_back(ctx.ThreadId());
                return StatusCap(Status::kOk);
              })
      .Export("waker",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.SleepCycles(200'000);  // let both waiters block
                shared->value = static_cast<Word>(
                    ctx.FutexWake(ctx.globals(), 1));  // exactly one
                ctx.SleepCycles(200'000);
                shared->order.push_back(99);  // separator
                ctx.FutexWake(ctx.globals(), 8);  // the rest
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "c");
  b.Thread("w1", 5, 2048, 6, "c.waiter");
  b.Thread("w2", 5, 2048, 6, "c.waiter");
  b.Thread("waker", 2, 2048, 6, "c.waker");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->value, 1u);  // first wake released exactly one waiter
  ASSERT_EQ(shared->order.size(), 3u);
  EXPECT_EQ(shared->order[1], 99);  // one before, one after the separator
}

TEST_F(SchedTest, InterruptFutexDeliversDeviceEvents) {
  auto shared = shared_;
  ImageBuilder b("irqfutex");
  b.Compartment("c")
      .ImportCompartment("sched.interrupt_futex_get")
      .ImportMmio("revoker", kRevokerMmioBase, kMmioRegionSize, true)
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability futex = ctx.InterruptFutex(IrqLine::kRevoker);
        // Least privilege: the returned capability is read-only.
        auto winfo = ctx.Try([&] { ctx.StoreWord(futex, 0, 1); });
        shared->order.push_back(winfo.has_value() ? 1 : 0);
        const Word before = ctx.LoadWord(futex, 0);
        ctx.StoreWord(ctx.Mmio("revoker"), 12, 1);  // request completion IRQ
        const Status s = ctx.FutexWait(futex, before, 200'000'000);
        shared->order.push_back(static_cast<int>(s));
        shared->value = ctx.LoadWord(futex, 0) - before;
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "c");
  b.Thread("t", 1, 4096, 6, "c.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->order, (std::vector<int>{1, 0}));  // RO cap; wait OK
  EXPECT_EQ(shared->value, 1u);  // the IRQ bumped the futex word once
}

TEST_F(SchedTest, SchedulerCannotForgeLockOwnership) {
  // Trust model (§3.2.4): the scheduler can fail to wake (availability) but
  // the mutex word lives in compartment memory the scheduler never writes;
  // a spurious wake cannot grant the lock.
  auto shared = shared_;
  ImageBuilder b("trust");
  b.Compartment("c")
      .Globals(16)
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        sync::Mutex m(ctx.globals());
        m.Lock(ctx);
        // A spurious wake on the futex word does not release the lock: a
        // second lock attempt still times out.
        ctx.FutexWake(ctx.globals(), 1);
        shared->value = static_cast<Word>(m.Lock(ctx, 50'000));
        m.Unlock(ctx);
        shared->order.push_back(static_cast<int>(m.Lock(ctx, 50'000)));
        return StatusCap(Status::kOk);
      });
  sync::UseLocks(b, "c");
  b.Thread("t", 1, 4096, 6, "c.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(4'000'000'000ull);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kTimedOut);
  EXPECT_EQ(shared->order, (std::vector<int>{0}));  // after unlock: acquired
}

TEST_F(SchedTest, IdleAccountingTracksSleep) {
  ImageBuilder b("idle");
  b.Compartment("c").Export(
      "main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.SleepCycles(10'000'000);
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "c");
  b.Thread("t", 1, 2048, 6, "c.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  // Nearly the whole run was idle (one thread sleeping 10 M cycles).
  EXPECT_GT(sys.sched().idle_cycles(), 9'500'000u);
}

}  // namespace
}  // namespace cheriot

// Tests for the background revoker: asynchronous sweeping, the epoch
// contract the allocator's quarantine depends on, and completion interrupts.
#include "src/hw/revoker.h"

#include <gtest/gtest.h>

#include <random>

#include "src/hw/machine.h"

namespace cheriot {
namespace {

class RevokerTest : public ::testing::Test {
 protected:
  Machine machine_{};
  Capability root_ = Capability::RootReadWrite(
      machine_.memory().sram_base(),
      machine_.memory().sram_base() + machine_.memory().sram_size());
};

TEST_F(RevokerTest, SweepInvalidatesStaleCapabilities) {
  Memory& mem = machine_.memory();
  const Address obj = mem.sram_base() + 0x1000;
  const Address slot = mem.sram_base() + 0x2000;
  const Capability obj_cap = root_.WithBounds(obj, 0x40);
  mem.StoreCap(root_, slot, obj_cap);
  ASSERT_TRUE(mem.TagAt(slot));

  mem.revocation().SetRange(obj, 0x40, true);
  machine_.revoker().StartSweep();
  EXPECT_TRUE(machine_.revoker().sweeping());
  // Advance until the sweep completes.
  while (machine_.revoker().sweeping()) {
    machine_.Tick(10'000);
  }
  EXPECT_FALSE(mem.TagAt(slot));  // stale pointer swept
  EXPECT_EQ(machine_.revoker().epoch(), 1u);
}

TEST_F(RevokerTest, SweepPreservesLiveCapabilities) {
  Memory& mem = machine_.memory();
  const Address obj = mem.sram_base() + 0x1000;
  const Address slot = mem.sram_base() + 0x2000;
  mem.StoreCap(root_, slot, root_.WithBounds(obj, 0x40));
  machine_.revoker().StartSweep();
  while (machine_.revoker().sweeping()) {
    machine_.Tick(10'000);
  }
  EXPECT_TRUE(mem.TagAt(slot));
}

TEST_F(RevokerTest, SweepTakesTimeProportionalToMemory) {
  machine_.revoker().StartSweep();
  const Cycles expected =
      static_cast<Cycles>(machine_.memory().GranuleCount()) *
      cost::kRevokerCyclesPerGranule;
  EXPECT_EQ(machine_.revoker().CyclesUntilDone(), expected);
  machine_.Tick(expected / 2);
  EXPECT_TRUE(machine_.revoker().sweeping());
  machine_.Tick(expected / 2 + cost::kRevokerCyclesPerGranule);
  EXPECT_FALSE(machine_.revoker().sweeping());
}

TEST_F(RevokerTest, SafeEpochAccountsForInFlightSweep) {
  EXPECT_EQ(machine_.revoker().SafeEpochForFreeNow(), 1u);
  machine_.revoker().StartSweep();
  // Mid-sweep, a newly freed object needs the *next* full sweep.
  EXPECT_EQ(machine_.revoker().SafeEpochForFreeNow(), 2u);
}

TEST_F(RevokerTest, RestartRequestQueuesSecondSweep) {
  machine_.revoker().StartSweep();
  machine_.revoker().StartSweep();  // queued
  while (machine_.revoker().epoch() < 2) {
    machine_.Tick(100'000);
  }
  EXPECT_EQ(machine_.revoker().epoch(), 2u);
}

TEST_F(RevokerTest, CompletionInterrupt) {
  EXPECT_FALSE(machine_.irqs().Pending(IrqLine::kRevoker));
  machine_.revoker().Mmio(12, /*is_store=*/true, 1);  // request IRQ
  while (machine_.revoker().sweeping()) {
    machine_.Tick(100'000);
  }
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kRevoker));
}

TEST_F(RevokerTest, MmioRegisterBank) {
  EXPECT_EQ(machine_.revoker().Mmio(0, false, 0), 0u);  // epoch
  machine_.revoker().Mmio(4, true, 1);                  // start
  EXPECT_EQ(machine_.revoker().Mmio(8, false, 0), 1u);  // status: sweeping
  while (machine_.revoker().sweeping()) {
    machine_.Tick(100'000);
  }
  EXPECT_EQ(machine_.revoker().Mmio(0, false, 0), 1u);
  EXPECT_EQ(machine_.revoker().Mmio(8, false, 0), 0u);
}

// Differential check of the word-skipping sweep (src/hw/revoker.cc) against
// a naive granule-at-a-time reference on a randomized heap: two identically
// seeded machines, one swept by the hardware revoker driven with random tick
// deltas, the other by the reference sweep fed the same deltas. Sweep
// progress (via CyclesUntilDone), epoch transitions and the final tag state
// must be bit-identical.
TEST_F(RevokerTest, SkippingSweepMatchesNaiveSweep) {
  std::mt19937 rng(0xC43107);
  Machine naive_machine;
  Memory& mem = machine_.memory();
  Memory& naive_mem = naive_machine.memory();
  const Address base = mem.sram_base();

  // Identical randomized heap on both machines: capabilities scattered over
  // the granule space (leaving long untagged runs to skip), a random subset
  // of their targets revoked.
  std::uniform_int_distribution<size_t> slot_dist(0, mem.GranuleCount() - 1);
  std::uniform_int_distribution<int> percent(0, 99);
  for (int i = 0; i < 400; ++i) {
    const Address slot = base + slot_dist(rng) * kGranuleBytes;
    const Address obj = base + slot_dist(rng) * kGranuleBytes;
    const Capability cap = root_.WithBounds(obj, kGranuleBytes);
    mem.StoreCap(root_, slot, cap);
    naive_mem.StoreCap(root_, slot, cap);
    if (percent(rng) < 40) {
      mem.revocation().SetRange(obj, kGranuleBytes, true);
      naive_mem.revocation().SetRange(obj, kGranuleBytes, true);
    }
  }

  machine_.revoker().StartSweep();
  // Naive reference sweep state, advanced with the exact deltas the real
  // revoker sees via the clock hook.
  size_t naive_next = 0;
  Cycles naive_budget = 0;
  const size_t total = naive_mem.GranuleCount();
  std::uniform_int_distribution<Cycles> delta_dist(1, 400);
  while (machine_.revoker().sweeping()) {
    const Cycles delta = delta_dist(rng);
    machine_.Tick(delta);
    naive_budget += delta;
    size_t granules = naive_budget / cost::kRevokerCyclesPerGranule;
    naive_budget -= granules * cost::kRevokerCyclesPerGranule;
    while (granules > 0 && naive_next < total) {
      if (naive_mem.GranuleTagged(naive_next) &&
          naive_mem.revocation().Test(naive_mem.GranuleCap(naive_next).base())) {
        naive_mem.ClearGranuleTag(naive_next);
      }
      ++naive_next;
      --granules;
    }
    if (machine_.revoker().sweeping()) {
      // CyclesUntilDone exposes the sweep position exactly.
      ASSERT_EQ(machine_.revoker().CyclesUntilDone(),
                static_cast<Cycles>(total - naive_next) *
                    cost::kRevokerCyclesPerGranule);
    } else {
      ASSERT_GE(naive_next, total);
    }
  }
  EXPECT_EQ(machine_.revoker().epoch(), 1u);
  for (size_t g = 0; g < total; ++g) {
    ASSERT_EQ(mem.GranuleTagged(g), naive_mem.GranuleTagged(g))
        << "granule " << g;
  }
}

TEST_F(RevokerTest, TimerRaisesIrqAtDeadline) {
  machine_.timer().SetDeadline(machine_.clock().now() + 500);
  machine_.Tick(499);
  EXPECT_FALSE(machine_.irqs().Pending(IrqLine::kTimer));
  machine_.Tick(2);
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kTimer));
}

TEST_F(RevokerTest, AdvanceIdleSkipsToTimer) {
  machine_.timer().SetDeadline(machine_.clock().now() + 12'345);
  const Cycles skipped = machine_.AdvanceIdle(1'000'000);
  EXPECT_EQ(skipped, 12'345u);
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kTimer));
}

}  // namespace
}  // namespace cheriot

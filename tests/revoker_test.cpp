// Tests for the background revoker: asynchronous sweeping, the epoch
// contract the allocator's quarantine depends on, and completion interrupts.
#include "src/hw/revoker.h"

#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace cheriot {
namespace {

class RevokerTest : public ::testing::Test {
 protected:
  Machine machine_{};
  Capability root_ = Capability::RootReadWrite(
      machine_.memory().sram_base(),
      machine_.memory().sram_base() + machine_.memory().sram_size());
};

TEST_F(RevokerTest, SweepInvalidatesStaleCapabilities) {
  Memory& mem = machine_.memory();
  const Address obj = mem.sram_base() + 0x1000;
  const Address slot = mem.sram_base() + 0x2000;
  const Capability obj_cap = root_.WithBounds(obj, 0x40);
  mem.StoreCap(root_, slot, obj_cap);
  ASSERT_TRUE(mem.TagAt(slot));

  mem.revocation().SetRange(obj, 0x40, true);
  machine_.revoker().StartSweep();
  EXPECT_TRUE(machine_.revoker().sweeping());
  // Advance until the sweep completes.
  while (machine_.revoker().sweeping()) {
    machine_.Tick(10'000);
  }
  EXPECT_FALSE(mem.TagAt(slot));  // stale pointer swept
  EXPECT_EQ(machine_.revoker().epoch(), 1u);
}

TEST_F(RevokerTest, SweepPreservesLiveCapabilities) {
  Memory& mem = machine_.memory();
  const Address obj = mem.sram_base() + 0x1000;
  const Address slot = mem.sram_base() + 0x2000;
  mem.StoreCap(root_, slot, root_.WithBounds(obj, 0x40));
  machine_.revoker().StartSweep();
  while (machine_.revoker().sweeping()) {
    machine_.Tick(10'000);
  }
  EXPECT_TRUE(mem.TagAt(slot));
}

TEST_F(RevokerTest, SweepTakesTimeProportionalToMemory) {
  machine_.revoker().StartSweep();
  const Cycles expected =
      static_cast<Cycles>(machine_.memory().GranuleCount()) *
      cost::kRevokerCyclesPerGranule;
  EXPECT_EQ(machine_.revoker().CyclesUntilDone(), expected);
  machine_.Tick(expected / 2);
  EXPECT_TRUE(machine_.revoker().sweeping());
  machine_.Tick(expected / 2 + cost::kRevokerCyclesPerGranule);
  EXPECT_FALSE(machine_.revoker().sweeping());
}

TEST_F(RevokerTest, SafeEpochAccountsForInFlightSweep) {
  EXPECT_EQ(machine_.revoker().SafeEpochForFreeNow(), 1u);
  machine_.revoker().StartSweep();
  // Mid-sweep, a newly freed object needs the *next* full sweep.
  EXPECT_EQ(machine_.revoker().SafeEpochForFreeNow(), 2u);
}

TEST_F(RevokerTest, RestartRequestQueuesSecondSweep) {
  machine_.revoker().StartSweep();
  machine_.revoker().StartSweep();  // queued
  while (machine_.revoker().epoch() < 2) {
    machine_.Tick(100'000);
  }
  EXPECT_EQ(machine_.revoker().epoch(), 2u);
}

TEST_F(RevokerTest, CompletionInterrupt) {
  EXPECT_FALSE(machine_.irqs().Pending(IrqLine::kRevoker));
  machine_.revoker().Mmio(12, /*is_store=*/true, 1);  // request IRQ
  while (machine_.revoker().sweeping()) {
    machine_.Tick(100'000);
  }
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kRevoker));
}

TEST_F(RevokerTest, MmioRegisterBank) {
  EXPECT_EQ(machine_.revoker().Mmio(0, false, 0), 0u);  // epoch
  machine_.revoker().Mmio(4, true, 1);                  // start
  EXPECT_EQ(machine_.revoker().Mmio(8, false, 0), 1u);  // status: sweeping
  while (machine_.revoker().sweeping()) {
    machine_.Tick(100'000);
  }
  EXPECT_EQ(machine_.revoker().Mmio(0, false, 0), 1u);
  EXPECT_EQ(machine_.revoker().Mmio(8, false, 0), 0u);
}

TEST_F(RevokerTest, TimerRaisesIrqAtDeadline) {
  machine_.timer().SetDeadline(machine_.clock().now() + 500);
  machine_.Tick(499);
  EXPECT_FALSE(machine_.irqs().Pending(IrqLine::kTimer));
  machine_.Tick(2);
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kTimer));
}

TEST_F(RevokerTest, AdvanceIdleSkipsToTimer) {
  machine_.timer().SetDeadline(machine_.clock().now() + 12'345);
  const Cycles skipped = machine_.AdvanceIdle(1'000'000);
  EXPECT_EQ(skipped, 12'345u);
  EXPECT_TRUE(machine_.irqs().Pending(IrqLine::kTimer));
}

}  // namespace
}  // namespace cheriot

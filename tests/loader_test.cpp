// Tests for the boot loader: deterministic layout, capability-graph
// instantiation, import resolution, static sealed objects, and self-erase.
#include "src/loader/loader.h"

#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace cheriot {
namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

FirmwareImage TwoCompartmentImage() {
  ImageBuilder b("loader-test");
  b.Compartment("a")
      .CodeSize(2048)
      .Globals(256)
      .Export("main", Nop(), 256)
      .ImportCompartment("b.service")
      .AllocCap("a_quota", 4096);
  b.Compartment("b")
      .CodeSize(1024)
      .Globals(128)
      .Export("service", Nop(), 128)
      .OwnSealingType("b.connections")
      .ImportMmio("uart", kUartMmioBase, kMmioRegionSize, true);
  b.Thread("main", 1, 1024, 4, "a.main");
  return b.Build();
}

TEST(Loader, LayoutIsDisjointAndInBounds) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& a = boot->compartments[0];
  const auto& b = boot->compartments[1];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(b.name, "b");
  // Code regions are disjoint.
  EXPECT_LE(a.code_base + a.code_size, b.code_base);
  // Globals are disjoint from code and from each other.
  EXPECT_NE(a.globals_base, b.globals_base);
  // Heap covers the tail of SRAM.
  EXPECT_EQ(boot->heap_base + boot->heap_size, machine.memory().sram_top());
  EXPECT_GT(boot->heap_size, 100u * 1024);  // most of the 256 KiB remains
}

TEST(Loader, CompartmentCapabilitiesAreBounded) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& a = boot->compartments[0];
  EXPECT_TRUE(a.pcc.tag());
  EXPECT_TRUE(a.pcc.permissions().Has(Permission::kExecute));
  EXPECT_FALSE(a.pcc.permissions().Has(Permission::kStore));
  EXPECT_EQ(a.pcc.base(), a.code_base);
  EXPECT_EQ(a.pcc.length(), a.code_size);
  EXPECT_TRUE(a.cgp.tag());
  EXPECT_EQ(a.cgp.base(), a.globals_base);
  // Globals cannot hold stack-derived (local) capabilities (§2.1).
  EXPECT_FALSE(a.cgp.permissions().Has(Permission::kStoreLocal));
}

TEST(Loader, ImportTableHasSealedExportCapability) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& a = boot->compartments[0];
  ASSERT_EQ(a.imports.size(), 2u);  // b.service + alloc cap
  const auto& call = a.imports[0];
  EXPECT_EQ(call.kind, ImportBinding::Kind::kCompartmentCall);
  EXPECT_EQ(call.qualified_name, "b.service");
  EXPECT_TRUE(call.cap.tag());
  EXPECT_TRUE(call.cap.IsSealed());
  EXPECT_EQ(call.cap.otype(), OType::kSwitcherCompartment);
  EXPECT_EQ(call.target_compartment, 1);
  // Unsealable only with the switcher's key.
  EXPECT_TRUE(call.cap.UnsealedWith(boot->switcher_seal_key).tag());
  EXPECT_FALSE(call.cap.UnsealedWith(boot->token_seal_key).tag());
}

TEST(Loader, AllocationCapabilityIsSealedOpaqueObject) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& quota = boot->compartments[0].imports[1];
  EXPECT_EQ(quota.kind, ImportBinding::Kind::kSealedObject);
  EXPECT_TRUE(quota.cap.IsSealed());
  EXPECT_EQ(quota.cap.otype(), OType::kAllocatorQuota);
  const Capability unsealed =
      quota.cap.UnsealedWith(boot->allocator_seal_key);
  ASSERT_TRUE(unsealed.tag());
  EXPECT_EQ(machine.memory().RawLoadWord(unsealed.base()), 0x414C4F43u);
  EXPECT_EQ(machine.memory().RawLoadWord(unsealed.base() + 4), 4096u);
}

TEST(Loader, MmioImportGrantsDeviceAccessOnly) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& b = boot->compartments[1];
  const ImportBinding* mmio = nullptr;
  for (const auto& imp : b.imports) {
    if (imp.kind == ImportBinding::Kind::kMmio) {
      mmio = &imp;
    }
  }
  ASSERT_NE(mmio, nullptr);
  EXPECT_EQ(mmio->cap.base(), kUartMmioBase);
  EXPECT_EQ(mmio->cap.length(), kMmioRegionSize);
  EXPECT_FALSE(mmio->cap.permissions().Has(Permission::kLoadStoreCap));
}

TEST(Loader, SealingTypeOwnershipYieldsKey) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  const auto& b = boot->compartments[1];
  const ImportBinding* key = nullptr;
  for (const auto& imp : b.imports) {
    if (imp.kind == ImportBinding::Kind::kSealingKey) {
      key = &imp;
    }
  }
  ASSERT_NE(key, nullptr);
  EXPECT_TRUE(key->cap.permissions().Has(Permission::kSeal));
  EXPECT_TRUE(key->cap.permissions().Has(Permission::kUnseal));
  EXPECT_GE(key->cap.cursor(), 16u);  // virtual, above hardware otypes
}

TEST(Loader, ThreadLayoutResolved) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  ASSERT_EQ(boot->threads.size(), 1u);
  const auto& t = boot->threads[0];
  EXPECT_EQ(t.entry_compartment, 0);
  EXPECT_EQ(t.entry_export, 0);
  EXPECT_EQ(t.stack_size, 1024u);
  EXPECT_GT(t.trusted_stack_size, 0u);
}

TEST(Loader, UnknownImportRejected) {
  ImageBuilder b("bad");
  b.Compartment("a").Export("main", Nop()).ImportCompartment("ghost.fn");
  b.Thread("t", 1, 512, 4, "a.main");
  Machine machine;
  EXPECT_THROW(Loader::Load(machine, b.Build()), std::invalid_argument);
}

TEST(Loader, UnknownThreadEntryRejected) {
  ImageBuilder b("bad");
  b.Compartment("a").Export("main", Nop());
  b.Thread("t", 1, 512, 4, "a.nonexistent");
  Machine machine;
  EXPECT_THROW(Loader::Load(machine, b.Build()), std::invalid_argument);
}

TEST(Loader, DuplicateExportRejected) {
  ImageBuilder b("bad");
  auto c = b.Compartment("a");
  c.Export("main", Nop());
  EXPECT_THROW(c.Export("main", Nop()), std::invalid_argument);
}

TEST(Loader, OversizedImageRejected) {
  ImageBuilder b("huge");
  b.Compartment("a").CodeSize(400 * 1024).Export("main", Nop());
  b.Thread("t", 1, 512, 4, "a.main");
  Machine machine;
  EXPECT_THROW(Loader::Load(machine, b.Build()), std::invalid_argument);
}

TEST(Loader, HeapIsZeroedAtBoot) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  // Spot-check the heap region (which includes the erased loader scratch).
  for (Address a = boot->heap_base; a < boot->heap_base + 1024; a += 4) {
    EXPECT_EQ(machine.memory().RawLoadWord(a), 0u);
  }
}

TEST(Loader, PerCompartmentMetadataIsSmall) {
  Machine machine;
  auto boot = Loader::Load(machine, TwoCompartmentImage());
  // Per-compartment metadata should be tens of bytes (paper: 83 B).
  for (const auto& [name, bytes] : boot->stats.per_compartment_metadata) {
    EXPECT_LT(bytes, 200u) << name;
    EXPECT_GT(bytes, 20u) << name;
  }
}

TEST(Loader, DeterministicLayout) {
  Machine m1, m2;
  auto b1 = Loader::Load(m1, TwoCompartmentImage());
  auto b2 = Loader::Load(m2, TwoCompartmentImage());
  EXPECT_EQ(b1->heap_base, b2->heap_base);
  EXPECT_EQ(b1->compartments[0].code_base, b2->compartments[0].code_base);
  EXPECT_EQ(b1->compartments[1].export_table, b2->compartments[1].export_table);
}

}  // namespace
}  // namespace cheriot

// Tests for the word-packed bitmap backing the tag and revocation SRAMs:
// single-bit ops, masked range fills across word boundaries, and the
// word-skipping FindNextSet the revoker sweep relies on.
#include "src/base/bitmap.h"

#include <gtest/gtest.h>

#include <random>

namespace cheriot {
namespace {

TEST(BitmapTest, StartsClear) {
  Bitmap bm(200);
  EXPECT_EQ(bm.size(), 200u);
  for (size_t i = 0; i < bm.size(); ++i) {
    EXPECT_FALSE(bm.Test(i));
  }
  EXPECT_EQ(bm.PopCount(), 0u);
  EXPECT_EQ(bm.FindNextSet(0), Bitmap::npos);
}

TEST(BitmapTest, SetClearSingleBits) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_FALSE(bm.Test(65));
  EXPECT_EQ(bm.PopCount(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.PopCount(), 3u);
}

TEST(BitmapTest, RangeWithinOneWord) {
  Bitmap bm(64);
  bm.SetRange(3, 5, true);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(bm.Test(i), i >= 3 && i < 8) << i;
  }
  bm.SetRange(4, 2, false);
  EXPECT_TRUE(bm.Test(3));
  EXPECT_FALSE(bm.Test(4));
  EXPECT_FALSE(bm.Test(5));
  EXPECT_TRUE(bm.Test(6));
}

TEST(BitmapTest, RangeAcrossWordBoundaries) {
  Bitmap bm(256);
  bm.SetRange(60, 140, true);  // spans words 0..3
  for (size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(bm.Test(i), i >= 60 && i < 200) << i;
  }
  EXPECT_EQ(bm.PopCount(), 140u);
  bm.ClearRange(63, 66);  // clears exactly across the first boundary pair
  for (size_t i = 60; i < 200; ++i) {
    EXPECT_EQ(bm.Test(i), i < 63 || i >= 129) << i;
  }
}

TEST(BitmapTest, RangeClampsToSize) {
  Bitmap bm(100);
  bm.SetRange(90, 1000, true);  // runs past the end
  EXPECT_EQ(bm.PopCount(), 10u);
  bm.SetRange(100, 5, true);  // entirely past the end: no-op
  bm.SetRange(500, 5, true);
  EXPECT_EQ(bm.PopCount(), 10u);
  bm.SetRange(0, 0, true);  // empty range: no-op
  EXPECT_EQ(bm.PopCount(), 10u);
}

TEST(BitmapTest, FindNextSetSkipsZeroWords) {
  Bitmap bm(1024);
  bm.Set(5);
  bm.Set(700);
  bm.Set(1023);
  EXPECT_EQ(bm.FindNextSet(0), 5u);
  EXPECT_EQ(bm.FindNextSet(5), 5u);
  EXPECT_EQ(bm.FindNextSet(6), 700u);
  EXPECT_EQ(bm.FindNextSet(700), 700u);
  EXPECT_EQ(bm.FindNextSet(701), 1023u);
  EXPECT_EQ(bm.FindNextSet(1023), 1023u);
  EXPECT_EQ(bm.FindNextSet(1024), Bitmap::npos);
  bm.Clear(1023);
  EXPECT_EQ(bm.FindNextSet(701), Bitmap::npos);
}

TEST(BitmapTest, AnyInRange) {
  Bitmap bm(256);
  bm.Set(128);
  EXPECT_TRUE(bm.AnyInRange(0, 256));
  EXPECT_TRUE(bm.AnyInRange(128, 1));
  EXPECT_FALSE(bm.AnyInRange(0, 128));
  EXPECT_FALSE(bm.AnyInRange(129, 127));
  EXPECT_FALSE(bm.AnyInRange(128, 0));
}

// Randomized differential check against a std::vector<bool> reference.
TEST(BitmapTest, MatchesReferenceUnderRandomOps) {
  constexpr size_t kBits = 777;
  Bitmap bm(kBits);
  std::vector<bool> ref(kBits, false);
  std::mt19937 rng(1234);
  for (int op = 0; op < 2000; ++op) {
    const size_t first = rng() % kBits;
    const size_t count = rng() % 130;
    const bool value = rng() & 1;
    bm.SetRange(first, count, value);
    for (size_t i = first; i < std::min(kBits, first + count); ++i) {
      ref[i] = value;
    }
    const size_t probe = rng() % kBits;
    ASSERT_EQ(bm.Test(probe), ref[probe]) << "op " << op;
    // FindNextSet agrees with a linear scan.
    size_t expect = Bitmap::npos;
    for (size_t i = probe; i < kBits; ++i) {
      if (ref[i]) {
        expect = i;
        break;
      }
    }
    ASSERT_EQ(bm.FindNextSet(probe), expect) << "op " << op;
  }
}

}  // namespace
}  // namespace cheriot

// Tests for the memory-system fast path: half-word MMIO dispatch (a seed
// regression — LoadHalf/StoreHalf used to trap "unmapped address" on device
// addresses instead of dispatching), the MMIO envelope's behaviour at the
// SRAM boundary, tag-clearing across bitmap-word boundaries, and the
// RevocationMap's range hardening.
#include <gtest/gtest.h>

#include <vector>

#include "src/hw/machine.h"
#include "src/mem/memory.h"

namespace cheriot {
namespace {

// --- Half-word MMIO dispatch (regression) ---------------------------------
// In the seed implementation, LoadHalf/StoreHalf skipped the MMIO lookup and
// fell straight into the SRAM decode, so any half-word access to a device
// register trapped with kBoundsViolation "unmapped address". These tests
// fail on that implementation and pin the fixed dispatch.

TEST(MmioHalfWordTest, StoreHalfReachesDevice) {
  Machine machine;
  const Capability uart = Capability::RootReadWrite(
      kUartMmioBase, kUartMmioBase + kMmioRegionSize);
  machine.memory().StoreHalf(uart, kUartMmioBase + 0, 'H');
  machine.memory().StoreHalf(uart, kUartMmioBase + 0, 'i');
  EXPECT_EQ(machine.uart().output(), "Hi");
}

TEST(MmioHalfWordTest, LoadHalfReachesDevice) {
  Machine machine;
  const Capability uart = Capability::RootReadWrite(
      kUartMmioBase, kUartMmioBase + kMmioRegionSize);
  // UART status register reads 1 (TX always ready).
  EXPECT_EQ(machine.memory().LoadHalf(uart, kUartMmioBase + 4), 1u);
}

TEST(MmioHalfWordTest, HalfWordCostsMatchByteCosts) {
  Machine machine;
  const Capability uart = Capability::RootReadWrite(
      kUartMmioBase, kUartMmioBase + kMmioRegionSize);
  const Cycles t0 = machine.clock().now();
  machine.memory().StoreHalf(uart, kUartMmioBase + 0, 'x');
  EXPECT_EQ(machine.clock().now() - t0, cost::kStoreHalf);
  const Cycles t1 = machine.clock().now();
  machine.memory().LoadHalf(uart, kUartMmioBase + 4);
  EXPECT_EQ(machine.clock().now() - t1, cost::kLoadHalf);
  EXPECT_EQ(cost::kLoadHalf, cost::kLoadByte);
  EXPECT_EQ(cost::kStoreHalf, cost::kStoreByte);
}

// --- MMIO envelope at the SRAM boundary -----------------------------------

struct MmioLog {
  struct Entry {
    Address offset;
    bool is_store;
    Word value;
  };
  std::vector<Entry> entries;
};

TEST(MmioDispatchTest, RegionAdjacentToSramDispatchesCorrectly) {
  CycleClock clock;
  constexpr Address kSramBase = 0x20000000;
  Memory mem(kSramBase, 0x1000, &clock);
  MmioLog log;
  // Device register bank ending exactly where SRAM begins.
  mem.AddMmioRegion(kSramBase - 0x100, 0x100,
                    [&log](Address offset, bool is_store, Word value) -> Word {
                      log.entries.push_back({offset, is_store, value});
                      return 0x5A5A0000u | offset;
                    });
  const Capability span = Capability::RootReadWrite(kSramBase - 0x100,
                                                    kSramBase + 0x1000);
  // Last device word: dispatched to the handler, not SRAM.
  mem.StoreWord(span, kSramBase - 4, 0xAB);
  ASSERT_EQ(log.entries.size(), 1u);
  EXPECT_EQ(log.entries[0].offset, 0xFCu);
  EXPECT_TRUE(log.entries[0].is_store);
  EXPECT_EQ(log.entries[0].value, 0xABu);
  EXPECT_EQ(mem.LoadWord(span, kSramBase - 4), 0x5A5A00FCu);
  // First SRAM word: plain memory, device handler not consulted.
  mem.StoreWord(span, kSramBase, 0x12345678);
  EXPECT_EQ(mem.LoadWord(span, kSramBase), 0x12345678u);
  EXPECT_EQ(mem.RawLoadWord(kSramBase), 0x12345678u);
  EXPECT_EQ(log.entries.size(), 2u);  // only the device store + load above
}

TEST(MmioDispatchTest, AccessStraddlingDeviceEndTraps) {
  CycleClock clock;
  constexpr Address kSramBase = 0x20000000;
  Memory mem(kSramBase, 0x1000, &clock);
  // A register bank that stops 8 bytes short of SRAM, leaving a hole: a word
  // access whose first bytes are in the device and whose end is past it must
  // trap rather than partially dispatch.
  mem.AddMmioRegion(kSramBase - 0x100, 0xF8,
                    [](Address, bool, Word) -> Word { return 0; });
  const Capability span = Capability::RootReadWrite(kSramBase - 0x100,
                                                    kSramBase + 0x1000);
  try {
    mem.LoadWord(span, kSramBase - 8);  // device ends at kSramBase - 8
    FAIL() << "straddling access did not trap";
  } catch (const TrapException& e) {
    EXPECT_EQ(e.code(), TrapCode::kBoundsViolation);
    EXPECT_EQ(e.fault_address(), kSramBase - 8);
  }
}

// --- Tag clearing across bitmap-word boundaries ---------------------------

TEST(TagBitmapTest, PartialOverwriteAtBitmapWordBoundaryClearsBothTags) {
  Machine machine;
  Memory& mem = machine.memory();
  const Address base = mem.sram_base();
  const Capability root = Capability::RootReadWrite(base, base + mem.sram_size());
  // Granules 63 and 64 sit in different words of the packed tag bitmap.
  const Address slot_lo = base + 63 * kGranuleBytes;
  const Address slot_hi = base + 64 * kGranuleBytes;
  const Address slot_next = base + 65 * kGranuleBytes;
  mem.StoreCap(root, slot_lo, root.WithBounds(base + 0x800, 0x40));
  mem.StoreCap(root, slot_hi, root.WithBounds(base + 0x900, 0x40));
  mem.StoreCap(root, slot_next, root.WithBounds(base + 0xA00, 0x40));
  ASSERT_TRUE(mem.TagAt(slot_lo));
  ASSERT_TRUE(mem.TagAt(slot_hi));
  ASSERT_TRUE(mem.TagAt(slot_next));
  // One write overlapping the tail of granule 63 and the head of granule 64
  // must clear both tags with a head/tail mask in each bitmap word — and
  // leave granule 65's tag alone.
  const uint8_t junk[5] = {1, 2, 3, 4, 5};
  mem.WriteBytes(root, slot_lo + 4, junk, sizeof(junk));
  EXPECT_FALSE(mem.TagAt(slot_lo));
  EXPECT_FALSE(mem.TagAt(slot_hi));
  EXPECT_TRUE(mem.TagAt(slot_next));
}

TEST(TagBitmapTest, BulkClearSpansWholeBitmapWords) {
  Machine machine;
  Memory& mem = machine.memory();
  const Address base = mem.sram_base();
  const Capability root = Capability::RootReadWrite(base, base + mem.sram_size());
  // Tag granules 60..200: covers a word tail, a full interior word and a
  // word head.
  for (size_t g = 60; g <= 200; ++g) {
    mem.StoreCap(root, base + g * kGranuleBytes,
                 root.WithBounds(base + 0x800, 0x40));
  }
  mem.ZeroRange(root, base + 60 * kGranuleBytes, (200 - 60 + 1) * kGranuleBytes);
  for (size_t g = 60; g <= 200; ++g) {
    EXPECT_FALSE(mem.TagAt(base + g * kGranuleBytes)) << "granule " << g;
  }
}

// --- RevocationMap hardening ----------------------------------------------

TEST(RevocationMapTest, LastGranuleBoundary) {
  RevocationMap map(0x20000000, 0x1000);  // granules 0..511
  map.SetRange(0x20000FF8, kGranuleBytes, true);  // the very last granule
  EXPECT_TRUE(map.Test(0x20000FF8));
  EXPECT_TRUE(map.Test(0x20000FFF));
  EXPECT_FALSE(map.Test(0x20000FF0));  // neighbour untouched
  EXPECT_FALSE(map.Test(0x20001000));  // past the top: not covered
}

TEST(RevocationMapTest, LengthPastTopClampsInsteadOfWrapping) {
  // Map covering the top of the 32-bit address space: addr + len overflows
  // Address arithmetic. The unhardened loop condition (a < addr + len)
  // wrapped to a small value and exited immediately, silently marking
  // nothing — freed granules stayed unrevoked. The end is now computed once
  // in 64 bits and clamped to the top of the map.
  RevocationMap map(0xFFFF0000, 0x10000);
  map.SetRange(0xFFFFFFF8, 0x100, true);  // end wraps in 32 bits
  EXPECT_TRUE(map.Test(0xFFFFFFF8));
  EXPECT_TRUE(map.Test(0xFFFFFFFF));
  EXPECT_FALSE(map.Test(0xFFFF0000));  // no wrap-around to the map base
  EXPECT_FALSE(map.Test(0xFFFFFFF0));
}

TEST(RevocationMapTest, HugeLengthClampsToTop) {
  RevocationMap map(0x20000000, 0x1000);
  map.SetRange(0x20000800, 0xFFFFFFFFu, true);  // end overflows 32 bits
  // Everything from 0x800 to the top is marked; nothing below it.
  EXPECT_TRUE(map.Test(0x20000800));
  EXPECT_TRUE(map.Test(0x20000FF8));
  EXPECT_FALSE(map.Test(0x200007F8));
  EXPECT_FALSE(map.Test(0x20000000));
}

}  // namespace
}  // namespace cheriot

// Tests for the source-compatibility layer (P5): FreeRTOS-style queues,
// semaphores, mutexes and task utilities; POSIX-style malloc/free over the
// default allocation capability; console + stack-watermark tooling.
#include <gtest/gtest.h>

#include "src/compat/freertos_shim.h"
#include "src/compat/posix_shim.h"
#include "src/debug/debug.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<Word> values;
  int errors = 0;
};

class CompatTest : public ::testing::Test {
 protected:
  Machine machine_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(CompatTest, MallocFreeDefaultCapability) {
  auto shared = shared_;
  ImageBuilder b("posix");
  b.Compartment("app").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability p = compat::Malloc(ctx, 100);
        if (!p.tag()) {
          shared->errors = 1;
          return StatusCap(Status::kNoMemory);
        }
        compat::Memset(ctx, p, 0x5A, 100);
        const Capability q = compat::Calloc(ctx, 25, 4);
        // calloc memory is zeroed.
        for (int i = 0; i < 25; ++i) {
          if (ctx.LoadWord(q, 4 * i) != 0) {
            shared->errors = 2;
          }
        }
        if (compat::Memcmp(ctx, p, q, 100) <= 0) {
          shared->errors = 3;  // 0x5A > 0x00
        }
        compat::Memcpy(ctx, q, p, 100);
        if (compat::Memcmp(ctx, p, q, 100) != 0) {
          shared->errors = 4;
        }
        if (compat::Free(ctx, p) != Status::kOk ||
            compat::Free(ctx, q) != Status::kOk) {
          shared->errors = 5;
        }
        // Double free is rejected, not corrupting.
        if (compat::Free(ctx, p) == Status::kOk) {
          shared->errors = 6;
        }
        return StatusCap(Status::kOk);
      });
  compat::UseMalloc(b, "app", 8 * 1024);
  b.Thread("t", 1, 4096, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(2'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
}

TEST_F(CompatTest, StrlenThroughCapability) {
  auto shared = shared_;
  ImageBuilder b("strlen");
  b.Compartment("app").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability s = compat::Malloc(ctx, 32);
        ctx.WriteBytes(s, 0, "hello", 6);
        shared->values.push_back(compat::Strlen(ctx, s));
        return StatusCap(Status::kOk);
      });
  compat::UseMalloc(b, "app", 4096);
  b.Thread("t", 1, 4096, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  EXPECT_EQ(shared->values, (std::vector<Word>{5}));
}

TEST_F(CompatTest, FreeRtosQueueBetweenTasks) {
  auto shared = shared_;
  ImageBuilder b("freertos");
  b.Compartment("tasks")
      .Globals(32)
      .Export("producer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const ImportBinding* def =
                    ctx.FindImport(compat::kDefaultAllocCapName);
                auto q = compat::xQueueCreate(ctx, def->cap, 4, 4);
                if (!q.valid()) {
                  shared->errors = 1;
                  return StatusCap(Status::kNoMemory);
                }
                ctx.StoreCap(ctx.globals(), 8, q.buffer);
                ctx.StoreWord(ctx.globals(), 0, 1);
                ctx.FutexWake(ctx.globals(), 1);
                for (Word i = 100; i < 104; ++i) {
                  auto item = ctx.AllocStack(8);
                  ctx.StoreWord(item.cap(), 0, i);
                  if (compat::xQueueSend(ctx, q, item.cap(),
                                         compat::portMAX_DELAY) !=
                      compat::pdTRUE) {
                    shared->errors = 2;
                  }
                }
                return StatusCap(Status::kOk);
              })
      .Export("consumer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                while (ctx.LoadWord(ctx.globals(), 0) == 0) {
                  ctx.FutexWait(ctx.globals(), 0, ~0u);
                }
                compat::QueueHandle_t q{ctx.LoadCap(ctx.globals(), 8)};
                for (int i = 0; i < 4; ++i) {
                  auto out = ctx.AllocStack(8);
                  if (compat::xQueueReceive(ctx, q, out.cap(), 1000) ==
                      compat::pdTRUE) {
                    shared->values.push_back(ctx.LoadWord(out.cap(), 0));
                  }
                }
                return StatusCap(Status::kOk);
              });
  compat::UseFreeRtosCompat(b, "tasks");
  compat::UseMalloc(b, "tasks", 8 * 1024);
  b.Thread("tc", 3, 4096, 8, "tasks.consumer");
  b.Thread("tp", 2, 4096, 8, "tasks.producer");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
  EXPECT_EQ(shared->values, (std::vector<Word>{100, 101, 102, 103}));
}

TEST_F(CompatTest, FreeRtosSemaphoreAndDelay) {
  auto shared = shared_;
  ImageBuilder b("sem");
  b.Compartment("tasks").Globals(32).Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const ImportBinding* def =
            ctx.FindImport(compat::kDefaultAllocCapName);
        auto sem = compat::xSemaphoreCreateCounting(ctx, def->cap, 10, 2);
        // Two takes succeed, third times out.
        shared->values.push_back(
            compat::xSemaphoreTake(ctx, sem, 10));
        shared->values.push_back(
            compat::xSemaphoreTake(ctx, sem, 10));
        shared->values.push_back(
            compat::xSemaphoreTake(ctx, sem, 2));
        compat::xSemaphoreGive(ctx, sem);
        shared->values.push_back(
            compat::xSemaphoreTake(ctx, sem, 10));
        // Tick counting.
        const auto t0 = compat::xTaskGetTickCount(ctx);
        compat::vTaskDelay(ctx, 5);
        shared->values.push_back(compat::xTaskGetTickCount(ctx) - t0);
        return StatusCap(Status::kOk);
      });
  compat::UseFreeRtosCompat(b, "tasks");
  compat::UseMalloc(b, "tasks", 4096);
  b.Thread("t", 1, 4096, 8, "tasks.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(4'000'000'000ull);
  ASSERT_EQ(shared->values.size(), 5u);
  EXPECT_EQ(shared->values[0], 1u);
  EXPECT_EQ(shared->values[1], 1u);
  EXPECT_EQ(shared->values[2], 0u);  // timed out
  EXPECT_EQ(shared->values[3], 1u);
  EXPECT_GE(shared->values[4], 5u);  // at least 5 ticks elapsed
}

TEST_F(CompatTest, CriticalSectionReplacesInterruptToggles) {
  auto shared = shared_;
  ImageBuilder b("crit");
  b.Compartment("tasks").Globals(32).Export(
      "racer", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        // The mutex word lives in a compartment global.
        compat::SemaphoreHandle_t mutex{ctx.globals().AddOffset(0)};
        const Capability counter = ctx.globals().AddOffset(8);
        for (int i = 0; i < 8; ++i) {
          compat::CriticalSection guard(ctx, mutex);
          const Word v = ctx.LoadWord(counter, 0);
          compat::taskYIELD(ctx);
          ctx.StoreWord(counter, 0, v + 1);
        }
        shared->values.push_back(ctx.LoadWord(counter, 0));
        return StatusCap(Status::kOk);
      });
  compat::UseFreeRtosCompat(b, "tasks");
  b.Thread("t1", 2, 4096, 8, "tasks.racer");
  b.Thread("t2", 2, 4096, 8, "tasks.racer");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  ASSERT_EQ(shared->values.size(), 2u);
  EXPECT_EQ(std::max(shared->values[0], shared->values[1]), 16u);
}

TEST_F(CompatTest, ConsoleWritesReachUart) {
  ImageBuilder b("console");
  b.Compartment("app").Export(
      "main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        debug::ConsoleWrite(ctx, "hello, uart");
        return StatusCap(Status::kOk);
      });
  debug::UseConsole(b, "app");
  b.Thread("t", 1, 4096, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(1'000'000'000ull);
  EXPECT_EQ(machine_.uart().output(), "hello, uart");
}

TEST_F(CompatTest, StackWatermarkTracksPeakUse) {
  auto shared = shared_;
  ImageBuilder b("watermark");
  b.Compartment("app").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Address before = debug::StackPeakBytes(ctx);
        {
          auto big = ctx.AllocStack(1024);
          ctx.StoreWord(big.cap(), 0, 1);
          shared->values.push_back(debug::StackPeakBytes(ctx));
        }
        shared->values.push_back(before);
        shared->values.push_back(debug::StackHeadroom(ctx) > 0 ? 1 : 0);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(1'000'000'000ull);
  ASSERT_EQ(shared->values.size(), 3u);
  EXPECT_GE(shared->values[0], shared->values[1] + 1024);
  EXPECT_EQ(shared->values[2], 1u);
}

}  // namespace
}  // namespace cheriot

// Tests for the static analyzer (DESIGN.md §7): authority-graph
// construction, transitive reachability, the CL001..CL008 lint passes, and
// the seeded confused-deputy acceptance check that flat per-row policy
// queries cannot express.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/authority_graph.h"
#include "src/analysis/lint.h"
#include "src/audit/policy.h"
#include "src/audit/report.h"
#include "src/json/json.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

using analysis::AuthorityGraph;
using analysis::Finding;
using analysis::LintOptions;

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

json::Value ReportOf(const FirmwareImage& image) {
  Machine machine;
  auto boot = Loader::Load(machine, image);
  return audit::BuildReport(*boot);
}

// The Fig. 4 HTTP-client image: NetAPI holds the NIC, http_client calls
// NetAPI, compressor is standalone (clean) or calls NetAPI (backdoored).
FirmwareImage HttpImage(bool backdoored) {
  ImageBuilder b("http-firmware");
  b.Compartment("NetAPI")
      .CodeSize(4096)
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("http_client")
      .CodeSize(8192)
      .AllocCap("http_quota", 16 * 1024)
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("fetch", Nop(), 1024);
  auto compressor = b.Compartment("compressor");
  compressor.CodeSize(20 * 1024).Export("decompress", Nop(), 512);
  if (backdoored) {
    compressor.ImportCompartment("NetAPI.network_socket_connect_tcp");
  }
  b.Thread("main", 1, 2048, 4, "http_client.fetch");
  return b.Build();
}

std::vector<Finding> FindingsForRule(const std::vector<Finding>& all,
                                     const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : all) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

// --- Graph construction -----------------------------------------------------

TEST(AuthorityGraph, NodesAndEdgesFromReport) {
  const auto graph = AuthorityGraph::FromReport(ReportOf(HttpImage(false)));
  const auto& nodes = graph.Nodes();
  ASSERT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  for (const char* expected :
       {"compartment:NetAPI", "compartment:http_client",
        "compartment:compressor", "mmio:ethernet", "alloc_cap:http_quota"}) {
    EXPECT_TRUE(std::find(nodes.begin(), nodes.end(), expected) != nodes.end())
        << expected;
  }

  bool call_edge = false, alloc_edge = false;
  for (const auto& e : graph.EdgesFrom("compartment:http_client")) {
    if (e.kind == "call" && e.to == "compartment:NetAPI") {
      EXPECT_EQ(e.detail, "network_socket_connect_tcp");
      call_edge = true;
    }
    if (e.kind == "alloc_cap" && e.to == "alloc_cap:http_quota") {
      alloc_edge = true;
    }
  }
  EXPECT_TRUE(call_edge);
  EXPECT_TRUE(alloc_edge);

  bool mmio_edge = false;
  for (const auto& e : graph.EdgesFrom("compartment:NetAPI")) {
    if (e.kind == "mmio" && e.to == "mmio:ethernet") {
      EXPECT_TRUE(e.writeable);
      mmio_edge = true;
    }
  }
  EXPECT_TRUE(mmio_edge);

  // Resources are sinks.
  EXPECT_TRUE(graph.EdgesFrom("mmio:ethernet").empty());
}

TEST(AuthorityGraph, TransitiveReachabilityAndPaths) {
  const auto graph = AuthorityGraph::FromReport(ReportOf(HttpImage(false)));
  // Authority flows along the call edge: http_client can drive the NIC
  // through NetAPI even though it never imports the MMIO region itself.
  EXPECT_TRUE(graph.Reaches("compartment:http_client", "mmio:ethernet"));
  EXPECT_FALSE(graph.Reaches("compartment:compressor", "mmio:ethernet"));
  EXPECT_FALSE(graph.Reaches("mmio:ethernet", "compartment:NetAPI"));

  const auto path =
      graph.ShortestPath("compartment:http_client", "mmio:ethernet");
  const std::vector<std::string> want = {"compartment:http_client",
                                         "compartment:NetAPI",
                                         "mmio:ethernet"};
  EXPECT_EQ(path, want);
  EXPECT_EQ(AuthorityGraph::RenderPath(path),
            "http_client -> NetAPI -> mmio:ethernet");

  const auto paths = graph.PathsTo("mmio:ethernet");
  const std::vector<std::string> want_paths = {
      "NetAPI -> mmio:ethernet",
      "http_client -> NetAPI -> mmio:ethernet"};
  EXPECT_EQ(paths, want_paths);
}

TEST(AuthorityGraph, CanonicalAndDisplayNames) {
  EXPECT_EQ(AuthorityGraph::CanonicalId("js_app"), "compartment:js_app");
  EXPECT_EQ(AuthorityGraph::CanonicalId("mmio:ethernet"), "mmio:ethernet");
  EXPECT_EQ(AuthorityGraph::DisplayName("compartment:js_app"), "js_app");
  EXPECT_EQ(AuthorityGraph::DisplayName("mmio:ethernet"), "mmio:ethernet");
}

// --- The seeded confused deputy (acceptance check) --------------------------
//
// js_app never imports the NIC; it reaches mmio:ethernet only through
// NetAPI's exported API. Flat queries see nothing wrong: js_app is not an
// importer of the MMIO region, and `calls(js_app, NetAPI)` alone cannot know
// NetAPI holds the NIC. The authority graph composes the two hops.

FirmwareImage ConfusedDeputyImage() {
  ImageBuilder b("deputy");
  b.Compartment("NetAPI")
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("js_app")
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("main", Nop());
  b.Thread("main", 1, 4096, 8, "js_app.main");
  return b.Build();
}

TEST(Lint, SeededConfusedDeputyDetectedWithFullPath) {
  const json::Value report = ReportOf(ConfusedDeputyImage());

  // The flat query is blind: only NetAPI imports the region.
  audit::PolicyEngine engine(report);
  const auto importers = engine.ImportersOfMmio("ethernet");
  ASSERT_EQ(importers.size(), 1u);
  EXPECT_EQ(importers[0], "NetAPI");

  LintOptions options;
  options.restricted_mmio = {"ethernet"};
  const auto findings = analysis::RunLints(report, options);
  const auto cl003 = FindingsForRule(findings, "CL003");
  ASSERT_EQ(cl003.size(), 1u);
  EXPECT_EQ(cl003[0].severity, "error");
  EXPECT_EQ(cl003[0].subject, "js_app");
  const std::vector<std::string> want_path = {
      "compartment:js_app", "compartment:NetAPI", "mmio:ethernet"};
  EXPECT_EQ(cl003[0].path, want_path);
  EXPECT_NE(cl003[0].message.find("js_app -> NetAPI -> mmio:ethernet"),
            std::string::npos);
  // Error findings make the CLI exit nonzero.
  EXPECT_TRUE(analysis::HasErrors(findings));

  // Without the restriction the same path is an informational CL001.
  const auto relaxed = analysis::RunLints(report, {});
  EXPECT_TRUE(FindingsForRule(relaxed, "CL003").empty());
  const auto cl001 = FindingsForRule(relaxed, "CL001");
  ASSERT_EQ(cl001.size(), 1u);
  EXPECT_EQ(cl001[0].severity, "info");
  EXPECT_FALSE(analysis::HasErrors(relaxed));
}

TEST(Lint, SeededConfusedDeputyExpressibleInPolicyLanguage) {
  // The same invariant as a declarative policy line, via the reachable()
  // builtin — impossible with the flat functions alone.
  audit::PolicyEngine engine(ReportOf(ConfusedDeputyImage()));
  EXPECT_TRUE(
      engine.CheckExpression("reachable(\"js_app\", \"mmio:ethernet\")"));
  EXPECT_FALSE(
      engine.CheckExpression("!reachable(\"js_app\", \"mmio:ethernet\")"));
  EXPECT_TRUE(engine.CheckExpression(
      "contains(paths_to(\"mmio:ethernet\"), "
      "\"js_app -> NetAPI -> mmio:ethernet\")"));
}

// --- Adversarial images ------------------------------------------------------

TEST(Lint, CallCycleTerminatesAndIsFlagged) {
  ImageBuilder b("cycle");
  b.Compartment("a")
      .Export("main", Nop())
      .Export("ping", Nop())
      .ImportCompartment("b.pong");
  b.Compartment("b").Export("pong", Nop()).ImportCompartment("a.ping");
  b.Thread("t", 1, 4096, 8, "a.main");
  const json::Value report = ReportOf(b.Build());

  // Reachability over the cycle terminates and closes the loop.
  const auto graph = AuthorityGraph::FromReport(report);
  EXPECT_TRUE(graph.Reaches("compartment:a", "compartment:b"));
  EXPECT_TRUE(graph.Reaches("compartment:b", "compartment:a"));
  EXPECT_TRUE(graph.Reaches("compartment:a", "compartment:a"));

  const auto findings = analysis::RunLints(report, {});
  const auto cl007 = FindingsForRule(findings, "CL007");
  ASSERT_EQ(cl007.size(), 1u);
  EXPECT_EQ(cl007[0].subject, "t");
  EXPECT_NE(cl007[0].message.find("cycle"), std::string::npos);
}

TEST(Lint, DuplicateMmioImportIsOneRedundantImportFinding) {
  ImageBuilder b("dup-mmio");
  b.Compartment("driver")
      .Export("main", Nop())
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true);
  b.Thread("t", 1, 1024, 4, "driver.main");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  const auto cl006 = FindingsForRule(findings, "CL006");
  ASSERT_EQ(cl006.size(), 1u);
  EXPECT_EQ(cl006[0].severity, "warning");
  EXPECT_EQ(cl006[0].subject, "driver");
  EXPECT_EQ(cl006[0].message,
            "driver declares the same import 2 times: mmio led");
  EXPECT_EQ(analysis::FixSuggestion(cl006[0]),
            "remove duplicate: ImageBuilder.Compartment(\"driver\")"
            ".ImportMmio(\"led\", ...)");
}

TEST(Lint, DeadExportFlaggedButThreadEntryIsNot) {
  ImageBuilder b("dead");
  b.Compartment("x").Export("main", Nop()).Export("orphan", Nop());
  b.Thread("t", 1, 1024, 4, "x.main");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  const auto cl005 = FindingsForRule(findings, "CL005");
  ASSERT_EQ(cl005.size(), 1u);
  EXPECT_EQ(cl005[0].subject, "x.orphan");
  EXPECT_EQ(analysis::FixSuggestion(cl005[0]),
            "remove dead export: ImageBuilder.Compartment(\"x\")"
            ".Export(\"orphan\", ...)");
}

TEST(Lint, DuplicateExportIsAnError) {
  // ImageBuilder itself refuses duplicate exports, but the linter audits
  // report documents from any toolchain — including a compromised one.
  const json::Value report = json::Parse(R"({
    "firmware": "dup-export",
    "heap": {"start": 0, "size": 4096},
    "compartments": {
      "x": {"imports": [],
            "exports": [
              {"function": "main", "minimum_stack": 256},
              {"function": "go", "minimum_stack": 256},
              {"function": "go", "minimum_stack": 512}]}
    },
    "threads": [{"name": "t", "entry_compartment": "x", "entry": "x.main",
                 "stack_size": 1024, "trusted_stack_frames": 4}]
  })");
  const auto findings = analysis::RunLints(report, {});
  const auto cl008 = FindingsForRule(findings, "CL008");
  ASSERT_EQ(cl008.size(), 1u);
  EXPECT_EQ(cl008[0].severity, "error");
  EXPECT_EQ(cl008[0].subject, "x.go");
  EXPECT_TRUE(analysis::HasErrors(findings));
}

TEST(Lint, StackDepthBoundsCheckedAgainstCallGraph) {
  ImageBuilder b("deep");
  b.Compartment("a")
      .Export("main", Nop(), 256)
      .ImportCompartment("b.f");
  b.Compartment("b").Export("f", Nop(), 512).ImportCompartment("c.g");
  b.Compartment("c").Export("g", Nop(), 512);
  // 2 trusted-stack frames for a 3-deep chain; 1024 B stack for a chain
  // demanding 256 + 512 + 512 = 1280 B.
  b.Thread("t", 1, 1024, 2, "a.main");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  const auto cl007 = FindingsForRule(findings, "CL007");
  ASSERT_EQ(cl007.size(), 2u);
  EXPECT_NE(cl007[0].message.find("3 compartments deep"), std::string::npos);
  EXPECT_NE(cl007[1].message.find("1280 B of minimum stack"),
            std::string::npos);
}

// --- Rules driven by hand-crafted reports ------------------------------------
// The linter accepts any report JSON (e.g. loaded from disk), including
// minimal or truncated ones.

TEST(Lint, QuotaOvercommitWarningAndInfeasibleQuotaError) {
  const json::Value report = json::Parse(R"({
    "firmware": "synthetic",
    "heap": {"start": 0, "size": 1000},
    "compartments": {
      "a": {"imports": [
        {"kind": "allocation_capability", "name": "qa", "quota": 600}],
        "exports": []},
      "b": {"imports": [
        {"kind": "allocation_capability", "name": "qb", "quota": 600}],
        "exports": []}
    },
    "threads": []
  })");
  const auto findings = analysis::RunLints(report, {});
  const auto cl004 = FindingsForRule(findings, "CL004");
  ASSERT_EQ(cl004.size(), 1u);  // overcommit warning; no single-quota error
  EXPECT_EQ(cl004[0].severity, "warning");
  EXPECT_NE(cl004[0].message.find("sum to 1200 B against a 1000 B heap"),
            std::string::npos);

  const json::Value infeasible = json::Parse(R"({
    "firmware": "synthetic",
    "heap": {"start": 0, "size": 1000},
    "compartments": {
      "a": {"imports": [
        {"kind": "allocation_capability", "name": "qa", "quota": 2000}],
        "exports": []}
    },
    "threads": []
  })");
  const auto bad = FindingsForRule(analysis::RunLints(infeasible, {}), "CL004");
  ASSERT_EQ(bad.size(), 2u);  // the error plus the implied overcommit warning
  EXPECT_EQ(bad[0].severity, "error");
  EXPECT_EQ(bad[0].subject, "a.qa");
  EXPECT_TRUE(analysis::HasErrors(bad));
}

TEST(Lint, SealingKeyHeldByTwoCompartmentsIsAnError) {
  ImageBuilder b("keys");
  b.Compartment("owner")
      .Export("main", Nop())
      .OwnSealingType("conn_key");
  b.Compartment("thief").Export("x", Nop()).OwnSealingType("conn_key");
  b.Compartment("user").ImportCompartment("thief.x").Export("y", Nop());
  b.Thread("t", 1, 1024, 4, "owner.main");
  b.Thread("u", 1, 1024, 4, "user.y");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  const auto cl002 = FindingsForRule(findings, "CL002");
  ASSERT_EQ(cl002.size(), 1u);
  EXPECT_EQ(cl002[0].severity, "error");
  EXPECT_EQ(cl002[0].subject, "sealing_key:conn_key");
  EXPECT_NE(cl002[0].message.find("owner"), std::string::npos);
  EXPECT_NE(cl002[0].message.find("thief"), std::string::npos);
}

TEST(Lint, EmptyReportProducesNoFindings) {
  EXPECT_TRUE(analysis::RunLints(json::Parse("{}"), {}).empty());
}

// --- CL009: interrupt-posture audit ------------------------------------------
//
// driver exports an interrupts-disabled entry; app imports it directly
// (warning); outer only reaches driver through app (info, with path).

FirmwareImage PostureImage() {
  ImageBuilder b("posture");
  b.Compartment("driver").Export("spin", Nop(), 256,
                                 InterruptPosture::kDisabled);
  b.Compartment("app")
      .ImportCompartment("driver.spin")
      .Export("main", Nop());
  b.Compartment("outer").ImportCompartment("app.main").Export("main", Nop());
  b.Thread("main", 1, 4096, 8, "app.main");
  return b.Build();
}

TEST(Lint, InterruptPostureDirectCallerIsAWarningTransitiveIsInfo) {
  const auto findings = analysis::RunLints(ReportOf(PostureImage()), {});
  const auto cl009 = FindingsForRule(findings, "CL009");
  ASSERT_EQ(cl009.size(), 2u);  // sorted: warning before info
  EXPECT_EQ(cl009[0].severity, "warning");
  EXPECT_EQ(cl009[0].subject, "app");
  EXPECT_NE(cl009[0].message.find("driver.spin"), std::string::npos);
  EXPECT_NE(cl009[0].message.find("interrupts disabled"), std::string::npos);
  EXPECT_EQ(cl009[1].severity, "info");
  EXPECT_EQ(cl009[1].subject, "outer");
  const std::vector<std::string> want_path = {
      "compartment:outer", "compartment:app", "compartment:driver"};
  EXPECT_EQ(cl009[1].path, want_path);
  EXPECT_FALSE(analysis::HasErrors(cl009));
}

TEST(Lint, InterruptPostureAllowlistSilencesTrustedCallers) {
  LintOptions options;
  options.interrupt_posture_allowlist = {"app", "outer"};
  const auto findings = analysis::RunLints(ReportOf(PostureImage()), options);
  EXPECT_TRUE(FindingsForRule(findings, "CL009").empty());
}

TEST(Lint, InterruptPostureExemptOwnersProduceNoFindings) {
  // "sched" is in the default posture_exempt_owners: its interrupts-disabled
  // service surface is called by every compartment by design.
  ImageBuilder b("posture-exempt");
  b.Compartment("sched").Export("yield", Nop(), 256,
                                InterruptPosture::kDisabled);
  b.Compartment("app").ImportCompartment("sched.yield").Export("main", Nop());
  b.Thread("main", 1, 4096, 8, "app.main");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  EXPECT_TRUE(FindingsForRule(findings, "CL009").empty());
}

TEST(Lint, InterruptPostureDisabledLibraryExportIsFlagged) {
  ImageBuilder b("posture-lib");
  b.Library("spinlib").Export("lock", Nop(), 128, InterruptPosture::kDisabled);
  b.Compartment("app").ImportLibrary("spinlib.lock").Export("main", Nop());
  b.Thread("main", 1, 4096, 8, "app.main");
  const auto findings = analysis::RunLints(ReportOf(b.Build()), {});
  const auto cl009 = FindingsForRule(findings, "CL009");
  ASSERT_EQ(cl009.size(), 1u);
  EXPECT_EQ(cl009[0].severity, "warning");
  EXPECT_EQ(cl009[0].subject, "app");
  EXPECT_NE(cl009[0].message.find("spinlib.lock"), std::string::npos);
}

// --- Output formats ----------------------------------------------------------

TEST(Lint, FindingsJsonIsByteStableAndVersioned) {
  LintOptions options;
  options.restricted_mmio = {"ethernet"};
  const json::Value r1 = ReportOf(HttpImage(true));
  const json::Value r2 = ReportOf(HttpImage(true));
  const std::string d1 =
      analysis::FindingsToJson(r1, analysis::RunLints(r1, options)).Dump(2);
  const std::string d2 =
      analysis::FindingsToJson(r2, analysis::RunLints(r2, options)).Dump(2);
  EXPECT_EQ(d1, d2);

  const json::Value doc = json::Parse(d1);
  EXPECT_EQ(doc["schema_version"].AsInt(), 1);
  EXPECT_EQ(doc["image"].AsString(), "http-firmware");
  // Backdoored + restricted NIC: compressor and http_client both reach the
  // region transitively -> two CL003 errors, sorted first.
  EXPECT_EQ(doc["counts"]["error"].AsInt(), 2);
  EXPECT_EQ(doc["findings"][0]["rule"].AsString(), "CL003");
  EXPECT_EQ(doc["findings"][0]["subject"].AsString(), "compressor");
  EXPECT_EQ(doc["findings"][0]["path"][0].AsString(),
            "compartment:compressor");
}

TEST(Lint, TextOutputNamesRuleAndPath) {
  LintOptions options;
  options.restricted_mmio = {"ethernet"};
  const json::Value report = ReportOf(ConfusedDeputyImage());
  const std::string text =
      analysis::FindingsToText(report, analysis::RunLints(report, options));
  EXPECT_NE(text.find("[error] CL003 confused-deputy-path"),
            std::string::npos);
  EXPECT_NE(text.find("path: js_app -> NetAPI -> mmio:ethernet"),
            std::string::npos);
}

TEST(Lint, FindingsAreSortedBySeverityThenRule) {
  ImageBuilder b("sorted");
  b.Compartment("NetAPI")
      .Export("connect", Nop())
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("x")
      .Export("main", Nop())
      .Export("orphan", Nop())  // CL005 warning
      .ImportCompartment("NetAPI.connect")  // CL003 error (restricted NIC)
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true);  // CL006
  b.Thread("t", 1, 1024, 4, "x.main");
  LintOptions options;
  options.restricted_mmio = {"ethernet"};
  const auto findings = analysis::RunLints(ReportOf(b.Build()), options);
  ASSERT_GE(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "CL003");  // errors first
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].severity == "error" ? 0
              : findings[i - 1].severity == "warning" ? 1 : 2,
              findings[i].severity == "error" ? 0
              : findings[i].severity == "warning" ? 1 : 2);
  }
}

}  // namespace
}  // namespace cheriot

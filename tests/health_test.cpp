// cheriot-health acceptance tests (DESIGN.md §9).
//
// Four legs:
//  1. Forensics capture: every seeded fault files a crash record with the
//     right cause, disposition, decoded register file, compartment call
//     stack and allocation-site provenance.
//  2. Detector precision: each seeded-fault image trips exactly its intended
//     anomaly detector — and none fire on any shipped registry image.
//  3. Invariance: enabling forensics moves no guest cycle — fingerprints
//     match the plain run on every shipped image.
//  4. Determinism: the merged fleet health report is byte-identical for any
//     host worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/health/forensics.h"
#include "src/health/monitor.h"
#include "src/rtos.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/sync/sync.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

using health::AssessBoard;
using health::BoardHealth;
using health::CrashRecord;
using health::Detector;
using health::Disposition;
using health::ForensicsRecorder;
using health::HeapProvenance;
using sim::Board;
using sim::Fleet;
using tools::LintTargets;

constexpr Cycles kRunCycles = 2'000'000;

struct HealthRun {
  std::unique_ptr<Board> board;
  ForensicsRecorder* recorder = nullptr;  // owned by the board
};

HealthRun RunWithForensics(FirmwareImage image, Cycles cycles = kRunCycles) {
  HealthRun run;
  run.board = std::make_unique<Board>(std::move(image), sim::BoardOptions{});
  run.recorder = run.board->EnableForensics();
  run.board->Boot();
  run.board->StepTo(cycles);
  return run;
}

std::vector<Detector> Fired(const BoardHealth& h) {
  std::vector<Detector> out;
  for (const auto& a : h.anomalies) {
    out.push_back(a.detector);
  }
  return out;
}

// --- Seeded-fault images --------------------------------------------------
// Each builds an adversarial firmware image engineered (thresholds in
// health::HealthOptions) to trip exactly one detector.

// Use-after-free: allocate, free, then load through the dangling capability
// with no error handler installed. One kTagViolation, freed provenance.
FirmwareImage SeededUaf() {
  ImageBuilder b("seeded-uaf");
  b.Compartment("app")
      .Globals(32)
      .AllocCap("q", 8192)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        const Capability p = ctx.HeapAllocate(q, 64);
        ctx.StoreWord(p, 0, 42);
        ctx.HeapFree(q, p);
        ctx.LoadWord(p, 0);  // traps: revoked capability, no handler
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// Trap storm: a tight loop of cross-compartment calls into a service that
// faults every time (and never reboots, never touches the heap).
FirmwareImage SeededTrapStorm() {
  ImageBuilder b("seeded-trap-storm");
  b.Compartment("svc").Export(
      "boom", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.LoadWord(Capability::FromWord(0xBAD), 0);
        return StatusCap(Status::kOk);
      });
  b.Compartment("app")
      .ImportCompartment("svc.boom")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        for (int i = 0; i < 24; ++i) {
          ctx.Call("svc.boom", {});
        }
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// Reboot loop: the faulting service's handler micro-reboots it each time.
// Three traps stay under the storm detector's minimum count; three reboots
// land inside the loop window.
FirmwareImage SeededRebootLoop() {
  ImageBuilder b("seeded-reboot-loop");
  b.Compartment("svc")
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo&) {
        ctx.MicroRebootSelf();
        return ErrorRecovery::kForceUnwind;
      })
      .Export("boom",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.LoadWord(Capability::FromWord(0xBAD), 0);
                return StatusCap(Status::kOk);
              });
  b.Compartment("app")
      .ImportCompartment("svc.boom")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        for (int i = 0; i < 3; ++i) {
          ctx.Call("svc.boom", {});
        }
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// Quota exhaustion: a 256-byte quota bounced off four times. No traps.
FirmwareImage SeededQuota() {
  ImageBuilder b("seeded-quota");
  b.Compartment("app")
      .Globals(32)
      .AllocCap("q", 256)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        for (int i = 0; i < 4; ++i) {
          ctx.HeapAllocate(q, 4096);  // always denied: quota is 256 bytes
        }
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// Stuck board: the only thread blocks forever on a futex nobody signals.
FirmwareImage SeededDeadlock() {
  ImageBuilder b("seeded-deadlock");
  b.Compartment("app")
      .Globals(32)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.FutexWait(ctx.globals(), 0, ~0u);  // never woken
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// Revoker backlog: free five 16 KiB objects back-to-back so > 32 KiB sits in
// quarantine, then exit without another allocator call to drain it.
FirmwareImage SeededRevokerBacklog() {
  ImageBuilder b("seeded-revoker-backlog");
  b.Compartment("app")
      .Globals(32)
      .AllocCap("q", 256 * 1024)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        Capability blocks[5];
        for (auto& block : blocks) {
          block = ctx.HeapAllocate(q, 16 * 1024);
        }
        for (auto& block : blocks) {
          ctx.HeapFree(q, block);
        }
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

// --- 1. Forensics capture -------------------------------------------------

TEST(HealthTest, UafCrashRecordCarriesFreedProvenanceAndDecodedRegs) {
  HealthRun run = RunWithForensics(SeededUaf());
  ASSERT_EQ(run.recorder->recorded(), 1u);
  const std::vector<CrashRecord> records = run.recorder->Records();
  const CrashRecord& r = records[0];
  const int app_id = run.board->system().boot().FindCompartment("app")->id;

  EXPECT_EQ(r.cause, TrapCode::kTagViolation);
  EXPECT_EQ(r.compartment, app_id);
  EXPECT_EQ(r.disposition, Disposition::kUnwindNoHandler);
  EXPECT_EQ(r.call_stack, std::vector<int>{app_id});
  EXPECT_EQ(r.trusted_depth, 1u);

  // The full register file, decoded in declaration order.
  ASSERT_EQ(r.regs.size(), 12u);
  EXPECT_EQ(r.regs[0].name, "pcc");
  EXPECT_EQ(r.regs[2].name, "csp");
  EXPECT_TRUE(r.regs[2].tag);  // the stack capability is live at the fault

  // Provenance: the faulting address resolves to app's freed allocation.
  ASSERT_TRUE(r.provenance.known);
  EXPECT_EQ(r.provenance.compartment, app_id);
  EXPECT_EQ(r.provenance.size, 64u);
  EXPECT_EQ(r.provenance.state, HeapProvenance::State::kQuarantined);
  EXPECT_EQ(r.provenance.freed_by, app_id);
  EXPECT_GE(r.provenance.freed_at, r.provenance.allocated_at);
  EXPECT_LE(r.provenance.freed_at, r.at);
  EXPECT_EQ(run.recorder->use_after_free_crashes(), 1u);
}

TEST(HealthTest, RebootLoopRecordsHandlerUnwindDispositions) {
  HealthRun run = RunWithForensics(SeededRebootLoop());
  const int svc_id = run.board->system().boot().FindCompartment("svc")->id;
  ASSERT_EQ(run.recorder->recorded(), 3u);
  for (const CrashRecord& r : run.recorder->Records()) {
    EXPECT_EQ(r.compartment, svc_id);
    EXPECT_EQ(r.disposition, Disposition::kHandlerUnwind);
    EXPECT_EQ(r.cause, TrapCode::kTagViolation);
  }
  EXPECT_EQ(run.recorder->total_reboots(), 3u);
  ASSERT_EQ(run.recorder->reboots().count(svc_id), 1u);
  EXPECT_EQ(run.recorder->reboots().at(svc_id).size(), 3u);
}

TEST(HealthTest, AllocatorTracksSiteLifecycleNatively) {
  HealthRun run = RunWithForensics(SeededRevokerBacklog());
  Allocator& alloc = run.board->system().alloc();
  EXPECT_EQ(alloc.allocation_count(), 5u);
  // All five frees landed in quarantine and nothing drained them.
  EXPECT_GT(alloc.QuarantinedBytesNative(), 5u * 16 * 1024);
  for (const auto& [addr, site] : alloc.sites()) {
    EXPECT_EQ(site.state, Allocator::SiteState::kQuarantined);
    EXPECT_EQ(site.size, 16u * 1024);
  }
}

// --- 2. Detector precision ------------------------------------------------

TEST(HealthTest, SeededUafTripsExactlyUseAfterFree) {
  HealthRun run = RunWithForensics(SeededUaf());
  const BoardHealth h = AssessBoard(*run.board);
  EXPECT_FALSE(h.healthy);
  EXPECT_EQ(Fired(h), std::vector<Detector>{Detector::kUseAfterFree});
}

TEST(HealthTest, SeededTrapStormTripsExactlyTrapStorm) {
  HealthRun run = RunWithForensics(SeededTrapStorm());
  const BoardHealth h = AssessBoard(*run.board);
  EXPECT_EQ(h.traps, 24u);
  EXPECT_EQ(h.crash_records, 24u);
  EXPECT_EQ(Fired(h), std::vector<Detector>{Detector::kTrapStorm});
}

TEST(HealthTest, SeededRebootLoopTripsExactlyRebootLoop) {
  HealthRun run = RunWithForensics(SeededRebootLoop());
  const int svc_id = run.board->system().boot().FindCompartment("svc")->id;
  const BoardHealth h = AssessBoard(*run.board);
  ASSERT_EQ(Fired(h), std::vector<Detector>{Detector::kRebootLoop});
  EXPECT_EQ(h.anomalies[0].compartment, svc_id);
}

TEST(HealthTest, SeededQuotaTripsExactlyQuotaExhaustion) {
  HealthRun run = RunWithForensics(SeededQuota());
  const int app_id = run.board->system().boot().FindCompartment("app")->id;
  const BoardHealth h = AssessBoard(*run.board);
  EXPECT_EQ(h.traps, 0u);
  EXPECT_EQ(h.crash_records, 0u);
  EXPECT_EQ(h.quota_exhaustions, 4u);
  ASSERT_EQ(Fired(h), std::vector<Detector>{Detector::kQuotaExhaustion});
  EXPECT_EQ(h.anomalies[0].compartment, app_id);
}

TEST(HealthTest, SeededDeadlockTripsExactlyStuckBoard) {
  HealthRun run = RunWithForensics(SeededDeadlock());
  EXPECT_EQ(run.board->last_result(), System::RunResult::kDeadlock);
  const BoardHealth h = AssessBoard(*run.board);
  EXPECT_EQ(Fired(h), std::vector<Detector>{Detector::kStuckBoard});
}

TEST(HealthTest, SeededRevokerBacklogTripsExactlyRevokerBacklog) {
  HealthRun run = RunWithForensics(SeededRevokerBacklog());
  const BoardHealth h = AssessBoard(*run.board);
  EXPECT_GT(h.heap_quarantined_bytes, 32u * 1024);
  EXPECT_EQ(Fired(h), std::vector<Detector>{Detector::kRevokerBacklog});
}

TEST(HealthTest, NoDetectorFiresOnAnyShippedImage) {
  for (const auto& target : LintTargets()) {
    HealthRun run = RunWithForensics(target.build());
    const BoardHealth h = AssessBoard(*run.board);
    EXPECT_TRUE(h.healthy) << target.name;
    EXPECT_TRUE(h.anomalies.empty()) << target.name;
  }
}

// --- 3. Invariance --------------------------------------------------------

TEST(HealthTest, ForensicsMovesNoGuestCycleOnAnyShippedImage) {
  for (const auto& target : LintTargets()) {
    HealthRun on = RunWithForensics(target.build(), 500'000);
    Board off(target.build(), sim::BoardOptions{});
    off.Boot();
    off.StepTo(500'000);
    EXPECT_TRUE(on.board->fingerprint() == off.fingerprint()) << target.name;
  }
}

TEST(HealthTest, ForensicsMovesNoGuestCycleOnSeededFaultImages) {
  const std::vector<std::pair<const char*, FirmwareImage (*)()>> seeds = {
      {"seeded-uaf", SeededUaf},
      {"seeded-trap-storm", SeededTrapStorm},
      {"seeded-reboot-loop", SeededRebootLoop},
      {"seeded-quota", SeededQuota},
      {"seeded-deadlock", SeededDeadlock},
      {"seeded-revoker-backlog", SeededRevokerBacklog},
  };
  for (const auto& [name, build] : seeds) {
    HealthRun on = RunWithForensics(build());
    Board off(build(), sim::BoardOptions{});
    off.Boot();
    off.StepTo(kRunCycles);
    EXPECT_TRUE(on.board->fingerprint() == off.fingerprint()) << name;
  }
}

// --- 4. Determinism -------------------------------------------------------

TEST(HealthTest, HealthReportIsDeterministicAndSchemaVersioned) {
  HealthRun a = RunWithForensics(SeededUaf());
  HealthRun b = RunWithForensics(SeededUaf());
  const json::Value ra = health::HealthReport(*a.board);
  EXPECT_EQ(ra.Dump(2), health::HealthReport(*b.board).Dump(2));
  EXPECT_EQ(ra["schema_version"].AsInt(), health::kHealthSchemaVersion);
  EXPECT_FALSE(ra["healthy"].AsBool());
  EXPECT_EQ(ra["anomalies"].size(), 1u);
  EXPECT_EQ(ra["anomalies"][0]["detector"].AsString(), "use_after_free");
  EXPECT_EQ(ra["crash_records"].size(), 1u);
  EXPECT_EQ(ra["crash_records"][0]["provenance"]["state"].AsString(),
            "quarantined");
  // The report round-trips through the parser.
  const json::Value reparsed = json::Parse(ra.Dump(2));
  EXPECT_EQ(reparsed.Dump(2), ra.Dump(2));
}

TEST(HealthTest, CrashDumpTextNamesFaultAndProvenance) {
  HealthRun run = RunWithForensics(SeededUaf());
  const std::string dump = health::CrashDumpText(*run.recorder);
  EXPECT_NE(dump.find("1 crash record(s)"), std::string::npos);
  EXPECT_NE(dump.find("tag violation"), std::string::npos);
  EXPECT_NE(dump.find("unwind_no_handler"), std::string::npos);
  EXPECT_NE(dump.find("allocated by app"), std::string::npos);
  EXPECT_NE(dump.find("freed by app"), std::string::npos);
  EXPECT_NE(dump.find("pcc"), std::string::npos);
}

std::string FleetReport(int host_threads) {
  const tools::LintTarget* t = tools::FindLintTarget("fleet-node");
  EXPECT_NE(t, nullptr);
  sim::FleetOptions opts;
  opts.host_threads = host_threads;
  opts.forensics = true;
  Fleet fleet(opts);
  for (int i = 0; i < 4; ++i) {
    fleet.AddBoard(t->build());
  }
  fleet.Boot();
  fleet.Run(kRunCycles);
  return health::FleetHealthReport(fleet).Dump(2);
}

TEST(HealthTest, FleetHealthReportByteIdenticalForAnyWorkerCount) {
  const std::string one = FleetReport(1);
  EXPECT_EQ(one, FleetReport(2));
  EXPECT_EQ(one, FleetReport(4));
  const json::Value doc = json::Parse(one);
  EXPECT_EQ(doc["schema_version"].AsInt(), health::kHealthSchemaVersion);
  EXPECT_EQ(doc["fleet"]["boards"].AsInt(), 4);
  EXPECT_EQ(doc["boards"].size(), 4u);
}

}  // namespace
}  // namespace cheriot

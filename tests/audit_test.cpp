// Tests for the auditing pipeline (§4): JSON report content, the policy
// language, the Fig. 4 example, and the §5.1.3 liblzma-style supply-chain
// case study.
#include <gtest/gtest.h>

#include "src/audit/policy.h"
#include "src/audit/report.h"
#include "src/json/json.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

// An HTTP-client-flavoured image echoing Fig. 4: one NetAPI compartment and
// one legitimate client.
FirmwareImage HttpClientImage(bool backdoored_compressor) {
  ImageBuilder b("http-firmware");
  b.Compartment("NetAPI")
      .CodeSize(4096)
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("http_client")
      .CodeSize(8192)
      .AllocCap("http_quota", 16 * 1024)
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("fetch", Nop(), 1024);
  // A compression library dependency (the liblzma analog). A benign build
  // has no network dependency; the backdoored build quietly adds one.
  auto compressor = b.Compartment("compressor");
  compressor.CodeSize(20 * 1024).Export("decompress", Nop(), 512);
  if (backdoored_compressor) {
    compressor.ImportCompartment("NetAPI.network_socket_connect_tcp");
  }
  b.Thread("main", 1, 2048, 4, "http_client.fetch");
  return b.Build();
}

class AuditTest : public ::testing::Test {
 protected:
  json::Value ReportFor(bool backdoored) {
    machine_ = std::make_unique<Machine>();
    boot_ = Loader::Load(*machine_, HttpClientImage(backdoored));
    return audit::BuildReport(*boot_);
  }
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<BootInfo> boot_;
};

TEST_F(AuditTest, ReportContainsCompartmentStructure) {
  const json::Value report = ReportFor(false);
  EXPECT_EQ(report["firmware"].AsString(), "http-firmware");
  ASSERT_TRUE(report["compartments"].Has("http_client"));
  const auto& client = report["compartments"]["http_client"];
  ASSERT_EQ(client["imports"].size(), 2u);  // NetAPI call + allocation cap
  bool found_call = false;
  for (const auto& imp : client["imports"].AsArray()) {
    if (imp["kind"].AsString() == "call") {
      EXPECT_EQ(imp["compartment_name"].AsString(), "NetAPI");
      EXPECT_EQ(imp["function"].AsString(), "network_socket_connect_tcp");
      found_call = true;
    }
  }
  EXPECT_TRUE(found_call);
}

TEST_F(AuditTest, ReportRoundTripsThroughJson) {
  const std::string text = ReportFor(false).Dump(2);
  const json::Value parsed = json::Parse(text);
  EXPECT_EQ(parsed["firmware"].AsString(), "http-firmware");
  EXPECT_EQ(parsed["compartments"].size(), 3u);
  EXPECT_EQ(parsed["threads"].size(), 1u);
}

TEST_F(AuditTest, Fig4PolicySingleNetworkCaller) {
  // Fig. 4: "there must be only one caller to the network API".
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression(
      "count(compartments_calling(\"NetAPI.network_socket_connect_tcp\")) == 1"));
}

TEST_F(AuditTest, SupplyChainBackdoorDetected) {
  // §5.1.3: the backdoored compressor declares a new dependency on the
  // network API; the same policy that passed before now fails.
  audit::PolicyEngine engine(ReportFor(true));
  EXPECT_FALSE(engine.CheckExpression(
      "count(compartments_calling(\"NetAPI.network_socket_connect_tcp\")) == 1"));
  // The report names the culprit.
  const auto callers =
      engine.CompartmentsCalling("NetAPI.network_socket_connect_tcp");
  EXPECT_EQ(callers.size(), 2u);
  EXPECT_NE(std::find(callers.begin(), callers.end(), "compressor"),
            callers.end());
  // A pinpoint policy for the compressor compartment.
  EXPECT_FALSE(engine.CheckExpression("!calls(\"compressor\", \"NetAPI\")"));
}

TEST_F(AuditTest, MmioAccessIsAuditable) {
  audit::PolicyEngine engine(ReportFor(false));
  const auto importers = engine.ImportersOfMmio("ethernet");
  ASSERT_EQ(importers.size(), 1u);
  EXPECT_EQ(importers[0], "NetAPI");
  EXPECT_TRUE(engine.CheckExpression(
      "importers_of_mmio(\"ethernet\") == compartments_calling(\"NetAPI\") "
      "|| count(importers_of_mmio(\"ethernet\")) == 1"));
}

TEST_F(AuditTest, QuotaSumAgainstHeap) {
  audit::PolicyEngine engine(ReportFor(false));
  // System-wide property (§4): sum of all allocation-capability quotas must
  // not exceed the heap.
  EXPECT_TRUE(engine.CheckExpression("allocation_quota_sum() <= heap_size()"));
  EXPECT_EQ(std::get<int64_t>(engine.Eval("allocation_quota_sum()")),
            16 * 1024);
}

TEST_F(AuditTest, PolicyDocumentReportsViolationsWithLines) {
  audit::PolicyEngine engine(ReportFor(true));
  const std::string policy = R"(
# Network access policy
count(compartments_calling("NetAPI.network_socket_connect_tcp")) == 1
allocation_quota_sum() <= heap_size()
compartment_exists("http_client")
)";
  const auto violations = engine.CheckDocument(policy);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 3);
  EXPECT_EQ(violations[0].reason, "evaluated to false");
}

TEST_F(AuditTest, PolicyLanguageOperators) {
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression("1 + 2 == 3"));
  EXPECT_TRUE(engine.CheckExpression("(2 > 1) && (3 <= 3)"));
  EXPECT_TRUE(engine.CheckExpression("!false || false"));
  EXPECT_TRUE(engine.CheckExpression("\"a\" != \"b\""));
  EXPECT_TRUE(engine.CheckExpression(
      "contains(compartments(), \"NetAPI\")"));
  EXPECT_TRUE(engine.CheckExpression(
      "count(threads_entering(\"http_client\")) == 1"));
  EXPECT_TRUE(engine.CheckExpression("code_size(\"compressor\") == 20_480"));
  EXPECT_THROW(engine.Eval("undefined_fn()"), std::runtime_error);
  EXPECT_THROW(engine.Eval("1 +"), std::runtime_error);
  EXPECT_THROW(engine.Eval("count(1)"), std::runtime_error);
}

TEST_F(AuditTest, SealingTypeOwnershipQuery) {
  ImageBuilder b("sealing");
  b.Compartment("svc").Export("go", Nop()).OwnSealingType("svc.conn");
  b.Thread("t", 1, 512, 4, "svc.go");
  Machine machine;
  auto boot = Loader::Load(machine, b.Build());
  audit::PolicyEngine engine(audit::BuildReport(*boot));
  EXPECT_TRUE(engine.CheckExpression(
      "owners_of_sealing_type(\"svc.conn\") == exports_of(\"svc\") "
      "|| count(owners_of_sealing_type(\"svc.conn\")) == 1"));
}

TEST_F(AuditTest, TcbCompartmentsAppearInBootedSystemReport) {
  // A booted System adds the TCB service compartments; they are audited
  // like everything else.
  Machine machine;
  ImageBuilder b("tcb");
  b.Compartment("app")
      .AllocCap("q", 1024)
      .ImportCompartment("alloc.heap_allocate")
      .Export("main", Nop());
  b.Thread("t", 1, 1024, 4, "app.main");
  System sys(machine, b.Build());
  sys.Boot();
  audit::PolicyEngine engine(audit::BuildReport(sys.boot()));
  EXPECT_TRUE(engine.CheckExpression("compartment_exists(\"alloc\")"));
  EXPECT_TRUE(engine.CheckExpression("compartment_exists(\"sched\")"));
  // Only the allocator may touch the revoker device.
  EXPECT_TRUE(engine.CheckExpression(
      "count(importers_of_mmio(\"revoker\")) == 1 && "
      "contains(importers_of_mmio(\"revoker\"), \"alloc\")"));
}

// --- JSON library unit tests ---

TEST(Json, ParseBasics) {
  const auto v = json::Parse(R"({"a": [1, 2.5, "x", true, null], "b": {"c": -3}})");
  EXPECT_EQ(v["a"].size(), 5u);
  EXPECT_EQ(v["a"][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(v["a"][1].AsDouble(), 2.5);
  EXPECT_EQ(v["a"][2].AsString(), "x");
  EXPECT_TRUE(v["a"][3].AsBool());
  EXPECT_TRUE(v["a"][4].is_null());
  EXPECT_EQ(v["b"]["c"].AsInt(), -3);
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(Json, EscapesRoundTrip) {
  json::Object o;
  o["k"] = "line\nbreak \"quoted\" \\slash";
  const std::string text = json::Value(std::move(o)).Dump(-1);
  const auto parsed = json::Parse(text);
  EXPECT_EQ(parsed["k"].AsString(), "line\nbreak \"quoted\" \\slash");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(json::Parse("{"), std::runtime_error);
  EXPECT_THROW(json::Parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(json::Parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::Parse("{\"a\" 1}"), std::runtime_error);
}

TEST(Json, DeterministicKeyOrder) {
  json::Object o;
  o["zebra"] = 1;
  o["alpha"] = 2;
  const std::string text = json::Value(std::move(o)).Dump(-1);
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
}

}  // namespace
}  // namespace cheriot

// Tests for the auditing pipeline (§4): JSON report content, the policy
// language, the Fig. 4 example, and the §5.1.3 liblzma-style supply-chain
// case study.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/audit/policy.h"
#include "src/audit/report.h"
#include "src/json/json.h"
#include "src/rtos.h"

namespace cheriot {
namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

// An HTTP-client-flavoured image echoing Fig. 4: one NetAPI compartment and
// one legitimate client.
FirmwareImage HttpClientImage(bool backdoored_compressor) {
  ImageBuilder b("http-firmware");
  b.Compartment("NetAPI")
      .CodeSize(4096)
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("http_client")
      .CodeSize(8192)
      .AllocCap("http_quota", 16 * 1024)
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("fetch", Nop(), 1024);
  // A compression library dependency (the liblzma analog). A benign build
  // has no network dependency; the backdoored build quietly adds one.
  auto compressor = b.Compartment("compressor");
  compressor.CodeSize(20 * 1024).Export("decompress", Nop(), 512);
  if (backdoored_compressor) {
    compressor.ImportCompartment("NetAPI.network_socket_connect_tcp");
  }
  b.Thread("main", 1, 2048, 4, "http_client.fetch");
  return b.Build();
}

class AuditTest : public ::testing::Test {
 protected:
  json::Value ReportFor(bool backdoored) {
    machine_ = std::make_unique<Machine>();
    boot_ = Loader::Load(*machine_, HttpClientImage(backdoored));
    return audit::BuildReport(*boot_);
  }
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<BootInfo> boot_;
};

TEST_F(AuditTest, ReportContainsCompartmentStructure) {
  const json::Value report = ReportFor(false);
  EXPECT_EQ(report["firmware"].AsString(), "http-firmware");
  ASSERT_TRUE(report["compartments"].Has("http_client"));
  const auto& client = report["compartments"]["http_client"];
  ASSERT_EQ(client["imports"].size(), 2u);  // NetAPI call + allocation cap
  bool found_call = false;
  for (const auto& imp : client["imports"].AsArray()) {
    if (imp["kind"].AsString() == "call") {
      EXPECT_EQ(imp["compartment_name"].AsString(), "NetAPI");
      EXPECT_EQ(imp["function"].AsString(), "network_socket_connect_tcp");
      found_call = true;
    }
  }
  EXPECT_TRUE(found_call);
}

TEST_F(AuditTest, ReportRoundTripsThroughJson) {
  const std::string text = ReportFor(false).Dump(2);
  const json::Value parsed = json::Parse(text);
  EXPECT_EQ(parsed["firmware"].AsString(), "http-firmware");
  EXPECT_EQ(parsed["compartments"].size(), 3u);
  EXPECT_EQ(parsed["threads"].size(), 1u);
}

TEST_F(AuditTest, Fig4PolicySingleNetworkCaller) {
  // Fig. 4: "there must be only one caller to the network API".
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression(
      "count(compartments_calling(\"NetAPI.network_socket_connect_tcp\")) == 1"));
}

TEST_F(AuditTest, SupplyChainBackdoorDetected) {
  // §5.1.3: the backdoored compressor declares a new dependency on the
  // network API; the same policy that passed before now fails.
  audit::PolicyEngine engine(ReportFor(true));
  EXPECT_FALSE(engine.CheckExpression(
      "count(compartments_calling(\"NetAPI.network_socket_connect_tcp\")) == 1"));
  // The report names the culprit.
  const auto callers =
      engine.CompartmentsCalling("NetAPI.network_socket_connect_tcp");
  EXPECT_EQ(callers.size(), 2u);
  EXPECT_NE(std::find(callers.begin(), callers.end(), "compressor"),
            callers.end());
  // A pinpoint policy for the compressor compartment.
  EXPECT_FALSE(engine.CheckExpression("!calls(\"compressor\", \"NetAPI\")"));
}

TEST_F(AuditTest, MmioAccessIsAuditable) {
  audit::PolicyEngine engine(ReportFor(false));
  const auto importers = engine.ImportersOfMmio("ethernet");
  ASSERT_EQ(importers.size(), 1u);
  EXPECT_EQ(importers[0], "NetAPI");
  EXPECT_TRUE(engine.CheckExpression(
      "importers_of_mmio(\"ethernet\") == compartments_calling(\"NetAPI\") "
      "|| count(importers_of_mmio(\"ethernet\")) == 1"));
}

TEST_F(AuditTest, QuotaSumAgainstHeap) {
  audit::PolicyEngine engine(ReportFor(false));
  // System-wide property (§4): sum of all allocation-capability quotas must
  // not exceed the heap.
  EXPECT_TRUE(engine.CheckExpression("allocation_quota_sum() <= heap_size()"));
  EXPECT_EQ(std::get<int64_t>(engine.Eval("allocation_quota_sum()")),
            16 * 1024);
}

TEST_F(AuditTest, PolicyDocumentReportsViolationsWithLines) {
  audit::PolicyEngine engine(ReportFor(true));
  const std::string policy = R"(
# Network access policy
count(compartments_calling("NetAPI.network_socket_connect_tcp")) == 1
allocation_quota_sum() <= heap_size()
compartment_exists("http_client")
)";
  const auto violations = engine.CheckDocument(policy);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 3);
  EXPECT_EQ(violations[0].reason, "evaluated to false");
}

TEST_F(AuditTest, PolicyLanguageOperators) {
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression("1 + 2 == 3"));
  EXPECT_TRUE(engine.CheckExpression("(2 > 1) && (3 <= 3)"));
  EXPECT_TRUE(engine.CheckExpression("!false || false"));
  EXPECT_TRUE(engine.CheckExpression("\"a\" != \"b\""));
  EXPECT_TRUE(engine.CheckExpression(
      "contains(compartments(), \"NetAPI\")"));
  EXPECT_TRUE(engine.CheckExpression(
      "count(threads_entering(\"http_client\")) == 1"));
  EXPECT_TRUE(engine.CheckExpression("code_size(\"compressor\") == 20_480"));
  EXPECT_THROW(engine.Eval("undefined_fn()"), std::runtime_error);
  EXPECT_THROW(engine.Eval("1 +"), std::runtime_error);
  EXPECT_THROW(engine.Eval("count(1)"), std::runtime_error);
}

TEST_F(AuditTest, TransitiveReachabilityBuiltins) {
  // reachable()/paths_to() close over the authority graph: http_client holds
  // no MMIO import, yet it reaches the NIC through NetAPI's export — the
  // confused-deputy relation flat queries cannot express.
  audit::PolicyEngine clean(ReportFor(false));
  EXPECT_TRUE(clean.CheckExpression(
      "reachable(\"http_client\", \"mmio:ethernet\")"));
  EXPECT_TRUE(clean.CheckExpression(
      "!reachable(\"compressor\", \"mmio:ethernet\")"));
  EXPECT_TRUE(clean.CheckExpression(
      "contains(paths_to(\"mmio:ethernet\"), "
      "\"http_client -> NetAPI -> mmio:ethernet\")"));
  EXPECT_TRUE(clean.CheckExpression("count(paths_to(\"mmio:ethernet\")) == 2"));

  // The backdoored compressor reaches the NIC; the same one-line policy
  // that passed above now fails.
  audit::PolicyEngine bad(ReportFor(true));
  EXPECT_FALSE(bad.CheckExpression(
      "!reachable(\"compressor\", \"mmio:ethernet\")"));
  EXPECT_TRUE(bad.Reachable("compressor", "mmio:ethernet"));
}

TEST_F(AuditTest, PolicySetOperations) {
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression(
      "count(union(compartments_calling(\"NetAPI.network_socket_connect_tcp\"),"
      " importers_of_mmio(\"ethernet\"))) == 2"));
  EXPECT_TRUE(engine.CheckExpression(
      "count(intersect(compartments(), importers_of_mmio(\"ethernet\"))) == 1"));
  EXPECT_TRUE(engine.CheckExpression(
      "count(difference(compartments(), importers_of_mmio(\"ethernet\"))) == 2"));
  EXPECT_TRUE(engine.CheckExpression(
      "contains(difference(compartments(), importers_of_mmio(\"ethernet\")), "
      "\"compressor\")"));
  // union deduplicates.
  EXPECT_TRUE(engine.CheckExpression(
      "count(union(compartments(), compartments())) == count(compartments())"));
}

TEST_F(AuditTest, PolicyQuantifiers) {
  audit::PolicyEngine engine(ReportFor(false));
  EXPECT_TRUE(engine.CheckExpression(
      "forall(c, compartments(), code_size(c) > 0)"));
  EXPECT_TRUE(engine.CheckExpression(
      "exists(c, compartments(), calls(c, \"NetAPI\"))"));
  EXPECT_FALSE(engine.CheckExpression(
      "forall(c, compartments(), calls(c, \"NetAPI\"))"));
  // The bound variable composes with the graph builtins.
  EXPECT_TRUE(engine.CheckExpression(
      "forall(c, importers_of_mmio(\"ethernet\"), "
      "reachable(c, \"mmio:ethernet\"))"));
  // Quantifiers over an empty domain: forall is vacuously true, exists false.
  EXPECT_TRUE(engine.CheckExpression(
      "forall(c, importers_of_mmio(\"nope\"), false)"));
  EXPECT_FALSE(engine.CheckExpression(
      "exists(c, importers_of_mmio(\"nope\"), true)"));
  // Malformed quantifiers are parse errors, not crashes.
  EXPECT_THROW(engine.Eval("forall(c, compartments())"), std::runtime_error);
  EXPECT_THROW(engine.Eval("exists(, compartments(), true)"),
               std::runtime_error);
}

TEST_F(AuditTest, ParseErrorsCarryLineColumnAndSourceText) {
  audit::PolicyEngine engine(ReportFor(false));
  // A 10-line policy document with one malformed line.
  const std::string policy =
      "# integration policy (10 lines)\n"
      "count(compartments()) == 3\n"
      "forall(c, compartments(), code_size(c) > 0)\n"
      "  1 + + 2\n"
      "!reachable(\"compressor\", \"mmio:ethernet\")\n"
      "exists(c, compartments(), calls(c, \"NetAPI\"))\n"
      "# heap accounting\n"
      "allocation_quota_sum() <= heap_size()\n"
      "contains(paths_to(\"mmio:ethernet\"), "
      "\"http_client -> NetAPI -> mmio:ethernet\")\n"
      "count(importers_of_mmio(\"ethernet\")) == 1\n";
  const auto violations = engine.CheckDocument(policy);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 4);
  EXPECT_EQ(violations[0].source_line, "  1 + + 2");
  // Column points at the stray '+' in the original line, 1-based.
  EXPECT_EQ(violations[0].column, 7);
  EXPECT_NE(violations[0].reason.find("policy error"), std::string::npos);
  // Failing-but-well-formed lines report no column.
  const auto false_line = engine.CheckDocument("1 == 2\n");
  ASSERT_EQ(false_line.size(), 1u);
  EXPECT_EQ(false_line[0].column, 0);
  EXPECT_EQ(false_line[0].source_line, "1 == 2");
}

TEST_F(AuditTest, ReportIsVersionedAndByteStable) {
  const json::Value report = ReportFor(false);
  EXPECT_EQ(report["schema_version"].AsInt(), audit::kReportSchemaVersion);
  // Two independent loads serialize identically, byte for byte.
  EXPECT_EQ(report.Dump(2), ReportFor(false).Dump(2));
  // The v2 thread entry names the exact export.
  EXPECT_EQ(report["threads"][0]["entry"].AsString(), "http_client.fetch");
}

TEST_F(AuditTest, ReportMatchesGoldenFile) {
  // Pins the v2 report schema. If this fails after an intentional schema
  // change, bump audit::kReportSchemaVersion and regenerate with
  //   UPDATE_GOLDEN=1 ./audit_test --gtest_filter='*GoldenFile*'
  const std::string text = ReportFor(false).Dump(2) + "\n";
  const std::string path =
      std::string(CHERIOT_TEST_SRCDIR) + "/golden/audit_report_v2.json";
  if (const char* update = std::getenv("UPDATE_GOLDEN");
      update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out << text;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), text);
}

TEST_F(AuditTest, SealingTypeOwnershipQuery) {
  ImageBuilder b("sealing");
  b.Compartment("svc").Export("go", Nop()).OwnSealingType("svc.conn");
  b.Thread("t", 1, 512, 4, "svc.go");
  Machine machine;
  auto boot = Loader::Load(machine, b.Build());
  audit::PolicyEngine engine(audit::BuildReport(*boot));
  EXPECT_TRUE(engine.CheckExpression(
      "owners_of_sealing_type(\"svc.conn\") == exports_of(\"svc\") "
      "|| count(owners_of_sealing_type(\"svc.conn\")) == 1"));
}

TEST_F(AuditTest, TcbCompartmentsAppearInBootedSystemReport) {
  // A booted System adds the TCB service compartments; they are audited
  // like everything else.
  Machine machine;
  ImageBuilder b("tcb");
  b.Compartment("app")
      .AllocCap("q", 1024)
      .ImportCompartment("alloc.heap_allocate")
      .Export("main", Nop());
  b.Thread("t", 1, 1024, 4, "app.main");
  System sys(machine, b.Build());
  sys.Boot();
  audit::PolicyEngine engine(audit::BuildReport(sys.boot()));
  EXPECT_TRUE(engine.CheckExpression("compartment_exists(\"alloc\")"));
  EXPECT_TRUE(engine.CheckExpression("compartment_exists(\"sched\")"));
  // Only the allocator may touch the revoker device.
  EXPECT_TRUE(engine.CheckExpression(
      "count(importers_of_mmio(\"revoker\")) == 1 && "
      "contains(importers_of_mmio(\"revoker\"), \"alloc\")"));
}

// --- JSON library unit tests ---

TEST(Json, ParseBasics) {
  const auto v = json::Parse(R"({"a": [1, 2.5, "x", true, null], "b": {"c": -3}})");
  EXPECT_EQ(v["a"].size(), 5u);
  EXPECT_EQ(v["a"][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(v["a"][1].AsDouble(), 2.5);
  EXPECT_EQ(v["a"][2].AsString(), "x");
  EXPECT_TRUE(v["a"][3].AsBool());
  EXPECT_TRUE(v["a"][4].is_null());
  EXPECT_EQ(v["b"]["c"].AsInt(), -3);
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(Json, EscapesRoundTrip) {
  json::Object o;
  o["k"] = "line\nbreak \"quoted\" \\slash";
  const std::string text = json::Value(std::move(o)).Dump(-1);
  const auto parsed = json::Parse(text);
  EXPECT_EQ(parsed["k"].AsString(), "line\nbreak \"quoted\" \\slash");
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(json::Parse("{"), std::runtime_error);
  EXPECT_THROW(json::Parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(json::Parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::Parse("{\"a\" 1}"), std::runtime_error);
}

TEST(Json, DeterministicKeyOrder) {
  json::Object o;
  o["zebra"] = 1;
  o["alpha"] = 2;
  const std::string text = json::Value(std::move(o)).Dump(-1);
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
}

}  // namespace
}  // namespace cheriot

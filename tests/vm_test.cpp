// Tests for MiniVM (the Microvium stand-in): assembler, interpreter
// semantics, host calls, fuel, arena isolation and fault behaviour.
#include <gtest/gtest.h>

#include "src/compat/posix_shim.h"
#include "src/js/minivm.h"
#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Shared {
  js::VmResult result;
  std::vector<Word> host_calls;
  Word value = 0;
};

// Runs `body` inside a compartment with a default malloc capability.
void RunGuest(const std::function<void(CompartmentCtx&)>& body) {
  Machine machine;
  ImageBuilder b("vm-test");
  b.Compartment("app").Globals(32).Export(
      "main", [&body](CompartmentCtx& ctx, const std::vector<Capability>&) {
        body(ctx);
        return StatusCap(Status::kOk);
      });
  compat::UseMalloc(b, "app", 16 * 1024);
  js::RegisterMiniVmLibrary(b);
  b.Compartment("app").ImportLibrary("minivm.interpreter");
  b.Thread("t", 1, 8192, 8, "app.main");
  System sys(machine, b.Build());
  sys.Boot();
  ASSERT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
}

TEST(MiniVm, AssembleAndRunArithmetic) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble(R"(
      push 6
      push 7
      mul
      push 2
      add   # 44
      halt
    )");
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    shared->result = js::Run(ctx, arena, p, {});
  });
  EXPECT_EQ(shared->result.kind, js::VmResult::Kind::kHalted);
  EXPECT_EQ(shared->result.top, 44u);
}

TEST(MiniVm, LoopWithLabelsAndGlobals) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    // sum 1..10 into global 0
    const js::Program p = js::Assemble(R"(
      push 10
      storeg 1          # i = 10
      loop: loadg 1
      jz done
      loadg 0
      loadg 1
      add
      storeg 0          # acc += i
      loadg 1
      push 1
      sub
      storeg 1          # i -= 1
      jmp loop
      done: loadg 0
      halt
    )");
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    shared->result = js::Run(ctx, arena, p, {});
  });
  EXPECT_EQ(shared->result.kind, js::VmResult::Kind::kHalted);
  EXPECT_EQ(shared->result.top, 55u);
}

TEST(MiniVm, HostCallsReceiveArguments) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble(R"(
      push 11
      push 22
      callhost 0 2
      halt
    )");
    std::vector<js::HostFn> host = {
        [shared](CompartmentCtx&, const std::vector<Word>& args) -> Word {
          shared->host_calls = args;
          return args[0] + args[1];
        }};
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    shared->result = js::Run(ctx, arena, p, host);
  });
  EXPECT_EQ(shared->host_calls, (std::vector<Word>{11, 22}));
  EXPECT_EQ(shared->result.top, 33u);
}

TEST(MiniVm, FuelBoundsExecution) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble("spin: jmp spin");
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    shared->result = js::Run(ctx, arena, p, {}, /*fuel=*/1000);
  });
  EXPECT_EQ(shared->result.kind, js::VmResult::Kind::kOutOfFuel);
  EXPECT_EQ(shared->result.executed, 1000u);
}

TEST(MiniVm, StackUnderflowIsError) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble("add\nhalt");
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    shared->result = js::Run(ctx, arena, p, {});
  });
  EXPECT_EQ(shared->result.kind, js::VmResult::Kind::kError);
}

TEST(MiniVm, ResumesFromPersistedPc) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble(R"(
      push 1
      push 2
      add
      halt
    )");
    const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
    // Burn fuel one instruction at a time; pc persists in the arena.
    js::VmResult r;
    int steps = 0;
    do {
      r = js::Run(ctx, arena, p, {}, /*fuel=*/1);
      ++steps;
    } while (r.kind == js::VmResult::Kind::kOutOfFuel && steps < 10);
    shared->result = r;
    shared->value = steps;
  });
  EXPECT_EQ(shared->result.kind, js::VmResult::Kind::kHalted);
  EXPECT_EQ(shared->result.top, 3u);
  EXPECT_EQ(shared->value, 4u);  // 3 out-of-fuel steps + final halt
}

TEST(MiniVm, AssemblerRejectsGarbage) {
  EXPECT_THROW(js::Assemble("frobnicate 3"), std::invalid_argument);
  EXPECT_THROW(js::Assemble("push"), std::invalid_argument);
  EXPECT_THROW(js::Assemble("jmp nowhere"), std::invalid_argument);
  EXPECT_THROW(js::Assemble("callhost 1"), std::invalid_argument);
}

TEST(MiniVm, ArenaTooSmallTraps) {
  auto shared = std::make_shared<Shared>();
  RunGuest([shared](CompartmentCtx& ctx) {
    const js::Program p = js::Assemble("push 1\nhalt");
    // Deliberately undersized arena: the interpreter's stores trap and the
    // scoped handler observes a bounds violation — the VM cannot scribble
    // outside its arena.
    const Capability arena = compat::Malloc(ctx, 16);
    auto info = ctx.Try([&] { js::Run(ctx, arena, p, {}); });
    shared->value = info.has_value() ? 1 : 0;
  });
  EXPECT_EQ(shared->value, 1u);
}

}  // namespace
}  // namespace cheriot

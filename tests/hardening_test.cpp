// Interface-hardening tests (§3.2.5): capability de-privileging across real
// compartment boundaries — deep immutability, deep no-capture, read-only
// views, pointer checking — each verified by an *attacking callee*.
#include <gtest/gtest.h>

#include "src/rtos.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<int> codes;
  Capability captured;
  Word value = 0;
};

class HardeningTest : public ::testing::Test {
 protected:
  // Runs caller.main against an "evil" compartment with the given export.
  void RunPair(EntryFn evil_fn,
               std::function<void(CompartmentCtx&, std::shared_ptr<Shared>)>
                   caller_fn) {
    machine_ = std::make_unique<Machine>();
    auto shared = shared_;
    ImageBuilder b("hardening");
    b.Compartment("evil").Globals(64).Export("take", std::move(evil_fn));
    b.Compartment("caller")
        .Globals(64)
        .ImportCompartment("evil.take")
        .Export("main", [caller_fn, shared](CompartmentCtx& ctx,
                                            const std::vector<Capability>&) {
          caller_fn(ctx, shared);
          return StatusCap(Status::kOk);
        });
    b.Thread("t", 1, 8192, 8, "caller.main");
    system_ = std::make_unique<System>(*machine_, b.Build());
    system_->Boot();
    ASSERT_EQ(system_->Run(4'000'000'000ull), System::RunResult::kAllExited);
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<System> system_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(HardeningTest, ReadOnlyViewStopsCalleeWrites) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // The callee tries to scribble on the buffer it was given.
        auto info = ctx.Try([&] { ctx.StoreWord(args[0], 0, 0xEEEE); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        // Reading is fine.
        shared->value = ctx.LoadWord(args[0], 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.StoreWord(ctx.globals(), 0, 4242);
        const Capability view = hardening::ReadOnly(ctx.globals(), 16);
        ctx.Call("evil.take", {view});
        shared->codes.push_back(ctx.LoadWord(ctx.globals(), 0) == 4242 ? 1 : 0);
      });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 1}));  // write trapped; intact
  EXPECT_EQ(shared_->value, 4242u);
}

TEST_F(HardeningTest, BoundsTighteningHidesTheRestOfTheObject) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // Payload is 8 bytes; the secret lives just past it.
        auto info = ctx.Try([&] { ctx.LoadWord(args[0], 8); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.StoreWord(ctx.globals(), 8, 0x5EC2E7);  // the secret
        const Capability payload = hardening::ReadOnly(ctx.globals(), 8);
        ctx.Call("evil.take", {payload});
      });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1}));
}

TEST_F(HardeningTest, DeepImmutabilityIsTransitive) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // The argument is a pointer to a structure containing a pointer.
        // Deep immutability: the inner pointer loaded through it must also
        // be write-stripped (§2.1 permit-load-mutable).
        const Capability inner = ctx.LoadCap(args[0], 0);
        shared->codes.push_back(inner.tag() ? 1 : 0);
        shared->codes.push_back(
            inner.permissions().Has(Permission::kStore) ? 1 : 0);
        auto info = ctx.Try([&] { ctx.StoreWord(inner, 0, 666); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        // globals[0..8) = pointer to globals[16..32).
        const Capability inner =
            ctx.globals().AddOffset(16).WithBoundsAtCursor(16);
        ctx.StoreCap(ctx.globals(), 0, inner);
        const Capability deep = hardening::DeepImmutable(
            ctx.globals().WithBoundsAtCursor(8));
        ctx.Call("evil.take", {deep});
        shared->value = ctx.LoadWord(ctx.globals(), 16);  // untouched?
      });
  // inner loaded fine, had no store permission, store trapped.
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(shared_->value, 0u);
}

TEST_F(HardeningTest, NoCaptureStopsStoresToGlobals) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // The callee tries to capture the argument in its own globals for
        // use after returning (the confused-deputy setup of §3.2.3).
        auto info = ctx.Try([&] { ctx.StoreCap(ctx.globals(), 0, args[0]); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        if (info) {
          shared->codes.push_back(
              info->cause == TrapCode::kStoreLocalViolation ? 1 : 0);
        }
        // Spilling to its own *stack* is allowed (shallow no-capture).
        auto spill = ctx.AllocStack(8);
        auto stack_info =
            ctx.Try([&] { ctx.StoreCap(spill.cap(), 0, args[0]); });
        shared->codes.push_back(stack_info.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        const Capability arg =
            hardening::NoCapture(ctx.globals().WithBoundsAtCursor(16));
        ctx.Call("evil.take", {arg});
      });
  // Captured-to-globals trapped with store-local violation; stack spill OK.
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 1, 0}));
}

TEST_F(HardeningTest, DeepNoCaptureAppliesToLoadedPointers) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // Even a pointer *loaded through* the argument must be uncapturable
        // (§2.1 permit-load-global).
        const Capability inner = ctx.LoadCap(args[0], 0);
        shared->codes.push_back(
            inner.permissions().Has(Permission::kGlobal) ? 1 : 0);
        auto info = ctx.Try([&] { ctx.StoreCap(ctx.globals(), 0, inner); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        const Capability inner =
            ctx.globals().AddOffset(16).WithBoundsAtCursor(16);
        ctx.StoreCap(ctx.globals(), 0, inner);
        const Capability arg =
            hardening::NoCapture(ctx.globals().WithBoundsAtCursor(8));
        ctx.Call("evil.take", {arg});
      });
  EXPECT_EQ(shared_->codes, (std::vector<int>{0, 1}));
}

TEST_F(HardeningTest, CheckPointerValidatesInputs) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        // A well-written callee validates before use (§3.2.5 "Checking
        // inputs"): each malformed argument is rejected without faulting.
        const PermissionSet need({Permission::kLoad, Permission::kStore});
        shared->codes.push_back(
            hardening::CheckPointer(args[0], 16, need) ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        // 1: valid pointer.
        ctx.Call("evil.take", {ctx.globals().WithBoundsAtCursor(16)});
        // 2: forged integer.
        ctx.Call("evil.take", {Capability::FromWord(0x20001000)});
        // 3: too small.
        ctx.Call("evil.take", {ctx.globals().WithBoundsAtCursor(8)});
        // 4: read-only where read-write is required.
        ctx.Call("evil.take",
                 {hardening::ReadOnly(ctx.globals(), 16)});
        // 5: sealed.
        const Capability key = Capability::MakeSealingAuthority(20, 1);
        ctx.Call("evil.take",
                 {ctx.globals().WithBoundsAtCursor(16).SealedWith(key)});
      });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 0, 0, 0, 0}));
}

TEST_F(HardeningTest, ImmutableNoCaptureCombinesBoth) {
  auto shared = shared_;
  RunPair(
      [shared](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto w = ctx.Try([&] { ctx.StoreWord(args[0], 0, 1); });
        auto c = ctx.Try([&] { ctx.StoreCap(ctx.globals(), 0, args[0]); });
        shared->codes.push_back(w.has_value() ? 1 : 0);
        shared->codes.push_back(c.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.Call("evil.take", {hardening::ImmutableNoCapture(
                                  ctx.globals().WithBoundsAtCursor(16))});
      });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 1}));
}

TEST_F(HardeningTest, ReturnedCapabilityFromCalleeIsUsable) {
  // The reverse direction: a callee hands back a de-privileged view of its
  // own state; the caller can read it but not write or widen it.
  auto shared = shared_;
  RunPair(
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.StoreWord(ctx.globals(), 0, 90210);
        return hardening::ReadOnly(ctx.globals(), 4);
      },
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        const Capability view = ctx.Call("evil.take", {});
        shared->value = ctx.LoadWord(view, 0);
        auto w = ctx.Try([&] { ctx.StoreWord(view, 0, 1); });
        shared->codes.push_back(w.has_value() ? 1 : 0);
        shared->codes.push_back(view.WithBounds(view.base(), 64).tag() ? 1 : 0);
      });
  EXPECT_EQ(shared_->value, 90210u);
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace cheriot

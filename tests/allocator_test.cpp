// Deep allocator tests (§3.1.3, §3.2.2-3, §3.2.5): temporal safety through
// quarantine + revocation, zero-on-reuse, claims and the TOCTOU defence,
// ephemeral claims, quota delegation, heap_free_all, and blocking
// allocation while the revoker drains quarantine.
#include <gtest/gtest.h>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<int> codes;
  std::vector<Word> words;
  Capability cap;
};

// Runs `body` in an "app" compartment with a quota and full allocator access.
class AllocatorTest : public ::testing::Test {
 protected:
  void RunGuest(Word quota,
                std::function<void(CompartmentCtx&, std::shared_ptr<Shared>)> body) {
    machine_ = std::make_unique<Machine>();
    ImageBuilder b("alloc-test");
    auto shared = shared_;
    b.Compartment("app")
        .Globals(32)
        .AllocCap("q", quota)
        .AllocCap("q2", quota)
        .Export("main", [body, shared](CompartmentCtx& ctx,
                                       const std::vector<Capability>&) {
          body(ctx, shared);
          return StatusCap(Status::kOk);
        });
    sync::UseAllocator(b, "app");
    sync::UseScheduler(b, "app");
    b.Compartment("app")
        .ImportCompartment("alloc.heap_free_all")
        .ImportCompartment("alloc.heap_can_free")
        .ImportCompartment("alloc.token_key_new")
        .ImportCompartment("alloc.token_obj_new")
        .ImportCompartment("alloc.token_obj_destroy");
    b.Thread("t", 1, 8192, 8, "app.main");
    system_ = std::make_unique<System>(*machine_, b.Build());
    system_->Boot();
    ASSERT_EQ(system_->Run(20'000'000'000ull), System::RunResult::kAllExited);
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<System> system_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(AllocatorTest, UseAfterFreeTrapsImmediately) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability p = ctx.HeapAllocate(q, 64);
    ctx.StoreWord(p, 0, 42);
    ctx.HeapFree(q, p);
    // "Accesses to freed objects trap as soon as free returns" (§3.1.3).
    auto info = ctx.Try([&] { ctx.LoadWord(p, 0); });
    shared->codes.push_back(info.has_value() ? 1 : 0);
    auto winfo = ctx.Try([&] { ctx.StoreWord(p, 0, 1); });
    shared->codes.push_back(winfo.has_value() ? 1 : 0);
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 1}));
}

TEST_F(AllocatorTest, StaleCapabilityInMemoryIsLoadFiltered) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability p = ctx.HeapAllocate(q, 64);
    // Stash the pointer in a global, free the object, reload: the load
    // filter must hand back an untagged value (§2.1).
    ctx.StoreCap(ctx.globals(), 0, p);
    ctx.HeapFree(q, p);
    const Capability stale = ctx.LoadCap(ctx.globals(), 0);
    shared->codes.push_back(stale.tag() ? 0 : 1);
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1}));
}

TEST_F(AllocatorTest, ReusedMemoryIsZeroedAndRequiresSweep) {
  // Allocate more than half the heap, free it, then allocate a still-larger
  // block: satisfying the second allocation *requires* reusing the freed
  // region, which in turn requires a completed revocation pass (§3.1.3).
  RunGuest(512 * 1024, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability first = ctx.HeapAllocate(q, 120 * 1024, ~0u);
    if (!first.tag()) {
      shared->codes.push_back(-1);
      return;
    }
    for (int i = 0; i < 64; ++i) {
      ctx.StoreWord(first, 4 * i, 0xFEEDF00D);
    }
    ctx.HeapFree(q, first);
    const Capability again = ctx.HeapAllocate(q, 150 * 1024, /*timeout=*/~0u);
    shared->codes.push_back(again.tag() ? 1 : 0);
    if (again.tag()) {
      Word acc = 0;
      for (int i = 0; i < 512; ++i) {
        acc |= ctx.LoadWord(again, 4 * i);
      }
      shared->words.push_back(acc);
    }
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1}));
  EXPECT_EQ(shared_->words, (std::vector<Word>{0}));
  // Reuse implies at least one completed revocation pass.
  EXPECT_GE(machine_->revoker().epoch(), 1u);
}

TEST_F(AllocatorTest, ClaimKeepsObjectAliveAcrossOwnersFree) {
  // The TOCTOU defence (§3.2.5): a callee claims an object so the caller
  // cannot free it out from under the callee mid-operation.
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability q2 = ctx.SealedImport("q2");
    const Capability p = ctx.HeapAllocate(q, 64);
    ctx.StoreWord(p, 0, 7777);
    // Second quota claims the object.
    shared->codes.push_back(static_cast<int>(ctx.HeapClaim(q2, p)));
    // Owner frees: memory must stay usable (a claim holds it).
    ctx.HeapFree(q, p);
    auto info = ctx.Try([&] { shared->words.push_back(ctx.LoadWord(p, 0)); });
    shared->codes.push_back(info.has_value() ? 0 : 1);
    // Release the claim: now it really goes away.
    ctx.HeapFree(q2, p);
    auto gone = ctx.Try([&] { ctx.LoadWord(p, 0); });
    shared->codes.push_back(gone.has_value() ? 1 : 0);
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(shared_->words, (std::vector<Word>{7777}));
}

TEST_F(AllocatorTest, ClaimAccountsAgainstClaimersQuota) {
  RunGuest(2048, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability q2 = ctx.SealedImport("q2");
    const Capability p = ctx.HeapAllocate(q, 1024);
    const Word before = ctx.HeapQuotaRemaining(q2);
    ctx.HeapClaim(q2, p);
    const Word after = ctx.HeapQuotaRemaining(q2);
    shared->words = {before, after};
    // A claim too large for the quota is rejected.
    const Capability big = ctx.HeapAllocate(q, 512);
    ctx.HeapClaim(q2, big);  // shrinks q2 further
    const Capability p3 = ctx.HeapAllocate(q2, 1024);
    shared->codes.push_back(p3.tag() ? 0 : 1);  // q2 exhausted by claims
  });
  EXPECT_GT(shared_->words[0], shared_->words[1]);
  EXPECT_EQ(shared_->codes, (std::vector<int>{1}));
}

TEST_F(AllocatorTest, EphemeralClaimDefersFreeByOtherThread) {
  // The TOCTOU scenario ephemeral claims exist for (§3.2.5): thread A is
  // working on an object; thread B (the owner) frees it mid-operation. The
  // hazard slot defers the release until A's next compartment call.
  machine_ = std::make_unique<Machine>();
  ImageBuilder b("hazard");
  auto shared = shared_;
  b.Compartment("app")
      .Globals(32)
      .AllocCap("q", 8192)
      .Export("claimer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                // Busy-wait (no compartment calls!) for the object.
                while (ctx.LoadWord(ctx.globals(), 0) == 0) {
                }
                const Capability p = ctx.LoadCap(ctx.globals(), 8);
                shared->codes.push_back(
                    static_cast<int>(ctx.EphemeralClaim(p)));
                ctx.StoreWord(ctx.globals(), 4, 1);  // tell B to free
                // Busy-wait until B confirms the free happened.
                while (ctx.LoadWord(ctx.globals(), 16) == 0) {
                }
                // Deferred: still readable despite the free (1 = no trap).
                auto info = ctx.Try(
                    [&] { shared->words.push_back(ctx.LoadWord(p, 0)); });
                shared->codes.push_back(info.has_value() ? 0 : 1);
                // codes so far: claim status, owner free status, 1.
                // Our next compartment call clears the hazard slots...
                ctx.FutexWake(ctx.globals(), 1);
                auto gone = ctx.Try([&] { ctx.LoadWord(p, 0); });
                shared->codes.push_back(gone.has_value() ? 1 : 0);
                return StatusCap(Status::kOk);
              })
      .Export("owner",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability q = ctx.SealedImport("q");
                const Capability p = ctx.HeapAllocate(q, 64);
                ctx.StoreWord(p, 0, 31337);
                ctx.StoreCap(ctx.globals(), 8, p);
                ctx.StoreWord(ctx.globals(), 0, 1);
                while (ctx.LoadWord(ctx.globals(), 4) == 0) {
                }
                shared->codes.push_back(static_cast<int>(ctx.HeapFree(q, p)));
                ctx.StoreWord(ctx.globals(), 16, 1);
                return StatusCap(Status::kOk);
              });
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("towner", 2, 8192, 8, "app.owner");
  b.Thread("tclaimer", 2, 8192, 8, "app.claimer");
  system_ = std::make_unique<System>(*machine_, b.Build());
  system_->Boot();
  ASSERT_EQ(system_->Run(20'000'000'000ull), System::RunResult::kAllExited);
  // claim ok (0); owner free ok (0); read-after-free survives (1);
  // read-after-next-call traps (1).
  EXPECT_EQ(shared->codes, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(shared->words, (std::vector<Word>{31337}));
}

TEST_F(AllocatorTest, HeapFreeAllReleasesEverything) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    for (int i = 0; i < 5; ++i) {
      ctx.HeapAllocate(q, 256);
    }
    const Word before = ctx.HeapQuotaRemaining(q);
    const Word released = ctx.HeapFreeAll(q);
    const Word after = ctx.HeapQuotaRemaining(q);
    shared->words = {before, released, after};
  });
  EXPECT_LT(shared_->words[0], 8192u - 5 * 256);
  EXPECT_GE(shared_->words[1], 5 * 256u);
  EXPECT_EQ(shared_->words[2], 8192u);
}

TEST_F(AllocatorTest, CanFreeChecksOwnership) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability q2 = ctx.SealedImport("q2");
    const Capability p = ctx.HeapAllocate(q, 64);
    shared->codes.push_back(ctx.HeapCanFree(q, p) ? 1 : 0);
    shared->codes.push_back(ctx.HeapCanFree(q2, p) ? 1 : 0);
    // A sealed pointer is not freeable.
    const Capability key = ctx.TokenKeyNew();
    const Capability obj = ctx.TokenObjNew(q, key, 32);
    shared->codes.push_back(ctx.HeapCanFree(q, obj) ? 1 : 0);
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1, 0, 0}));
}

TEST_F(AllocatorTest, SealedObjectDestroyNeedsBothAuthorities) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability key = ctx.TokenKeyNew();
    const Capability wrong_key = ctx.TokenKeyNew();
    const Capability obj = ctx.TokenObjNew(q, key, 32);
    shared->codes.push_back(
        static_cast<int>(ctx.TokenObjDestroy(q, wrong_key, obj)));
    shared->codes.push_back(static_cast<int>(ctx.TokenObjDestroy(q, key, obj)));
  });
  EXPECT_EQ(static_cast<Status>(shared_->codes[0]), Status::kPermissionDenied);
  EXPECT_EQ(static_cast<Status>(shared_->codes[1]), Status::kOk);
}

TEST_F(AllocatorTest, AllocationBlocksUntilRevocationWhenFragmented) {
  // Nearly fill the quota/heap, free, and immediately re-allocate: the
  // allocator must wait for the revocation pass instead of failing.
  RunGuest(64 * 1024, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability big = ctx.HeapAllocate(q, 48 * 1024);
    if (!big.tag()) {
      shared->codes.push_back(-1);
      return;
    }
    ctx.HeapFree(q, big);
    const Cycles t0 = ctx.Now();
    // Heap region is ~200+ KiB but our quota is 64 KiB; the freed 48 KiB
    // must come back from quarantine for this to succeed.
    const Capability again = ctx.HeapAllocate(q, 48 * 1024, ~0u);
    shared->codes.push_back(again.tag() ? 1 : 0);
    shared->words.push_back(static_cast<Word>(ctx.Now() - t0));
  });
  EXPECT_EQ(shared_->codes, (std::vector<int>{1}));
}

TEST_F(AllocatorTest, ZeroTimeoutAllocationFailsFastWhenBlocked) {
  RunGuest(16 * 1024, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    const Capability a = ctx.HeapAllocate(q, 12 * 1024);
    ctx.HeapFree(q, a);
    // All quota memory is in quarantine; with timeout 0 the allocator
    // reports kTimedOut instead of blocking. (The shared heap may still
    // satisfy it from elsewhere, so we only check it returns quickly.)
    const Cycles t0 = ctx.Now();
    ctx.HeapAllocate(q, 12 * 1024, 0);
    shared->words.push_back(static_cast<Word>(ctx.Now() - t0));
  });
  // "Fast" = well under a full revocation sweep (~100k granules * 3).
  EXPECT_LT(shared_->words[0], 200'000u);
}

TEST_F(AllocatorTest, InvalidFreeArgumentsRejected) {
  RunGuest(8192, [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    const Capability q = ctx.SealedImport("q");
    // Freeing a forged integer "pointer".
    shared->codes.push_back(
        static_cast<int>(ctx.HeapFree(q, Capability::FromWord(0x20030000))));
    // Freeing a mid-object pointer.
    const Capability p = ctx.HeapAllocate(q, 64);
    const Capability mid = p.WithBounds(p.base() + 8, 8);
    shared->codes.push_back(static_cast<int>(ctx.HeapFree(q, mid)));
    // Freeing with garbage instead of an allocation capability.
    shared->codes.push_back(static_cast<int>(
        ctx.HeapFree(Capability::FromWord(1234), p)));
  });
  EXPECT_EQ(static_cast<Status>(shared_->codes[0]), Status::kInvalidArgument);
  EXPECT_EQ(static_cast<Status>(shared_->codes[1]), Status::kInvalidArgument);
  EXPECT_EQ(static_cast<Status>(shared_->codes[2]), Status::kPermissionDenied);
}

// Parameterized sweep over allocation sizes: allocate/free cycles always
// return zeroed, correctly-sized, granule-aligned capabilities.
class AllocSizeSweep : public ::testing::TestWithParam<Word> {};

TEST_P(AllocSizeSweep, SizedAllocationsBehave) {
  const Word size = GetParam();
  Machine machine;
  ImageBuilder b("sweep");
  auto shared = std::make_shared<Shared>();
  b.Compartment("app")
      .AllocCap("q", 128 * 1024)
      .Export("main", [shared, size](CompartmentCtx& ctx,
                                     const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        const Capability p = ctx.HeapAllocate(q, size, ~0u);
        if (!p.tag()) {
          shared->codes.push_back(-1);
          return StatusCap(Status::kNoMemory);
        }
        shared->words.push_back(p.length());
        shared->codes.push_back(p.base() % kGranuleBytes == 0 ? 1 : 0);
        // Boundary write works; one past the (granule-rounded) bounds traps.
        ctx.StoreByte(p, p.length() - 1, 0xFF);
        auto info = ctx.Try([&] { ctx.StoreByte(p, p.length(), 0xFF); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        ctx.HeapFree(q, p);
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  System sys(machine, b.Build());
  sys.Boot();
  ASSERT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);
  ASSERT_EQ(shared->codes.size(), 2u);
  EXPECT_EQ(shared->codes[0], 1);
  EXPECT_EQ(shared->codes[1], 1);
  EXPECT_GE(shared->words[0], size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllocSizeSweep,
                         ::testing::Values(8, 16, 24, 100, 256, 1000, 4096,
                                           16384, 65536));

}  // namespace
}  // namespace cheriot

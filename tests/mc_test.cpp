// cheriot-mc acceptance tests (DESIGN.md §12).
//
// Under test: the schedule arbiter contract (all-default choices are
// invisible to the guest), the FIFO futex wait-queue contract and its
// survival across snapshot/restore, the explorer finding each seeded
// concurrency bug with a minimal (single forced choice) reproduction, the
// shipped fleet image coming back clean with meaningful partial-order
// pruning, snapshot diffs naming the first divergent section and offset,
// and mid-run snapshot replay determinism under TCP loss injection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/costs.h"
#include "src/kernel/schedule_arbiter.h"
#include "src/mc/explorer.h"
#include "src/rtos.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"
#include "src/snap/diff.h"
#include "src/snap/snapshot.h"
#include "src/sync/sync.h"
#include "tools/lint_targets.h"
#include "tools/mc_targets.h"

namespace cheriot {
namespace {

using sim::Board;
using sim::Fleet;
using sim::FleetOptions;
using tools::FindMcTarget;

FirmwareImage BuildImage(const std::string& name) {
  const tools::LintTarget* t = FindMcTarget(name);
  EXPECT_NE(t, nullptr) << name;
  return t->build();
}

mc::McOptions FastOptions() {
  mc::McOptions o;
  o.max_schedules = 64;
  o.cycles = 2'000'000;
  return o;
}

// --- The arbiter contract: default choices are invisible ------------------

class DefaultArbiter : public ScheduleArbiter {
 public:
  int Choose(DecisionKind, uint32_t, int) override {
    ++consulted;
    return 0;
  }
  int consulted = 0;
};

TEST(McTest, AllDefaultArbiterLeavesTheFingerprintUntouched) {
  // Choice 0 must be bit-identical to running without an arbiter at all —
  // the wiring in the scheduler/kernel/board costs zero guest cycles.
  for (const char* name : {"seeded-lost-wake", "producer-consumer"}) {
    Board plain(BuildImage(name), {});
    plain.Boot();
    plain.StepTo(2'000'000);

    Board arbitered(BuildImage(name), {});
    DefaultArbiter arbiter;
    arbitered.SetArbiter(&arbiter);
    arbitered.Boot();
    arbitered.StepTo(2'000'000);

    EXPECT_EQ(plain.fingerprint(), arbitered.fingerprint()) << name;
  }
}

// --- FIFO futex wait-queue contract (src/sync/sync.h) ---------------------

struct WakeLog {
  std::vector<int> order;
};

// Three same-priority waiters block on the futex in creation order; a
// lower-priority waker sleeps past the snapshot point and then wakes all
// three. Each waiter appends its thread id as it resumes.
FirmwareImage FifoImage(std::shared_ptr<WakeLog> log) {
  ImageBuilder b("fifo-regression");
  b.Compartment("app")
      .Globals(64)
      .Export("waiter",
              [log](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.FutexWait(ctx.globals(), 0, ~0u);
                log->order.push_back(ctx.ThreadId());
                return StatusCap(Status::kOk);
              })
      .Export("waker",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.SleepCycles(1'000'000);
                ctx.StoreWord(ctx.globals(), 0, 1);
                ctx.FutexWake(ctx.globals(), 3);
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "app");
  b.Thread("w0", 2, 4096, 8, "app.waiter");
  b.Thread("w1", 2, 4096, 8, "app.waiter");
  b.Thread("w2", 2, 4096, 8, "app.waiter");
  b.Thread("waker", 1, 4096, 8, "app.waker");
  return b.Build();
}

TEST(McTest, FutexWakeOrderIsFifo) {
  auto log = std::make_shared<WakeLog>();
  Board board(FifoImage(log), {});
  board.Boot();
  board.StepTo(3'000'000);
  EXPECT_EQ(log->order, (std::vector<int>{0, 1, 2}));
}

TEST(McTest, FutexWakeOrderSurvivesSnapshotRestore) {
  // Snapshot while the waiters are parked (the waker is still asleep),
  // restore into a fresh board, and let the wake happen there: the restored
  // wait queue must pop in the same FIFO order the original would have.
  auto original_log = std::make_shared<WakeLog>();
  Board original(FifoImage(original_log), {});
  original.Boot();
  original.StepTo(500'000);
  std::vector<uint8_t> blob;
  original.Snapshot(blob);
  original.StepTo(3'000'000);
  EXPECT_EQ(original_log->order, (std::vector<int>{0, 1, 2}));

  auto restored_log = std::make_shared<WakeLog>();
  auto restored = Board::Restore(blob, FifoImage(restored_log));
  restored->StepTo(3'000'000);
  EXPECT_EQ(restored_log->order, original_log->order);
  EXPECT_EQ(restored->fingerprint(), original.fingerprint());
}

// --- The explorer finds every seeded bug, minimally -----------------------

TEST(McTest, FindsSeededLostWakeDeadlockWithOneForcedChoice) {
  const tools::LintTarget* t = FindMcTarget("seeded-lost-wake");
  ASSERT_NE(t, nullptr);
  const mc::McReport report = mc::Explore(t->name, t->build, FastOptions());
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.baseline_result, "all-exited");
  const mc::Failure& f = report.failures.front();
  EXPECT_EQ(f.kind, "deadlock");
  ASSERT_EQ(f.repro.size(), 1u);
  EXPECT_EQ(f.repro[0].kind, DecisionKind::kSyncPreempt);
}

TEST(McTest, FindsSeededWakeOrderDivergenceWithOneForcedChoice) {
  const tools::LintTarget* t = FindMcTarget("seeded-wake-order");
  ASSERT_NE(t, nullptr);
  const mc::McReport report = mc::Explore(t->name, t->build, FastOptions());
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const mc::Failure& f : report.failures) {
    if (f.kind == "divergence") {
      found = true;
      ASSERT_EQ(f.repro.size(), 1u);
      EXPECT_EQ(f.repro[0].kind, DecisionKind::kWakeOrder);
    }
  }
  EXPECT_TRUE(found);
}

TEST(McTest, FindsSeededQuotaRaceTrapWithOneForcedChoice) {
  const tools::LintTarget* t = FindMcTarget("seeded-quota-race");
  ASSERT_NE(t, nullptr);
  const mc::McReport report = mc::Explore(t->name, t->build, FastOptions());
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const mc::Failure& f : report.failures) {
    if (f.kind == "trap") {
      found = true;
      EXPECT_NE(f.detail.find("tag violation"), std::string::npos) << f.detail;
      EXPECT_NE(f.detail.find("app"), std::string::npos) << f.detail;
      ASSERT_EQ(f.repro.size(), 1u);
      EXPECT_EQ(f.repro[0].kind, DecisionKind::kSyncPreempt);
    }
  }
  EXPECT_TRUE(found);
}

// --- Shipped images stay clean; POR actually prunes -----------------------

TEST(McTest, ShippedFleetNodeImageIsCleanWithMajorityPruning) {
  const tools::LintTarget* t = FindMcTarget("fleet-node");
  ASSERT_NE(t, nullptr);
  const mc::McReport report = mc::Explore(t->name, t->build, FastOptions());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.frontier_exhausted);
  // The acceptance bar: partial-order reduction prunes at least half of the
  // naive schedule tree on a real shipped image.
  EXPECT_GE(report.pruned_pct(), 50) << report.ToJson().Dump(2);
}

TEST(McTest, ReportJsonIsByteStableAcrossRuns) {
  const tools::LintTarget* t = FindMcTarget("seeded-lost-wake");
  ASSERT_NE(t, nullptr);
  const std::string a =
      mc::Explore(t->name, t->build, FastOptions()).ToJson().Dump(2);
  const std::string b =
      mc::Explore(t->name, t->build, FastOptions()).ToJson().Dump(2);
  EXPECT_EQ(a, b);
}

// --- Snapshot diff names the first divergent section (satellite 3) --------

TEST(McTest, DiffBlobsNamesFirstDivergentSectionAndOffset) {
  Board board(BuildImage("quickstart"), {});
  board.Boot();
  board.StepTo(1'000'000);
  std::vector<uint8_t> blob;
  board.Snapshot(blob);

  // Perturb one byte in the middle of a section body and reassemble.
  snap::Container c = snap::Container::Parse(blob);
  ASSERT_FALSE(c.sections.empty());
  snap::Section* victim = nullptr;
  for (snap::Section& s : c.sections) {
    if (s.body.size() >= 64) {
      victim = &s;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const size_t flip = victim->body.size() / 2;
  victim->body[flip] ^= 0xFF;
  const std::vector<uint8_t> perturbed = c.Assemble();

  const snap::BlobDiff d = snap::DiffBlobs(blob, perturbed);
  EXPECT_FALSE(d.equal);
  ASSERT_EQ(d.divergent.size(), 1u);
  EXPECT_EQ(d.divergent[0].id, victim->id);
  EXPECT_EQ(d.divergent[0].name, snap::SectionName(victim->id));
  EXPECT_EQ(d.divergent[0].first_diff_offset, flip);
  // The summary carries the fourcc name and the offset (the human-facing
  // line `cheriot_snap diff` prints).
  EXPECT_NE(d.summary.find(snap::SectionName(victim->id)), std::string::npos)
      << d.summary;
  EXPECT_NE(d.summary.find(std::to_string(flip)), std::string::npos)
      << d.summary;

  const snap::BlobDiff same = snap::DiffBlobs(blob, blob);
  EXPECT_TRUE(same.equal);
  EXPECT_TRUE(same.summary.empty());
}

// --- Mid-run snapshot replay under fault injection (satellite 4) ----------

Fleet::ImageResolver FleetImages() {
  return [](int i) {
    sim::FleetAppOptions app;
    app.board_index = i;
    app.busy_publishes = 8;  // must match the boards the snapshot was taken of
    return sim::BuildFleetAppImage(std::make_shared<sim::FleetAppState>(),
                                   app);
  };
}

TEST(McTest, MidRunSnapshotReplaysIdenticallyUnderTcpLoss) {
  FleetOptions options;
  options.host_threads = 1;
  options.world.drop_every_nth_tcp = 3;
  // Flow recording on: the snapshot lands between a TCP drop and its
  // retransmission, so in-flight flow spans (the dropped segment's record,
  // half-open publish causality) must survive the restore replay too.
  options.flow = true;
  auto fleet = std::make_unique<Fleet>(options);
  for (int i = 0; i < 2; ++i) {
    sim::FleetAppOptions app;
    app.board_index = i;
    // Enough back-to-back status publishes that each board's flow carries
    // several data segments — the gateway drops every third one.
    app.busy_publishes = 8;
    fleet->AddBoard(
        sim::BuildFleetAppImage(std::make_shared<sim::FleetAppState>(), app));
  }
  fleet->Boot();

  // Run in small steps until the gateway has dropped a TCP segment, then
  // snapshot immediately — before the sender's retransmission timer fires —
  // so the restore replays the loss-recovery window itself.
  const Cycles chunk = cost::kCoreHz / 4;
  for (int i = 0; i < 480 && fleet->gateway().tcp_segments_dropped() == 0;
       ++i) {
    fleet->Run(chunk);
  }
  ASSERT_GT(fleet->gateway().tcp_segments_dropped(), 0u);

  std::vector<uint8_t> blob;
  fleet->Snapshot(blob);
  fleet->Run(cost::kCoreHz / 2);
  const auto expect = fleet->Fingerprints();
  // Traffic kept flowing past the loss: retransmission recovered.
  EXPECT_GT(fleet->gateway().mqtt_publishes_received(), 0u);

  auto restored = Fleet::Restore(blob, FleetImages(), /*host_threads=*/1,
                                 /*flow=*/true);
  restored->Run(cost::kCoreHz / 2);
  EXPECT_EQ(restored->Fingerprints(), expect);
  EXPECT_EQ(restored->gateway().tcp_segments_dropped(),
            fleet->gateway().tcp_segments_dropped());
  // The restore replay regenerated the flow recorder's state — ids are
  // assigned unconditionally, so the replayed run re-derives byte-identical
  // flow/histogram/metrics exports, drops and in-flight spans included.
  ASSERT_NE(restored->flow_recorder(), nullptr);
  EXPECT_GT(fleet->flow_recorder()->drops(), 0u);
  EXPECT_EQ(restored->flow_recorder()->FlowTableJson().Dump(2),
            fleet->flow_recorder()->FlowTableJson().Dump(2));
  EXPECT_EQ(restored->flow_recorder()->HistogramsJson().Dump(2),
            fleet->flow_recorder()->HistogramsJson().Dump(2));
  // The metrics series samples at fleet barriers, and barriers fall wherever
  // Run() calls end: the original run above advanced in small chunks while
  // the restore replay coalesces consecutive advances into one Run(), so the
  // original can hold extra chunk-boundary samples the replay never takes.
  // Guest-visible state is unaffected (the fingerprint check above proves
  // it); only the host-side sampling grid shifts. Both runs do end at the
  // same barrier cycle, so the final per-board rows — every column — must
  // agree exactly.
  {
    const json::Value a = restored->flow_recorder()->MetricsJson();
    const json::Value b = fleet->flow_recorder()->MetricsJson();
    ASSERT_GE(a["rows"].AsInt(), 2);
    ASSERT_GE(b["rows"].AsInt(), 2);
    const json::Value& ac = a["columns"];
    const json::Value& bc = b["columns"];
    for (const char* col :
         {"cycle", "board", "board_cycle", "busy_cycles", "idle_cycles",
          "traps", "allocs", "quota_denials", "nic_tx_frames",
          "nic_rx_frames", "nic_drops", "futex_waits"}) {
      const size_t an = ac[col].size();
      const size_t bn = bc[col].size();
      for (size_t i = 1; i <= 2; ++i) {
        EXPECT_EQ(ac[col][an - i].AsInt(), bc[col][bn - i].AsInt())
            << "column " << col << " tail row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace cheriot

// Tests for the futex-based synchronization libraries (§3.2.4): mutexes,
// semaphores, event groups, message queues (library and hardened-compartment
// flavours) and the multiwaiter.
#include <gtest/gtest.h>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<int> order;
  Word value = 0;
  int errors = 0;
  Capability cap;
};

class SyncTest : public ::testing::Test {
 protected:
  Machine machine_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(SyncTest, MutexProvidesMutualExclusion) {
  auto shared = shared_;
  ImageBuilder b("mutex");
  // Two threads increment a shared counter under a lock; without the lock
  // the read-modify-write (with deliberate yields inside) would interleave.
  b.Compartment("counter").Globals(64).Export(
      "work", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        sync::Mutex mutex(ctx.globals().AddOffset(0));
        const Capability counter = ctx.globals().AddOffset(8);
        for (int i = 0; i < 10; ++i) {
          sync::LockGuard guard(ctx, mutex);
          const Word v = ctx.LoadWord(counter, 0);
          ctx.Yield();  // try to provoke interleaving inside the section
          ctx.StoreWord(counter, 0, v + 1);
        }
        return StatusCap(Status::kOk);
      });
  sync::UseLocks(b, "counter");
  b.Thread("t1", 2, 2048, 4, "counter.work");
  b.Thread("t2", 2, 2048, 4, "counter.work");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  // Read the counter back out of the compartment's globals.
  const auto& rt = *sys.boot().FindCompartment("counter");
  EXPECT_EQ(sys.machine().memory().RawLoadWord(rt.globals_base + 8), 20u);
}

TEST_F(SyncTest, MutexTimeoutWhenHeld) {
  auto shared = shared_;
  ImageBuilder b("mutex-timeout");
  b.Compartment("c")
      .Globals(16)
      .Export("holder",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                sync::Mutex m(ctx.globals());
                m.Lock(ctx);
                ctx.SleepCycles(400'000);
                m.Unlock(ctx);
                return StatusCap(Status::kOk);
              })
      .Export("contender",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.SleepCycles(10'000);  // let the holder win
                sync::Mutex m(ctx.globals());
                shared->value =
                    static_cast<Word>(m.Lock(ctx, /*timeout=*/50'000));
                return StatusCap(Status::kOk);
              });
  sync::UseLocks(b, "c");
  b.Thread("t1", 2, 2048, 4, "c.holder");
  b.Thread("t2", 2, 2048, 4, "c.contender");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(4'000'000'000ull);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kTimedOut);
}

TEST_F(SyncTest, SemaphoreCountsAndBlocks) {
  auto shared = shared_;
  ImageBuilder b("sem");
  b.Compartment("c")
      .Globals(16)
      .Export("producer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                sync::Semaphore sem(ctx.globals());
                for (int i = 0; i < 3; ++i) {
                  ctx.SleepCycles(20'000);
                  sem.Put(ctx);
                }
                return StatusCap(Status::kOk);
              })
      .Export("consumer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                sync::Semaphore sem(ctx.globals());
                for (int i = 0; i < 3; ++i) {
                  if (sem.Get(ctx, 10'000'000) != Status::kOk) {
                    shared->errors++;
                  }
                  shared->order.push_back(i);
                }
                return StatusCap(Status::kOk);
              });
  sync::UseSemaphore(b, "c");
  b.Thread("tc", 3, 2048, 4, "c.consumer");
  b.Thread("tp", 2, 2048, 4, "c.producer");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
  EXPECT_EQ(shared->order.size(), 3u);
}

TEST_F(SyncTest, EventGroupWaitAllAndAny) {
  auto shared = shared_;
  ImageBuilder b("events");
  b.Compartment("c")
      .Globals(16)
      .Export("setter",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                sync::EventGroup eg(ctx.globals());
                ctx.SleepCycles(20'000);
                eg.Set(ctx, 0x1);
                ctx.SleepCycles(20'000);
                eg.Set(ctx, 0x2);
                return StatusCap(Status::kOk);
              })
      .Export("waiter",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                sync::EventGroup eg(ctx.globals());
                if (eg.WaitAny(ctx, 0x3, 50'000'000) != Status::kOk) {
                  shared->errors++;
                }
                shared->order.push_back(1);
                if (eg.WaitAll(ctx, 0x3, 50'000'000) != Status::kOk) {
                  shared->errors++;
                }
                shared->order.push_back(2);
                return StatusCap(Status::kOk);
              });
  sync::UseEventGroups(b, "c");
  b.Thread("tw", 3, 2048, 4, "c.waiter");
  b.Thread("ts", 2, 2048, 4, "c.setter");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
  EXPECT_EQ(shared->order, (std::vector<int>{1, 2}));
}

TEST_F(SyncTest, QueueLibraryMovesMessages) {
  auto shared = shared_;
  ImageBuilder b("queue");
  b.Compartment("c")
      .Globals(16)
      .AllocCap("q", 4096)
      .Export("producer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability buf = ctx.HeapAllocate(
                    ctx.SealedImport("q"), sync::QueueBufferBytes(4, 4));
                auto queue = sync::Queue::Init(ctx, buf, 4, 4);
                // Publish the buffer through a global so the consumer thread
                // (same compartment) can reach it.
                ctx.StoreCap(ctx.globals(), 8, buf);
                ctx.StoreWord(ctx.globals(), 0, 1);  // ready flag
                ctx.FutexWake(ctx.globals(), 1);
                for (Word i = 10; i < 15; ++i) {
                  auto msg = ctx.AllocStack(8);
                  ctx.StoreWord(msg.cap(), 0, i);
                  queue.Send(ctx, msg.cap(), ~0u);
                }
                return StatusCap(Status::kOk);
              })
      .Export("consumer",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                while (ctx.LoadWord(ctx.globals(), 0) == 0) {
                  ctx.FutexWait(ctx.globals(), 0, ~0u);
                }
                sync::Queue queue(ctx.LoadCap(ctx.globals(), 8));
                for (int i = 0; i < 5; ++i) {
                  auto out = ctx.AllocStack(8);
                  if (queue.Receive(ctx, out.cap(), 100'000'000) !=
                      Status::kOk) {
                    shared->errors++;
                    break;
                  }
                  shared->order.push_back(
                      static_cast<int>(ctx.LoadWord(out.cap(), 0)));
                }
                return StatusCap(Status::kOk);
              });
  sync::UseQueueLibrary(b, "c");
  sync::UseAllocator(b, "c");
  b.Thread("tc", 3, 2048, 6, "c.consumer");
  b.Thread("tp", 2, 2048, 6, "c.producer");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
  EXPECT_EQ(shared->order, (std::vector<int>{10, 11, 12, 13, 14}));
}

TEST_F(SyncTest, HardenedQueueIsOpaqueAndUnfreeableByCaller) {
  auto shared = shared_;
  ImageBuilder b("hqueue");
  b.Compartment("client")
      .AllocCap("cq", 8192)
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability quota = ctx.SealedImport("cq");
        const Capability handle =
            ctx.Call("message_queue.create", {quota, WordCap(8), WordCap(4)});
        if (!handle.tag() || !handle.IsSealed()) {
          shared->errors = 100;
          return StatusCap(Status::kInvalidArgument);
        }
        // The handle is opaque: direct access traps.
        auto info = ctx.Try([&] { ctx.LoadWord(handle, 0); });
        if (!info.has_value()) {
          shared->errors = 101;
        }
        // The caller cannot free the backing memory with its own quota
        // (sealed allocation, §3.2.3).
        const Status s = ctx.HeapFree(quota, handle);
        if (s == Status::kOk) {
          shared->errors = 102;
        }
        // Round-trip a message.
        auto msg = ctx.AllocStack(8);
        ctx.StoreWord(msg.cap(), 0, 4242);
        ctx.Call("message_queue.send", {handle, msg.cap(), WordCap(~0u)});
        auto out = ctx.AllocStack(8);
        ctx.Call("message_queue.receive", {handle, out.cap(), WordCap(~0u)});
        shared->value = ctx.LoadWord(out.cap(), 0);
        // Destroy through the compartment: requires our quota + its key.
        const Status d = static_cast<Status>(static_cast<int32_t>(
            ctx.Call("message_queue.destroy", {quota, handle}).word()));
        if (d != Status::kOk) {
          shared->errors = 103;
        }
        return StatusCap(Status::kOk);
      });
  sync::UseQueueCompartment(b, "client");
  sync::UseAllocator(b, "client");
  b.Thread("t", 2, 4096, 6, "client.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->errors, 0);
  EXPECT_EQ(shared->value, 4242u);
}

TEST_F(SyncTest, MultiwaiterWakesOnAnyEvent) {
  auto shared = shared_;
  ImageBuilder b("multi");
  b.Compartment("c")
      .Globals(32)
      .ImportCompartment("sched.multiwaiter_create")
      .ImportCompartment("sched.multiwaiter_wait")
      .ImportCompartment("sched.multiwaiter_destroy")
      .Export("waiter",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const int mw = ctx.MultiwaiterCreate(4);
                // Wait on two futexes (globals+0 and globals+4).
                auto events = ctx.AllocStack(16);
                const Address g = ctx.globals().base();
                ctx.StoreWord(events.cap(), 0, g);
                ctx.StoreWord(events.cap(), 4, 0);  // expected value
                ctx.StoreWord(events.cap(), 8, g + 4);
                ctx.StoreWord(events.cap(), 12, 0);
                const Status s =
                    ctx.MultiwaiterWait(mw, events.cap(), 2, 100'000'000);
                shared->value = static_cast<Word>(s);
                shared->order.push_back(
                    static_cast<int>(ctx.LoadWord(ctx.globals(), 4)));
                ctx.MultiwaiterDestroy(mw);
                return StatusCap(Status::kOk);
              })
      .Export("poker",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.SleepCycles(30'000);
                ctx.StoreWord(ctx.globals(), 4, 9);  // second futex fires
                ctx.FutexWake(ctx.globals().AddOffset(4), 1);
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "c");
  b.Thread("tw", 3, 2048, 4, "c.waiter");
  b.Thread("tp", 2, 2048, 4, "c.poker");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kOk);
  EXPECT_EQ(shared->order, (std::vector<int>{9}));
}

}  // namespace
}  // namespace cheriot

// Fleet simulation tests: N boards booting the MQTT case-study firmware,
// all connecting through the Fabric to the shared Gateway broker, DHCP
// leases from the address pool, board-to-board ping through gateway IP
// forwarding, and the determinism contract — bit-identical per-board results
// for any host thread count and across repeated runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/costs.h"
#include "src/net/world.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"

namespace cheriot {
namespace {

using sim::Board;
using sim::Fleet;
using sim::FleetAppOptions;
using sim::FleetAppState;
using sim::FleetOptions;

constexpr Cycles kSecond = cost::kCoreHz;

struct FleetRun {
  std::unique_ptr<Fleet> fleet;
  std::vector<std::shared_ptr<FleetAppState>> states;
};

FleetRun MakeFleet(int boards, int host_threads,
                   bool ping_next_peer = false, bool fast_forward = true,
                   Cycles epoch = 0) {
  FleetRun run;
  FleetOptions options;
  options.host_threads = host_threads;
  options.fast_forward = fast_forward;
  options.epoch = epoch;
  run.fleet = std::make_unique<Fleet>(options);
  for (int i = 0; i < boards; ++i) {
    auto state = std::make_shared<FleetAppState>();
    FleetAppOptions app;
    app.board_index = i;
    if (ping_next_peer) {
      // Leases are handed out in board-index order (asserted by
      // FleetBootsAndConnects), so the peer's address is predictable.
      app.ping_ip = net::kDeviceIp + static_cast<uint32_t>((i + 1) % boards);
    }
    run.fleet->AddBoard(sim::BuildFleetAppImage(state, app));
    run.states.push_back(std::move(state));
  }
  run.fleet->Boot();
  return run;
}

bool AllConnected(const FleetRun& run) {
  for (const auto& s : run.states) {
    if (!s->connected || s->publishes < 1) {
      return false;
    }
  }
  return true;
}

TEST(FleetTest, EightBoardsBootAndConnectToSharedBroker) {
  FleetRun run = MakeFleet(8, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  net::Gateway& gw = run.fleet->gateway();

  // Every board has a distinct DHCP lease, handed out in board-index order.
  EXPECT_EQ(gw.pool().lease_count(), 8u);
  std::set<uint32_t> ips;
  for (int i = 0; i < 8; ++i) {
    const auto& s = run.states[static_cast<size_t>(i)];
    EXPECT_TRUE(s->ready);
    EXPECT_EQ(s->ip, net::kDeviceIp + static_cast<uint32_t>(i))
        << "board " << i;
    ips.insert(s->ip);
    // The gateway's pool agrees with what the board thinks it leased.
    const auto pool_ip =
        gw.pool().IpOf(run.fleet->board(static_cast<size_t>(i)).mac());
    ASSERT_TRUE(pool_ip.has_value());
    EXPECT_EQ(*pool_ip, s->ip);
    EXPECT_GE(gw.mqtt_publishes_from(s->ip), 1u) << "board " << i;
  }
  EXPECT_EQ(ips.size(), 8u);
  EXPECT_EQ(gw.mqtt_clients_connected(), 8u);
  EXPECT_GE(gw.mqtt_publishes_received(), 8u);
  EXPECT_GE(gw.dhcp_acks_sent(), 8u);
}

TEST(FleetTest, BrokerPushFansOutToAllBoards) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  run.fleet->PublishMqtt("leds", {'o', 'n'});
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] {
        for (const auto& s : run.states) {
          if (s->notifications < 1) {
            return false;
          }
        }
        return true;
      },
      30 * kSecond));
}

TEST(FleetTest, BoardsPingEachOtherThroughGateway) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1, /*ping_next_peer=*/true);
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] {
        for (const auto& s : run.states) {
          if (s->peer_ping_oks < 1) {
            return false;
          }
        }
        return true;
      },
      120 * kSecond));
  // Peer traffic crosses the gateway's IP forwarding path.
  EXPECT_GT(run.fleet->gateway().frames_forwarded(), 0u);
}

TEST(FleetTest, HostPingsEveryBoardThroughFabric) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  net::Gateway& gw = run.fleet->gateway();
  for (uint32_t i = 0; i < 4; ++i) {
    run.fleet->SendPing(net::kDeviceIp + i, 0x50, static_cast<uint16_t>(i));
  }
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] { return gw.ping_replies_seen() >= 4; }, 30 * kSecond));
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(gw.ping_replies_from(net::kDeviceIp + i), 1u) << "board " << i;
  }
}

// --- Determinism contract ---------------------------------------------------

struct RunOutcome {
  std::vector<Board::Fingerprint> fingerprints;
  std::vector<int> notifications;
  uint32_t gw_publishes = 0;
  uint32_t gw_acks = 0;
  uint32_t gw_accepts = 0;
  uint64_t frames = 0;
};

// Fixed two-phase horizon: run, publish from the broker at a fixed fleet
// time, run again. Everything observable must be a pure function of the
// firmware — not of the host thread count or of which run this is.
RunOutcome RunFixedHorizon(int boards, int host_threads,
                           bool fast_forward = true, Cycles epoch = 0) {
  FleetRun run = MakeFleet(boards, host_threads, /*ping_next_peer=*/false,
                           fast_forward, epoch);
  run.fleet->Run(20 * kSecond);
  run.fleet->PublishMqtt("leds", {'o', 'n'});
  run.fleet->Run(5 * kSecond);
  RunOutcome out;
  out.fingerprints = run.fleet->Fingerprints();
  for (const auto& s : run.states) {
    out.notifications.push_back(s->notifications);
  }
  out.gw_publishes = run.fleet->gateway().mqtt_publishes_received();
  out.gw_acks = run.fleet->gateway().dhcp_acks_sent();
  out.gw_accepts = run.fleet->gateway().tcp_connections_accepted();
  out.frames = run.fleet->frames_exchanged();
  return out;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const char* label) {
  ASSERT_EQ(a.fingerprints.size(), b.fingerprints.size());
  for (size_t i = 0; i < a.fingerprints.size(); ++i) {
    const auto& fa = a.fingerprints[i];
    const auto& fb = b.fingerprints[i];
    EXPECT_EQ(fa.now, fb.now) << label << " board " << i;
    EXPECT_EQ(fa.accesses, fb.accesses) << label << " board " << i;
    EXPECT_EQ(fa.cap_loads, fb.cap_loads) << label << " board " << i;
    EXPECT_EQ(fa.cap_stores, fb.cap_stores) << label << " board " << i;
    EXPECT_EQ(fa.traps, fb.traps) << label << " board " << i;
    EXPECT_EQ(fa.idle_cycles, fb.idle_cycles) << label << " board " << i;
    EXPECT_EQ(fa.uart_bytes, fb.uart_bytes) << label << " board " << i;
    EXPECT_EQ(fa.uart_hash, fb.uart_hash) << label << " board " << i;
    EXPECT_EQ(fa.reboots, fb.reboots) << label << " board " << i;
  }
  EXPECT_EQ(a.notifications, b.notifications) << label;
  EXPECT_EQ(a.gw_publishes, b.gw_publishes) << label;
  EXPECT_EQ(a.gw_acks, b.gw_acks) << label;
  EXPECT_EQ(a.gw_accepts, b.gw_accepts) << label;
  EXPECT_EQ(a.frames, b.frames) << label;
}

TEST(FleetDeterminismTest, RepeatedRunsAreBitIdentical) {
  const RunOutcome first = RunFixedHorizon(4, 1);
  const RunOutcome second = RunFixedHorizon(4, 1);
  // Sanity: the horizon covers real activity, not just idle boards.
  EXPECT_GE(first.gw_accepts, 4u);
  EXPECT_GT(first.frames, 0u);
  ExpectSameOutcome(first, second, "repeat");
}

TEST(FleetDeterminismTest, ThreadCountDoesNotChangeResults) {
  const RunOutcome serial = RunFixedHorizon(4, 1);
  const RunOutcome two = RunFixedHorizon(4, 2);
  const RunOutcome four = RunFixedHorizon(4, 4);
  ExpectSameOutcome(serial, two, "2-thread");
  ExpectSameOutcome(serial, four, "4-thread");
}

TEST(FleetTest, EpochNeverExceedsLinkLatency) {
  FleetRun run = MakeFleet(2, 1);
  EXPECT_GT(run.fleet->epoch_length(), 0u);
  EXPECT_LE(run.fleet->epoch_length(),
            run.fleet->fabric().MinLinkLatency());
}

// True when the CHERIOT_FLEET_FAST_FORWARD override is active: the explicit
// FleetOptions::fast_forward flag is ignored, so cross-mode comparisons
// degenerate (both sides run in the forced mode) and effectiveness tests
// must skip. CI exploits this to run the whole suite in each mode.
bool FastForwardForcedByEnv() {
  return std::getenv("CHERIOT_FLEET_FAST_FORWARD") != nullptr;
}

// The tentpole contract: idle fast-forward, adaptive epoch coarsening and
// board parking are pure host-time optimisations. Fingerprints, firmware
// observations and gateway counters are bit-identical with the optimisation
// on or off, at any worker count.
TEST(FleetDeterminismTest, FastForwardDoesNotChangeResults) {
  const RunOutcome off = RunFixedHorizon(4, 1, /*fast_forward=*/false);
  const RunOutcome on1 = RunFixedHorizon(4, 1, /*fast_forward=*/true);
  const RunOutcome on2 = RunFixedHorizon(4, 2, /*fast_forward=*/true);
  const RunOutcome on4 = RunFixedHorizon(4, 4, /*fast_forward=*/true);
  ExpectSameOutcome(off, on1, "ff-on 1-thread");
  ExpectSameOutcome(off, on2, "ff-on 2-thread");
  ExpectSameOutcome(off, on4, "ff-on 4-thread");
}

// Epoch length is a scheduling knob, not a semantic one: any value in
// (0, min link latency] yields bit-identical results, because frame delivery
// is keyed on due cycles, not on barrier placement.
TEST(FleetDeterminismTest, EpochLengthDoesNotChangeResults) {
  const Cycles min_latency = FleetOptions{}.board_link_latency;
  const RunOutcome dflt = RunFixedHorizon(4, 1);
  const RunOutcome half = RunFixedHorizon(4, 1, true, min_latency / 2);
  const RunOutcome full = RunFixedHorizon(4, 1, true, min_latency);
  ExpectSameOutcome(dflt, half, "epoch=min/2");
  ExpectSameOutcome(dflt, full, "epoch=min");
}

// epoch=1 is the degenerate worst case (a barrier every cycle while any
// board is busy), so compare over a short horizon only.
TEST(FleetDeterminismTest, SingleCycleEpochMatchesDefault) {
  constexpr Cycles kHorizon = 150'000;
  auto fingerprints_for = [](Cycles epoch) {
    FleetRun run = MakeFleet(2, 1, false, /*fast_forward=*/true, epoch);
    run.fleet->Run(kHorizon);
    return run.fleet->Fingerprints();
  };
  EXPECT_EQ(fingerprints_for(0), fingerprints_for(1));
}

// Run/RunUntil land the fleet clock exactly on the requested horizon whether
// or not it is a multiple of the epoch, in both fast-forward modes, with
// identical per-board fingerprints.
TEST(FleetTest, HorizonExactAndNonExactEpochMultiples) {
  std::vector<Board::Fingerprint> previous;
  for (bool ff : {false, true}) {
    FleetRun run = MakeFleet(2, 1, false, ff);
    const Cycles epoch = run.fleet->epoch_length();
    run.fleet->Run(10 * epoch);  // exact multiple
    EXPECT_EQ(run.fleet->Now(), 10 * epoch);
    run.fleet->Run(epoch / 2 + 1);  // non-exact
    EXPECT_EQ(run.fleet->Now(), 10 * epoch + epoch / 2 + 1);
    const Cycles start = run.fleet->Now();
    EXPECT_FALSE(run.fleet->RunUntil([] { return false; }, 3 * epoch + 7));
    EXPECT_EQ(run.fleet->Now(), start + 3 * epoch + 7);
    auto fps = run.fleet->Fingerprints();
    if (!previous.empty() && !FastForwardForcedByEnv()) {
      EXPECT_EQ(fps, previous) << "ff on/off divergence at odd horizons";
    }
    previous = std::move(fps);
  }
}

// The point of the tentpole: the firmware's poll loop sleeps ~0.25 simulated
// seconds between wakes, so an idle-heavy stretch should cross orders of
// magnitude fewer barriers than the one-per-min-link-latency baseline, and
// most per-board steps should be parked away entirely.
TEST(FleetTest, FastForwardCollapsesIdleEpochs) {
  if (FastForwardForcedByEnv() &&
      std::string(std::getenv("CHERIOT_FLEET_FAST_FORWARD")) == "0") {
    GTEST_SKIP() << "fast-forward forced off by environment";
  }
  FleetRun run = MakeFleet(4, 1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  const uint64_t barriers_before = run.fleet->barriers();
  const Cycles idle_span = 30 * kSecond;
  run.fleet->Run(idle_span);
  const uint64_t barriers_taken = run.fleet->barriers() - barriers_before;
  const uint64_t conservative = idle_span / run.fleet->epoch_length();
  EXPECT_LT(barriers_taken, conservative / 10)
      << "adaptive coarsening should collapse idle epochs";
  EXPECT_GT(run.fleet->boards_skipped(), 0u);
  // Every board's clock caught up to the fleet clock (modulo overshoot).
  for (const auto& fp : run.fleet->Fingerprints()) {
    EXPECT_GE(fp.now, run.fleet->Now());
  }
}

// All boards talk to the shared gateway (DHCP broadcasts flood the switch),
// so the whole fleet collapses into one communication group.
TEST(FleetTest, ConnectedFleetFormsOneCommunicationGroup) {
  FleetRun run = MakeFleet(4, 1);
  EXPECT_EQ(run.fleet->communication_groups(), 5u);  // silent = singletons
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  EXPECT_EQ(run.fleet->communication_groups(), 1u);
}

TEST(FleetTest, FabricGroupsTrackActualDeliveries) {
  sim::Fabric fabric;
  const int p0 = fabric.AttachPort(100, [](Cycles, sim::Fabric::Frame, flow::FlowId) {});
  const int p1 = fabric.AttachPort(100, [](Cycles, sim::Fabric::Frame, flow::FlowId) {});
  const int p2 = fabric.AttachPort(100, [](Cycles, sim::Fabric::Frame, flow::FlowId) {});
  EXPECT_EQ(fabric.group_count(), 3u);
  const uint64_t gen0 = fabric.group_generation();

  auto frame = [](uint8_t dst_tag, uint8_t src_tag) {
    sim::Fabric::Frame f(16, 0);
    f[5] = dst_tag;   // dst MAC 00:00:00:00:00:<dst>
    f[11] = src_tag;  // src MAC 00:00:00:00:00:<src>
    return f;
  };
  // Self-addressed frame: learns p1's MAC without delivering anywhere, so
  // the group partition must not change.
  fabric.Transmit(p1, 0, frame(11, 11));
  EXPECT_EQ(fabric.group_count(), 3u);
  EXPECT_EQ(fabric.group_generation(), gen0);
  // Learned unicast p0 -> p1 merges exactly those two.
  fabric.Transmit(p0, 0, frame(11, 10));
  EXPECT_EQ(fabric.group_count(), 2u);
  EXPECT_EQ(fabric.GroupOf(p0), fabric.GroupOf(p1));
  EXPECT_NE(fabric.GroupOf(p0), fabric.GroupOf(p2));
  // A broadcast floods every port: one group.
  sim::Fabric::Frame bcast(16, 0xFF);
  fabric.Transmit(p0, 0, bcast);
  EXPECT_EQ(fabric.group_count(), 1u);
  EXPECT_GT(fabric.group_generation(), gen0);
}

TEST(FleetTest, FastForwardEnvOverride) {
  ASSERT_EQ(setenv("CHERIOT_FLEET_FAST_FORWARD", "0", 1), 0);
  {
    FleetOptions options;
    options.fast_forward = true;
    Fleet fleet(options);
    EXPECT_FALSE(fleet.fast_forward());
  }
  ASSERT_EQ(setenv("CHERIOT_FLEET_FAST_FORWARD", "1", 1), 0);
  {
    FleetOptions options;
    options.fast_forward = false;
    Fleet fleet(options);
    EXPECT_TRUE(fleet.fast_forward());
  }
  ASSERT_EQ(unsetenv("CHERIOT_FLEET_FAST_FORWARD"), 0);
}

// Misconfigured epochs must die at construction, before any board exists —
// not silently truncate or fail later inside Boot().
TEST(FleetDeathTest, EpochBeyondLinkLatencyDiesAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FleetOptions options;
  options.epoch = options.board_link_latency + 1;
  EXPECT_DEATH({ Fleet fleet(options); },
               "epoch must not exceed the board link latency");
}

TEST(FleetDeathTest, ZeroLinkLatencyDiesAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FleetOptions options;
  options.board_link_latency = 0;
  EXPECT_DEATH({ Fleet fleet(options); },
               "board_link_latency must be positive");
}

}  // namespace
}  // namespace cheriot

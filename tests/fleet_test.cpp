// Fleet simulation tests: N boards booting the MQTT case-study firmware,
// all connecting through the Fabric to the shared Gateway broker, DHCP
// leases from the address pool, board-to-board ping through gateway IP
// forwarding, and the determinism contract — bit-identical per-board results
// for any host thread count and across repeated runs.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/base/costs.h"
#include "src/net/world.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"

namespace cheriot {
namespace {

using sim::Board;
using sim::Fleet;
using sim::FleetAppOptions;
using sim::FleetAppState;
using sim::FleetOptions;

constexpr Cycles kSecond = cost::kCoreHz;

struct FleetRun {
  std::unique_ptr<Fleet> fleet;
  std::vector<std::shared_ptr<FleetAppState>> states;
};

FleetRun MakeFleet(int boards, int host_threads,
                   bool ping_next_peer = false) {
  FleetRun run;
  FleetOptions options;
  options.host_threads = host_threads;
  run.fleet = std::make_unique<Fleet>(options);
  for (int i = 0; i < boards; ++i) {
    auto state = std::make_shared<FleetAppState>();
    FleetAppOptions app;
    app.board_index = i;
    if (ping_next_peer) {
      // Leases are handed out in board-index order (asserted by
      // FleetBootsAndConnects), so the peer's address is predictable.
      app.ping_ip = net::kDeviceIp + static_cast<uint32_t>((i + 1) % boards);
    }
    run.fleet->AddBoard(sim::BuildFleetAppImage(state, app));
    run.states.push_back(std::move(state));
  }
  run.fleet->Boot();
  return run;
}

bool AllConnected(const FleetRun& run) {
  for (const auto& s : run.states) {
    if (!s->connected || s->publishes < 1) {
      return false;
    }
  }
  return true;
}

TEST(FleetTest, EightBoardsBootAndConnectToSharedBroker) {
  FleetRun run = MakeFleet(8, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  net::Gateway& gw = run.fleet->gateway();

  // Every board has a distinct DHCP lease, handed out in board-index order.
  EXPECT_EQ(gw.pool().lease_count(), 8u);
  std::set<uint32_t> ips;
  for (int i = 0; i < 8; ++i) {
    const auto& s = run.states[static_cast<size_t>(i)];
    EXPECT_TRUE(s->ready);
    EXPECT_EQ(s->ip, net::kDeviceIp + static_cast<uint32_t>(i))
        << "board " << i;
    ips.insert(s->ip);
    // The gateway's pool agrees with what the board thinks it leased.
    const auto pool_ip =
        gw.pool().IpOf(run.fleet->board(static_cast<size_t>(i)).mac());
    ASSERT_TRUE(pool_ip.has_value());
    EXPECT_EQ(*pool_ip, s->ip);
    EXPECT_GE(gw.mqtt_publishes_from(s->ip), 1u) << "board " << i;
  }
  EXPECT_EQ(ips.size(), 8u);
  EXPECT_EQ(gw.mqtt_clients_connected(), 8u);
  EXPECT_GE(gw.mqtt_publishes_received(), 8u);
  EXPECT_GE(gw.dhcp_acks_sent(), 8u);
}

TEST(FleetTest, BrokerPushFansOutToAllBoards) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  run.fleet->PublishMqtt("leds", {'o', 'n'});
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] {
        for (const auto& s : run.states) {
          if (s->notifications < 1) {
            return false;
          }
        }
        return true;
      },
      30 * kSecond));
}

TEST(FleetTest, BoardsPingEachOtherThroughGateway) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1, /*ping_next_peer=*/true);
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] {
        for (const auto& s : run.states) {
          if (s->peer_ping_oks < 1) {
            return false;
          }
        }
        return true;
      },
      120 * kSecond));
  // Peer traffic crosses the gateway's IP forwarding path.
  EXPECT_GT(run.fleet->gateway().frames_forwarded(), 0u);
}

TEST(FleetTest, HostPingsEveryBoardThroughFabric) {
  FleetRun run = MakeFleet(4, /*host_threads=*/1);
  ASSERT_TRUE(run.fleet->RunUntil([&] { return AllConnected(run); },
                                  60 * kSecond));
  net::Gateway& gw = run.fleet->gateway();
  for (uint32_t i = 0; i < 4; ++i) {
    run.fleet->SendPing(net::kDeviceIp + i, 0x50, static_cast<uint16_t>(i));
  }
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] { return gw.ping_replies_seen() >= 4; }, 30 * kSecond));
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(gw.ping_replies_from(net::kDeviceIp + i), 1u) << "board " << i;
  }
}

// --- Determinism contract ---------------------------------------------------

struct RunOutcome {
  std::vector<Board::Fingerprint> fingerprints;
  std::vector<int> notifications;
  uint32_t gw_publishes = 0;
  uint32_t gw_acks = 0;
  uint32_t gw_accepts = 0;
  uint64_t frames = 0;
};

// Fixed two-phase horizon: run, publish from the broker at a fixed fleet
// time, run again. Everything observable must be a pure function of the
// firmware — not of the host thread count or of which run this is.
RunOutcome RunFixedHorizon(int boards, int host_threads) {
  FleetRun run = MakeFleet(boards, host_threads);
  run.fleet->Run(20 * kSecond);
  run.fleet->PublishMqtt("leds", {'o', 'n'});
  run.fleet->Run(5 * kSecond);
  RunOutcome out;
  out.fingerprints = run.fleet->Fingerprints();
  for (const auto& s : run.states) {
    out.notifications.push_back(s->notifications);
  }
  out.gw_publishes = run.fleet->gateway().mqtt_publishes_received();
  out.gw_acks = run.fleet->gateway().dhcp_acks_sent();
  out.gw_accepts = run.fleet->gateway().tcp_connections_accepted();
  out.frames = run.fleet->frames_exchanged();
  return out;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const char* label) {
  ASSERT_EQ(a.fingerprints.size(), b.fingerprints.size());
  for (size_t i = 0; i < a.fingerprints.size(); ++i) {
    const auto& fa = a.fingerprints[i];
    const auto& fb = b.fingerprints[i];
    EXPECT_EQ(fa.now, fb.now) << label << " board " << i;
    EXPECT_EQ(fa.accesses, fb.accesses) << label << " board " << i;
    EXPECT_EQ(fa.cap_loads, fb.cap_loads) << label << " board " << i;
    EXPECT_EQ(fa.cap_stores, fb.cap_stores) << label << " board " << i;
    EXPECT_EQ(fa.traps, fb.traps) << label << " board " << i;
    EXPECT_EQ(fa.idle_cycles, fb.idle_cycles) << label << " board " << i;
    EXPECT_EQ(fa.uart_bytes, fb.uart_bytes) << label << " board " << i;
    EXPECT_EQ(fa.uart_hash, fb.uart_hash) << label << " board " << i;
    EXPECT_EQ(fa.reboots, fb.reboots) << label << " board " << i;
  }
  EXPECT_EQ(a.notifications, b.notifications) << label;
  EXPECT_EQ(a.gw_publishes, b.gw_publishes) << label;
  EXPECT_EQ(a.gw_acks, b.gw_acks) << label;
  EXPECT_EQ(a.gw_accepts, b.gw_accepts) << label;
  EXPECT_EQ(a.frames, b.frames) << label;
}

TEST(FleetDeterminismTest, RepeatedRunsAreBitIdentical) {
  const RunOutcome first = RunFixedHorizon(4, 1);
  const RunOutcome second = RunFixedHorizon(4, 1);
  // Sanity: the horizon covers real activity, not just idle boards.
  EXPECT_GE(first.gw_accepts, 4u);
  EXPECT_GT(first.frames, 0u);
  ExpectSameOutcome(first, second, "repeat");
}

TEST(FleetDeterminismTest, ThreadCountDoesNotChangeResults) {
  const RunOutcome serial = RunFixedHorizon(4, 1);
  const RunOutcome two = RunFixedHorizon(4, 2);
  const RunOutcome four = RunFixedHorizon(4, 4);
  ExpectSameOutcome(serial, two, "2-thread");
  ExpectSameOutcome(serial, four, "4-thread");
}

TEST(FleetTest, EpochNeverExceedsLinkLatency) {
  FleetRun run = MakeFleet(2, 1);
  EXPECT_GT(run.fleet->epoch_length(), 0u);
  EXPECT_LE(run.fleet->epoch_length(),
            run.fleet->fabric().MinLinkLatency());
}

}  // namespace
}  // namespace cheriot

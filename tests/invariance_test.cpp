// Differential cycle-model-invariance harness (DESIGN.md "Simulator fast
// path").
//
// The simulator's value rests on deterministic cycle accounting: any
// host-side optimisation of the memory system must leave *simulated* cycles,
// access counters and trap behaviour bit-identical, or every calibrated
// benchmark number silently drifts. This harness pins three representative
// workloads — raw memory traffic (loads/stores/caps/MMIO/traps), a
// kernel/switcher exercise (compartment calls, library calls, scoped
// handlers, futex/yield) and an allocator/revoker exercise (malloc/free with
// forced revocation sweeps) — to golden totals captured from the seed
// implementation (naive MMIO scan, std::function hooks, vector<bool>
// bitmaps, granule-at-a-time revoker).
//
// If an optimisation changes any number here it is NOT a fast path, it is a
// model change, and must be rejected or recalibrated explicitly.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/rtos.h"
#include "src/sync/sync.h"
#include "src/trace/trace.h"

namespace cheriot {
namespace {

struct Trace {
  Cycles cycles = 0;
  uint64_t accesses = 0;
  uint64_t cap_loads = 0;
  uint64_t cap_stores = 0;
  uint32_t revoker_epoch = 0;
  std::vector<int> traps;  // TrapCode values, in order of occurrence
  // Filled only by the traced variants (the recorder's clock dies with the
  // workload's Machine, so these are captured before it goes out of scope).
  Cycles attributed = 0;
  uint64_t emitted = 0;

  void Print(const char* name) const {
    std::printf("GOLDEN %s cycles=%llu accesses=%llu cap_loads=%llu "
                "cap_stores=%llu epoch=%u traps={",
                name, static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(cap_loads),
                static_cast<unsigned long long>(cap_stores), revoker_epoch);
    for (size_t i = 0; i < traps.size(); ++i) {
      std::printf("%s%d", i ? "," : "", traps[i]);
    }
    std::printf("}\n");
  }
};

// --- Workload 1: raw memory traffic against the full SoC memory map -------
// Word/byte/half/capability round-trips, bulk copies, zeroing, MMIO register
// traffic, and a fixed battery of trapping accesses covering every hot-path
// check (tag, seal, permission, bounds, revocation, alignment).
Trace MemoryWorkload(trace::TraceRecorder* rec = nullptr) {
  Machine machine;
  if (rec) {
    trace::Attach(machine, rec);
  }
  Memory& mem = machine.memory();
  const Address base = mem.sram_base();
  const Capability root =
      Capability::RootReadWrite(base, base + mem.sram_size());

  Trace t;
  auto record = [&](auto&& op) {
    try {
      op();
    } catch (const TrapException& e) {
      t.traps.push_back(static_cast<int>(e.code()));
    }
  };

  // Dense word/byte/half traffic over a 4 KiB window.
  for (int round = 0; round < 8; ++round) {
    for (Address off = 0; off < 4096; off += 4) {
      mem.StoreWord(root, base + off, off ^ round);
    }
    for (Address off = 0; off < 4096; off += 4) {
      volatile Word v = mem.LoadWord(root, base + off);
      (void)v;
    }
    for (Address off = 0; off < 1024; ++off) {
      mem.StoreByte(root, base + 0x2000 + off, static_cast<uint8_t>(off));
    }
    for (Address off = 0; off < 1024; off += 2) {
      mem.StoreHalf(root, base + 0x3000 + off, static_cast<uint16_t>(off));
      volatile uint16_t h = mem.LoadHalf(root, base + 0x3000 + off);
      (void)h;
    }
  }

  // Capability traffic: spill/reload a pointer array, partially clobber one.
  for (int i = 0; i < 64; ++i) {
    mem.StoreCap(root, base + 0x4000 + 8 * i,
                 root.WithBounds(base + 0x100 * i, 0x40));
  }
  for (int i = 0; i < 64; ++i) {
    volatile bool tag = mem.LoadCap(root, base + 0x4000 + 8 * i).tag();
    (void)tag;
  }
  mem.StoreByte(root, base + 0x4000 + 8 * 7 + 3, 0xAA);  // clears one tag

  // Load filter: free a region, reload the stale pointer.
  mem.revocation().SetRange(base + 0x700, 0x40, true);
  mem.StoreCap(root, base + 0x5000, root.WithBounds(base + 0x700, 0x40));
  const Capability stale =
      mem.LoadCap(root.WithPermissions(PermissionSet::ReadWriteGlobal()),
                  base + 0x5000);
  if (!stale.tag()) {
    t.traps.push_back(-1);  // sentinel: load filter fired
  }

  // MMIO traffic: UART tx, LED mask, timer reads.
  const Capability uart =
      Capability::RootReadWrite(kUartMmioBase, kUartMmioBase + kMmioRegionSize);
  const Capability led =
      Capability::RootReadWrite(kLedMmioBase, kLedMmioBase + kMmioRegionSize);
  const Capability timer = Capability::RootReadWrite(
      kTimerMmioBase, kTimerMmioBase + kMmioRegionSize);
  for (int i = 0; i < 256; ++i) {
    mem.StoreWord(uart, kUartMmioBase, 'A' + (i % 26));
    volatile Word st = mem.LoadWord(uart, kUartMmioBase + 4);
    (void)st;
    mem.StoreWord(led, kLedMmioBase, i & 0xFF);
    volatile Word now = mem.LoadWord(timer, kTimerMmioBase);
    (void)now;
  }

  // Bulk helpers.
  uint8_t buf[512];
  for (int i = 0; i < 512; ++i) buf[i] = static_cast<uint8_t>(i * 7);
  mem.WriteBytes(root, base + 0x6000, buf, sizeof(buf));
  mem.ReadBytes(root, base + 0x6000, buf, sizeof(buf));
  mem.ZeroRange(root, base + 0x6000, 512);

  // Trap battery (each charges its access cost before trapping).
  const Capability narrow = root.WithBounds(base + 0x100, 16);
  record([&] { mem.LoadWord(narrow, base + 0x110); });
  record([&] { mem.StoreWord(narrow, base + 0xFC, 1); });
  record([&] { mem.LoadWord(root.WithoutPermission(Permission::kLoad), base); });
  record([&] { mem.StoreWord(root.WithoutPermission(Permission::kStore), base, 1); });
  record([&] { mem.LoadWord(Capability::FromWord(base), base); });
  record([&] {
    const Capability key = Capability::RootSealing().WithAddress(9);
    mem.LoadWord(root.SealedWith(key), base);
  });
  record([&] { mem.LoadWord(root, base + 2); });
  record([&] { mem.LoadHalf(root, base + 1); });
  record([&] { mem.StoreCap(root, base + 4, root); });
  record([&] {
    mem.LoadWord(root.WithPermissions(PermissionSet::ReadWriteGlobal())
                     .WithBounds(base + 0x700, 0x40),
                 base + 0x700);
  });
  record([&] {
    mem.LoadWord(Capability::RootReadWrite(0x10007000, 0x10007100), 0x10007000);
  });

  t.cycles = machine.clock().now();
  t.accesses = mem.access_count();
  t.cap_loads = mem.cap_load_count();
  t.cap_stores = mem.cap_store_count();
  if (rec) {
    t.attributed = rec->attributed_cycles();
    t.emitted = rec->emitted();
  }
  return t;
}

// --- Workload 2: kernel/switcher traffic ----------------------------------
// Compartment-call ping-pong, a library call, a scoped-handler fault, a
// global-handler fault in the callee, futex wake/wait and yields.
Trace KernelWorkload(trace::TraceRecorder* rec = nullptr) {
  Machine machine;
  if (rec) {
    trace::Attach(machine, rec);
  }
  auto traps = std::make_shared<std::vector<int>>();
  ImageBuilder b("invariance-kernel");
  b.Compartment("callee")
      .Globals(256)
      .Export("add",
              [](CompartmentCtx&, const std::vector<Capability>& args) {
                return WordCap(args[0].word() + args[1].word());
              })
      .Export("touch",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                for (int i = 0; i < 16; ++i) {
                  ctx.StoreWord(ctx.globals(), 4 * i, i);
                }
                return StatusCap(Status::kOk);
              })
      .Export("fault", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.LoadWord(Capability(), 0);  // untagged: global-handler unwind
        return StatusCap(Status::kOk);
      });
  b.Library("mathlib").Export(
      "square", [](CompartmentCtx&, const std::vector<Capability>& args) {
        return WordCap(args[0].word() * args[0].word());
      });
  b.Compartment("caller")
      .Globals(256)
      .ImportCompartment("callee.add")
      .ImportCompartment("callee.touch")
      .ImportCompartment("callee.fault")
      .ImportLibrary("mathlib.square")
      .Export("main", [traps](CompartmentCtx& ctx,
                              const std::vector<Capability>&) {
        Word acc = 0;
        for (int i = 0; i < 40; ++i) {
          acc += ctx.Call("callee.add", {WordCap(i), WordCap(acc)}).word();
          if (i % 4 == 0) {
            ctx.Call("callee.touch", {});
          }
          acc ^= ctx.LibCall("mathlib.square", {WordCap(i)}).word();
        }
        // Scoped handler: in-compartment fault is caught locally.
        auto info = ctx.Try([&] { ctx.LoadWord(Capability(), 0); });
        traps->push_back(info ? static_cast<int>(info->cause) : 0);
        // Callee fault: unwinds back with an error status.
        const Capability r = ctx.Call("callee.fault", {});
        traps->push_back(static_cast<int>(r.word()));
        // Futex + yield traffic.
        for (int i = 0; i < 8; ++i) {
          ctx.FutexWake(ctx.globals(), 1);
          ctx.Yield();
        }
        ctx.StoreWord(ctx.globals(), 0, acc);
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "caller");
  b.Thread("t", 1, 8192, 8, "caller.main");

  System sys(machine, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);

  Trace t;
  t.cycles = machine.clock().now();
  t.accesses = machine.memory().access_count();
  t.cap_loads = machine.memory().cap_load_count();
  t.cap_stores = machine.memory().cap_store_count();
  t.traps = *traps;
  if (rec) {
    t.attributed = rec->attributed_cycles();
    t.emitted = rec->emitted();
  }
  return t;
}

// --- Workload 3: allocator + revoker --------------------------------------
// Alloc/free churn across sizes (quarantine + revocation-bit traffic), a
// large allocation that forces a completed sweep for reuse, and a
// use-after-free probe.
Trace AllocatorWorkload(trace::TraceRecorder* rec = nullptr) {
  Machine machine;
  if (rec) {
    trace::Attach(machine, rec);
  }
  auto traps = std::make_shared<std::vector<int>>();
  ImageBuilder b("invariance-alloc");
  b.Compartment("app")
      .Globals(64)
      .AllocCap("q", 512 * 1024)
      .Export("main", [traps](CompartmentCtx& ctx,
                              const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        for (int round = 0; round < 6; ++round) {
          std::vector<Capability> ptrs;
          for (Word size = 64; size <= 4096; size *= 2) {
            const Capability p = ctx.HeapAllocate(q, size);
            if (p.tag()) {
              ctx.StoreWord(p, 0, size);
              ctx.StoreWord(p, static_cast<int64_t>(size) - 4, round);
              ptrs.push_back(p);
            }
          }
          for (const Capability& p : ptrs) {
            ctx.HeapFree(q, p);
          }
        }
        // Use-after-free probe: traps immediately (§3.1.3).
        const Capability p = ctx.HeapAllocate(q, 128);
        ctx.HeapFree(q, p);
        auto info = ctx.Try([&] { ctx.LoadWord(p, 0); });
        traps->push_back(info ? static_cast<int>(info->cause) : 0);
        // Force reuse of quarantined memory: needs a completed sweep.
        const Capability big1 = ctx.HeapAllocate(q, 120 * 1024, ~0u);
        ctx.HeapFree(q, big1);
        const Capability big2 = ctx.HeapAllocate(q, 140 * 1024, ~0u);
        traps->push_back(big2.tag() ? 1 : 0);
        ctx.HeapFree(q, big2);
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");

  System sys(machine, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);

  Trace t;
  t.cycles = machine.clock().now();
  t.accesses = machine.memory().access_count();
  t.cap_loads = machine.memory().cap_load_count();
  t.cap_stores = machine.memory().cap_store_count();
  t.revoker_epoch = machine.revoker().epoch();
  t.traps = *traps;
  if (rec) {
    t.attributed = rec->attributed_cycles();
    t.emitted = rec->emitted();
  }
  return t;
}

// --- Golden values, captured from the seed implementation -----------------
// (naive linear MMIO scan, std::function access hook, std::vector<bool>
// tag/revocation bitmaps, granule-at-a-time revoker sweep). Regenerate ONLY
// for deliberate, documented cycle-model changes: run this binary and copy
// the "GOLDEN ..." lines it prints.
struct Golden {
  unsigned long long cycles, accesses, cap_loads, cap_stores;
  uint32_t epoch;
  std::vector<int> traps;
};

void ExpectMatches(const Trace& t, const Golden& g) {
  EXPECT_EQ(t.cycles, g.cycles);
  EXPECT_EQ(t.accesses, g.accesses);
  EXPECT_EQ(t.cap_loads, g.cap_loads);
  EXPECT_EQ(t.cap_stores, g.cap_stores);
  EXPECT_EQ(t.revoker_epoch, g.epoch);
  EXPECT_EQ(t.traps, g.traps);
}

TEST(CycleModelInvariance, MemoryWorkload) {
  const Trace t = MemoryWorkload();
  t.Print("memory");
  ExpectMatches(t, Golden{68963, 33937, 65, 66, 0,
                          {-1, 3, 3, 4, 5, 1, 2, 8, 8, 8, 1, 3}});
}

TEST(CycleModelInvariance, KernelWorkload) {
  const Trace t = KernelWorkload();
  t.Print("kernel");
  ExpectMatches(t, Golden{15517, 1187, 0, 0, 0, {1, -6}});
}

TEST(CycleModelInvariance, AllocatorWorkload) {
  const Trace t = AllocatorWorkload();
  t.Print("allocator");
  ExpectMatches(t, Golden{1069709, 4781, 0, 0, 2, {1, 1}});
}

// --- Traced variants ------------------------------------------------------
// cheriot-trace's core guarantee: attaching the flight recorder + profiler
// moves no guest cycle, no access count, no trap — the SAME goldens hold —
// while every cycle lands in exactly one profiler bucket.

TEST(CycleModelInvariance, MemoryWorkloadTraced) {
  trace::TraceRecorder rec;
  const Trace t = MemoryWorkload(&rec);
  ExpectMatches(t, Golden{68963, 33937, 65, 66, 0,
                          {-1, 3, 3, 4, 5, 1, 2, 8, 8, 8, 1, 3}});
  EXPECT_EQ(t.attributed, t.cycles);
}

TEST(CycleModelInvariance, KernelWorkloadTraced) {
  trace::TraceRecorder rec;
  const Trace t = KernelWorkload(&rec);
  ExpectMatches(t, Golden{15517, 1187, 0, 0, 0, {1, -6}});
  EXPECT_EQ(t.attributed, t.cycles);
  EXPECT_GT(t.emitted, 0u);  // compartment calls, traps and wakes recorded
}

TEST(CycleModelInvariance, AllocatorWorkloadTraced) {
  trace::TraceRecorder rec;
  const Trace t = AllocatorWorkload(&rec);
  ExpectMatches(t, Golden{1069709, 4781, 0, 0, 2, {1, 1}});
  EXPECT_EQ(t.attributed, t.cycles);
  EXPECT_GT(t.emitted, 0u);  // heap and revoker events recorded
}

}  // namespace
}  // namespace cheriot

// Tests for the simulated SRAM: tag behaviour, the load filter, deep
// attenuation on loads, store-local enforcement, and MMIO dispatch.
#include "src/mem/memory.h"

#include <gtest/gtest.h>

#include "src/base/clock.h"

namespace cheriot {
namespace {

constexpr Address kBase = 0x20000000;
constexpr Address kSize = 64 * 1024;

class MemoryTest : public ::testing::Test {
 protected:
  CycleClock clock_;
  Memory mem_{kBase, kSize, &clock_};
  Capability root_ = Capability::RootReadWrite(kBase, kBase + kSize);
};

TEST_F(MemoryTest, WordRoundTrip) {
  mem_.StoreWord(root_, kBase + 0x100, 0x12345678);
  EXPECT_EQ(mem_.LoadWord(root_, kBase + 0x100), 0x12345678u);
}

TEST_F(MemoryTest, ByteAndHalfRoundTrip) {
  mem_.StoreByte(root_, kBase + 0x10, 0xAB);
  EXPECT_EQ(mem_.LoadByte(root_, kBase + 0x10), 0xAB);
  mem_.StoreHalf(root_, kBase + 0x12, 0xBEEF);
  EXPECT_EQ(mem_.LoadHalf(root_, kBase + 0x12), 0xBEEF);
}

TEST_F(MemoryTest, AccessesCostCycles) {
  const Cycles before = clock_.now();
  mem_.StoreWord(root_, kBase, 1);
  mem_.LoadWord(root_, kBase);
  EXPECT_GT(clock_.now(), before);
}

TEST_F(MemoryTest, OutOfBoundsTraps) {
  const Capability narrow = root_.WithBounds(kBase + 0x100, 16);
  EXPECT_THROW(mem_.LoadWord(narrow, kBase + 0x110), TrapException);
  EXPECT_THROW(mem_.StoreWord(narrow, kBase + 0xFC, 1), TrapException);
  try {
    mem_.LoadWord(narrow, kBase + 0x110);
    FAIL();
  } catch (const TrapException& e) {
    EXPECT_EQ(e.code(), TrapCode::kBoundsViolation);
  }
}

TEST_F(MemoryTest, MissingPermissionTraps) {
  const Capability ro = root_.WithoutPermission(Permission::kStore);
  EXPECT_NO_THROW(mem_.LoadWord(ro, kBase));
  EXPECT_THROW(mem_.StoreWord(ro, kBase, 1), TrapException);
  const Capability wo = root_.WithoutPermission(Permission::kLoad);
  EXPECT_THROW(mem_.LoadWord(wo, kBase), TrapException);
}

TEST_F(MemoryTest, UntaggedAuthorityTraps) {
  const Capability fake = Capability::FromWord(kBase);
  EXPECT_THROW(mem_.LoadWord(fake, kBase), TrapException);
}

TEST_F(MemoryTest, SealedAuthorityTraps) {
  const Capability key = Capability::RootSealing().WithAddress(9);
  const Capability sealed = root_.SealedWith(key);
  EXPECT_THROW(mem_.LoadWord(sealed, kBase), TrapException);
}

TEST_F(MemoryTest, MisalignedAccessTraps) {
  EXPECT_THROW(mem_.LoadWord(root_, kBase + 2), TrapException);
  EXPECT_THROW(mem_.StoreCap(root_, kBase + 4, root_), TrapException);
}

TEST_F(MemoryTest, CapabilityRoundTripKeepsTag) {
  const Capability value = root_.WithBounds(kBase + 0x200, 0x40);
  mem_.StoreCap(root_, kBase + 0x100, value);
  EXPECT_TRUE(mem_.TagAt(kBase + 0x100));
  const Capability loaded = mem_.LoadCap(root_, kBase + 0x100);
  EXPECT_TRUE(loaded.tag());
  EXPECT_EQ(loaded.base(), value.base());
  EXPECT_EQ(loaded.top(), value.top());
}

TEST_F(MemoryTest, PartialOverwriteClearsTag) {
  const Capability value = root_.WithBounds(kBase + 0x200, 0x40);
  mem_.StoreCap(root_, kBase + 0x100, value);
  mem_.StoreByte(root_, kBase + 0x103, 0xFF);  // corrupt one byte
  EXPECT_FALSE(mem_.TagAt(kBase + 0x100));
  const Capability loaded = mem_.LoadCap(root_, kBase + 0x100);
  EXPECT_FALSE(loaded.tag());  // forgery impossible: tag gone
}

TEST_F(MemoryTest, IntegerReadOfCapabilitySeesAddress) {
  const Capability value = root_.WithBounds(kBase + 0x280, 0x40);
  mem_.StoreCap(root_, kBase + 0x100, value);
  EXPECT_EQ(mem_.LoadWord(root_, kBase + 0x100), kBase + 0x280);
}

TEST_F(MemoryTest, LoadFilterUntagsRevokedCapability) {
  const Capability value = root_.WithBounds(kBase + 0x400, 0x40);
  mem_.StoreCap(root_, kBase + 0x100, value);
  // "Free" the object: set its revocation bits.
  mem_.revocation().SetRange(kBase + 0x400, 0x40, true);
  const Capability loaded = mem_.LoadCap(root_.WithPermissions(
                                             PermissionSet::ReadWriteGlobal()),
                                         kBase + 0x100);
  EXPECT_FALSE(loaded.tag());
}

TEST_F(MemoryTest, RevokedAuthorityUseTraps) {
  const Capability obj = root_.WithBounds(kBase + 0x400, 0x40)
                             .WithPermissions(PermissionSet::ReadWriteGlobal());
  mem_.revocation().SetRange(kBase + 0x400, 0x40, true);
  EXPECT_THROW(mem_.LoadWord(obj, kBase + 0x400), TrapException);
  // The allocator's revocation-exempt capability still works (§3.1.3).
  EXPECT_NO_THROW(mem_.LoadWord(root_, kBase + 0x400));
}

TEST_F(MemoryTest, DeepImmutabilityAppliedOnLoad) {
  const Capability inner = root_.WithBounds(kBase + 0x600, 0x40)
                               .WithPermissions(PermissionSet::ReadWriteGlobal());
  mem_.StoreCap(root_, kBase + 0x100, inner);
  const Capability lm_less =
      root_.WithPermissions(PermissionSet::ReadWriteGlobal())
          .WithoutPermission(Permission::kLoadMutable);
  const Capability loaded = mem_.LoadCap(lm_less, kBase + 0x100);
  ASSERT_TRUE(loaded.tag());
  EXPECT_FALSE(loaded.permissions().Has(Permission::kStore));
  EXPECT_THROW(mem_.StoreWord(loaded, kBase + 0x600, 1), TrapException);
}

TEST_F(MemoryTest, DeepNoCaptureAppliedOnLoad) {
  const Capability inner = root_.WithBounds(kBase + 0x600, 0x40)
                               .WithPermissions(PermissionSet::ReadWriteGlobal());
  mem_.StoreCap(root_, kBase + 0x100, inner);
  const Capability lg_less =
      root_.WithPermissions(PermissionSet::ReadWriteGlobal())
          .WithoutPermission(Permission::kLoadGlobal);
  const Capability loaded = mem_.LoadCap(lg_less, kBase + 0x100);
  ASSERT_TRUE(loaded.tag());
  EXPECT_FALSE(loaded.permissions().Has(Permission::kGlobal));
  // ... and being local, it cannot be stored through a non-stack authority.
  const Capability globals_like =
      root_.WithPermissions(PermissionSet::ReadWriteGlobal());
  EXPECT_THROW(mem_.StoreCap(globals_like, kBase + 0x108, loaded),
               TrapException);
}

TEST_F(MemoryTest, StoreLocalAllowsStackSpills) {
  const Capability local = root_.WithBounds(kBase + 0x700, 0x40)
                               .WithPermissions(PermissionSet::ReadWriteGlobal())
                               .WithoutPermission(Permission::kGlobal);
  const Capability stack =
      root_.WithBounds(kBase + 0x800, 0x100)
          .WithPermissions(PermissionSet::Stack());
  EXPECT_NO_THROW(mem_.StoreCap(stack, kBase + 0x800, local));
  const Capability reloaded = mem_.LoadCap(stack, kBase + 0x800);
  EXPECT_TRUE(reloaded.tag());
}

TEST_F(MemoryTest, ZeroRangeClearsDataAndTags) {
  mem_.StoreWord(root_, kBase + 0x100, 0xFFFFFFFF);
  mem_.StoreCap(root_, kBase + 0x108, root_);
  mem_.ZeroRange(root_, kBase + 0x100, 0x20);
  EXPECT_EQ(mem_.LoadWord(root_, kBase + 0x100), 0u);
  EXPECT_FALSE(mem_.TagAt(kBase + 0x108));
}

TEST_F(MemoryTest, ZeroRangeCostScalesWithSize) {
  const Cycles c0 = clock_.now();
  mem_.ZeroRange(root_, kBase + 0x1000, 256);
  const Cycles small = clock_.now() - c0;
  const Cycles c1 = clock_.now();
  mem_.ZeroRange(root_, kBase + 0x2000, 2048);
  const Cycles large = clock_.now() - c1;
  EXPECT_GT(large, small * 4);
}

TEST_F(MemoryTest, MmioDispatch) {
  Word reg = 0;
  mem_.AddMmioRegion(0x10000000, 0x100, [&](Address off, bool store, Word v) {
    if (store) {
      reg = v;
      return 0u;
    }
    return reg + off;
  });
  const Capability dev = Capability::RootReadWrite(0x10000000, 0x10000100);
  mem_.StoreWord(dev, 0x10000000, 42);
  EXPECT_EQ(reg, 42u);
  EXPECT_EQ(mem_.LoadWord(dev, 0x10000004), 46u);
}

TEST_F(MemoryTest, MmioRequiresCapabilityAuthority) {
  mem_.AddMmioRegion(0x10000000, 0x100, [](Address, bool, Word) { return 0u; });
  const Capability other_dev = Capability::RootReadWrite(0x10001000, 0x10001100);
  EXPECT_THROW(mem_.LoadWord(other_dev, 0x10000000), TrapException);
}

TEST_F(MemoryTest, BulkReadWrite) {
  const char msg[] = "capability machine";
  mem_.WriteBytes(root_, kBase + 0x300, msg, sizeof(msg));
  char out[sizeof(msg)] = {};
  mem_.ReadBytes(root_, kBase + 0x300, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

// Parameterized sweep: every access size respects bounds exactly.
class EdgeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EdgeSweep, ExactBoundaries) {
  CycleClock clock;
  Memory mem(kBase, kSize, &clock);
  const Capability root = Capability::RootReadWrite(kBase, kBase + kSize);
  const Address len = GetParam();
  const Capability window = root.WithBounds(kBase + 0x1000, len);
  // Last valid byte works; one past traps.
  if (len >= 1) {
    EXPECT_NO_THROW(mem.LoadByte(window, kBase + 0x1000 + len - 1));
  }
  EXPECT_THROW(mem.LoadByte(window, kBase + 0x1000 + len), TrapException);
  if (len >= 4) {
    EXPECT_NO_THROW(mem.LoadWord(window, kBase + 0x1000 + ((len - 4) & ~3u)));
  } else {
    EXPECT_THROW(mem.LoadWord(window, kBase + 0x1000), TrapException);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EdgeSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 64, 4096));

}  // namespace
}  // namespace cheriot

// End-to-end tests for the compartmentalized network stack against the
// simulated world: DHCP bring-up, ARP/ICMP, UDP (DNS, SNTP), TCP with
// retransmission, TLS-lite, MQTT, firewall policy, and the ping-of-death
// micro-reboot case study (§5.3.3).
#include <gtest/gtest.h>

#include "src/net/netstack.h"
#include "src/net/world.h"
#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

using net::kDeviceIp;
using net::kEchoPort;
using net::kMqttTlsPort;
using net::kWorldIp;

struct Shared {
  Word value = 0;
  int status = 999;
  std::vector<Word> words;
  std::string text;
};

// Builds a firmware image with the network stack and one app compartment
// whose entry runs `body`.
class NetTest : public ::testing::Test {
 protected:
  using AppFn = std::function<void(CompartmentCtx&, std::shared_ptr<Shared>)>;

  void RunApp(AppFn body, net::NetStackOptions options = {},
              net::WorldOptions world_options = {},
              Cycles budget = 8'000'000'000ull) {
    machine_ = std::make_unique<Machine>();
    world_ = std::make_unique<net::NetWorld>(*machine_, world_options);
    ImageBuilder b("net-test");
    auto shared = shared_;
    b.Compartment("app")
        .Globals(64)
        .AllocCap("app_quota", 32 * 1024)
        .Export("main", [body, shared](CompartmentCtx& ctx,
                                       const std::vector<Capability>&) {
          body(ctx, shared);
          return StatusCap(Status::kOk);
        });
    net::UseNetwork(b, "app", options);
    sync::UseAllocator(b, "app");
    sync::UseScheduler(b, "app");
    b.Thread("app", 2, 16 * 1024, 12, "app.main");
    system_ = std::make_unique<System>(*machine_, b.Build());
    system_->Boot();
    done_ = false;
    auto* done = &done_;
    // The net worker never exits; run until the app thread finishes.
    system_->RunUntil(
        [this] {
          return system_->threads()[0].state == GuestThread::State::kExited;
        },
        budget);
  }

  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<net::NetWorld> world_;
  std::unique_ptr<System> system_;
  bool done_ = false;
};

TEST_F(NetTest, DhcpBringUp) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    shared->status = static_cast<int32_t>(
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)}).word());
    shared->value = ctx.Call("tcpip.ifconfig", {}).word();
  });
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kOk);
  EXPECT_EQ(shared_->value, kDeviceIp);
  EXPECT_GE(world_->dhcp_acks_sent(), 1u);
}

TEST_F(NetTest, PingWorldAndBePinged) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    shared->status = static_cast<int32_t>(
        ctx.Call("tcpip.ping", {WordCap(kWorldIp), WordCap(66'000'000)})
            .word());
    // Stay alive long enough to answer the world's pings.
    ctx.SleepCycles(33'000'00);
  });
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kOk);
  // Now the reverse direction: world pings the device.
  world_->SendPing(1, 1);
  // The worker thread is still running; give it time.
  system_->RunUntil([&] { return world_->ping_replies_seen() > 0; },
                    2'000'000'000ull);
  EXPECT_GE(world_->ping_replies_seen(), 1u);
}

TEST_F(NetTest, TcpEchoRoundTrip) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    const Capability q = ctx.SealedImport("app_quota");
    const Capability sock = ctx.Call(
        "tcpip.socket_connect_tcp",
        {q, WordCap(kWorldIp), WordCap(kEchoPort), WordCap(330'000'000)});
    if (!sock.tag()) {
      shared->status = static_cast<int32_t>(sock.word());
      return;
    }
    const char msg[] = "capability machines echo";
    auto buf = ctx.AllocStack(64);
    ctx.WriteBytes(buf.cap(), 0, msg, sizeof(msg));
    shared->status = static_cast<int32_t>(
        ctx.Call("tcpip.socket_send", {sock, buf.cap(), WordCap(sizeof(msg))})
            .word());
    auto rx = ctx.AllocStack(64);
    const Capability n = ctx.Call(
        "tcpip.socket_recv",
        {sock, rx.cap(), WordCap(64), WordCap(330'000'000)});
    if (static_cast<int32_t>(n.word()) > 0) {
      std::vector<char> text(n.word());
      ctx.ReadBytes(rx.cap(), 0, text.data(), n.word());
      shared->text.assign(text.data(), text.size() - 1);  // strip NUL
    }
    ctx.Call("tcpip.socket_close", {q, sock});
  });
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kOk);
  EXPECT_EQ(shared_->text, "capability machines echo");
  EXPECT_GE(world_->tcp_connections_accepted(), 1u);
}

TEST_F(NetTest, TcpSurvivesSegmentLoss) {
  net::WorldOptions world_options;
  world_options.drop_every_nth_tcp = 3;  // drop every third data segment
  RunApp(
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        const Capability q = ctx.SealedImport("app_quota");
        const Capability sock = ctx.Call(
            "tcpip.socket_connect_tcp",
            {q, WordCap(kWorldIp), WordCap(kEchoPort), WordCap(330'000'000)});
        if (!sock.tag()) {
          shared->status = -99;
          return;
        }
        int ok = 0;
        for (int i = 0; i < 6; ++i) {
          auto buf = ctx.AllocStack(32);
          ctx.StoreWord(buf.cap(), 0, 0xAB000000u + i);
          const auto s = static_cast<int32_t>(
              ctx.Call("tcpip.socket_send", {sock, buf.cap(), WordCap(4)})
                  .word());
          if (s == 0) {
            ++ok;
          }
        }
        shared->value = ok;
        shared->status = 0;
      },
      {}, world_options, 20'000'000'000ull);
  EXPECT_EQ(shared_->status, 0);
  EXPECT_EQ(shared_->value, 6u);  // all segments delivered despite drops
}

TEST_F(NetTest, TcpLossInjectionIsPerConnection) {
  // Two interleaved connections, two data segments each. A global drop
  // counter (the old bug) would hit N=3 on the second connection's traffic;
  // the per-connection counters never reach 3, so nothing may be dropped.
  net::WorldOptions world_options;
  world_options.drop_every_nth_tcp = 3;
  RunApp(
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        const Capability q = ctx.SealedImport("app_quota");
        const Capability a = ctx.Call(
            "tcpip.socket_connect_tcp",
            {q, WordCap(kWorldIp), WordCap(kEchoPort), WordCap(330'000'000)});
        const Capability b = ctx.Call(
            "tcpip.socket_connect_tcp",
            {q, WordCap(kWorldIp), WordCap(kEchoPort), WordCap(330'000'000)});
        if (!a.tag() || !b.tag()) {
          shared->status = -99;
          return;
        }
        int ok = 0;
        for (int round = 0; round < 2; ++round) {
          for (const Capability& sock : {a, b}) {
            auto buf = ctx.AllocStack(16);
            ctx.StoreWord(buf.cap(), 0, 0xCD000000u + round);
            if (static_cast<int32_t>(
                    ctx.Call("tcpip.socket_send",
                             {sock, buf.cap(), WordCap(4)})
                        .word()) == 0) {
              ++ok;
            }
          }
        }
        shared->value = ok;
        shared->status = 0;
      },
      {}, world_options, 20'000'000'000ull);
  EXPECT_EQ(shared_->status, 0);
  EXPECT_EQ(shared_->value, 4u);
  EXPECT_EQ(world_->tcp_segments_dropped(), 0u);
}

TEST_F(NetTest, TcpLossInjectionDropsExactlyTheNth) {
  // One connection, three data segments, N=3: exactly the third segment is
  // dropped (and recovered by retransmission, which re-counts — the retry is
  // segment 4, so it passes).
  net::WorldOptions world_options;
  world_options.drop_every_nth_tcp = 3;
  RunApp(
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        const Capability q = ctx.SealedImport("app_quota");
        const Capability sock = ctx.Call(
            "tcpip.socket_connect_tcp",
            {q, WordCap(kWorldIp), WordCap(kEchoPort), WordCap(330'000'000)});
        if (!sock.tag()) {
          shared->status = -99;
          return;
        }
        int ok = 0;
        for (int i = 0; i < 3; ++i) {
          auto buf = ctx.AllocStack(16);
          ctx.StoreWord(buf.cap(), 0, 0xEF000000u + i);
          if (static_cast<int32_t>(
                  ctx.Call("tcpip.socket_send", {sock, buf.cap(), WordCap(4)})
                      .word()) == 0) {
            ++ok;
          }
        }
        shared->value = ok;
        shared->status = 0;
      },
      {}, world_options, 20'000'000'000ull);
  EXPECT_EQ(shared_->status, 0);
  EXPECT_EQ(shared_->value, 3u);
  EXPECT_EQ(world_->tcp_segments_dropped(), 1u);
}

TEST_F(NetTest, DnsResolvesKnownName) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    const char name[] = "mqtt.example.com";
    auto buf = ctx.AllocStack(32);
    ctx.WriteBytes(buf.cap(), 0, name, sizeof(name) - 1);
    shared->value =
        ctx.Call("dns.resolve", {buf.cap(), WordCap(sizeof(name) - 1)}).word();
    // Unknown names return 0.
    const char bogus[] = "nope.example.com";
    ctx.WriteBytes(buf.cap(), 0, bogus, sizeof(bogus) - 1);
    shared->words.push_back(
        ctx.Call("dns.resolve", {buf.cap(), WordCap(sizeof(bogus) - 1)})
            .word());
  });
  EXPECT_EQ(shared_->value, kWorldIp);
  ASSERT_EQ(shared_->words.size(), 1u);
  EXPECT_EQ(shared_->words[0], 0u);
}

TEST_F(NetTest, SntpSyncProvidesWallClock) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    shared->status = static_cast<int32_t>(
        ctx.Call("sntp.sync", {WordCap(330'000'000)}).word());
    shared->value = ctx.Call("sntp.now", {}).word();
  });
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kOk);
  EXPECT_GE(shared_->value, 1'751'500'800u);
}

TEST_F(NetTest, MqttOverTlsEndToEnd) {
  RunApp(
      [](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        const Capability q = ctx.SealedImport("app_quota");
        auto id = ctx.AllocStack(16);
        ctx.WriteBytes(id.cap(), 0, "dev42", 5);
        const Capability session =
            ctx.Call("mqtt.connect", {q, WordCap(kWorldIp),
                                      WordCap(kMqttTlsPort), id.cap(),
                                      WordCap(5)});
        if (!session.tag()) {
          shared->status = static_cast<int32_t>(session.word());
          return;
        }
        auto topic = ctx.AllocStack(16);
        ctx.WriteBytes(topic.cap(), 0, "alerts", 6);
        shared->status = static_cast<int32_t>(
            ctx.Call("mqtt.subscribe", {session, topic.cap(), WordCap(6)})
                .word());
        // Publish something to the broker too.
        auto payload = ctx.AllocStack(16);
        ctx.WriteBytes(payload.cap(), 0, "hi", 2);
        ctx.Call("mqtt.publish", {session, topic.cap(), WordCap(6),
                                  payload.cap(), WordCap(2)});
        // Wait for a notification pushed by the broker.
        auto out = ctx.AllocStack(128);
        const Capability n = ctx.Call(
            "mqtt.poll",
            {session, out.cap(), WordCap(128), WordCap(1'650'000'000)});
        if (static_cast<int32_t>(n.word()) > 0) {
          std::vector<char> text(n.word());
          ctx.ReadBytes(out.cap(), 0, text.data(), n.word());
          shared->text.assign(text.begin(), text.end());
        }
        ctx.Call("mqtt.disconnect", {q, session});
      },
      {}, {}, 20'000'000'000ull);
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kOk);
  EXPECT_GE(world_->mqtt_publishes_received(), 1u);
  ASSERT_FALSE(world_->mqtt_subscriptions().empty());
  EXPECT_EQ(world_->mqtt_subscriptions()[0], "alerts");
  // The broker's publish arrives while we poll; the world pushes one when
  // we subscribe? No: push one explicitly mid-run is racy here, so this
  // test seeds it through the broker publish we sent ourselves.
  (void)shared_;
}

TEST_F(NetTest, BrokerPushReachesSubscriber) {
  // Like the above, but the broker pushes the notification (Fig. 7 flow).
  machine_ = std::make_unique<Machine>();
  world_ = std::make_unique<net::NetWorld>(*machine_);
  auto shared = shared_;
  ImageBuilder b("push");
  b.Compartment("app")
      .Globals(64)
      .AllocCap("app_quota", 32 * 1024)
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        const Capability q = ctx.SealedImport("app_quota");
        auto id = ctx.AllocStack(8);
        ctx.WriteBytes(id.cap(), 0, "dev", 3);
        const Capability session = ctx.Call(
            "mqtt.connect",
            {q, WordCap(kWorldIp), WordCap(kMqttTlsPort), id.cap(), WordCap(3)});
        if (!session.tag()) {
          shared->status = -1;
          return StatusCap(Status::kOk);
        }
        auto topic = ctx.AllocStack(8);
        ctx.WriteBytes(topic.cap(), 0, "leds", 4);
        ctx.Call("mqtt.subscribe", {session, topic.cap(), WordCap(4)});
        shared->status = 1;  // signal: subscribed
        auto out = ctx.AllocStack(128);
        const Capability n = ctx.Call(
            "mqtt.poll",
            {session, out.cap(), WordCap(128), WordCap(~0u)});
        if (static_cast<int32_t>(n.word()) > 0) {
          std::vector<char> text(n.word());
          ctx.ReadBytes(out.cap(), 0, text.data(), n.word());
          shared->text.assign(text.begin(), text.end());
        }
        return StatusCap(Status::kOk);
      });
  net::UseNetwork(b, "app");
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("app", 2, 16 * 1024, 12, "app.main");
  system_ = std::make_unique<System>(*machine_, b.Build());
  system_->Boot();
  ASSERT_TRUE(system_->RunUntil([&] { return shared->status == 1; },
                                20'000'000'000ull));
  world_->PublishMqtt("leds", {'o', 'n'});
  system_->RunUntil([&] { return !shared->text.empty(); }, 4'000'000'000ull);
  // Payload format: [topic_len]["leds"]["on"].
  ASSERT_GE(shared->text.size(), 7u);
  EXPECT_EQ(shared->text[0], 4);
  EXPECT_EQ(shared->text.substr(1, 4), "leds");
  EXPECT_EQ(shared->text.substr(5, 2), "on");
}

TEST_F(NetTest, HardenedParserDropsPingOfDeath) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    shared->status = 1;
    ctx.SleepCycles(33'000'000);  // 1 s: absorb the attack
    // The stack must still be functional afterwards.
    shared->value = static_cast<Word>(static_cast<int32_t>(
        ctx.Call("tcpip.ping", {WordCap(kWorldIp), WordCap(330'000'000)})
            .word()));
  });
  // Inject the malformed packet while the app sleeps: re-run a little.
  // (RunApp returned because the app exited; so instead assert stack health
  // through the reboot counter: no reboot must have happened.)
  world_->SendPingOfDeath();
  system_->RunUntil([] { return false; }, 100'000'000ull);
  EXPECT_EQ(system_->boot().FindCompartment("tcpip")->reboot_count, 0u);
}

TEST_F(NetTest, PingOfDeathTriggersMicroReboot) {
  machine_ = std::make_unique<Machine>();
  world_ = std::make_unique<net::NetWorld>(*machine_);
  auto shared = shared_;
  ImageBuilder b("pod");
  net::NetStackOptions options;
  options.ping_of_death_bug = true;
  b.Compartment("app")
      .Globals(64)
      .AllocCap("app_quota", 32 * 1024)
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        shared->status = 1;  // network up
        // Wait out the attack + reboot, then verify recovery.
        while (shared->value == 0) {
          ctx.SleepCycles(33'000'000);
        }
        const auto again = static_cast<int32_t>(
            ctx.Call("tcpip.wait_ready", {WordCap(~0u)}).word());
        const auto ping = static_cast<int32_t>(
            ctx.Call("tcpip.ping", {WordCap(kWorldIp), WordCap(330'000'000)})
                .word());
        shared->words = {static_cast<Word>(again), static_cast<Word>(ping)};
        return StatusCap(Status::kOk);
      });
  net::UseNetwork(b, "app", options);
  sync::UseAllocator(b, "app");
  sync::UseScheduler(b, "app");
  b.Thread("app", 2, 16 * 1024, 12, "app.main");
  system_ = std::make_unique<System>(*machine_, b.Build());
  system_->Boot();
  ASSERT_TRUE(system_->RunUntil([&] { return shared->status == 1; },
                                20'000'000'000ull));
  world_->SendPingOfDeath();
  ASSERT_TRUE(system_->RunUntil(
      [&] {
        return system_->boot().FindCompartment("tcpip")->reboot_count > 0;
      },
      4'000'000'000ull));
  shared->value = 1;  // release the app to verify recovery
  ASSERT_TRUE(
      system_->RunUntil([&] { return shared->words.size() == 2; },
                        30'000'000'000ull));
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->words[0])),
            Status::kOk);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->words[1])),
            Status::kOk);
}

TEST_F(NetTest, FirewallBlocksUnapprovedPort) {
  RunApp([](CompartmentCtx& ctx, std::shared_ptr<Shared> shared) {
    ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
    const Capability q = ctx.SealedImport("app_quota");
    // Port 9999 is not in the firewall's allow list: the SYN never leaves.
    const Capability sock = ctx.Call(
        "tcpip.socket_connect_tcp",
        {q, WordCap(kWorldIp), WordCap(9999), WordCap(33'000'000)});
    shared->status = static_cast<int32_t>(sock.word());
    shared->value = sock.tag() ? 1 : 0;
  });
  EXPECT_EQ(shared_->value, 0u);
  EXPECT_EQ(static_cast<Status>(shared_->status), Status::kTimedOut);
  EXPECT_EQ(world_->tcp_connections_accepted(), 0u);
}

}  // namespace
}  // namespace cheriot

// Deterministic snapshot/restore acceptance tests (DESIGN.md §10).
//
// The correctness contract under test: run a board N cycles, snapshot, run
// on to M; restore the snapshot into a second board and run it to M — the
// fingerprints are bit-identical and the trace/health exports byte-identical,
// for every shipped image and for fleets at 1/2/4 host workers. On top of
// that: the serialized form is byte-stable (two snapshots of the same state
// are identical), cold post-boot snapshots restore without replay (the
// warm-boot fixture), restore re-binds every host-side handle, a seeded
// random scenario survives snapshot at a random cycle, and crash-scene
// capture costs zero guest cycles.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/base/costs.h"
#include "src/health/forensics.h"
#include "src/health/monitor.h"
#include "src/rtos.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"
#include "src/snap/snapshot.h"
#include "src/sync/sync.h"
#include "src/trace/export.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

using sim::Board;
using sim::Fleet;
using sim::FleetOptions;
using tools::FindLintTarget;
using tools::LintTargets;

constexpr Cycles kSnapAt = 2'000'000;
constexpr Cycles kHorizon = 4'000'000;

FirmwareImage BuildImage(const std::string& name) {
  const tools::LintTarget* t = FindLintTarget(name);
  EXPECT_NE(t, nullptr) << name;
  return t->build();
}

// --- The headline contract, over every shipped image ----------------------

TEST(SnapshotTest, RoundTripFingerprintEqualityOnEveryShippedImage) {
  for (const auto& target : LintTargets()) {
    Board a(target.build(), {});
    a.Boot();
    a.StepTo(kSnapAt);
    std::vector<uint8_t> blob;
    a.Snapshot(blob);
    a.StepTo(kHorizon);

    auto b = Board::Restore(blob, target.build());
    b->StepTo(kHorizon);
    EXPECT_EQ(a.fingerprint(), b->fingerprint()) << target.name;
  }
}

TEST(SnapshotTest, TwoSnapshotsOfTheSameStateAreByteIdentical) {
  Board board(BuildImage("quickstart"), {});
  board.Boot();
  board.StepTo(kSnapAt);
  std::vector<uint8_t> first;
  std::vector<uint8_t> second;
  board.Snapshot(first);
  board.Snapshot(second);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(SnapshotTest, RestoredBoardSnapshotsBackToTheOriginalBytes) {
  Board a(BuildImage("producer-consumer"), {});
  a.Boot();
  a.StepTo(kSnapAt);
  std::vector<uint8_t> blob;
  a.Snapshot(blob);

  auto b = Board::Restore(blob, BuildImage("producer-consumer"));
  std::vector<uint8_t> again;
  b->Snapshot(again);
  EXPECT_EQ(blob, again);
}

// --- Host-handle rebinding ------------------------------------------------

TEST(SnapshotTest, RestoreRebindsTheRawClockHookToTheNewMachine) {
  Board a(BuildImage("quickstart"), {});
  a.Boot();
  a.StepTo(kSnapAt);
  std::vector<uint8_t> blob;
  a.Snapshot(blob);

  auto b = Board::Restore(blob, BuildImage("quickstart"));
  // The PR 1 raw-pointer clock hook must point at the restored machine, not
  // dangle into the donor (or anywhere else).
  EXPECT_EQ(b->machine().clock().raw_hook_ctx(), &b->machine());
  EXPECT_NE(b->machine().clock().raw_hook_ctx(), &a.machine());
  EXPECT_NE(b->machine().clock().raw_hook(), nullptr);
  // And it must actually fire: advancing the restored board drives its own
  // revoker/timer, landing on the same fingerprint as the donor.
  a.StepTo(kHorizon);
  b->StepTo(kHorizon);
  EXPECT_EQ(a.fingerprint(), b->fingerprint());
}

// --- Cold restore / warm-boot fixture -------------------------------------

TEST(SnapshotTest, PostBootSnapshotIsColdRestorable) {
  Board a(BuildImage("quickstart"), {});
  a.Boot();
  std::vector<uint8_t> blob;
  a.Snapshot(blob);

  const snap::Container c = snap::Container::Parse(blob);
  EXPECT_TRUE(c.flags & snap::kColdRestorable);

  auto b = Board::Restore(blob, BuildImage("quickstart"));
  a.StepTo(kSnapAt);
  b->StepTo(kSnapAt);
  EXPECT_EQ(a.fingerprint(), b->fingerprint());
}

TEST(SnapshotTest, MidRunSnapshotIsNotColdRestorable) {
  Board a(BuildImage("quickstart"), {});
  a.Boot();
  a.StepTo(100'000);
  std::vector<uint8_t> blob;
  a.Snapshot(blob);
  const snap::Container c = snap::Container::Parse(blob);
  EXPECT_FALSE(c.flags & snap::kColdRestorable);
  EXPECT_TRUE(c.flags & snap::kHasReplayLog);
}

// Warm-boot fixture: the post-loader state of each image is snapshotted once
// per process and every test that wants a booted board restores it instead
// of re-running the loader. (EXPERIMENTS.md reports the ctest wall-time
// delta this buys.)
class WarmBootTest : public ::testing::Test {
 protected:
  static const std::vector<uint8_t>& BootBlob(const std::string& name) {
    static auto* cache = new std::map<std::string, std::vector<uint8_t>>();
    auto it = cache->find(name);
    if (it == cache->end()) {
      Board board(BuildImage(name), {});
      board.Boot();
      std::vector<uint8_t> blob;
      board.Snapshot(blob);
      it = cache->emplace(name, std::move(blob)).first;
    }
    return it->second;
  }

  static std::unique_ptr<Board> WarmBoard(const std::string& name) {
    return Board::Restore(BootBlob(name), BuildImage(name));
  }
};

TEST_F(WarmBootTest, WarmBootMatchesColdBootOnEveryShippedImage) {
  for (const auto& target : LintTargets()) {
    Board cold(target.build(), {});
    cold.Boot();
    auto warm = WarmBoard(target.name);
    cold.StepTo(kSnapAt);
    warm->StepTo(kSnapAt);
    EXPECT_EQ(cold.fingerprint(), warm->fingerprint()) << target.name;
  }
}

TEST_F(WarmBootTest, WarmBootBlobIsReusable) {
  // The cached blob restores any number of independent boards.
  auto first = WarmBoard("producer-consumer");
  auto second = WarmBoard("producer-consumer");
  first->StepTo(kSnapAt);
  second->StepTo(kSnapAt);
  EXPECT_EQ(first->fingerprint(), second->fingerprint());
}

// --- Trace / health exports survive a restore byte-identically ------------

TEST(SnapshotTest, TraceAndHealthExportsAreByteIdenticalAfterRestore) {
  Board a(BuildImage("iot-mqtt-app"), {});
  a.EnableTrace();
  a.EnableForensics();
  a.Boot();
  a.StepTo(kSnapAt);
  std::vector<uint8_t> blob;
  a.Snapshot(blob);

  const snap::Container c = snap::Container::Parse(blob);
  EXPECT_TRUE(c.flags & snap::kHasTrace);
  EXPECT_TRUE(c.flags & snap::kHasForensics);

  auto b = Board::Restore(blob, BuildImage("iot-mqtt-app"));
  EXPECT_EQ(trace::ChromeTrace(*a.trace_recorder()).Dump(2),
            trace::ChromeTrace(*b->trace_recorder()).Dump(2));
  EXPECT_EQ(health::HealthReport(a).Dump(2),
            health::HealthReport(*b).Dump(2));

  // And they stay in lockstep when both keep running.
  a.StepTo(kHorizon);
  b->StepTo(kHorizon);
  EXPECT_EQ(trace::ChromeTrace(*a.trace_recorder()).Dump(2),
            trace::ChromeTrace(*b->trace_recorder()).Dump(2));
  EXPECT_EQ(health::HealthReport(a).Dump(2),
            health::HealthReport(*b).Dump(2));
}

// --- Fleet snapshots -------------------------------------------------------

std::unique_ptr<Fleet> MakeFleet(int boards, int host_threads) {
  FleetOptions options;
  options.host_threads = host_threads;
  auto fleet = std::make_unique<Fleet>(options);
  for (int i = 0; i < boards; ++i) {
    sim::FleetAppOptions app;
    app.board_index = i;
    fleet->AddBoard(
        sim::BuildFleetAppImage(std::make_shared<sim::FleetAppState>(), app));
  }
  fleet->Boot();
  return fleet;
}

Fleet::ImageResolver FleetImages() {
  return [](int i) {
    sim::FleetAppOptions app;
    app.board_index = i;
    return sim::BuildFleetAppImage(std::make_shared<sim::FleetAppState>(),
                                   app);
  };
}

TEST(SnapshotTest, FleetSnapshotIsByteIdenticalAcrossWorkerCounts) {
  // host_threads is a pure host-performance knob, so snapshots of the same
  // logical state taken at 1, 2 and 4 workers must byte-match.
  std::vector<uint8_t> reference;
  for (int workers : {1, 2, 4}) {
    auto fleet = MakeFleet(4, workers);
    fleet->Run(cost::kCoreHz);  // one simulated second
    fleet->PublishMqtt("snap/ctrl", {0x01, 0x02, 0x03});
    fleet->Run(cost::kCoreHz / 4);
    std::vector<uint8_t> blob;
    fleet->Snapshot(blob);
    if (reference.empty()) {
      reference = std::move(blob);
    } else {
      EXPECT_EQ(reference, blob) << workers << " workers";
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SnapshotTest, FleetRoundTripAtEveryWorkerCount) {
  auto original = MakeFleet(4, /*host_threads=*/1);
  original->Run(cost::kCoreHz);
  original->PublishMqtt("snap/ctrl", {0xAA, 0xBB});
  original->Run(cost::kCoreHz / 4);
  std::vector<uint8_t> blob;
  original->Snapshot(blob);
  original->Run(cost::kCoreHz / 2);
  const auto expect = original->Fingerprints();

  for (int workers : {1, 2, 4}) {
    auto restored = Fleet::Restore(blob, FleetImages(), workers);
    EXPECT_EQ(restored->Now(), original->Now() - cost::kCoreHz / 2);
    restored->Run(cost::kCoreHz / 2);
    EXPECT_EQ(restored->Fingerprints(), expect) << workers << " workers";
  }
}

// --- Fuzz smoke: snapshot at a random cycle in a random scenario ----------

TEST(SnapshotTest, FuzzSmokeRandomScenarioSurvivesSnapshotAtRandomCycle) {
  struct FuzzOp {
    Cycles target = 0;           // StepTo target
    bool inject = false;         // also inject a frame after stepping
    Cycles inject_delay = 0;     // due = Now() + delay
    std::vector<uint8_t> frame;  // random bytes
  };

  std::mt19937 rng(0xC4E1107u);
  std::vector<FuzzOp> ops;
  Cycles target = 50'000;
  for (int i = 0; i < 24; ++i) {
    FuzzOp op;
    target += 10'000 + rng() % 400'000;
    op.target = target;
    if (rng() % 3 == 0) {
      op.inject = true;
      op.inject_delay = 100 + rng() % 5'000;
      op.frame.resize(14 + rng() % 50);
      for (auto& byte : op.frame) {
        byte = static_cast<uint8_t>(rng());
      }
    }
    ops.push_back(std::move(op));
  }
  const size_t snap_index = 8 + rng() % 8;  // snapshot mid-scenario

  auto apply = [](Board& board, const FuzzOp& op) {
    board.StepTo(op.target);
    if (op.inject) {
      board.InjectAt(board.Now() + op.inject_delay, op.frame);
    }
  };

  Board a(BuildImage("fleet-node"), {});
  a.Boot();
  for (size_t i = 0; i < snap_index; ++i) {
    apply(a, ops[i]);
  }
  std::vector<uint8_t> blob;
  a.Snapshot(blob);

  auto b = Board::Restore(blob, BuildImage("fleet-node"));
  for (size_t i = snap_index; i < ops.size(); ++i) {
    apply(a, ops[i]);
    apply(*b, ops[i]);
  }
  EXPECT_EQ(a.fingerprint(), b->fingerprint());
}

// --- Crash scenes ----------------------------------------------------------

// Use-after-free with no handler: every call files a crash record, so scene
// capture has something to photograph.
FirmwareImage FaultingImage() {
  ImageBuilder b("snap-fault");
  b.Compartment("app")
      .Globals(32)
      .AllocCap("q", 8192)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        const Capability p = ctx.HeapAllocate(q, 64);
        ctx.StoreWord(p, 0, 42);
        ctx.HeapFree(q, p);
        ctx.LoadWord(p, 0);  // traps: revoked capability, no handler
        return StatusCap(Status::kOk);
      });
  sync::UseAllocator(b, "app");
  b.Thread("t", 1, 8192, 8, "app.main");
  return b.Build();
}

TEST(SnapshotTest, CrashSceneCaptureCostsZeroGuestCycles) {
  auto run = [](bool scenes) {
    Board board(FaultingImage(), {});
    health::ForensicsOptions fopts;
    fopts.capture_crash_scene = scenes;
    board.EnableForensics(fopts);
    board.Boot();
    board.StepTo(kSnapAt);
    return std::make_pair(board.fingerprint(),
                          board.forensics_recorder()->Records());
  };
  const auto with_scenes = run(true);
  const auto without = run(false);
  EXPECT_EQ(with_scenes.first, without.first);

  ASSERT_FALSE(with_scenes.second.empty());
  bool any_scene = false;
  for (const auto& rec : with_scenes.second) {
    if (rec.scene.empty()) {
      continue;
    }
    any_scene = true;
    // The scene is a parseable machine-state container with the memory image
    // and kernel sections aboard.
    const snap::Container c = snap::Container::Parse(rec.scene);
    EXPECT_EQ(c.kind, snap::kScene);
    EXPECT_TRUE(c.Has(snap::kSecMemory));
    EXPECT_TRUE(c.Has(snap::kSecKernel));
  }
  EXPECT_TRUE(any_scene);
  for (const auto& rec : without.second) {
    EXPECT_TRUE(rec.scene.empty());
  }
}

TEST(SnapshotTest, SceneRetentionIsBoundedByTheConfiguredLimit) {
  Board board(FaultingImage(), {});
  health::ForensicsOptions fopts;
  fopts.capture_crash_scene = true;
  fopts.scene_limit = 1;
  board.EnableForensics(fopts);
  board.Boot();
  board.StepTo(kSnapAt);
  size_t scenes = 0;
  for (const auto& rec : board.forensics_recorder()->Records()) {
    if (!rec.scene.empty()) {
      ++scenes;
    }
  }
  EXPECT_LE(scenes, 1u);
}

// --- Failure modes ---------------------------------------------------------

TEST(SnapshotTest, RestoreRejectsGarbageAndTruncation) {
  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_THROW(Board::Restore(garbage, BuildImage("quickstart")),
               snap::SnapshotError);

  Board a(BuildImage("quickstart"), {});
  a.Boot();
  std::vector<uint8_t> blob;
  a.Snapshot(blob);
  std::vector<uint8_t> truncated(blob.begin(),
                                 blob.begin() + blob.size() / 2);
  EXPECT_THROW(Board::Restore(truncated, BuildImage("quickstart")),
               snap::SnapshotError);
}

TEST(SnapshotTest, BoardRestoreRejectsFleetSnapshots) {
  auto fleet = MakeFleet(2, 1);
  fleet->Run(cost::kCoreHz / 8);
  std::vector<uint8_t> blob;
  fleet->Snapshot(blob);
  EXPECT_THROW(Board::Restore(blob, BuildImage("fleet-node")),
               snap::SnapshotError);
}

}  // namespace
}  // namespace cheriot

// Integration tests for the running system: compartment calls and isolation,
// trap handling and error-handler policies, threads, futexes, the allocator
// with quotas/quarantine/claims, the token API and micro-reboots.
#include <gtest/gtest.h>

#include "src/rtos.h"

namespace cheriot {
namespace {

// Harness: builds, boots and runs a firmware image, recording results into
// plain ints via compartment state.
struct Shared {
  int observed = 0;
  Word value = 0;
  Capability cap;
  std::vector<int> order;
};

class KernelTest : public ::testing::Test {
 protected:
  Machine machine_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

// current_thread() outside guest context (current_thread_id_ == -1) must
// fail loudly instead of silently indexing threads_[-1]. The check is
// CHERIOT_CHECK, so it holds in release builds too.
TEST(SystemGuardDeathTest, CurrentThreadOutsideGuestContextAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Machine machine;
  ImageBuilder b("guard");
  b.Compartment("app").Export(
      "main", [](CompartmentCtx&, const std::vector<Capability>&) {
        return StatusCap(Status::kOk);
      });
  b.Thread("app", 1, 4 * 1024, 4, "app.main");
  System sys(machine, b.Build());
  EXPECT_DEATH(sys.current_thread(), "no current guest thread");
}

TEST_F(KernelTest, CompartmentCallPassesArgsAndReturns) {
  ImageBuilder b("call");
  auto shared = shared_;
  b.Compartment("callee").Export(
      "add", [](CompartmentCtx&, const std::vector<Capability>& args) {
        return WordCap(args[0].word() + args[1].word());
      });
  b.Compartment("caller")
      .ImportCompartment("callee.add")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->value =
            ctx.Call("callee.add", {WordCap(20), WordCap(22)}).word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "caller.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(), System::RunResult::kAllExited);
  EXPECT_EQ(shared->value, 42u);
}

TEST_F(KernelTest, UndeclaredCallTargetIsUnreachable) {
  // Cross-compartment CFI (§3.2.5): no import, no call.
  auto shared = shared_;
  ImageBuilder b("cfi");
  b.Compartment("callee").Export(
      "secret", [shared](CompartmentCtx&, const std::vector<Capability>&) {
        shared->observed = 1;  // must never run
        return Capability();
      });
  b.Compartment("caller").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability r = ctx.Call("callee.secret", {});
        shared->value = r.word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "caller.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 0);  // callee never executed
}

TEST_F(KernelTest, CompartmentGlobalsAreIsolated) {
  auto shared = shared_;
  ImageBuilder b("iso");
  b.Compartment("victim").Globals(64).Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.StoreWord(ctx.globals(), 0, 0xC0FFEE);
        shared->cap = ctx.globals();  // leak the address (not the authority)
        return StatusCap(Status::kOk);
      });
  b.Compartment("attacker")
      .ImportCompartment("victim.main")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.Call("victim.main", {});
        // Forge an integer "pointer" at the victim's globals: the access
        // must trap (no capability, no access).
        const Capability forged = Capability::FromWord(shared->cap.base());
        auto info = ctx.Try([&] { ctx.LoadWord(forged, 0); });
        shared->observed = info.has_value() ? 1 : 2;
        // Own globals still work fine.
        ctx.StoreWord(ctx.globals(), 0, 7);
        shared->value = ctx.LoadWord(ctx.globals(), 0);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "attacker.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 1);  // trapped
  EXPECT_EQ(shared->value, 7u);
}

TEST_F(KernelTest, FaultWithoutHandlerUnwindsToCaller) {
  auto shared = shared_;
  ImageBuilder b("unwind");
  b.Compartment("buggy").Export(
      "crash", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.LoadWord(Capability::FromWord(0x1234), 0);  // traps
        return StatusCap(Status::kOk);                  // unreachable
      });
  b.Compartment("caller")
      .ImportCompartment("buggy.crash")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability r = ctx.Call("buggy.crash", {});
        shared->value = r.word();
        shared->observed = 1;  // caller survived the callee fault
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "caller.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 1);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kCompartmentFail);
}

TEST_F(KernelTest, GlobalHandlerCanResumeWithCorrectedCapability) {
  auto shared = shared_;
  ImageBuilder b("resume");
  b.Compartment("fixer")
      .Globals(64)
      .ErrorHandler([shared](CompartmentCtx& ctx, TrapInfo& info) {
        shared->observed++;
        // Install a corrected authority (the compartment's own globals).
        info.regs.a[0] = ctx.globals();
        return ErrorRecovery::kInstallContext;
      })
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.StoreWord(ctx.globals(), 0, 99);
        // Fault: bogus pointer. The handler redirects to globals.
        shared->value = ctx.LoadWord(Capability::FromWord(0xBAD), 0);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "fixer.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(), System::RunResult::kAllExited);
  EXPECT_EQ(shared->observed, 1);
  EXPECT_EQ(shared->value, 99u);
}

TEST_F(KernelTest, ScopedHandlerWinsOverGlobal) {
  auto shared = shared_;
  ImageBuilder b("scoped");
  b.Compartment("c")
      .ErrorHandler([shared](CompartmentCtx&, TrapInfo&) {
        shared->observed = 100;  // must not run
        return ErrorRecovery::kForceUnwind;
      })
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        auto info = ctx.Try([&] { ctx.LoadWord(Capability::FromWord(1), 0); });
        shared->observed = info.has_value() ? 1 : 2;
        if (info) {
          shared->value = static_cast<Word>(info->cause);
        }
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "c.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 1);
  EXPECT_EQ(static_cast<TrapCode>(shared->value), TrapCode::kTagViolation);
}

TEST_F(KernelTest, StackRequirementEnforced) {
  auto shared = shared_;
  ImageBuilder b("stack");
  b.Compartment("callee").Export(
      "deep", [shared](CompartmentCtx&, const std::vector<Capability>&) {
        shared->observed = 99;  // must not run with a tiny stack
        return Capability();
      },
      /*min_stack_bytes=*/4096);
  b.Compartment("caller")
      .ImportCompartment("callee.deep")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability r = ctx.Call("callee.deep", {});
        shared->value = r.word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 1024, 4, "caller.main");  // 1 KiB stack < 4 KiB required
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 0);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kNotEnoughStack);
}

TEST_F(KernelTest, StackIsZeroedBetweenCompartments) {
  auto shared = shared_;
  ImageBuilder b("zeroing");
  b.Compartment("writer").Export(
      "scribble", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto buf = ctx.AllocStack(64);
        for (int i = 0; i < 16; ++i) {
          ctx.StoreWord(buf.cap().WithAddress(buf.cap().base() + 4 * i), 0,
                        0x5EC12E75);
        }
        return StatusCap(Status::kOk);
      });
  b.Compartment("reader").Export(
      "snoop", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto buf = ctx.AllocStack(64);
        Word acc = 0;
        for (int i = 0; i < 16; ++i) {
          acc |= ctx.LoadWord(buf.cap().WithAddress(buf.cap().base() + 4 * i), 0);
        }
        shared->value = acc;
        return StatusCap(Status::kOk);
      });
  b.Compartment("main")
      .ImportCompartment("writer.scribble")
      .ImportCompartment("reader.snoop")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.Call("writer.scribble", {});
        ctx.Call("reader.snoop", {});
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "main.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->value, 0u);  // no caller residue visible
}

TEST_F(KernelTest, HeapAllocateFreeWithQuota) {
  auto shared = shared_;
  ImageBuilder b("heap");
  b.Compartment("app")
      .AllocCap("q", 4096)
      .ImportCompartment("alloc.heap_allocate")
      .ImportCompartment("alloc.heap_free")
      .ImportCompartment("alloc.quota_remaining")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        const Capability buf = ctx.HeapAllocate(q, 256);
        if (!buf.tag()) {
          shared->observed = -1;
          return StatusCap(Status::kNoMemory);
        }
        ctx.StoreWord(buf, 0, 0xAA55AA55);
        shared->value = ctx.LoadWord(buf, 0);
        const Word before = ctx.HeapQuotaRemaining(q);
        ctx.HeapFree(q, buf);
        const Word after = ctx.HeapQuotaRemaining(q);
        shared->observed = (after > before) ? 1 : -2;
        // Use-after-free must trap deterministically.
        auto info = ctx.Try([&] { ctx.LoadWord(buf, 0); });
        if (!info.has_value()) {
          shared->observed = -3;
        }
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->value, 0xAA55AA55u);
  EXPECT_EQ(shared->observed, 1);
}

TEST_F(KernelTest, QuotaExhaustionFailsAllocation) {
  auto shared = shared_;
  ImageBuilder b("quota");
  b.Compartment("app")
      .AllocCap("q", 1024)
      .ImportCompartment("alloc.heap_allocate")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability q = ctx.SealedImport("q");
        const Capability ok = ctx.HeapAllocate(q, 512);
        const Capability fail = ctx.HeapAllocate(q, 512);  // over quota
        shared->observed = (ok.tag() && !fail.tag()) ? 1 : -1;
        shared->value = fail.word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 1);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kNoMemory);
}

TEST_F(KernelTest, FreeRequiresMatchingAllocationCapability) {
  auto shared = shared_;
  ImageBuilder b("freedeny");
  b.Compartment("victim")
      .AllocCap("vq", 4096)
      .ImportCompartment("alloc.heap_allocate")
      .Export("alloc_obj", [shared](CompartmentCtx& ctx,
                                    const std::vector<Capability>&) {
        const Capability buf =
            ctx.HeapAllocate(ctx.SealedImport("vq"), 128);
        shared->cap = buf;
        return buf;  // shares the object, not the right to free it
      });
  b.Compartment("attacker")
      .AllocCap("aq", 4096)
      .ImportCompartment("victim.alloc_obj")
      .ImportCompartment("alloc.heap_free")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability obj = ctx.Call("victim.alloc_obj", {});
        const Status s = ctx.HeapFree(ctx.SealedImport("aq"), obj);
        shared->observed = static_cast<int>(s);
        // The object must still be usable by the victim.
        shared->value = obj.tag() ? 1 : 0;
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "attacker.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(static_cast<Status>(shared->observed), Status::kPermissionDenied);
  EXPECT_EQ(shared->value, 1u);
}

TEST_F(KernelTest, TokenApiOpaqueObjects) {
  auto shared = shared_;
  ImageBuilder b("token");
  b.Compartment("service")
      .AllocCap("sq", 8192)
      .ImportCompartment("alloc.heap_allocate")
      .ImportCompartment("alloc.token_key_new")
      .ImportCompartment("alloc.token_obj_new")
      .ImportLibrary("token.token_unseal")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability key = ctx.TokenKeyNew();
        const Capability q = ctx.SealedImport("sq");
        const Capability obj = ctx.TokenObjNew(q, key, 64);
        if (!obj.tag() || !obj.IsSealed()) {
          shared->observed = -1;
          return StatusCap(Status::kInvalidArgument);
        }
        // Unseal with the right key: payload is usable.
        const Capability payload = ctx.TokenUnseal(key, obj);
        if (!payload.tag()) {
          shared->observed = -2;
          return StatusCap(Status::kInvalidArgument);
        }
        ctx.StoreWord(payload, 0, 1234);
        shared->value = ctx.LoadWord(payload, 0);
        // A different key must fail.
        const Capability other_key = ctx.TokenKeyNew();
        const Capability denied = ctx.TokenUnseal(other_key, obj);
        shared->observed = denied.tag() ? -3 : 1;
        // The sealed object itself cannot be dereferenced.
        auto info = ctx.Try([&] { ctx.LoadWord(obj, 0); });
        if (!info.has_value()) {
          shared->observed = -4;
        }
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "service.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run();
  EXPECT_EQ(shared->observed, 1);
  EXPECT_EQ(shared->value, 1234u);
}

TEST_F(KernelTest, ThreadsPreemptAndBothRun) {
  auto shared = shared_;
  ImageBuilder b("threads");
  b.Compartment("spin").Globals(16).Export(
      "busy", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        // Same-priority thread must get CPU via timeslicing.
        for (int i = 0; i < 30'000 && shared->order.size() < 2; ++i) {
          ctx.LoadWord(ctx.globals(), 0);
        }
        shared->order.push_back(1);
        return StatusCap(Status::kOk);
      });
  b.Compartment("other").Export(
      "note", [shared](CompartmentCtx&, const std::vector<Capability>&) {
        shared->order.push_back(2);
        return StatusCap(Status::kOk);
      });
  b.Thread("t1", 2, 2048, 4, "spin.busy");
  b.Thread("t2", 2, 2048, 4, "other.note");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(2'000'000'000ull), System::RunResult::kAllExited);
  ASSERT_EQ(shared->order.size(), 2u);
  // t2 finished while t1 was still spinning: preemptive timeslicing worked.
  EXPECT_EQ(shared->order[0], 2);
}

TEST_F(KernelTest, FutexWaitWake) {
  auto shared = shared_;
  ImageBuilder b("futex");
  b.Compartment("sync")
      .Globals(16)
      .ImportCompartment("sched.futex_timed_wait")
      .ImportCompartment("sched.futex_wake")
      .Export("waiter",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                const Capability w = ctx.globals();
                const Status s = ctx.FutexWait(w, 0, ~0u);
                shared->observed = static_cast<int>(s);
                shared->value = ctx.LoadWord(w, 0);
                shared->order.push_back(1);
                return StatusCap(Status::kOk);
              })
      .Export("waker",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.SleepCycles(50'000);
                ctx.StoreWord(ctx.globals(), 0, 77);
                ctx.FutexWake(ctx.globals(), 1);
                shared->order.push_back(2);
                return StatusCap(Status::kOk);
              })
      .ImportCompartment("sched.sleep");
  b.Thread("tw", 3, 2048, 4, "sync.waiter");
  b.Thread("tk", 2, 2048, 4, "sync.waker");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(1'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(static_cast<Status>(shared->observed), Status::kOk);
  EXPECT_EQ(shared->value, 77u);
}

TEST_F(KernelTest, FutexTimeout) {
  auto shared = shared_;
  ImageBuilder b("timeout");
  b.Compartment("sync")
      .Globals(16)
      .ImportCompartment("sched.futex_timed_wait")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Status s = ctx.FutexWait(ctx.globals(), 0, 10'000);
        shared->observed = static_cast<int>(s);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "sync.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(100'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(static_cast<Status>(shared->observed), Status::kTimedOut);
}

TEST_F(KernelTest, MicroRebootResetsCompartment) {
  auto shared = shared_;
  ImageBuilder b("reboot");
  b.Compartment("svc")
      .Globals(16)
      .AllocCap("svcq", 8192)
      .ImportCompartment("alloc.heap_allocate")
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo&) {
        ctx.MicroRebootSelf();
        return ErrorRecovery::kForceUnwind;
      })
      .Export("poke",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>& a) {
                // Increment a global counter; allocate some state.
                const Word count = ctx.LoadWord(ctx.globals(), 0) + 1;
                ctx.StoreWord(ctx.globals(), 0, count);
                ctx.HeapAllocate(ctx.SealedImport("svcq"), 128);
                if (!a.empty() && a[0].word() == 1) {
                  ctx.LoadWord(Capability::FromWord(0xBAD), 0);  // crash
                }
                return WordCap(count);
              });
  b.Compartment("client")
      .ImportCompartment("svc.poke")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.Call("svc.poke", {WordCap(0)});
        ctx.Call("svc.poke", {WordCap(0)});
        const Capability crash = ctx.Call("svc.poke", {WordCap(1)});
        shared->observed = static_cast<int32_t>(crash.word());
        // After the micro-reboot the counter restarts from 1.
        shared->value = ctx.Call("svc.poke", {WordCap(0)}).word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 4096, 4, "client.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(2'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(static_cast<Status>(shared->observed), Status::kCompartmentFail);
  EXPECT_EQ(shared->value, 1u);
  EXPECT_EQ(sys.boot().FindCompartment("svc")->reboot_count, 1u);
}

TEST_F(KernelTest, DeadlockDetected) {
  ImageBuilder b("deadlock");
  b.Compartment("stuck")
      .Globals(16)
      .ImportCompartment("sched.futex_timed_wait")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.FutexWait(ctx.globals(), 0, ~0u);  // waits forever
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 2048, 4, "stuck.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(1'000'000'000ull), System::RunResult::kDeadlock);
}

}  // namespace
}  // namespace cheriot

// Unit tests for the network substrate: crypto primitives against known
// vectors, packet builders/parsers, and the reader's over-read safety.
#include <gtest/gtest.h>

#include <cstring>

#include "src/net/crypto.h"
#include "src/net/packet.h"
#include "src/net/world.h"

namespace cheriot::net {
namespace {

std::string Hex(const uint8_t* data, size_t len) {
  std::string out;
  char buf[4];
  for (size_t i = 0; i < len; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", data[i]);
    out += buf;
  }
  return out;
}

// --- SHA-256 (FIPS 180-2 test vectors) ---

TEST(Crypto, Sha256EmptyString) {
  const auto d = crypto::Sha256(nullptr, 0);
  EXPECT_EQ(Hex(d.data(), 32),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Crypto, Sha256Abc) {
  const uint8_t msg[] = "abc";
  const auto d = crypto::Sha256(msg, 3);
  EXPECT_EQ(Hex(d.data(), 32),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Crypto, Sha256TwoBlocks) {
  const char* msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const auto d =
      crypto::Sha256(reinterpret_cast<const uint8_t*>(msg), std::strlen(msg));
  EXPECT_EQ(Hex(d.data(), 32),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Crypto, Sha256MillionAs) {
  std::vector<uint8_t> msg(1'000'000, 'a');
  const auto d = crypto::Sha256(msg);
  EXPECT_EQ(Hex(d.data(), 32),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// --- HMAC-SHA256 (RFC 4231 test case 2) ---

TEST(Crypto, HmacRfc4231Case2) {
  const uint8_t key[] = "Jefe";
  const uint8_t data[] = "what do ya want for nothing?";
  const auto mac = crypto::HmacSha256(key, 4, data, 28);
  EXPECT_EQ(Hex(mac.data(), 32),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// --- ChaCha20: symmetric and length-robust ---

TEST(Crypto, ChaCha20RoundTrip) {
  crypto::Key key{};
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> data(300);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  const std::vector<uint8_t> original = data;
  crypto::ChaCha20Xor(key, /*nonce=*/42, /*counter=*/0, data.data(),
                      data.size());
  EXPECT_NE(data, original);
  crypto::ChaCha20Xor(key, 42, 0, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(Crypto, ChaCha20DifferentNoncesDiffer) {
  crypto::Key key{};
  std::vector<uint8_t> a(64, 0);
  std::vector<uint8_t> b(64, 0);
  crypto::ChaCha20Xor(key, 1, 0, a.data(), a.size());
  crypto::ChaCha20Xor(key, 2, 0, b.data(), b.size());
  EXPECT_NE(a, b);
}

// --- Toy DH ---

TEST(Crypto, DhAgreement) {
  const auto alice = crypto::DhGenerate(0x1234567890ABCDEFull);
  const auto bob = crypto::DhGenerate(0xFEDCBA0987654321ull);
  EXPECT_NE(alice.public_value, bob.public_value);
  EXPECT_EQ(crypto::DhShared(alice.secret, bob.public_value),
            crypto::DhShared(bob.secret, alice.public_value));
}

TEST(Crypto, DeriveKeyDependsOnAllInputs) {
  crypto::Digest salt_a{};
  crypto::Digest salt_b{};
  salt_b[0] = 1;
  const auto k1 = crypto::DeriveKey(1, salt_a, "c2s");
  const auto k2 = crypto::DeriveKey(1, salt_a, "s2c");
  const auto k3 = crypto::DeriveKey(2, salt_a, "c2s");
  const auto k4 = crypto::DeriveKey(1, salt_b, "c2s");
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k4);
}

// --- Packet builders and parser ---

TEST(Packet, ArpRoundTrip) {
  const Bytes frame = BuildArpRequest(kDeviceMac, kDeviceIp, kWorldIp);
  const ParsedFrame p = ParseFrame(frame);
  ASSERT_TRUE(p.valid);
  EXPECT_TRUE(p.is_arp);
  EXPECT_TRUE(p.arp_is_request);
  EXPECT_EQ(p.arp_sender_ip, kDeviceIp);
  EXPECT_EQ(p.arp_target_ip, kWorldIp);
  EXPECT_EQ(p.arp_sender_mac, kDeviceMac);
}

TEST(Packet, UdpRoundTrip) {
  const Bytes payload = {'h', 'i'};
  const Bytes frame = BuildIpv4(kDeviceMac, kWorldMac, kDeviceIp, kWorldIp,
                                kIpProtoUdp, BuildUdp(1000, 53, payload));
  const ParsedFrame p = ParseFrame(frame);
  ASSERT_TRUE(p.valid);
  EXPECT_TRUE(p.is_udp);
  EXPECT_EQ(p.ip.src, kDeviceIp);
  EXPECT_EQ(p.ip.dst, kWorldIp);
  EXPECT_EQ(p.udp.src_port, 1000);
  EXPECT_EQ(p.udp.dst_port, 53);
  EXPECT_EQ(p.payload, payload);
}

TEST(Packet, TcpRoundTrip) {
  TcpHeader h;
  h.src_port = 49152;
  h.dst_port = 8883;
  h.seq = 0x11223344;
  h.ack = 0x55667788;
  h.flags = kTcpAck | kTcpPsh;
  const Bytes payload = {1, 2, 3, 4, 5};
  const Bytes frame = BuildIpv4(kDeviceMac, kWorldMac, kDeviceIp, kWorldIp,
                                kIpProtoTcp, BuildTcp(h, payload));
  const ParsedFrame p = ParseFrame(frame);
  ASSERT_TRUE(p.valid);
  EXPECT_TRUE(p.is_tcp);
  EXPECT_EQ(p.tcp.src_port, 49152);
  EXPECT_EQ(p.tcp.dst_port, 8883);
  EXPECT_EQ(p.tcp.seq, 0x11223344u);
  EXPECT_EQ(p.tcp.ack, 0x55667788u);
  EXPECT_EQ(p.tcp.flags, kTcpAck | kTcpPsh);
  EXPECT_EQ(p.payload, payload);
}

TEST(Packet, IcmpCarriesClaimedLength) {
  const Bytes payload(16, 0xAB);
  const Bytes echo = BuildIcmpEcho(8, 7, 9, payload);
  const Bytes frame = BuildIpv4(kWorldMac, kDeviceMac, kWorldIp, kDeviceIp,
                                kIpProtoIcmp, echo);
  const ParsedFrame p = ParseFrame(frame);
  ASSERT_TRUE(p.valid);
  EXPECT_TRUE(p.is_icmp);
  EXPECT_EQ(p.icmp_type, 8);
  EXPECT_EQ(p.icmp_id, 7);
  EXPECT_EQ(p.icmp_seq, 9);
  EXPECT_EQ(p.icmp_claimed_len, 16);
  EXPECT_EQ(p.icmp_payload, payload);
  // The ping-of-death variant claims more than it carries.
  const Bytes pod = BuildIcmpEcho(8, 7, 9, payload, /*claimed=*/1400);
  const ParsedFrame pp = ParseFrame(
      BuildIpv4(kWorldMac, kDeviceMac, kWorldIp, kDeviceIp, kIpProtoIcmp, pod));
  EXPECT_EQ(pp.icmp_claimed_len, 1400);
  EXPECT_EQ(pp.icmp_payload.size(), 16u);
}

TEST(Packet, Ipv4HeaderChecksumValid) {
  const Bytes frame = BuildIpv4(kDeviceMac, kWorldMac, kDeviceIp, kWorldIp,
                                kIpProtoUdp, BuildUdp(1, 2, {}));
  // Verify the checksum over the 20-byte IP header sums to zero.
  EXPECT_EQ(Checksum(frame.data() + 14, 20), 0);
}

TEST(Packet, TruncatedFramesAreInvalid) {
  const Bytes frame = BuildIpv4(kDeviceMac, kWorldMac, kDeviceIp, kWorldIp,
                                kIpProtoUdp, BuildUdp(1000, 53, {'x'}));
  for (size_t len : {0u, 5u, 14u, 20u, 33u}) {
    const Bytes truncated(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(ParseFrame(truncated).valid) << "len=" << len;
  }
}

TEST(Packet, ReaderNeverOverReads) {
  const Bytes tiny = {1, 2, 3};
  PacketReader r(tiny);
  r.U16();
  r.U32();  // over-read
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Raw(100).size(), 0u);
}

TEST(Packet, UnknownEtherTypeIgnored) {
  PacketWriter w;
  w.Mac(kWorldMac);
  w.Mac(kDeviceMac);
  w.U16(0x86DD);  // IPv6: not supported
  w.U32(0);
  EXPECT_FALSE(ParseFrame(w.Take()).valid);
}

TEST(Packet, IpToStringFormats) {
  EXPECT_EQ(IpToString(IpFromParts(10, 0, 0, 2)), "10.0.0.2");
  EXPECT_EQ(IpFromParts(10, 0, 0, 2), kDeviceIp);
}

}  // namespace
}  // namespace cheriot::net

// cheriot-trace determinism and attribution tests (DESIGN.md §8).
//
// The recorder's contract has three legs, each pinned here:
//  1. Determinism: a trace is a pure function of the firmware — the same
//     image traced twice yields bit-identical events and byte-identical
//     exports, and a traced fleet's merged stream does not change with the
//     host worker count.
//  2. Invariance: enabling tracing moves no guest cycle — fingerprints match
//     the untraced run on every shipped image.
//  3. Attribution: the profiler charges every guest cycle to exactly one
//     context, so Σ self == the board's cycle counter, exactly.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/rtos.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"
#include "src/sync/sync.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

using sim::Board;
using sim::Fleet;
using tools::FindLintTarget;
using tools::LintTargets;

constexpr Cycles kRunCycles = 500'000;

struct TracedRun {
  std::unique_ptr<Board> board;
  trace::TraceRecorder* recorder = nullptr;  // owned by the board
};

TracedRun RunTraced(const tools::LintTarget& target, Cycles cycles,
                    size_t ring = 1 << 16) {
  TracedRun run;
  run.board = std::make_unique<Board>(target.build(), sim::BoardOptions{});
  trace::TraceOptions opts;
  opts.ring_capacity = ring;
  run.recorder = run.board->EnableTrace(opts);
  run.board->Boot();
  run.board->StepTo(cycles);
  return run;
}

Board::Fingerprint RunUntraced(const tools::LintTarget& target,
                               Cycles cycles) {
  Board board(target.build(), sim::BoardOptions{});
  board.Boot();
  board.StepTo(cycles);
  return board.fingerprint();
}

bool SameEvents(const std::vector<trace::Event>& a,
                const std::vector<trace::Event>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(trace::Event)) != 0) {
      return false;
    }
  }
  return true;
}

// --- 1. Determinism -------------------------------------------------------

TEST(TraceTest, SameImageTracedTwiceIsBitIdentical) {
  const tools::LintTarget* t = FindLintTarget("fleet-node");
  ASSERT_NE(t, nullptr);
  TracedRun a = RunTraced(*t, kRunCycles);
  TracedRun b = RunTraced(*t, kRunCycles);
  EXPECT_TRUE(a.board->fingerprint() == b.board->fingerprint());
  EXPECT_TRUE(SameEvents(a.recorder->Events(), b.recorder->Events()));
  EXPECT_EQ(trace::ChromeTrace(*a.recorder).Dump(2),
            trace::ChromeTrace(*b.recorder).Dump(2));
  EXPECT_EQ(trace::MetricsSnapshot(*a.recorder).Dump(2),
            trace::MetricsSnapshot(*b.recorder).Dump(2));
  EXPECT_EQ(trace::CollapsedStacksText(*a.recorder),
            trace::CollapsedStacksText(*b.recorder));
}

// --- 2. Invariance --------------------------------------------------------

TEST(TraceTest, TracingMovesNoGuestCycleOnAnyShippedImage) {
  for (const auto& target : LintTargets()) {
    TracedRun traced = RunTraced(target, kRunCycles);
    const Board::Fingerprint plain = RunUntraced(target, kRunCycles);
    EXPECT_TRUE(traced.board->fingerprint() == plain) << target.name;
  }
}

// --- 3. Attribution -------------------------------------------------------

TEST(TraceTest, AttributedCyclesEqualCycleCounterOnEveryShippedImage) {
  int real_workloads = 0;
  for (const auto& target : LintTargets()) {
    TracedRun run = RunTraced(target, kRunCycles);
    EXPECT_EQ(run.recorder->attributed_cycles(), run.board->Now())
        << target.name;
    if (run.recorder->events_of_type(trace::EventType::kCompartmentCall) >
        0) {
      ++real_workloads;
    }
  }
  // The acceptance bar: exact attribution demonstrated on at least two
  // images that actually execute compartment calls.
  EXPECT_GE(real_workloads, 2);
}

TEST(TraceTest, ProfilerChargesNestedCallsToCalleeSelfAndCallerTotal) {
  Machine machine;
  trace::TraceRecorder rec;
  trace::Attach(machine, &rec);

  ImageBuilder b("trace-profile");
  b.Compartment("leaf").Globals(64).Export(
      "burn", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.Burn(10'000);
        return WordCap(0);
      });
  b.Compartment("mid")
      .Globals(64)
      .ImportCompartment("leaf.burn")
      .Export("work", [](CompartmentCtx& ctx,
                         const std::vector<Capability>&) {
        ctx.Burn(1'000);
        ctx.Call("leaf.burn", {});
        return WordCap(0);
      });
  b.Compartment("top")
      .Globals(64)
      .ImportCompartment("mid.work")
      .Export("main", [](CompartmentCtx& ctx,
                         const std::vector<Capability>&) {
        for (int i = 0; i < 3; ++i) {
          ctx.Call("mid.work", {});
        }
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "top");
  b.Thread("t", 1, 8192, 8, "top.main");

  System sys(machine, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);

  // Resolve compartment ids through the recorder's published name table.
  auto id_of = [&](const std::string& name) {
    for (const auto& [id, p] : rec.Profile()) {
      if (rec.CompartmentName(id) == name) {
        return id;
      }
    }
    return -1000;
  };
  const auto& profile = rec.Profile();
  const int leaf = id_of("leaf");
  const int mid = id_of("mid");
  const int top = id_of("top");
  ASSERT_NE(leaf, -1000);
  ASSERT_NE(mid, -1000);
  ASSERT_NE(top, -1000);

  // Self time: leaf burned 3 x 10k inside its own frame, mid 3 x 1k.
  EXPECT_GE(profile.at(leaf).self, 30'000u);
  EXPECT_GE(profile.at(mid).self, 3'000u);
  EXPECT_LT(profile.at(mid).self, 10'000u);  // leaf's burn is not mid's self
  // Total time: everything leaf did is inside mid's and top's frames too.
  EXPECT_GE(profile.at(mid).total, profile.at(leaf).self + 3'000u);
  EXPECT_GE(profile.at(top).total,
            profile.at(mid).total + profile.at(top).self);
  EXPECT_EQ(profile.at(leaf).calls, 3u);
  EXPECT_EQ(profile.at(mid).calls, 3u);
  EXPECT_EQ(profile.at(top).calls, 1u);
  // Every cycle in exactly one bucket.
  EXPECT_EQ(rec.attributed_cycles(), machine.clock().now());

  // The top;mid;leaf chain appears in the collapsed stacks with leaf's burn
  // time on it.
  bool found_chain = false;
  for (const auto& [key, cycles] : rec.CollapsedStacks()) {
    if (key.size() == 4 && key[1] == top && key[2] == mid && key[3] == leaf) {
      found_chain = true;
      EXPECT_GE(cycles, 30'000u);
    }
  }
  EXPECT_TRUE(found_chain);
}

// --- Ring bounds ----------------------------------------------------------

TEST(TraceTest, FullRingDropsOldestEventsDeterministically) {
  const tools::LintTarget* t = FindLintTarget("fleet-node");
  ASSERT_NE(t, nullptr);
  TracedRun big = RunTraced(*t, kRunCycles);
  TracedRun small = RunTraced(*t, kRunCycles, /*ring=*/64);

  ASSERT_GT(big.recorder->event_count(), 64u);
  EXPECT_EQ(small.recorder->event_count(), 64u);
  EXPECT_EQ(small.recorder->emitted(), big.recorder->emitted());
  EXPECT_EQ(small.recorder->dropped(), big.recorder->emitted() - 64u);
  // The ring holds exactly the newest 64 events of the full stream.
  const std::vector<trace::Event> all = big.recorder->Events();
  const std::vector<trace::Event> tail(all.end() - 64, all.end());
  EXPECT_TRUE(SameEvents(small.recorder->Events(), tail));
  // Aggregates and the profiler never drop, whatever the ring size.
  EXPECT_EQ(small.recorder->attributed_cycles(),
            big.recorder->attributed_cycles());
  // And the bounded ring still moved no guest cycle.
  EXPECT_TRUE(small.board->fingerprint() == big.board->fingerprint());
}

// --- Fleet ----------------------------------------------------------------

std::string MergedFleetTrace(int host_threads,
                             std::vector<Board::Fingerprint>* fps) {
  sim::FleetOptions options;
  options.host_threads = host_threads;
  options.trace = true;
  Fleet fleet(options);
  std::vector<std::shared_ptr<sim::FleetAppState>> states;
  for (int i = 0; i < 3; ++i) {
    auto state = std::make_shared<sim::FleetAppState>();
    sim::FleetAppOptions app;
    app.board_index = i;
    fleet.AddBoard(sim::BuildFleetAppImage(state, app));
    states.push_back(std::move(state));
  }
  fleet.Boot();
  fleet.Run(20'000'000);  // enough for DHCP + MQTT connect traffic
  *fps = fleet.Fingerprints();
  return trace::MergedChromeTrace(fleet.TraceRecorders()).Dump(2);
}

TEST(TraceTest, MergedFleetTraceIsByteIdenticalForAnyWorkerCount) {
  std::vector<Board::Fingerprint> fp1, fp2, fp4;
  const std::string t1 = MergedFleetTrace(1, &fp1);
  const std::string t2 = MergedFleetTrace(2, &fp2);
  const std::string t4 = MergedFleetTrace(4, &fp4);
  EXPECT_EQ(fp1, fp2);
  EXPECT_EQ(fp1, fp4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  // A real fleet run produces NIC and fabric traffic in the merged stream.
  EXPECT_NE(t1.find("fabric_frame"), std::string::npos);
  EXPECT_NE(t1.find("nic_tx"), std::string::npos);
}

TEST(TraceTest, TracedFleetFingerprintsMatchUntracedFleet) {
  auto run = [](bool traced) {
    sim::FleetOptions options;
    options.trace = traced;
    Fleet fleet(options);
    std::vector<std::shared_ptr<sim::FleetAppState>> states;
    for (int i = 0; i < 2; ++i) {
      auto state = std::make_shared<sim::FleetAppState>();
      sim::FleetAppOptions app;
      app.board_index = i;
      fleet.AddBoard(sim::BuildFleetAppImage(state, app));
      states.push_back(std::move(state));
    }
    fleet.Boot();
    fleet.Run(10'000'000);
    return fleet.Fingerprints();
  };
  EXPECT_EQ(run(true), run(false));
}

// --- Exports --------------------------------------------------------------

TEST(TraceTest, MetricsSnapshotHasVersionedStableSchema) {
  const tools::LintTarget* t = FindLintTarget("fleet-node");
  ASSERT_NE(t, nullptr);
  TracedRun run = RunTraced(*t, kRunCycles);

  std::vector<trace::ThreadStackStats> stats;
  for (const GuestThread& th : run.board->system().threads()) {
    stats.push_back(
        {th.name, th.stack_size, th.peak_stack_bytes, th.compartment_calls});
  }
  const json::Value doc = trace::MetricsSnapshot(*run.recorder, stats);
  EXPECT_EQ(doc["schema_version"].AsInt(), trace::kMetricsSchemaVersion);
  EXPECT_EQ(doc["label"].AsString(), "board0");
  EXPECT_EQ(doc["now"].AsInt(), static_cast<int64_t>(run.board->Now()));
  ASSERT_TRUE(doc.Has("events"));
  ASSERT_TRUE(doc.Has("profile"));
  ASSERT_TRUE(doc.Has("heap"));
  ASSERT_TRUE(doc.Has("revoker"));
  ASSERT_TRUE(doc.Has("nic"));
  ASSERT_TRUE(doc.Has("threads"));
  EXPECT_EQ(doc["events"]["emitted"].AsInt(),
            static_cast<int64_t>(run.recorder->emitted()));
  EXPECT_EQ(doc["profile"]["attributed_cycles"].AsInt(),
            static_cast<int64_t>(run.board->Now()));
  // Thread stats flow through verbatim, including the monotonic stack
  // watermark (its growth semantics are pinned in debug_test).
  ASSERT_EQ(doc["threads"].size(), stats.size());
  ASSERT_GT(stats.size(), 0u);
  for (size_t i = 0; i < doc["threads"].size(); ++i) {
    EXPECT_EQ(doc["threads"][i]["name"].AsString(), stats[i].name);
    EXPECT_EQ(doc["threads"][i]["peak_stack_bytes"].AsInt(),
              static_cast<int64_t>(stats[i].peak_stack_bytes));
    EXPECT_EQ(doc["threads"][i]["stack_size"].AsInt(),
              static_cast<int64_t>(stats[i].stack_size));
  }
  // Byte-stable: serializing twice (with fresh settlement calls in between)
  // yields the same document.
  EXPECT_EQ(doc.Dump(2), trace::MetricsSnapshot(*run.recorder, stats).Dump(2));
}

TEST(TraceTest, ChromeTraceEventsAreWellFormed) {
  const tools::LintTarget* t = FindLintTarget("fleet-node");
  ASSERT_NE(t, nullptr);
  TracedRun run = RunTraced(*t, kRunCycles);
  const json::Value doc = trace::ChromeTrace(*run.recorder);
  ASSERT_TRUE(doc.Has("traceEvents"));
  const json::Value& events = doc["traceEvents"];
  ASSERT_GT(events.size(), 0u);
  int depth = 0;
  Cycles last_ts = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events[i];
    const std::string& ph = e["ph"].AsString();
    ASSERT_FALSE(ph.empty());
    if (ph == "M") {
      continue;  // metadata carries no timestamp
    }
    // Non-metadata events are sorted by guest time.
    const Cycles ts = static_cast<Cycles>(e["ts"].AsInt());
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (ph == "B") {
      ++depth;
    } else if (ph == "E") {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  // The parsed document round-trips through the parser.
  EXPECT_NO_THROW(json::Parse(doc.Dump(2)));
}

// --- Ring boundaries ------------------------------------------------------

TEST(TraceTest, RingAtExactlyFullKeepsEveryEvent) {
  trace::TraceOptions opts;
  opts.ring_capacity = 4;
  trace::TraceRecorder rec(opts);
  for (int i = 0; i < 4; ++i) {
    rec.OnFabricFrame(/*at=*/100 * (i + 1), /*src_port=*/i, /*dst_port=*/9,
                      /*bytes=*/64);
  }
  EXPECT_EQ(rec.emitted(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<trace::Event> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 0);  // the first event is still there
  EXPECT_EQ(events.back().a, 3);
}

TEST(TraceTest, RingAtCapacityPlusOneDropsExactlyTheOldest) {
  trace::TraceOptions opts;
  opts.ring_capacity = 4;
  trace::TraceRecorder rec(opts);
  for (int i = 0; i < 5; ++i) {
    rec.OnFabricFrame(/*at=*/100 * (i + 1), /*src_port=*/i, /*dst_port=*/9,
                      /*bytes=*/64);
  }
  EXPECT_EQ(rec.emitted(), 5u);
  EXPECT_EQ(rec.dropped(), 1u);
  const std::vector<trace::Event> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: event 0 is gone, order of the survivors is preserved.
  EXPECT_EQ(events.front().a, 1);
  EXPECT_EQ(events.back().a, 4);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
}

// --- CLI regression -------------------------------------------------------
// --check must actually gate: an injected fingerprint mismatch has to turn
// into a nonzero exit, or the CI invariance job is a no-op.

#ifdef CHERIOT_TRACE_BIN
TEST(TraceTest, CheckFlagExitsNonzeroOnInjectedFingerprintMismatch) {
  const std::string base = std::string(CHERIOT_TRACE_BIN) +
                           " --target=quickstart --cycles=200000 --check"
                           " --out-dir=" + ::testing::TempDir() +
                           " >/dev/null 2>&1";
  const int ok_rc = std::system(base.c_str());
  ASSERT_TRUE(WIFEXITED(ok_rc));
  EXPECT_EQ(WEXITSTATUS(ok_rc), 0);

  const std::string inject = std::string(CHERIOT_TRACE_BIN) +
                             " --target=quickstart --cycles=200000 --check"
                             " --inject-check-failure"
                             " --out-dir=" + ::testing::TempDir() +
                             " >/dev/null 2>&1";
  const int bad_rc = std::system(inject.c_str());
  ASSERT_TRUE(WIFEXITED(bad_rc));
  EXPECT_EQ(WEXITSTATUS(bad_rc), 1);
}
#endif  // CHERIOT_TRACE_BIN

}  // namespace
}  // namespace cheriot

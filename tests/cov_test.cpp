// cheriot-cov tests (DESIGN.md §14): the authority-coverage recorder and the
// least-privilege report. Pins the two contracts every observability layer
// in this repo shares — zero-guest-cycle (fingerprints identical with
// coverage on/off, on every shipped image) and host-worker invariance
// (cov_<image>.json byte-identical at 1, 2 and 4 fleet workers) — plus the
// snapshot round-trip (COVG section restores to a byte-equal export), the
// seeded over-privileged image's findings, and lint rule CL010 consuming a
// coverage document as evidence with zero warnings on shipped images.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/audit/report.h"
#include "src/base/costs.h"
#include "src/cov/coverage.h"
#include "src/cov/report.h"
#include "src/json/json.h"
#include "src/rtos.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"
#include "tools/cov_targets.h"
#include "tools/lint_targets.h"

namespace cheriot {
namespace {

using analysis::Finding;
using analysis::LintOptions;
using sim::Board;
using sim::Fleet;
using sim::FleetOptions;

constexpr Cycles kHorizon = 8'000'000;
constexpr int kBoards = 2;

FirmwareImage BuildImage(const std::string& name) {
  const tools::LintTarget* t = tools::FindCovTarget(name);
  EXPECT_NE(t, nullptr) << name;
  return t->build();
}

// Boot on a throwaway machine (loader only, no guest instruction runs) so
// the TCB service compartments the image's imports resolve against exist —
// same construction as tools/cheriot_cov.cc.
json::Value AuditOf(const std::string& name) {
  Machine machine;
  System sys(machine, BuildImage(name));
  sys.Boot();
  return audit::BuildReport(sys.boot());
}

// Same drive cycle tools/cheriot_cov.cc uses: N boards of one image, a
// control publish partway through so network-facing images exercise their
// subscription path.
std::unique_ptr<Fleet> MakeCovFleet(const std::string& name, int host_threads,
                                    bool cov) {
  FleetOptions o;
  o.host_threads = host_threads;
  o.cov = cov;
  auto fleet = std::make_unique<Fleet>(o);
  for (int i = 0; i < kBoards; ++i) {
    fleet->AddBoard(BuildImage(name));
  }
  fleet->Boot();
  return fleet;
}

std::string CovExport(Fleet& fleet, const std::string& image_name) {
  return cov::CoverageJson(BuildImage(image_name).name, fleet.CovRecorders())
             .Dump(2) +
         "\n";
}

std::vector<Finding> Cl010Findings(const std::string& image_name,
                                   const json::Value& coverage) {
  LintOptions options;
  options.coverage = &coverage;
  std::vector<Finding> out;
  for (const auto& f : analysis::RunLints(AuditOf(image_name), options)) {
    if (f.rule == "CL010") {
      out.push_back(f);
    }
  }
  return out;
}

// --- Zero-guest-cycle contract, every shipped image ------------------------

TEST(CovTest, CoverageOnVsOffFingerprintEqualityOnEveryShippedImage) {
  for (const auto& target : tools::LintTargets()) {
    Board plain(target.build(), {});
    Board covered(target.build(), {});
    cov::CovRecorder* rec = covered.EnableCoverage();
    ASSERT_NE(rec, nullptr);
    plain.Boot();
    covered.Boot();
    plain.StepTo(kHorizon);
    covered.StepTo(kHorizon);
    EXPECT_EQ(plain.fingerprint(), covered.fingerprint()) << target.name;
    // The recorder actually saw the run: every image crosses at least one
    // compartment boundary (the thread's initial entry).
    EXPECT_GT(rec->calls_recorded(), 0u) << target.name;
  }
}

// --- Worker invariance ------------------------------------------------------

TEST(CovTest, CoverageExportIsByteIdenticalAcrossWorkerCounts) {
  auto run = [](int host_threads) {
    auto fleet = MakeCovFleet("fleet-node", host_threads, /*cov=*/true);
    fleet->Run(4 * cost::kCoreHz);
    fleet->PublishMqtt("leds", {'o', 'n'});
    fleet->Run(cost::kCoreHz);
    return CovExport(*fleet, "fleet-node");
  };
  const std::string one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
  // And repeatable: the export is a pure function of the run.
  EXPECT_EQ(run(1), one);
}

// --- Snapshot round-trip (COVG section) -------------------------------------

TEST(CovTest, SnapshotRestoreRoundTripsToByteEqualCoverageExport) {
  auto original = MakeCovFleet("iot-mqtt-app", /*host_threads=*/1, true);
  original->Run(2 * cost::kCoreHz);
  original->PublishMqtt("leds", {'o', 'n'});
  original->Run(cost::kCoreHz);
  std::vector<uint8_t> blob;
  original->Snapshot(blob);
  original->Run(cost::kCoreHz);
  const std::string want = CovExport(*original, "iot-mqtt-app");

  for (int workers : {1, 2, 4}) {
    auto restored = Fleet::Restore(
        blob, [](int) { return BuildImage("iot-mqtt-app"); }, workers);
    // Restore re-enabled coverage from the FLET options and replayed the
    // recorder state out of the COVG sections.
    ASSERT_EQ(restored->CovRecorders().size(), size_t{kBoards}) << workers;
    restored->Run(cost::kCoreHz);
    EXPECT_EQ(CovExport(*restored, "iot-mqtt-app"), want)
        << workers << " workers";
  }
}

TEST(CovTest, CoverageDoesNotChangeTheSnapshotOfGuestState) {
  // Coverage adds a COVG section and a FLET flag, but the guest-visible
  // sections must be what a cov-off run produces: restoring a cov-on blob
  // with coverage stripped is byte-equal to the cov-off blob's guest state.
  // Cheap proxy pinning the same property: fingerprints after restore match
  // the cov-off run's.
  auto covered = MakeCovFleet("producer-consumer", 1, true);
  auto plain = MakeCovFleet("producer-consumer", 1, false);
  covered->Run(2 * cost::kCoreHz);
  plain->Run(2 * cost::kCoreHz);
  std::vector<uint8_t> blob;
  covered->Snapshot(blob);
  auto restored = Fleet::Restore(
      blob, [](int) { return BuildImage("producer-consumer"); }, 1);
  restored->Run(cost::kCoreHz);
  plain->Run(cost::kCoreHz);
  EXPECT_EQ(restored->Fingerprints(), plain->Fingerprints());
}

// --- The seeded over-privileged image ---------------------------------------

json::Value SeededCoverage() {
  auto fleet = MakeCovFleet("cov-overprivileged", 1, true);
  fleet->Run(2 * cost::kCoreHz);
  return cov::CoverageJson("cov-overprivileged", fleet->CovRecorders());
}

TEST(CovTest, ReportFlagsDeadImportAndUntouchedMmioOnSeededImage) {
  const json::Value report =
      cov::LeastPrivilegeJson(AuditOf("cov-overprivileged"), SeededCoverage());
  // Exactly the two seeded over-grants warn: the never-called import of
  // actuator.diag and the untouched ethernet window. Everything else —
  // never-invoked export, the allocator's own revoker window, the partially
  // touched led window — is info.
  ASSERT_TRUE(report.Has("findings"));
  int warnings = 0;
  bool dead_import = false;
  bool untouched_mmio = false;
  for (const auto& f : report["findings"].AsArray()) {
    if (f["severity"].AsString() != "warning") {
      continue;
    }
    ++warnings;
    const std::string subject = f["subject"].AsString();
    dead_import |= subject.find("actuator.diag") != std::string::npos;
    untouched_mmio |= subject.find("ethernet") != std::string::npos;
  }
  EXPECT_EQ(warnings, 2);
  EXPECT_TRUE(dead_import);
  EXPECT_TRUE(untouched_mmio);
  // The text rendering carries the ImageBuilder-level fix.
  const std::string text = cov::LeastPrivilegeText(report);
  EXPECT_NE(text.find("actuator.diag"), std::string::npos);
  EXPECT_NE(text.find("ethernet"), std::string::npos);
}

TEST(CovTest, Cl010FlagsSeededImageAndStaysQuietOnShippedImages) {
  const json::Value seeded = SeededCoverage();
  const auto flagged = Cl010Findings("cov-overprivileged", seeded);
  int warnings = 0;
  for (const auto& f : flagged) {
    if (f.severity == "warning") {
      ++warnings;
      EXPECT_FALSE(f.fix.empty()) << f.subject;
    }
  }
  EXPECT_EQ(warnings, 2);

  // Zero false positives on a shipped image, with real evidence: fleet-node
  // exercises the network stack, and every unexercised grant it still holds
  // is service-owner linkage (info at most).
  auto fleet = MakeCovFleet("fleet-node", 1, true);
  fleet->Run(4 * cost::kCoreHz);
  fleet->PublishMqtt("leds", {'o', 'n'});
  fleet->Run(cost::kCoreHz);
  const json::Value coverage =
      cov::CoverageJson(BuildImage("fleet-node").name, fleet->CovRecorders());
  for (const auto& f : Cl010Findings("fleet-node", coverage)) {
    EXPECT_NE(f.severity, "warning") << f.subject << ": " << f.message;
    EXPECT_NE(f.severity, "error") << f.subject << ": " << f.message;
  }
}

TEST(CovTest, StaleEvidenceYieldsOneInfoFindingAndNoDiff) {
  // Coverage recorded for a different image must not produce grant findings
  // against this image — one info finding says the evidence is stale.
  const json::Value seeded = SeededCoverage();
  const auto findings = Cl010Findings("quickstart", seeded);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, "info");
  EXPECT_NE(findings[0].message.find("cov-overprivileged"), std::string::npos);

  const json::Value report =
      cov::LeastPrivilegeJson(AuditOf("quickstart"), seeded);
  ASSERT_TRUE(report.Has("findings"));
  ASSERT_EQ(report["findings"].size(), 1u);
  EXPECT_EQ(report["findings"][size_t{0}]["kind"].AsString(),
            "stale_evidence");
}

TEST(CovTest, NoEvidenceDisablesCl010Entirely) {
  LintOptions options;  // coverage defaults to null
  for (const auto& f : analysis::RunLints(AuditOf("cov-overprivileged"),
                                          options)) {
    EXPECT_NE(f.rule, "CL010");
  }
}

// --- Recorder unit behavior --------------------------------------------------

TEST(CovTest, RecorderCapturesEdgesMmioAndQuotaUse) {
  Board board(BuildImage("cov-overprivileged"), {});
  cov::CovRecorder* rec = board.EnableCoverage();
  board.Boot();
  board.StepTo(kHorizon);

  // sensor.main ran: its thread-entry edge and its call into actuator.set
  // are both recorded, with cycle stamps and depth.
  bool saw_actuator_set = false;
  for (const auto& [key, stats] : rec->call_edges()) {
    const auto [caller, callee, export_index] = key;
    EXPECT_GT(stats.count, 0u);
    EXPECT_LE(stats.first_cycle, stats.last_cycle);
    if (rec->CompartmentName(caller) == "sensor" &&
        rec->CompartmentName(callee) == "actuator" &&
        rec->ExportName(callee, export_index) == "set") {
      saw_actuator_set = true;
      EXPECT_GE(stats.peak_depth, 2u);
    }
  }
  EXPECT_TRUE(saw_actuator_set);

  // The led grant was touched exactly once (one store to register 0): one
  // granule of its window, write-only. The ethernet grant stayed untouched.
  bool saw_led = false;
  bool saw_ethernet = false;
  for (const auto& g : rec->mmio_grants()) {
    if (g.device == "led" && rec->CompartmentName(g.compartment) == "sensor") {
      saw_led = true;
      EXPECT_EQ(g.writes, 1u);
      EXPECT_EQ(g.reads, 0u);
      EXPECT_EQ(g.granules_touched(), 1u);
      EXPECT_GT(g.granules_total(), 1u);
    }
    if (g.device == "ethernet") {
      saw_ethernet = true;
      EXPECT_EQ(g.reads + g.writes, 0u);
      EXPECT_EQ(g.granules_touched(), 0u);
    }
  }
  EXPECT_TRUE(saw_led);
  EXPECT_TRUE(saw_ethernet);
}

TEST(CovTest, ExerciseIndexDigestsTheExportedDocument) {
  const json::Value doc = SeededCoverage();
  const cov::ExerciseIndex idx = cov::BuildExerciseIndex(doc);
  ASSERT_TRUE(idx.valid);
  EXPECT_EQ(idx.image, "cov-overprivileged");
  EXPECT_EQ(idx.boards, kBoards);
  EXPECT_TRUE(idx.calls.count({"sensor", "actuator.set"}));
  EXPECT_FALSE(idx.calls.count({"sensor", "actuator.diag"}));
  EXPECT_TRUE(idx.called_exports.count("actuator.set"));
  EXPECT_TRUE(idx.active.count("sensor"));
  // actuator only *received* calls; it exercised none of its own grants, so
  // it is not active (the CL010 severity gate).
  EXPECT_FALSE(idx.active.count("actuator"));
}

}  // namespace
}  // namespace cheriot

// Stack watermark tooling (§3.2.5) and its surfacing in the metrics
// snapshot: debug::StackPeakBytes / StackHeadroom across nested compartment
// calls, the switcher's zero-and-reset on return, and the monotonic
// per-thread peak that cheriot-trace exports.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/debug/debug.h"
#include "src/rtos.h"
#include "src/sync/sync.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<Address> values;
};

TEST(DebugTest, WatermarkGrowsAcrossNestedCallsAndResetsOnReturn) {
  auto shared = std::make_shared<Shared>();
  Machine machine;
  ImageBuilder b("debug-watermark");
  b.Compartment("callee").Export(
      "deep", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        shared->values.push_back(debug::StackPeakBytes(ctx));  // [1] at entry
        {
          auto buf = ctx.AllocStack(2048);
          ctx.StoreWord(buf.cap(), 0, 0xd00d);
          shared->values.push_back(debug::StackPeakBytes(ctx));  // [2] deep
          shared->values.push_back(debug::StackHeadroom(ctx));   // [3]
        }
        return StatusCap(Status::kOk);
      });
  b.Compartment("caller")
      .ImportCompartment("callee.deep")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->values.push_back(debug::StackHeadroom(ctx));  // [0] before
        ctx.Call("callee.deep", {});
        // The switcher zeroed the callee's dirty region and pulled the
        // watermark back to the stack level at the call, so the callee's
        // deeper use is no longer visible here...
        shared->values.push_back(debug::StackPeakBytes(ctx));  // [4] after
        shared->values.push_back(debug::StackHeadroom(ctx));   // [5] after
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "caller");
  b.Thread("t", 1, 8192, 8, "caller.main");

  System sys(machine, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);

  ASSERT_EQ(shared->values.size(), 6u);
  const Address entry_peak = shared->values[1];
  const Address deep_peak = shared->values[2];
  const Address deep_headroom = shared->values[3];
  const Address after_peak = shared->values[4];
  const Address after_headroom = shared->values[5];

  // Allocating 2 KiB and dirtying it moved the watermark by at least 2 KiB.
  EXPECT_GE(deep_peak, entry_peak + 2048);
  // Headroom shrank accordingly but never hit the guard.
  EXPECT_GT(deep_headroom, 0u);
  EXPECT_GE(shared->values[0], after_headroom);
  // Zero-and-reset on return: the caller does not see the callee's depth.
  EXPECT_LT(after_peak, deep_peak);

  // ...but the kernel's monotonic per-thread peak does keep it.
  const GuestThread& t = sys.threads().front();
  EXPECT_GE(t.peak_stack_bytes, deep_peak);
  EXPECT_LE(t.peak_stack_bytes, t.stack_size);
}

TEST(DebugTest, PerThreadPeakStackReachesMetricsSnapshot) {
  auto shared = std::make_shared<Shared>();
  Machine machine;
  trace::TraceRecorder rec;
  trace::Attach(machine, &rec);

  ImageBuilder b("debug-metrics");
  b.Compartment("app")
      .Export("light",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                auto buf = ctx.AllocStack(256);
                ctx.StoreWord(buf.cap(), 0, 1);
                return StatusCap(Status::kOk);
              })
      .Export("heavy",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                auto buf = ctx.AllocStack(4096);
                ctx.StoreWord(buf.cap(), 0, 1);
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "app");
  b.Thread("light", 1, 8192, 8, "app.light");
  b.Thread("heavy", 2, 8192, 8, "app.heavy");

  System sys(machine, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(20'000'000'000ull), System::RunResult::kAllExited);

  std::vector<trace::ThreadStackStats> stats;
  for (const GuestThread& t : sys.threads()) {
    stats.push_back(
        {t.name, t.stack_size, t.peak_stack_bytes, t.compartment_calls});
  }
  const json::Value doc = trace::MetricsSnapshot(rec, stats);
  ASSERT_EQ(doc["threads"].size(), 2u);

  int64_t light_peak = -1;
  int64_t heavy_peak = -1;
  for (size_t i = 0; i < doc["threads"].size(); ++i) {
    const json::Value& t = doc["threads"][i];
    if (t["name"].AsString() == "light") {
      light_peak = t["peak_stack_bytes"].AsInt();
    } else if (t["name"].AsString() == "heavy") {
      heavy_peak = t["peak_stack_bytes"].AsInt();
    }
    EXPECT_EQ(t["stack_size"].AsInt(), 8192);
  }
  ASSERT_GE(light_peak, 256);
  ASSERT_GE(heavy_peak, 4096);
  // The 4 KiB frame shows up as a deeper peak than the 256-byte one.
  EXPECT_GT(heavy_peak, light_peak);
  // And attribution still balances with the recorder attached.
  EXPECT_EQ(rec.attributed_cycles(), machine.clock().now());
}

}  // namespace
}  // namespace cheriot

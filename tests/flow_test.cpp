// cheriot-flow tests (DESIGN.md §13): deterministic latency histograms,
// causal flow-table assembly across boards and the gateway, MQTT publish
// fan-out spans, fault-drop observability, the fleet metrics time-series,
// and the two contracts every observability layer in this repo pins —
// zero-guest-cycle (fingerprints identical with recording on/off, snapshots
// byte-identical) and host-worker invariance (exports byte-identical at 1, 2
// and 4 fleet worker threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/base/costs.h"
#include "src/flow/flow.h"
#include "src/kernel/schedule_arbiter.h"
#include "src/net/world.h"
#include "src/sim/fleet.h"
#include "src/sim/fleet_app.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace cheriot {
namespace {

using flow::FlowId;
using flow::FlowRecorder;
using flow::LatencyHistogram;
using sim::Fleet;
using sim::FleetAppOptions;
using sim::FleetAppState;
using sim::FleetOptions;

constexpr Cycles kSecond = cost::kCoreHz;

// --- LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundsArePartition) {
  // Bucket uppers strictly increase, and BucketOf(v) is the first bucket
  // whose inclusive upper bound is >= v — together the buckets partition the
  // value space.
  for (size_t b = 1; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_LT(LatencyHistogram::BucketUpper(b - 1),
              LatencyHistogram::BucketUpper(b));
  }
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 63ull, 64ull, 1000ull,
                     3300ull, 123456789ull, (1ull << 31), (1ull << 40)}) {
    const size_t b = LatencyHistogram::BucketOf(v);
    EXPECT_GE(LatencyHistogram::BucketUpper(b), std::min(
        v, LatencyHistogram::BucketUpper(LatencyHistogram::kBuckets - 1)));
    if (b > 0 && b < LatencyHistogram::kBuckets - 1) {
      EXPECT_LT(LatencyHistogram::BucketUpper(b - 1), v);
    }
  }
}

TEST(LatencyHistogramTest, QuantilesAreExactWithinBucketWidth) {
  // Deterministic pseudo-random sample (fixed LCG), brute-force sorted
  // quantiles as reference. The histogram's quantile is the inclusive upper
  // bound of the target sample's bucket (tightened by min/max), so it is
  // always >= the exact value and within one bucket width (<= 25%) above it.
  LatencyHistogram h;
  std::vector<uint64_t> values;
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t v = (x >> 33) % 1'000'000;
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
  for (double q : {0.0, 0.5, 0.9, 0.99}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * double(values.size()))));
    const uint64_t exact = values[rank - 1];
    const uint64_t est = h.Quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, exact + exact / 4 + 1) << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(1.0), values.back());
}

TEST(LatencyHistogramTest, EmptyAndSingleton) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.Add(3300);
  // One sample: every quantile is that sample, exactly (min/max tightening).
  EXPECT_EQ(h.Quantile(0.0), 3300u);
  EXPECT_EQ(h.Quantile(0.5), 3300u);
  EXPECT_EQ(h.Quantile(0.99), 3300u);
  EXPECT_EQ(h.sum(), 3300u);
}

TEST(FlowIdTest, KeyAndLabel) {
  const FlowId a{3, 17};
  EXPECT_EQ(a.Label(), "b3#17");
  EXPECT_EQ(a.key(), (3ull << 32) | 17);
  const FlowId gw{FlowId::kGateway, 5};
  EXPECT_EQ(gw.Label(), "gw#5");
  EXPECT_EQ(gw.key() >> 32, 0xFFFFull);  // origin packed as uint16
  EXPECT_TRUE(gw.valid());
  const FlowId none;
  EXPECT_EQ(none.Label(), "none");
  EXPECT_FALSE(none.valid());
  EXPECT_NE(a.key(), gw.key());
}

// --- Fleet harness -----------------------------------------------------------

struct FlowFleet {
  std::unique_ptr<Fleet> fleet;
  std::vector<std::shared_ptr<FleetAppState>> states;
};

FlowFleet MakeFleet(int boards, FleetOptions options,
                    const std::vector<FleetAppOptions>& apps = {}) {
  FlowFleet run;
  run.fleet = std::make_unique<Fleet>(options);
  for (int i = 0; i < boards; ++i) {
    auto state = std::make_shared<FleetAppState>();
    FleetAppOptions app =
        static_cast<size_t>(i) < apps.size() ? apps[static_cast<size_t>(i)]
                                             : FleetAppOptions{};
    app.board_index = i;
    run.fleet->AddBoard(sim::BuildFleetAppImage(state, app));
    run.states.push_back(std::move(state));
  }
  run.fleet->Boot();
  return run;
}

bool AllConnected(const FlowFleet& run) {
  for (const auto& s : run.states) {
    if (!s->connected) {
      return false;
    }
  }
  return true;
}

// --- Zero-guest-cycle contract ----------------------------------------------

TEST(FlowTest, RecordingChangesNoFingerprintAndNoSnapshotByte) {
  FleetOptions on;
  on.flow = true;
  FlowFleet flowed = MakeFleet(2, on);
  FlowFleet plain = MakeFleet(2, FleetOptions{});
  flowed.fleet->Run(4 * kSecond);
  plain.fleet->Run(4 * kSecond);
  flowed.fleet->PublishMqtt("leds", {'o', 'n'});
  plain.fleet->PublishMqtt("leds", {'o', 'n'});
  flowed.fleet->Run(kSecond);
  plain.fleet->Run(kSecond);
  EXPECT_EQ(flowed.fleet->Fingerprints(), plain.fleet->Fingerprints());
  // Ids are assigned whether or not a recorder is attached, so flow mode is
  // invisible to the snapshot too — byte for byte.
  std::vector<uint8_t> a;
  std::vector<uint8_t> b;
  flowed.fleet->Snapshot(a);
  plain.fleet->Snapshot(b);
  EXPECT_EQ(a, b);
  // And the recorder actually saw the run.
  ASSERT_NE(flowed.fleet->flow_recorder(), nullptr);
  EXPECT_EQ(plain.fleet->flow_recorder(), nullptr);
  EXPECT_GT(flowed.fleet->flow_recorder()->flow_count(), 0u);
}

// --- Worker invariance -------------------------------------------------------

TEST(FlowTest, ExportsAreByteIdenticalAcrossWorkerCounts) {
  auto run = [](int host_threads) {
    FleetOptions o;
    o.host_threads = host_threads;
    o.flow = true;
    o.flow_options.metrics_interval = kSecond / 2;
    FlowFleet f = MakeFleet(4, o);
    f.fleet->Run(4 * kSecond);
    f.fleet->PublishMqtt("leds", {'o', 'n'});
    f.fleet->Run(2 * kSecond);
    FlowRecorder* fr = f.fleet->flow_recorder();
    return fr->FlowTableJson().Dump(2) + fr->HistogramsJson().Dump(2) +
           fr->MetricsJson().Dump(2);
  };
  const std::string one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
  // And repeatable: the export is a pure function of the run.
  EXPECT_EQ(run(1), one);
}

// --- Causal assembly ---------------------------------------------------------

TEST(FlowTest, ControlPublishFansOutToEverySubscriberWithLatency) {
  FleetOptions o;
  o.flow = true;
  FlowFleet run = MakeFleet(3, o);
  ASSERT_TRUE(
      run.fleet->RunUntil([&] { return AllConnected(run); }, 60 * kSecond));
  run.fleet->PublishMqtt("leds", {'o', 'n'});
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] {
        for (const auto& s : run.states) {
          if (s->notifications < 1) {
            return false;
          }
        }
        return true;
      },
      30 * kSecond));

  FlowRecorder* fr = run.fleet->flow_recorder();
  ASSERT_NE(fr, nullptr);
  // The control publish produced a publish span with one fan-out leg per
  // subscribed board, each leg a gateway-origin flow delivered to a distinct
  // board.
  const FlowRecorder::Publish* pub = nullptr;
  for (const auto& p : fr->publishes()) {
    if (p.topic == "leds" && p.publisher == FlowId::kGateway) {
      pub = &p;
    }
  }
  ASSERT_NE(pub, nullptr);
  EXPECT_EQ(pub->carrier, FlowRecorder::kNoKey);
  ASSERT_EQ(pub->fanout.size(), 3u);
  std::vector<int> delivered_to;
  for (uint64_t key : pub->fanout) {
    const auto it = fr->flows().find(key);
    ASSERT_NE(it, fr->flows().end());
    const auto& info = it->second;
    EXPECT_EQ(info.id.origin, FlowId::kGateway);
    EXPECT_TRUE(info.has_tx);
    ASSERT_EQ(info.deliveries.size(), 1u);
    EXPECT_GE(info.deliveries[0].at, info.tx_at);
    delivered_to.push_back(info.deliveries[0].board);
  }
  std::sort(delivered_to.begin(), delivered_to.end());
  EXPECT_EQ(delivered_to, (std::vector<int>{0, 1, 2}));
  // End-to-end latency per leg landed in the topic histogram; every leg
  // crosses exactly one board link.
  const auto& topics = fr->topic_histograms();
  ASSERT_TRUE(topics.count("leds"));
  EXPECT_EQ(topics.at("leds").count(), 3u);
  EXPECT_GE(topics.at("leds").min(), 3'300u);
  // Gateway->board frame latency histograms exist for every board pair used.
  ASSERT_TRUE(fr->pair_histograms().count({FlowId::kGateway, 0}));
  EXPECT_EQ(fr->pair_histograms().at({FlowId::kGateway, 0}).min(), 3'300u);
}

TEST(FlowTest, GuestPublishFansOutThroughBrokerToSubscribedPeer) {
  FleetOptions o;
  o.flow = true;
  o.world.mqtt_fanout = true;
  // Board 1 subscribes to the topic the fleet app publishes its status on;
  // with broker fan-out enabled, board 0's announce must reach it.
  std::vector<FleetAppOptions> apps(2);
  apps[1].subscribe_topic = "status";
  FlowFleet run = MakeFleet(2, o, apps);
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] { return run.states[1]->notifications >= 1; }, 120 * kSecond));

  FlowRecorder* fr = run.fleet->flow_recorder();
  const FlowRecorder::Publish* pub = nullptr;
  for (const auto& p : fr->publishes()) {
    if (p.topic == "status" && p.publisher == 0 && !p.fanout.empty()) {
      pub = &p;
      break;
    }
  }
  ASSERT_NE(pub, nullptr) << "no guest publish span with fan-out recorded";
  // The span is causally stitched: the carrier is board 0's frame that
  // brought the PUBLISH to the broker, and each fan-out leg is parented on
  // that carrier and delivered to the subscriber.
  ASSERT_NE(pub->carrier, FlowRecorder::kNoKey);
  const auto carrier_it = fr->flows().find(pub->carrier);
  ASSERT_NE(carrier_it, fr->flows().end());
  EXPECT_EQ(carrier_it->second.id.origin, 0);
  EXPECT_TRUE(carrier_it->second.gateway_rx);
  bool delivered_to_subscriber = false;
  for (uint64_t key : pub->fanout) {
    const auto it = fr->flows().find(key);
    ASSERT_NE(it, fr->flows().end());
    EXPECT_EQ(it->second.parent, pub->carrier);
    for (const auto& d : it->second.deliveries) {
      delivered_to_subscriber |= d.board == 1;
    }
  }
  EXPECT_TRUE(delivered_to_subscriber);
  // End-to-end topic latency, measured from the publisher's NIC transmit.
  // The gateway port sits inside the switch (latency 0), so the span covers
  // exactly the subscriber's link.
  ASSERT_TRUE(fr->topic_histograms().count("status"));
  EXPECT_GE(fr->topic_histograms().at("status").min(), 3'300u);
}

// --- Fault-drop observability ------------------------------------------------

TEST(FlowTest, GatewayTcpFaultDropsAreCountedAndAttributed) {
  FleetOptions o;
  o.flow = true;
  o.trace = true;
  o.world.drop_every_nth_tcp = 3;
  std::vector<FleetAppOptions> apps(2);
  apps[0].busy_publishes = 8;
  apps[1].busy_publishes = 8;
  FlowFleet run = MakeFleet(2, o, apps);
  run.fleet->Run(30 * kSecond);
  const uint64_t dropped = run.fleet->gateway().tcp_segments_dropped();
  ASSERT_GT(dropped, 0u);

  // Every injected drop is observable three ways, and the counts agree:
  // the flow recorder's drop records...
  FlowRecorder* fr = run.fleet->flow_recorder();
  EXPECT_EQ(fr->drops(), dropped);
  uint64_t gateway_tcp_drops = 0;
  for (const auto& [key, info] : fr->flows()) {
    for (const auto& d : info.drops) {
      if (d.reason == flow::kDropGatewayTcp) {
        ++gateway_tcp_drops;
      }
    }
  }
  EXPECT_EQ(gateway_tcp_drops, dropped);
  // ...the fabric recorder's kFrameDrop events (clockless, gateway has no
  // clock of its own)...
  trace::TraceRecorder* fabric = run.fleet->fabric_trace();
  ASSERT_NE(fabric, nullptr);
  EXPECT_EQ(fabric->frames_dropped(), dropped);
  uint64_t drop_events = 0;
  for (const auto& e : fabric->Events()) {
    if (e.type == trace::EventType::kFrameDrop) {
      ++drop_events;
      EXPECT_EQ(e.b, flow::kDropGatewayTcp);
      EXPECT_NE(e.a, trace::kNoFlowOrigin);  // provenance rode along
    }
  }
  EXPECT_EQ(drop_events, dropped);
  // ...and the byte-stable flow table names the reason.
  EXPECT_NE(fr->FlowTableJson().Dump(2).find("gateway_tcp"), std::string::npos);
}

// Drops the first `n` frames delivered to the board it is installed on.
class DropFirstFrames : public ScheduleArbiter {
 public:
  explicit DropFirstFrames(uint32_t n) : n_(n) {}
  int Choose(DecisionKind kind, uint32_t subject, int) override {
    if (kind == DecisionKind::kNicLoss && subject < n_) {
      return 1;
    }
    return 0;
  }

 private:
  uint32_t n_;
};

TEST(FlowTest, ArbiterNicLossEmitsFrameDropAndFlowRecord) {
  FleetOptions o;
  o.flow = true;
  o.trace = true;
  FlowFleet run = MakeFleet(2, o);
  DropFirstFrames arbiter(2);
  run.fleet->board(0).SetArbiter(&arbiter);
  ASSERT_TRUE(run.fleet->RunUntil(
      [&] { return run.fleet->board(0).nic_frames_dropped() >= 2; },
      60 * kSecond));
  run.fleet->Run(kSecond);  // let the barrier drain the staged observations

  // The board counter, its trace ring and the flow recorder agree.
  EXPECT_EQ(run.fleet->board(0).nic_frames_dropped(), 2u);
  uint64_t drop_events = 0;
  for (const auto& e : run.fleet->board(0).trace_recorder()->Events()) {
    if (e.type == trace::EventType::kFrameDrop) {
      ++drop_events;
      EXPECT_EQ(e.b, flow::kDropNicLoss);
    }
  }
  EXPECT_EQ(drop_events, 2u);
  FlowRecorder* fr = run.fleet->flow_recorder();
  uint64_t nic_loss_drops = 0;
  for (const auto& [key, info] : fr->flows()) {
    for (const auto& d : info.drops) {
      if (d.reason == flow::kDropNicLoss) {
        ++nic_loss_drops;
      }
    }
  }
  EXPECT_EQ(nic_loss_drops, 2u);
  // DHCP recovered despite the loss (the firmware retries), so the fleet
  // still connects — drops are observability, not a hang.
  ASSERT_TRUE(
      run.fleet->RunUntil([&] { return AllConnected(run); }, 120 * kSecond));
}

// --- Metrics time-series -----------------------------------------------------

TEST(FlowTest, MetricsSeriesSamplesEveryBoardOnCadence) {
  FleetOptions o;
  o.flow = true;
  o.flow_options.metrics_interval = kSecond / 4;
  FlowFleet run = MakeFleet(2, o);
  ASSERT_TRUE(
      run.fleet->RunUntil([&] { return AllConnected(run); }, 60 * kSecond));
  run.fleet->Run(2 * kSecond);

  FlowRecorder* fr = run.fleet->flow_recorder();
  const auto& m = fr->metrics();
  ASSERT_GT(m.rows(), 0u);
  EXPECT_EQ(m.rows() % 2, 0u);  // one row per board per sample
  const json::Value j = fr->MetricsJson();
  const std::string dump = j.Dump(2);
  EXPECT_NE(dump.find("\"schema_version\": 1"), std::string::npos);
  for (const char* col :
       {"cycle", "board", "board_cycle", "busy_cycles", "idle_cycles", "traps",
        "allocs", "quota_denials", "nic_tx_frames", "nic_rx_frames",
        "nic_drops", "futex_waits"}) {
    EXPECT_NE(dump.find("\"" + std::string(col) + "\""), std::string::npos)
        << col;
  }
  // The counters are real: a connected fleet-node board has allocated,
  // futex-waited, transmitted and received by now. Spot-check the last
  // sample of board 0 against the live board.
  sim::Board& b0 = run.fleet->board(0);
  EXPECT_GT(b0.nic_tx_frames(), 0u);
  EXPECT_GT(b0.nic_rx_frames(), 0u);
  EXPECT_GT(b0.system().sched().futex_waits(), 0u);
  EXPECT_GT(b0.system().alloc().allocation_count(), 0u);
}

// --- Perfetto arrows ---------------------------------------------------------

TEST(FlowTest, PerfettoExportEmitsFlowArrowsBetweenBoards) {
  FleetOptions o;
  o.flow = true;
  o.trace = true;
  FlowFleet run = MakeFleet(2, o);
  ASSERT_TRUE(
      run.fleet->RunUntil([&] { return AllConnected(run); }, 60 * kSecond));
  const std::string json =
      trace::MergedChromeTrace(run.fleet->TraceRecorders()).Dump(2);
  // Flow arrows: a start ("s") at the transmitting board's NIC track and a
  // binding-point-enclosing finish ("f") at the receiver, sharing an id.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  // NIC events carry the human-readable flow label.
  EXPECT_NE(json.find("\"flow\": \"b0#0\""), std::string::npos);
}

}  // namespace
}  // namespace cheriot

// Unit tests for the CHERIoT capability model (§2.1): monotonic derivation,
// sealing, and the deep-attenuation permissions.
#include "src/cap/capability.h"

#include <gtest/gtest.h>

namespace cheriot {
namespace {

TEST(Capability, DefaultIsNullInteger) {
  Capability c;
  EXPECT_FALSE(c.tag());
  EXPECT_TRUE(c.IsNull());
  EXPECT_EQ(c.word(), 0u);
}

TEST(Capability, FromWordCarriesValueWithoutAuthority) {
  const Capability c = Capability::FromWord(0xDEADBEEF);
  EXPECT_FALSE(c.tag());
  EXPECT_EQ(c.word(), 0xDEADBEEFu);
}

TEST(Capability, RootReadWriteHasNoExecuteOrSealing) {
  const Capability root = Capability::RootReadWrite(0x1000, 0x2000);
  EXPECT_TRUE(root.tag());
  EXPECT_FALSE(root.permissions().Has(Permission::kExecute));
  EXPECT_FALSE(root.permissions().Has(Permission::kSeal));
  EXPECT_TRUE(root.permissions().Has(Permission::kLoad));
  EXPECT_TRUE(root.permissions().Has(Permission::kStore));
}

TEST(Capability, BoundsNarrowingIsMonotonic) {
  const Capability root = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability sub = root.WithBounds(0x1100, 0x100);
  EXPECT_TRUE(sub.tag());
  EXPECT_EQ(sub.base(), 0x1100u);
  EXPECT_EQ(sub.top(), 0x1200u);

  // Attempting to widen clears the tag instead of granting rights.
  EXPECT_FALSE(sub.WithBounds(0x1000, 0x1000).tag());
  EXPECT_FALSE(sub.WithBounds(0x11F0, 0x100).tag());
}

TEST(Capability, BoundsOverflowUntags) {
  const Capability root = Capability::RootReadWrite(0x1000, 0xFFFFFFFF);
  EXPECT_FALSE(root.WithBounds(0xFFFFFF00, 0x200).tag());
}

TEST(Capability, PermissionsOnlyShrink) {
  const Capability root = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability ro = root.WithoutPermission(Permission::kStore);
  EXPECT_FALSE(ro.permissions().Has(Permission::kStore));
  // Re-adding via intersection is impossible.
  const Capability attempt =
      ro.WithPermissions(PermissionSet({Permission::kStore}));
  EXPECT_FALSE(attempt.permissions().Has(Permission::kStore));
}

TEST(Capability, InBoundsChecksRange) {
  const Capability c = Capability::RootReadWrite(0x1000, 0x1010);
  EXPECT_TRUE(c.InBounds(0x1000, 16));
  EXPECT_TRUE(c.InBounds(0x100C, 4));
  EXPECT_FALSE(c.InBounds(0x100C, 8));
  EXPECT_FALSE(c.InBounds(0xFFC, 4));
}

TEST(Capability, SealUnsealRoundTrip) {
  const Capability data = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability key = Capability::RootSealing().WithAddress(
      static_cast<Address>(OType::kTokenApi));
  const Capability sealed = data.SealedWith(key);
  ASSERT_TRUE(sealed.tag());
  EXPECT_TRUE(sealed.IsSealed());
  EXPECT_EQ(sealed.otype(), OType::kTokenApi);

  const Capability unsealed = sealed.UnsealedWith(key);
  ASSERT_TRUE(unsealed.tag());
  EXPECT_FALSE(unsealed.IsSealed());
  EXPECT_EQ(unsealed.base(), data.base());
}

TEST(Capability, UnsealWithWrongTypeFails) {
  const Capability data = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability key9 = Capability::RootSealing().WithAddress(9);
  const Capability key10 = Capability::RootSealing().WithAddress(10);
  const Capability sealed = data.SealedWith(key9);
  EXPECT_FALSE(sealed.UnsealedWith(key10).tag());
}

TEST(Capability, SealedCapabilityIsImmutable) {
  const Capability data = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability key = Capability::RootSealing().WithAddress(9);
  const Capability sealed = data.SealedWith(key);
  EXPECT_FALSE(sealed.WithAddress(0x1500).tag());
  EXPECT_FALSE(sealed.WithBounds(0x1000, 8).tag());
  EXPECT_FALSE(sealed.WithoutPermission(Permission::kStore).tag());
}

TEST(Capability, DoubleSealFails) {
  const Capability data = Capability::RootReadWrite(0x1000, 0x2000);
  const Capability key = Capability::RootSealing().WithAddress(9);
  const Capability sealed = data.SealedWith(key);
  EXPECT_FALSE(sealed.SealedWith(key).tag());
}

TEST(Capability, SealingRequiresAuthorityInBounds) {
  const Capability data = Capability::RootReadWrite(0x1000, 0x2000);
  // An authority for type 9 only cannot seal as type 10.
  const Capability key9 = Capability::MakeSealingAuthority(9, 1);
  const Capability key9_at_10 = key9.WithAddress(10);
  EXPECT_FALSE(data.SealedWith(key9_at_10).tag());
}

TEST(Capability, AttenuationDeepImmutable) {
  const Capability inner = Capability::RootReadWrite(0x3000, 0x3100);
  Capability authority = Capability::RootReadWrite(0x1000, 0x2000)
                             .WithoutPermission(Permission::kLoadMutable);
  const Capability loaded = inner.AttenuatedForLoadVia(authority);
  EXPECT_TRUE(loaded.tag());
  EXPECT_FALSE(loaded.permissions().Has(Permission::kStore));
  EXPECT_FALSE(loaded.permissions().Has(Permission::kLoadMutable));
  // Transitivity: the next hop also strips store rights.
  const Capability deeper = inner.AttenuatedForLoadVia(loaded);
  EXPECT_FALSE(deeper.permissions().Has(Permission::kStore));
}

TEST(Capability, AttenuationDeepNoCapture) {
  const Capability inner = Capability::RootReadWrite(0x3000, 0x3100);
  Capability authority = Capability::RootReadWrite(0x1000, 0x2000)
                             .WithoutPermission(Permission::kLoadGlobal);
  const Capability loaded = inner.AttenuatedForLoadVia(authority);
  EXPECT_TRUE(loaded.tag());
  EXPECT_FALSE(loaded.permissions().Has(Permission::kGlobal));
  EXPECT_FALSE(loaded.permissions().Has(Permission::kLoadGlobal));
}

TEST(Capability, AttenuationWithoutLoadStoreCapUntags) {
  const Capability inner = Capability::RootReadWrite(0x3000, 0x3100);
  Capability authority = Capability::RootReadWrite(0x1000, 0x2000)
                             .WithoutPermission(Permission::kLoadStoreCap);
  EXPECT_FALSE(inner.AttenuatedForLoadVia(authority).tag());
}

TEST(Capability, SentryTypesAreDistinct) {
  EXPECT_TRUE(IsSentryOType(OType::kSentryEnabling));
  EXPECT_TRUE(IsSentryOType(OType::kReturnSentryDisabling));
  EXPECT_FALSE(IsSentryOType(OType::kUnsealed));
  EXPECT_FALSE(IsSentryOType(OType::kTokenApi));
  EXPECT_TRUE(IsDataOType(OType::kAllocatorQuota));
  EXPECT_FALSE(IsDataOType(OType::kSentryEnabling));
}

TEST(Capability, ToStringIsInformative) {
  const Capability c = Capability::RootReadWrite(0x1000, 0x2000);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("cap"), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
}

// Property-style sweep: WithBounds never yields a tagged capability whose
// range escapes the parent.
class BoundsSweep : public ::testing::TestWithParam<std::tuple<Address, Address>> {};

TEST_P(BoundsSweep, NeverWidens) {
  const auto [offset, len] = GetParam();
  const Capability parent = Capability::RootReadWrite(0x1000, 0x1100);
  const Capability child = parent.WithBounds(0x1000 + offset, len);
  if (child.tag()) {
    EXPECT_GE(child.base(), parent.base());
    EXPECT_LE(child.top(), parent.top());
  } else {
    // Untagged children are harmless by construction.
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsSweep,
    ::testing::Combine(::testing::Values(0u, 8u, 0x80u, 0xF8u, 0x100u, 0x200u),
                       ::testing::Values(0u, 8u, 0x80u, 0x100u, 0x1000u)));

}  // namespace
}  // namespace cheriot

// Switcher edge cases (§3.1.2, §3.2.6): trusted-stack exhaustion, nested
// call chains, forced unwind across a chain, call guards, interrupt
// postures, and error-handler re-entrancy.
#include <gtest/gtest.h>

#include "src/rtos.h"
#include "src/sync/sync.h"

namespace cheriot {
namespace {

struct Shared {
  std::vector<int> codes;
  Word value = 0;
  int depth_reached = 0;
};

class SwitcherTest : public ::testing::Test {
 protected:
  Machine machine_;
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

TEST_F(SwitcherTest, TrustedStackDepthIsBounded) {
  auto shared = shared_;
  ImageBuilder b("depth");
  b.Compartment("rec")
      .ImportCompartment("rec.spin")  // self-recursion through the switcher
      .Export("spin",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>& a) {
                const int depth = static_cast<int>(a[0].word());
                shared->depth_reached = std::max(shared->depth_reached, depth);
                const Capability r =
                    ctx.Call("rec.spin", {WordCap(depth + 1)});
                return r;
              })
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability r = ctx.Call("rec.spin", {WordCap(1)});
        shared->value = r.word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, /*frames=*/6, "rec.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  // Six frames: main entry + 5 nested spins; the overflow unwinds cleanly.
  EXPECT_EQ(shared->depth_reached, 5);
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kCompartmentFail);
}

TEST_F(SwitcherTest, NestedCallChainPreservesReturnValues) {
  auto shared = shared_;
  ImageBuilder b("chain");
  // a -> b -> c, each adds a digit.
  b.Compartment("c").Export(
      "f", [](CompartmentCtx&, const std::vector<Capability>& a) {
        return WordCap(a[0].word() * 10 + 3);
      });
  b.Compartment("b").ImportCompartment("c.f").Export(
      "f", [](CompartmentCtx& ctx, const std::vector<Capability>& a) {
        return ctx.Call("c.f", {WordCap(a[0].word() * 10 + 2)});
      });
  b.Compartment("a")
      .ImportCompartment("b.f")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->value = ctx.Call("b.f", {WordCap(1)}).word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "a.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  EXPECT_EQ(shared->value, 123u);
}

TEST_F(SwitcherTest, FaultDeepInChainUnwindsOneLevel) {
  auto shared = shared_;
  ImageBuilder b("deepfault");
  b.Compartment("c").Export(
      "boom", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        ctx.LoadWord(Capability::FromWord(0xBAD), 0);
        return StatusCap(Status::kOk);
      });
  b.Compartment("b").ImportCompartment("c.boom").Export(
      "mid", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability r = ctx.Call("c.boom", {});
        // b survives c's fault and can report it upward.
        shared->codes.push_back(static_cast<int32_t>(r.word()));
        return WordCap(0x600D);
      });
  b.Compartment("a")
      .ImportCompartment("b.mid")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->value = ctx.Call("b.mid", {}).word();
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "a.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  EXPECT_EQ(shared->codes,
            (std::vector<int>{static_cast<int>(Status::kCompartmentFail)}));
  EXPECT_EQ(shared->value, 0x600Du);  // the chain above kept working
}

TEST_F(SwitcherTest, MicroRebootForcesBlockedThreadOut) {
  // A thread blocked inside a compartment is woken and force-unwound when
  // that compartment micro-reboots (§3.2.6 step 2).
  auto shared = shared_;
  ImageBuilder b("force");
  b.Compartment("svc")
      .Globals(32)
      .Export("block",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                shared->codes.push_back(1);  // inside
                ctx.FutexWait(ctx.globals(), 0, ~0u);
                shared->codes.push_back(2);  // must never run
                return StatusCap(Status::kOk);
              })
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo&) {
        ctx.MicroRebootSelf();
        return ErrorRecovery::kForceUnwind;
      })
      .Export("boom",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.LoadWord(Capability::FromWord(0xBAD), 0);
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "svc");
  b.Compartment("victim")
      .ImportCompartment("svc.block")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        const Capability r = ctx.Call("svc.block", {});
        shared->codes.push_back(static_cast<int32_t>(r.word()));
        return StatusCap(Status::kOk);
      });
  b.Compartment("attacker")
      .ImportCompartment("svc.boom")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        ctx.SleepCycles(100'000);  // let the victim get stuck first
        ctx.Call("svc.boom", {});
        return StatusCap(Status::kOk);
      });
  sync::UseScheduler(b, "attacker");
  b.Thread("victim", 2, 8192, 8, "victim.main");
  b.Thread("attacker", 2, 8192, 8, "attacker.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  ASSERT_EQ(shared->codes.size(), 2u);
  EXPECT_EQ(shared->codes[0], 1);
  EXPECT_EQ(static_cast<Status>(shared->codes[1]), Status::kCompartmentFail);
  EXPECT_EQ(sys.boot().FindCompartment("svc")->reboot_count, 1u);
}

TEST_F(SwitcherTest, CallGuardBouncesDuringReboot) {
  // Micro-reboot step 1: while the guard is closed, new entries get kBusy.
  auto shared = shared_;
  ImageBuilder b("guard");
  b.Compartment("svc").Export(
      "ping", [](CompartmentCtx&, const std::vector<Capability>&) {
        return StatusCap(Status::kOk);
      });
  b.Compartment("app")
      .ImportCompartment("svc.ping")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        // Close the guard by hand (white-box: the switcher checks it).
        auto& rt = *ctx.system().boot().FindCompartment("svc");
        rt.call_guard_closed = true;
        shared->codes.push_back(
            static_cast<int32_t>(ctx.Call("svc.ping", {}).word()));
        rt.call_guard_closed = false;
        shared->codes.push_back(
            static_cast<int32_t>(ctx.Call("svc.ping", {}).word()));
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  EXPECT_EQ(static_cast<Status>(shared->codes[0]), Status::kBusy);
  EXPECT_EQ(static_cast<Status>(shared->codes[1]), Status::kOk);
}

TEST_F(SwitcherTest, InterruptDisabledExportIsNotPreempted) {
  // A kDisabled export must run to completion even with a higher-priority
  // thread ready (§2.1's structured interrupt posture).
  auto shared = shared_;
  ImageBuilder b("posture");
  b.Compartment("c")
      .Globals(32)
      .Export("critical",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                // Make the high-priority thread ready mid-section.
                ctx.StoreWord(ctx.globals(), 0, 1);
                ctx.FutexWake(ctx.globals(), 1);
                for (int i = 0; i < 2000; ++i) {
                  ctx.LoadWord(ctx.globals(), 4);
                }
                shared->codes.push_back(1);  // critical section finished...
                return StatusCap(Status::kOk);
              },
              256, InterruptPosture::kDisabled)
      .Export("low",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.Call("c.critical", {});
                shared->codes.push_back(2);
                return StatusCap(Status::kOk);
              })
      .ImportCompartment("c.critical")
      .Export("high",
              [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
                while (ctx.LoadWord(ctx.globals(), 0) == 0) {
                  ctx.FutexWait(ctx.globals(), 0, ~0u);
                }
                shared->codes.push_back(3);  // ...before we run
                return StatusCap(Status::kOk);
              });
  sync::UseScheduler(b, "c");
  b.Thread("hi", 8, 8192, 8, "c.high");
  b.Thread("lo", 1, 8192, 8, "c.low");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(4'000'000'000ull), System::RunResult::kAllExited);
  ASSERT_EQ(shared->codes.size(), 3u);
  // The essential property: the critical section (1) completes before the
  // higher-priority thread (3) gets the CPU, despite the mid-section wake.
  EXPECT_EQ(shared->codes[0], 1);
}

TEST_F(SwitcherTest, FaultingErrorHandlerFallsBackToUnwind) {
  auto shared = shared_;
  ImageBuilder b("badhandler");
  b.Compartment("svc")
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo&) -> ErrorRecovery {
        // The handler itself faults (§5.1.2 "Attacks on the error handler"):
        // the switcher's fallback is the default unwind.
        ctx.LoadWord(Capability::FromWord(0xDEAD), 0);
        return ErrorRecovery::kInstallContext;  // unreachable
      })
      .Export("boom",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.LoadWord(Capability::FromWord(0xBAD), 0);
                return StatusCap(Status::kOk);
              });
  b.Compartment("app")
      .ImportCompartment("svc.boom")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->value = ctx.Call("svc.boom", {}).word();
        shared->codes.push_back(1);  // we survived both faults
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  EXPECT_EQ(sys.Run(2'000'000'000ull), System::RunResult::kAllExited);
  EXPECT_EQ(shared->codes, (std::vector<int>{1}));
  EXPECT_EQ(static_cast<Status>(static_cast<int32_t>(shared->value)),
            Status::kCompartmentFail);
}

TEST_F(SwitcherTest, SealedExportCapabilityCannotBeForged) {
  // Even holding the *address* of another compartment's export table, a
  // compartment without the sealed import cannot fabricate a call.
  auto shared = shared_;
  ImageBuilder b("forge");
  b.Compartment("target").Export(
      "secret", [shared](CompartmentCtx&, const std::vector<Capability>&) {
        shared->codes.push_back(99);  // must not run
        return Capability();
      });
  b.Compartment("attacker").Export(
      "main", [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
        // White-box: learn the export table address...
        const Address table =
            ctx.system().boot().FindCompartment("target")->export_table;
        // ...but a raw integer is not a sealed capability, and an unsealed
        // self-made capability fails the unseal check in the switcher.
        shared->value = table;
        auto info = ctx.Try([&] { ctx.LoadWord(Capability::FromWord(table), 0); });
        shared->codes.push_back(info.has_value() ? 1 : 0);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "attacker.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  EXPECT_EQ(shared->codes, (std::vector<int>{1}));
}

TEST_F(SwitcherTest, LibraryPostureRestoredOnReturn) {
  // Backward sentries restore the interrupt posture (§2.1).
  auto shared = shared_;
  ImageBuilder b("sentry");
  auto lib = b.Library("postures");
  lib.Export("disabled_fn",
             [shared](CompartmentCtx& ctx, const std::vector<Capability>&) {
               shared->codes.push_back(
                   ctx.thread().interrupts_enabled ? 1 : 0);
               return StatusCap(Status::kOk);
             },
             64, InterruptPosture::kDisabled);
  b.Compartment("app")
      .ImportLibrary("postures.disabled_fn")
      .Export("main", [shared](CompartmentCtx& ctx,
                               const std::vector<Capability>&) {
        shared->codes.push_back(ctx.thread().interrupts_enabled ? 1 : 0);
        ctx.LibCall("postures.disabled_fn", {});
        shared->codes.push_back(ctx.thread().interrupts_enabled ? 1 : 0);
        return StatusCap(Status::kOk);
      });
  b.Thread("t", 1, 8192, 8, "app.main");
  System sys(machine_, b.Build());
  sys.Boot();
  sys.Run(2'000'000'000ull);
  // enabled before; disabled inside the sentry; enabled after return.
  EXPECT_EQ(shared->codes, (std::vector<int>{1, 0, 1}));
}

}  // namespace
}  // namespace cheriot

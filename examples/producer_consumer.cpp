// Multi-threaded producer/consumer over the hardened message-queue
// compartment (§3.2.4): two mutually-distrusting compartments exchange
// messages through opaque queue handles; the queue memory is allocated with
// the producer's quota but neither side can free it out from under the
// other (§3.2.3).
#include <cstdio>

#include "src/rtos.h"
#include "src/sync/sync.h"

using namespace cheriot;

int main() {
  Machine machine;
  ImageBuilder image("producer-consumer");

  image.Compartment("producer")
      .Globals(32)
      .AllocCap("pq", 8 * 1024)
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability quota = ctx.SealedImport("pq");
        const Capability handle = ctx.Call(
            "message_queue.create", {quota, WordCap(8), WordCap(4)});
        if (!handle.tag()) {
          std::printf("[producer] queue creation failed\n");
          return StatusCap(Status::kNoMemory);
        }
        // Publish the (opaque!) handle through a shared global the consumer
        // compartment imports at build time — here we just use the
        // scheduler-mediated handoff: store it in our globals and let the
        // consumer fetch it via our export.
        ctx.StoreCap(ctx.globals(), 0, handle);
        ctx.StoreWord(ctx.globals(), 8, 1);
        ctx.FutexWake(ctx.globals().AddOffset(8), 1);
        for (Word i = 1; i <= 8; ++i) {
          auto msg = ctx.AllocStack(8);
          ctx.StoreWord(msg.cap(), 0, i * i);
          ctx.Call("message_queue.send", {handle, msg.cap(), WordCap(~0u)});
          std::printf("[producer] sent %u\n", i * i);
        }
        return StatusCap(Status::kOk);
      })
      .Export("get_queue",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                while (ctx.LoadWord(ctx.globals(), 8) == 0) {
                  ctx.FutexWait(ctx.globals().AddOffset(8), 0, ~0u);
                }
                return ctx.LoadCap(ctx.globals(), 0);
              });

  image.Compartment("consumer")
      .ImportCompartment("producer.get_queue")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        const Capability handle = ctx.Call("producer.get_queue", {});
        // The handle is sealed: we can use it, but not peek inside.
        auto peek = ctx.Try([&] { ctx.LoadWord(handle, 0); });
        std::printf("[consumer] direct handle access: %s\n",
                    peek ? "trapped (opaque, as designed)" : "worked?!");
        Word sum = 0;
        for (int i = 0; i < 8; ++i) {
          auto out = ctx.AllocStack(8);
          ctx.Call("message_queue.receive",
                   {handle, out.cap(), WordCap(~0u)});
          const Word v = ctx.LoadWord(out.cap(), 0);
          sum += v;
          std::printf("[consumer] received %u\n", v);
        }
        std::printf("[consumer] sum = %u (expected 204)\n", sum);
        return StatusCap(Status::kOk);
      });

  sync::UseQueueCompartment(image, "producer");
  sync::UseQueueCompartment(image, "consumer");
  sync::UseScheduler(image, "producer");
  sync::UseScheduler(image, "consumer");
  sync::UseAllocator(image, "producer");

  image.Thread("consumer", 3, 8192, 8, "consumer.main");
  image.Thread("producer", 2, 8192, 8, "producer.main");

  System system(machine, image.Build());
  system.Boot();
  const auto result = system.Run(8'000'000'000ull);
  std::printf("[host] done (%s)\n",
              result == System::RunResult::kAllExited ? "clean exit" : "timeout");
  return result == System::RunResult::kAllExited ? 0 : 1;
}

// Auditing example (§4, Fig. 4 and the §5.1.3 liblzma case study): builds an
// HTTP-client-style firmware image, emits the linker JSON report, and checks
// declarative policies against it — first on a clean image, then on one
// whose compression library has been backdoored to import the network API.
#include <cstdio>

#include "src/audit/policy.h"
#include "src/audit/report.h"
#include "src/rtos.h"

using namespace cheriot;

namespace {

EntryFn Nop() {
  return [](CompartmentCtx&, const std::vector<Capability>&) {
    return Capability();
  };
}

FirmwareImage BuildFirmware(bool backdoored) {
  ImageBuilder b(backdoored ? "http-firmware-BACKDOORED" : "http-firmware");
  b.Compartment("NetAPI")
      .CodeSize(4096)
      .Export("network_socket_connect_tcp", Nop(), 512)
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true);
  b.Compartment("http_client")
      .CodeSize(8192)
      .AllocCap("http_quota", 16 * 1024)
      .ImportCompartment("NetAPI.network_socket_connect_tcp")
      .Export("fetch", Nop(), 1024);
  auto compressor = b.Compartment("compressor");
  compressor.CodeSize(20 * 1024).Export("decompress", Nop(), 512);
  if (backdoored) {
    // The supply-chain attack: a new release of the compression library
    // quietly declares a dependency on the network API.
    compressor.ImportCompartment("NetAPI.network_socket_connect_tcp");
  }
  b.Thread("main", 1, 2048, 4, "http_client.fetch");
  return b.Build();
}

const char kPolicy[] = R"(
# Firmware integration policy (checked before signing, §4)
# 1. Exactly one compartment may open network connections.
count(compartments_calling("NetAPI.network_socket_connect_tcp")) == 1
# 2. Only the network compartment touches the NIC.
count(importers_of_mmio("ethernet")) == 1 && contains(importers_of_mmio("ethernet"), "NetAPI")
# 3. The compression library must not talk to the network.
!calls("compressor", "NetAPI")
# 4. Heap quotas must fit in the heap.
allocation_quota_sum() <= heap_size()
# 5. Transitive: the compressor must not be able to reach the NIC through
#    ANY chain of compartment calls — stronger than rule 3, which only sees
#    the direct edge (DESIGN.md §7).
!reachable("compressor", "mmio:ethernet")
)";

int CheckImage(bool backdoored) {
  Machine machine;
  auto boot = Loader::Load(machine, BuildFirmware(backdoored));
  const json::Value report = audit::BuildReport(*boot);

  if (!backdoored) {
    // Show the report fragment from Fig. 4.
    std::printf("--- firmware report (http_client compartment) ---\n%s\n\n",
                report["compartments"]["http_client"].Dump(2).c_str());
  }

  audit::PolicyEngine engine(report);
  const auto violations = engine.CheckDocument(kPolicy);
  std::printf("policy check for %-28s: %s\n",
              backdoored ? "BACKDOORED image" : "clean image",
              violations.empty() ? "PASS" : "FAIL");
  for (const auto& v : violations) {
    std::printf("  line %d: %s  (%s)\n", v.line, v.expression.c_str(),
                v.reason.c_str());
    const auto callers =
        engine.CompartmentsCalling("NetAPI.network_socket_connect_tcp");
    std::printf("  compartments calling the network API:");
    for (const auto& c : callers) {
      std::printf(" %s", c.c_str());
    }
    std::printf("\n");
    break;
  }
  return static_cast<int>(violations.size());
}

}  // namespace

int main() {
  std::printf("=== CHERIoT firmware auditing (Fig. 4 / §5.1.3) ===\n\n");
  const int clean = CheckImage(false);
  const int bad = CheckImage(true);
  std::printf("\nThe backdoor cannot hide: its new import shows up in the "
              "report and violates the policy.\n");
  return (clean == 0 && bad > 0) ? 0 : 1;
}

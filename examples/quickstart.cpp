// Quickstart: two compartments, a compartment call across a hardened
// interface, and what happens when one of them has a memory-safety bug.
//
//   $ ./examples/quickstart
//
// Walks through: building a firmware image, booting, calling between
// compartments, spatial memory safety, and fault isolation.
#include <cstdio>

#include "src/rtos.h"

using namespace cheriot;

int main() {
  Machine machine;  // 256 KiB SRAM, 33 MHz, the full device complement

  ImageBuilder image("quickstart");

  // A tiny service compartment: adds two numbers, but has a "bug" we can
  // trigger on demand (dereferences a forged pointer).
  image.Compartment("adder")
      .Globals(64)
      .Export("add",
              [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
                const Word a = args[0].word();
                const Word b = args[1].word();
                if (a == 0xDEAD) {  // the bug: forged-pointer dereference
                  ctx.LoadWord(Capability::FromWord(0x12345678), 0);
                }
                return WordCap(a + b);
              });

  // The application compartment calls the service and survives its crash.
  image.Compartment("app")
      .ImportCompartment("adder.add")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        std::printf("[app] calling adder.add(20, 22)...\n");
        const Capability sum = ctx.Call("adder.add", {WordCap(20), WordCap(22)});
        std::printf("[app] result: %u\n", sum.word());

        std::printf("[app] triggering the adder's bug...\n");
        const Capability crash =
            ctx.Call("adder.add", {WordCap(0xDEAD), WordCap(1)});
        std::printf("[app] callee faulted and unwound; we got status %s "
                    "and kept running\n",
                    StatusName(static_cast<Status>(
                        static_cast<int32_t>(crash.word()))));

        std::printf("[app] spatial safety demo: reading past a buffer...\n");
        auto buf = ctx.AllocStack(16);
        auto trap = ctx.Try([&] { ctx.LoadWord(buf.cap(), 16); });
        std::printf("[app] out-of-bounds load trapped: %s\n",
                    trap ? TrapCodeName(trap->cause) : "no trap?!");
        return StatusCap(Status::kOk);
      });

  image.Thread("main", /*priority=*/1, /*stack=*/4096, /*frames=*/8,
               "app.main");

  System system(machine, image.Build());
  system.Boot();
  const auto result = system.Run();
  std::printf("[host] system finished: %s\n",
              result == System::RunResult::kAllExited ? "all threads exited"
                                                      : "(unexpected)");
  return result == System::RunResult::kAllExited ? 0 : 1;
}

// The §5.3.3 IoT deployment as a runnable example: a MiniVM ("JavaScript")
// application subscribes to MQTT notifications over TLS and flashes the
// board's LEDs when one arrives. The simulated world plays broker, DHCP,
// DNS and NTP server. Run `bench_case_study` for the instrumented Fig. 7
// version with CPU-load tracing and the ping-of-death micro-reboot.
#include <cstdio>

#include "src/compat/posix_shim.h"
#include "src/js/minivm.h"
#include "src/net/netstack.h"
#include "src/net/world.h"
#include "src/rtos.h"
#include "src/sync/sync.h"

using namespace cheriot;

int main() {
  Machine machine;
  net::NetWorld world(machine);
  auto notifications = std::make_shared<int>(0);

  ImageBuilder image("iot-mqtt-app");
  image.Compartment("js_app")
      .Globals(128)
      .AllocCap("app_quota", 33 * 1024)
      .ImportMmio("led", kLedMmioBase, kMmioRegionSize, true)
      .ImportLibrary("minivm.interpreter")
      .Export("main", [notifications](CompartmentCtx& ctx,
                                      const std::vector<Capability>&) {
        std::printf("[app] waiting for the network (DHCP)...\n");
        ctx.Call("tcpip.wait_ready", {WordCap(~0u)});
        std::printf("[app] online; syncing clock via SNTP...\n");
        ctx.Call("sntp.sync", {WordCap(cost::kCoreHz)});
        std::printf("[app] wall clock: unix %u\n",
                    ctx.Call("sntp.now", {}).word());

        auto name = ctx.AllocStack(32);
        const char kBroker[] = "mqtt.example.com";
        ctx.WriteBytes(name.cap(), 0, kBroker, sizeof(kBroker) - 1);
        const Word ip = ctx.Call("dns.resolve",
                                 {name.cap(), WordCap(sizeof(kBroker) - 1)})
                            .word();
        std::printf("[app] resolved %s -> %u.%u.%u.%u\n", kBroker,
                    (ip >> 24) & 255, (ip >> 16) & 255, (ip >> 8) & 255,
                    ip & 255);

        const Capability quota = ctx.SealedImport("app_quota");
        auto id = ctx.AllocStack(8);
        ctx.WriteBytes(id.cap(), 0, "js-dev", 6);
        std::printf("[app] TLS handshake + MQTT connect...\n");
        const Capability session = ctx.Call(
            "mqtt.connect", {quota, WordCap(ip), WordCap(net::kMqttTlsPort),
                             id.cap(), WordCap(6)});
        if (!session.tag()) {
          std::printf("[app] connect failed\n");
          return StatusCap(Status::kCompartmentFail);
        }
        auto topic = ctx.AllocStack(8);
        ctx.WriteBytes(topic.cap(), 0, "leds", 4);
        ctx.Call("mqtt.subscribe", {session, topic.cap(), WordCap(4)});
        std::printf("[app] subscribed to 'leds'; handing control to the VM\n");

        // The notification handler, in MiniVM bytecode.
        const js::Program flash = js::Assemble(R"(
          push 255
          callhost 0 1   # led_set(0xFF)
          drop
          push 0
          callhost 0 1   # led_set(0)
          drop
          halt
        )");
        const Capability arena = compat::Malloc(ctx, js::kVmArenaBytes);
        const Capability led = ctx.Mmio("led");
        std::vector<js::HostFn> host = {
            [led](CompartmentCtx& c, const std::vector<Word>& a) -> Word {
              c.StoreWord(led, 0, a.empty() ? 0 : a[0]);
              return 0;
            }};

        for (int received = 0; received < 2;) {
          auto out = ctx.AllocStack(128);
          const auto n = static_cast<int32_t>(
              ctx.Call("mqtt.poll", {session, out.cap(), WordCap(128),
                                     WordCap(cost::kCoreHz)})
                  .word());
          if (n <= 0) {
            continue;
          }
          std::printf("[app] notification received; running the JS handler\n");
          js::ResetArena(ctx, arena);
          js::Run(ctx, arena, flash, host);
          ++received;
          ++*notifications;
        }
        ctx.Call("mqtt.disconnect", {quota, session});
        std::printf("[app] done\n");
        return StatusCap(Status::kOk);
      });

  js::RegisterMiniVmLibrary(image);
  net::UseNetwork(image, "js_app");
  sync::UseAllocator(image, "js_app");
  sync::UseScheduler(image, "js_app");
  compat::UseMalloc(image, "js_app", 8 * 1024);
  image.Thread("app", 3, 16 * 1024, 12, "js_app.main");

  System system(machine, image.Build());
  system.Boot();
  std::printf("[host] %zu compartments booted\n",
              system.boot().compartments.size());

  // Drive the world: push a notification once the client subscribes, then
  // another a second later.
  system.RunUntil([&] { return !world.mqtt_subscriptions().empty(); },
                  60ull * cost::kCoreHz);
  world.PublishMqtt("leds", {'o', 'n'});
  system.RunUntil([&] { return *notifications >= 1; }, 10ull * cost::kCoreHz);
  world.PublishMqtt("leds", {'o', 'f', 'f'});
  system.RunUntil(
      [&] { return system.threads()[1].state == GuestThread::State::kExited; },
      20ull * cost::kCoreHz);

  std::printf("[host] LED events observed: %zu; broker saw %u subscription(s)\n",
              machine.leds().events().size(),
              static_cast<unsigned>(world.mqtt_subscriptions().size()));
  return *notifications >= 2 ? 0 : 1;
}

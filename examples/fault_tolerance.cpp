// Fault tolerance and error handling (§3.2.6): scoped DURING/HANDLER
// handlers, a global handler that *corrects* a fault and resumes, and a full
// compartment micro-reboot with state reset — the three error-handling
// policies the paper describes.
#include <cstdio>

#include "src/rtos.h"
#include "src/sync/sync.h"

using namespace cheriot;

namespace {
struct CounterState {
  int requests_served = 0;
};
}  // namespace

int main() {
  Machine machine;
  ImageBuilder image("fault-tolerance");

  // Policy (b): a compartment whose global handler corrects the fault by
  // installing a valid capability and resuming.
  image.Compartment("self_healing")
      .Globals(64)
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo& info) {
        std::printf("[self_healing] handler: %s at 0x%x -> installing "
                    "corrected capability, resuming\n",
                    TrapCodeName(info.cause), info.fault_address);
        info.regs.a[0] = ctx.globals();
        return ErrorRecovery::kInstallContext;
      })
      .Export("read_config",
              [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                ctx.StoreWord(ctx.globals(), 0, 777);
                // Oops: dereferencing a config "pointer" that is a stale
                // integer. The handler redirects it to our globals.
                const Word v = ctx.LoadWord(Capability::FromWord(0x40), 0);
                std::printf("[self_healing] read_config -> %u (resumed!)\n", v);
                return WordCap(v);
              });

  // Policy (c): a stateful service that micro-reboots itself on any fault.
  image.Compartment("counter")
      .Globals(32)
      .AllocCap("cq", 4096)
      .State([] { return std::make_shared<CounterState>(); })
      .ErrorHandler([](CompartmentCtx& ctx, TrapInfo& info) {
        std::printf("[counter] fault (%s): micro-rebooting (5 steps, §3.2.6)\n",
                    TrapCodeName(info.cause));
        ctx.MicroRebootSelf();
        return ErrorRecovery::kForceUnwind;
      })
      .Export("serve",
              [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
                auto& state = ctx.State<CounterState>();
                ++state.requests_served;
                if (!args.empty() && args[0].word() == 666) {
                  ctx.LoadWord(Capability::FromWord(0xBAD), 0);  // crash
                }
                return WordCap(static_cast<Word>(state.requests_served));
              });
  sync::UseAllocator(image, "counter");

  image.Compartment("app")
      .ImportCompartment("self_healing.read_config")
      .ImportCompartment("counter.serve")
      .Export("main", [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        // Policy (a): scoped handlers, near-zero cost on the happy path.
        auto trap = ctx.Try([&] {
          auto buf = ctx.AllocStack(8);
          ctx.StoreWord(buf.cap(), 8, 1);  // out of bounds
        });
        std::printf("[app] scoped handler caught: %s\n",
                    trap ? TrapCodeName(trap->cause) : "(nothing)");

        ctx.Call("self_healing.read_config", {});

        std::printf("[app] counter.serve x3...\n");
        for (int i = 0; i < 3; ++i) {
          std::printf("[app]   served=%u\n",
                      ctx.Call("counter.serve", {}).word());
        }
        std::printf("[app] crashing the counter...\n");
        const Capability r = ctx.Call("counter.serve", {WordCap(666)});
        std::printf("[app] crash call returned status %s\n",
                    StatusName(static_cast<Status>(
                        static_cast<int32_t>(r.word()))));
        std::printf("[app] counter after micro-reboot (state reset to 0):\n");
        std::printf("[app]   served=%u (fresh count)\n",
                    ctx.Call("counter.serve", {}).word());
        return StatusCap(Status::kOk);
      });

  image.Thread("main", 1, 8192, 8, "app.main");

  System system(machine, image.Build());
  system.Boot();
  system.Run(8'000'000'000ull);
  std::printf("[host] counter compartment rebooted %u time(s)\n",
              system.boot().FindCompartment("counter")->reboot_count);
  return 0;
}

// Minimal dependency-free JSON document model, writer and parser — enough
// for the firmware audit report (§4). Not a general-purpose library: numbers
// are int64/double, strings are UTF-8 passed through verbatim.
#ifndef SRC_JSON_JSON_H_
#define SRC_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cheriot::json {

class Value;
using Array = std::vector<Value>;
// std::map keeps key order deterministic — audit reports must be
// reproducible byte-for-byte for signing workflows.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Value(int i) : type_(Type::kInt), int_(i) {}                    // NOLINT
  Value(int64_t i) : type_(Type::kInt), int_(i) {}                // NOLINT
  Value(uint32_t i) : type_(Type::kInt), int_(i) {}               // NOLINT
  Value(uint64_t i) : type_(Type::kInt),                          // NOLINT
                      int_(static_cast<int64_t>(i)) {}
  Value(double d) : type_(Type::kDouble), double_(d) {}           // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Value(std::string s) : type_(Type::kString),                    // NOLINT
                         string_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray),                           // NOLINT
                   array_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : type_(Type::kObject),                         // NOLINT
                    object_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool AsBool() const { return bool_; }
  int64_t AsInt() const { return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_; }
  double AsDouble() const { return type_ == Type::kDouble ? double_ : static_cast<double>(int_); }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return *array_; }
  Array& MutableArray() { return *array_; }
  const Object& AsObject() const { return *object_; }
  Object& MutableObject() { return *object_; }

  // Object lookup; returns a null Value for missing keys.
  const Value& operator[](const std::string& key) const;
  // Array index.
  const Value& operator[](size_t i) const { return (*array_)[i]; }
  bool Has(const std::string& key) const {
    return type_ == Type::kObject && object_->count(key) > 0;
  }
  size_t size() const;

  // Serialization. indent < 0 => compact single line.
  std::string Dump(int indent = 2) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

// Parses a JSON document. Throws std::runtime_error on malformed input.
Value Parse(const std::string& text);

std::string Escape(const std::string& s);

}  // namespace cheriot::json

#endif  // SRC_JSON_JSON_H_

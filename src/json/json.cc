#include "src/json/json.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace cheriot::json {

namespace {
const Value kNull{};
}

const Value& Value::operator[](const std::string& key) const {
  if (type_ != Type::kObject) {
    return kNull;
  }
  auto it = object_->find(key);
  return it == object_->end() ? kNull : it->second;
}

size_t Value::size() const {
  switch (type_) {
    case Type::kArray: return array_->size();
    case Type::kObject: return object_->size();
    default: return 0;
  }
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent) * depth, ' ');
  const char* nl = indent < 0 ? "" : "\n";
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      *out += buf;
      break;
    }
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      if (array_->empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < array_->size(); ++i) {
        *out += pad;
        (*array_)[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_->size()) {
          *out += ',';
        }
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (object_->empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      size_t i = 0;
      for (const auto& [k, v] : *object_) {
        *out += pad;
        *out += '"';
        *out += Escape(k);
        *out += "\": ";
        v.DumpTo(out, indent, depth + 1);
        if (++i < object_->size()) {
          *out += ',';
        }
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }
  bool Consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value ParseValue() {
    SkipWs();
    const char c = Peek();
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      return Value(ParseString());
    }
    if (Consume("true")) {
      return Value(true);
    }
    if (Consume("false")) {
      return Value(false);
    }
    if (Consume("null")) {
      return Value();
    }
    return ParseNumber();
  }

  Value ParseObject() {
    Expect('{');
    Object obj;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      obj.emplace(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return Value(std::move(obj));
    }
  }

  Value ParseArray() {
    Expect('[');
    Array arr;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return Value(std::move(arr));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("bad escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("bad \\u escape");
          }
          const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            // Minimal UTF-8 encoding (BMP only).
            if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            }
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  Value ParseNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) {
      Fail("invalid number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (is_double) {
      return Value(std::stod(tok));
    }
    return Value(static_cast<int64_t>(std::stoll(tok)));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Value Parse(const std::string& text) { return Parser(text).ParseDocument(); }

}  // namespace cheriot::json

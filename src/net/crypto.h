// Simulation-grade cryptography for the TLS-lite stack: real SHA-256,
// HMAC-SHA256 and ChaCha20 implementations, plus a deliberately toy
// Diffie-Hellman key exchange standing in for X25519 (the paper's BearSSL
// substitution, DESIGN.md §1).
//
// !! NOT FOR PRODUCTION USE: the DH group is tiny and the record protocol is
// a teaching vehicle for exercising the compartment graph, not real TLS.
#ifndef SRC_NET_CRYPTO_H_
#define SRC_NET_CRYPTO_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cheriot::net::crypto {

using Digest = std::array<uint8_t, 32>;
using Key = std::array<uint8_t, 32>;

Digest Sha256(const uint8_t* data, size_t len);
Digest Sha256(const std::vector<uint8_t>& data);

Digest HmacSha256(const uint8_t* key, size_t key_len, const uint8_t* data,
                  size_t len);

// Encrypts/decrypts in place (stream cipher; symmetric).
void ChaCha20Xor(const Key& key, uint64_t nonce, uint32_t counter,
                 uint8_t* data, size_t len);

// Toy DH over a 61-bit prime group (simulation only).
struct DhKeyPair {
  uint64_t secret;
  uint64_t public_value;
};
DhKeyPair DhGenerate(uint64_t entropy);
uint64_t DhShared(uint64_t secret, uint64_t peer_public);

// HKDF-ish key derivation: key = HMAC(salt, shared || label).
Key DeriveKey(uint64_t shared, const Digest& salt, const char* label);

// Number of 64-byte blocks a buffer occupies (for cycle accounting).
inline uint64_t BlocksFor(size_t bytes) { return (bytes + 63) / 64; }

}  // namespace cheriot::net::crypto

#endif  // SRC_NET_CRYPTO_H_

// Wire-format helpers for the from-scratch network stack: byte-order-aware
// packet reader/writer and header builders for Ethernet / ARP / IPv4 / ICMP /
// UDP / TCP. Network byte order throughout, as on the real wire.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::net {

using Bytes = std::vector<uint8_t>;
using MacAddress = std::array<uint8_t, 6>;
using Ipv4 = uint32_t;  // host byte order internally

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;
inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

std::string IpToString(Ipv4 ip);
Ipv4 IpFromParts(uint8_t a, uint8_t b, uint8_t c, uint8_t d);

// Sequential big-endian writer.
class PacketWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v >> 16));
    U16(static_cast<uint16_t>(v));
  }
  void Raw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_.insert(out_.end(), p, p + len);
  }
  void Mac(const MacAddress& mac) { Raw(mac.data(), mac.size()); }
  uint8_t* At(size_t offset) { return &out_[offset]; }
  size_t size() const { return out_.size(); }
  Bytes Take() { return std::move(out_); }

 private:
  Bytes out_;
};

// Sequential big-endian reader; `ok()` goes false on over-read instead of
// throwing, so parsers can bail out cleanly.
class PacketReader {
 public:
  explicit PacketReader(const Bytes& data) : data_(data) {}
  PacketReader(const uint8_t* data, size_t len) : view_(data), view_len_(len) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  MacAddress Mac();
  Bytes Raw(size_t len);
  void Skip(size_t len);
  size_t remaining() const { return size() - pos_; }
  size_t position() const { return pos_; }
  bool ok() const { return ok_; }

 private:
  size_t size() const { return view_ ? view_len_ : data_.size(); }
  const uint8_t* base() const { return view_ ? view_ : data_.data(); }

  Bytes data_;
  const uint8_t* view_ = nullptr;
  size_t view_len_ = 0;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Internet checksum (RFC 1071).
uint16_t Checksum(const uint8_t* data, size_t len, uint32_t seed = 0);

struct EthernetHeader {
  MacAddress dst{};
  MacAddress src{};
  uint16_t ethertype = 0;
};

struct Ipv4Header {
  uint8_t protocol = 0;
  uint8_t ttl = 64;
  Ipv4 src = 0;
  Ipv4 dst = 0;
  uint16_t total_length = 0;  // filled on parse
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;  // FIN=1, SYN=2, RST=4, PSH=8, ACK=16
  uint16_t window = 8192;
};

inline constexpr uint8_t kTcpFin = 1;
inline constexpr uint8_t kTcpSyn = 2;
inline constexpr uint8_t kTcpRst = 4;
inline constexpr uint8_t kTcpPsh = 8;
inline constexpr uint8_t kTcpAck = 16;

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
};

// A fully parsed inbound frame.
struct ParsedFrame {
  bool valid = false;
  EthernetHeader eth;
  // ARP
  bool is_arp = false;
  bool arp_is_request = false;
  Ipv4 arp_sender_ip = 0;
  MacAddress arp_sender_mac{};
  Ipv4 arp_target_ip = 0;
  // IPv4
  bool is_ipv4 = false;
  Ipv4Header ip;
  // ICMP
  bool is_icmp = false;
  uint8_t icmp_type = 0;
  uint16_t icmp_id = 0;
  uint16_t icmp_seq = 0;
  // Deliberately attacker-controlled: the length field the "ping of death"
  // bug trusts (§5.3.3). Equals the real payload size for honest packets.
  uint16_t icmp_claimed_len = 0;
  Bytes icmp_payload;
  // UDP / TCP
  bool is_udp = false;
  UdpHeader udp;
  bool is_tcp = false;
  TcpHeader tcp;
  Bytes payload;
};

ParsedFrame ParseFrame(const Bytes& frame);

// Frame builders (they compute lengths and checksums).
Bytes BuildArpRequest(const MacAddress& src_mac, Ipv4 src_ip, Ipv4 target_ip);
Bytes BuildArpReply(const MacAddress& src_mac, Ipv4 src_ip,
                    const MacAddress& dst_mac, Ipv4 dst_ip);
Bytes BuildIpv4(const MacAddress& src_mac, const MacAddress& dst_mac,
                Ipv4 src_ip, Ipv4 dst_ip, uint8_t protocol,
                const Bytes& l4_payload);
Bytes BuildIcmpEcho(uint8_t type, uint16_t id, uint16_t seq,
                    const Bytes& payload, uint16_t claimed_len_override = 0);
Bytes BuildUdp(uint16_t src_port, uint16_t dst_port, const Bytes& payload);
Bytes BuildTcp(const TcpHeader& header, const Bytes& payload);

}  // namespace cheriot::net

#endif  // SRC_NET_PACKET_H_

// DNS resolver compartment: DNS-lite queries over a UDP socket, with a small
// positive cache. Stateless towards callers — the query buffer is passed in,
// the answer is a plain word (§3.2.1-style nearly-stateless service).
#include <map>

#include "src/net/netstack.h"
#include "src/net/packet.h"
#include "src/net/world.h"
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"
#include "src/sync/sync.h"

namespace cheriot::net {

namespace {
struct DnsState {
  std::map<std::string, Ipv4> cache;
  uint16_t next_qid = 1;
  uint32_t queries_sent = 0;
};
}  // namespace

void AddDnsCompartment(ImageBuilder& image, const NetStackOptions& options) {
  if (image.FindCompartment("dns") != nullptr) {
    return;
  }
  auto comp = image.Compartment("dns");
  comp.CodeSize(3600)  // Table 2: 3.6 KB
      .Globals(400)    // Table 2: 400 B
      .AllocCap("dns_quota", options.dns_quota)
      .ImportCompartment("tcpip.socket_udp_new")
      .ImportCompartment("tcpip.udp_send")
      .ImportCompartment("tcpip.udp_recv")
      .ImportCompartment("tcpip.socket_close")
      .ImportCompartment("tcpip.dns_server")
      .State([] { return std::make_shared<DnsState>(); });
  sync::UseScheduler(image, "dns");
  sync::UseAllocator(image, "dns");

  comp.Export(
      "resolve",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<DnsState>();
        const Capability name_buf = args[0];
        const Word name_len = args[1].word();
        if (name_len == 0 || name_len > 255 ||
            !hardening::CheckPointer(name_buf, name_len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        std::string name(name_len, '\0');
        ctx.ReadBytes(name_buf, 0, name.data(), name_len);
        if (auto it = state.cache.find(name); it != state.cache.end()) {
          return WordCap(it->second);
        }
        const Ipv4 server = ctx.Call("tcpip.dns_server", {}).word();
        if (server == 0) {
          return StatusCap(Status::kWouldBlock);  // network not up yet
        }
        const Capability quota = ctx.SealedImport("dns_quota");
        const Capability sock =
            ctx.Call("tcpip.socket_udp_new",
                     {quota, WordCap(server), WordCap(kDnsPort)});
        if (!sock.tag()) {
          return sock;
        }
        Ipv4 answer = 0;
        for (int attempt = 0; attempt < 3 && answer == 0; ++attempt) {
          const uint16_t qid = state.next_qid++;
          Bytes query = {static_cast<uint8_t>(qid >> 8),
                         static_cast<uint8_t>(qid)};
          query.insert(query.end(), name.begin(), name.end());
          auto qbuf = ctx.AllocStack(static_cast<Address>(query.size() + 8));
          ctx.WriteBytes(qbuf.cap(), 0, query.data(),
                         static_cast<Address>(query.size()));
          ++state.queries_sent;
          ctx.Call("tcpip.udp_send",
                   {sock, hardening::ReadOnly(qbuf.cap(),
                                              static_cast<Address>(query.size())),
                    WordCap(static_cast<Word>(query.size()))});
          auto rbuf = ctx.AllocStack(16);
          const Capability r = ctx.Call(
              "tcpip.udp_recv",
              {sock, rbuf.cap(), WordCap(16), WordCap(16'500'000)});  // 500 ms
          if (static_cast<int32_t>(r.word()) >= 6) {
            const Word b0 = ctx.LoadByte(rbuf.cap(), 0);
            const Word b1 = ctx.LoadByte(rbuf.cap(), 1);
            if (((b0 << 8) | b1) == qid) {
              answer = (static_cast<Ipv4>(ctx.LoadByte(rbuf.cap(), 2)) << 24) |
                       (static_cast<Ipv4>(ctx.LoadByte(rbuf.cap(), 3)) << 16) |
                       (static_cast<Ipv4>(ctx.LoadByte(rbuf.cap(), 4)) << 8) |
                       ctx.LoadByte(rbuf.cap(), 5);
            }
          }
        }
        ctx.Call("tcpip.socket_close", {quota, sock});
        if (answer != 0) {
          state.cache[name] = answer;
        }
        return WordCap(answer);
      },
      2048, InterruptPosture::kEnabled);
}

}  // namespace cheriot::net

#include "src/net/netstack.h"

namespace cheriot::net {

void AddNetworkStack(ImageBuilder& image, const NetStackOptions& options) {
  AddFirewallCompartment(image);
  AddTcpIpCompartment(image, options);
  if (options.with_dns) {
    AddDnsCompartment(image, options);
  }
  if (options.with_sntp) {
    AddSntpCompartment(image, options);
  }
  if (options.with_tls) {
    AddTlsCompartment(image, options);
  }
  if (options.with_mqtt && options.with_tls) {
    AddMqttCompartment(image, options);
  }
}

void UseNetwork(ImageBuilder& image, const std::string& compartment,
                const NetStackOptions& options) {
  AddNetworkStack(image, options);
  auto comp = image.Compartment(compartment);
  comp.ImportCompartment("tcpip.wait_ready")
      .ImportCompartment("tcpip.ifconfig")
      .ImportCompartment("tcpip.ping")
      .ImportCompartment("tcpip.socket_connect_tcp")
      .ImportCompartment("tcpip.socket_send")
      .ImportCompartment("tcpip.socket_recv")
      .ImportCompartment("tcpip.socket_close")
      .ImportCompartment("tcpip.socket_udp_new")
      .ImportCompartment("tcpip.udp_send")
      .ImportCompartment("tcpip.udp_recv")
      .ImportCompartment("tcpip.dns_server");
  if (options.with_dns) {
    comp.ImportCompartment("dns.resolve");
  }
  if (options.with_sntp) {
    comp.ImportCompartment("sntp.sync").ImportCompartment("sntp.now");
  }
  if (options.with_tls) {
    comp.ImportCompartment("tls.connect")
        .ImportCompartment("tls.send")
        .ImportCompartment("tls.recv")
        .ImportCompartment("tls.close");
  }
  if (options.with_mqtt && options.with_tls) {
    comp.ImportCompartment("mqtt.connect")
        .ImportCompartment("mqtt.subscribe")
        .ImportCompartment("mqtt.publish")
        .ImportCompartment("mqtt.poll")
        .ImportCompartment("mqtt.disconnect");
  }
}

}  // namespace cheriot::net

// The firewall + driver compartment (Fig. 5): the only compartment with
// access to the Ethernet MMIO. Filters egress/ingress by protocol and port
// with a static-default + runtime-adjustable rule table, and moves frames
// between device registers and caller-provided buffers.
#include "src/net/netstack.h"

#include <vector>

#include "src/hw/devices.h"
#include "src/net/packet.h"
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"

namespace cheriot::net {

namespace {

struct FirewallState {
  struct Rule {
    uint8_t protocol;  // kIpProtoUdp / kIpProtoTcp; 0 = any
    uint16_t port;     // remote port; 0 = any
    bool allow;
  };
  // Default-deny for TCP/UDP except core services; ARP/ICMP always pass
  // (the stack needs them to function at all).
  std::vector<Rule> rules = {
      {kIpProtoUdp, 67, true},    // DHCP
      {kIpProtoUdp, 53, true},    // DNS
      {kIpProtoUdp, 123, true},   // NTP
      {kIpProtoTcp, 8883, true},  // MQTT over TLS
      {kIpProtoTcp, 7, true},     // echo (tests)
  };
  uint32_t tx_frames = 0;
  uint32_t rx_frames = 0;
  uint32_t dropped = 0;
};

bool FrameAllowed(FirewallState& state, const Bytes& frame, bool egress) {
  const ParsedFrame p = ParseFrame(frame);
  if (!p.valid) {
    return false;
  }
  if (p.is_arp || p.is_icmp) {
    return true;
  }
  uint8_t proto = 0;
  uint16_t remote_port = 0;
  if (p.is_udp) {
    proto = kIpProtoUdp;
    remote_port = egress ? p.udp.dst_port : p.udp.src_port;
  } else if (p.is_tcp) {
    proto = kIpProtoTcp;
    remote_port = egress ? p.tcp.dst_port : p.tcp.src_port;
  } else {
    return false;
  }
  for (const auto& rule : state.rules) {
    if ((rule.protocol == 0 || rule.protocol == proto) &&
        (rule.port == 0 || rule.port == remote_port)) {
      return rule.allow;
    }
  }
  return false;
}

}  // namespace

void AddFirewallCompartment(ImageBuilder& image) {
  if (image.FindCompartment("firewall") != nullptr) {
    return;
  }
  auto comp = image.Compartment("firewall");
  comp.CodeSize(6600)  // Table 2: Firewall + Driver 6.6 KB
      .Globals(176)    // Table 2: 176 B
      .ImportMmio("ethernet", kEthernetMmioBase, kMmioRegionSize, true)
      .State([] { return std::make_shared<FirewallState>(); });

  comp.Export(
      "send_frame",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<FirewallState>();
        const Capability buf = args[0];
        const Word len = args[1].word();
        if (len == 0 || len > 1536 ||
            !hardening::CheckPointer(buf, len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        Bytes frame(len);
        ctx.ReadBytes(buf, 0, frame.data(), len);
        if (!FrameAllowed(state, frame, /*egress=*/true)) {
          ++state.dropped;
          return StatusCap(Status::kNotPermittedByPolicy);
        }
        // Drive the no-offload adaptor word by word (§5.3.3).
        const Capability dev = ctx.Mmio("ethernet");
        ctx.StoreWord(dev, 0x10, len);
        for (Word i = 0; i < len; i += 4) {
          Word w = 0;
          for (Word b = 0; b < 4 && i + b < len; ++b) {
            w |= static_cast<Word>(frame[i + b]) << (8 * b);
          }
          ctx.StoreWord(dev, 0x14, w);
        }
        ctx.StoreWord(dev, 0x18, 1);
        ++state.tx_frames;
        return StatusCap(Status::kOk);
      },
      512, InterruptPosture::kDisabled);

  comp.Export(
      "recv_frame",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<FirewallState>();
        const Capability buf = args[0];
        const Word maxlen = args[1].word();
        if (!hardening::CheckPointer(
                buf, maxlen,
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        const Capability dev = ctx.Mmio("ethernet");
        for (;;) {
          if (ctx.LoadWord(dev, 0x00) == 0) {
            return WordCap(0);  // nothing pending
          }
          const Word len = ctx.LoadWord(dev, 0x04);  // latch
          Bytes frame(len);
          for (Word i = 0; i < len; i += 4) {
            const Word w = ctx.LoadWord(dev, 0x08);
            for (Word b = 0; b < 4 && i + b < len; ++b) {
              frame[i + b] = static_cast<uint8_t>(w >> (8 * b));
            }
          }
          ctx.StoreWord(dev, 0x0C, 1);  // pop
          if (!FrameAllowed(state, frame, /*egress=*/false)) {
            ++state.dropped;
            continue;  // filtered; try the next frame
          }
          if (len > maxlen) {
            ++state.dropped;
            continue;
          }
          ctx.WriteBytes(buf, 0, frame.data(), len);
          ++state.rx_frames;
          return WordCap(len);
        }
      },
      512, InterruptPosture::kDisabled);

  comp.Export(
      "add_rule",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<FirewallState>();
        state.rules.insert(state.rules.begin(),
                           {static_cast<uint8_t>(args[0].word()),
                            static_cast<uint16_t>(args[1].word()),
                            args[2].word() != 0});
        return StatusCap(Status::kOk);
      },
      128, InterruptPosture::kDisabled);

  // The adaptor's factory MAC, so the TCP/IP compartment can learn the
  // board's identity without baking an address into the stack (fleet boards
  // each carry a distinct one).
  comp.Export(
      "get_mac_lo",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        return WordCap(ctx.LoadWord(ctx.Mmio("ethernet"), 0x1C));
      },
      128, InterruptPosture::kDisabled);

  comp.Export(
      "get_mac_hi",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        return WordCap(ctx.LoadWord(ctx.Mmio("ethernet"), 0x20));
      },
      128, InterruptPosture::kDisabled);

  comp.Export(
      "stats",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto& state = ctx.State<FirewallState>();
        return WordCap((state.tx_frames << 16) | (state.rx_frames & 0xFFFF));
      },
      128, InterruptPosture::kDisabled);
}

}  // namespace cheriot::net

// The TCP/IP compartment: ARP, IPv4, ICMP echo, UDP, a stop-and-wait TCP
// with retransmission, and a DHCP-lite client. Connection state is exported
// as opaque token-sealed handles allocated against the *caller's* quota
// (§3.2.1, §3.2.3). The inbound parser contains a feature-flagged "ping of
// death" bug used by the §5.3.3 case study: with the bug enabled a malformed
// ICMP packet makes the parser read past its frame buffer, the CHERI bounds
// check traps, and the compartment's error handler micro-reboots the stack.
#include "src/net/netstack.h"

#include <array>
#include <deque>

#include "src/base/log.h"
#include "src/hw/devices.h"
#include "src/net/packet.h"
#include "src/net/world.h"  // well-known addresses of the simulated network
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"
#include "src/sync/sync.h"

namespace cheriot::net {

namespace {

constexpr Word kFrameBufBytes = 1536;
constexpr int kMaxSockets = 8;
constexpr Word kSegmentBytes = 1024;
constexpr Cycles kRtoCycles = 330'000;  // 10 ms
constexpr int kMaxRetries = 8;

// Globals layout: +0 ready-futex, +4 icmp-reply futex, +64.. socket futexes.
constexpr int kReadyFutex = 0;
constexpr int kIcmpFutex = 4;
constexpr int SocketFutexOffset(int i) { return 64 + 4 * i; }

struct Socket {
  bool live = false;
  uint8_t proto = 0;
  uint16_t local_port = 0;
  Ipv4 remote_ip = 0;
  uint16_t remote_port = 0;
  enum class Tcp { kClosed, kSynSent, kEstablished, kFinished } tcp_state =
      Tcp::kClosed;
  uint32_t snd_nxt = 0;
  uint32_t rcv_nxt = 0;
  uint32_t generation = 0;
  std::deque<uint8_t> rx;       // TCP byte stream
  std::deque<Bytes> rx_dgrams;  // UDP datagrams
  // Stop-and-wait retransmission state.
  Bytes unacked;
  uint32_t una_seq = 0;
  Cycles rto_at = 0;
  int retries = 0;
};

// Host-native compartment state (created by the state_factory, never
// serialized). Snapshot/restore contract (DESIGN.md §10): the durable truth
// about the worker's event-driven sleep is GUEST state — the thread's futex
// address and wake_at deadline in the scheduler's wait queues (KERN/SCHD
// sections) — while this struct, including the rto_at deadlines the worker
// derives its next wake from, is rebuilt on restore. Cold restore runs zero
// guest instructions, so a fresh default TcpIpState IS the post-boot state;
// replay restore re-executes the logged inputs, re-deriving every socket and
// retransmit deadline deterministically. The restore verify re-serializes
// the scheduler sections and byte-compares them, so a rebuilt native
// deadline that disagreed with the serialized guest wake_at would fail the
// restore rather than silently drift.
struct TcpIpState {
  bool started = false;
  bool ready = false;
  // Our MAC, read from the adaptor at bring-up (fleet boards differ).
  MacAddress mac = kDeviceMac;
  Ipv4 ip = 0;
  Ipv4 gateway = 0;
  Ipv4 dns = 0;
  bool have_gw_mac = false;
  MacAddress gw_mac{};
  std::array<Socket, kMaxSockets> sockets;
  uint16_t next_port = 49152;
  uint32_t next_generation = 1;
  uint32_t icmp_replies_sent = 0;
  uint32_t icmp_replies_seen = 0;
  bool pod_bug = false;
  Capability tx_buf;
  Capability rx_buf;
};

void BumpFutex(CompartmentCtx& ctx, int offset) {
  const Capability g = ctx.globals();
  ctx.StoreWord(g, offset, ctx.LoadWord(g, offset) + 1);
  ctx.FutexWake(g.AddOffset(offset), 1 << 30);
}

// Waits until pred() holds or the deadline passes, sleeping on the futex
// word at `offset` between checks.
template <typename Pred>
bool WaitOn(CompartmentCtx& ctx, int offset, Cycles timeout, Pred pred) {
  const Cycles deadline =
      timeout == ~0u ? ~0ull : ctx.Now() + timeout;
  while (!pred()) {
    if (ctx.Now() >= deadline) {
      return false;
    }
    const Word seen = ctx.LoadWord(ctx.globals(), offset);
    if (pred()) {
      return true;
    }
    const Cycles budget = deadline == ~0ull
                              ? ~0u
                              : static_cast<Cycles>(deadline - ctx.Now());
    ctx.FutexWait(ctx.globals().AddOffset(offset), seen,
                  static_cast<Word>(std::min<Cycles>(budget, 0xFFFFFFFEu)));
  }
  return true;
}

void EnsureBuffers(CompartmentCtx& ctx, TcpIpState& state) {
  if (state.tx_buf.tag() && state.rx_buf.tag()) {
    return;
  }
  const Capability quota = ctx.SealedImport("tcpip_quota");
  state.tx_buf = ctx.HeapAllocate(quota, kFrameBufBytes);
  state.rx_buf = ctx.HeapAllocate(quota, kFrameBufBytes);
}

void SendFrame(CompartmentCtx& ctx, TcpIpState& state, const Bytes& frame) {
  EnsureBuffers(ctx, state);
  ctx.WriteBytes(state.tx_buf, 0, frame.data(),
                 static_cast<Address>(frame.size()));
  // De-privilege before crossing the trust boundary (§3.2.5).
  const Capability view = hardening::ReadOnly(
      state.tx_buf, static_cast<Address>(frame.size()));
  ctx.Call("firewall.send_frame",
           {view, WordCap(static_cast<Word>(frame.size()))});
}

void SendIp(CompartmentCtx& ctx, TcpIpState& state, Ipv4 dst, uint8_t proto,
            const Bytes& l4) {
  SendFrame(ctx, state,
            BuildIpv4(state.mac, state.gw_mac, state.ip, dst, proto, l4));
}

Socket* SocketFromHandle(CompartmentCtx& ctx, TcpIpState& state,
                         const Capability& handle, int* index_out) {
  const Capability payload =
      ctx.TokenUnseal(ctx.SealingKey("tcpip.socket"), handle);
  if (!payload.tag()) {
    return nullptr;
  }
  const Word index = ctx.LoadWord(payload, 0);
  const Word generation = ctx.LoadWord(payload, 4);
  if (index >= kMaxSockets || !state.sockets[index].live ||
      state.sockets[index].generation != generation) {
    return nullptr;
  }
  if (index_out != nullptr) {
    *index_out = static_cast<int>(index);
  }
  return &state.sockets[index];
}

Capability MakeHandle(CompartmentCtx& ctx, const Capability& caller_quota,
                      int index, uint32_t generation) {
  const Capability key = ctx.SealingKey("tcpip.socket");
  const Capability handle = ctx.TokenObjNew(caller_quota, key, 8);
  if (!handle.tag()) {
    return handle;
  }
  const Capability payload = ctx.TokenUnseal(key, handle);
  ctx.StoreWord(payload, 0, static_cast<Word>(index));
  ctx.StoreWord(payload, 4, generation);
  return handle;
}

int AllocSocket(TcpIpState& state) {
  for (int i = 0; i < kMaxSockets; ++i) {
    if (!state.sockets[i].live) {
      state.sockets[i] = Socket{};
      state.sockets[i].live = true;
      state.sockets[i].generation = state.next_generation++;
      return i;
    }
  }
  return -1;
}

void TcpTransmit(CompartmentCtx& ctx, TcpIpState& state, Socket& s,
                 uint8_t flags, const Bytes& payload) {
  TcpHeader h;
  h.src_port = s.local_port;
  h.dst_port = s.remote_port;
  h.seq = s.snd_nxt;
  h.ack = s.rcv_nxt;
  h.flags = flags;
  SendIp(ctx, state, s.remote_ip, kIpProtoTcp, BuildTcp(h, payload));
  if (!payload.empty() || (flags & (kTcpSyn | kTcpFin))) {
    s.unacked = payload;
    s.una_seq = s.snd_nxt;
    s.rto_at = ctx.Now() + kRtoCycles;
    s.retries = 0;
    // The worker sleeps event-driven on the ethernet IRQ futex; kick it so
    // its next sleep honours this segment's retransmit deadline.
    ctx.FutexWake(ctx.InterruptFutex(IrqLine::kEthernet), 1);
  }
  s.snd_nxt += payload.size();
  if (flags & (kTcpSyn | kTcpFin)) {
    s.snd_nxt += 1;
  }
}

// Parses and dispatches one received frame. `view` is bounded to the frame
// length — the interface-hardening step the buggy path violates.
void ProcessFrame(CompartmentCtx& ctx, TcpIpState& state,
                  const Capability& view, Word len) {
  Bytes frame(len);
  ctx.ReadBytes(view, 0, frame.data(), len);
  const ParsedFrame p = ParseFrame(frame);
  if (!p.valid) {
    return;
  }

  if (p.is_arp && !p.arp_is_request && p.arp_sender_ip == state.gateway) {
    state.gw_mac = p.arp_sender_mac;
    state.have_gw_mac = true;
    BumpFutex(ctx, kReadyFutex);
    return;
  }

  if (p.is_icmp && p.icmp_type == 8 && p.ip.dst == state.ip) {
    // Echo request: build the reply payload from the frame buffer.
    constexpr Word kIcmpPayloadOffset = 14 + 20 + 10;
    Bytes payload;
    if (state.pod_bug) {
      // BUG (feature-flagged, §5.3.3): trust the attacker-controlled length
      // field. On a malformed packet this reads past the frame view; the
      // capability bounds check turns it into a clean trap instead of an
      // info leak.
      payload.resize(p.icmp_claimed_len);
      ctx.ReadBytes(view, kIcmpPayloadOffset, payload.data(),
                    p.icmp_claimed_len);
    } else {
      // Hardened parser: validate the length against the actual frame.
      if (p.icmp_claimed_len != p.icmp_payload.size()) {
        return;  // malformed; drop
      }
      payload = p.icmp_payload;
    }
    SendIp(ctx, state, p.ip.src, kIpProtoIcmp,
           BuildIcmpEcho(0, p.icmp_id, p.icmp_seq, payload));
    ++state.icmp_replies_sent;
    return;
  }
  if (p.is_icmp && p.icmp_type == 0) {
    ++state.icmp_replies_seen;
    BumpFutex(ctx, kIcmpFutex);
    return;
  }

  if (p.is_udp) {
    for (int i = 0; i < kMaxSockets; ++i) {
      Socket& s = state.sockets[i];
      if (s.live && s.proto == kIpProtoUdp &&
          s.local_port == p.udp.dst_port) {
        if (s.rx_dgrams.size() < 16) {
          s.rx_dgrams.push_back(p.payload);
        }
        BumpFutex(ctx, SocketFutexOffset(i));
        return;
      }
    }
    return;
  }

  if (p.is_tcp) {
    for (int i = 0; i < kMaxSockets; ++i) {
      Socket& s = state.sockets[i];
      if (!s.live || s.proto != kIpProtoTcp ||
          s.local_port != p.tcp.dst_port || s.remote_port != p.tcp.src_port) {
        continue;
      }
      if (p.tcp.flags & kTcpRst) {
        s.tcp_state = Socket::Tcp::kClosed;
        BumpFutex(ctx, SocketFutexOffset(i));
        return;
      }
      if (s.tcp_state == Socket::Tcp::kSynSent &&
          (p.tcp.flags & kTcpSyn) && (p.tcp.flags & kTcpAck)) {
        s.rcv_nxt = p.tcp.seq + 1;
        s.unacked.clear();
        TcpHeader ack;
        ack.src_port = s.local_port;
        ack.dst_port = s.remote_port;
        ack.seq = s.snd_nxt;
        ack.ack = s.rcv_nxt;
        ack.flags = kTcpAck;
        SendIp(ctx, state, s.remote_ip, kIpProtoTcp, BuildTcp(ack, {}));
        s.tcp_state = Socket::Tcp::kEstablished;
        BumpFutex(ctx, SocketFutexOffset(i));
        return;
      }
      if (p.tcp.flags & kTcpAck) {
        const uint32_t expected =
            s.una_seq + static_cast<uint32_t>(s.unacked.size()) +
            ((s.tcp_state == Socket::Tcp::kSynSent ||
              s.tcp_state == Socket::Tcp::kFinished)
                 ? 1
                 : 0);
        if (!s.unacked.empty() && p.tcp.ack >= expected) {
          s.unacked.clear();
          BumpFutex(ctx, SocketFutexOffset(i));
        } else if (s.unacked.empty()) {
          BumpFutex(ctx, SocketFutexOffset(i));
        }
      }
      if (!p.payload.empty() && p.tcp.seq == s.rcv_nxt) {
        s.rcv_nxt += p.payload.size();
        for (uint8_t byte : p.payload) {
          s.rx.push_back(byte);
        }
        TcpHeader ack;
        ack.src_port = s.local_port;
        ack.dst_port = s.remote_port;
        ack.seq = s.snd_nxt;
        ack.ack = s.rcv_nxt;
        ack.flags = kTcpAck;
        SendIp(ctx, state, s.remote_ip, kIpProtoTcp, BuildTcp(ack, {}));
        BumpFutex(ctx, SocketFutexOffset(i));
      }
      if (p.tcp.flags & kTcpFin) {
        s.tcp_state = Socket::Tcp::kFinished;
        BumpFutex(ctx, SocketFutexOffset(i));
      }
      return;
    }
    return;
  }
}

// Drains the device through the firewall; returns frames processed.
int PollFrames(CompartmentCtx& ctx, TcpIpState& state) {
  EnsureBuffers(ctx, state);
  int processed = 0;
  for (;;) {
    const Capability rx_view = state.rx_buf.WithBounds(
        state.rx_buf.base(), kFrameBufBytes);
    const Word len =
        ctx.Call("firewall.recv_frame", {rx_view, WordCap(kFrameBufBytes)})
            .word();
    if (len == 0 || static_cast<int32_t>(len) < 0 || len > kFrameBufBytes) {
      return processed;
    }
    // Interface hardening: parse through a view bounded to the frame.
    ProcessFrame(ctx, state, state.rx_buf.WithBounds(state.rx_buf.base(), len),
                 len);
    ++processed;
  }
}

// Retransmit pass for the stop-and-wait TCP.
void CheckRetransmits(CompartmentCtx& ctx, TcpIpState& state) {
  for (int i = 0; i < kMaxSockets; ++i) {
    Socket& s = state.sockets[i];
    if (!s.live || s.proto != kIpProtoTcp || s.unacked.empty() ||
        ctx.Now() < s.rto_at) {
      continue;
    }
    if (++s.retries > kMaxRetries) {
      s.tcp_state = Socket::Tcp::kClosed;
      s.unacked.clear();
      BumpFutex(ctx, SocketFutexOffset(i));
      continue;
    }
    TcpHeader h;
    h.src_port = s.local_port;
    h.dst_port = s.remote_port;
    h.seq = s.una_seq;
    h.ack = s.rcv_nxt;
    h.flags = s.tcp_state == Socket::Tcp::kSynSent
                  ? kTcpSyn
                  : static_cast<uint8_t>(kTcpAck | kTcpPsh);
    SendIp(ctx, state, s.remote_ip, kIpProtoTcp, BuildTcp(h, s.unacked));
    s.rto_at = ctx.Now() + kRtoCycles * (1 + s.retries);
  }
}

// DHCP-lite + ARP bring-up. Runs on the worker thread.
Status StartNetwork(CompartmentCtx& ctx, TcpIpState& state) {
  EnsureBuffers(ctx, state);
  if (!state.tx_buf.tag() || !state.rx_buf.tag()) {
    return Status::kNoMemory;
  }
  state.started = true;
  // Learn our own identity from the adaptor before talking to anyone.
  const Word mac_lo = ctx.Call("firewall.get_mac_lo", {}).word();
  const Word mac_hi = ctx.Call("firewall.get_mac_hi", {}).word();
  for (int i = 0; i < 4; ++i) {
    state.mac[i] = static_cast<uint8_t>(mac_lo >> (8 * i));
  }
  state.mac[4] = static_cast<uint8_t>(mac_hi);
  state.mac[5] = static_cast<uint8_t>(mac_hi >> 8);
  // Broadcast DHCP discover/request (gateway MAC unknown: broadcast).
  state.gw_mac = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  const Cycles deadline = ctx.Now() + 5 * cost::kCoreHz;
  int phase = 0;  // 0 = discover, 1 = request, 2 = arp, 3 = done
  Ipv4 offered = 0;
  while (ctx.Now() < deadline && phase < 3) {
    if (phase == 0) {
      SendFrame(ctx, state,
                BuildIpv4(state.mac, state.gw_mac, 0, 0xFFFFFFFF, kIpProtoUdp,
                          BuildUdp(68, kDhcpPort, {1})));
    } else if (phase == 1) {
      Bytes req = {3};
      for (int i = 3; i >= 0; --i) {
        req.push_back(static_cast<uint8_t>(offered >> (8 * i)));
      }
      SendFrame(ctx, state,
                BuildIpv4(state.mac, state.gw_mac, 0, 0xFFFFFFFF, kIpProtoUdp,
                          BuildUdp(68, kDhcpPort, req)));
    } else {
      SendFrame(ctx, state,
                BuildArpRequest(state.mac, state.ip, state.gateway));
    }
    // Poll for the reply (the DHCP-lite exchange has no sockets yet).
    const Cycles wait_until = ctx.Now() + 330'000;  // 10 ms
    while (ctx.Now() < wait_until) {
      EnsureBuffers(ctx, state);
      const Word len = ctx.Call("firewall.recv_frame",
                                {state.rx_buf, WordCap(kFrameBufBytes)})
                           .word();
      if (len == 0 || static_cast<int32_t>(len) < 0) {
        ctx.SleepCycles(3'300);
        continue;
      }
      Bytes frame(len);
      ctx.ReadBytes(state.rx_buf, 0, frame.data(), len);
      const ParsedFrame p = ParseFrame(frame);
      if (phase == 0 && p.valid && p.is_udp && !p.payload.empty() &&
          p.payload[0] == 2 && p.payload.size() >= 5) {
        offered = (static_cast<Ipv4>(p.payload[1]) << 24) |
                  (static_cast<Ipv4>(p.payload[2]) << 16) |
                  (static_cast<Ipv4>(p.payload[3]) << 8) | p.payload[4];
        phase = 1;
        break;
      }
      if (phase == 1 && p.valid && p.is_udp && !p.payload.empty() &&
          p.payload[0] == 5 && p.payload.size() >= 13) {
        auto ip_at = [&](int off) {
          return (static_cast<Ipv4>(p.payload[off]) << 24) |
                 (static_cast<Ipv4>(p.payload[off + 1]) << 16) |
                 (static_cast<Ipv4>(p.payload[off + 2]) << 8) |
                 p.payload[off + 3];
        };
        state.ip = ip_at(1);
        state.gateway = ip_at(5);
        state.dns = ip_at(9);
        phase = 2;
        break;
      }
      if (phase == 2 && p.valid && p.is_arp && !p.arp_is_request &&
          p.arp_sender_ip == state.gateway) {
        state.gw_mac = p.arp_sender_mac;
        state.have_gw_mac = true;
        phase = 3;
        break;
      }
    }
  }
  if (phase < 3) {
    return Status::kTimedOut;
  }
  state.ready = true;
  BumpFutex(ctx, kReadyFutex);
  return Status::kOk;
}

}  // namespace

void AddTcpIpCompartment(ImageBuilder& image, const NetStackOptions& options) {
  if (image.FindCompartment("tcpip") != nullptr) {
    return;
  }
  AddFirewallCompartment(image);
  auto comp = image.Compartment("tcpip");
  comp.CodeSize(38 * 1024, /*wrapper=*/static_cast<uint32_t>(38 * 1024 * 0.23))
      .Globals(1100)  // Table 2: 1.1 KB
      .AllocCap("tcpip_quota", options.tcpip_quota)
      .OwnSealingType("tcpip.socket")
      .ImportCompartment("firewall.send_frame")
      .ImportCompartment("firewall.recv_frame")
      .ImportCompartment("firewall.get_mac_lo")
      .ImportCompartment("firewall.get_mac_hi")
      .ImportCompartment("sched.interrupt_futex_get")
      .State([options] {
        auto state = std::make_shared<TcpIpState>();
        state->pod_bug = options.ping_of_death_bug;
        return state;
      });
  sync::UseScheduler(image, "tcpip");
  sync::UseAllocator(image, "tcpip");
  image.Compartment("tcpip")
      .ImportCompartment("alloc.token_obj_new")
      .ImportCompartment("alloc.token_obj_destroy");

  if (options.microreboot_on_fault) {
    comp.ErrorHandler([](CompartmentCtx& ctx, TrapInfo& info) {
      ctx.DebugLog("tcpip fault (%s); micro-rebooting",
                   TrapCodeName(info.cause));
      ctx.MicroRebootSelf();
      return ErrorRecovery::kForceUnwind;
    });
  }

  // --- Worker: drains frames, runs timers. Runs under the supervisor. ---
  comp.Export(
      "worker_run",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto& state = ctx.State<TcpIpState>();
        if (!state.started) {
          const Status s = StartNetwork(ctx, state);
          if (s != Status::kOk) {
            state.started = false;
            return StatusCap(s);
          }
        }
        const Capability irq_futex =
            ctx.InterruptFutex(IrqLine::kEthernet);
        for (;;) {
          const Word seen = ctx.LoadWord(irq_futex, 0);
          PollFrames(ctx, state);
          CheckRetransmits(ctx, state);
          // Event-driven sleep: frame arrivals wake the ethernet IRQ futex,
          // so the timeout only has to cover the earliest TCP retransmit
          // deadline. With nothing unacked a 1 s safety tick replaces the
          // old fixed 10 ms heartbeat, which on an idle stack was pure
          // wasted wakeups — and the dominant barrier source in idle
          // fleets (DESIGN.md §6.1).
          Cycles wake = ctx.Now() + 33'000'000;
          for (int i = 0; i < kMaxSockets; ++i) {
            const Socket& s = state.sockets[i];
            if (s.live && s.proto == kIpProtoTcp && !s.unacked.empty()) {
              wake = std::min(wake, s.rto_at);
            }
          }
          const Cycles now = ctx.Now();
          const Word budget =
              wake > now ? static_cast<Word>(
                               std::min<Cycles>(wake - now, 0xFFFFFFFEu))
                         : 1;
          ctx.FutexWait(irq_futex, seen, budget);
        }
      },
      1024, InterruptPosture::kEnabled);

  // --- NetAPI ---
  comp.Export(
      "wait_ready",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        const Word timeout = args.empty() ? ~0u : args[0].word();
        const bool ok =
            WaitOn(ctx, kReadyFutex, timeout, [&] { return state.ready; });
        return StatusCap(ok ? Status::kOk : Status::kTimedOut);
      },
      512, InterruptPosture::kDisabled);

  comp.Export(
      "ifconfig",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        return WordCap(ctx.State<TcpIpState>().ip);
      },
      128, InterruptPosture::kDisabled);

  comp.Export(
      "stats",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto& state = ctx.State<TcpIpState>();
        return WordCap(state.icmp_replies_sent);
      },
      128, InterruptPosture::kDisabled);

  comp.Export(
      "ping",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        if (!state.ready) {
          return StatusCap(Status::kWouldBlock);
        }
        const Ipv4 dst = args[0].word();
        const Word timeout = args.size() > 1 ? args[1].word() : 33'000'000;
        const uint32_t before = state.icmp_replies_seen;
        SendIp(ctx, state, dst, kIpProtoIcmp,
               BuildIcmpEcho(8, 0x77, 1, Bytes(16, 0x42)));
        const bool ok = WaitOn(ctx, kIcmpFutex, timeout, [&] {
          return state.icmp_replies_seen > before;
        });
        return StatusCap(ok ? Status::kOk : Status::kTimedOut);
      },
      768, InterruptPosture::kDisabled);

  comp.Export(
      "socket_connect_tcp",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        const Capability caller_quota = args[0];
        const Ipv4 dst = args[1].word();
        const uint16_t port = static_cast<uint16_t>(args[2].word());
        const Word timeout =
            args.size() > 3 ? args[3].word() : 33'000'000;
        if (!state.ready) {
          return StatusCap(Status::kWouldBlock);
        }
        const int index = AllocSocket(state);
        if (index < 0) {
          return StatusCap(Status::kNoMemory);
        }
        Socket& s = state.sockets[index];
        s.proto = kIpProtoTcp;
        s.local_port = state.next_port++;
        s.remote_ip = dst;
        s.remote_port = port;
        s.snd_nxt = 0x1000 + s.local_port;
        s.tcp_state = Socket::Tcp::kSynSent;
        TcpTransmit(ctx, state, s, kTcpSyn, {});
        const bool ok = WaitOn(ctx, SocketFutexOffset(index), timeout, [&] {
          return s.tcp_state != Socket::Tcp::kSynSent;
        });
        if (!ok || s.tcp_state != Socket::Tcp::kEstablished) {
          s.live = false;
          return StatusCap(ok ? Status::kNotFound : Status::kTimedOut);
        }
        // The handle is allocated with the caller's quota (§3.2.3).
        const Capability handle =
            MakeHandle(ctx, caller_quota, index, s.generation);
        if (!handle.tag()) {
          s.live = false;
        }
        return handle;
      },
      1024, InterruptPosture::kDisabled);

  comp.Export(
      "socket_send",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        int index = -1;
        Socket* s = SocketFromHandle(ctx, state, args[0], &index);
        const Capability buf = args[1];
        const Word len = args[2].word();
        if (s == nullptr || s->proto != kIpProtoTcp) {
          return StatusCap(Status::kInvalidArgument);
        }
        if (!hardening::CheckPointer(buf, len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        if (s->tcp_state != Socket::Tcp::kEstablished) {
          return StatusCap(Status::kNotFound);
        }
        Bytes data(len);
        ctx.ReadBytes(buf, 0, data.data(), len);
        size_t off = 0;
        while (off < data.size()) {
          const size_t n = std::min<size_t>(kSegmentBytes, data.size() - off);
          TcpTransmit(ctx, state, *s, kTcpAck | kTcpPsh,
                      Bytes(data.begin() + off, data.begin() + off + n));
          // Stop-and-wait: block until the segment is acknowledged (the
          // worker thread processes the ACK and wakes us).
          const bool acked =
              WaitOn(ctx, SocketFutexOffset(index), 33'000'000,
                     [&] { return s->unacked.empty() ||
                                  s->tcp_state == Socket::Tcp::kClosed; });
          if (!acked || s->tcp_state == Socket::Tcp::kClosed) {
            return StatusCap(Status::kTimedOut);
          }
          off += n;
        }
        return StatusCap(Status::kOk);
      },
      1024, InterruptPosture::kDisabled);

  comp.Export(
      "socket_recv",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        int index = -1;
        Socket* s = SocketFromHandle(ctx, state, args[0], &index);
        const Capability buf = args[1];
        const Word maxlen = args[2].word();
        const Word timeout = args.size() > 3 ? args[3].word() : ~0u;
        if (s == nullptr ||
            !hardening::CheckPointer(
                buf, maxlen,
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        const bool got = WaitOn(ctx, SocketFutexOffset(index), timeout, [&] {
          return !s->rx.empty() || s->tcp_state == Socket::Tcp::kClosed ||
                 s->tcp_state == Socket::Tcp::kFinished;
        });
        if (!got) {
          return StatusCap(Status::kTimedOut);
        }
        if (s->rx.empty()) {
          return WordCap(0);  // orderly shutdown
        }
        Word n = 0;
        Bytes out;
        while (n < maxlen && !s->rx.empty()) {
          out.push_back(s->rx.front());
          s->rx.pop_front();
          ++n;
        }
        ctx.WriteBytes(buf, 0, out.data(), n);
        return WordCap(n);
      },
      1024, InterruptPosture::kDisabled);

  comp.Export(
      "socket_close",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        const Capability caller_quota = args[0];
        int index = -1;
        Socket* s = SocketFromHandle(ctx, state, args[1], &index);
        if (s == nullptr) {
          return StatusCap(Status::kInvalidArgument);
        }
        if (s->proto == kIpProtoTcp &&
            s->tcp_state == Socket::Tcp::kEstablished) {
          TcpTransmit(ctx, state, *s, kTcpFin | kTcpAck, {});
        }
        s->live = false;
        // Destroying the handle needs both the caller's allocation
        // capability and our sealing key (§3.2.3).
        return StatusCap(ctx.TokenObjDestroy(
            caller_quota, ctx.SealingKey("tcpip.socket"), args[1]));
      },
      768, InterruptPosture::kDisabled);

  comp.Export(
      "socket_udp_new",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        if (!state.ready) {
          return StatusCap(Status::kWouldBlock);
        }
        const Capability caller_quota = args[0];
        const Ipv4 remote = args[1].word();
        const uint16_t port = static_cast<uint16_t>(args[2].word());
        const int index = AllocSocket(state);
        if (index < 0) {
          return StatusCap(Status::kNoMemory);
        }
        Socket& s = state.sockets[index];
        s.proto = kIpProtoUdp;
        s.local_port = state.next_port++;
        s.remote_ip = remote;
        s.remote_port = port;
        const Capability handle =
            MakeHandle(ctx, caller_quota, index, s.generation);
        if (!handle.tag()) {
          s.live = false;
        }
        return handle;
      },
      768, InterruptPosture::kDisabled);

  comp.Export(
      "udp_send",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        Socket* s = SocketFromHandle(ctx, state, args[0], nullptr);
        const Capability buf = args[1];
        const Word len = args[2].word();
        if (s == nullptr || s->proto != kIpProtoUdp ||
            !hardening::CheckPointer(buf, len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        Bytes data(len);
        ctx.ReadBytes(buf, 0, data.data(), len);
        SendIp(ctx, state, s->remote_ip, kIpProtoUdp,
               BuildUdp(s->local_port, s->remote_port, data));
        return StatusCap(Status::kOk);
      },
      768, InterruptPosture::kDisabled);

  comp.Export(
      "udp_recv",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TcpIpState>();
        int index = -1;
        Socket* s = SocketFromHandle(ctx, state, args[0], &index);
        const Capability buf = args[1];
        const Word maxlen = args[2].word();
        const Word timeout = args.size() > 3 ? args[3].word() : ~0u;
        if (s == nullptr || s->proto != kIpProtoUdp ||
            !hardening::CheckPointer(
                buf, maxlen,
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        const bool got = WaitOn(ctx, SocketFutexOffset(index), timeout,
                                [&] { return !s->rx_dgrams.empty(); });
        if (!got) {
          return StatusCap(Status::kTimedOut);
        }
        Bytes dgram = s->rx_dgrams.front();
        s->rx_dgrams.pop_front();
        const Word n = std::min<Word>(maxlen, static_cast<Word>(dgram.size()));
        ctx.WriteBytes(buf, 0, dgram.data(), n);
        return WordCap(n);
      },
      768, InterruptPosture::kDisabled);

  comp.Export(
      "dns_server",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        return WordCap(ctx.State<TcpIpState>().dns);
      },
      128, InterruptPosture::kDisabled);

  // --- Supervisor: keeps the worker alive across micro-reboots. ---
  if (image.FindCompartment("net_supervisor") == nullptr) {
    image.Compartment("net_supervisor")
        .CodeSize(512)
        .Globals(16)
        .ImportCompartment("tcpip.worker_run")
        .Export("run",
                [](CompartmentCtx& ctx, const std::vector<Capability>&) {
                  for (;;) {
                    ctx.Call("tcpip.worker_run", {});
                    // The stack faulted and micro-rebooted (or refused the
                    // call while rebooting): back off briefly and restart.
                    ctx.SleepCycles(33'000);
                  }
                  return StatusCap(Status::kOk);  // unreachable
                });
    sync::UseScheduler(image, "net_supervisor");
    image.Thread("net.worker", options.worker_priority, 8 * 1024, 8,
                 "net_supervisor.run");
  }
}

}  // namespace cheriot::net

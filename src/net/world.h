// The simulated "outside world" behind the Ethernet device: a gateway host
// providing ARP, DHCP, DNS, NTP and an MQTT broker behind TLS-lite. This is
// the substitution for the paper's real network testbed (DESIGN.md §1): it
// runs natively (it is the environment, not the system under test) and
// exchanges frames with the guest through the device model with configurable
// link latency.
#ifndef SRC_NET_WORLD_H_
#define SRC_NET_WORLD_H_

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/net/crypto.h"
#include "src/net/packet.h"

namespace cheriot::net {

// Well-known addresses of the simulated network.
inline constexpr Ipv4 kWorldIp = 0x0A000001;        // 10.0.0.1 (gateway/host)
inline constexpr Ipv4 kDeviceIp = 0x0A000002;       // 10.0.0.2 (DHCP offer)
inline constexpr uint16_t kDnsPort = 53;
inline constexpr uint16_t kDhcpPort = 67;
inline constexpr uint16_t kNtpPort = 123;
inline constexpr uint16_t kEchoPort = 7;            // plain TCP echo service
inline constexpr uint16_t kMqttTlsPort = 8883;
inline constexpr MacAddress kWorldMac = {2, 0, 0, 0, 0, 1};
inline constexpr MacAddress kDeviceMac = {2, 0, 0, 0, 0, 2};

// --- Compact wire protocols (simulation-grade, see DESIGN.md) ---
// DHCP-lite (UDP 67): [1]=discover -> [2, ip]; [3, ip]=request -> [5, ip,
//   gateway_ip, dns_ip]=ack.
// DNS-lite (UDP 53): [qid u16][name...] -> [qid u16][ip u32] (0 = NXDOMAIN).
// NTP-lite (UDP 123): [0x4E] -> [unix_seconds u32].
// TLS-lite record: [type u8][len u16][body]; type 1 = hello, 2 = data.
// MQTT-lite message: [op u8][len u16][body]; 1=CONNECT 2=CONNACK
//   3=SUBSCRIBE 4=SUBACK 5=PUBLISH([topic_len u8][topic][payload])
//   6=PINGREQ 7=PINGRESP.
inline constexpr uint8_t kTlsRecordHello = 1;
inline constexpr uint8_t kTlsRecordData = 2;
inline constexpr uint8_t kMqttConnect = 1;
inline constexpr uint8_t kMqttConnAck = 2;
inline constexpr uint8_t kMqttSubscribe = 3;
inline constexpr uint8_t kMqttSubAck = 4;
inline constexpr uint8_t kMqttPublish = 5;
inline constexpr uint8_t kMqttPingReq = 6;
inline constexpr uint8_t kMqttPingResp = 7;

struct WorldOptions {
  Cycles link_latency = 3'300;        // ~100 us at 33 MHz
  // Names the DNS-lite server resolves.
  std::map<std::string, Ipv4> dns_table = {
      {"mqtt.example.com", kWorldIp},
      {"ntp.example.com", kWorldIp},
  };
  uint32_t ntp_unix_base = 1'751'500'800;  // 2025-07-03
  // Drop every Nth guest TCP data segment (0 = lossless) to exercise the
  // guest's retransmission path.
  int drop_every_nth_tcp = 0;
};

class NetWorld {
 public:
  NetWorld(Machine& machine, WorldOptions options = {});

  // --- Test/bench control surface ---
  // Queues an MQTT publish from the broker to every subscribed client.
  void PublishMqtt(const std::string& topic, const Bytes& payload);
  // Sends an ICMP echo request to the device (it should reply).
  void SendPing(uint16_t id, uint16_t seq, size_t payload_len = 32);
  // Sends the malformed "ping of death" (claimed length > actual) that the
  // feature-flagged parser bug mishandles (§5.3.3).
  void SendPingOfDeath();

  // --- Observability ---
  uint32_t ping_replies_seen() const { return ping_replies_; }
  uint32_t mqtt_publishes_received() const { return mqtt_rx_publishes_; }
  uint32_t tcp_connections_accepted() const { return tcp_accepts_; }
  uint32_t dhcp_acks_sent() const { return dhcp_acks_; }
  bool mqtt_client_connected() const;
  const std::vector<std::string>& mqtt_subscriptions() const {
    return subscriptions_;
  }
  uint32_t frames_from_guest() const { return frames_rx_; }

 private:
  struct TcpConn {
    enum class State { kSynReceived, kEstablished, kClosed };
    State state = State::kSynReceived;
    uint16_t peer_port = 0;
    uint16_t local_port = 0;
    uint32_t snd_nxt = 0;   // next sequence we send
    uint32_t rcv_nxt = 0;   // next sequence we expect
    Bytes inbound;          // reassembled application bytes
    // TLS-lite server state (MQTT port only).
    bool tls_established = false;
    crypto::Key key_c2s{};
    crypto::Key key_s2c{};
    crypto::Key mac_key{};
    uint32_t tls_rx_counter = 0;
    uint32_t tls_tx_counter = 0;
    bool mqtt_connected = false;
  };

  void OnGuestFrame(Bytes frame);
  void Deliver(Bytes frame);
  void PumpDeliveries();
  void HandleArp(const ParsedFrame& p);
  void HandleIcmp(const ParsedFrame& p);
  void HandleUdp(const ParsedFrame& p);
  void HandleTcp(const ParsedFrame& p);
  void TcpSend(TcpConn& conn, uint8_t flags, const Bytes& payload);
  void AppBytes(TcpConn& conn, const Bytes& data);
  void TlsServerInput(TcpConn& conn);
  void SendTlsRecord(TcpConn& conn, uint8_t type, Bytes body);
  void MqttServerMessage(TcpConn& conn, uint8_t op, const Bytes& body);
  Bytes SendUdpReply(const ParsedFrame& request, const Bytes& payload);

  Machine& machine_;
  WorldOptions options_;
  std::deque<std::pair<Cycles, Bytes>> pending_;  // scheduled deliveries
  std::map<uint16_t, TcpConn> conns_;             // keyed by guest port
  std::vector<std::string> subscriptions_;
  uint32_t ping_replies_ = 0;
  uint32_t mqtt_rx_publishes_ = 0;
  uint32_t tcp_accepts_ = 0;
  uint32_t dhcp_acks_ = 0;
  uint32_t frames_rx_ = 0;
  uint32_t tcp_data_segments_ = 0;
  uint64_t entropy_ = 0xC0FFEE12345678ull;
};

}  // namespace cheriot::net

#endif  // SRC_NET_WORLD_H_

// The simulated "outside world" behind the Ethernet device: a gateway host
// providing ARP, DHCP, DNS, NTP and an MQTT broker behind TLS-lite. This is
// the substitution for the paper's real network testbed (DESIGN.md §1): it
// runs natively (it is the environment, not the system under test).
//
// Two layers:
//   - Gateway: the transport-agnostic service engine. It consumes frames
//     stamped with their transmit time and emits reply frames through a
//     caller-supplied hook; the *transport* (NetWorld link or sim::Fabric)
//     owns latency. It serves any number of clients: DHCP leases come from
//     an address pool keyed by client MAC, TCP connections are keyed by
//     (client IP, client port), and IPv4 packets between two leased clients
//     are forwarded (so fleet boards can ping each other through it).
//   - NetWorld: the single-board adapter that wires a Gateway directly to
//     one Machine's Ethernet device with a fixed link latency — the shape
//     every pre-fleet test and bench uses, API-compatible.
#ifndef SRC_NET_WORLD_H_
#define SRC_NET_WORLD_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/flow/flow.h"
#include "src/hw/machine.h"
#include "src/net/crypto.h"
#include "src/net/packet.h"

namespace cheriot::net {

// Well-known addresses of the simulated network.
inline constexpr Ipv4 kWorldIp = 0x0A000001;        // 10.0.0.1 (gateway/host)
inline constexpr Ipv4 kDeviceIp = 0x0A000002;       // 10.0.0.2 (first lease)
inline constexpr uint16_t kDnsPort = 53;
inline constexpr uint16_t kDhcpPort = 67;
inline constexpr uint16_t kNtpPort = 123;
inline constexpr uint16_t kEchoPort = 7;            // plain TCP echo service
inline constexpr uint16_t kMqttTlsPort = 8883;
inline constexpr MacAddress kWorldMac = {2, 0, 0, 0, 0, 1};
inline constexpr MacAddress kDeviceMac = {2, 0, 0, 0, 0, 2};

// --- Compact wire protocols (simulation-grade, see DESIGN.md) ---
// DHCP-lite (UDP 67): [1]=discover -> [2, ip]; [3, ip]=request -> [5, ip,
//   gateway_ip, dns_ip]=ack.
// DNS-lite (UDP 53): [qid u16][name...] -> [qid u16][ip u32] (0 = NXDOMAIN).
// NTP-lite (UDP 123): [0x4E] -> [unix_seconds u32].
// TLS-lite record: [type u8][len u16][body]; type 1 = hello, 2 = data.
// MQTT-lite message: [op u8][len u16][body]; 1=CONNECT 2=CONNACK
//   3=SUBSCRIBE 4=SUBACK 5=PUBLISH([topic_len u8][topic][payload])
//   6=PINGREQ 7=PINGRESP.
inline constexpr uint8_t kTlsRecordHello = 1;
inline constexpr uint8_t kTlsRecordData = 2;
inline constexpr uint8_t kMqttConnect = 1;
inline constexpr uint8_t kMqttConnAck = 2;
inline constexpr uint8_t kMqttSubscribe = 3;
inline constexpr uint8_t kMqttSubAck = 4;
inline constexpr uint8_t kMqttPublish = 5;
inline constexpr uint8_t kMqttPingReq = 6;
inline constexpr uint8_t kMqttPingResp = 7;

struct WorldOptions {
  Cycles link_latency = 3'300;        // ~100 us at 33 MHz
  // Names the DNS-lite server resolves.
  std::map<std::string, Ipv4> dns_table = {
      {"mqtt.example.com", kWorldIp},
      {"ntp.example.com", kWorldIp},
  };
  uint32_t ntp_unix_base = 1'751'500'800;  // 2025-07-03
  // Drop every Nth guest TCP data segment per connection (0 = lossless) to
  // exercise the guest's retransmission path.
  int drop_every_nth_tcp = 0;
  // Broker-side fan-out of guest publishes: re-deliver each guest PUBLISH to
  // every *other* established MQTT client subscribed to its topic. Off by
  // default (historically the broker only counted guest publishes), so
  // existing images keep their exact frame schedules.
  bool mqtt_fanout = false;
};

// The gateway's DHCP pool: MAC -> IP leases handed out in arrival order
// starting at kDeviceIp (so the historical single-board address still holds).
class AddressPool {
 public:
  // Returns the client's lease, creating one on first contact.
  Ipv4 Lease(const MacAddress& mac);
  std::optional<Ipv4> IpOf(const MacAddress& mac) const;
  std::optional<MacAddress> MacOf(Ipv4 ip) const;
  size_t lease_count() const { return by_mac_.size(); }

 private:
  std::map<MacAddress, Ipv4> by_mac_;
  std::map<Ipv4, MacAddress> by_ip_;
  Ipv4 next_ = kDeviceIp;
};

class Gateway {
 public:
  explicit Gateway(WorldOptions options = {});

  // Reply/forward transport: the gateway hands every outbound frame (already
  // ethernet-addressed) to this hook with its freshly assigned host-side
  // flow id; the transport adds its own latency.
  using EmitFn = std::function<void(Bytes frame, flow::FlowId flow)>;
  void set_emit(EmitFn emit) { emit_ = std::move(emit); }

  // Flow recorder hook (PR 9): gateway receipt, causal emit parentage and
  // MQTT publish fan-out spans are reported here. Pure observer, host handle
  // — never serialized.
  void set_flow(flow::FlowRecorder* recorder) { flow_ = recorder; }

  // Fault-injected TCP drops are reported here (at, dropped payload bytes,
  // flow id of the carrying frame) so the transport can emit a kFrameDrop
  // trace event into whichever recorder it owns.
  using DropTraceFn = std::function<void(Cycles at, size_t bytes,
                                         flow::FlowId flow)>;
  void set_drop_trace(DropTraceFn fn) { drop_trace_ = std::move(fn); }

  // Processes one client frame transmitted at simulated time `now`. `flow`
  // is the frame's host-side provenance (defaulted for hand-built frames);
  // replies emitted while processing it are parented to it.
  void OnFrame(Cycles now, const Bytes& frame, flow::FlowId flow = {});

  // --- Test/bench control surface ---
  // Queues an MQTT publish from the broker to every subscribed client.
  void PublishMqtt(Cycles now, const std::string& topic, const Bytes& payload);
  // Sends an ICMP echo request to a client (it should reply).
  void SendPing(Cycles now, Ipv4 dst, uint16_t id, uint16_t seq,
                size_t payload_len = 32);
  // Sends the malformed "ping of death" (claimed length > actual) that the
  // feature-flagged parser bug mishandles (§5.3.3).
  void SendPingOfDeath(Cycles now, Ipv4 dst = kDeviceIp);

  // --- Observability (aggregate + per-client) ---
  uint32_t ping_replies_seen() const { return ping_replies_; }
  uint32_t ping_replies_from(Ipv4 ip) const;
  uint32_t mqtt_publishes_received() const { return mqtt_rx_publishes_; }
  uint32_t mqtt_publishes_from(Ipv4 ip) const;
  uint32_t tcp_connections_accepted() const { return tcp_accepts_; }
  uint32_t dhcp_acks_sent() const { return dhcp_acks_; }
  uint32_t tcp_segments_dropped() const { return tcp_segments_dropped_; }
  uint32_t frames_forwarded() const { return frames_forwarded_; }
  bool mqtt_client_connected() const { return mqtt_clients_connected() > 0; }
  size_t mqtt_clients_connected() const;
  const std::vector<std::string>& mqtt_subscriptions() const {
    return subscriptions_;
  }
  uint32_t frames_from_guest() const { return frames_rx_; }
  const AddressPool& pool() const { return pool_; }

 private:
  struct TcpConn {
    enum class State { kSynReceived, kEstablished, kClosed };
    State state = State::kSynReceived;
    Ipv4 peer_ip = 0;
    MacAddress peer_mac{};
    uint16_t peer_port = 0;
    uint16_t local_port = 0;
    uint32_t snd_nxt = 0;   // next sequence we send
    uint32_t rcv_nxt = 0;   // next sequence we expect
    uint32_t data_segments = 0;  // per-connection loss-injection counter
    Bytes inbound;          // reassembled application bytes
    // TLS-lite server state (MQTT port only).
    bool tls_established = false;
    crypto::Key key_c2s{};
    crypto::Key key_s2c{};
    crypto::Key mac_key{};
    uint32_t tls_rx_counter = 0;
    uint32_t tls_tx_counter = 0;
    bool mqtt_connected = false;
    std::vector<std::string> topics;  // this client's subscriptions
  };
  using ConnKey = std::pair<Ipv4, uint16_t>;  // (client IP, client port)

  void Emit(Bytes frame);
  void Forward(const ParsedFrame& p, const Bytes& frame);
  void HandleArp(const ParsedFrame& p);
  void HandleIcmp(const ParsedFrame& p);
  void HandleUdp(const ParsedFrame& p);
  void HandleTcp(const ParsedFrame& p);
  void TcpSend(TcpConn& conn, uint8_t flags, const Bytes& payload);
  void AppBytes(TcpConn& conn, const Bytes& data);
  void TlsServerInput(TcpConn& conn);
  void SendTlsRecord(TcpConn& conn, uint8_t type, Bytes body);
  void MqttServerMessage(TcpConn& conn, uint8_t op, const Bytes& body);
  void SendUdpReply(const ParsedFrame& request, const Bytes& payload);

  WorldOptions options_;
  EmitFn emit_;
  flow::FlowRecorder* flow_ = nullptr;
  DropTraceFn drop_trace_;
  uint32_t emit_seq_ = 0;       // gateway flow-id sequence; always ticks
  flow::FlowId rx_flow_;        // provenance of the frame being processed
  AddressPool pool_;
  Cycles now_ = 0;  // time of the frame being processed (for NTP)
  std::map<ConnKey, TcpConn> conns_;
  std::vector<std::string> subscriptions_;
  uint32_t ping_replies_ = 0;
  uint32_t mqtt_rx_publishes_ = 0;
  uint32_t tcp_accepts_ = 0;
  uint32_t dhcp_acks_ = 0;
  uint32_t frames_rx_ = 0;
  uint32_t frames_forwarded_ = 0;
  uint32_t tcp_segments_dropped_ = 0;
  std::map<Ipv4, uint32_t> pings_by_ip_;
  std::map<Ipv4, uint32_t> publishes_by_ip_;
  uint64_t entropy_ = 0xC0FFEE12345678ull;
};

// Single-board adapter: one Gateway wired straight to one Machine's Ethernet
// device over a fixed-latency link. Public surface unchanged from the
// pre-fleet NetWorld.
class NetWorld {
 public:
  NetWorld(Machine& machine, WorldOptions options = {});

  void PublishMqtt(const std::string& topic, const Bytes& payload);
  void SendPing(uint16_t id, uint16_t seq, size_t payload_len = 32);
  void SendPingOfDeath();

  uint32_t ping_replies_seen() const { return gateway_.ping_replies_seen(); }
  uint32_t mqtt_publishes_received() const {
    return gateway_.mqtt_publishes_received();
  }
  uint32_t tcp_connections_accepted() const {
    return gateway_.tcp_connections_accepted();
  }
  uint32_t dhcp_acks_sent() const { return gateway_.dhcp_acks_sent(); }
  uint32_t tcp_segments_dropped() const {
    return gateway_.tcp_segments_dropped();
  }
  bool mqtt_client_connected() const {
    return gateway_.mqtt_client_connected();
  }
  const std::vector<std::string>& mqtt_subscriptions() const {
    return gateway_.mqtt_subscriptions();
  }
  uint32_t frames_from_guest() const { return gateway_.frames_from_guest(); }
  Gateway& gateway() { return gateway_; }

  // Attaches a flow recorder (PR 9): guest transmits, gateway causality and
  // scheduled deliveries are reported to it. Pure observer.
  void AttachFlow(flow::FlowRecorder* recorder);

 private:
  struct Pending {
    Cycles due = 0;
    Bytes frame;
    flow::FlowId flow;
  };

  void Deliver(Bytes frame, flow::FlowId flow);
  void PumpDeliveries();

  Machine& machine_;
  WorldOptions options_;
  Gateway gateway_;
  flow::FlowRecorder* flow_ = nullptr;
  uint32_t tx_seq_ = 0;  // board-0 flow-id sequence; always ticks
  std::deque<Pending> pending_;  // scheduled deliveries
};

}  // namespace cheriot::net

#endif  // SRC_NET_WORLD_H_

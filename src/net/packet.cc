#include "src/net/packet.h"

#include <cstdio>
#include <cstring>

namespace cheriot::net {

std::string IpToString(Ipv4 ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

Ipv4 IpFromParts(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<Ipv4>(a) << 24) | (static_cast<Ipv4>(b) << 16) |
         (static_cast<Ipv4>(c) << 8) | d;
}

uint8_t PacketReader::U8() {
  if (pos_ + 1 > size()) {
    ok_ = false;
    return 0;
  }
  return base()[pos_++];
}

uint16_t PacketReader::U16() {
  const uint16_t hi = U8();
  return static_cast<uint16_t>((hi << 8) | U8());
}

uint32_t PacketReader::U32() {
  const uint32_t hi = U16();
  return (hi << 16) | U16();
}

MacAddress PacketReader::Mac() {
  MacAddress mac{};
  for (auto& b : mac) {
    b = U8();
  }
  return mac;
}

Bytes PacketReader::Raw(size_t len) {
  if (pos_ + len > size()) {
    ok_ = false;
    return {};
  }
  Bytes out(base() + pos_, base() + pos_ + len);
  pos_ += len;
  return out;
}

void PacketReader::Skip(size_t len) {
  if (pos_ + len > size()) {
    ok_ = false;
    pos_ = size();
  } else {
    pos_ += len;
  }
}

uint16_t Checksum(const uint8_t* data, size_t len, uint32_t seed) {
  uint32_t sum = seed;
  for (size_t i = 0; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (len & 1) {
    sum += static_cast<uint32_t>(data[len - 1]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

namespace {
void WriteEthernet(PacketWriter* w, const MacAddress& dst,
                   const MacAddress& src, uint16_t ethertype) {
  w->Mac(dst);
  w->Mac(src);
  w->U16(ethertype);
}

constexpr MacAddress kBroadcast = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
}  // namespace

Bytes BuildArpRequest(const MacAddress& src_mac, Ipv4 src_ip, Ipv4 target_ip) {
  PacketWriter w;
  WriteEthernet(&w, kBroadcast, src_mac, kEtherTypeArp);
  w.U16(1);       // HW type: Ethernet
  w.U16(0x0800);  // protocol: IPv4
  w.U8(6);
  w.U8(4);
  w.U16(1);  // request
  w.Mac(src_mac);
  w.U32(src_ip);
  w.Mac(MacAddress{});
  w.U32(target_ip);
  return w.Take();
}

Bytes BuildArpReply(const MacAddress& src_mac, Ipv4 src_ip,
                    const MacAddress& dst_mac, Ipv4 dst_ip) {
  PacketWriter w;
  WriteEthernet(&w, dst_mac, src_mac, kEtherTypeArp);
  w.U16(1);
  w.U16(0x0800);
  w.U8(6);
  w.U8(4);
  w.U16(2);  // reply
  w.Mac(src_mac);
  w.U32(src_ip);
  w.Mac(dst_mac);
  w.U32(dst_ip);
  return w.Take();
}

Bytes BuildIpv4(const MacAddress& src_mac, const MacAddress& dst_mac,
                Ipv4 src_ip, Ipv4 dst_ip, uint8_t protocol,
                const Bytes& l4_payload) {
  PacketWriter w;
  WriteEthernet(&w, dst_mac, src_mac, kEtherTypeIpv4);
  const size_t ip_start = w.size();
  w.U8(0x45);  // version 4, IHL 5
  w.U8(0);     // DSCP
  w.U16(static_cast<uint16_t>(20 + l4_payload.size()));
  w.U16(0);  // identification
  w.U16(0);  // flags/fragment
  w.U8(64);  // TTL
  w.U8(protocol);
  w.U16(0);  // checksum placeholder
  w.U32(src_ip);
  w.U32(dst_ip);
  const uint16_t csum = Checksum(w.At(ip_start), 20);
  w.At(ip_start + 10)[0] = static_cast<uint8_t>(csum >> 8);
  w.At(ip_start + 10)[1] = static_cast<uint8_t>(csum);
  w.Raw(l4_payload.data(), l4_payload.size());
  return w.Take();
}

Bytes BuildIcmpEcho(uint8_t type, uint16_t id, uint16_t seq,
                    const Bytes& payload, uint16_t claimed_len_override) {
  PacketWriter w;
  w.U8(type);  // 8 = request, 0 = reply
  w.U8(0);
  w.U16(0);  // checksum placeholder
  w.U16(id);
  w.U16(seq);
  // Non-standard but convenient: a 2-byte payload-length field inside the
  // echo data, which the buggy parser trusts (§5.3.3 "ping of death").
  w.U16(claimed_len_override != 0 ? claimed_len_override
                                  : static_cast<uint16_t>(payload.size()));
  w.Raw(payload.data(), payload.size());
  Bytes out = w.Take();
  const uint16_t csum = Checksum(out.data(), out.size());
  out[2] = static_cast<uint8_t>(csum >> 8);
  out[3] = static_cast<uint8_t>(csum);
  return out;
}

Bytes BuildUdp(uint16_t src_port, uint16_t dst_port, const Bytes& payload) {
  PacketWriter w;
  w.U16(src_port);
  w.U16(dst_port);
  w.U16(static_cast<uint16_t>(8 + payload.size()));
  w.U16(0);  // checksum optional in IPv4
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

Bytes BuildTcp(const TcpHeader& header, const Bytes& payload) {
  PacketWriter w;
  w.U16(header.src_port);
  w.U16(header.dst_port);
  w.U32(header.seq);
  w.U32(header.ack);
  w.U8(0x50);  // data offset 5 words
  w.U8(header.flags);
  w.U16(header.window);
  w.U16(0);  // checksum (elided; the simulated link is integrity-checked)
  w.U16(0);  // urgent
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

ParsedFrame ParseFrame(const Bytes& frame) {
  ParsedFrame out;
  PacketReader r(frame);
  out.eth.dst = r.Mac();
  out.eth.src = r.Mac();
  out.eth.ethertype = r.U16();
  if (!r.ok()) {
    return out;
  }
  if (out.eth.ethertype == kEtherTypeArp) {
    out.is_arp = true;
    r.Skip(6);  // hw/proto types and sizes
    const uint16_t op = r.U16();
    out.arp_is_request = (op == 1);
    out.arp_sender_mac = r.Mac();
    out.arp_sender_ip = r.U32();
    r.Mac();
    out.arp_target_ip = r.U32();
    out.valid = r.ok();
    return out;
  }
  if (out.eth.ethertype != kEtherTypeIpv4) {
    return out;
  }
  out.is_ipv4 = true;
  const uint8_t version_ihl = r.U8();
  const size_t ihl = (version_ihl & 0xF) * 4;
  r.U8();
  out.ip.total_length = r.U16();
  r.U32();  // id/frag
  out.ip.ttl = r.U8();
  out.ip.protocol = r.U8();
  r.U16();  // checksum
  out.ip.src = r.U32();
  out.ip.dst = r.U32();
  if (ihl > 20) {
    r.Skip(ihl - 20);
  }
  if (!r.ok()) {
    return out;
  }
  if (out.ip.protocol == kIpProtoIcmp) {
    out.is_icmp = true;
    out.icmp_type = r.U8();
    r.U8();
    r.U16();  // checksum
    out.icmp_id = r.U16();
    out.icmp_seq = r.U16();
    out.icmp_claimed_len = r.U16();
    out.icmp_payload = r.Raw(r.remaining());
    out.valid = r.ok();
    return out;
  }
  if (out.ip.protocol == kIpProtoUdp) {
    out.is_udp = true;
    out.udp.src_port = r.U16();
    out.udp.dst_port = r.U16();
    const uint16_t len = r.U16();
    r.U16();  // checksum
    out.payload = r.Raw(len >= 8 ? len - 8 : 0);
    out.valid = r.ok();
    return out;
  }
  if (out.ip.protocol == kIpProtoTcp) {
    out.is_tcp = true;
    out.tcp.src_port = r.U16();
    out.tcp.dst_port = r.U16();
    out.tcp.seq = r.U32();
    out.tcp.ack = r.U32();
    const uint8_t offset = r.U8() >> 4;
    out.tcp.flags = r.U8();
    out.tcp.window = r.U16();
    r.U32();  // checksum + urgent
    if (offset > 5) {
      r.Skip(static_cast<size_t>(offset - 5) * 4);
    }
    out.payload = r.Raw(r.remaining());
    out.valid = r.ok();
    return out;
  }
  return out;
}

}  // namespace cheriot::net

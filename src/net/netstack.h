// The compartmentalized network stack (Fig. 5): firewall+driver, TCP/IP,
// DNS resolver, SNTP, TLS and MQTT compartments, plus a small supervisor
// that keeps the stack alive across micro-reboots.
//
// Every service hands out connection state as opaque (token-sealed) objects
// and allocates on behalf of callers through quota delegation (§3.2.1-3):
// tls_connect(alloc_cap, ...) threads the *caller's* allocation capability
// all the way down to the TCP socket buffers.
#ifndef SRC_NET_NETSTACK_H_
#define SRC_NET_NETSTACK_H_

#include <string>

#include "src/firmware/image.h"

namespace cheriot::net {

struct NetStackOptions {
  bool with_dns = true;
  bool with_sntp = true;
  bool with_tls = true;
  bool with_mqtt = true;
  // Install the feature-flagged "ping of death" parser bug and the
  // micro-rebooting error handler (§5.3.3 case study).
  bool ping_of_death_bug = false;
  bool microreboot_on_fault = true;
  uint32_t tcpip_quota = 24 * 1024;
  uint32_t dns_quota = 4 * 1024;
  uint32_t sntp_quota = 2 * 1024;
  uint32_t tls_quota = 8 * 1024;
  uint32_t mqtt_quota = 4 * 1024;
  uint16_t worker_priority = 4;
};

// Registers the network compartments, their imports and the worker thread.
// Compartment entry points exposed to applications ("NetAPI"):
//   tcpip.wait_ready()                         -> status (blocks for DHCP)
//   tcpip.ifconfig()                           -> device IP (0 if down)
//   tcpip.ping(ip, timeout)                    -> status
//   tcpip.socket_connect_tcp(q, ip, port)      -> sealed socket handle
//   tcpip.socket_send(h, buf, len)             -> status
//   tcpip.socket_recv(h, buf, maxlen, timeout) -> byte count or status
//   tcpip.socket_close(q, h)                   -> status
//   tcpip.socket_udp_new(q, remote_ip, port)   -> sealed socket handle
//   tcpip.udp_send(h, buf, len)                -> status
//   dns.resolve(name_buf, len)                 -> IPv4 (0 = NXDOMAIN)
//   sntp.sync(timeout)                         -> status
//   sntp.now()                                 -> unix seconds
//   tls.connect(q, ip, port, timeout)          -> sealed session handle
//   tls.send(h, buf, len) / tls.recv(h, buf, maxlen, timeout)
//   tls.close(q, h)
//   mqtt.connect(q, ip, port, id_buf, id_len)  -> sealed session handle
//   mqtt.subscribe(h, topic_buf, len) / mqtt.publish(h, topic, payload)
//   mqtt.poll(h, out_buf, maxlen, timeout)     -> publish length or status
//   mqtt.disconnect(q, h)
void AddNetworkStack(ImageBuilder& image, const NetStackOptions& options = {});

// Wires an application compartment to the stack's public API.
void UseNetwork(ImageBuilder& image, const std::string& compartment,
                const NetStackOptions& options = {});

// Internal registration helpers (one per compartment; exposed for tests).
void AddFirewallCompartment(ImageBuilder& image);
void AddTcpIpCompartment(ImageBuilder& image, const NetStackOptions& options);
void AddDnsCompartment(ImageBuilder& image, const NetStackOptions& options);
void AddSntpCompartment(ImageBuilder& image, const NetStackOptions& options);
void AddTlsCompartment(ImageBuilder& image, const NetStackOptions& options);
void AddMqttCompartment(ImageBuilder& image, const NetStackOptions& options);

}  // namespace cheriot::net

#endif  // SRC_NET_NETSTACK_H_

// MQTT-lite compartment: connect/subscribe/publish/poll over a TLS session.
// The wrapper exposes notification polling as the application-level API
// (hence its sizeable wrapper share in Table 2).
#include <array>
#include <deque>

#include "src/net/netstack.h"
#include "src/net/world.h"
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"
#include "src/sync/sync.h"

namespace cheriot::net {

namespace {

constexpr int kMaxMqttSessions = 2;

struct MqttSession {
  bool live = false;
  uint32_t generation = 0;
  Capability tls;             // TLS session handle
  Capability caller_quota;    // for nested TLS receives? kept out; see poll
  std::deque<Bytes> inbound;  // queued PUBLISH bodies ([topic_len][topic][..])
  Bytes stream;               // partial MQTT message bytes
};

struct MqttState {
  std::array<MqttSession, kMaxMqttSessions> sessions;
  uint32_t next_generation = 1;
};

MqttSession* FromHandle(CompartmentCtx& ctx, MqttState& state,
                        const Capability& handle) {
  const Capability payload =
      ctx.TokenUnseal(ctx.SealingKey("mqtt.session"), handle);
  if (!payload.tag()) {
    return nullptr;
  }
  const Word index = ctx.LoadWord(payload, 0);
  const Word generation = ctx.LoadWord(payload, 4);
  if (index >= kMaxMqttSessions || !state.sessions[index].live ||
      state.sessions[index].generation != generation) {
    return nullptr;
  }
  return &state.sessions[index];
}

Status SendMessage(CompartmentCtx& ctx, MqttSession& s, uint8_t op,
                   const Bytes& body) {
  Bytes msg;
  msg.push_back(op);
  msg.push_back(static_cast<uint8_t>(body.size() >> 8));
  msg.push_back(static_cast<uint8_t>(body.size()));
  msg.insert(msg.end(), body.begin(), body.end());
  auto buf = ctx.AllocStack(static_cast<Address>(msg.size() + 8));
  ctx.WriteBytes(buf.cap(), 0, msg.data(), static_cast<Address>(msg.size()));
  return static_cast<Status>(static_cast<int32_t>(
      ctx.Call("tls.send",
               {s.tls, hardening::ReadOnly(buf.cap(),
                                           static_cast<Address>(msg.size())),
                WordCap(static_cast<Word>(msg.size()))})
          .word()));
}

// Pulls TLS plaintext and splits it into MQTT messages. Returns the opcode
// of the first message matching `want` (queueing PUBLISHes meanwhile), or a
// negative status.
int AwaitMessage(CompartmentCtx& ctx, MqttSession& s, uint8_t want,
                 Word timeout, Bytes* body_out) {
  const Cycles deadline = timeout == ~0u ? ~0ull : ctx.Now() + timeout;
  for (;;) {
    // Split any buffered bytes into messages.
    while (s.stream.size() >= 3) {
      const size_t len = (static_cast<size_t>(s.stream[1]) << 8) | s.stream[2];
      if (s.stream.size() < 3 + len) {
        break;
      }
      const uint8_t op = s.stream[0];
      Bytes body(s.stream.begin() + 3, s.stream.begin() + 3 + len);
      s.stream.erase(s.stream.begin(), s.stream.begin() + 3 + len);
      if (op == kMqttPublish) {
        if (s.inbound.size() < 16) {
          s.inbound.push_back(body);
        }
        if (want == kMqttPublish) {
          return kMqttPublish;
        }
        continue;
      }
      if (op == want) {
        if (body_out != nullptr) {
          *body_out = std::move(body);
        }
        return op;
      }
      // Unexpected control message: ignore (hardened parser).
    }
    if (want == kMqttPublish && !s.inbound.empty()) {
      return kMqttPublish;
    }
    if (ctx.Now() >= deadline) {
      return static_cast<int>(Status::kTimedOut);
    }
    auto buf = ctx.AllocStack(256);
    const Word budget =
        deadline == ~0ull
            ? ~0u
            : static_cast<Word>(
                  std::min<Cycles>(deadline - ctx.Now(), 0xFFFFFFFEu));
    const Capability r = ctx.Call(
        "tls.recv", {s.tls, buf.cap(), WordCap(256), WordCap(budget)});
    const auto n = static_cast<int32_t>(r.word());
    if (n < 0) {
      return n;
    }
    Bytes chunk(static_cast<size_t>(n));
    ctx.ReadBytes(buf.cap(), 0, chunk.data(), static_cast<Address>(n));
    s.stream.insert(s.stream.end(), chunk.begin(), chunk.end());
  }
}

}  // namespace

void AddMqttCompartment(ImageBuilder& image, const NetStackOptions& options) {
  if (image.FindCompartment("mqtt") != nullptr) {
    return;
  }
  auto comp = image.Compartment("mqtt");
  comp.CodeSize(11 * 1024, /*wrapper=*/static_cast<uint32_t>(11 * 1024 * 0.28))
      .Globals(24)  // Table 2: 24 B
      .AllocCap("mqtt_quota", options.mqtt_quota)
      .OwnSealingType("mqtt.session")
      .ImportCompartment("tls.connect")
      .ImportCompartment("tls.send")
      .ImportCompartment("tls.recv")
      .ImportCompartment("tls.close")
      .ImportCompartment("alloc.token_obj_new")
      .ImportCompartment("alloc.token_obj_destroy")
      .State([] { return std::make_shared<MqttState>(); });
  sync::UseScheduler(image, "mqtt");
  sync::UseAllocator(image, "mqtt");

  comp.Export(
      "connect",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<MqttState>();
        const Capability caller_quota = args[0];
        const Word ip = args[1].word();
        const Word port = args[2].word();
        const Capability id_buf = args[3];
        const Word id_len = args.size() > 4 ? args[4].word() : 0;
        int index = -1;
        for (int i = 0; i < kMaxMqttSessions; ++i) {
          if (!state.sessions[i].live) {
            index = i;
            break;
          }
        }
        if (index < 0) {
          return StatusCap(Status::kNoMemory);
        }
        const Capability tls = ctx.Call(
            "tls.connect",
            {caller_quota, WordCap(ip), WordCap(port), WordCap(330'000'000)});
        if (!tls.tag()) {
          return tls;
        }
        MqttSession& s = state.sessions[index];
        s = MqttSession{};
        s.live = true;
        s.generation = state.next_generation++;
        s.tls = tls;
        Bytes client_id(id_len);
        if (id_len > 0 &&
            hardening::CheckPointer(id_buf, id_len,
                                    PermissionSet({Permission::kLoad}))) {
          ctx.ReadBytes(id_buf, 0, client_id.data(), id_len);
        }
        Status st = SendMessage(ctx, s, kMqttConnect, client_id);
        if (st == Status::kOk) {
          const int op =
              AwaitMessage(ctx, s, kMqttConnAck, 330'000'000, nullptr);
          if (op != kMqttConnAck) {
            st = Status::kTimedOut;
          }
        }
        if (st != Status::kOk) {
          ctx.Call("tls.close", {caller_quota, tls});
          s.live = false;
          return StatusCap(st);
        }
        const Capability key = ctx.SealingKey("mqtt.session");
        const Capability handle = ctx.TokenObjNew(caller_quota, key, 8);
        if (!handle.tag()) {
          s.live = false;
          return handle;
        }
        const Capability payload = ctx.TokenUnseal(key, handle);
        ctx.StoreWord(payload, 0, static_cast<Word>(index));
        ctx.StoreWord(payload, 4, s.generation);
        return handle;
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "subscribe",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<MqttState>();
        MqttSession* s = FromHandle(ctx, state, args[0]);
        const Capability topic = args[1];
        const Word len = args[2].word();
        if (s == nullptr || len == 0 || len > 128 ||
            !hardening::CheckPointer(topic, len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        Bytes body(len);
        ctx.ReadBytes(topic, 0, body.data(), len);
        Status st = SendMessage(ctx, *s, kMqttSubscribe, body);
        if (st == Status::kOk) {
          const int op = AwaitMessage(ctx, *s, kMqttSubAck, 330'000'000, nullptr);
          if (op != kMqttSubAck) {
            st = Status::kTimedOut;
          }
        }
        return StatusCap(st);
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "publish",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<MqttState>();
        MqttSession* s = FromHandle(ctx, state, args[0]);
        const Capability topic = args[1];
        const Word topic_len = args[2].word();
        const Capability payload = args[3];
        const Word payload_len = args.size() > 4 ? args[4].word() : 0;
        if (s == nullptr || topic_len == 0 || topic_len > 128 ||
            !hardening::CheckPointer(topic, topic_len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        Bytes body;
        body.push_back(static_cast<uint8_t>(topic_len));
        Bytes t(topic_len);
        ctx.ReadBytes(topic, 0, t.data(), topic_len);
        body.insert(body.end(), t.begin(), t.end());
        if (payload_len > 0 &&
            hardening::CheckPointer(payload, payload_len,
                                    PermissionSet({Permission::kLoad}))) {
          Bytes p(payload_len);
          ctx.ReadBytes(payload, 0, p.data(), payload_len);
          body.insert(body.end(), p.begin(), p.end());
        }
        return StatusCap(SendMessage(ctx, *s, kMqttPublish, body));
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "poll",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<MqttState>();
        MqttSession* s = FromHandle(ctx, state, args[0]);
        const Capability out = args[1];
        const Word maxlen = args[2].word();
        const Word timeout = args.size() > 3 ? args[3].word() : ~0u;
        if (s == nullptr ||
            !hardening::CheckPointer(
                out, maxlen,
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        const int op = AwaitMessage(ctx, *s, kMqttPublish, timeout, nullptr);
        if (op < 0) {
          return StatusCap(static_cast<Status>(op));
        }
        const Bytes body = s->inbound.front();
        s->inbound.pop_front();
        const Word n = std::min<Word>(maxlen, static_cast<Word>(body.size()));
        ctx.WriteBytes(out, 0, body.data(), n);
        return WordCap(n);
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "disconnect",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<MqttState>();
        const Capability caller_quota = args[0];
        MqttSession* s = FromHandle(ctx, state, args[1]);
        if (s == nullptr) {
          return StatusCap(Status::kInvalidArgument);
        }
        ctx.Call("tls.close", {caller_quota, s->tls});
        s->live = false;
        return StatusCap(ctx.TokenObjDestroy(
            caller_quota, ctx.SealingKey("mqtt.session"), args[1]));
      },
      2048, InterruptPosture::kEnabled);
}

}  // namespace cheriot::net

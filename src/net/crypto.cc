#include "src/net/crypto.h"

#include <cstring>

namespace cheriot::net::crypto {

namespace {

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void Sha256Block(uint32_t state[8], const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           block[4 * i + 3];
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  state[0] += a; state[1] += b; state[2] += c; state[3] += d;
  state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

}  // namespace

Digest Sha256(const uint8_t* data, size_t len) {
  uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                       0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  size_t full = len / 64;
  for (size_t i = 0; i < full; ++i) {
    Sha256Block(state, data + 64 * i);
  }
  uint8_t tail[128] = {};
  const size_t rem = len - full * 64;
  if (rem > 0) {
    std::memcpy(tail, data + full * 64, rem);
  }
  tail[rem] = 0x80;
  const size_t tail_len = (rem + 9 <= 64) ? 64 : 128;
  const uint64_t bits = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<uint8_t>(bits >> (8 * i));
  }
  Sha256Block(state, tail);
  if (tail_len == 128) {
    Sha256Block(state, tail + 64);
  }
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
  return out;
}

Digest Sha256(const std::vector<uint8_t>& data) {
  return Sha256(data.data(), data.size());
}

Digest HmacSha256(const uint8_t* key, size_t key_len, const uint8_t* data,
                  size_t len) {
  uint8_t k[64] = {};
  if (key_len > 64) {
    const Digest kd = Sha256(key, key_len);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key, key_len);
  }
  std::vector<uint8_t> inner(64 + len);
  for (int i = 0; i < 64; ++i) {
    inner[i] = k[i] ^ 0x36;
  }
  std::memcpy(inner.data() + 64, data, len);
  const Digest inner_digest = Sha256(inner);
  std::vector<uint8_t> outer(64 + 32);
  for (int i = 0; i < 64; ++i) {
    outer[i] = k[i] ^ 0x5c;
  }
  std::memcpy(outer.data() + 64, inner_digest.data(), 32);
  return Sha256(outer);
}

namespace {
inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}
}  // namespace

void ChaCha20Xor(const Key& key, uint64_t nonce, uint32_t counter,
                 uint8_t* data, size_t len) {
  uint32_t init[16];
  init[0] = 0x61707865; init[1] = 0x3320646e;
  init[2] = 0x79622d32; init[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    init[4 + i] = static_cast<uint32_t>(key[4 * i]) |
                  (static_cast<uint32_t>(key[4 * i + 1]) << 8) |
                  (static_cast<uint32_t>(key[4 * i + 2]) << 16) |
                  (static_cast<uint32_t>(key[4 * i + 3]) << 24);
  }
  size_t offset = 0;
  while (offset < len) {
    init[12] = counter++;
    init[13] = 0;
    init[14] = static_cast<uint32_t>(nonce);
    init[15] = static_cast<uint32_t>(nonce >> 32);
    uint32_t x[16];
    std::memcpy(x, init, sizeof(x));
    for (int round = 0; round < 10; ++round) {
      QuarterRound(x[0], x[4], x[8], x[12]);
      QuarterRound(x[1], x[5], x[9], x[13]);
      QuarterRound(x[2], x[6], x[10], x[14]);
      QuarterRound(x[3], x[7], x[11], x[15]);
      QuarterRound(x[0], x[5], x[10], x[15]);
      QuarterRound(x[1], x[6], x[11], x[12]);
      QuarterRound(x[2], x[7], x[8], x[13]);
      QuarterRound(x[3], x[4], x[9], x[14]);
    }
    uint8_t stream[64];
    for (int i = 0; i < 16; ++i) {
      const uint32_t v = x[i] + init[i];
      stream[4 * i] = static_cast<uint8_t>(v);
      stream[4 * i + 1] = static_cast<uint8_t>(v >> 8);
      stream[4 * i + 2] = static_cast<uint8_t>(v >> 16);
      stream[4 * i + 3] = static_cast<uint8_t>(v >> 24);
    }
    const size_t n = std::min<size_t>(64, len - offset);
    for (size_t i = 0; i < n; ++i) {
      data[offset + i] ^= stream[i];
    }
    offset += n;
  }
}

namespace {
// 2^61 - 1 (Mersenne prime) with generator 3: toy group, simulation only.
constexpr uint64_t kDhPrime = (1ull << 61) - 1;
constexpr uint64_t kDhGenerator = 3;

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) {
      result = MulMod(result, base, m);
    }
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}
}  // namespace

DhKeyPair DhGenerate(uint64_t entropy) {
  DhKeyPair kp;
  kp.secret = (entropy | 1) % kDhPrime;
  kp.public_value = PowMod(kDhGenerator, kp.secret, kDhPrime);
  return kp;
}

uint64_t DhShared(uint64_t secret, uint64_t peer_public) {
  return PowMod(peer_public, secret, kDhPrime);
}

Key DeriveKey(uint64_t shared, const Digest& salt, const char* label) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 8; ++i) {
    input.push_back(static_cast<uint8_t>(shared >> (8 * i)));
  }
  for (const char* p = label; *p; ++p) {
    input.push_back(static_cast<uint8_t>(*p));
  }
  const Digest d =
      HmacSha256(salt.data(), salt.size(), input.data(), input.size());
  Key key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

}  // namespace cheriot::net::crypto

// SNTP compartment: synchronizes a wall-clock offset from the NTP-lite
// server. The wrapper exposes a higher-level API than the protocol itself
// (the paper notes SNTP's wrapper encapsulates application-level code,
// hence its 72% wrapper share in Table 2).
#include "src/net/netstack.h"
#include "src/net/packet.h"
#include "src/net/world.h"
#include "src/runtime/compartment_ctx.h"
#include "src/sync/sync.h"

namespace cheriot::net {

namespace {
struct SntpState {
  bool synced = false;
  uint32_t unix_at_sync = 0;
  Cycles cycles_at_sync = 0;
  uint32_t sync_count = 0;
};
}  // namespace

void AddSntpCompartment(ImageBuilder& image, const NetStackOptions& options) {
  if (image.FindCompartment("sntp") != nullptr) {
    return;
  }
  auto comp = image.Compartment("sntp");
  comp.CodeSize(1200, /*wrapper=*/static_cast<uint32_t>(1200 * 0.72))
      .Globals(5600)  // Table 2: 5.6 KB (response history buffers)
      .AllocCap("sntp_quota", options.sntp_quota)
      .ImportCompartment("tcpip.socket_udp_new")
      .ImportCompartment("tcpip.udp_send")
      .ImportCompartment("tcpip.udp_recv")
      .ImportCompartment("tcpip.socket_close")
      .ImportCompartment("tcpip.dns_server")
      .State([] { return std::make_shared<SntpState>(); });
  sync::UseScheduler(image, "sntp");
  sync::UseAllocator(image, "sntp");

  comp.Export(
      "sync",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<SntpState>();
        const Word timeout = args.empty() ? 33'000'000 * 10 : args[0].word();
        const Capability quota = ctx.SealedImport("sntp_quota");
        // The NTP server shares the gateway address in this deployment.
        const Ipv4 server = ctx.Call("tcpip.dns_server", {}).word();
        if (server == 0) {
          return StatusCap(Status::kWouldBlock);
        }
        const Capability sock = ctx.Call(
            "tcpip.socket_udp_new", {quota, WordCap(server), WordCap(kNtpPort)});
        if (!sock.tag()) {
          return sock;
        }
        Status result = Status::kTimedOut;
        const Cycles deadline = ctx.Now() + timeout;
        while (ctx.Now() < deadline) {
          auto qbuf = ctx.AllocStack(8);
          ctx.StoreByte(qbuf.cap(), 0, 0x4E);  // 'N'
          ctx.Call("tcpip.udp_send", {sock, qbuf.cap(), WordCap(1)});
          auto rbuf = ctx.AllocStack(8);
          const Capability r =
              ctx.Call("tcpip.udp_recv",
                       {sock, rbuf.cap(), WordCap(8), WordCap(33'000'000)});
          if (static_cast<int32_t>(r.word()) >= 4) {
            state.unix_at_sync =
                (static_cast<uint32_t>(ctx.LoadByte(rbuf.cap(), 0)) << 24) |
                (static_cast<uint32_t>(ctx.LoadByte(rbuf.cap(), 1)) << 16) |
                (static_cast<uint32_t>(ctx.LoadByte(rbuf.cap(), 2)) << 8) |
                ctx.LoadByte(rbuf.cap(), 3);
            state.cycles_at_sync = ctx.Now();
            state.synced = true;
            ++state.sync_count;
            result = Status::kOk;
            break;
          }
        }
        ctx.Call("tcpip.socket_close", {quota, sock});
        return StatusCap(result);
      },
      2048, InterruptPosture::kEnabled);

  comp.Export(
      "now",
      [](CompartmentCtx& ctx, const std::vector<Capability>&) {
        auto& state = ctx.State<SntpState>();
        if (!state.synced) {
          return WordCap(0);
        }
        const Cycles elapsed = ctx.Now() - state.cycles_at_sync;
        return WordCap(state.unix_at_sync +
                       static_cast<Word>(elapsed / cost::kCoreHz));
      },
      128, InterruptPosture::kDisabled);
}

}  // namespace cheriot::net

// TLS-lite compartment (the BearSSL substitution): client handshake (toy DH
// + HKDF), ChaCha20 + HMAC-SHA256 record protection, sessions as opaque
// token-sealed handles allocated against the caller's quota. Crypto compute
// is charged to the simulated clock so the Fig. 7 "App. Setup" phase shows
// the handshake-bound 92% CPU load.
#include <array>
#include <cstring>
#include <deque>

#include "src/base/costs.h"
#include "src/hw/devices.h"
#include "src/net/crypto.h"
#include "src/net/netstack.h"
#include "src/net/world.h"
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"
#include "src/sync/sync.h"

namespace cheriot::net {

namespace {

constexpr int kMaxSessions = 4;

struct TlsSession {
  bool live = false;
  uint32_t generation = 0;
  Capability socket;  // TCP socket handle (tcpip compartment)
  crypto::Key key_c2s{};
  crypto::Key key_s2c{};
  crypto::Key mac_key{};
  uint32_t tx_counter = 0;
  uint32_t rx_counter = 0;
  std::deque<uint8_t> plaintext;  // decrypted application bytes
  Bytes raw;                      // undecoded record bytes
};

struct TlsState {
  std::array<TlsSession, kMaxSessions> sessions;
  uint32_t next_generation = 1;
  uint32_t handshakes = 0;
};

TlsSession* FromHandle(CompartmentCtx& ctx, TlsState& state,
                       const Capability& handle) {
  const Capability payload =
      ctx.TokenUnseal(ctx.SealingKey("tls.session"), handle);
  if (!payload.tag()) {
    return nullptr;
  }
  const Word index = ctx.LoadWord(payload, 0);
  const Word generation = ctx.LoadWord(payload, 4);
  if (index >= kMaxSessions || !state.sessions[index].live ||
      state.sessions[index].generation != generation) {
    return nullptr;
  }
  return &state.sessions[index];
}

// Reads more raw bytes from the socket into the session buffer.
Status Refill(CompartmentCtx& ctx, TlsSession& s, Word timeout) {
  auto buf = ctx.AllocStack(512);
  const Capability r = ctx.Call(
      "tcpip.socket_recv", {s.socket, buf.cap(), WordCap(512), WordCap(timeout)});
  const auto n = static_cast<int32_t>(r.word());
  if (n < 0) {
    return static_cast<Status>(n);
  }
  if (n == 0) {
    return Status::kNotFound;  // connection closed
  }
  Bytes chunk(static_cast<size_t>(n));
  ctx.ReadBytes(buf.cap(), 0, chunk.data(), static_cast<Address>(n));
  s.raw.insert(s.raw.end(), chunk.begin(), chunk.end());
  return Status::kOk;
}

// Extracts one full record from s.raw; returns false if incomplete.
bool TakeRecord(TlsSession& s, uint8_t* type, Bytes* body) {
  if (s.raw.size() < 3) {
    return false;
  }
  const size_t len = (static_cast<size_t>(s.raw[1]) << 8) | s.raw[2];
  if (s.raw.size() < 3 + len) {
    return false;
  }
  *type = s.raw[0];
  body->assign(s.raw.begin() + 3, s.raw.begin() + 3 + len);
  s.raw.erase(s.raw.begin(), s.raw.begin() + 3 + len);
  return true;
}

Status SendRecord(CompartmentCtx& ctx, TlsSession& s, uint8_t type,
                  Bytes body) {
  if (type == kTlsRecordData) {
    // Charge the cipher + MAC compute to the simulated clock.
    ctx.Burn(crypto::BlocksFor(body.size()) * cost::kChaCha20PerBlock +
             2 * crypto::BlocksFor(body.size() + 64) * cost::kSha256PerBlock);
    Bytes wire;
    wire.push_back(static_cast<uint8_t>(s.tx_counter >> 8));
    wire.push_back(static_cast<uint8_t>(s.tx_counter));
    crypto::ChaCha20Xor(s.key_c2s, s.tx_counter, 0, body.data(), body.size());
    wire.insert(wire.end(), body.begin(), body.end());
    const auto mac = crypto::HmacSha256(s.mac_key.data(), s.mac_key.size(),
                                        wire.data(), wire.size());
    wire.insert(wire.end(), mac.begin(), mac.begin() + 16);
    ++s.tx_counter;
    body = std::move(wire);
  }
  Bytes record;
  record.push_back(type);
  record.push_back(static_cast<uint8_t>(body.size() >> 8));
  record.push_back(static_cast<uint8_t>(body.size()));
  record.insert(record.end(), body.begin(), body.end());
  auto buf = ctx.AllocStack(static_cast<Address>(record.size() + 8));
  ctx.WriteBytes(buf.cap(), 0, record.data(),
                 static_cast<Address>(record.size()));
  const Capability view =
      hardening::ReadOnly(buf.cap(), static_cast<Address>(record.size()));
  return static_cast<Status>(static_cast<int32_t>(
      ctx.Call("tcpip.socket_send",
               {s.socket, view, WordCap(static_cast<Word>(record.size()))})
          .word()));
}

// Decrypts a data record into the plaintext queue.
Status AcceptDataRecord(CompartmentCtx& ctx, TlsSession& s, const Bytes& body) {
  if (body.size() < 18) {
    return Status::kInvalidArgument;
  }
  ctx.Burn(crypto::BlocksFor(body.size()) * cost::kChaCha20PerBlock +
           2 * crypto::BlocksFor(body.size() + 64) * cost::kSha256PerBlock);
  const size_t cipher_len = body.size() - 18;
  const auto mac = crypto::HmacSha256(s.mac_key.data(), s.mac_key.size(),
                                      body.data(), 2 + cipher_len);
  if (std::memcmp(mac.data(), body.data() + 2 + cipher_len, 16) != 0) {
    return Status::kPermissionDenied;  // record forged/corrupted
  }
  const uint32_t ctr = (static_cast<uint32_t>(body[0]) << 8) | body[1];
  Bytes plain(body.begin() + 2, body.begin() + 2 + cipher_len);
  crypto::ChaCha20Xor(s.key_s2c, ctr, 0, plain.data(), plain.size());
  for (uint8_t b : plain) {
    s.plaintext.push_back(b);
  }
  return Status::kOk;
}

}  // namespace

void AddTlsCompartment(ImageBuilder& image, const NetStackOptions& options) {
  if (image.FindCompartment("tls") != nullptr) {
    return;
  }
  auto comp = image.Compartment("tls");
  comp.CodeSize(56 * 1024, /*wrapper=*/static_cast<uint32_t>(56 * 1024 * 0.08))
      .Globals(2400)  // Table 2: 2.4 KB
      .AllocCap("tls_quota", options.tls_quota)
      .OwnSealingType("tls.session")
      .ImportCompartment("tcpip.socket_connect_tcp")
      .ImportCompartment("tcpip.socket_send")
      .ImportCompartment("tcpip.socket_recv")
      .ImportCompartment("tcpip.socket_close")
      .ImportCompartment("alloc.token_obj_new")
      .ImportCompartment("alloc.token_obj_destroy")
      .ImportMmio("entropy", kEntropyMmioBase, kMmioRegionSize, false)
      .State([] { return std::make_shared<TlsState>(); });
  sync::UseScheduler(image, "tls");
  sync::UseAllocator(image, "tls");

  comp.Export(
      "connect",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TlsState>();
        const Capability caller_quota = args[0];
        const Word ip = args[1].word();
        const Word port = args[2].word();
        const Word timeout = args.size() > 3 ? args[3].word() : 330'000'000;
        int index = -1;
        for (int i = 0; i < kMaxSessions; ++i) {
          if (!state.sessions[i].live) {
            index = i;
            break;
          }
        }
        if (index < 0) {
          return StatusCap(Status::kNoMemory);
        }
        // TCP connect with the caller's quota (delegation all the way down).
        const Capability sock = ctx.Call(
            "tcpip.socket_connect_tcp",
            {caller_quota, WordCap(ip), WordCap(port), WordCap(timeout)});
        if (!sock.tag()) {
          return sock;
        }
        TlsSession& s = state.sessions[index];
        s = TlsSession{};
        s.live = true;
        s.generation = state.next_generation++;
        s.socket = sock;

        // --- Handshake ---
        // Client randomness from the entropy device.
        const Capability entropy = ctx.Mmio("entropy");
        uint64_t seed = ctx.LoadWord(entropy, 0);
        seed = (seed << 32) | ctx.LoadWord(entropy, 0);
        const auto kp = crypto::DhGenerate(seed);
        crypto::Digest client_random =
            crypto::Sha256(reinterpret_cast<const uint8_t*>(&seed), 8);
        // Key exchange cost dominates the handshake (§5.3.3: 92% CPU).
        ctx.Burn(cost::kKeyExchange);

        Bytes hello(client_random.begin(), client_random.end());
        for (int i = 0; i < 8; ++i) {
          hello.push_back(static_cast<uint8_t>(kp.public_value >> (8 * i)));
        }
        Status st = SendRecord(ctx, s, kTlsRecordHello, std::move(hello));
        if (st != Status::kOk) {
          s.live = false;
          return StatusCap(st);
        }
        // Await ServerHello.
        uint8_t type = 0;
        Bytes body;
        const Cycles deadline = ctx.Now() + timeout;
        while (!TakeRecord(s, &type, &body)) {
          if (ctx.Now() >= deadline ||
              Refill(ctx, s, 33'000'000) != Status::kOk) {
            s.live = false;
            return StatusCap(Status::kTimedOut);
          }
        }
        if (type != kTlsRecordHello || body.size() < 56) {
          s.live = false;
          return StatusCap(Status::kPermissionDenied);
        }
        crypto::Digest server_random;
        std::memcpy(server_random.data(), body.data(), 32);
        uint64_t server_pub = 0;
        for (int i = 0; i < 8; ++i) {
          server_pub |= static_cast<uint64_t>(body[32 + i]) << (8 * i);
        }
        const uint64_t shared = crypto::DhShared(kp.secret, server_pub);
        Bytes salt_input(client_random.begin(), client_random.end());
        salt_input.insert(salt_input.end(), server_random.begin(),
                          server_random.end());
        const crypto::Digest salt = crypto::Sha256(salt_input);
        s.key_c2s = crypto::DeriveKey(shared, salt, "c2s");
        s.key_s2c = crypto::DeriveKey(shared, salt, "s2c");
        s.mac_key = crypto::DeriveKey(shared, salt, "mac");
        // Verify the server's transcript MAC.
        const auto verify = crypto::HmacSha256(
            s.mac_key.data(), s.mac_key.size(), salt.data(), salt.size());
        if (std::memcmp(verify.data(), body.data() + 40, 16) != 0) {
          s.live = false;
          return StatusCap(Status::kPermissionDenied);
        }
        ++state.handshakes;
        // Issue the opaque session handle with the caller's quota.
        const Capability key = ctx.SealingKey("tls.session");
        const Capability handle = ctx.TokenObjNew(caller_quota, key, 8);
        if (!handle.tag()) {
          s.live = false;
          return handle;
        }
        const Capability payload = ctx.TokenUnseal(key, handle);
        ctx.StoreWord(payload, 0, static_cast<Word>(index));
        ctx.StoreWord(payload, 4, s.generation);
        return handle;
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "send",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TlsState>();
        TlsSession* s = FromHandle(ctx, state, args[0]);
        const Capability buf = args[1];
        const Word len = args[2].word();
        if (s == nullptr ||
            !hardening::CheckPointer(buf, len,
                                     PermissionSet({Permission::kLoad}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        Bytes data(len);
        ctx.ReadBytes(buf, 0, data.data(), len);
        return StatusCap(SendRecord(ctx, *s, kTlsRecordData, std::move(data)));
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "recv",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TlsState>();
        TlsSession* s = FromHandle(ctx, state, args[0]);
        const Capability buf = args[1];
        const Word maxlen = args[2].word();
        const Word timeout = args.size() > 3 ? args[3].word() : ~0u;
        if (s == nullptr ||
            !hardening::CheckPointer(
                buf, maxlen,
                PermissionSet({Permission::kLoad, Permission::kStore}))) {
          return StatusCap(Status::kInvalidArgument);
        }
        const Cycles deadline = timeout == ~0u ? ~0ull : ctx.Now() + timeout;
        while (s->plaintext.empty()) {
          uint8_t type = 0;
          Bytes body;
          if (TakeRecord(*s, &type, &body)) {
            if (type == kTlsRecordData) {
              AcceptDataRecord(ctx, *s, body);
            }
            continue;
          }
          if (ctx.Now() >= deadline) {
            return StatusCap(Status::kTimedOut);
          }
          const Word budget = deadline == ~0ull
                                  ? ~0u
                                  : static_cast<Word>(std::min<Cycles>(
                                        deadline - ctx.Now(), 0xFFFFFFFEu));
          const Status st = Refill(ctx, *s, budget);
          if (st == Status::kTimedOut) {
            return StatusCap(Status::kTimedOut);
          }
          if (st != Status::kOk) {
            return StatusCap(st);
          }
        }
        Word n = 0;
        Bytes out;
        while (n < maxlen && !s->plaintext.empty()) {
          out.push_back(s->plaintext.front());
          s->plaintext.pop_front();
          ++n;
        }
        ctx.WriteBytes(buf, 0, out.data(), n);
        return WordCap(n);
      },
      4096, InterruptPosture::kEnabled);

  comp.Export(
      "close",
      [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
        auto& state = ctx.State<TlsState>();
        const Capability caller_quota = args[0];
        TlsSession* s = FromHandle(ctx, state, args[1]);
        if (s == nullptr) {
          return StatusCap(Status::kInvalidArgument);
        }
        ctx.Call("tcpip.socket_close", {caller_quota, s->socket});
        s->live = false;
        return StatusCap(ctx.TokenObjDestroy(
            caller_quota, ctx.SealingKey("tls.session"), args[1]));
      },
      2048, InterruptPosture::kEnabled);
}

}  // namespace cheriot::net

#include "src/net/world.h"

#include <algorithm>
#include <cstring>

#include "src/base/costs.h"
#include "src/base/log.h"
#include "src/trace/trace.h"

namespace cheriot::net {

// --- AddressPool -----------------------------------------------------------

Ipv4 AddressPool::Lease(const MacAddress& mac) {
  auto it = by_mac_.find(mac);
  if (it != by_mac_.end()) {
    return it->second;
  }
  const Ipv4 ip = next_++;
  by_mac_[mac] = ip;
  by_ip_[ip] = mac;
  return ip;
}

std::optional<Ipv4> AddressPool::IpOf(const MacAddress& mac) const {
  auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<MacAddress> AddressPool::MacOf(Ipv4 ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) {
    return std::nullopt;
  }
  return it->second;
}

// --- Gateway ---------------------------------------------------------------

Gateway::Gateway(WorldOptions options) : options_(std::move(options)) {}

void Gateway::Emit(Bytes frame) {
  // Every emitted frame gets gateway provenance unconditionally (the
  // sequence ticks whether or not a recorder watches), parented to the frame
  // being processed — that parent edge is what stitches request->reply and
  // publish->fan-out causality across boards.
  const flow::FlowId id{flow::FlowId::kGateway, emit_seq_++};
  if (flow_ != nullptr) {
    flow_->OnGatewayEmit(id, rx_flow_, now_, frame.size());
  }
  if (emit_) {
    emit_(std::move(frame), id);
  }
}

void Gateway::OnFrame(Cycles now, const Bytes& frame, flow::FlowId flow) {
  now_ = now;
  rx_flow_ = flow;
  if (flow_ != nullptr) {
    flow_->OnGatewayRx(flow, now);
  }
  ++frames_rx_;
  const ParsedFrame p = ParseFrame(frame);
  if (!p.valid) {
    return;
  }
  if (p.is_arp) {
    HandleArp(p);
    return;
  }
  if (p.is_ipv4 && p.ip.dst != kWorldIp && p.ip.dst != 0xFFFFFFFF &&
      pool_.MacOf(p.ip.dst).has_value()) {
    // Routed traffic between two leased clients (e.g. board-to-board ping):
    // the gateway rewrites the ethernet header and passes the packet on.
    Forward(p, frame);
    return;
  }
  if (p.is_icmp) {
    HandleIcmp(p);
  } else if (p.is_udp) {
    HandleUdp(p);
  } else if (p.is_tcp) {
    HandleTcp(p);
  }
}

void Gateway::Forward(const ParsedFrame& p, const Bytes& frame) {
  const MacAddress dst_mac = *pool_.MacOf(p.ip.dst);
  Bytes out = frame;
  std::memcpy(out.data(), dst_mac.data(), 6);
  std::memcpy(out.data() + 6, kWorldMac.data(), 6);
  ++frames_forwarded_;
  Emit(std::move(out));
}

void Gateway::HandleArp(const ParsedFrame& p) {
  if (p.arp_is_request && p.arp_target_ip == kWorldIp) {
    Emit(BuildArpReply(kWorldMac, kWorldIp, p.arp_sender_mac,
                       p.arp_sender_ip));
  }
}

void Gateway::HandleIcmp(const ParsedFrame& p) {
  if (p.ip.dst != kWorldIp) {
    return;
  }
  if (p.icmp_type == 8) {  // echo request from a client: reply
    Emit(BuildIpv4(kWorldMac, p.eth.src, kWorldIp, p.ip.src, kIpProtoIcmp,
                   BuildIcmpEcho(0, p.icmp_id, p.icmp_seq, p.icmp_payload)));
  } else if (p.icmp_type == 0) {  // echo reply (to our SendPing)
    ++ping_replies_;
    ++pings_by_ip_[p.ip.src];
  }
}

uint32_t Gateway::ping_replies_from(Ipv4 ip) const {
  auto it = pings_by_ip_.find(ip);
  return it == pings_by_ip_.end() ? 0 : it->second;
}

uint32_t Gateway::mqtt_publishes_from(Ipv4 ip) const {
  auto it = publishes_by_ip_.find(ip);
  return it == publishes_by_ip_.end() ? 0 : it->second;
}

void Gateway::SendUdpReply(const ParsedFrame& request, const Bytes& payload) {
  Bytes udp = BuildUdp(request.udp.dst_port, request.udp.src_port, payload);
  // DHCP requests arrive from 0.0.0.0; address those to the client's lease.
  Ipv4 dst_ip = request.ip.src;
  if (dst_ip == 0) {
    dst_ip = pool_.IpOf(request.eth.src).value_or(kDeviceIp);
  }
  Emit(BuildIpv4(kWorldMac, request.eth.src, kWorldIp, dst_ip, kIpProtoUdp,
                 udp));
}

void Gateway::HandleUdp(const ParsedFrame& p) {
  const Bytes& body = p.payload;
  switch (p.udp.dst_port) {
    case kDhcpPort: {
      if (body.empty()) {
        return;
      }
      if (body[0] == 1) {  // DISCOVER -> OFFER
        const Ipv4 lease = pool_.Lease(p.eth.src);
        Bytes reply = {2};
        for (int i = 3; i >= 0; --i) {
          reply.push_back(static_cast<uint8_t>(lease >> (8 * i)));
        }
        SendUdpReply(p, reply);
      } else if (body[0] == 3) {  // REQUEST -> ACK
        const Ipv4 lease = pool_.Lease(p.eth.src);
        Bytes reply = {5};
        for (Ipv4 ip : {lease, kWorldIp, kWorldIp}) {  // ip, gw, dns
          for (int i = 3; i >= 0; --i) {
            reply.push_back(static_cast<uint8_t>(ip >> (8 * i)));
          }
        }
        ++dhcp_acks_;
        SendUdpReply(p, reply);
      }
      return;
    }
    case kDnsPort: {
      if (body.size() < 2) {
        return;
      }
      const std::string name(body.begin() + 2, body.end());
      Ipv4 ip = 0;
      auto it = options_.dns_table.find(name);
      if (it != options_.dns_table.end()) {
        ip = it->second;
      }
      Bytes reply = {body[0], body[1]};
      for (int i = 3; i >= 0; --i) {
        reply.push_back(static_cast<uint8_t>(ip >> (8 * i)));
      }
      SendUdpReply(p, reply);
      return;
    }
    case kNtpPort: {
      const uint32_t seconds =
          options_.ntp_unix_base +
          static_cast<uint32_t>(now_ / cost::kCoreHz);
      Bytes reply;
      for (int i = 3; i >= 0; --i) {
        reply.push_back(static_cast<uint8_t>(seconds >> (8 * i)));
      }
      SendUdpReply(p, reply);
      return;
    }
    default:
      return;
  }
}

void Gateway::TcpSend(TcpConn& conn, uint8_t flags, const Bytes& payload) {
  TcpHeader h;
  h.src_port = conn.local_port;
  h.dst_port = conn.peer_port;
  h.seq = conn.snd_nxt;
  h.ack = conn.rcv_nxt;
  h.flags = flags;
  Emit(BuildIpv4(kWorldMac, conn.peer_mac, kWorldIp, conn.peer_ip, kIpProtoTcp,
                 BuildTcp(h, payload)));
  conn.snd_nxt += payload.size();
  if (flags & (kTcpSyn | kTcpFin)) {
    conn.snd_nxt += 1;
  }
}

void Gateway::HandleTcp(const ParsedFrame& p) {
  if (p.ip.dst != kWorldIp) {
    return;
  }
  const ConnKey key{p.ip.src, p.tcp.src_port};
  auto it = conns_.find(key);

  if (p.tcp.flags & kTcpSyn) {
    if (p.tcp.dst_port != kMqttTlsPort && p.tcp.dst_port != kEchoPort) {
      // Port closed: RST.
      TcpConn rst;
      rst.peer_ip = p.ip.src;
      rst.peer_mac = p.eth.src;
      rst.local_port = p.tcp.dst_port;
      rst.peer_port = p.tcp.src_port;
      rst.rcv_nxt = p.tcp.seq + 1;
      TcpSend(rst, kTcpRst | kTcpAck, {});
      return;
    }
    TcpConn conn;
    conn.peer_ip = p.ip.src;
    conn.peer_mac = p.eth.src;
    conn.local_port = p.tcp.dst_port;
    conn.peer_port = p.tcp.src_port;
    conn.rcv_nxt = p.tcp.seq + 1;
    conn.snd_nxt = 0x10000 + p.tcp.src_port;  // deterministic ISN
    TcpSend(conn, kTcpSyn | kTcpAck, {});
    conn.state = TcpConn::State::kSynReceived;
    conns_[key] = conn;
    ++tcp_accepts_;
    return;
  }
  if (it == conns_.end()) {
    return;
  }
  TcpConn& conn = it->second;
  if (p.tcp.flags & kTcpRst) {
    conns_.erase(it);
    return;
  }
  if (conn.state == TcpConn::State::kSynReceived && (p.tcp.flags & kTcpAck)) {
    conn.state = TcpConn::State::kEstablished;
  }
  if (!p.payload.empty()) {
    // Loss injection is per connection so one lossy flow cannot perturb the
    // drop pattern of another, and it drops exactly the Nth, 2Nth, ... data
    // segment of each flow.
    ++conn.data_segments;
    if (options_.drop_every_nth_tcp > 0 &&
        conn.data_segments %
                static_cast<uint32_t>(options_.drop_every_nth_tcp) ==
            0) {
      ++tcp_segments_dropped_;
      // The injected loss is observable, not silent: a kFrameDrop trace
      // event via the transport's hook and a flow drop record.
      if (flow_ != nullptr) {
        flow_->OnDrop(rx_flow_, flow::kDropGatewayTcp, now_);
      }
      if (drop_trace_) {
        drop_trace_(now_, p.payload.size(), rx_flow_);
      }
      return;  // simulated loss; guest must retransmit
    }
    if (p.tcp.seq == conn.rcv_nxt) {
      conn.rcv_nxt += p.payload.size();
      TcpSend(conn, kTcpAck, {});
      AppBytes(conn, p.payload);
    } else {
      // Out-of-order (e.g. duplicate after a drop): re-ACK what we have.
      TcpSend(conn, kTcpAck, {});
    }
  }
  if (p.tcp.flags & kTcpFin) {
    conn.rcv_nxt += 1;
    TcpSend(conn, kTcpAck | kTcpFin, {});
    conn.state = TcpConn::State::kClosed;
  }
}

void Gateway::AppBytes(TcpConn& conn, const Bytes& data) {
  if (conn.local_port == kEchoPort) {
    TcpSend(conn, kTcpAck | kTcpPsh, data);
    return;
  }
  conn.inbound.insert(conn.inbound.end(), data.begin(), data.end());
  TlsServerInput(conn);
}

void Gateway::SendTlsRecord(TcpConn& conn, uint8_t type, Bytes body) {
  if (type == kTlsRecordData && conn.tls_established) {
    // Encrypt + MAC (server-to-client key).
    Bytes wire;
    wire.push_back(static_cast<uint8_t>(conn.tls_tx_counter >> 8));
    wire.push_back(static_cast<uint8_t>(conn.tls_tx_counter));
    crypto::ChaCha20Xor(conn.key_s2c, conn.tls_tx_counter, 0, body.data(),
                        body.size());
    wire.insert(wire.end(), body.begin(), body.end());
    const auto mac = crypto::HmacSha256(conn.mac_key.data(),
                                        conn.mac_key.size(), wire.data(),
                                        wire.size());
    wire.insert(wire.end(), mac.begin(), mac.begin() + 16);
    ++conn.tls_tx_counter;
    body = std::move(wire);
  }
  Bytes record;
  record.push_back(type);
  record.push_back(static_cast<uint8_t>(body.size() >> 8));
  record.push_back(static_cast<uint8_t>(body.size()));
  record.insert(record.end(), body.begin(), body.end());
  TcpSend(conn, kTcpAck | kTcpPsh, record);
}

void Gateway::TlsServerInput(TcpConn& conn) {
  for (;;) {
    if (conn.inbound.size() < 3) {
      return;
    }
    const uint8_t type = conn.inbound[0];
    const size_t len = (static_cast<size_t>(conn.inbound[1]) << 8) |
                       conn.inbound[2];
    if (conn.inbound.size() < 3 + len) {
      return;
    }
    Bytes body(conn.inbound.begin() + 3, conn.inbound.begin() + 3 + len);
    conn.inbound.erase(conn.inbound.begin(), conn.inbound.begin() + 3 + len);

    if (type == kTlsRecordHello && !conn.tls_established) {
      // ClientHello: random(32) || dh_pub(8).
      if (body.size() < 40) {
        continue;
      }
      crypto::Digest client_random;
      std::memcpy(client_random.data(), body.data(), 32);
      uint64_t client_pub = 0;
      for (int i = 0; i < 8; ++i) {
        client_pub |= static_cast<uint64_t>(body[32 + i]) << (8 * i);
      }
      entropy_ = entropy_ * 6364136223846793005ull + 1442695040888963407ull;
      const auto kp = crypto::DhGenerate(entropy_);
      const uint64_t shared = crypto::DhShared(kp.secret, client_pub);
      crypto::Digest server_random =
          crypto::Sha256(reinterpret_cast<const uint8_t*>(&entropy_), 8);
      // salt = SHA256(client_random || server_random)
      Bytes salt_input(client_random.begin(), client_random.end());
      salt_input.insert(salt_input.end(), server_random.begin(),
                        server_random.end());
      const crypto::Digest salt = crypto::Sha256(salt_input);
      conn.key_c2s = crypto::DeriveKey(shared, salt, "c2s");
      conn.key_s2c = crypto::DeriveKey(shared, salt, "s2c");
      conn.mac_key = crypto::DeriveKey(shared, salt, "mac");
      // ServerHello: server_random(32) || dh_pub(8) || verify(16).
      Bytes hello(server_random.begin(), server_random.end());
      for (int i = 0; i < 8; ++i) {
        hello.push_back(static_cast<uint8_t>(kp.public_value >> (8 * i)));
      }
      const auto verify =
          crypto::HmacSha256(conn.mac_key.data(), conn.mac_key.size(),
                             salt.data(), salt.size());
      hello.insert(hello.end(), verify.begin(), verify.begin() + 16);
      conn.tls_established = true;  // keys live from here
      conn.tls_tx_counter = 0;
      conn.tls_rx_counter = 0;
      SendTlsRecord(conn, kTlsRecordHello, std::move(hello));
      continue;
    }
    if (type == kTlsRecordData && conn.tls_established) {
      // [ctr u16][ciphertext][mac16]
      if (body.size() < 18) {
        continue;
      }
      const size_t cipher_len = body.size() - 18;
      const auto mac = crypto::HmacSha256(conn.mac_key.data(),
                                          conn.mac_key.size(), body.data(),
                                          2 + cipher_len);
      if (std::memcmp(mac.data(), body.data() + 2 + cipher_len, 16) != 0) {
        LOG_WARN("world: TLS MAC mismatch, dropping record");
        continue;
      }
      const uint32_t ctr = (static_cast<uint32_t>(body[0]) << 8) | body[1];
      Bytes plain(body.begin() + 2, body.begin() + 2 + cipher_len);
      crypto::ChaCha20Xor(conn.key_c2s, ctr, 0, plain.data(), plain.size());
      // MQTT-lite message(s).
      size_t pos = 0;
      while (pos + 3 <= plain.size()) {
        const uint8_t op = plain[pos];
        const size_t mlen = (static_cast<size_t>(plain[pos + 1]) << 8) |
                            plain[pos + 2];
        if (pos + 3 + mlen > plain.size()) {
          break;
        }
        MqttServerMessage(conn, op,
                          Bytes(plain.begin() + pos + 3,
                                plain.begin() + pos + 3 + mlen));
        pos += 3 + mlen;
      }
    }
  }
}

void Gateway::MqttServerMessage(TcpConn& conn, uint8_t op, const Bytes& body) {
  auto reply = [&](uint8_t rop, const Bytes& rbody) {
    Bytes msg;
    msg.push_back(rop);
    msg.push_back(static_cast<uint8_t>(rbody.size() >> 8));
    msg.push_back(static_cast<uint8_t>(rbody.size()));
    msg.insert(msg.end(), rbody.begin(), rbody.end());
    SendTlsRecord(conn, kTlsRecordData, std::move(msg));
  };
  switch (op) {
    case kMqttConnect:
      conn.mqtt_connected = true;
      reply(kMqttConnAck, {});
      break;
    case kMqttSubscribe:
      subscriptions_.push_back(std::string(body.begin(), body.end()));
      conn.topics.push_back(std::string(body.begin(), body.end()));
      reply(kMqttSubAck, {});
      break;
    case kMqttPublish: {
      ++mqtt_rx_publishes_;
      ++publishes_by_ip_[conn.peer_ip];
      // PUBLISH body: [topic_len u8][topic][payload].
      std::string topic;
      if (!body.empty() && body.size() >= 1 + static_cast<size_t>(body[0])) {
        topic.assign(body.begin() + 1, body.begin() + 1 + body[0]);
      }
      // Publish span: every frame emitted between Begin and End is one
      // broker->subscriber fan-out leg, parented to the carrying frame.
      if (flow_ != nullptr) {
        flow_->BeginPublish(topic, rx_flow_, now_);
      }
      if (options_.mqtt_fanout && !topic.empty()) {
        for (auto& [skey, sub] : conns_) {
          if (&sub == &conn || !sub.mqtt_connected ||
              sub.state != TcpConn::State::kEstablished) {
            continue;
          }
          if (std::find(sub.topics.begin(), sub.topics.end(), topic) ==
              sub.topics.end()) {
            continue;
          }
          Bytes msg;
          msg.push_back(kMqttPublish);
          msg.push_back(static_cast<uint8_t>(body.size() >> 8));
          msg.push_back(static_cast<uint8_t>(body.size()));
          msg.insert(msg.end(), body.begin(), body.end());
          SendTlsRecord(sub, kTlsRecordData, std::move(msg));
        }
      }
      if (flow_ != nullptr) {
        flow_->EndPublish();
      }
      break;
    }
    case kMqttPingReq:
      reply(kMqttPingResp, {});
      break;
    default:
      break;
  }
}

size_t Gateway::mqtt_clients_connected() const {
  size_t n = 0;
  for (const auto& [key, conn] : conns_) {
    if (conn.mqtt_connected && conn.state == TcpConn::State::kEstablished) {
      ++n;
    }
  }
  return n;
}

void Gateway::PublishMqtt(Cycles now, const std::string& topic,
                          const Bytes& payload) {
  now_ = now;
  rx_flow_ = {};  // control-surface publish: no carrying guest frame
  if (flow_ != nullptr) {
    flow_->BeginPublish(topic, rx_flow_, now_);
  }
  for (auto& [key, conn] : conns_) {
    if (!conn.mqtt_connected || conn.state != TcpConn::State::kEstablished) {
      continue;
    }
    Bytes body;
    body.push_back(static_cast<uint8_t>(topic.size()));
    body.insert(body.end(), topic.begin(), topic.end());
    body.insert(body.end(), payload.begin(), payload.end());
    Bytes msg;
    msg.push_back(kMqttPublish);
    msg.push_back(static_cast<uint8_t>(body.size() >> 8));
    msg.push_back(static_cast<uint8_t>(body.size()));
    msg.insert(msg.end(), body.begin(), body.end());
    SendTlsRecord(conn, kTlsRecordData, std::move(msg));
  }
  if (flow_ != nullptr) {
    flow_->EndPublish();
  }
}

void Gateway::SendPing(Cycles now, Ipv4 dst, uint16_t id, uint16_t seq,
                       size_t payload_len) {
  now_ = now;
  rx_flow_ = {};
  Bytes payload(payload_len, 0xA5);
  const MacAddress dst_mac = pool_.MacOf(dst).value_or(kDeviceMac);
  Emit(BuildIpv4(kWorldMac, dst_mac, kWorldIp, dst, kIpProtoIcmp,
                 BuildIcmpEcho(8, id, seq, payload)));
}

void Gateway::SendPingOfDeath(Cycles now, Ipv4 dst) {
  now_ = now;
  rx_flow_ = {};
  // Claims 1400 bytes of echo payload while carrying only 8: the buggy
  // parser copies the claimed length and runs off the end of its buffer.
  Bytes payload(8, 0xEE);
  const MacAddress dst_mac = pool_.MacOf(dst).value_or(kDeviceMac);
  Emit(BuildIpv4(kWorldMac, dst_mac, kWorldIp, dst, kIpProtoIcmp,
                 BuildIcmpEcho(8, 0xDEAD, 1, payload,
                               /*claimed_len_override=*/1400)));
}

// --- NetWorld --------------------------------------------------------------

NetWorld::NetWorld(Machine& machine, WorldOptions options)
    : machine_(machine), options_(options), gateway_(options) {
  // The gateway processes guest frames synchronously inside the TX-commit
  // MMIO store, so "emit time" equals the frame's transmit time and every
  // reply lands exactly one link latency after the guest's transmit — the
  // same round-trip the pre-fleet NetWorld modelled.
  gateway_.set_emit([this](Bytes frame, flow::FlowId flow) {
    Deliver(std::move(frame), flow);
  });
  // Injected gateway losses surface as kFrameDrop events in the machine's
  // trace (when one is attached) — the drop hook is a pure observation on a
  // path the gateway already executes, so the cycle model is untouched.
  gateway_.set_drop_trace([this](Cycles, size_t bytes, flow::FlowId id) {
    if (auto* tr = machine_.trace()) {
      tr->OnFrameDrop(flow::kDropGatewayTcp, bytes, id.origin, id.seq);
    }
  });
  machine_.ethernet().on_transmit = [this](Bytes frame) {
    // Board-0 provenance for the single-board world; the sequence ticks
    // whether or not a flow recorder is attached.
    const flow::FlowId flow{0, tx_seq_++};
    if (flow_ != nullptr) {
      flow_->OnTx(flow, machine_.clock().now(), frame.size());
    }
    gateway_.OnFrame(machine_.clock().now(), frame, flow);
  };
  machine_.clock().AddHook([this](Cycles) { PumpDeliveries(); });
  machine_.AddNextEventSource([this]() -> std::optional<Cycles> {
    if (pending_.empty()) {
      return std::nullopt;
    }
    return pending_.front().due;
  });
}

void NetWorld::AttachFlow(flow::FlowRecorder* recorder) {
  flow_ = recorder;
  gateway_.set_flow(recorder);
}

void NetWorld::Deliver(Bytes frame, flow::FlowId flow) {
  const Cycles due = machine_.clock().now() + options_.link_latency;
  // Keep sorted by due time (link is FIFO: latency is constant).
  pending_.push_back({due, std::move(frame), flow});
}

void NetWorld::PumpDeliveries() {
  const Cycles now = machine_.clock().now();
  while (!pending_.empty() && pending_.front().due <= now) {
    if (flow_ != nullptr) {
      flow_->OnDelivery(pending_.front().flow, 0, now);
    }
    machine_.ethernet().HostInject(std::move(pending_.front().frame));
    pending_.pop_front();
  }
}

void NetWorld::PublishMqtt(const std::string& topic, const Bytes& payload) {
  gateway_.PublishMqtt(machine_.clock().now(), topic, payload);
}

void NetWorld::SendPing(uint16_t id, uint16_t seq, size_t payload_len) {
  gateway_.SendPing(machine_.clock().now(), kDeviceIp, id, seq, payload_len);
}

void NetWorld::SendPingOfDeath() {
  gateway_.SendPingOfDeath(machine_.clock().now(), kDeviceIp);
}

}  // namespace cheriot::net

// Debug utilities (Fig. 5 "Debug Utilities" / "Input/Output"): a UART
// console compartment and stack-usage tooling (§3.2.5: "we provide tooling
// to dynamically determine stack usage with a watermark").
#ifndef SRC_DEBUG_DEBUG_H_
#define SRC_DEBUG_DEBUG_H_

#include <string>

#include "src/firmware/image.h"
#include "src/runtime/compartment_ctx.h"

namespace cheriot::debug {

// Registers the "console" compartment: the only compartment that touches the
// UART (auditable single writer). Exports:
//   write(buf, len) -> status
void AddConsoleCompartment(ImageBuilder& image);
void UseConsole(ImageBuilder& image, const std::string& compartment);

// Writes a NUL-free string through the console compartment.
Status ConsoleWrite(CompartmentCtx& ctx, const std::string& text);

// Stack watermark tooling: bytes of the current thread's stack that have
// ever been dirtied (the loader zero-fills stacks; the kernel tracks the
// high-water mark the way the hardware's stack-high-water register does).
Address StackPeakBytes(CompartmentCtx& ctx);
// Bytes still free below the stack pointer right now.
Address StackHeadroom(CompartmentCtx& ctx);

// Hexdump of guest memory through a capability (for tests and examples).
std::string HexDump(CompartmentCtx& ctx, const Capability& cap, Address len);

}  // namespace cheriot::debug

#endif  // SRC_DEBUG_DEBUG_H_

#include "src/debug/debug.h"

#include <cstdio>
#include <vector>

#include "src/hw/devices.h"
#include "src/runtime/hardening.h"

namespace cheriot::debug {

void AddConsoleCompartment(ImageBuilder& image) {
  if (image.FindCompartment("console") != nullptr) {
    return;
  }
  image.Compartment("console")
      .CodeSize(1024)
      .Globals(16)
      .ImportMmio("uart", kUartMmioBase, kMmioRegionSize, true)
      .Export(
          "write",
          [](CompartmentCtx& ctx, const std::vector<Capability>& args) {
            const Capability buf = args[0];
            const Word len = args[1].word();
            if (len > 1024 ||
                !hardening::CheckPointer(buf, len,
                                         PermissionSet({Permission::kLoad}))) {
              return StatusCap(Status::kInvalidArgument);
            }
            const Capability uart = ctx.Mmio("uart");
            for (Word i = 0; i < len; ++i) {
              ctx.StoreWord(uart, 0, ctx.LoadByte(buf, i));
            }
            return StatusCap(Status::kOk);
          },
          256, InterruptPosture::kDisabled);
}

void UseConsole(ImageBuilder& image, const std::string& compartment) {
  AddConsoleCompartment(image);
  image.Compartment(compartment).ImportCompartment("console.write");
}

Status ConsoleWrite(CompartmentCtx& ctx, const std::string& text) {
  auto buf = ctx.AllocStack(static_cast<Address>(text.size() + 8));
  ctx.WriteBytes(buf.cap(), 0, text.data(), static_cast<Address>(text.size()));
  return static_cast<Status>(static_cast<int32_t>(
      ctx.Call("console.write",
               {hardening::ReadOnly(buf.cap(), static_cast<Address>(text.size())),
                WordCap(static_cast<Word>(text.size()))})
          .word()));
}

Address StackPeakBytes(CompartmentCtx& ctx) { return ctx.StackPeakUse(); }

Address StackHeadroom(CompartmentCtx& ctx) { return ctx.StackRemaining(); }

std::string HexDump(CompartmentCtx& ctx, const Capability& cap, Address len) {
  std::vector<uint8_t> data(len);
  ctx.ReadBytes(cap, 0, data.data(), len);
  std::string out;
  char line[80];
  for (Address i = 0; i < len; i += 16) {
    int n = std::snprintf(line, sizeof(line), "%08x: ", cap.cursor() + i);
    out.append(line, n);
    for (Address j = i; j < i + 16 && j < len; ++j) {
      n = std::snprintf(line, sizeof(line), "%02x ", data[j]);
      out.append(line, n);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace cheriot::debug

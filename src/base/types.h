// Fundamental scalar types for the simulated 32-bit CHERIoT machine.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace cheriot {

// A physical address in the simulated 32-bit address space.
using Address = uint32_t;
// A machine word (XLEN = 32).
using Word = uint32_t;
// Simulated CPU cycles.
using Cycles = uint64_t;

// Capabilities occupy eight bytes in memory (32-bit address + 32-bit
// metadata); tags and revocation bits are tracked per granule of this size.
inline constexpr Address kGranuleBytes = 8;

inline constexpr Address AlignDown(Address a, Address alignment) {
  return a & ~(alignment - 1);
}
inline constexpr Address AlignUp(Address a, Address alignment) {
  return (a + alignment - 1) & ~(alignment - 1);
}

}  // namespace cheriot

#endif  // SRC_BASE_TYPES_H_

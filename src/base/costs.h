// Calibrated cycle-cost model for the simulated CHERIoT-Ibex core.
//
// Every constant is annotated with the paper measurement it is calibrated
// against (SOSP'25, §5.3). The *shapes* of all benchmark results emerge from
// the interaction of these costs with real control flow in the switcher,
// allocator and scheduler; only the base magnitudes are pinned here.
#ifndef SRC_BASE_COSTS_H_
#define SRC_BASE_COSTS_H_

#include "src/base/types.h"

namespace cheriot::cost {

// Core clock of the evaluation platform: Arty A7 at 33 MHz (§5.3).
inline constexpr uint64_t kCoreHz = 33'000'000;

// --- Memory system -----------------------------------------------------
// The memory bus is 33 bits wide (32 data + 1 tag, §5.3 "Hardware
// performance"), so a word access is one bus transaction and a capability
// (64-bit + tag) takes two.
inline constexpr Cycles kLoadWord = 2;
inline constexpr Cycles kStoreWord = 2;
inline constexpr Cycles kLoadByte = 2;
inline constexpr Cycles kStoreByte = 2;
// Half-word accesses are one bus transaction, same as bytes; named
// separately so the model is explicit and independently tunable.
inline constexpr Cycles kLoadHalf = kLoadByte;
inline constexpr Cycles kStoreHalf = kStoreByte;
inline constexpr Cycles kLoadCap = 4;   // two bus reads (§5.3)
inline constexpr Cycles kStoreCap = 4;
// Load-filter revocation-bit lookup overhead (~8% of CoreMark, §5.3).
inline constexpr Cycles kLoadFilter = 1;
// Zeroing runs as a dword-store loop: ~0.5 cycles/byte, calibrated so that
// 2x256 B of stack zeroing adds ~243 cycles to a compartment call
// (452 - 209, Fig. 6a).
inline constexpr Cycles kZeroPerGranule = 4;

// --- ALU / control flow -------------------------------------------------
inline constexpr Cycles kInstruction = 1;
inline constexpr Cycles kBranch = 2;
// Plain function call + return inside a compartment (Fig. 6a: 6 cycles).
inline constexpr Cycles kFunctionCall = 6;
// Cross-library call through a sentry in the import table (Fig. 6a: 14).
inline constexpr Cycles kLibraryCall = 14;

// --- Switcher paths ------------------------------------------------------
// Calibrated so an empty compartment call round-trip lands near 209 cycles
// (Fig. 6a). The split mirrors the real switcher: forward path (unseal,
// export-entry checks, trusted-stack push, stack truncation, register
// clearing) and return path (restore, register clearing).
inline constexpr Cycles kSwitcherCallPath = 100;
inline constexpr Cycles kSwitcherReturnPath = 79;
// First-level trap entry: spill registers, read cause (part of the 1028
// cycle interrupt latency, Fig. 6a).
inline constexpr Cycles kTrapEntry = 300;
// Scheduler decision + context install (rest of interrupt latency).
inline constexpr Cycles kSchedule = 430;
inline constexpr Cycles kContextSwitch = 180;

// --- Error handling (Table 3) -------------------------------------------
inline constexpr Cycles kUnwindNoHandler = 109;   // fault + default unwind
inline constexpr Cycles kGlobalHandlerFault = 413;
inline constexpr Cycles kScopedHandlerEnter = 87;  // setjmp: 6 instructions
                                                   // + stack-list push
inline constexpr Cycles kScopedHandlerFault = 222;

// --- Sealing / token API (Table 3) ---------------------------------------
inline constexpr Cycles kHwSealOp = 3;
inline constexpr Cycles kLibTokenUnseal = 24;  // + call & loads => ~45 measured
inline constexpr Cycles kNewSealingKey = 479;  // + compartment call => 688
inline constexpr Cycles kSealedAllocWork = 1370;  // Table 3: 2432.2 total

// --- Allocator ------------------------------------------------------------
// Fixed overhead of the malloc fast path beyond compartment call + header
// stores (header walking is modelled by real simulated-memory accesses).
inline constexpr Cycles kAllocBookkeeping = 800;
inline constexpr Cycles kEphemeralClaim = 170;   // Table 3: 182 measured
inline constexpr Cycles kClaimWork = 1622;       // charged on claim and on
                                                 // release: claim+unclaim
                                                 // lands at Table 3's 3714

// --- Revoker ---------------------------------------------------------------
// Background sweep cost in cycles per granule. The §2.1 footnote's optimized
// revoker does 1 MiB at 250 MHz in ~1.5 ms (~3 cycles/granule); the FPGA
// evaluation platform's simple revoker is slower — calibrated so the
// >32 KiB allocation-rate regimes of Fig. 6b reproduce (sweep of the whole
// 256 KiB SRAM ~= 0.5 M cycles ~= 15 ms at 33 MHz).
inline constexpr Cycles kRevokerCyclesPerGranule = 15;

// --- Crypto cost model (native crypto charged in simulated cycles) --------
// Approximate software costs on a 32-bit in-order core; these drive the 92%
// CPU load during the TLS handshake phase of Fig. 7.
inline constexpr Cycles kChaCha20PerBlock = 900;     // 64-byte block
inline constexpr Cycles kSha256PerBlock = 1800;      // 64-byte block
inline constexpr Cycles kKeyExchange = 9'000'000;    // toy-DH stand-in for
                                                     // X25519/P-256 @33 MHz

}  // namespace cheriot::cost

#endif  // SRC_BASE_COSTS_H_

// Error codes shared across RTOS APIs. Mirrors the -Exxx convention of the
// original CHERIoT RTOS (negative values returned in a0 on failure).
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>

namespace cheriot {

enum class Status : int32_t {
  kOk = 0,
  kInvalidArgument = -1,   // -EINVAL
  kNoMemory = -2,          // -ENOMEM: quota or heap exhausted
  kPermissionDenied = -3,  // -EPERM
  kTimedOut = -4,          // -ETIMEDOUT
  kWouldBlock = -5,        // -EWOULDBLOCK
  kCompartmentFail = -6,   // callee compartment faulted and unwound
  kNotFound = -7,
  kBusy = -8,
  kOverflow = -9,
  kNotPermittedByPolicy = -10,
  kDeadlock = -11,
  kNotEnoughStack = -12,  // switcher: caller stack below callee requirement
};

inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kNoMemory: return "NO_MEMORY";
    case Status::kPermissionDenied: return "PERMISSION_DENIED";
    case Status::kTimedOut: return "TIMED_OUT";
    case Status::kWouldBlock: return "WOULD_BLOCK";
    case Status::kCompartmentFail: return "COMPARTMENT_FAIL";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kBusy: return "BUSY";
    case Status::kOverflow: return "OVERFLOW";
    case Status::kNotPermittedByPolicy: return "NOT_PERMITTED_BY_POLICY";
    case Status::kDeadlock: return "DEADLOCK";
    case Status::kNotEnoughStack: return "NOT_ENOUGH_STACK";
  }
  return "UNKNOWN";
}

}  // namespace cheriot

#endif  // SRC_BASE_STATUS_H_

#include "src/base/clock.h"

// CycleClock is header-only; this translation unit exists so the build graph
// has a stable home for future out-of-line additions.

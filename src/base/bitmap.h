// Word-packed bitmap used for the tag and revocation-bit SRAMs.
//
// On the real chip these are dedicated SRAM blocks read in parallel with the
// data access (§2.1); in the simulator they sit on the hottest path of every
// load/store, so they are packed 64 bits to a word with range operations
// that touch whole words (the load filter probes one bit, tag-clearing on a
// store masks one word, the revoker skips untagged runs with FindNextSet).
#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cheriot {

class Bitmap {
 public:
  static constexpr size_t npos = ~static_cast<size_t>(0);
  static constexpr size_t kBitsPerWord = 64;

  explicit Bitmap(size_t bits)
      : bits_(bits), words_((bits + kBitsPerWord - 1) / kBitsPerWord, 0) {}

  size_t size() const { return bits_; }

  bool Test(size_t i) const {
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
  }
  void Set(size_t i) {
    words_[i / kBitsPerWord] |= uint64_t{1} << (i % kBitsPerWord);
  }
  void Clear(size_t i) {
    words_[i / kBitsPerWord] &= ~(uint64_t{1} << (i % kBitsPerWord));
  }

  // Sets or clears [first, first + count), clamped to the bitmap size.
  // Whole interior words are filled in one store each.
  void SetRange(size_t first, size_t count, bool value) {
    if (first >= bits_ || count == 0) {
      return;
    }
    const size_t last = std::min(bits_, first + count) - 1;  // inclusive
    const size_t first_word = first / kBitsPerWord;
    const size_t last_word = last / kBitsPerWord;
    const uint64_t head = ~uint64_t{0} << (first % kBitsPerWord);
    const uint64_t tail =
        ~uint64_t{0} >> (kBitsPerWord - 1 - last % kBitsPerWord);
    if (first_word == last_word) {
      Apply(first_word, head & tail, value);
      return;
    }
    Apply(first_word, head, value);
    const uint64_t fill = value ? ~uint64_t{0} : 0;
    for (size_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = fill;
    }
    Apply(last_word, tail, value);
  }
  void ClearRange(size_t first, size_t count) { SetRange(first, count, false); }

  // Clears the inclusive span [first, last]; the caller guarantees
  // last < size(). A scalar store clears at most two granules, so the
  // single-word case is the hot one and compiles to one masked store.
  void ClearSpan(size_t first, size_t last) {
    const size_t first_word = first / kBitsPerWord;
    const size_t last_word = last / kBitsPerWord;
    const uint64_t head = ~uint64_t{0} << (first % kBitsPerWord);
    const uint64_t tail =
        ~uint64_t{0} >> (kBitsPerWord - 1 - last % kBitsPerWord);
    if (first_word == last_word) [[likely]] {
      words_[first_word] &= ~(head & tail);
      return;
    }
    words_[first_word] &= ~head;
    for (size_t w = first_word + 1; w < last_word; ++w) {
      words_[w] = 0;
    }
    words_[last_word] &= ~tail;
  }

  // Index of the first set bit at or after `from`, or npos. Skips zero words
  // 64 bits at a time.
  size_t FindNextSet(size_t from) const {
    if (from >= bits_) {
      return npos;
    }
    size_t w = from / kBitsPerWord;
    uint64_t word = words_[w] & (~uint64_t{0} << (from % kBitsPerWord));
    while (word == 0) {
      if (++w == words_.size()) {
        return npos;
      }
      word = words_[w];
    }
    const size_t i = w * kBitsPerWord + std::countr_zero(word);
    return i < bits_ ? i : npos;
  }

  // True if any bit in [first, first + count) is set (clamped).
  bool AnyInRange(size_t first, size_t count) const {
    const size_t i = FindNextSet(first);
    return i != npos && count != 0 && i - first < count;
  }

  size_t PopCount() const {
    size_t n = 0;
    for (uint64_t w : words_) {
      n += std::popcount(w);
    }
    return n;
  }

  // Word-granular access for snapshot serialisation (DESIGN.md §10): the
  // packed words are the canonical on-disk form, so save/restore moves them
  // wholesale instead of bit-by-bit.
  const std::vector<uint64_t>& words() const { return words_; }
  void RestoreWords(const std::vector<uint64_t>& words) {
    if (words.size() == words_.size()) {
      words_ = words;
    }
  }

 private:
  void Apply(size_t word, uint64_t mask, bool value) {
    if (value) {
      words_[word] |= mask;
    } else {
      words_[word] &= ~mask;
    }
  }

  size_t bits_;
  std::vector<uint64_t> words_;
};

}  // namespace cheriot

#endif  // SRC_BASE_BITMAP_H_

// The simulated cycle clock. All hardware-model components (revoker, timer,
// network world) register tick hooks so that "background" work advances in
// lock-step with CPU execution, as it does on the real core.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/base/types.h"

namespace cheriot {

class CycleClock {
 public:
  // Called with the number of cycles that just elapsed.
  using TickHook = std::function<void(Cycles delta)>;

  Cycles now() const { return now_; }

  // Advances simulated time. Hooks run after the clock moves so they observe
  // the post-advance time.
  void Tick(Cycles delta) {
    if (delta == 0) {
      return;
    }
    now_ += delta;
    if (in_hook_) {
      return;  // Hooks must not recursively re-run hooks.
    }
    in_hook_ = true;
    for (auto& hook : hooks_) {
      hook(delta);
    }
    in_hook_ = false;
  }

  void AddHook(TickHook hook) { hooks_.push_back(std::move(hook)); }

 private:
  Cycles now_ = 0;
  bool in_hook_ = false;
  std::vector<TickHook> hooks_;
};

}  // namespace cheriot

#endif  // SRC_BASE_CLOCK_H_

// The simulated cycle clock. All hardware-model components (revoker, timer,
// network world) register tick hooks so that "background" work advances in
// lock-step with CPU execution, as it does on the real core.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/base/types.h"

namespace cheriot {

class CycleClock {
 public:
  // Called with the number of cycles that just elapsed.
  using TickHook = std::function<void(Cycles delta)>;
  // Raw-function-pointer variant for the SoC's own background work (revoker
  // + timer), which runs on every tick of every simulated access. It always
  // fires before the std::function hooks, matching the registration order
  // the Machine constructor used to rely on.
  using RawTickHook = void (*)(void* ctx, Cycles delta);

  Cycles now() const { return now_; }

  // Advances simulated time. Hooks run after the clock moves so they observe
  // the post-advance time. The common case — only the SoC's raw background
  // hook registered — stays branch-light; the std::function hook loop is
  // kept out of line so it doesn't bloat the inlined memory fast path.
  void Tick(Cycles delta) {
    if (delta == 0) {
      return;
    }
    now_ += delta;
    if (in_hook_) {
      return;  // Hooks must not recursively re-run hooks.
    }
    if (hooks_.empty()) {
      if (raw_hook_) {
        // No reentrancy guard needed here: the raw hook (revoker + timer
        // background work) never ticks the clock, and with no std::function
        // hooks registered nothing else can re-enter.
        raw_hook_(raw_hook_ctx_, delta);
      }
      return;
    }
    TickHooks(delta);
  }

  void AddHook(TickHook hook) { hooks_.push_back(std::move(hook)); }
  void SetRawHook(RawTickHook hook, void* ctx) {
    raw_hook_ = hook;
    raw_hook_ctx_ = ctx;
  }

  // Snapshot restore (DESIGN.md §10): seats the clock at a saved time
  // WITHOUT firing any hook — the restored components are given their own
  // saved state, so replaying background work here would double-apply it.
  void RestoreNow(Cycles now) { now_ = now; }

  // Rebind audit handles: Machine::RebindHostHandles() re-seats the raw hook
  // after a restore; these let it (and tests) prove the context pointer no
  // longer dangles into a dead Machine.
  RawTickHook raw_hook() const { return raw_hook_; }
  const void* raw_hook_ctx() const { return raw_hook_ctx_; }

 private:
  // Slow path: at least one std::function hook is registered. Fires the raw
  // hook first (same order as the fast path) and then every hook.
  [[gnu::noinline]] void TickHooks(Cycles delta) {
    in_hook_ = true;
    if (raw_hook_) {
      raw_hook_(raw_hook_ctx_, delta);
    }
    for (auto& hook : hooks_) {
      hook(delta);
    }
    in_hook_ = false;
  }

  Cycles now_ = 0;
  bool in_hook_ = false;
  RawTickHook raw_hook_ = nullptr;
  void* raw_hook_ctx_ = nullptr;
  std::vector<TickHook> hooks_;
};

}  // namespace cheriot

#endif  // SRC_BASE_CLOCK_H_

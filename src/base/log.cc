#include "src/base/log.h"

#include <atomic>

namespace cheriot {
namespace {
// Atomic: parallel Fleet boards log concurrently from pool threads.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace cheriot

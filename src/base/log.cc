#include "src/base/log.h"

namespace cheriot {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace cheriot

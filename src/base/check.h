// Always-on invariant checks for the simulator's own host-side code. Unlike
// <cassert> these survive NDEBUG builds (the default RelWithDebInfo config
// defines it), so TCB-internal contract violations abort loudly instead of
// indexing out of bounds.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CHERIOT_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, msg, #cond);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // SRC_BASE_CHECK_H_

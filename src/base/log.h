// Minimal leveled logging for the simulator itself (host-side diagnostics,
// not the guest's debug compartment).
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdio>
#include <string>

namespace cheriot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log threshold; defaults to kWarn so tests stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const std::string& msg);

}  // namespace cheriot

#define CHERIOT_LOG(level, ...)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::cheriot::GetLogLevel())) {                \
      char buf_[512];                                                \
      std::snprintf(buf_, sizeof(buf_), __VA_ARGS__);                \
      ::cheriot::LogMessage(level, buf_);                            \
    }                                                                \
  } while (0)

#define LOG_DEBUG(...) CHERIOT_LOG(::cheriot::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) CHERIOT_LOG(::cheriot::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) CHERIOT_LOG(::cheriot::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) CHERIOT_LOG(::cheriot::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_

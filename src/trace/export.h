// Exporters for cheriot-trace recordings: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing), a versioned byte-stable metrics snapshot,
// collapsed-stack flamegraph text and a human-readable profile table.
//
// Exporters are pure read-side consumers of TraceRecorder: they know nothing
// about the simulator, so a clockless recorder (the fleet fabric's) exports
// the same way a board's does. All output is deterministic byte-for-byte:
// json::Object is an ordered map, arrays follow emission order, and merged
// fleet traces are interleaved by a stable sort on guest cycles.
#ifndef SRC_TRACE_EXPORT_H_
#define SRC_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/trace/trace.h"

namespace cheriot::trace {

// Per-thread stack statistics for the metrics snapshot. Callers (CLI, tests)
// fill these from System::threads(); the exporter stays sim-independent.
struct ThreadStackStats {
  std::string name;
  uint32_t stack_size = 0;
  uint32_t peak_stack_bytes = 0;
  uint32_t compartment_calls = 0;
};

// Chrome trace-event JSON for one recorder. Timestamps are raw guest cycles
// (the viewer's time unit is nominally microseconds; relative durations and
// ordering are what matter). One process per board (pid = board index;
// pid 9999 for the clockless fabric recorder), one track per guest thread,
// pseudo-tracks for the revoker (tid 9990), NIC (tid 9991) and fabric
// (tid 9992). Compartment calls are B/E duration pairs named
// "compartment.export"; traps, wakes and quota exhaustion are instant
// events; heap_live_bytes is a counter series.
json::Value ChromeTrace(TraceRecorder& recorder);

// Fleet-level merge: every recorder's events on its own pid, interleaved by
// guest cycle with a stable tie-break on recorder order, so the merged trace
// is byte-identical for any host worker count.
json::Value MergedChromeTrace(const std::vector<TraceRecorder*>& recorders);

// Versioned metrics snapshot (kMetricsSchemaVersion). Byte-stable: emit with
// Dump(2) and diff across runs. `threads` supplies per-thread peak-stack
// stats; pass {} for recorders without a System (e.g. the fabric's).
inline constexpr int kMetricsSchemaVersion = 1;
json::Value MetricsSnapshot(TraceRecorder& recorder,
                            const std::vector<ThreadStackStats>& threads = {});

// Collapsed call stacks, one per line: "thread;comp;...;comp <cycles>" —
// directly consumable by flamegraph.pl / speedscope.
std::string CollapsedStacksText(TraceRecorder& recorder);

// Human-readable per-compartment table (self/total/calls, share of wall
// cycles), headed by the boot/idle/attribution summary.
std::string ProfileText(TraceRecorder& recorder);

}  // namespace cheriot::trace

#endif  // SRC_TRACE_EXPORT_H_

// cheriot-trace: a deterministic flight recorder and per-compartment cycle
// profiler for the simulated SoC (DESIGN.md §8).
//
// Typed events are emitted at the choke points the kernel already owns —
// switcher call/return, trap delivery, context switch, scheduler wake/sleep,
// allocator alloc/free/quota, revoker sweeps, NIC frame tx/rx — into a
// bounded per-board ring buffer stamped with *guest* cycles (never host
// time), so a trace is a pure function of the firmware: bit-identical across
// runs and host thread counts, exactly like the fleet itself.
//
// Determinism contract (pinned by tests/trace_test.cpp and the traced
// variants of tests/invariance_test.cpp): the recorder only OBSERVES the
// cycle model. It never ticks the clock, never touches simulated memory, and
// never consults host state, so enabling tracing cannot move a single guest
// cycle. The zero-cost-when-off rule is structural: every emit site is a
// raw-pointer null check, and the profiler's clock hook is only registered
// when a recorder is attached.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"

namespace cheriot {
class Machine;
}  // namespace cheriot

namespace cheriot::snap {
class Writer;
}  // namespace cheriot::snap

namespace cheriot::trace {

enum class EventType : uint8_t {
  kBootDone = 0,
  kCompartmentCall = 1,    // a=caller, b=callee, c=export index, d=depth
  kCompartmentReturn = 2,  // a=callee, b=caller, d=depth after pop
  kLibraryCall = 3,        // a=library, b=export index
  kTrap = 4,               // a=TrapCode, b=faulting compartment
  kContextSwitch = 5,      // a=from thread, b=to thread (-1 = idle)
  kThreadWake = 6,         // a=thread made ready
  kThreadBlock = 7,        // a=thread, d=futex address
  kThreadSleep = 8,        // a=thread, d=absolute wake deadline
  kHeapAlloc = 9,          // a=compartment, b=quota id, c=bytes, d=live bytes
  kHeapFree = 10,          // a=compartment, b=quota id, c=bytes, d=live bytes
  kQuotaExhausted = 11,    // a=compartment, b=quota id, c=bytes requested
  kSweepBegin = 12,        // d=completed-epoch counter at start
  kSweepEnd = 13,          // c=granules scanned, d=epoch after completion
  kNicTx = 14,             // c=frame bytes, a=flow origin, d=flow seq
  kNicRx = 15,             // c=frame bytes, a=flow origin, d=flow seq
  kFabricFrame = 16,       // a=src port, b=dst port (-1 = flood), c=bytes,
                           // d=flow key (origin<<32 | seq)
  kCrashRecord = 17,       // a=TrapCode, b=compartment, c=fault address,
                           // d=forensics record sequence number
  kIdleFastForward = 18,   // c=cycles skipped in one idle jump (the event's
                           // timestamp is the jump target); emitted only for
                           // spans the quantum timer would have chopped
  kFrameDrop = 19,         // a=flow origin, b=drop reason (0=nic_loss,
                           // 1=gateway_tcp), c=frame bytes, d=flow seq
};

// Number of event kinds. The exporters (src/trace/export.cc) switch over
// EventType with no `default:` under -Werror=switch, so a new kind added
// above without an exporter mapping is a build failure, not a silently
// unexported event. This count sizes the per-type aggregate array and the
// exporters' iteration bound; the static_assert pins it to the enum.
inline constexpr size_t kEventTypeCount =
    static_cast<size_t>(EventType::kFrameDrop) + 1;

// Sentinel for the flow-id operands on kNicTx/kNicRx/kFrameDrop events:
// matches flow::FlowId::kNone without making the trace layer depend on
// src/flow (the trace ring stores raw integers only).
inline constexpr int32_t kNoFlowOrigin = -32768;

const char* EventTypeName(EventType type);

// One recorded event. POD, fixed payload: the ring must never allocate or
// chase pointers on the emit path.
struct Event {
  Cycles at = 0;      // guest cycles (CycleClock::now at emit)
  uint64_t d = 0;
  int64_t c = 0;
  int32_t a = 0;
  int32_t b = 0;
  EventType type = EventType::kBootDone;
  int16_t thread = -1;  // guest thread id, -1 when none is current
};

struct TraceOptions {
  // Ring capacity in events; the oldest events are dropped (and counted)
  // once the ring is full, deterministically.
  size_t ring_capacity = 1 << 16;
  // Cycle-attribution profiler (per-compartment self/total + collapsed
  // stacks). Requires a clock, i.e. Attach().
  bool profile = true;
};

// Pseudo-contexts for cycle attribution: cycles spent before the TCB exists,
// cycles spent with no runnable thread, and cycles spent by a thread outside
// any compartment (switcher / kernel entry and exit paths).
inline constexpr int kContextBoot = -2;
inline constexpr int kContextIdle = -1;
inline constexpr int kContextKernel = -3;

class TraceRecorder {
 public:
  struct CompartmentProfile {
    Cycles self = 0;    // charged while top of the running thread's stack
    Cycles total = 0;   // charged while anywhere on the running stack
    uint64_t calls = 0; // cross-compartment entries
  };

  explicit TraceRecorder(TraceOptions options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- Wiring (Attach() / System::Boot) ------------------------------------
  void SetClock(const CycleClock* clock) { clock_ = clock; }
  void SetLabel(std::string label) { label_ = std::move(label); }
  void SetBoardIndex(int index) { board_index_ = index; }
  // Name tables, published by System::Boot from the loaded image so events
  // stay integer-only and names are resolved at export time.
  void SetCompartmentNames(std::vector<std::string> names);
  void SetLibraryNames(std::vector<std::string> names);
  void SetExportNames(std::vector<std::vector<std::string>> names);
  void SetThreadNames(std::vector<std::string> names);

  // --- Choke-point emitters -------------------------------------------------
  // Every emitter first settles the profiler (charging the cycles elapsed
  // since the last settlement to the *outgoing* context), then records the
  // event, then updates the mirrored call stacks.
  void OnBootDone();
  void OnCompartmentCall(int thread, int caller, int callee, int export_index);
  void OnCompartmentReturn(int thread, int callee, int caller);
  void OnLibraryCall(int thread, int library, int export_index);
  void OnTrap(int thread, int code, int compartment);
  void OnContextSwitch(int from_thread, int to_thread);
  void OnThreadWake(int thread);
  void OnThreadBlock(int thread, Address futex_addr);
  void OnThreadSleep(int thread, Cycles wake_at);
  void OnHeapAlloc(int thread, int compartment, uint32_t quota, Word bytes);
  void OnHeapFree(int thread, int compartment, uint32_t quota, Word bytes);
  void OnQuotaExhausted(int thread, int compartment, uint32_t quota,
                        Word bytes);
  void OnSweepBegin(uint32_t epoch);
  void OnSweepEnd(uint32_t epoch, uint64_t granules);
  // NIC events optionally carry the frame's host-side flow id (PR 9) in
  // spare operands so Perfetto exports can bind tx->rx arrows. Defaulted so
  // pre-flow call sites stay valid; the id never exists in guest memory.
  void OnNicTx(size_t bytes, int32_t flow_origin = kNoFlowOrigin,
               uint32_t flow_seq = 0);
  void OnNicRx(size_t bytes, int32_t flow_origin = kNoFlowOrigin,
               uint32_t flow_seq = 0);
  // Fabric events carry an explicit timestamp: the fabric has no clock of
  // its own and switches frames at epoch barriers using their TX stamps.
  void OnFabricFrame(Cycles at, int src_port, int dst_port, size_t bytes,
                     int32_t flow_origin = kNoFlowOrigin,
                     uint32_t flow_seq = 0);
  // Frame dropped by fault injection before reaching its destination:
  // reason 0 = arbiter kNicLoss at a board NIC, 1 = drop_every_nth_tcp at
  // the gateway. OnFrameDrop stamps the attached clock; OnFrameDropAt is for
  // clockless recorders (the fleet's fabric recorder).
  void OnFrameDrop(uint8_t reason, size_t bytes, int32_t flow_origin,
                   uint32_t flow_seq);
  void OnFrameDropAt(Cycles at, uint8_t reason, size_t bytes,
                     int32_t flow_origin, uint32_t flow_seq);
  // Crash record marker, emitted by the switcher when a forensics recorder
  // (src/health) files a crash record while a trace is also attached. `seq`
  // is the forensics ring sequence number so the two streams can be joined.
  void OnCrashRecord(int thread, int cause, int compartment,
                     Address fault_address, uint64_t seq);
  // Idle fast-forward span (kernel jumped the clock `span` cycles to the
  // next event with no runnable thread). The span is charged to the idle
  // context by the ordinary settlement; the event only makes the jump
  // visible in exported traces.
  void OnIdleFastForward(Cycles span);

  // Profiler clock hook: charges clock->now() - last settlement to the
  // current context. Registered by Attach(); also safe to call manually.
  void ChargeToNow();

  // --- Read side (exporters, tests) ----------------------------------------
  // Events in emit order (oldest first, post-drop).
  std::vector<Event> Events() const;
  size_t event_count() const { return count_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t emitted() const { return emitted_; }

  // Settles the profiler and returns per-compartment attribution. The sum
  // boot_cycles + idle_cycles + Σ self over all contexts equals the clock's
  // current cycle exactly (asserted by trace_test).
  const std::map<int, CompartmentProfile>& Profile();
  Cycles boot_cycles();
  Cycles idle_cycles();
  Cycles attributed_cycles();

  // Collapsed call stacks ("thread;compA;compB <cycles>" keys as id vectors:
  // [thread, comp, comp...]) for flamegraph rendering.
  const std::map<std::vector<int>, Cycles>& CollapsedStacks();

  // --- Aggregates (deterministic, maintained on emit) -----------------------
  uint64_t heap_live_bytes() const { return heap_live_bytes_; }
  uint64_t heap_allocs() const { return heap_allocs_; }
  uint64_t heap_frees() const { return heap_frees_; }
  uint64_t sweeps_completed() const { return sweeps_completed_; }
  uint64_t granules_scanned() const { return granules_scanned_; }
  uint64_t nic_tx_frames() const { return nic_tx_frames_; }
  uint64_t nic_tx_bytes() const { return nic_tx_bytes_; }
  uint64_t nic_rx_frames() const { return nic_rx_frames_; }
  uint64_t nic_rx_bytes() const { return nic_rx_bytes_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t events_of_type(EventType type) const {
    return by_type_[static_cast<size_t>(type)];
  }

  // --- Name resolution ------------------------------------------------------
  const std::string& label() const { return label_; }
  int board_index() const { return board_index_; }
  // Current guest time: the clock when attached, else the latest stamped
  // event (clockless recorders, e.g. the fleet fabric's).
  Cycles now() const { return clock_ ? clock_->now() : latest_at_; }
  std::string CompartmentName(int id) const;
  std::string LibraryName(int id) const;
  std::string ExportName(int compartment, int export_index) const;
  std::string ThreadName(int id) const;
  size_t thread_count() const { return thread_names_.size(); }

  const TraceOptions& options() const { return options_; }

  // Snapshot serialization (DESIGN.md §10). Serialize-only: the ring, the
  // aggregates and the profiler state are a pure function of the guest run,
  // so a snapshot verify re-serializes the replayed recorder and compares
  // bytes instead of restoring (restoring would need the name tables too and
  // buys nothing — replay regenerates the identical recorder).
  void SerializeState(snap::Writer& w) const;

 private:
  void Emit(EventType type, int16_t thread, int32_t a, int32_t b, int64_t c,
            uint64_t d);
  void EmitAt(Cycles at, EventType type, int16_t thread, int32_t a, int32_t b,
              int64_t c, uint64_t d);
  std::vector<int>& StackFor(int thread);

  TraceOptions options_;
  const CycleClock* clock_ = nullptr;
  std::string label_;
  int board_index_ = 0;

  // Ring buffer.
  std::vector<Event> ring_;
  size_t start_ = 0;
  size_t count_ = 0;
  uint64_t dropped_ = 0;
  uint64_t emitted_ = 0;
  uint64_t by_type_[kEventTypeCount] = {};
  Cycles latest_at_ = 0;

  // Profiler state: mirrored compartment call stacks (the trusted stack
  // lives in simulated memory; reading it would tick the clock).
  bool boot_done_ = false;
  int current_thread_ = -1;
  Cycles settled_at_ = 0;
  std::vector<std::vector<int>> thread_stacks_;
  std::map<int, CompartmentProfile> profile_;
  std::map<std::vector<int>, Cycles> collapsed_;
  Cycles boot_cycles_ = 0;
  Cycles idle_cycles_ = 0;

  // Aggregates.
  uint64_t heap_live_bytes_ = 0;
  uint64_t heap_allocs_ = 0;
  uint64_t heap_frees_ = 0;
  uint64_t sweeps_completed_ = 0;
  uint64_t granules_scanned_ = 0;
  uint64_t nic_tx_frames_ = 0;
  uint64_t nic_tx_bytes_ = 0;
  uint64_t nic_rx_frames_ = 0;
  uint64_t nic_rx_bytes_ = 0;
  uint64_t frames_dropped_ = 0;

  // Names.
  std::vector<std::string> compartment_names_;
  std::vector<std::string> library_names_;
  std::vector<std::vector<std::string>> export_names_;
  std::vector<std::string> thread_names_;
};

// Attaches a recorder to a machine: publishes it to the devices (so the
// switcher, kernel, allocator, revoker and NIC plumbing see it through
// Machine::trace()) and registers the profiler's clock hook. Must be called
// before System::Boot() so boot cycles are attributed and the scheduler is
// wired; the recorder must outlive the machine's last tick.
void Attach(Machine& machine, TraceRecorder* recorder);

}  // namespace cheriot::trace

#endif  // SRC_TRACE_TRACE_H_

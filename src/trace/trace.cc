#include "src/trace/trace.h"

#include <algorithm>

#include "src/hw/machine.h"
#include "src/snap/wire.h"

// Exhaustiveness guard (satellite of the health PR): every switch over
// EventType in this translation unit must cover every enumerator — adding an
// event kind without a name mapping is a compile error, not an "unknown".
#pragma GCC diagnostic error "-Wswitch"

namespace cheriot::trace {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kBootDone: return "boot_done";
    case EventType::kCompartmentCall: return "compartment_call";
    case EventType::kCompartmentReturn: return "compartment_return";
    case EventType::kLibraryCall: return "library_call";
    case EventType::kTrap: return "trap";
    case EventType::kContextSwitch: return "context_switch";
    case EventType::kThreadWake: return "thread_wake";
    case EventType::kThreadBlock: return "thread_block";
    case EventType::kThreadSleep: return "thread_sleep";
    case EventType::kHeapAlloc: return "heap_alloc";
    case EventType::kHeapFree: return "heap_free";
    case EventType::kQuotaExhausted: return "quota_exhausted";
    case EventType::kSweepBegin: return "sweep_begin";
    case EventType::kSweepEnd: return "sweep_end";
    case EventType::kNicTx: return "nic_tx";
    case EventType::kNicRx: return "nic_rx";
    case EventType::kFabricFrame: return "fabric_frame";
    case EventType::kCrashRecord: return "crash_record";
    case EventType::kIdleFastForward: return "idle_fast_forward";
    case EventType::kFrameDrop: return "frame_drop";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(TraceOptions options) : options_(options) {
  ring_.resize(options_.ring_capacity);
}

void TraceRecorder::SetCompartmentNames(std::vector<std::string> names) {
  compartment_names_ = std::move(names);
}
void TraceRecorder::SetLibraryNames(std::vector<std::string> names) {
  library_names_ = std::move(names);
}
void TraceRecorder::SetExportNames(std::vector<std::vector<std::string>> names) {
  export_names_ = std::move(names);
}
void TraceRecorder::SetThreadNames(std::vector<std::string> names) {
  thread_names_ = std::move(names);
}

void TraceRecorder::EmitAt(Cycles at, EventType type, int16_t thread,
                           int32_t a, int32_t b, int64_t c, uint64_t d) {
  ++emitted_;
  ++by_type_[static_cast<size_t>(type)];
  latest_at_ = std::max(latest_at_, at);
  if (ring_.empty()) {
    ++dropped_;
    return;
  }
  if (count_ == ring_.size()) {
    start_ = (start_ + 1) % ring_.size();
    --count_;
    ++dropped_;
  }
  Event& e = ring_[(start_ + count_) % ring_.size()];
  e.at = at;
  e.d = d;
  e.c = c;
  e.a = a;
  e.b = b;
  e.type = type;
  e.thread = thread;
  ++count_;
}

void TraceRecorder::Emit(EventType type, int16_t thread, int32_t a, int32_t b,
                         int64_t c, uint64_t d) {
  EmitAt(clock_ ? clock_->now() : latest_at_, type, thread, a, b, c, d);
}

std::vector<int>& TraceRecorder::StackFor(int thread) {
  if (static_cast<size_t>(thread) >= thread_stacks_.size()) {
    thread_stacks_.resize(static_cast<size_t>(thread) + 1);
  }
  return thread_stacks_[static_cast<size_t>(thread)];
}

void TraceRecorder::ChargeToNow() {
  if (!options_.profile || clock_ == nullptr) {
    return;
  }
  const Cycles now = clock_->now();
  if (now <= settled_at_) {
    return;
  }
  const Cycles d = now - settled_at_;
  settled_at_ = now;
  if (!boot_done_) {
    boot_cycles_ += d;
    auto& p = profile_[kContextBoot];
    p.self += d;
    p.total += d;
    collapsed_[{kContextBoot}] += d;
    return;
  }
  if (current_thread_ < 0) {
    idle_cycles_ += d;
    auto& p = profile_[kContextIdle];
    p.self += d;
    p.total += d;
    collapsed_[{kContextIdle}] += d;
    return;
  }
  const std::vector<int>& stack = StackFor(current_thread_);
  if (stack.empty()) {
    auto& p = profile_[kContextKernel];
    p.self += d;
    p.total += d;
    collapsed_[{current_thread_, kContextKernel}] += d;
    return;
  }
  profile_[stack.back()].self += d;
  // `total` counts a compartment once per running stack even under
  // recursion, so Σ total can exceed wall cycles but never double-counts one
  // frame chain.
  for (size_t i = 0; i < stack.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (stack[j] == stack[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      profile_[stack[i]].total += d;
    }
  }
  std::vector<int> key;
  key.reserve(stack.size() + 1);
  key.push_back(current_thread_);
  key.insert(key.end(), stack.begin(), stack.end());
  collapsed_[key] += d;
}

void TraceRecorder::OnBootDone() {
  ChargeToNow();
  boot_done_ = true;
  Emit(EventType::kBootDone, -1, 0, 0, 0, 0);
}

void TraceRecorder::OnCompartmentCall(int thread, int caller, int callee,
                                      int export_index) {
  ChargeToNow();
  std::vector<int>& stack = StackFor(thread);
  stack.push_back(callee);
  Emit(EventType::kCompartmentCall, static_cast<int16_t>(thread), caller,
       callee, export_index, stack.size());
  ++profile_[callee].calls;
}

void TraceRecorder::OnCompartmentReturn(int thread, int callee, int caller) {
  ChargeToNow();
  std::vector<int>& stack = StackFor(thread);
  if (!stack.empty()) {
    stack.pop_back();
  }
  Emit(EventType::kCompartmentReturn, static_cast<int16_t>(thread), callee,
       caller, 0, stack.size());
}

void TraceRecorder::OnLibraryCall(int thread, int library, int export_index) {
  ChargeToNow();
  Emit(EventType::kLibraryCall, static_cast<int16_t>(thread), library,
       export_index, 0, 0);
}

void TraceRecorder::OnTrap(int thread, int code, int compartment) {
  ChargeToNow();
  Emit(EventType::kTrap, static_cast<int16_t>(thread), code, compartment, 0,
       0);
}

void TraceRecorder::OnContextSwitch(int from_thread, int to_thread) {
  ChargeToNow();
  Emit(EventType::kContextSwitch, static_cast<int16_t>(from_thread),
       from_thread, to_thread, 0, 0);
  current_thread_ = to_thread;
}

void TraceRecorder::OnThreadWake(int thread) {
  ChargeToNow();
  Emit(EventType::kThreadWake, static_cast<int16_t>(thread), thread, 0, 0, 0);
}

void TraceRecorder::OnThreadBlock(int thread, Address futex_addr) {
  ChargeToNow();
  Emit(EventType::kThreadBlock, static_cast<int16_t>(thread), thread, 0, 0,
       futex_addr);
}

void TraceRecorder::OnThreadSleep(int thread, Cycles wake_at) {
  ChargeToNow();
  Emit(EventType::kThreadSleep, static_cast<int16_t>(thread), thread, 0, 0,
       wake_at);
}

void TraceRecorder::OnHeapAlloc(int thread, int compartment, uint32_t quota,
                                Word bytes) {
  ChargeToNow();
  heap_live_bytes_ += bytes;
  ++heap_allocs_;
  Emit(EventType::kHeapAlloc, static_cast<int16_t>(thread), compartment,
       static_cast<int32_t>(quota), bytes, heap_live_bytes_);
}

void TraceRecorder::OnHeapFree(int thread, int compartment, uint32_t quota,
                               Word bytes) {
  ChargeToNow();
  heap_live_bytes_ -= std::min<uint64_t>(heap_live_bytes_, bytes);
  ++heap_frees_;
  Emit(EventType::kHeapFree, static_cast<int16_t>(thread), compartment,
       static_cast<int32_t>(quota), bytes, heap_live_bytes_);
}

void TraceRecorder::OnQuotaExhausted(int thread, int compartment,
                                     uint32_t quota, Word bytes) {
  ChargeToNow();
  Emit(EventType::kQuotaExhausted, static_cast<int16_t>(thread), compartment,
       static_cast<int32_t>(quota), bytes, 0);
}

void TraceRecorder::OnSweepBegin(uint32_t epoch) {
  ChargeToNow();
  Emit(EventType::kSweepBegin, -1, 0, 0, 0, epoch);
}

void TraceRecorder::OnSweepEnd(uint32_t epoch, uint64_t granules) {
  ChargeToNow();
  ++sweeps_completed_;
  granules_scanned_ += granules;
  Emit(EventType::kSweepEnd, -1, 0, 0, static_cast<int64_t>(granules), epoch);
}

void TraceRecorder::OnNicTx(size_t bytes, int32_t flow_origin,
                            uint32_t flow_seq) {
  ChargeToNow();
  ++nic_tx_frames_;
  nic_tx_bytes_ += bytes;
  Emit(EventType::kNicTx, static_cast<int16_t>(current_thread_), flow_origin,
       0, static_cast<int64_t>(bytes), flow_seq);
}

void TraceRecorder::OnNicRx(size_t bytes, int32_t flow_origin,
                            uint32_t flow_seq) {
  ChargeToNow();
  ++nic_rx_frames_;
  nic_rx_bytes_ += bytes;
  Emit(EventType::kNicRx, static_cast<int16_t>(current_thread_), flow_origin,
       0, static_cast<int64_t>(bytes), flow_seq);
}

void TraceRecorder::OnFabricFrame(Cycles at, int src_port, int dst_port,
                                  size_t bytes, int32_t flow_origin,
                                  uint32_t flow_seq) {
  // d packs the full flow key (flow::FlowId::key() layout: origin as u16 in
  // the high lane) so one operand survives the 32-byte event.
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint16_t>(flow_origin)) << 32) |
      flow_seq;
  EmitAt(at, EventType::kFabricFrame, -1, src_port, dst_port,
         static_cast<int64_t>(bytes), key);
}

void TraceRecorder::OnFrameDrop(uint8_t reason, size_t bytes,
                                int32_t flow_origin, uint32_t flow_seq) {
  ChargeToNow();
  ++frames_dropped_;
  Emit(EventType::kFrameDrop, static_cast<int16_t>(current_thread_),
       flow_origin, reason, static_cast<int64_t>(bytes), flow_seq);
}

void TraceRecorder::OnFrameDropAt(Cycles at, uint8_t reason, size_t bytes,
                                  int32_t flow_origin, uint32_t flow_seq) {
  ++frames_dropped_;
  EmitAt(at, EventType::kFrameDrop, -1, flow_origin, reason,
         static_cast<int64_t>(bytes), flow_seq);
}

void TraceRecorder::OnCrashRecord(int thread, int cause, int compartment,
                                  Address fault_address, uint64_t seq) {
  ChargeToNow();
  Emit(EventType::kCrashRecord, static_cast<int16_t>(thread), cause,
       compartment, static_cast<int64_t>(fault_address), seq);
}

void TraceRecorder::OnIdleFastForward(Cycles span) {
  ChargeToNow();
  Emit(EventType::kIdleFastForward, /*thread=*/-1, 0, 0,
       static_cast<int64_t>(span), 0);
}

const std::map<int, TraceRecorder::CompartmentProfile>&
TraceRecorder::Profile() {
  ChargeToNow();
  return profile_;
}

Cycles TraceRecorder::boot_cycles() {
  ChargeToNow();
  return boot_cycles_;
}

Cycles TraceRecorder::idle_cycles() {
  ChargeToNow();
  return idle_cycles_;
}

Cycles TraceRecorder::attributed_cycles() {
  ChargeToNow();
  Cycles sum = 0;
  for (const auto& [id, p] : profile_) {
    sum += p.self;
  }
  return sum;
}

const std::map<std::vector<int>, Cycles>& TraceRecorder::CollapsedStacks() {
  ChargeToNow();
  return collapsed_;
}

std::vector<Event> TraceRecorder::Events() const {
  std::vector<Event> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRecorder::CompartmentName(int id) const {
  switch (id) {
    case kContextBoot: return "<boot>";
    case kContextIdle: return "<idle>";
    case kContextKernel: return "<kernel>";
    default: break;
  }
  if (id >= 0 && static_cast<size_t>(id) < compartment_names_.size()) {
    return compartment_names_[static_cast<size_t>(id)];
  }
  return "compartment" + std::to_string(id);
}

std::string TraceRecorder::LibraryName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < library_names_.size()) {
    return library_names_[static_cast<size_t>(id)];
  }
  return "library" + std::to_string(id);
}

std::string TraceRecorder::ExportName(int compartment, int export_index) const {
  if (compartment >= 0 &&
      static_cast<size_t>(compartment) < export_names_.size()) {
    const auto& exports = export_names_[static_cast<size_t>(compartment)];
    if (export_index >= 0 &&
        static_cast<size_t>(export_index) < exports.size()) {
      return exports[static_cast<size_t>(export_index)];
    }
  }
  return "export" + std::to_string(export_index);
}

std::string TraceRecorder::ThreadName(int id) const {
  if (id < 0) {
    return "<idle>";
  }
  if (static_cast<size_t>(id) < thread_names_.size()) {
    return thread_names_[static_cast<size_t>(id)];
  }
  return "thread" + std::to_string(id);
}

void TraceRecorder::SerializeState(snap::Writer& w) const {
  w.U64(emitted_);
  w.U64(dropped_);
  w.U64(latest_at_);
  for (uint64_t n : by_type_) {
    w.U64(n);
  }
  w.U32(static_cast<uint32_t>(count_));
  for (size_t i = 0; i < count_; ++i) {
    const Event& e = ring_[(start_ + i) % ring_.size()];
    w.U64(e.at);
    w.U64(e.d);
    w.I64(e.c);
    w.I32(e.a);
    w.I32(e.b);
    w.U8(static_cast<uint8_t>(e.type));
    w.U16(static_cast<uint16_t>(e.thread));
  }
  // Profiler state, serialized raw (no settlement): both sides of a verify
  // comparison are serialized at the same point of the same deterministic
  // run, so their pending unsettled spans match too.
  w.Bool(boot_done_);
  w.I32(current_thread_);
  w.U64(settled_at_);
  w.U64(boot_cycles_);
  w.U64(idle_cycles_);
  w.U32(static_cast<uint32_t>(thread_stacks_.size()));
  for (const auto& stack : thread_stacks_) {
    w.U32(static_cast<uint32_t>(stack.size()));
    for (int c : stack) {
      w.I32(c);
    }
  }
  w.U32(static_cast<uint32_t>(profile_.size()));
  for (const auto& [id, p] : profile_) {
    w.I32(id);
    w.U64(p.self);
    w.U64(p.total);
    w.U64(p.calls);
  }
  w.U32(static_cast<uint32_t>(collapsed_.size()));
  for (const auto& [key, cycles] : collapsed_) {
    w.U32(static_cast<uint32_t>(key.size()));
    for (int c : key) {
      w.I32(c);
    }
    w.U64(cycles);
  }
  // Aggregates.
  w.U64(heap_live_bytes_);
  w.U64(heap_allocs_);
  w.U64(heap_frees_);
  w.U64(sweeps_completed_);
  w.U64(granules_scanned_);
  w.U64(nic_tx_frames_);
  w.U64(nic_tx_bytes_);
  w.U64(nic_rx_frames_);
  w.U64(nic_rx_bytes_);
  w.U64(frames_dropped_);
}

void Attach(Machine& machine, TraceRecorder* recorder) {
  recorder->SetClock(&machine.clock());
  machine.set_trace(recorder);
  if (recorder->options().profile) {
    // The profiler rides the clock's std::function hook list; when no
    // recorder is attached the clock stays on its raw fast path. The hook
    // only reads now() — it never ticks — so the cycle model is untouched.
    machine.clock().AddHook([recorder](Cycles) { recorder->ChargeToNow(); });
  }
}

}  // namespace cheriot::trace

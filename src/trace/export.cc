#include "src/trace/export.h"

#include <algorithm>
#include <cstdio>

#include "src/mem/trap.h"

// Exhaustiveness guard (satellite of the health PR): exporter switches over
// EventType carry no `default:` and are compiled with switch warnings
// promoted to errors, so adding an event kind without an exporter mapping
// fails the build instead of silently dropping the new kind from traces.
#pragma GCC diagnostic error "-Wswitch"

namespace cheriot::trace {

namespace {

// Pseudo-track ids inside a board's process; chosen far above any plausible
// guest thread id so they never collide.
constexpr int kTidRevoker = 9990;
constexpr int kTidNic = 9991;
constexpr int kTidFabric = 9992;
// The fabric recorder has no board; give it a process id of its own.
constexpr int kPidFabric = 9999;

int PidFor(const TraceRecorder& r) {
  return r.board_index() >= 0 ? r.board_index() : kPidFabric;
}

// Flow-id rendering; mirrors flow::FlowId::Label()/key() without a src/flow
// dependency (the trace layer stores raw integers).
std::string FlowLabel(int32_t origin, uint32_t seq) {
  if (origin == -1) {
    return "gw#" + std::to_string(seq);
  }
  return "b" + std::to_string(origin) + "#" + std::to_string(seq);
}

std::string FlowKey(int32_t origin, uint32_t seq) {
  return std::to_string(
      (static_cast<uint64_t>(static_cast<uint16_t>(origin)) << 32) | seq);
}

json::Value Meta(int pid, int tid, const char* what, const std::string& name) {
  json::Object o;
  o["args"] = json::Object{{"name", name}};
  o["name"] = what;
  o["ph"] = "M";
  o["pid"] = pid;
  if (tid >= 0) {
    o["tid"] = tid;
  }
  return o;
}

json::Object Base(const char* ph, int pid, int tid, Cycles ts) {
  json::Object o;
  o["ph"] = ph;
  o["pid"] = pid;
  o["tid"] = tid;
  o["ts"] = static_cast<uint64_t>(ts);
  return o;
}

// Translates one recorded event into zero or more Chrome trace events.
void AppendChromeEvents(TraceRecorder& r, const Event& e,
                        std::vector<json::Value>* out) {
  const int pid = PidFor(r);
  switch (e.type) {
    case EventType::kBootDone: {
      json::Object o = Base("i", pid, 0, e.at);
      o["name"] = "boot_done";
      o["s"] = "p";
      out->push_back(std::move(o));
      break;
    }
    case EventType::kCompartmentCall: {
      json::Object o = Base("B", pid, e.thread, e.at);
      o["name"] = r.CompartmentName(e.b) + "." +
                  r.ExportName(e.b, static_cast<int>(e.c));
      o["args"] = json::Object{{"caller", r.CompartmentName(e.a)},
                               {"depth", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kCompartmentReturn: {
      json::Object o = Base("E", pid, e.thread, e.at);
      o["name"] = r.CompartmentName(e.a);
      out->push_back(std::move(o));
      break;
    }
    case EventType::kLibraryCall: {
      json::Object o = Base("i", pid, e.thread, e.at);
      o["name"] = "lib:" + r.LibraryName(e.a);
      o["s"] = "t";
      o["args"] = json::Object{{"export", e.b}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kTrap: {
      json::Object o = Base("i", pid, e.thread, e.at);
      o["name"] = "trap:" + std::to_string(e.a);
      o["s"] = "t";
      o["args"] = json::Object{{"compartment", r.CompartmentName(e.b)}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kContextSwitch: {
      json::Object o = Base("i", pid, e.b >= 0 ? e.b : e.a, e.at);
      o["name"] = "switch:" + r.ThreadName(e.a) + ">" + r.ThreadName(e.b);
      o["s"] = "t";
      out->push_back(std::move(o));
      break;
    }
    case EventType::kThreadWake: {
      json::Object o = Base("i", pid, e.a, e.at);
      o["name"] = "wake";
      o["s"] = "t";
      out->push_back(std::move(o));
      break;
    }
    case EventType::kThreadBlock: {
      json::Object o = Base("i", pid, e.a, e.at);
      o["name"] = "block";
      o["s"] = "t";
      o["args"] = json::Object{{"futex", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kThreadSleep: {
      json::Object o = Base("i", pid, e.a, e.at);
      o["name"] = "sleep";
      o["s"] = "t";
      o["args"] = json::Object{{"wake_at", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kHeapAlloc:
    case EventType::kHeapFree: {
      json::Object o = Base("C", pid, 0, e.at);
      o["name"] = "heap_live_bytes";
      o["args"] = json::Object{{"bytes", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kQuotaExhausted: {
      json::Object o = Base("i", pid, e.thread, e.at);
      o["name"] = "quota_exhausted";
      o["s"] = "t";
      o["args"] = json::Object{{"compartment", r.CompartmentName(e.a)},
                               {"quota", e.b},
                               {"requested", e.c}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kSweepBegin: {
      json::Object o = Base("B", pid, kTidRevoker, e.at);
      o["name"] = "sweep";
      o["args"] = json::Object{{"epoch", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kSweepEnd: {
      json::Object end = Base("E", pid, kTidRevoker, e.at);
      end["name"] = "sweep";
      out->push_back(std::move(end));
      json::Object o = Base("i", pid, kTidRevoker, e.at);
      o["name"] = "revocation_epoch:" + std::to_string(e.d);
      o["s"] = "t";
      o["args"] = json::Object{{"granules", e.c}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kNicTx:
    case EventType::kNicRx: {
      const bool tx = e.type == EventType::kNicTx;
      const bool has_flow = e.a != kNoFlowOrigin;
      json::Object o = Base("i", pid, kTidNic, e.at);
      o["name"] = tx ? "nic_tx" : "nic_rx";
      o["s"] = "t";
      json::Object args{{"bytes", e.c}};
      if (has_flow) {
        args["flow"] = FlowLabel(e.a, static_cast<uint32_t>(e.d));
      }
      o["args"] = std::move(args);
      out->push_back(std::move(o));
      if (has_flow) {
        // Perfetto flow arrow binding this tx to the matching rx on another
        // board's track: an "s" (start) at the transmit and an "f" with
        // bp:"e" (bind to enclosing slice end) at each receive, all sharing
        // the flow key as id.
        json::Object arrow = Base(tx ? "s" : "f", pid, kTidNic, e.at);
        arrow["name"] = "flow";
        arrow["cat"] = "flow";
        arrow["id"] = FlowKey(e.a, static_cast<uint32_t>(e.d));
        if (!tx) {
          arrow["bp"] = "e";
        }
        out->push_back(std::move(arrow));
      }
      break;
    }
    case EventType::kFabricFrame: {
      json::Object o = Base("i", pid, kTidFabric, e.at);
      o["name"] = "fabric_frame";
      o["s"] = "t";
      json::Object args{{"src_port", e.a}, {"dst_port", e.b}, {"bytes", e.c}};
      const auto origin = static_cast<int32_t>(
          static_cast<int16_t>(static_cast<uint16_t>(e.d >> 32)));
      if (origin != kNoFlowOrigin) {
        args["flow"] = FlowLabel(origin, static_cast<uint32_t>(e.d));
      }
      o["args"] = std::move(args);
      out->push_back(std::move(o));
      break;
    }
    case EventType::kFrameDrop: {
      json::Object o = Base("i", pid, r.board_index() >= 0 ? kTidNic
                                                           : kTidFabric,
                            e.at);
      o["name"] = "frame_drop";
      o["s"] = "t";
      json::Object args{{"bytes", e.c},
                        {"reason", e.b == 0 ? "nic_loss" : "gateway_tcp"}};
      if (e.a != kNoFlowOrigin) {
        args["flow"] = FlowLabel(e.a, static_cast<uint32_t>(e.d));
      }
      o["args"] = std::move(args);
      out->push_back(std::move(o));
      break;
    }
    case EventType::kCrashRecord: {
      json::Object o = Base("i", pid, e.thread, e.at);
      o["name"] =
          std::string("crash:") + TrapCodeName(static_cast<TrapCode>(e.a));
      o["s"] = "t";
      o["args"] = json::Object{{"compartment", r.CompartmentName(e.b)},
                               {"fault_address", e.c},
                               {"record_seq", e.d}};
      out->push_back(std::move(o));
      break;
    }
    case EventType::kIdleFastForward: {
      // Rendered as a completed span ending at the jump target, so the
      // skipped stretch shows up as one solid "idle (ff)" block instead of
      // empty space.
      json::Object o = Base("X", pid, 0, e.at - static_cast<Cycles>(e.c));
      o["name"] = "idle_fast_forward";
      o["dur"] = static_cast<uint64_t>(e.c);
      o["args"] = json::Object{{"span_cycles", e.c}};
      out->push_back(std::move(o));
      break;
    }
  }
}

void AppendMetadata(TraceRecorder& r, std::vector<json::Value>* out) {
  const int pid = PidFor(r);
  out->push_back(Meta(pid, -1, "process_name",
                      r.label().empty() ? "board" : r.label()));
  for (size_t t = 0; t < r.thread_count(); ++t) {
    out->push_back(Meta(pid, static_cast<int>(t), "thread_name",
                        r.ThreadName(static_cast<int>(t))));
  }
  if (r.board_index() >= 0) {
    out->push_back(Meta(pid, kTidRevoker, "thread_name", "revoker"));
    out->push_back(Meta(pid, kTidNic, "thread_name", "nic"));
  } else {
    out->push_back(Meta(pid, kTidFabric, "thread_name", "fabric"));
  }
}

}  // namespace

json::Value MergedChromeTrace(const std::vector<TraceRecorder*>& recorders) {
  std::vector<json::Value> events;
  for (TraceRecorder* r : recorders) {
    AppendMetadata(*r, &events);
  }
  // Interleave by guest cycle. The per-recorder order is already
  // deterministic, and std::stable_sort keeps the recorder order for ties,
  // so the merged stream is byte-identical for any host worker count.
  struct Stamped {
    Cycles at;
    json::Value event;
  };
  std::vector<Stamped> timeline;
  for (TraceRecorder* r : recorders) {
    for (const Event& e : r->Events()) {
      std::vector<json::Value> chrome;
      AppendChromeEvents(*r, e, &chrome);
      for (auto& c : chrome) {
        timeline.push_back({e.at, std::move(c)});
      }
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Stamped& a, const Stamped& b) {
                     return a.at < b.at;
                   });
  for (auto& s : timeline) {
    events.push_back(std::move(s.event));
  }
  json::Object doc;
  doc["displayTimeUnit"] = "ns";
  doc["traceEvents"] = json::Array(std::make_move_iterator(events.begin()),
                                   std::make_move_iterator(events.end()));
  return doc;
}

json::Value ChromeTrace(TraceRecorder& recorder) {
  return MergedChromeTrace({&recorder});
}

json::Value MetricsSnapshot(TraceRecorder& recorder,
                            const std::vector<ThreadStackStats>& threads) {
  json::Object doc;
  doc["schema_version"] = kMetricsSchemaVersion;
  doc["label"] = recorder.label();
  doc["board"] = recorder.board_index();
  doc["now"] = static_cast<uint64_t>(recorder.now());

  json::Object ev;
  ev["emitted"] = recorder.emitted();
  ev["recorded"] = static_cast<uint64_t>(recorder.event_count());
  ev["dropped"] = recorder.dropped();
  json::Object by_type;
  for (size_t t = 0; t < kEventTypeCount; ++t) {
    const auto type = static_cast<EventType>(t);
    if (recorder.events_of_type(type) > 0) {
      by_type[EventTypeName(type)] = recorder.events_of_type(type);
    }
  }
  ev["by_type"] = std::move(by_type);
  doc["events"] = std::move(ev);

  json::Object prof;
  prof["boot_cycles"] = static_cast<uint64_t>(recorder.boot_cycles());
  prof["idle_cycles"] = static_cast<uint64_t>(recorder.idle_cycles());
  prof["attributed_cycles"] =
      static_cast<uint64_t>(recorder.attributed_cycles());
  json::Array comps;
  for (const auto& [id, p] : recorder.Profile()) {
    json::Object c;
    c["id"] = id;
    c["name"] = recorder.CompartmentName(id);
    c["self"] = static_cast<uint64_t>(p.self);
    c["total"] = static_cast<uint64_t>(p.total);
    c["calls"] = p.calls;
    comps.push_back(std::move(c));
  }
  prof["compartments"] = std::move(comps);
  doc["profile"] = std::move(prof);

  doc["heap"] = json::Object{{"live_bytes", recorder.heap_live_bytes()},
                             {"allocs", recorder.heap_allocs()},
                             {"frees", recorder.heap_frees()}};
  doc["revoker"] = json::Object{{"sweeps", recorder.sweeps_completed()},
                                {"granules_scanned",
                                 recorder.granules_scanned()}};
  doc["nic"] = json::Object{{"tx_frames", recorder.nic_tx_frames()},
                            {"tx_bytes", recorder.nic_tx_bytes()},
                            {"rx_frames", recorder.nic_rx_frames()},
                            {"rx_bytes", recorder.nic_rx_bytes()},
                            {"dropped_frames", recorder.frames_dropped()}};

  json::Array ts;
  for (const auto& t : threads) {
    json::Object o;
    o["name"] = t.name;
    o["stack_size"] = t.stack_size;
    o["peak_stack_bytes"] = t.peak_stack_bytes;
    o["compartment_calls"] = t.compartment_calls;
    ts.push_back(std::move(o));
  }
  doc["threads"] = std::move(ts);
  return doc;
}

std::string CollapsedStacksText(TraceRecorder& recorder) {
  std::string out;
  for (const auto& [key, cycles] : recorder.CollapsedStacks()) {
    std::string line;
    if (key.size() == 1) {
      // Boot/idle pseudo-stacks have no owning thread.
      line = recorder.CompartmentName(key[0]);
    } else {
      line = recorder.ThreadName(key[0]);
      for (size_t i = 1; i < key.size(); ++i) {
        line += ";";
        line += recorder.CompartmentName(key[i]);
      }
    }
    line += " " + std::to_string(static_cast<uint64_t>(cycles)) + "\n";
    out += line;
  }
  return out;
}

std::string ProfileText(TraceRecorder& recorder) {
  const Cycles now = recorder.now();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# %s: %llu cycles (boot %llu, idle %llu, attributed %llu)\n",
                recorder.label().empty() ? "trace" : recorder.label().c_str(),
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(recorder.boot_cycles()),
                static_cast<unsigned long long>(recorder.idle_cycles()),
                static_cast<unsigned long long>(recorder.attributed_cycles()));
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-24s %10s %14s %14s %7s\n", "compartment",
                "calls", "self", "total", "self%");
  out += buf;
  // Rows sorted by self cycles (descending), then id, for stable output.
  std::vector<std::pair<int, TraceRecorder::CompartmentProfile>> rows(
      recorder.Profile().begin(), recorder.Profile().end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.self != b.second.self) {
                       return a.second.self > b.second.self;
                     }
                     return a.first < b.first;
                   });
  for (const auto& [id, p] : rows) {
    const double pct = now > 0 ? 100.0 * static_cast<double>(p.self) /
                                     static_cast<double>(now)
                               : 0.0;
    std::snprintf(buf, sizeof(buf), "%-24s %10llu %14llu %14llu %6.2f%%\n",
                  recorder.CompartmentName(id).c_str(),
                  static_cast<unsigned long long>(p.calls),
                  static_cast<unsigned long long>(p.self),
                  static_cast<unsigned long long>(p.total), pct);
    out += buf;
  }
  return out;
}

}  // namespace cheriot::trace

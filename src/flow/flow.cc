#include "src/flow/flow.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cheriot::flow {

std::string FlowId::Label() const {
  if (origin == kNone) return "none";
  if (origin == kGateway) return "gw#" + std::to_string(seq);
  return "b" + std::to_string(origin) + "#" + std::to_string(seq);
}

// --- LatencyHistogram --------------------------------------------------------

size_t LatencyHistogram::BucketOf(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  const int octave = std::bit_width(value) - 1;  // >= 4
  const size_t sub = static_cast<size_t>((value >> (octave - 2)) & 3);
  const size_t bucket = 16 + static_cast<size_t>(octave - 4) * 4 + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t LatencyHistogram::BucketUpper(size_t b) {
  if (b < 16) return b;
  const int octave = 4 + static_cast<int>((b - 16) / 4);
  const uint64_t sub = (b - 16) % 4;
  return (1ull << octave) + (sub + 1) * (1ull << (octave - 2)) - 1;
}

void LatencyHistogram::Add(uint64_t value) {
  ++counts_[BucketOf(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;
  if (q < 0.0) q = 0.0;
  // Rank of the target sample, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // Tighten with the exact extremes we track.
      return std::min(std::max(BucketUpper(b), min_), max_);
    }
  }
  return max_;
}

json::Value LatencyHistogram::ToJson() const {
  json::Object o;
  o["count"] = json::Value(count_);
  o["min"] = json::Value(min());
  o["max"] = json::Value(max_);
  o["sum"] = json::Value(sum_);
  o["p50"] = json::Value(Quantile(0.50));
  o["p90"] = json::Value(Quantile(0.90));
  o["p99"] = json::Value(Quantile(0.99));
  json::Array buckets;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    json::Array pair;
    pair.push_back(json::Value(BucketUpper(b)));
    pair.push_back(json::Value(counts_[b]));
    buckets.push_back(json::Value(std::move(pair)));
  }
  o["buckets"] = json::Value(std::move(buckets));
  return json::Value(std::move(o));
}

// --- MetricsSeries -----------------------------------------------------------

void MetricsSeries::Append(const Row& row) {
  at_.push_back(row.at);
  board_.push_back(row.board);
  board_now_.push_back(row.board_now);
  idle_cycles_.push_back(row.idle_cycles);
  traps_.push_back(row.traps);
  allocs_.push_back(row.allocs);
  quota_denials_.push_back(row.quota_denials);
  nic_tx_.push_back(row.nic_tx);
  nic_rx_.push_back(row.nic_rx);
  nic_drops_.push_back(row.nic_drops);
  futex_waits_.push_back(row.futex_waits);
}

json::Value MetricsSeries::ToJson() const {
  auto col_u64 = [](const std::vector<uint64_t>& v) {
    json::Array a;
    a.reserve(v.size());
    for (uint64_t x : v) a.push_back(json::Value(x));
    return json::Value(std::move(a));
  };
  json::Object cols;
  cols["cycle"] = col_u64(at_);
  {
    json::Array a;
    a.reserve(board_.size());
    for (int64_t x : board_) a.push_back(json::Value(x));
    cols["board"] = json::Value(std::move(a));
  }
  cols["board_cycle"] = col_u64(board_now_);
  {
    json::Array a;
    a.reserve(board_now_.size());
    for (size_t i = 0; i < board_now_.size(); ++i) {
      a.push_back(json::Value(board_now_[i] - idle_cycles_[i]));
    }
    cols["busy_cycles"] = json::Value(std::move(a));
  }
  cols["idle_cycles"] = col_u64(idle_cycles_);
  cols["traps"] = col_u64(traps_);
  cols["allocs"] = col_u64(allocs_);
  cols["quota_denials"] = col_u64(quota_denials_);
  cols["nic_tx_frames"] = col_u64(nic_tx_);
  cols["nic_rx_frames"] = col_u64(nic_rx_);
  cols["nic_drops"] = col_u64(nic_drops_);
  cols["futex_waits"] = col_u64(futex_waits_);
  json::Object o;
  o["schema_version"] = json::Value(static_cast<int64_t>(kSchemaVersion));
  o["rows"] = json::Value(static_cast<uint64_t>(rows()));
  o["columns"] = json::Value(std::move(cols));
  return json::Value(std::move(o));
}

// --- FlowRecorder ------------------------------------------------------------

FlowRecorder::FlowRecorder(FlowOptions options) : options_(options) {}

FlowRecorder::FlowInfo& FlowRecorder::Ensure(FlowId id) {
  FlowInfo& info = flows_[id.key()];
  info.id = id;
  return info;
}

void FlowRecorder::OnTx(FlowId id, Cycles at, size_t bytes) {
  if (!id.valid()) return;
  FlowInfo& info = Ensure(id);
  info.has_tx = true;
  info.tx_at = at;
  info.bytes = static_cast<uint32_t>(bytes);
}

void FlowRecorder::OnHop(FlowId id, int src_port, int dst_port, Cycles tx_at,
                         Cycles due, size_t bytes) {
  if (!id.valid()) return;
  FlowInfo& info = Ensure(id);
  if (!info.has_tx) {
    info.has_tx = true;
    info.tx_at = tx_at;
    info.bytes = static_cast<uint32_t>(bytes);
  }
  info.hops.push_back(Hop{src_port, dst_port, tx_at, due});
}

void FlowRecorder::OnDelivery(FlowId id, int board, Cycles at) {
  if (!id.valid()) return;
  FlowInfo& info = Ensure(id);
  info.deliveries.push_back(Delivery{board, at});
  ++deliveries_;
  if (info.has_tx && at >= info.tx_at) {
    pair_latency_[{info.id.origin, board}].Add(at - info.tx_at);
  }
  if (info.publish_index >= 0 &&
      info.publish_index < static_cast<int32_t>(publishes_.size())) {
    const Publish& pub = publishes_[info.publish_index];
    // End-to-end: from the publisher's NIC transmit when the carrier frame is
    // known, else from broker receipt (control-surface publishes).
    Cycles start = pub.at;
    if (pub.carrier != kNoKey) {
      auto it = flows_.find(pub.carrier);
      if (it != flows_.end() && it->second.has_tx) start = it->second.tx_at;
    }
    if (at >= start) topic_latency_[pub.topic].Add(at - start);
  }
}

void FlowRecorder::OnDrop(FlowId id, uint8_t reason, Cycles at) {
  if (!id.valid()) return;
  Ensure(id).drops.push_back(Drop{reason, at});
  ++drops_;
}

void FlowRecorder::OnGatewayRx(FlowId id, Cycles at) {
  if (!id.valid()) return;
  FlowInfo& info = Ensure(id);
  info.gateway_rx = true;
  info.gateway_rx_at = at;
}

void FlowRecorder::OnGatewayEmit(FlowId child, FlowId parent, Cycles at,
                                 size_t bytes) {
  if (!child.valid()) return;
  FlowInfo& info = Ensure(child);
  info.has_tx = true;
  info.tx_at = at;
  info.bytes = static_cast<uint32_t>(bytes);
  if (parent.valid()) info.parent = parent.key();
  if (open_publish_ >= 0) {
    info.publish_index = open_publish_;
    publishes_[open_publish_].fanout.push_back(child.key());
  }
}

void FlowRecorder::BeginPublish(const std::string& topic, FlowId carrier,
                                Cycles at) {
  Publish pub;
  pub.topic = topic;
  pub.publisher = carrier.valid() ? carrier.origin : FlowId::kGateway;
  pub.carrier = carrier.valid() ? carrier.key() : kNoKey;
  pub.at = at;
  open_publish_ = static_cast<int32_t>(publishes_.size());
  publishes_.push_back(std::move(pub));
}

void FlowRecorder::EndPublish() { open_publish_ = -1; }

json::Value FlowRecorder::FlowTableJson() const {
  json::Array flows;
  for (const auto& [key, info] : flows_) {
    json::Object f;
    f["id"] = json::Value(info.id.Label());
    f["origin"] = json::Value(static_cast<int64_t>(info.id.origin));
    f["seq"] = json::Value(info.id.seq);
    if (info.has_tx) f["tx_at"] = json::Value(info.tx_at);
    f["bytes"] = json::Value(info.bytes);
    if (info.parent != kNoKey) {
      auto it = flows_.find(info.parent);
      f["parent"] = json::Value(it != flows_.end() ? it->second.id.Label()
                                                   : std::to_string(info.parent));
    }
    if (info.publish_index >= 0) {
      f["publish"] = json::Value(static_cast<int64_t>(info.publish_index));
    }
    if (info.gateway_rx) f["gateway_rx_at"] = json::Value(info.gateway_rx_at);
    if (!info.hops.empty()) {
      json::Array hops;
      for (const Hop& h : info.hops) {
        json::Object ho;
        ho["src_port"] = json::Value(static_cast<int64_t>(h.src_port));
        ho["dst_port"] = json::Value(static_cast<int64_t>(h.dst_port));
        ho["tx_at"] = json::Value(h.tx_at);
        ho["due"] = json::Value(h.due);
        hops.push_back(json::Value(std::move(ho)));
      }
      f["hops"] = json::Value(std::move(hops));
    }
    if (!info.deliveries.empty()) {
      json::Array dels;
      for (const Delivery& d : info.deliveries) {
        json::Object de;
        de["board"] = json::Value(static_cast<int64_t>(d.board));
        de["at"] = json::Value(d.at);
        if (info.has_tx && d.at >= info.tx_at) {
          de["latency"] = json::Value(d.at - info.tx_at);
        }
        dels.push_back(json::Value(std::move(de)));
      }
      f["deliveries"] = json::Value(std::move(dels));
    }
    if (!info.drops.empty()) {
      json::Array drops;
      for (const Drop& d : info.drops) {
        json::Object dr;
        dr["reason"] = json::Value(
            d.reason == kDropNicLoss ? "nic_loss" : "gateway_tcp");
        dr["at"] = json::Value(d.at);
        drops.push_back(json::Value(std::move(dr)));
      }
      f["drops"] = json::Value(std::move(drops));
    }
    flows.push_back(json::Value(std::move(f)));
  }
  json::Array pubs;
  for (const Publish& pub : publishes_) {
    json::Object p;
    p["topic"] = json::Value(pub.topic);
    p["publisher"] = json::Value(static_cast<int64_t>(pub.publisher));
    if (pub.carrier != kNoKey) {
      auto it = flows_.find(pub.carrier);
      if (it != flows_.end()) p["carrier"] = json::Value(it->second.id.Label());
    }
    p["at"] = json::Value(pub.at);
    json::Array fan;
    for (uint64_t key : pub.fanout) {
      auto it = flows_.find(key);
      fan.push_back(json::Value(it != flows_.end() ? it->second.id.Label()
                                                   : std::to_string(key)));
    }
    p["fanout"] = json::Value(std::move(fan));
    pubs.push_back(json::Value(std::move(p)));
  }
  json::Object o;
  o["schema_version"] = json::Value(static_cast<int64_t>(kSchemaVersion));
  o["flow_count"] = json::Value(static_cast<uint64_t>(flows_.size()));
  o["deliveries"] = json::Value(deliveries_);
  o["drops"] = json::Value(drops_);
  o["flows"] = json::Value(std::move(flows));
  o["publishes"] = json::Value(std::move(pubs));
  return json::Value(std::move(o));
}

json::Value FlowRecorder::HistogramsJson() const {
  json::Object topics;
  for (const auto& [topic, hist] : topic_latency_) {
    topics[topic] = hist.ToJson();
  }
  json::Object pairs;
  for (const auto& [pair, hist] : pair_latency_) {
    const std::string key =
        (pair.first == FlowId::kGateway ? std::string("gw")
                                        : "b" + std::to_string(pair.first)) +
        "->" +
        (pair.second == -1 ? std::string("gw")
                           : "b" + std::to_string(pair.second));
    pairs[key] = hist.ToJson();
  }
  json::Object o;
  o["schema_version"] = json::Value(static_cast<int64_t>(kSchemaVersion));
  o["topic_latency"] = json::Value(std::move(topics));
  o["pair_latency"] = json::Value(std::move(pairs));
  return json::Value(std::move(o));
}

json::Value FlowRecorder::MetricsJson() const { return metrics_.ToJson(); }

}  // namespace cheriot::flow

// cheriot-flow: cross-board causal message tracing, end-to-end latency
// histograms and a fleet metrics time-series (DESIGN.md §13).
//
// Every NIC transmit gets a host-side FlowId — (origin board, per-board tx
// sequence) — carried *alongside* the frame through the Fabric and the
// Gateway, never inside guest-visible bytes. Ids are assigned
// unconditionally (the counters tick whether or not a recorder is attached),
// so enabling flow recording changes neither a guest cycle nor a snapshot
// byte; the FlowRecorder below is a pure observer fed single-threaded at
// fleet epoch barriers, which is what makes its exports byte-identical for
// any host worker count.
//
// Three products:
//   - a flow table: per-frame records stitching kNicTx -> fabric hop ->
//     kNicRx (or drop) plus gateway causality (frame that triggered a reply,
//     MQTT publish -> broker fan-out -> subscriber delivery);
//   - deterministic latency histograms (fixed log-spaced buckets, quantiles
//     computed exactly from bucket counts) per topic and per board pair;
//   - a columnar per-board metrics time-series sampled on a fixed guest-
//     cycle cadence at epoch barriers.
#ifndef SRC_FLOW_FLOW_H_
#define SRC_FLOW_FLOW_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/json/json.h"

namespace cheriot::flow {

// Host-side identity of one transmitted frame. POD and cheap to copy: it
// rides every staged frame whether or not recording is on.
struct FlowId {
  // `origin` sentinels. kGateway marks frames the gateway emitted (replies,
  // forwards, broker fan-out); kNone marks frames outside the provenance
  // plumbing (e.g. a test's hand-built HostInject) — recorders ignore those.
  static constexpr int16_t kGateway = -1;
  static constexpr int16_t kNone = -32768;

  int16_t origin = kNone;  // board index, or a sentinel above
  uint32_t seq = 0;        // per-origin transmit sequence

  bool valid() const { return origin != kNone; }
  // Stable 48-bit key: origin (as unsigned 16-bit) in the high lane.
  uint64_t key() const {
    return (static_cast<uint64_t>(static_cast<uint16_t>(origin)) << 32) | seq;
  }
  // Compact label for exports: "b3#17" (board 3, seq 17) or "gw#5".
  std::string Label() const;

  bool operator==(const FlowId&) const = default;
};

// Reasons carried by kFrameDrop trace events and FlowRecorder drop records.
inline constexpr uint8_t kDropNicLoss = 0;     // arbiter kNicLoss injection
inline constexpr uint8_t kDropGatewayTcp = 1;  // drop_every_nth_tcp at gateway

struct FlowOptions {
  // Metrics sampling cadence in guest cycles: one row per board is appended
  // at the first epoch barrier at or after each multiple of this interval.
  Cycles metrics_interval = 1'000'000;
};

// Fixed log-spaced latency histogram with exact integer quantiles.
//
// Bucketing: values 0..15 land in their own bucket (0..15); above that each
// power-of-two octave is split into 4 sub-buckets, so the relative bucket
// width stays <= 25% everywhere. 128 buckets cover every value below 2^32
// cycles (~130 simulated seconds); larger values clamp into the last bucket.
// Quantiles are computed from the bucket counts alone — Quantile(q) is the
// inclusive upper bound of the bucket holding the ceil(q*count)-th smallest
// sample — so two histograms with equal counts report identical quantiles on
// every host.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 128;

  static size_t BucketOf(uint64_t value);
  // Inclusive upper bound of bucket `b`.
  static uint64_t BucketUpper(size_t b);

  void Add(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t sum() const { return sum_; }
  uint64_t bucket_count(size_t b) const { return counts_[b]; }
  // q in [0,1]; returns 0 on an empty histogram, exact max() for q >= 1.
  uint64_t Quantile(double q) const;

  // {"count":..,"min":..,"max":..,"sum":..,"p50":..,"p90":..,"p99":..,
  //  "buckets":[[upper,count],...]} with only non-empty buckets listed.
  json::Value ToJson() const;

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

// Columnar per-board counter samples. Append-only; one row per (cycle,
// board). Schema-versioned so downstream dashboards can detect drift.
class MetricsSeries {
 public:
  static constexpr int kSchemaVersion = 1;

  struct Row {
    Cycles at = 0;          // fleet barrier cycle the sample was taken at
    int32_t board = 0;
    Cycles board_now = 0;   // the board's own clock (may lag `at` if parked)
    Cycles idle_cycles = 0;
    uint64_t traps = 0;
    uint64_t allocs = 0;
    uint64_t quota_denials = 0;
    uint64_t nic_tx = 0;
    uint64_t nic_rx = 0;
    uint64_t nic_drops = 0;
    uint64_t futex_waits = 0;
  };

  void Append(const Row& row);
  size_t rows() const { return at_.size(); }

  // {"schema_version":1,"columns":{"cycle":[...],...}} — columns are
  // parallel arrays, one entry per row, in append order. busy_cycles is
  // derived (board_now - idle_cycles) at export so the stored counters stay
  // raw.
  json::Value ToJson() const;

 private:
  std::vector<uint64_t> at_;
  std::vector<int64_t> board_;
  std::vector<uint64_t> board_now_;
  std::vector<uint64_t> idle_cycles_;
  std::vector<uint64_t> traps_;
  std::vector<uint64_t> allocs_;
  std::vector<uint64_t> quota_denials_;
  std::vector<uint64_t> nic_tx_;
  std::vector<uint64_t> nic_rx_;
  std::vector<uint64_t> nic_drops_;
  std::vector<uint64_t> futex_waits_;
};

// Assembles per-frame flow records and message spans from the observation
// hooks below. Single-threaded by contract: the Fleet calls every hook at
// epoch barriers (board-index order), the NetWorld from its one guest
// thread. Never consulted on guest-visible paths — detaching it cannot move
// a cycle, attaching it cannot either.
class FlowRecorder {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr uint64_t kNoKey = ~0ull;

  struct Hop {
    int32_t src_port = 0;
    int32_t dst_port = 0;
    Cycles tx_at = 0;
    Cycles due = 0;
  };
  struct Delivery {
    int32_t board = 0;
    Cycles at = 0;
  };
  struct Drop {
    uint8_t reason = kDropNicLoss;
    Cycles at = 0;
  };
  struct FlowInfo {
    FlowId id;
    bool has_tx = false;
    Cycles tx_at = 0;
    uint32_t bytes = 0;
    uint64_t parent = kNoKey;     // gateway causality: frame that caused this
    int32_t publish_index = -1;   // fan-out leg of publishes()[i], or -1
    bool gateway_rx = false;
    Cycles gateway_rx_at = 0;
    std::vector<Hop> hops;
    std::vector<Delivery> deliveries;
    std::vector<Drop> drops;
  };
  struct Publish {
    std::string topic;
    int16_t publisher = FlowId::kGateway;  // origin board; kGateway = control
    uint64_t carrier = kNoKey;  // flow that carried the PUBLISH to the broker
    Cycles at = 0;              // broker receipt (or control publish) cycle
    std::vector<uint64_t> fanout;  // child flow keys, one per subscriber leg
  };

  explicit FlowRecorder(FlowOptions options = {});

  // --- Observation hooks ----------------------------------------------------
  // Board transmit: creates (or completes) the flow record for `id`.
  void OnTx(FlowId id, Cycles at, size_t bytes);
  // Fabric switch decision: one per delivered leg (floods record several).
  void OnHop(FlowId id, int src_port, int dst_port, Cycles tx_at, Cycles due,
             size_t bytes);
  // Frame handed to a board's NIC at `at` (the guest-visible arrival).
  void OnDelivery(FlowId id, int board, Cycles at);
  // Frame dropped before delivery (kDropNicLoss / kDropGatewayTcp).
  void OnDrop(FlowId id, uint8_t reason, Cycles at);
  // Gateway consumed the frame at `at` (netstack delivery on the host side).
  void OnGatewayRx(FlowId id, Cycles at);
  // Gateway emitted `child` while processing `parent` (kNoKey-parented when
  // emitted from the control surface). Creates the child's flow record; if a
  // publish span is open, the child is recorded as one of its fan-out legs.
  void OnGatewayEmit(FlowId child, FlowId parent, Cycles at, size_t bytes);
  // MQTT publish span: every OnGatewayEmit between Begin and End is one
  // broker->subscriber fan-out leg of this publish.
  void BeginPublish(const std::string& topic, FlowId carrier, Cycles at);
  void EndPublish();

  // --- Read side ------------------------------------------------------------
  size_t flow_count() const { return flows_.size(); }
  uint64_t deliveries() const { return deliveries_; }
  uint64_t drops() const { return drops_; }
  const std::map<uint64_t, FlowInfo>& flows() const { return flows_; }
  const std::vector<Publish>& publishes() const { return publishes_; }
  MetricsSeries& metrics() { return metrics_; }
  const FlowOptions& options() const { return options_; }

  // Per-topic publish->subscriber-delivery latency (guest cycles, measured
  // from the carrier frame's transmit when known, else the broker receipt).
  const std::map<std::string, LatencyHistogram>& topic_histograms() const {
    return topic_latency_;
  }
  // Per (src board, dst board) frame tx->delivery latency; the gateway
  // appears as board -1.
  const std::map<std::pair<int, int>, LatencyHistogram>& pair_histograms()
      const {
    return pair_latency_;
  }

  // --- Byte-stable exports --------------------------------------------------
  // All three are pure functions of the hook call sequence, which the fleet
  // barrier schedule makes identical for any host worker count.
  json::Value FlowTableJson() const;
  json::Value HistogramsJson() const;
  json::Value MetricsJson() const;

 private:
  FlowInfo& Ensure(FlowId id);

  FlowOptions options_;
  std::map<uint64_t, FlowInfo> flows_;
  std::vector<Publish> publishes_;
  int32_t open_publish_ = -1;
  uint64_t deliveries_ = 0;
  uint64_t drops_ = 0;
  std::map<std::string, LatencyHistogram> topic_latency_;
  std::map<std::pair<int, int>, LatencyHistogram> pair_latency_;
  MetricsSeries metrics_;
};

}  // namespace cheriot::flow

#endif  // SRC_FLOW_FLOW_H_

// The token API (§3.2.1): virtualizes sealing on top of the single hardware
// otype the token service owns, so the system can have arbitrarily many
// opaque-object types despite the ISA's seven data otypes.
//
// The fast path (token_unseal) is a shared library: it runs in the caller's
// security context using the library's sealed authority, costing tens of
// cycles rather than a compartment call (Table 3: 44.8 cycles).
#ifndef SRC_TOKEN_TOKEN_H_
#define SRC_TOKEN_TOKEN_H_

#include "src/base/types.h"
#include "src/cap/capability.h"

namespace cheriot {

class System;

class TokenService {
 public:
  explicit TokenService(System* system) : system_(system) {}
  void Init();

  // Library fast path: unseals `sealed_obj` (hardware token otype), checks
  // that `key` authorizes the virtual type in the object header, and returns
  // a capability to the payload (exclusive of the header). Returns an
  // untagged capability on any mismatch.
  Capability Unseal(const Capability& key, const Capability& sealed_obj);

  // Validates a virtual sealing key for type-id extraction: must be tagged,
  // carry the given permission, and have its cursor in bounds.
  static bool ValidKey(const Capability& key, Permission perm);

  // Allocates the next virtual type id (backing token_key_new).
  uint32_t NextTypeId();

  // Seals a payload capability with the hardware token otype (allocator
  // helper for dynamically allocated sealed objects).
  Capability SealWithHardwareType(const Capability& payload) const;
  Capability UnsealHardwareType(const Capability& sealed) const;

 private:
  System* system_;
  Capability hw_key_;  // hardware otype 11 authority (exclusive, §3.2.1)
};

}  // namespace cheriot

#endif  // SRC_TOKEN_TOKEN_H_

#include "src/token/token.h"

#include "src/base/costs.h"
#include "src/cov/coverage.h"
#include "src/kernel/system.h"

namespace cheriot {

void TokenService::Init() { hw_key_ = system_->boot().token_seal_key; }

bool TokenService::ValidKey(const Capability& key, Permission perm) {
  return key.tag() && !key.IsSealed() && key.permissions().Has(perm) &&
         key.InBounds(key.cursor(), 1);
}

uint32_t TokenService::NextTypeId() {
  return system_->boot().next_virtual_type_id++;
}

Capability TokenService::SealWithHardwareType(const Capability& payload) const {
  system_->machine().Tick(cost::kHwSealOp);
  return payload.SealedWith(hw_key_);
}

Capability TokenService::UnsealHardwareType(const Capability& sealed) const {
  system_->machine().Tick(cost::kHwSealOp);
  return sealed.UnsealedWith(hw_key_);
}

Capability TokenService::Unseal(const Capability& key,
                                const Capability& sealed_obj) {
  Machine& m = system_->machine();
  m.Tick(cost::kLibTokenUnseal);
  if (!ValidKey(key, Permission::kUnseal)) {
    return Capability();
  }
  const Capability unsealed = UnsealHardwareType(sealed_obj);
  if (!unsealed.tag()) {
    return Capability();
  }
  // Header: virtual type id + payload size (§3.2.1).
  const Word vtype = m.memory().LoadWord(unsealed, unsealed.base());
  const Word size = m.memory().LoadWord(unsealed, unsealed.base() + 4);
  if (vtype != key.cursor()) {
    return Capability();
  }
  if (auto* cr = m.cov()) {
    // token_unseal is a library call: it runs in the caller's compartment
    // context, which is exactly the holder the sealing grant names.
    const int thread = system_->current_thread_id();
    cr->OnSealingUse(
        thread >= 0 ? system_->threads()[thread].current_compartment : -1,
        key.cursor(), /*unseal=*/true);
  }
  // Return a capability to the payload, exclusive of the header.
  Capability payload =
      unsealed.WithBounds(unsealed.base() + 8, size);
  return payload;
}

}  // namespace cheriot

// The switcher (§3.1.2): the most privileged post-boot component. Performs
// compartment calls and returns (unsealing export capabilities, pushing
// trusted-stack frames, truncating and zeroing stacks, clearing registers),
// first-level trap handling and error-handler dispatch (§3.2.6), the
// ephemeral-claim hazard slots (§3.2.5), and forced unwinding of threads out
// of a compartment (micro-reboot step 2).
#ifndef SRC_SWITCHER_SWITCHER_H_
#define SRC_SWITCHER_SWITCHER_H_

#include <vector>

#include "src/firmware/image.h"
#include "src/health/forensics.h"
#include "src/kernel/guest_thread.h"
#include "src/loader/loader.h"
#include "src/switcher/trusted_stack.h"

namespace cheriot {

class System;
class CompartmentCtx;

// Thrown to unwind a thread out of the current compartment into its caller
// (error-handler decision or default policy, §3.2.6).
struct UnwindException {
  bool handler_ran = false;
};

// Thrown to forcibly unwind a thread out of `target_compartment`
// (switcher API backing micro-reboot step 2).
struct ForcedUnwindException {
  int target_compartment;
};

class Switcher {
 public:
  explicit Switcher(System* system) : system_(system) {}

  // Cross-compartment call through a sealed export capability (from the
  // caller's import table). Returns the callee's a0. On callee fault the
  // thread unwinds back here and the caller receives
  // StatusCap(kCompartmentFail).
  Capability CompartmentCall(GuestThread& thread, const ImportBinding& binding,
                             const std::vector<Capability>& args);

  // Shared-library call through a sentry: same security context, no trusted
  // frame, no zeroing; interrupt posture may change per the sentry type.
  Capability LibraryCall(GuestThread& thread, const ImportBinding& binding,
                         const std::vector<Capability>& args);

  // Starts a thread: invokes its entry export with an empty caller frame.
  Capability InitialCall(GuestThread& thread);

  // Trap delivery for a fault raised by a guest operation. Consults the
  // compartment's global error handler. Returns the recovery decision
  // (kInstallContext => the caller retries the operation using info->regs);
  // throws UnwindException when the policy is to unwind.
  ErrorRecovery DeliverTrap(GuestThread& thread, CompartmentCtx& ctx,
                            TrapInfo* info);

  // Ephemeral claim (§3.2.5): records the object's base in one of the
  // thread's hazard slots in the trusted stack; slots are cleared at the
  // thread's next compartment call.
  Status EphemeralClaim(GuestThread& thread, const Capability& obj);
  bool IsEphemerallyClaimed(Address payload_base) const;

  // Marks every thread executing in (or blocked inside a call chain through)
  // `compartment` for forced unwind and wakes blocked ones. Returns the
  // number of threads flagged. The invoking thread is skipped.
  int UnwindThreadsIn(int compartment, int skip_thread_id);

  TrustedStackView TrustedStackFor(GuestThread& thread);

  // Guest traps delivered since boot (fingerprinted by determinism tests).
  uint64_t trap_count() const { return trap_count_; }
  // Snapshot restore only (DESIGN.md §10); all other switcher state lives in
  // the threads' trusted stacks, which the kernel section owns.
  void RestoreTrapCount(uint64_t n) { trap_count_ = n; }

 private:
  Capability DoCall(GuestThread& thread, int callee_id, int export_index,
                    const std::vector<Capability>& args, bool saved_irq,
                    void* posture_guard_opaque);
  void ZeroStackRange(GuestThread& thread, Address from, Address to);
  // Snapshots a crash record (decoded register file, mirrored call stack,
  // trusted-stack depth, heap provenance of the faulting address) for the
  // forensics recorder. Pure observation: no guest cycles, no simulated
  // memory reads.
  health::CrashRecord BuildCrashRecord(GuestThread& thread, int compartment,
                                       TrapCode cause, Address fault_address,
                                       const RegisterFile& regs);

  System* system_;
  uint64_t trap_count_ = 0;
};

}  // namespace cheriot

#endif  // SRC_SWITCHER_SWITCHER_H_

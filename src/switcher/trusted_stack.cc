#include "src/switcher/trusted_stack.h"

#include "src/base/costs.h"
#include "src/mem/trap.h"

namespace cheriot {

uint16_t TrustedStackView::Depth() const {
  return static_cast<uint16_t>(mem_->LoadWord(authority_, base_) & 0xFFFF);
}

void TrustedStackView::SetDepth(uint16_t depth) {
  const Word flags = mem_->LoadWord(authority_, base_) & 0xFFFF0000u;
  mem_->StoreWord(authority_, base_, flags | depth);
}

void TrustedStackView::Push(const TrustedFrame& frame) {
  const uint16_t depth = Depth();
  if (depth >= max_frames_) {
    throw TrapException(TrapCode::kTrustedStackOverflow, base_,
                        "compartment-call depth exhausted");
  }
  const Address at = FrameAddress(depth);
  mem_->StoreWord(authority_, at,
                  (static_cast<Word>(frame.caller_compartment) << 16) |
                      frame.callee_compartment);
  mem_->StoreWord(authority_, at + 4,
                  (static_cast<Word>(frame.export_index) << 16) |
                      frame.posture_and_flags);
  mem_->StoreWord(authority_, at + 8, frame.sp_at_call);
  mem_->StoreWord(authority_, at + 12, frame.high_water_at_call);
  SetDepth(depth + 1);
}

TrustedFrame TrustedStackView::Pop() {
  const TrustedFrame f = Peek(0);
  SetDepth(Depth() - 1);
  return f;
}

TrustedFrame TrustedStackView::Peek(int from_top) const {
  const uint16_t depth = Depth();
  if (depth == 0 || from_top >= depth) {
    throw TrapException(TrapCode::kTrustedStackOverflow, base_,
                        "trusted stack underflow");
  }
  const Address at = FrameAddress(depth - 1 - from_top);
  TrustedFrame f;
  const Word w0 = mem_->LoadWord(authority_, at);
  const Word w1 = mem_->LoadWord(authority_, at + 4);
  f.caller_compartment = static_cast<uint16_t>(w0 >> 16);
  f.callee_compartment = static_cast<uint16_t>(w0 & 0xFFFF);
  f.export_index = static_cast<uint16_t>(w1 >> 16);
  f.posture_and_flags = static_cast<uint16_t>(w1 & 0xFFFF);
  f.sp_at_call = mem_->LoadWord(authority_, at + 8);
  f.high_water_at_call = mem_->LoadWord(authority_, at + 12);
  return f;
}

Address TrustedStackView::HazardSlot(int i) const {
  return mem_->LoadWord(authority_, base_ + 4 + static_cast<Address>(i) * 4);
}

void TrustedStackView::SetHazardSlot(int i, Address value) {
  mem_->StoreWord(authority_, base_ + 4 + static_cast<Address>(i) * 4, value);
}

void TrustedStackView::ChargeRegisterSave() {
  // 16 capability stores into the register-save area.
  mem_->clock().Tick(16 * cost::kStoreCap);
}

}  // namespace cheriot

// The architectural register file visible to the switcher and to error
// handlers (§3.2.6: global handlers receive "a copy of the register file,
// which [they] may modify"). CHERIoT is RV32E-derived: a small merged
// integer/capability register file.
#ifndef SRC_SWITCHER_REGISTERS_H_
#define SRC_SWITCHER_REGISTERS_H_

#include <array>

#include "src/cap/capability.h"

namespace cheriot {

struct RegisterFile {
  Capability pcc;                  // program counter capability
  Capability ra;                   // return address (sealed as return sentry)
  Capability csp;                  // stack capability
  Capability cgp;                  // globals capability
  std::array<Capability, 6> a{};   // argument/return registers a0..a5
  std::array<Capability, 2> t{};   // temporaries
  bool interrupts_enabled = true;  // current interrupt posture

  void ClearTemporaries() {
    for (auto& r : t) {
      r = Capability();
    }
  }
  void ClearArgumentsFrom(size_t first) {
    for (size_t i = first; i < a.size(); ++i) {
      a[i] = Capability();
    }
  }
};

}  // namespace cheriot

#endif  // SRC_SWITCHER_REGISTERS_H_

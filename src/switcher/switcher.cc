#include "src/switcher/switcher.h"

#include <optional>

#include "src/base/costs.h"
#include "src/base/log.h"
#include "src/cov/coverage.h"
#include "src/health/forensics.h"
#include "src/kernel/system.h"
#include "src/runtime/compartment_ctx.h"
#include "src/trace/trace.h"

namespace cheriot {

namespace {

bool PostureToEnabled(InterruptPosture posture, bool inherited) {
  switch (posture) {
    case InterruptPosture::kInherited: return inherited;
    case InterruptPosture::kEnabled: return true;
    case InterruptPosture::kDisabled: return false;
  }
  return inherited;
}

// Restores the thread's interrupt posture if the switcher path unwinds via
// an exception before installing the callee's posture.
class PostureGuard {
 public:
  PostureGuard(GuestThread* t, bool saved) : t_(t), saved_(saved) {}
  ~PostureGuard() {
    if (t_ != nullptr) {
      t_->interrupts_enabled = saved_;
    }
  }
  void Disarm() { t_ = nullptr; }

 private:
  GuestThread* t_;
  bool saved_;
};

}  // namespace

TrustedStackView Switcher::TrustedStackFor(GuestThread& thread) {
  return TrustedStackView(&system_->machine().memory(),
                          system_->boot().trusted_stack_root,
                          thread.trusted_stack_base, thread.max_frames);
}

void Switcher::ZeroStackRange(GuestThread& thread, Address from, Address to) {
  if (from >= to) {
    return;
  }
  system_->machine().memory().ZeroRange(thread.stack_cap, from, to - from);
}

Capability Switcher::CompartmentCall(GuestThread& t, const ImportBinding& b,
                                     const std::vector<Capability>& args) {
  BootInfo& boot = system_->boot();
  Machine& m = system_->machine();

  // The switcher runs with interrupts deferred (forward sentry into the
  // switcher is interrupt-disabling).
  const bool saved_irq = t.interrupts_enabled;
  t.interrupts_enabled = false;
  PostureGuard posture_guard(&t, saved_irq);
  m.Tick(cost::kSwitcherCallPath);

  // Unseal the export capability: only the switcher holds this authority.
  const Capability unsealed = b.cap.UnsealedWith(boot.switcher_seal_key);
  if (!unsealed.tag()) {
    throw TrapException(TrapCode::kSealViolation, b.cap.cursor(),
                        "invalid sealed export capability");
  }
  const auto table_it = boot.export_table_index.find(unsealed.base());
  if (table_it == boot.export_table_index.end()) {
    throw TrapException(TrapCode::kSealViolation, unsealed.base(),
                        "capability does not reference an export table");
  }
  const int callee_id = table_it->second;
  CompartmentRuntime& callee = boot.compartments[callee_id];
  const Address entry_off = unsealed.cursor() - unsealed.base();
  if (entry_off < kExportTableHeaderBytes ||
      (entry_off - kExportTableHeaderBytes) % kExportEntryBytes != 0) {
    throw TrapException(TrapCode::kBoundsViolation, unsealed.cursor(),
                        "misaligned export entry");
  }
  const size_t export_index =
      (entry_off - kExportTableHeaderBytes) / kExportEntryBytes;
  if (export_index >= callee.def->exports.size()) {
    throw TrapException(TrapCode::kBoundsViolation, unsealed.cursor(),
                        "export index out of range");
  }
  return DoCall(t, callee_id, static_cast<int>(export_index), args, saved_irq,
                &posture_guard);
}

Capability Switcher::InitialCall(GuestThread& t) {
  const bool saved_irq = t.interrupts_enabled;
  PostureGuard posture_guard(&t, saved_irq);
  return DoCall(t, t.entry_compartment, t.entry_export, {}, saved_irq,
                &posture_guard);
}

Capability Switcher::DoCall(GuestThread& t, int callee_id, int export_index,
                            const std::vector<Capability>& args,
                            bool saved_irq, void* posture_guard_opaque) {
  BootInfo& boot = system_->boot();
  Machine& m = system_->machine();
  CompartmentRuntime& callee = boot.compartments[callee_id];
  const ExportDef& exp = callee.def->exports[export_index];
  auto* posture_guard = static_cast<PostureGuard*>(posture_guard_opaque);

  // Micro-reboot step 1: the guard rejects new entries while rebooting.
  if (callee.call_guard_closed) {
    posture_guard->Disarm();
    t.interrupts_enabled = saved_irq;
    return StatusCap(Status::kBusy);
  }

  // Stack-requirement check (§3.2.5 "Checking entry points"): the switcher
  // refuses the call and reports the error to the caller, so an attacker
  // cannot trigger stack-overflow faults *inside* the callee.
  if (t.sp < t.stack_base + exp.min_stack_bytes) {
    posture_guard->Disarm();
    t.interrupts_enabled = saved_irq;
    return StatusCap(Status::kNotEnoughStack);
  }

  TrustedStackView ts = TrustedStackFor(t);
  TrustedFrame frame;
  frame.caller_compartment = static_cast<uint16_t>(
      t.current_compartment < 0 ? 0xFFFF : t.current_compartment);
  frame.callee_compartment = static_cast<uint16_t>(callee_id);
  frame.export_index = static_cast<uint16_t>(export_index);
  frame.posture_and_flags = static_cast<uint16_t>(exp.posture);
  frame.sp_at_call = t.sp;
  frame.high_water_at_call = t.high_water;
  ts.Push(frame);
  ++t.frame_depth;

  // Ephemeral claims last until the next compartment call (§3.2.5).
  if (t.hazard_slots[0] != 0 || t.hazard_slots[1] != 0) {
    t.hazard_slots = {0, 0};
    ts.SetHazardSlot(0, 0);
    ts.SetHazardSlot(1, 0);
    system_->alloc().RetryPendingFrees();
  }

  // Zero the dirty region below sp before handing the stack to the callee
  // (caller-leak prevention on the call path).
  ZeroStackRange(t, t.high_water, t.sp);
  t.high_water = t.sp;

  const int caller_comp = t.current_compartment;
  t.current_compartment = callee_id;
  t.compartment_stack.push_back(callee_id);
  ++t.compartment_calls;
  posture_guard->Disarm();  // posture now managed explicitly below
  t.interrupts_enabled = PostureToEnabled(exp.posture, saved_irq);
  if (auto* tr = m.trace()) {
    // The recorder mirrors the call depth itself: reading the trusted stack
    // here would tick guest cycles and perturb the model it observes.
    tr->OnCompartmentCall(t.id, caller_comp, callee_id, export_index);
  }
  if (auto* hr = m.forensics()) {
    hr->OnCompartmentCall(t.id, callee_id);
  }
  if (auto* cr = m.cov()) {
    cr->OnCompartmentCall(t.id, caller_comp, callee_id, export_index,
                          t.frame_depth);
  }

  Capability result;
  bool rethrow_forced = false;
  int forced_target = -1;
  {
    CompartmentCtx callee_ctx(system_, &t, callee_id);
    try {
      result = exp.fn ? exp.fn(callee_ctx, args) : Capability();
    } catch (TrapException& trap) {
      // A trap escaped the entry point without going through the ctx-level
      // dispatch (e.g. raised by switcher sub-operations inside the callee).
      // Give the callee's handler an unwind-or-nothing chance.
      TrapInfo info;
      info.cause = trap.code();
      info.fault_address = trap.fault_address();
      try {
        (void)DeliverTrap(t, callee_ctx, &info);
        // kInstallContext is meaningless at this boundary; treat as unwind.
      } catch (UnwindException&) {
      }
      result = StatusCap(Status::kCompartmentFail);
    } catch (UnwindException&) {
      result = StatusCap(Status::kCompartmentFail);
    } catch (ForcedUnwindException& f) {
      result = StatusCap(Status::kCompartmentFail);
      if (f.target_compartment == callee_id) {
        t.forced_unwind.erase(callee_id);
        if (auto* hr = m.forensics()) {
          // The forced unwind resolves at the evicted compartment's own
          // frame: file one record per evicted thread, not per stack frame
          // peeled on the way here. No architectural fault address exists;
          // the register file reflects the compartment context being torn
          // down (micro-reboot step 2).
          RegisterFile regs;
          regs.pcc = callee.pcc;
          regs.cgp = callee.cgp;
          regs.csp = t.stack_cap.WithAddress(t.sp);
          health::CrashRecord r = BuildCrashRecord(
              t, callee_id, TrapCode::kForcedUnwind, 0, regs);
          r.disposition = health::Disposition::kForcedUnwind;
          const uint64_t seq = hr->Record(std::move(r));
          if (auto* tr = m.trace()) {
            tr->OnCrashRecord(t.id,
                              static_cast<int>(TrapCode::kForcedUnwind),
                              callee_id, 0, seq);
          }
        }
      } else {
        rethrow_forced = true;
        forced_target = f.target_compartment;
      }
    }
  }

  // Return path: zero everything the callee dirtied, restore the caller.
  m.Tick(cost::kSwitcherReturnPath);
  t.interrupts_enabled = false;
  const TrustedFrame f = ts.Pop();
  if (t.frame_depth > 0) {
    --t.frame_depth;
  }
  ZeroStackRange(t, t.high_water, f.sp_at_call);
  t.sp = f.sp_at_call;
  t.high_water = f.sp_at_call;
  t.current_compartment = caller_comp;
  if (!t.compartment_stack.empty()) {
    t.compartment_stack.pop_back();
  }
  if (auto* tr = m.trace()) {
    // Emitted after the return-path tick so the switcher's unwind/zeroing
    // cost is charged to the callee, matching the call path charging setup
    // to the caller. Unwind paths still reach here, keeping the recorder's
    // mirrored stack balanced.
    tr->OnCompartmentReturn(t.id, callee_id, caller_comp);
  }
  if (auto* hr = m.forensics()) {
    hr->OnCompartmentReturn(t.id);
  }
  if (auto* cr = m.cov()) {
    cr->OnCompartmentReturn(t.id);
  }
  t.interrupts_enabled = saved_irq;
  if (saved_irq) {
    // Re-enabling interrupts delivers any reschedule deferred by a wake
    // performed inside the interrupt-disabled callee.
    system_->CheckDeferredResched();
  }

  if (rethrow_forced) {
    throw ForcedUnwindException{forced_target};
  }
  if (caller_comp >= 0 && t.forced_unwind.count(caller_comp)) {
    throw ForcedUnwindException{caller_comp};
  }
  return result;
}

Capability Switcher::LibraryCall(GuestThread& t, const ImportBinding& b,
                                 const std::vector<Capability>& args) {
  BootInfo& boot = system_->boot();
  Machine& m = system_->machine();
  m.Tick(cost::kLibraryCall);
  if (!b.cap.IsSentry()) {
    throw TrapException(TrapCode::kPermitExecuteViolation, b.cap.cursor(),
                        "library import is not a sentry");
  }
  const LibraryRuntime& lib = boot.libraries[b.target_library];
  const ExportDef& exp = lib.def->exports[b.target_export];
  if (auto* tr = m.trace()) {
    tr->OnLibraryCall(t.id, b.target_library, b.target_export);
  }
  if (auto* cr = m.cov()) {
    cr->OnLibraryCall(t.id, t.current_compartment, b.target_library,
                      b.target_export);
  }

  // Sentries carry interrupt-posture semantics (§2.1); the matching return
  // restores the previous posture.
  const bool saved_irq = t.interrupts_enabled;
  PostureGuard posture_guard(&t, saved_irq);
  if (b.cap.otype() == OType::kSentryEnabling) {
    t.interrupts_enabled = true;
  } else if (b.cap.otype() == OType::kSentryDisabling) {
    t.interrupts_enabled = false;
  }

  // Library code runs in the caller's security context: same ctx compartment.
  CompartmentCtx ctx(system_, &t, t.current_compartment);
  const Capability result = exp.fn ? exp.fn(ctx, args) : Capability();
  return result;  // PostureGuard restores the posture ("backward sentry")
}

ErrorRecovery Switcher::DeliverTrap(GuestThread& t, CompartmentCtx& ctx,
                                    TrapInfo* info) {
  ++trap_count_;
  BootInfo& boot = system_->boot();
  Machine& m = system_->machine();
  if (auto* tr = m.trace()) {
    tr->OnTrap(t.id, static_cast<int>(info->cause), ctx.compartment());
  }
  // Snapshot the crash record before any handler runs: the decoded register
  // file and the heap provenance of the faulting address must reflect the
  // fault, not whatever the handler changed. The disposition is filed once
  // the outcome is known.
  health::ForensicsRecorder* hr = m.forensics();
  std::optional<health::CrashRecord> crash;
  if (hr != nullptr) {
    crash = BuildCrashRecord(t, ctx.compartment(), info->cause,
                             info->fault_address, info->regs);
  }
  const auto file = [&](health::Disposition disposition) {
    if (!crash.has_value()) {
      return;
    }
    crash->disposition = disposition;
    const uint64_t seq = hr->Record(std::move(*crash));
    crash.reset();
    if (auto* tr = m.trace()) {
      tr->OnCrashRecord(t.id, static_cast<int>(info->cause),
                        ctx.compartment(), info->fault_address, seq);
    }
  };
  const CompartmentRuntime& rt = boot.compartments[ctx.compartment()];
  if (!rt.def->error_handler || ctx.in_error_handler_) {
    m.Tick(cost::kUnwindNoHandler);
    file(health::Disposition::kUnwindNoHandler);
    throw UnwindException{};
  }
  m.Tick(cost::kGlobalHandlerFault);
  ctx.in_error_handler_ = true;
  ErrorRecovery recovery;
  try {
    recovery = rt.def->error_handler(ctx, *info);
  } catch (...) {
    // A buggy handler faulting falls back to the default unwind policy.
    ctx.in_error_handler_ = false;
    m.Tick(cost::kUnwindNoHandler);
    file(health::Disposition::kHandlerFaulted);
    throw UnwindException{true};
  }
  ctx.in_error_handler_ = false;
  if (recovery == ErrorRecovery::kForceUnwind) {
    file(health::Disposition::kHandlerUnwind);
    throw UnwindException{true};
  }
  file(health::Disposition::kHandlerInstalledContext);
  return recovery;
}

health::CrashRecord Switcher::BuildCrashRecord(GuestThread& t, int compartment,
                                               TrapCode cause,
                                               Address fault_address,
                                               const RegisterFile& regs) {
  health::CrashRecord r;
  r.thread = static_cast<int16_t>(t.id);
  r.compartment = compartment;
  r.cause = cause;
  r.fault_address = fault_address;
  r.regs = health::DecodeRegisterFile(regs);
  r.trusted_depth = t.frame_depth;
  if (const Allocator::AllocSite* site =
          system_->alloc().ProvenanceFor(fault_address)) {
    health::HeapProvenance& p = r.provenance;
    p.known = true;
    p.site_id = site->site_id;
    p.compartment = site->compartment;
    p.seq = site->seq;
    p.allocated_at = site->allocated_at;
    p.size = site->size;
    p.quota = site->quota;
    // Allocator::SiteState and HeapProvenance::State share enumerator values
    // (live=0, quarantined=1, reused=2).
    p.state = static_cast<health::HeapProvenance::State>(site->state);
    p.freed_by = site->freed_by;
    p.freed_at = site->freed_at;
  }
  return r;
}

Status Switcher::EphemeralClaim(GuestThread& t, const Capability& obj) {
  if (!obj.tag() || obj.IsSealed()) {
    return Status::kInvalidArgument;
  }
  system_->machine().Tick(cost::kEphemeralClaim);
  TrustedStackView ts = TrustedStackFor(t);
  int slot = 0;
  if (t.hazard_slots[0] != 0 && t.hazard_slots[1] == 0) {
    slot = 1;
  }
  t.hazard_slots[slot] = obj.base();
  ts.SetHazardSlot(slot, obj.base());
  return Status::kOk;
}

bool Switcher::IsEphemerallyClaimed(Address payload_base) const {
  for (const auto& t : system_->threads()) {
    if (t.state == GuestThread::State::kExited) {
      continue;
    }
    if (t.hazard_slots[0] == payload_base || t.hazard_slots[1] == payload_base) {
      return true;
    }
  }
  return false;
}

int Switcher::UnwindThreadsIn(int compartment, int skip_thread_id) {
  int flagged = 0;
  for (auto& t : system_->threads()) {
    if (t.id == skip_thread_id || t.state == GuestThread::State::kExited) {
      continue;
    }
    bool inside = (t.current_compartment == compartment);
    if (!inside && t.started) {
      TrustedStackView ts = TrustedStackFor(t);
      const uint16_t depth = ts.Depth();
      for (int i = 0; i < depth && !inside; ++i) {
        inside = (ts.Peek(i).callee_compartment == compartment);
      }
    }
    if (!inside) {
      continue;
    }
    t.forced_unwind.insert(compartment);
    ++flagged;
    if (t.state == GuestThread::State::kBlocked ||
        t.state == GuestThread::State::kSleeping) {
      // "Waking up and faulting all other threads in the compartment"
      // (§3.2.6 step 2): the woken thread observes the forced unwind at its
      // next switcher boundary.
      t.timed_out = true;
      system_->sched().MakeReady(t.id);
    }
  }
  return flagged;
}

}  // namespace cheriot

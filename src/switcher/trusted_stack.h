// The per-thread trusted stack (§3.1.2): a region of simulated memory
// exclusively accessible to the switcher. Holds the register-save area for
// context switches, the ephemeral-claim hazard slots, and one frame per
// in-flight compartment call so the switcher can return safely even if the
// compartment corrupted everything it can reach.
//
// Layout (all offsets from trusted_stack_base):
//   0   u16 depth
//   2   u16 flags
//   4   u32 hazard slot 0   (ephemeral claims, §3.2.5)
//   8   u32 hazard slot 1
//   12  u32 reserved
//   16  register save area (16 capability slots, 128 bytes)
//   144 frames[max_frames], 16 bytes each:
//       +0  u32 (caller_compartment << 16) | callee_compartment
//       +4  u32 (export_index << 16) | posture_and_flags
//       +8  u32 sp at call
//       +12 u32 stack high-water at call
#ifndef SRC_SWITCHER_TRUSTED_STACK_H_
#define SRC_SWITCHER_TRUSTED_STACK_H_

#include <cstdint>

#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/mem/memory.h"

namespace cheriot {

struct TrustedFrame {
  uint16_t caller_compartment = 0xFFFF;
  uint16_t callee_compartment = 0;
  uint16_t export_index = 0;
  uint16_t posture_and_flags = 0;
  Address sp_at_call = 0;
  Address high_water_at_call = 0;
};

class TrustedStackView {
 public:
  TrustedStackView(Memory* mem, const Capability& authority, Address base,
                   uint16_t max_frames)
      : mem_(mem), authority_(authority), base_(base),
        max_frames_(max_frames) {}

  uint16_t Depth() const;
  void SetDepth(uint16_t depth);
  bool Full() const { return Depth() >= max_frames_; }

  void Push(const TrustedFrame& frame);
  TrustedFrame Pop();
  TrustedFrame Peek(int from_top = 0) const;  // 0 = innermost

  Address HazardSlot(int i) const;
  void SetHazardSlot(int i, Address value);

  // Charges the cost of spilling/restoring the register save area.
  void ChargeRegisterSave();

 private:
  Address FrameAddress(uint16_t index) const {
    return base_ + 144 + static_cast<Address>(index) * 16;
  }

  Memory* mem_;
  Capability authority_;
  Address base_;
  uint16_t max_frames_;
};

}  // namespace cheriot

#endif  // SRC_SWITCHER_TRUSTED_STACK_H_

// cheriot-mc: snapshot-forking systematic concurrency exploration
// (DESIGN.md §12).
//
// The explorer boots a firmware image once, snapshots the board (the PR 7
// container), then explores the schedule space by restore-and-replay: each
// schedule is a fresh board restored from the root snapshot and run under a
// recording arbiter that forces a prefix of schedule choices and takes the
// default everywhere else. Every decision the kernel consults the arbiter
// about (src/kernel/schedule_arbiter.h) is a branch point; alternatives are
// enqueued into a frontier ordered by (non-default choice count, insertion
// order), so the first failing schedule found is a minimal reproduction.
//
// Partial-order reduction: while a schedule runs, a passive memory-access
// observer harvests per-thread read/write footprints (8-byte granules; all
// MMIO collapses to one always-written pseudo-granule). A sync-preempt
// alternative at decision i is pruned when the preempted thread's accesses
// after i conflict with no other thread's; a wake-order alternative is
// pruned when no two threads conflict after i at all. Only those two kinds
// are ever pruned — IRQ-delivery, quantum-preempt and multiwaiter choices
// interact with state the observer cannot see (interrupt futex words are
// bumped via raw stores) and are always explored. Each pruned alternative
// is credited 1 + the number of alternatives that branched later in the
// same run — a conservative lower bound on the subtree skipped.
//
// Oracles, all baseline-relative against schedule 0 (the default schedule):
//   deadlock    RunResult::kDeadlock where the default schedule had none
//   trap        a (cause, compartment) crash-record pair absent at baseline
//   health      a cheriot-health detector kind absent at baseline
//   divergence  guest-visible output (uart bytes/hash, reboots) differing
//               from baseline on a schedule whose non-default choices are
//               wake/multiwaiter order only — output that varies with wake
//               order is a real race (timing-kind schedules legitimately
//               interleave output differently and are not compared)
#ifndef SRC_MC_EXPLORER_H_
#define SRC_MC_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/firmware/image.h"
#include "src/json/json.h"
#include "src/kernel/schedule_arbiter.h"

namespace cheriot::mc {

inline constexpr int kMcSchemaVersion = 1;

struct McOptions {
  // Hard cap on schedules executed (including schedule 0).
  int max_schedules = 256;
  // Context bound: maximum non-default choices of the preemption kinds
  // (sync-preempt, preempt, irq-delivery) per schedule. Order and fault
  // kinds are not counted — they reorder, they do not add preemptions.
  int preempt_bound = 2;
  // Branch on fault-injection kinds (alloc-fail, nic-loss) too.
  bool inject_faults = false;
  // Guest cycles each schedule runs past the root snapshot.
  Cycles cycles = 2'000'000;
  // Cap on reported failures (exploration continues past it).
  int max_failures = 16;
};

// One recorded schedule decision.
struct Decision {
  DecisionKind kind = DecisionKind::kSyncPreempt;
  uint32_t subject = 0;
  int n_choices = 2;
  int chosen = 0;
};

// One forced choice in a reproduction recipe: at the `index`-th decision
// the kernel consults the arbiter about, answer `chosen` instead of 0.
struct ReproChoice {
  int index = 0;
  DecisionKind kind = DecisionKind::kSyncPreempt;
  uint32_t subject = 0;
  int chosen = 0;
};

struct Failure {
  std::string kind;    // "deadlock" | "trap" | "health" | "divergence"
  std::string detail;  // deterministic description
  int schedule = 0;    // schedule index that failed
  // The failing schedule's non-default choices (its reproduction recipe:
  // force exactly these, default everywhere else). Minimal by construction:
  // the frontier is ordered by non-default choice count, so the first
  // failing schedule found carries the fewest forced choices.
  std::vector<ReproChoice> repro;
  // Total decisions in the failing run (context for the repro indices).
  int decisions = 0;
};

struct McReport {
  std::string image;
  McOptions options;
  Cycles root_cycle = 0;  // guest clock at the root snapshot
  int schedules_explored = 0;
  int branch_points = 0;           // decisions with >1 eligible alternative
  uint64_t alternatives_enqueued = 0;
  uint64_t alternatives_pruned = 0;      // pruned alternative count
  uint64_t pruned_subtree_credit = 0;    // with suffix credit (see header)
  bool frontier_exhausted = false;  // explored everything within bounds
  std::string baseline_result;      // RunResult of schedule 0
  std::vector<Failure> failures;

  bool clean() const { return failures.empty(); }
  // Naive tree size estimate = explored + pruned credit; the pruned
  // fraction is pruned credit over that, in percent (integer, for
  // byte-stable reports).
  uint64_t naive_tree() const {
    return static_cast<uint64_t>(schedules_explored) + pruned_subtree_credit;
  }
  int pruned_pct() const {
    const uint64_t naive = naive_tree();
    return naive == 0
               ? 0
               : static_cast<int>(pruned_subtree_credit * 100 / naive);
  }
  // Byte-stable JSON (integers only, std::map key order).
  json::Value ToJson() const;
};

// Explores `image`'s schedule space. The factory is invoked once per
// schedule (Board::Restore needs a fresh host-side image each time).
McReport Explore(const std::string& image_name,
                 const std::function<FirmwareImage()>& make_image,
                 const McOptions& options = {});

}  // namespace cheriot::mc

#endif  // SRC_MC_EXPLORER_H_

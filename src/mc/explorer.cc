#include "src/mc/explorer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <set>
#include <tuple>

#include "src/health/monitor.h"
#include "src/sim/board.h"

namespace cheriot::mc {

namespace {

bool IsPreemptKind(DecisionKind k) {
  return k == DecisionKind::kSyncPreempt || k == DecisionKind::kPreempt ||
         k == DecisionKind::kIrqDelivery;
}

bool IsFaultKind(DecisionKind k) {
  return k == DecisionKind::kAllocFail || k == DecisionKind::kNicLoss;
}

bool IsOrderKind(DecisionKind k) {
  return k == DecisionKind::kWakeOrder ||
         k == DecisionKind::kMultiwaiterOrder;
}

const char* RunResultName(System::RunResult r) {
  switch (r) {
    case System::RunResult::kAllExited: return "all-exited";
    case System::RunResult::kBudgetExhausted: return "budget-exhausted";
    case System::RunResult::kDeadlock: return "deadlock";
    case System::RunResult::kStopped: return "stopped";
  }
  return "?";
}

// Records the decision sequence of one schedule: forces the prefix, answers
// the default everywhere else.
class RecordingArbiter : public ScheduleArbiter {
 public:
  explicit RecordingArbiter(std::vector<int> prefix)
      : prefix_(std::move(prefix)) {}

  int Choose(DecisionKind kind, uint32_t subject, int n_choices) override {
    int chosen = 0;
    if (decisions_.size() < prefix_.size()) {
      chosen = prefix_[decisions_.size()];
      if (chosen < 0 || chosen >= n_choices) {
        chosen = 0;  // replay drift: fall back to the default
      }
    }
    decisions_.push_back({kind, subject, n_choices, chosen});
    return chosen;
  }

  const std::vector<Decision>& decisions() const { return decisions_; }

 private:
  std::vector<int> prefix_;
  std::vector<Decision> decisions_;
};

// Passive per-thread read/write footprints at 8-byte granularity, stamped
// with the decision count at access time ("segment"). All non-SRAM
// (device) accesses collapse onto one pseudo-granule recorded as a store:
// two threads touching any MMIO never commute (UART byte order is guest-
// visible). Stored stamps are `decision count + 1` so zero means untouched.
class Footprints {
 public:
  static constexpr int kMaxThreads = 16;

  Footprints(Address sram_base, Address sram_size)
      : base_(sram_base), top_(sram_base + sram_size),
        granules_(sram_size / 8 + 1),  // +1: the MMIO pseudo-granule
        loads_(granules_ * kMaxThreads, 0),
        stores_(granules_ * kMaxThreads, 0),
        touched_flag_(granules_, 0) {}

  void Bind(System* system, const std::vector<Decision>* decisions) {
    system_ = system;
    decisions_ = decisions;
  }

  static void Observe(void* ctx, Address addr, Address size, bool is_store) {
    auto* self = static_cast<Footprints*>(ctx);
    const int tid = self->system_->current_thread_id();
    if (tid < 0 || tid >= kMaxThreads) {
      return;  // idle/kernel context: not attributable to a guest thread
    }
    const uint32_t seg =
        static_cast<uint32_t>(self->decisions_->size()) + 1;
    size_t g0;
    size_t g1;
    if (addr >= self->base_ && addr < self->top_) {
      g0 = (addr - self->base_) / 8;
      const uint64_t last = static_cast<uint64_t>(addr) + (size ? size : 1) - 1;
      g1 = std::min((static_cast<size_t>(last - self->base_)) / 8,
                    self->granules_ - 2);
    } else {
      g0 = g1 = self->granules_ - 1;  // MMIO pseudo-granule
      is_store = true;
    }
    for (size_t g = g0; g <= g1; ++g) {
      const size_t idx = g * kMaxThreads + static_cast<size_t>(tid);
      (is_store ? self->stores_ : self->loads_)[idx] = seg;
      if (!self->touched_flag_[g]) {
        self->touched_flag_[g] = 1;
        self->touched_.push_back(static_cast<uint32_t>(g));
      }
    }
  }

  // Conflict thresholds: per_thread[t] (and any) is the highest stamp S such
  // that thread t (any pair) has a read/write or write/write overlap where
  // both accesses carry stamp >= ... — concretely, an alternative at
  // decision j is in conflict iff threshold >= j + 2.
  struct Conflicts {
    std::array<uint32_t, kMaxThreads> per_thread{};
    uint32_t any = 0;
  };

  Conflicts Compute() const {
    Conflicts c;
    for (uint32_t g : touched_) {
      const size_t row = static_cast<size_t>(g) * kMaxThreads;
      for (int t = 0; t < kMaxThreads; ++t) {
        const uint32_t lt = loads_[row + t];
        const uint32_t st = stores_[row + t];
        if (lt == 0 && st == 0) {
          continue;
        }
        for (int u = t + 1; u < kMaxThreads; ++u) {
          const uint32_t lu = loads_[row + u];
          const uint32_t su = stores_[row + u];
          if (lu == 0 && su == 0) {
            continue;
          }
          // t writes, u touches:
          uint32_t pair = std::min(st, std::max(lu, su));
          // u writes, t touches:
          pair = std::max(pair, std::min(su, std::max(lt, st)));
          if (pair == 0) {
            continue;
          }
          c.per_thread[t] = std::max(c.per_thread[t], pair);
          c.per_thread[u] = std::max(c.per_thread[u], pair);
          c.any = std::max(c.any, pair);
        }
      }
    }
    return c;
  }

 private:
  System* system_ = nullptr;
  const std::vector<Decision>* decisions_ = nullptr;
  Address base_;
  Address top_;
  size_t granules_;
  std::vector<uint32_t> loads_;
  std::vector<uint32_t> stores_;
  std::vector<uint8_t> touched_flag_;
  std::vector<uint32_t> touched_;
};

// Everything one schedule run produces that the explorer needs afterwards.
struct RunOutcome {
  std::vector<Decision> decisions;
  System::RunResult result = System::RunResult::kBudgetExhausted;
  uint64_t uart_bytes = 0;
  uint64_t uart_hash = 0;
  uint32_t reboots = 0;
  std::set<std::pair<int, int>> trap_keys;     // (cause, compartment)
  std::set<std::pair<int, int>> anomaly_keys;  // (detector, compartment)
  Footprints::Conflicts conflicts;
};

std::string CompartmentLabel(int idx, const std::vector<std::string>& names) {
  if (idx >= 0 && idx < static_cast<int>(names.size())) {
    return names[static_cast<size_t>(idx)];
  }
  return idx < 0 ? "<kernel>" : std::to_string(idx);
}

std::string TrapKeyName(const std::pair<int, int>& key,
                        const std::vector<std::string>& names) {
  return std::string(TrapCodeName(static_cast<TrapCode>(key.first))) +
         " in compartment " + CompartmentLabel(key.second, names);
}

std::string AnomalyKeyName(const std::pair<int, int>& key,
                           const std::vector<std::string>& names) {
  return std::string(
             health::DetectorName(static_cast<health::Detector>(key.first))) +
         " (compartment " + CompartmentLabel(key.second, names) + ")";
}

RunOutcome RunSchedule(const std::vector<uint8_t>& root_blob,
                       const std::function<FirmwareImage()>& make_image,
                       const std::vector<int>& prefix, Cycles target) {
  auto board = sim::Board::Restore(root_blob, make_image());
  board->set_op_log_enabled(false);
  RecordingArbiter arbiter(prefix);
  Memory& mem = board->machine().memory();
  Footprints footprints(mem.sram_base(), mem.sram_size());
  footprints.Bind(&board->system(), &arbiter.decisions());
  board->SetArbiter(&arbiter);
  mem.SetAccessObserver(&Footprints::Observe, &footprints);

  RunOutcome out;
  out.result = board->StepTo(target);

  mem.SetAccessObserver(nullptr, nullptr);
  board->SetArbiter(nullptr);

  const sim::Board::Fingerprint fp = board->fingerprint();
  out.uart_bytes = fp.uart_bytes;
  out.uart_hash = fp.uart_hash;
  out.reboots = fp.reboots;
  if (auto* fr = board->forensics_recorder()) {
    for (const health::CrashRecord& rec : fr->Records()) {
      out.trap_keys.emplace(static_cast<int>(rec.cause), rec.compartment);
    }
  }
  const health::BoardHealth bh = health::AssessBoard(*board);
  for (const health::Anomaly& a : bh.anomalies) {
    // kStuckBoard duplicates the explorer's own deadlock oracle.
    if (a.detector != health::Detector::kStuckBoard) {
      out.anomaly_keys.emplace(static_cast<int>(a.detector), a.compartment);
    }
  }
  out.conflicts = footprints.Compute();
  out.decisions = arbiter.decisions();
  return out;
}

}  // namespace

json::Value McReport::ToJson() const {
  json::Object o;
  o["schema_version"] = kMcSchemaVersion;
  o["image"] = image;
  {
    json::Object opt;
    opt["max_schedules"] = options.max_schedules;
    opt["preempt_bound"] = options.preempt_bound;
    opt["inject_faults"] = options.inject_faults;
    opt["cycles"] = static_cast<uint64_t>(options.cycles);
    o["options"] = std::move(opt);
  }
  o["root_cycle"] = static_cast<uint64_t>(root_cycle);
  o["baseline_result"] = baseline_result;
  o["schedules_explored"] = schedules_explored;
  o["branch_points"] = branch_points;
  o["alternatives_enqueued"] = alternatives_enqueued;
  o["alternatives_pruned"] = alternatives_pruned;
  o["pruned_subtree_credit"] = pruned_subtree_credit;
  o["naive_tree_estimate"] = naive_tree();
  o["pruned_pct"] = pruned_pct();
  o["frontier_exhausted"] = frontier_exhausted;
  o["clean"] = clean();
  json::Array fails;
  for (const Failure& f : failures) {
    json::Object fo;
    fo["kind"] = f.kind;
    fo["detail"] = f.detail;
    fo["schedule"] = f.schedule;
    fo["decisions"] = f.decisions;
    json::Array repro;
    for (const ReproChoice& r : f.repro) {
      json::Object ro;
      ro["index"] = r.index;
      ro["kind"] = DecisionKindName(r.kind);
      ro["subject"] = r.subject;
      ro["choice"] = r.chosen;
      repro.push_back(std::move(ro));
    }
    fo["repro"] = std::move(repro);
    fails.push_back(std::move(fo));
  }
  o["failures"] = std::move(fails);
  return json::Value(std::move(o));
}

McReport Explore(const std::string& image_name,
                 const std::function<FirmwareImage()>& make_image,
                 const McOptions& options) {
  McReport report;
  report.image = image_name;
  report.options = options;

  // Root snapshot: boot once with forensics attached (the trap oracle needs
  // it, and attaching it here means every forked schedule inherits it
  // through Restore). The snapshot is taken before any guest instruction
  // runs, so its replay log is empty and restores are cheap re-boots.
  std::vector<uint8_t> root_blob;
  std::vector<std::string> comp_names;
  for (const CompartmentDef& c : make_image().compartments) {
    comp_names.push_back(c.name);
  }
  {
    sim::Board root(make_image(), {});
    root.EnableForensics();
    root.Boot();
    root.Snapshot(root_blob);
    report.root_cycle = root.Now();
  }
  const Cycles target = report.root_cycle + options.cycles;

  // Frontier of schedule prefixes, ordered by (non-default choice count,
  // insertion order): the first failure found is minimal.
  struct Entry {
    int non_default;
    uint64_t seq;
    std::vector<int> prefix;
    bool operator>(const Entry& other) const {
      return std::tie(non_default, seq) >
             std::tie(other.non_default, other.seq);
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      frontier;
  uint64_t next_seq = 0;
  frontier.push({0, next_seq++, {}});

  // De-duplication guard: restore-and-replay is deterministic, so equal
  // prefixes produce equal runs.
  std::set<std::vector<int>> seen;
  seen.insert({});

  bool have_baseline = false;
  RunOutcome baseline;

  while (!frontier.empty() &&
         report.schedules_explored < options.max_schedules) {
    const Entry entry = frontier.top();
    frontier.pop();
    const int schedule_index = report.schedules_explored;
    RunOutcome out =
        RunSchedule(root_blob, make_image, entry.prefix, target);
    ++report.schedules_explored;
    if (!have_baseline) {
      baseline = out;
      have_baseline = true;
      report.baseline_result = RunResultName(out.result);
    }

    // --- Oracles (baseline-relative) ---
    auto repro_of = [&out]() {
      std::vector<ReproChoice> repro;
      for (size_t i = 0; i < out.decisions.size(); ++i) {
        const Decision& d = out.decisions[i];
        if (d.chosen != 0) {
          repro.push_back({static_cast<int>(i), d.kind, d.subject, d.chosen});
        }
      }
      return repro;
    };
    auto add_failure = [&](const std::string& kind,
                           const std::string& detail) {
      if (static_cast<int>(report.failures.size()) >= options.max_failures) {
        return;
      }
      Failure f;
      f.kind = kind;
      f.detail = detail;
      f.schedule = schedule_index;
      f.repro = repro_of();
      f.decisions = static_cast<int>(out.decisions.size());
      report.failures.push_back(std::move(f));
    };
    if (schedule_index > 0) {
      if (out.result == System::RunResult::kDeadlock &&
          baseline.result != System::RunResult::kDeadlock) {
        add_failure("deadlock",
                    "all threads blocked with no pending event (baseline: " +
                        std::string(report.baseline_result) + ")");
      }
      for (const auto& key : out.trap_keys) {
        if (!baseline.trap_keys.count(key)) {
          add_failure("trap",
                      "new crash record: " + TrapKeyName(key, comp_names));
        }
      }
      for (const auto& key : out.anomaly_keys) {
        if (!baseline.anomaly_keys.count(key)) {
          add_failure("health",
                      "new anomaly: " + AnomalyKeyName(key, comp_names));
        }
      }
      // Guest-visible divergence is only a verdict on schedules whose
      // non-default choices are wake/multiwaiter order: timing-kind
      // schedules legitimately interleave console output differently.
      bool order_only = true;
      bool any_non_default = false;
      for (const Decision& d : out.decisions) {
        if (d.chosen != 0) {
          any_non_default = true;
          if (!IsOrderKind(d.kind)) {
            order_only = false;
          }
        }
      }
      if (order_only && any_non_default &&
          (out.uart_bytes != baseline.uart_bytes ||
           out.uart_hash != baseline.uart_hash ||
           out.reboots != baseline.reboots)) {
        add_failure(
            "divergence",
            "guest-visible output depends on futex wake order (uart " +
                std::to_string(out.uart_bytes) + "/" +
                std::to_string(out.uart_hash) + " vs baseline " +
                std::to_string(baseline.uart_bytes) + "/" +
                std::to_string(baseline.uart_hash) + ")");
      }
    }

    // --- Branch: enumerate alternatives past this schedule's prefix ---
    const std::vector<Decision>& d = out.decisions;
    int non_default_preempt = 0;
    for (const Decision& dec : d) {
      if (dec.chosen != 0 && IsPreemptKind(dec.kind)) {
        ++non_default_preempt;
      }
    }
    // First pass: eligible alternatives per decision (for suffix credit).
    std::vector<int> alt_count(d.size(), 0);
    for (size_t j = entry.prefix.size(); j < d.size(); ++j) {
      if (IsFaultKind(d[j].kind) && !options.inject_faults) {
        continue;
      }
      if (IsPreemptKind(d[j].kind) &&
          non_default_preempt >= options.preempt_bound) {
        continue;
      }
      alt_count[j] = d[j].n_choices - 1;
    }
    std::vector<uint64_t> alts_after(d.size() + 1, 0);
    for (size_t j = d.size(); j-- > 0;) {
      alts_after[j] =
          alts_after[j + 1] + static_cast<uint64_t>(alt_count[j]);
    }
    for (size_t j = entry.prefix.size(); j < d.size(); ++j) {
      if (alt_count[j] == 0) {
        continue;
      }
      ++report.branch_points;
      // Partial-order reduction (sound only for these two kinds — see
      // explorer.h): conflicts exist after decision j iff the relevant
      // threshold >= j + 2.
      bool prune = false;
      if (d[j].kind == DecisionKind::kSyncPreempt) {
        const uint32_t tid = d[j].subject;
        prune = tid < Footprints::kMaxThreads &&
                out.conflicts.per_thread[tid] < j + 2;
      } else if (d[j].kind == DecisionKind::kWakeOrder) {
        prune = out.conflicts.any < j + 2;
      }
      if (prune) {
        report.alternatives_pruned +=
            static_cast<uint64_t>(alt_count[j]);
        report.pruned_subtree_credit +=
            static_cast<uint64_t>(alt_count[j]) * (1 + alts_after[j + 1]);
        continue;
      }
      for (int c = 1; c < d[j].n_choices; ++c) {
        std::vector<int> prefix;
        prefix.reserve(j + 1);
        for (size_t k = 0; k < j; ++k) {
          prefix.push_back(d[k].chosen);
        }
        prefix.push_back(c);
        if (!seen.insert(prefix).second) {
          continue;
        }
        ++report.alternatives_enqueued;
        frontier.push({entry.non_default + 1, next_seq++,
                       std::move(prefix)});
      }
    }
  }
  report.frontier_exhausted = frontier.empty();
  return report;
}

}  // namespace cheriot::mc

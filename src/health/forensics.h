// cheriot-health fault forensics: a deterministic crash recorder for the
// simulated SoC (DESIGN.md §9).
//
// Every CHERI trap that reaches the switcher's first-level handler — and
// every switcher-initiated forced unwind — files a structured crash record:
// trap cause and faulting address, the full capability register file with
// tag/bounds/permissions/seal decoded, the compartment call stack (from a
// mirrored stack, like the trace profiler's — the trusted stack lives in
// simulated memory and reading it would tick the clock), the trusted-stack
// depth, the error-handler disposition the switcher took, and — when the
// faulting address lands in the heap — the allocation-site provenance of the
// object it points into ("who allocated this, and was it freed?").
//
// Determinism contract (same as src/trace, pinned by tests/health_test.cpp):
// the recorder only OBSERVES the cycle model. It never ticks the clock,
// never touches simulated memory, and never consults host state, so enabling
// forensics cannot move a single guest cycle. Every capture site in the
// switcher/kernel/allocator is a raw-pointer null check through
// Machine::forensics().
#ifndef SRC_HEALTH_FORENSICS_H_
#define SRC_HEALTH_FORENSICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"
#include "src/mem/trap.h"
#include "src/switcher/registers.h"

namespace cheriot {
class Machine;
}  // namespace cheriot

namespace cheriot::snap {
class Writer;
}  // namespace cheriot::snap

namespace cheriot::health {

// What the switcher did with the trap (§3.2.6 error-handling paths).
enum class Disposition : uint8_t {
  kUnwindNoHandler = 0,         // no (or re-entered) handler: frame unwound
  kHandlerUnwind = 1,           // global handler ran, chose kForceUnwind
  kHandlerInstalledContext = 2, // global handler repaired the register file
  kHandlerFaulted = 3,          // the handler itself trapped; frame unwound
  kForcedUnwind = 4,            // switcher-initiated (micro-reboot step 2)
};

const char* DispositionName(Disposition d);

// One architectural register, decoded for the crash record.
struct DecodedCap {
  std::string name;    // "pcc", "ra", "csp", "cgp", "a0".."a5", "t0".."t1"
  bool tag = false;
  bool sealed = false;
  Address cursor = 0;
  Address base = 0;
  Address top = 0;     // exclusive
  std::string perms;   // PermissionSet::ToString()
  int otype = 0;
};

// Decodes the register file in declaration order (pcc, ra, csp, cgp, a0..a5,
// t0..t1) so records are byte-stable.
std::vector<DecodedCap> DecodeRegisterFile(const RegisterFile& regs);

// Allocation-site provenance of the heap object containing the faulting
// address, copied out of the allocator's native site table at capture time.
struct HeapProvenance {
  bool known = false;       // fault address resolved to an allocation site
  uint32_t site_id = 0;     // compact id: (compartment << 20) | sequence
  int32_t compartment = -1; // allocating compartment
  uint64_t seq = 0;         // allocator-wide allocation sequence number
  Cycles allocated_at = 0;  // guest cycles at allocation
  Word size = 0;            // payload bytes
  uint32_t quota = 0;       // owning allocation capability (quota id)
  // kLive: still allocated. kQuarantined: freed, revocation bits painted,
  // awaiting the sweep+quarantine drain. kReused: freed and since returned
  // to the free list (the address may have been re-allocated).
  enum class State : uint8_t { kLive = 0, kQuarantined = 1, kReused = 2 };
  State state = State::kLive;
  int32_t freed_by = -1;    // compartment that freed it (-1 = not freed)
  Cycles freed_at = 0;
};

const char* ProvenanceStateName(HeapProvenance::State s);

struct CrashRecord {
  uint64_t seq = 0;          // monotonic per recorder, stamped by Record()
  Cycles at = 0;             // guest cycles, stamped by Record()
  int16_t thread = -1;
  int32_t compartment = -1;  // faulting compartment
  TrapCode cause = TrapCode::kNone;
  Address fault_address = 0;
  Disposition disposition = Disposition::kUnwindNoHandler;
  std::vector<DecodedCap> regs;   // decoded register file at the fault
  std::vector<int> call_stack;    // compartments, outermost first (mirror)
  uint32_t trusted_depth = 0;     // trusted-stack frames below the fault
  HeapProvenance provenance;      // heap object the fault address hit, if any
  // Full machine-state crash scene (a serialized snapshot-section bundle,
  // DESIGN.md §10), captured at the fault when
  // ForensicsOptions::capture_crash_scene is set. Empty otherwise, and
  // cleared on all but the `scene_limit` most recent records.
  std::vector<uint8_t> scene;
};

struct ForensicsOptions {
  // Crash-record ring capacity; oldest records are dropped (and counted)
  // once the ring is full, deterministically.
  size_t ring_capacity = 256;
  // Per-compartment micro-reboot history depth (reboot-loop detection).
  size_t reboot_history = 32;
  // Attach a full machine-state scene to each crash record (via the scene
  // hook the board installs). Zero guest cycles: the scene serializer only
  // reads native state and raw memory. Off by default — scenes are large.
  bool capture_crash_scene = false;
  // How many of the most recent records keep their scene blob; older
  // records' scenes are dropped (the structured record itself remains).
  size_t scene_limit = 4;
};

class ForensicsRecorder {
 public:
  explicit ForensicsRecorder(ForensicsOptions options = {});

  ForensicsRecorder(const ForensicsRecorder&) = delete;
  ForensicsRecorder& operator=(const ForensicsRecorder&) = delete;

  // --- Wiring (Attach() / System::Boot) ------------------------------------
  void SetClock(const CycleClock* clock) { clock_ = clock; }
  void SetLabel(std::string label) { label_ = std::move(label); }
  void SetBoardIndex(int index) { board_index_ = index; }
  void SetCompartmentNames(std::vector<std::string> names);
  void SetThreadNames(std::vector<std::string> names);

  // --- Choke-point mirrors (same sites as the trace recorder's) ------------
  void OnCompartmentCall(int thread, int callee);
  void OnCompartmentReturn(int thread);
  void OnQuotaExhausted(int thread, int compartment, uint32_t quota,
                        Word bytes);
  void OnMicroReboot(int compartment, Cycles at);

  // Files a crash record: stamps seq and guest time, snapshots the mirrored
  // compartment stack for `record.thread`, and appends to the ring (dropping
  // the oldest when full). Returns the record's sequence number so a
  // co-attached trace can join the two streams. When crash scenes are
  // enabled the scene hook runs here and its blob rides on the record,
  // bounded by ForensicsOptions::scene_limit.
  uint64_t Record(CrashRecord record);

  // Scene capture hook, installed by Board::EnableForensics when
  // capture_crash_scene is set: returns a serialized machine-state bundle.
  // Must be a pure observer (no guest cycles, no simulated-memory reads
  // through costed paths).
  void SetSceneHook(std::function<std::vector<uint8_t>()> hook) {
    scene_hook_ = std::move(hook);
  }

  // Mirrored compartment stack for a thread (capture helper for the
  // switcher; outermost first).
  const std::vector<int>& CallStack(int thread);

  // --- Read side (health monitor, tools, tests) ----------------------------
  std::vector<CrashRecord> Records() const;
  size_t record_count() const { return count_; }
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }

  // Deterministic aggregates, maintained on capture.
  const std::map<int, uint64_t>& crashes_by_cause() const {    // key TrapCode
    return by_cause_;
  }
  const std::map<int, uint64_t>& crashes_by_compartment() const {
    return by_compartment_;
  }
  const std::map<int, uint64_t>& crashes_by_disposition() const {
    return by_disposition_;
  }
  uint64_t forced_unwinds() const { return forced_unwinds_; }
  uint64_t use_after_free_crashes() const { return use_after_free_; }
  uint64_t quota_exhaustions() const { return quota_exhaustions_; }
  const std::map<int, uint64_t>& quota_exhaustions_by_compartment() const {
    return quota_by_compartment_;
  }
  // Micro-reboot guest-cycle timestamps per compartment, newest last,
  // bounded to options().reboot_history entries.
  const std::map<int, std::deque<Cycles>>& reboots() const { return reboots_; }
  uint64_t total_reboots() const { return total_reboots_; }

  // --- Name resolution ------------------------------------------------------
  const std::string& label() const { return label_; }
  int board_index() const { return board_index_; }
  Cycles now() const { return clock_ ? clock_->now() : 0; }
  std::string CompartmentName(int id) const;
  std::string ThreadName(int id) const;

  const ForensicsOptions& options() const { return options_; }

  // Snapshot serialization (DESIGN.md §10). Serialize-only, like the trace
  // recorder's: the replay restore path regenerates the recorder, so the
  // verify step re-serializes and byte-compares. Scene blobs are included —
  // each is itself a serialized machine state, so the comparison doubles as
  // a determinism check on the scene serializer.
  void SerializeState(snap::Writer& w) const;

 private:
  ForensicsOptions options_;
  const CycleClock* clock_ = nullptr;
  std::string label_;
  int board_index_ = 0;

  // Ring buffer of crash records.
  std::vector<CrashRecord> ring_;
  size_t start_ = 0;
  size_t count_ = 0;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  std::function<std::vector<uint8_t>()> scene_hook_;
  // Ring slots (in emit order) currently holding a scene blob, oldest first.
  std::deque<uint64_t> scene_seqs_;

  // Mirrored per-thread compartment stacks (fed from the switcher's
  // call/return choke points, like the trace profiler's).
  std::vector<std::vector<int>> thread_stacks_;

  // Aggregates.
  std::map<int, uint64_t> by_cause_;
  std::map<int, uint64_t> by_compartment_;
  std::map<int, uint64_t> by_disposition_;
  uint64_t forced_unwinds_ = 0;
  uint64_t use_after_free_ = 0;
  uint64_t quota_exhaustions_ = 0;
  std::map<int, uint64_t> quota_by_compartment_;
  std::map<int, std::deque<Cycles>> reboots_;
  uint64_t total_reboots_ = 0;

  // Names.
  std::vector<std::string> compartment_names_;
  std::vector<std::string> thread_names_;
};

// Attaches a recorder to a machine: publishes it through
// Machine::forensics() so the switcher, kernel and allocator capture sites
// see it. Must be called before System::Boot() (which publishes the name
// tables); the recorder must outlive the machine's last tick. Unlike the
// trace recorder there is no clock hook: forensics has no catch-up charging.
void Attach(Machine& machine, ForensicsRecorder* recorder);

}  // namespace cheriot::health

#endif  // SRC_HEALTH_FORENSICS_H_

// cheriot-health fleet monitor: a host-side observer over Board/Fleet that
// folds trace + forensics streams and the allocator's native provenance
// counters into per-board health state, runs deterministic anomaly detectors
// and renders a schema-versioned JSON health report (DESIGN.md §9).
//
// Everything here is pure observation over already-simulated state: the
// monitor never steps a board, never ticks a clock and never reads simulated
// memory. Reports are a pure function of guest history, so the merged fleet
// report is byte-identical for any host worker count.
#ifndef SRC_HEALTH_MONITOR_H_
#define SRC_HEALTH_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/health/forensics.h"
#include "src/json/json.h"
#include "src/sim/board.h"
#include "src/sim/fleet.h"

namespace cheriot::health {

// Bump on any report shape change; consumers gate on this.
inline constexpr int kHealthSchemaVersion = 1;

enum class Detector : uint8_t {
  kStuckBoard = 0,      // scheduler idle with no future event (deadlock)
  kTrapStorm = 1,       // sustained trap rate above threshold
  kQuotaExhaustion = 2, // a compartment repeatedly bouncing off its quota
  kRevokerBacklog = 3,  // quarantine holding more bytes than the revoker
                        // is draining
  kRebootLoop = 4,      // a compartment micro-rebooting in a tight loop
  kUseAfterFree = 5,    // a crash through a freed/revoked heap object
};

const char* DetectorName(Detector d);

struct HealthOptions {
  // Trap storm: more than this many traps per million guest cycles, with at
  // least `trap_storm_min_traps` observed (so a single startup fault on a
  // short run cannot trip the rate detector).
  double trap_storm_per_mcycle = 50.0;
  uint64_t trap_storm_min_traps = 8;
  // Quota exhaustion: one compartment denied an allocation at least this
  // many times.
  uint64_t quota_exhaustion_min = 3;
  // Revoker backlog: bytes sitting in quarantine at assessment time.
  Word revoker_backlog_bytes = 32 * 1024;
  // Reboot loop: this many micro-reboots of one compartment inside the
  // window (guest cycles).
  uint32_t reboot_loop_min = 3;
  Cycles reboot_loop_window = 2'000'000;
};

struct Anomaly {
  Detector detector = Detector::kStuckBoard;
  int compartment = -1;  // -1 = board-wide
  std::string detail;    // deterministic, human-readable
};

// Folded per-board health state.
struct BoardHealth {
  int board = 0;
  bool healthy = true;
  std::vector<Anomaly> anomalies;  // fixed detector order, then compartment
  bool deadlocked = false;
  Cycles now = 0;
  uint64_t traps = 0;
  Cycles idle_cycles = 0;
  uint32_t reboots = 0;
  uint64_t crash_records = 0;
  uint64_t forced_unwinds = 0;
  uint64_t use_after_free_crashes = 0;
  uint64_t quota_exhaustions = 0;
  uint64_t allocations = 0;
  Word heap_live_bytes = 0;
  Word heap_quarantined_bytes = 0;
};

// Folds the board's switcher/scheduler/allocator counters and (when enabled)
// its forensics stream into health state and runs every detector. Works with
// or without an attached ForensicsRecorder; the forensics-fed detectors
// (quota-exhaustion, reboot-loop, use-after-free) need one to fire.
BoardHealth AssessBoard(sim::Board& board, const HealthOptions& options = {});

// Schema-versioned JSON health report for one board: health state, anomaly
// list, counters, per-compartment reboot history and the full crash-record
// ring, names resolved. Byte-identical for identical guest histories.
json::Value HealthReport(sim::Board& board, const HealthOptions& options = {});

// Merged fleet report: fleet-level rollups plus per-board reports in board
// index order. Byte-identical for any host worker count.
json::Value FleetHealthReport(sim::Fleet& fleet,
                              const HealthOptions& options = {});

// Human-readable crash dump of every record in the ring (the "crash_<image>"
// artifact written by tools/cheriot_health).
std::string CrashDumpText(const ForensicsRecorder& recorder);

}  // namespace cheriot::health

#endif  // SRC_HEALTH_MONITOR_H_

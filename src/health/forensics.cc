#include "src/health/forensics.h"

#include "src/cap/capability.h"
#include "src/hw/machine.h"

namespace cheriot::health {

const char* DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kUnwindNoHandler: return "unwind_no_handler";
    case Disposition::kHandlerUnwind: return "handler_unwind";
    case Disposition::kHandlerInstalledContext:
      return "handler_installed_context";
    case Disposition::kHandlerFaulted: return "handler_faulted";
    case Disposition::kForcedUnwind: return "forced_unwind";
  }
  return "unknown";
}

const char* ProvenanceStateName(HeapProvenance::State s) {
  switch (s) {
    case HeapProvenance::State::kLive: return "live";
    case HeapProvenance::State::kQuarantined: return "quarantined";
    case HeapProvenance::State::kReused: return "reused";
  }
  return "unknown";
}

namespace {

DecodedCap Decode(const char* name, const Capability& c) {
  DecodedCap d;
  d.name = name;
  d.tag = c.tag();
  d.sealed = c.IsSealed();
  d.cursor = c.cursor();
  d.base = c.base();
  d.top = c.top();
  d.perms = c.permissions().ToString();
  d.otype = static_cast<int>(c.otype());
  return d;
}

}  // namespace

std::vector<DecodedCap> DecodeRegisterFile(const RegisterFile& regs) {
  std::vector<DecodedCap> out;
  out.reserve(4 + regs.a.size() + regs.t.size());
  out.push_back(Decode("pcc", regs.pcc));
  out.push_back(Decode("ra", regs.ra));
  out.push_back(Decode("csp", regs.csp));
  out.push_back(Decode("cgp", regs.cgp));
  static const char* kANames[] = {"a0", "a1", "a2", "a3", "a4", "a5"};
  for (size_t i = 0; i < regs.a.size(); ++i) {
    out.push_back(Decode(kANames[i], regs.a[i]));
  }
  static const char* kTNames[] = {"t0", "t1"};
  for (size_t i = 0; i < regs.t.size(); ++i) {
    out.push_back(Decode(kTNames[i], regs.t[i]));
  }
  return out;
}

ForensicsRecorder::ForensicsRecorder(ForensicsOptions options)
    : options_(options) {
  ring_.resize(options_.ring_capacity);
}

void ForensicsRecorder::SetCompartmentNames(std::vector<std::string> names) {
  compartment_names_ = std::move(names);
}
void ForensicsRecorder::SetThreadNames(std::vector<std::string> names) {
  thread_names_ = std::move(names);
}

void ForensicsRecorder::OnCompartmentCall(int thread, int callee) {
  if (thread < 0) {
    return;
  }
  if (static_cast<size_t>(thread) >= thread_stacks_.size()) {
    thread_stacks_.resize(static_cast<size_t>(thread) + 1);
  }
  thread_stacks_[static_cast<size_t>(thread)].push_back(callee);
}

void ForensicsRecorder::OnCompartmentReturn(int thread) {
  if (thread < 0 || static_cast<size_t>(thread) >= thread_stacks_.size()) {
    return;
  }
  auto& stack = thread_stacks_[static_cast<size_t>(thread)];
  if (!stack.empty()) {
    stack.pop_back();
  }
}

void ForensicsRecorder::OnQuotaExhausted(int thread, int compartment,
                                         uint32_t quota, Word bytes) {
  (void)thread;
  (void)quota;
  (void)bytes;
  ++quota_exhaustions_;
  ++quota_by_compartment_[compartment];
}

void ForensicsRecorder::OnMicroReboot(int compartment, Cycles at) {
  ++total_reboots_;
  auto& history = reboots_[compartment];
  history.push_back(at);
  while (history.size() > options_.reboot_history) {
    history.pop_front();
  }
}

const std::vector<int>& ForensicsRecorder::CallStack(int thread) {
  if (thread < 0 || static_cast<size_t>(thread) >= thread_stacks_.size()) {
    static const std::vector<int> kEmpty;
    return kEmpty;
  }
  return thread_stacks_[static_cast<size_t>(thread)];
}

uint64_t ForensicsRecorder::Record(CrashRecord record) {
  record.seq = next_seq_++;
  record.at = now();
  record.call_stack = CallStack(record.thread);
  ++recorded_;
  ++by_cause_[static_cast<int>(record.cause)];
  ++by_compartment_[record.compartment];
  ++by_disposition_[static_cast<int>(record.disposition)];
  if (record.disposition == Disposition::kForcedUnwind) {
    ++forced_unwinds_;
  }
  if (record.provenance.known &&
      record.provenance.state != HeapProvenance::State::kLive) {
    ++use_after_free_;
  }
  const uint64_t seq = record.seq;
  if (ring_.empty()) {
    ++dropped_;
    return seq;
  }
  if (count_ == ring_.size()) {
    start_ = (start_ + 1) % ring_.size();
    --count_;
    ++dropped_;
  }
  ring_[(start_ + count_) % ring_.size()] = std::move(record);
  ++count_;
  return seq;
}

std::vector<CrashRecord> ForensicsRecorder::Records() const {
  std::vector<CrashRecord> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string ForensicsRecorder::CompartmentName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < compartment_names_.size()) {
    return compartment_names_[static_cast<size_t>(id)];
  }
  return "compartment" + std::to_string(id);
}

std::string ForensicsRecorder::ThreadName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < thread_names_.size()) {
    return thread_names_[static_cast<size_t>(id)];
  }
  return "thread" + std::to_string(id);
}

void Attach(Machine& machine, ForensicsRecorder* recorder) {
  recorder->SetClock(&machine.clock());
  machine.set_forensics(recorder);
}

}  // namespace cheriot::health

#include "src/health/forensics.h"

#include "src/cap/capability.h"
#include "src/hw/machine.h"
#include "src/snap/wire.h"

namespace cheriot::health {

const char* DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kUnwindNoHandler: return "unwind_no_handler";
    case Disposition::kHandlerUnwind: return "handler_unwind";
    case Disposition::kHandlerInstalledContext:
      return "handler_installed_context";
    case Disposition::kHandlerFaulted: return "handler_faulted";
    case Disposition::kForcedUnwind: return "forced_unwind";
  }
  return "unknown";
}

const char* ProvenanceStateName(HeapProvenance::State s) {
  switch (s) {
    case HeapProvenance::State::kLive: return "live";
    case HeapProvenance::State::kQuarantined: return "quarantined";
    case HeapProvenance::State::kReused: return "reused";
  }
  return "unknown";
}

namespace {

DecodedCap Decode(const char* name, const Capability& c) {
  DecodedCap d;
  d.name = name;
  d.tag = c.tag();
  d.sealed = c.IsSealed();
  d.cursor = c.cursor();
  d.base = c.base();
  d.top = c.top();
  d.perms = c.permissions().ToString();
  d.otype = static_cast<int>(c.otype());
  return d;
}

}  // namespace

std::vector<DecodedCap> DecodeRegisterFile(const RegisterFile& regs) {
  std::vector<DecodedCap> out;
  out.reserve(4 + regs.a.size() + regs.t.size());
  out.push_back(Decode("pcc", regs.pcc));
  out.push_back(Decode("ra", regs.ra));
  out.push_back(Decode("csp", regs.csp));
  out.push_back(Decode("cgp", regs.cgp));
  static const char* kANames[] = {"a0", "a1", "a2", "a3", "a4", "a5"};
  for (size_t i = 0; i < regs.a.size(); ++i) {
    out.push_back(Decode(kANames[i], regs.a[i]));
  }
  static const char* kTNames[] = {"t0", "t1"};
  for (size_t i = 0; i < regs.t.size(); ++i) {
    out.push_back(Decode(kTNames[i], regs.t[i]));
  }
  return out;
}

ForensicsRecorder::ForensicsRecorder(ForensicsOptions options)
    : options_(options) {
  ring_.resize(options_.ring_capacity);
}

void ForensicsRecorder::SetCompartmentNames(std::vector<std::string> names) {
  compartment_names_ = std::move(names);
}
void ForensicsRecorder::SetThreadNames(std::vector<std::string> names) {
  thread_names_ = std::move(names);
}

void ForensicsRecorder::OnCompartmentCall(int thread, int callee) {
  if (thread < 0) {
    return;
  }
  if (static_cast<size_t>(thread) >= thread_stacks_.size()) {
    thread_stacks_.resize(static_cast<size_t>(thread) + 1);
  }
  thread_stacks_[static_cast<size_t>(thread)].push_back(callee);
}

void ForensicsRecorder::OnCompartmentReturn(int thread) {
  if (thread < 0 || static_cast<size_t>(thread) >= thread_stacks_.size()) {
    return;
  }
  auto& stack = thread_stacks_[static_cast<size_t>(thread)];
  if (!stack.empty()) {
    stack.pop_back();
  }
}

void ForensicsRecorder::OnQuotaExhausted(int thread, int compartment,
                                         uint32_t quota, Word bytes) {
  (void)thread;
  (void)quota;
  (void)bytes;
  ++quota_exhaustions_;
  ++quota_by_compartment_[compartment];
}

void ForensicsRecorder::OnMicroReboot(int compartment, Cycles at) {
  ++total_reboots_;
  auto& history = reboots_[compartment];
  history.push_back(at);
  while (history.size() > options_.reboot_history) {
    history.pop_front();
  }
}

const std::vector<int>& ForensicsRecorder::CallStack(int thread) {
  if (thread < 0 || static_cast<size_t>(thread) >= thread_stacks_.size()) {
    static const std::vector<int> kEmpty;
    return kEmpty;
  }
  return thread_stacks_[static_cast<size_t>(thread)];
}

uint64_t ForensicsRecorder::Record(CrashRecord record) {
  record.seq = next_seq_++;
  record.at = now();
  record.call_stack = CallStack(record.thread);
  if (options_.capture_crash_scene && scene_hook_) {
    record.scene = scene_hook_();
  }
  ++recorded_;
  ++by_cause_[static_cast<int>(record.cause)];
  ++by_compartment_[record.compartment];
  ++by_disposition_[static_cast<int>(record.disposition)];
  if (record.disposition == Disposition::kForcedUnwind) {
    ++forced_unwinds_;
  }
  if (record.provenance.known &&
      record.provenance.state != HeapProvenance::State::kLive) {
    ++use_after_free_;
  }
  const uint64_t seq = record.seq;
  const bool has_scene = !record.scene.empty();
  if (ring_.empty()) {
    ++dropped_;
    return seq;
  }
  if (count_ == ring_.size()) {
    start_ = (start_ + 1) % ring_.size();
    --count_;
    ++dropped_;
  }
  ring_[(start_ + count_) % ring_.size()] = std::move(record);
  ++count_;
  // Bounded scene retention: only the scene_limit most recent records keep
  // their (large) scene blob; the structured record itself always stays.
  if (has_scene) {
    scene_seqs_.push_back(seq);
    while (scene_seqs_.size() > options_.scene_limit) {
      const uint64_t old = scene_seqs_.front();
      scene_seqs_.pop_front();
      for (size_t i = 0; i < count_; ++i) {
        CrashRecord& rec = ring_[(start_ + i) % ring_.size()];
        if (rec.seq == old) {
          rec.scene.clear();
          rec.scene.shrink_to_fit();
          break;
        }
      }
    }
  }
  return seq;
}

std::vector<CrashRecord> ForensicsRecorder::Records() const {
  std::vector<CrashRecord> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string ForensicsRecorder::CompartmentName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < compartment_names_.size()) {
    return compartment_names_[static_cast<size_t>(id)];
  }
  return "compartment" + std::to_string(id);
}

std::string ForensicsRecorder::ThreadName(int id) const {
  if (id >= 0 && static_cast<size_t>(id) < thread_names_.size()) {
    return thread_names_[static_cast<size_t>(id)];
  }
  return "thread" + std::to_string(id);
}

void ForensicsRecorder::SerializeState(snap::Writer& w) const {
  w.U64(recorded_);
  w.U64(dropped_);
  w.U64(next_seq_);
  w.U32(static_cast<uint32_t>(count_));
  for (size_t i = 0; i < count_; ++i) {
    const CrashRecord& rec = ring_[(start_ + i) % ring_.size()];
    w.U64(rec.seq);
    w.U64(rec.at);
    w.U16(static_cast<uint16_t>(rec.thread));
    w.I32(rec.compartment);
    w.U8(static_cast<uint8_t>(rec.cause));
    w.U32(rec.fault_address);
    w.U8(static_cast<uint8_t>(rec.disposition));
    w.U32(static_cast<uint32_t>(rec.regs.size()));
    for (const DecodedCap& c : rec.regs) {
      w.Str(c.name);
      w.Bool(c.tag);
      w.Bool(c.sealed);
      w.U32(c.cursor);
      w.U32(c.base);
      w.U32(c.top);
      w.Str(c.perms);
      w.I32(c.otype);
    }
    w.U32(static_cast<uint32_t>(rec.call_stack.size()));
    for (int c : rec.call_stack) {
      w.I32(c);
    }
    w.U32(rec.trusted_depth);
    const HeapProvenance& p = rec.provenance;
    w.Bool(p.known);
    w.U32(p.site_id);
    w.I32(p.compartment);
    w.U64(p.seq);
    w.U64(p.allocated_at);
    w.U32(p.size);
    w.U32(p.quota);
    w.U8(static_cast<uint8_t>(p.state));
    w.I32(p.freed_by);
    w.U64(p.freed_at);
    // Scene blobs are themselves serialized machine states; including them
    // makes the snapshot verify double as a scene-determinism check.
    w.Blob(rec.scene);
  }
  auto put_map = [&w](const std::map<int, uint64_t>& m) {
    w.U32(static_cast<uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      w.I32(k);
      w.U64(v);
    }
  };
  put_map(by_cause_);
  put_map(by_compartment_);
  put_map(by_disposition_);
  w.U64(forced_unwinds_);
  w.U64(use_after_free_);
  w.U64(quota_exhaustions_);
  put_map(quota_by_compartment_);
  w.U32(static_cast<uint32_t>(reboots_.size()));
  for (const auto& [comp, times] : reboots_) {
    w.I32(comp);
    w.U32(static_cast<uint32_t>(times.size()));
    for (Cycles t : times) {
      w.U64(t);
    }
  }
  w.U64(total_reboots_);
  w.U32(static_cast<uint32_t>(thread_stacks_.size()));
  for (const auto& stack : thread_stacks_) {
    w.U32(static_cast<uint32_t>(stack.size()));
    for (int c : stack) {
      w.I32(c);
    }
  }
}

void Attach(Machine& machine, ForensicsRecorder* recorder) {
  recorder->SetClock(&machine.clock());
  machine.set_forensics(recorder);
}

}  // namespace cheriot::health

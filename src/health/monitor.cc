#include "src/health/monitor.h"

#include <algorithm>
#include <cstdio>

namespace cheriot::health {

const char* DetectorName(Detector d) {
  switch (d) {
    case Detector::kStuckBoard: return "stuck_board";
    case Detector::kTrapStorm: return "trap_storm";
    case Detector::kQuotaExhaustion: return "quota_exhaustion";
    case Detector::kRevokerBacklog: return "revoker_backlog";
    case Detector::kRebootLoop: return "reboot_loop";
    case Detector::kUseAfterFree: return "use_after_free";
  }
  return "unknown";
}

namespace {

std::string CompartmentNameFor(sim::Board& board, int id) {
  if (id < 0) {
    return "<board>";
  }
  const auto& comps = board.system().boot().compartments;
  if (static_cast<size_t>(id) < comps.size()) {
    return comps[static_cast<size_t>(id)].name;
  }
  return "compartment" + std::to_string(id);
}

std::string U64(uint64_t v) { return std::to_string(v); }

std::string Hex(Address a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", a);
  return buf;
}

}  // namespace

BoardHealth AssessBoard(sim::Board& board, const HealthOptions& options) {
  BoardHealth h;
  h.board = board.index();
  h.now = board.machine().clock().now();
  System& sys = board.system();
  h.traps = sys.switcher().trap_count();
  h.idle_cycles = sys.sched().idle_cycles();
  for (const auto& comp : sys.boot().compartments) {
    h.reboots += comp.reboot_count;
  }
  h.allocations = sys.alloc().allocation_count();
  h.heap_live_bytes = sys.alloc().LiveBytesNative();
  h.heap_quarantined_bytes = sys.alloc().QuarantinedBytesNative();
  h.deadlocked = board.last_result() == System::RunResult::kDeadlock;
  ForensicsRecorder* hr = board.forensics_recorder();
  if (hr != nullptr) {
    h.crash_records = hr->recorded();
    h.forced_unwinds = hr->forced_unwinds();
    h.use_after_free_crashes = hr->use_after_free_crashes();
    h.quota_exhaustions = hr->quota_exhaustions();
  }

  const auto add = [&h](Detector d, int compartment, std::string detail) {
    h.anomalies.push_back({d, compartment, std::move(detail)});
  };

  // Detectors run in fixed order (and per-compartment maps iterate in key
  // order), so the anomaly list is deterministic.
  if (h.deadlocked) {
    add(Detector::kStuckBoard, -1,
        "all threads blocked with no future hardware event at cycle " +
            U64(h.now) + " (idle " + U64(h.idle_cycles) + " cycles)");
  }
  if (h.traps >= options.trap_storm_min_traps && h.now > 0) {
    const double per_mcycle =
        1e6 * static_cast<double>(h.traps) / static_cast<double>(h.now);
    if (per_mcycle > options.trap_storm_per_mcycle) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%.1f traps per Mcycle (%llu traps in %llu cycles, "
                    "threshold %.1f)",
                    per_mcycle, static_cast<unsigned long long>(h.traps),
                    static_cast<unsigned long long>(h.now),
                    options.trap_storm_per_mcycle);
      add(Detector::kTrapStorm, -1, buf);
    }
  }
  if (hr != nullptr) {
    for (const auto& [comp, denials] : hr->quota_exhaustions_by_compartment()) {
      if (denials >= options.quota_exhaustion_min) {
        add(Detector::kQuotaExhaustion, comp,
            CompartmentNameFor(board, comp) + " denied " + U64(denials) +
                " allocations on an exhausted quota");
      }
    }
  }
  if (h.heap_quarantined_bytes > options.revoker_backlog_bytes) {
    add(Detector::kRevokerBacklog, -1,
        U64(h.heap_quarantined_bytes) +
            " bytes in quarantine awaiting revocation (threshold " +
            U64(options.revoker_backlog_bytes) + ")");
  }
  if (hr != nullptr) {
    for (const auto& [comp, times] : hr->reboots()) {
      for (size_t i = 0;
           i + options.reboot_loop_min <= times.size(); ++i) {
        const Cycles span =
            times[i + options.reboot_loop_min - 1] - times[i];
        if (span <= options.reboot_loop_window) {
          add(Detector::kRebootLoop, comp,
              CompartmentNameFor(board, comp) + " micro-rebooted " +
                  std::to_string(options.reboot_loop_min) + " times within " +
                  U64(span) + " cycles (window " +
                  U64(options.reboot_loop_window) + ")");
          break;
        }
      }
    }
  }
  if (hr != nullptr && hr->use_after_free_crashes() > 0) {
    // The first freed-provenance record names the object and both parties.
    for (const auto& rec : hr->Records()) {
      if (!rec.provenance.known ||
          rec.provenance.state == HeapProvenance::State::kLive) {
        continue;
      }
      add(Detector::kUseAfterFree, rec.compartment,
          CompartmentNameFor(board, rec.compartment) + " faulted at 0x" +
              Hex(rec.fault_address) + " inside a " +
              ProvenanceStateName(rec.provenance.state) + " " +
              U64(rec.provenance.size) + "-byte object allocated by " +
              CompartmentNameFor(board, rec.provenance.compartment) +
              " and freed by " +
              CompartmentNameFor(board, rec.provenance.freed_by) +
              " at cycle " + U64(rec.provenance.freed_at));
      break;
    }
  }
  h.healthy = h.anomalies.empty();
  return h;
}

namespace {

json::Value ProvenanceJson(sim::Board& board, const HeapProvenance& p) {
  json::Object o;
  o["site_id"] = p.site_id;
  o["compartment"] = p.compartment;
  o["compartment_name"] = CompartmentNameFor(board, p.compartment);
  o["seq"] = p.seq;
  o["allocated_at"] = static_cast<uint64_t>(p.allocated_at);
  o["size"] = p.size;
  o["quota"] = p.quota;
  o["state"] = ProvenanceStateName(p.state);
  o["freed_by"] = p.freed_by;
  o["freed_by_name"] = p.freed_by >= 0
                           ? CompartmentNameFor(board, p.freed_by)
                           : std::string("<none>");
  o["freed_at"] = static_cast<uint64_t>(p.freed_at);
  return o;
}

json::Value CrashRecordJson(sim::Board& board, const ForensicsRecorder& rec,
                            const CrashRecord& r) {
  json::Object o;
  o["seq"] = r.seq;
  o["at"] = static_cast<uint64_t>(r.at);
  o["thread"] = r.thread;
  o["thread_name"] = rec.ThreadName(r.thread);
  o["compartment"] = r.compartment;
  o["compartment_name"] = CompartmentNameFor(board, r.compartment);
  o["cause"] = TrapCodeName(r.cause);
  o["fault_address"] = static_cast<uint64_t>(r.fault_address);
  o["disposition"] = DispositionName(r.disposition);
  o["trusted_depth"] = r.trusted_depth;
  json::Array stack;
  for (int comp : r.call_stack) {
    stack.push_back(CompartmentNameFor(board, comp));
  }
  o["call_stack"] = std::move(stack);
  json::Array regs;
  for (const DecodedCap& c : r.regs) {
    json::Object reg;
    reg["name"] = c.name;
    reg["tag"] = c.tag;
    reg["sealed"] = c.sealed;
    reg["cursor"] = static_cast<uint64_t>(c.cursor);
    reg["base"] = static_cast<uint64_t>(c.base);
    reg["top"] = static_cast<uint64_t>(c.top);
    reg["perms"] = c.perms;
    reg["otype"] = c.otype;
    regs.push_back(std::move(reg));
  }
  o["regs"] = std::move(regs);
  if (r.provenance.known) {
    o["provenance"] = ProvenanceJson(board, r.provenance);
  }
  return o;
}

}  // namespace

json::Value HealthReport(sim::Board& board, const HealthOptions& options) {
  const BoardHealth h = AssessBoard(board, options);
  ForensicsRecorder* hr = board.forensics_recorder();
  json::Object doc;
  doc["schema_version"] = kHealthSchemaVersion;
  doc["board"] = h.board;
  doc["label"] =
      hr != nullptr ? hr->label() : "board" + std::to_string(h.board);
  doc["healthy"] = h.healthy;
  doc["now"] = static_cast<uint64_t>(h.now);

  json::Object counters;
  counters["traps"] = h.traps;
  counters["idle_cycles"] = static_cast<uint64_t>(h.idle_cycles);
  counters["reboots"] = h.reboots;
  counters["crash_records"] = h.crash_records;
  counters["forced_unwinds"] = h.forced_unwinds;
  counters["use_after_free_crashes"] = h.use_after_free_crashes;
  counters["quota_exhaustions"] = h.quota_exhaustions;
  counters["allocations"] = h.allocations;
  counters["heap_live_bytes"] = h.heap_live_bytes;
  counters["heap_quarantined_bytes"] = h.heap_quarantined_bytes;
  counters["deadlocked"] = h.deadlocked;
  doc["counters"] = std::move(counters);

  json::Array anomalies;
  for (const Anomaly& a : h.anomalies) {
    json::Object o;
    o["detector"] = DetectorName(a.detector);
    o["compartment"] = a.compartment;
    o["compartment_name"] = CompartmentNameFor(board, a.compartment);
    o["detail"] = a.detail;
    anomalies.push_back(std::move(o));
  }
  doc["anomalies"] = std::move(anomalies);

  if (hr != nullptr) {
    json::Array records;
    for (const CrashRecord& r : hr->Records()) {
      records.push_back(CrashRecordJson(board, *hr, r));
    }
    doc["crash_records"] = std::move(records);
    doc["crash_records_dropped"] = hr->dropped();
    json::Object reboots;
    for (const auto& [comp, times] : hr->reboots()) {
      json::Array ts;
      for (Cycles t : times) {
        ts.push_back(static_cast<uint64_t>(t));
      }
      reboots[CompartmentNameFor(board, comp)] = std::move(ts);
    }
    doc["reboots"] = std::move(reboots);
  }
  return doc;
}

json::Value FleetHealthReport(sim::Fleet& fleet,
                              const HealthOptions& options) {
  json::Object doc;
  doc["schema_version"] = kHealthSchemaVersion;
  json::Array boards;
  uint64_t total_traps = 0;
  uint64_t total_crashes = 0;
  uint64_t total_reboots = 0;
  int unhealthy = 0;
  std::map<std::string, uint64_t> anomaly_counts;
  for (size_t i = 0; i < fleet.size(); ++i) {
    sim::Board& b = fleet.board(i);
    const BoardHealth h = AssessBoard(b, options);
    total_traps += h.traps;
    total_crashes += h.crash_records;
    total_reboots += h.reboots;
    if (!h.healthy) {
      ++unhealthy;
    }
    for (const Anomaly& a : h.anomalies) {
      ++anomaly_counts[DetectorName(a.detector)];
    }
    boards.push_back(HealthReport(b, options));
  }
  json::Object fl;
  fl["boards"] = static_cast<uint64_t>(fleet.size());
  fl["now"] = static_cast<uint64_t>(fleet.Now());
  fl["healthy_boards"] = static_cast<uint64_t>(fleet.size()) -
                         static_cast<uint64_t>(unhealthy);
  fl["unhealthy_boards"] = unhealthy;
  fl["total_traps"] = total_traps;
  fl["total_crash_records"] = total_crashes;
  fl["total_reboots"] = total_reboots;
  json::Object counts;
  for (const auto& [name, n] : anomaly_counts) {
    counts[name] = n;
  }
  fl["anomaly_counts"] = std::move(counts);
  doc["fleet"] = std::move(fl);
  doc["boards"] = std::move(boards);
  return doc;
}

std::string CrashDumpText(const ForensicsRecorder& recorder) {
  std::string out;
  char buf[256];
  const auto records = recorder.Records();
  std::snprintf(buf, sizeof(buf), "# %s: %zu crash record(s), %llu dropped\n",
                recorder.label().empty() ? "forensics"
                                         : recorder.label().c_str(),
                records.size(),
                static_cast<unsigned long long>(recorder.dropped()));
  out += buf;
  for (const CrashRecord& r : records) {
    std::snprintf(buf, sizeof(buf),
                  "\n=== crash %llu @ cycle %llu ===\n",
                  static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(r.at));
    out += buf;
    out += "thread      : " + recorder.ThreadName(r.thread) + " (" +
           std::to_string(r.thread) + ")\n";
    out += "compartment : " + recorder.CompartmentName(r.compartment) + " (" +
           std::to_string(r.compartment) + ")\n";
    out += std::string("cause       : ") + TrapCodeName(r.cause) + "\n";
    out += "fault addr  : 0x" + Hex(r.fault_address) + "\n";
    out += std::string("disposition : ") + DispositionName(r.disposition) +
           "\n";
    out += "trusted depth: " + std::to_string(r.trusted_depth) + "\n";
    out += "call stack  : ";
    if (r.call_stack.empty()) {
      out += "<entry>";
    } else {
      for (size_t i = 0; i < r.call_stack.size(); ++i) {
        if (i > 0) {
          out += " -> ";
        }
        out += recorder.CompartmentName(r.call_stack[i]);
      }
    }
    out += "\n";
    out += "registers   :\n";
    for (const DecodedCap& c : r.regs) {
      std::snprintf(buf, sizeof(buf),
                    "  %-4s tag=%d sealed=%d cursor=0x%s [0x%s..0x%s) "
                    "perms=%s otype=%d\n",
                    c.name.c_str(), c.tag ? 1 : 0, c.sealed ? 1 : 0,
                    Hex(c.cursor).c_str(), Hex(c.base).c_str(),
                    Hex(c.top).c_str(),
                    c.perms.empty() ? "-" : c.perms.c_str(), c.otype);
      out += buf;
    }
    if (r.provenance.known) {
      const HeapProvenance& p = r.provenance;
      std::snprintf(buf, sizeof(buf),
                    "provenance  : site 0x%08x, %u bytes allocated by %s "
                    "(seq %llu) at cycle %llu, quota %u, state %s",
                    p.site_id, p.size,
                    recorder.CompartmentName(p.compartment).c_str(),
                    static_cast<unsigned long long>(p.seq),
                    static_cast<unsigned long long>(p.allocated_at), p.quota,
                    ProvenanceStateName(p.state));
      out += buf;
      if (p.freed_by >= 0) {
        std::snprintf(buf, sizeof(buf), ", freed by %s at cycle %llu",
                      recorder.CompartmentName(p.freed_by).c_str(),
                      static_cast<unsigned long long>(p.freed_at));
        out += buf;
      }
      out += "\n";
    } else {
      out += "provenance  : fault address is not heap-attributable\n";
    }
  }
  return out;
}

}  // namespace cheriot::health

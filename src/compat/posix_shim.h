// POSIX-flavoured compatibility wrappers (P5): malloc/free against the
// compartment's *default allocation capability* (§3.2.2 "For compatibility
// we provide malloc and free which use, if extant, the compartment's default
// allocation capability") plus tiny string/time helpers that operate on
// guest memory through capabilities.
#ifndef SRC_COMPAT_POSIX_SHIM_H_
#define SRC_COMPAT_POSIX_SHIM_H_

#include "src/firmware/image.h"
#include "src/runtime/compartment_ctx.h"

namespace cheriot::compat {

// The conventional name of a compartment's default allocation capability.
inline constexpr char kDefaultAllocCapName[] = "__default_malloc_capability";

// Declares a default allocation capability for the compartment and imports
// the allocator APIs.
void UseMalloc(ImageBuilder& image, const std::string& compartment,
               uint32_t quota_bytes);

// malloc/free/calloc using the default allocation capability; Malloc returns
// an untagged capability on failure (check with .tag()).
Capability Malloc(CompartmentCtx& ctx, Word size);
Capability Calloc(CompartmentCtx& ctx, Word count, Word size);
Status Free(CompartmentCtx& ctx, const Capability& ptr);

// mem*/str* over guest memory.
void Memcpy(CompartmentCtx& ctx, const Capability& dst, const Capability& src,
            Word len);
void Memset(CompartmentCtx& ctx, const Capability& dst, uint8_t value,
            Word len);
int Memcmp(CompartmentCtx& ctx, const Capability& a, const Capability& b,
           Word len);
Word Strlen(CompartmentCtx& ctx, const Capability& s, Word max = 4096);

}  // namespace cheriot::compat

#endif  // SRC_COMPAT_POSIX_SHIM_H_

// FreeRTOS-style compatibility wrappers (P5, §3.2): the core OS is not
// FreeRTOS-compatible, but thin wrappers bring familiar task/queue/semaphore
// APIs on top of the native primitives, easing ports of existing code.
//
// Naming follows FreeRTOS conventions (xQueueCreate, vTaskDelay, ...) so
// ported call sites need minimal edits; handles wrap native capabilities.
#ifndef SRC_COMPAT_FREERTOS_SHIM_H_
#define SRC_COMPAT_FREERTOS_SHIM_H_

#include "src/firmware/image.h"
#include "src/runtime/compartment_ctx.h"
#include "src/sync/sync.h"

namespace cheriot::compat {

using TickType_t = Word;
using BaseType_t = int32_t;
inline constexpr BaseType_t pdTRUE = 1;
inline constexpr BaseType_t pdFALSE = 0;
inline constexpr TickType_t portMAX_DELAY = ~0u;
// 1 tick = 1 ms at the 33 MHz evaluation clock.
inline constexpr Cycles kCyclesPerTick = 33'000;

// Adds the library/compartment imports the shim needs ("queue", "semaphore",
// "locks" libraries + scheduler + allocator).
void UseFreeRtosCompat(ImageBuilder& image, const std::string& compartment);

// --- Queues (wrap the native queue library over a heap buffer) ---
struct QueueHandle_t {
  Capability buffer;
  bool valid() const { return buffer.tag(); }
};

QueueHandle_t xQueueCreate(CompartmentCtx& ctx, const Capability& alloc_cap,
                           Word length, Word item_size);
BaseType_t xQueueSend(CompartmentCtx& ctx, QueueHandle_t queue,
                      const Capability& item, TickType_t ticks_to_wait);
BaseType_t xQueueReceive(CompartmentCtx& ctx, QueueHandle_t queue,
                         const Capability& out, TickType_t ticks_to_wait);
Word uxQueueMessagesWaiting(CompartmentCtx& ctx, QueueHandle_t queue);
void vQueueDelete(CompartmentCtx& ctx, const Capability& alloc_cap,
                  QueueHandle_t queue);

// --- Semaphores (binary/counting over a futex word) ---
struct SemaphoreHandle_t {
  Capability word;
  bool valid() const { return word.tag(); }
};

SemaphoreHandle_t xSemaphoreCreateBinary(CompartmentCtx& ctx,
                                         const Capability& alloc_cap);
SemaphoreHandle_t xSemaphoreCreateCounting(CompartmentCtx& ctx,
                                           const Capability& alloc_cap,
                                           Word max_count, Word initial);
BaseType_t xSemaphoreTake(CompartmentCtx& ctx, SemaphoreHandle_t sem,
                          TickType_t ticks_to_wait);
BaseType_t xSemaphoreGive(CompartmentCtx& ctx, SemaphoreHandle_t sem);

// --- Mutexes ---
SemaphoreHandle_t xSemaphoreCreateMutex(CompartmentCtx& ctx,
                                        const Capability& alloc_cap);
BaseType_t xSemaphoreTakeMutex(CompartmentCtx& ctx, SemaphoreHandle_t mutex,
                               TickType_t ticks_to_wait);
BaseType_t xSemaphoreGiveMutex(CompartmentCtx& ctx, SemaphoreHandle_t mutex);

// --- Task utilities ---
void vTaskDelay(CompartmentCtx& ctx, TickType_t ticks);
TickType_t xTaskGetTickCount(CompartmentCtx& ctx);
void taskYIELD(CompartmentCtx& ctx);

// FreeRTOS code commonly brackets critical sections with interrupt toggles;
// CHERIoT forbids direct interrupt control (§2.1), so the shim maps these to
// a mutex — exactly the paper's FreeRTOS-TCP/IP porting change (§5.2).
class CriticalSection {
 public:
  CriticalSection(CompartmentCtx& ctx, SemaphoreHandle_t mutex)
      : ctx_(ctx), mutex_(mutex) {
    xSemaphoreTakeMutex(ctx_, mutex_, portMAX_DELAY);
  }
  ~CriticalSection() { xSemaphoreGiveMutex(ctx_, mutex_); }

 private:
  CompartmentCtx& ctx_;
  SemaphoreHandle_t mutex_;
};

}  // namespace cheriot::compat

#endif  // SRC_COMPAT_FREERTOS_SHIM_H_

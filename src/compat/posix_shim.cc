#include "src/compat/posix_shim.h"

#include <vector>

#include "src/sync/sync.h"

namespace cheriot::compat {

void UseMalloc(ImageBuilder& image, const std::string& compartment,
               uint32_t quota_bytes) {
  image.Compartment(compartment)
      .AllocCap(kDefaultAllocCapName, quota_bytes);
  sync::UseAllocator(image, compartment);
}

Capability Malloc(CompartmentCtx& ctx, Word size) {
  const ImportBinding* def = ctx.FindImport(kDefaultAllocCapName);
  if (def == nullptr) {
    return Capability();  // no default allocation capability declared
  }
  return ctx.HeapAllocate(def->cap, size);
}

Capability Calloc(CompartmentCtx& ctx, Word count, Word size) {
  const uint64_t total = static_cast<uint64_t>(count) * size;
  if (total > 0xFFFFFFFFull) {
    return Capability();
  }
  // The allocator zero-fills (zero-on-free + boot zeroing, §3.1.3), so
  // calloc is just malloc.
  return Malloc(ctx, static_cast<Word>(total));
}

Status Free(CompartmentCtx& ctx, const Capability& ptr) {
  const ImportBinding* def = ctx.FindImport(kDefaultAllocCapName);
  if (def == nullptr) {
    return Status::kPermissionDenied;
  }
  return ctx.HeapFree(def->cap, ptr);
}

void Memcpy(CompartmentCtx& ctx, const Capability& dst, const Capability& src,
            Word len) {
  std::vector<uint8_t> tmp(len);
  ctx.ReadBytes(src, 0, tmp.data(), len);
  ctx.WriteBytes(dst, 0, tmp.data(), len);
}

void Memset(CompartmentCtx& ctx, const Capability& dst, uint8_t value,
            Word len) {
  std::vector<uint8_t> tmp(len, value);
  ctx.WriteBytes(dst, 0, tmp.data(), len);
}

int Memcmp(CompartmentCtx& ctx, const Capability& a, const Capability& b,
           Word len) {
  std::vector<uint8_t> ta(len);
  std::vector<uint8_t> tb(len);
  ctx.ReadBytes(a, 0, ta.data(), len);
  ctx.ReadBytes(b, 0, tb.data(), len);
  for (Word i = 0; i < len; ++i) {
    if (ta[i] != tb[i]) {
      return ta[i] < tb[i] ? -1 : 1;
    }
  }
  return 0;
}

Word Strlen(CompartmentCtx& ctx, const Capability& s, Word max) {
  for (Word i = 0; i < max; ++i) {
    if (ctx.LoadByte(s, i) == 0) {
      return i;
    }
  }
  return max;
}

}  // namespace cheriot::compat

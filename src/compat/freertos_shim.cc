#include "src/compat/freertos_shim.h"

namespace cheriot::compat {

void UseFreeRtosCompat(ImageBuilder& image, const std::string& compartment) {
  sync::UseLocks(image, compartment);
  sync::UseSemaphore(image, compartment);
  sync::UseQueueLibrary(image, compartment);
  sync::UseAllocator(image, compartment);
}

QueueHandle_t xQueueCreate(CompartmentCtx& ctx, const Capability& alloc_cap,
                           Word length, Word item_size) {
  const Capability buf =
      ctx.HeapAllocate(alloc_cap, sync::QueueBufferBytes(item_size, length));
  if (!buf.tag()) {
    return {};
  }
  sync::Queue::Init(ctx, buf, item_size, length);
  return {buf};
}

BaseType_t xQueueSend(CompartmentCtx& ctx, QueueHandle_t queue,
                      const Capability& item, TickType_t ticks_to_wait) {
  sync::Queue q(queue.buffer);
  const Word timeout = ticks_to_wait == portMAX_DELAY
                           ? ~0u
                           : static_cast<Word>(ticks_to_wait * kCyclesPerTick);
  return q.Send(ctx, item, timeout) == Status::kOk ? pdTRUE : pdFALSE;
}

BaseType_t xQueueReceive(CompartmentCtx& ctx, QueueHandle_t queue,
                         const Capability& out, TickType_t ticks_to_wait) {
  sync::Queue q(queue.buffer);
  const Word timeout = ticks_to_wait == portMAX_DELAY
                           ? ~0u
                           : static_cast<Word>(ticks_to_wait * kCyclesPerTick);
  return q.Receive(ctx, out, timeout) == Status::kOk ? pdTRUE : pdFALSE;
}

Word uxQueueMessagesWaiting(CompartmentCtx& ctx, QueueHandle_t queue) {
  return sync::Queue(queue.buffer).Count(ctx);
}

void vQueueDelete(CompartmentCtx& ctx, const Capability& alloc_cap,
                  QueueHandle_t queue) {
  ctx.HeapFree(alloc_cap, queue.buffer);
}

SemaphoreHandle_t xSemaphoreCreateBinary(CompartmentCtx& ctx,
                                         const Capability& alloc_cap) {
  return xSemaphoreCreateCounting(ctx, alloc_cap, 1, 0);
}

SemaphoreHandle_t xSemaphoreCreateCounting(CompartmentCtx& ctx,
                                           const Capability& alloc_cap,
                                           Word max_count, Word initial) {
  (void)max_count;  // the futex-word semaphore is unbounded by design
  const Capability word = ctx.HeapAllocate(alloc_cap, 8);
  if (!word.tag()) {
    return {};
  }
  ctx.StoreWord(word, 0, initial);
  return {word};
}

BaseType_t xSemaphoreTake(CompartmentCtx& ctx, SemaphoreHandle_t sem,
                          TickType_t ticks_to_wait) {
  sync::Semaphore s(sem.word);
  const Word timeout = ticks_to_wait == portMAX_DELAY
                           ? ~0u
                           : static_cast<Word>(ticks_to_wait * kCyclesPerTick);
  return s.Get(ctx, timeout) == Status::kOk ? pdTRUE : pdFALSE;
}

BaseType_t xSemaphoreGive(CompartmentCtx& ctx, SemaphoreHandle_t sem) {
  return sync::Semaphore(sem.word).Put(ctx) == Status::kOk ? pdTRUE : pdFALSE;
}

SemaphoreHandle_t xSemaphoreCreateMutex(CompartmentCtx& ctx,
                                        const Capability& alloc_cap) {
  const Capability word = ctx.HeapAllocate(alloc_cap, 8);
  if (!word.tag()) {
    return {};
  }
  ctx.StoreWord(word, 0, 0);
  return {word};
}

BaseType_t xSemaphoreTakeMutex(CompartmentCtx& ctx, SemaphoreHandle_t mutex,
                               TickType_t ticks_to_wait) {
  sync::Mutex m(mutex.word);
  const Word timeout = ticks_to_wait == portMAX_DELAY
                           ? ~0u
                           : static_cast<Word>(ticks_to_wait * kCyclesPerTick);
  return m.Lock(ctx, timeout) == Status::kOk ? pdTRUE : pdFALSE;
}

BaseType_t xSemaphoreGiveMutex(CompartmentCtx& ctx, SemaphoreHandle_t mutex) {
  sync::Mutex(mutex.word).Unlock(ctx);
  return pdTRUE;
}

void vTaskDelay(CompartmentCtx& ctx, TickType_t ticks) {
  ctx.SleepCycles(static_cast<Cycles>(ticks) * kCyclesPerTick);
}

TickType_t xTaskGetTickCount(CompartmentCtx& ctx) {
  return static_cast<TickType_t>(ctx.Now() / kCyclesPerTick);
}

void taskYIELD(CompartmentCtx& ctx) { ctx.Yield(); }

}  // namespace cheriot::compat

// Umbrella header: the public API of the CHERIoT RTOS reproduction.
//
// Typical usage:
//   cheriot::Machine machine;
//   cheriot::ImageBuilder image("my-firmware");
//   image.Compartment("hello")
//       .Export("entry", [](cheriot::CompartmentCtx& ctx, const auto& args) {
//         ctx.DebugLog("hello from a compartment");
//         return cheriot::StatusCap(cheriot::Status::kOk);
//       });
//   image.Thread("main", /*priority=*/1, /*stack=*/1024, /*frames=*/4,
//                "hello.entry");
//   cheriot::System system(machine, image.Build());
//   system.Boot();
//   system.Run();
#ifndef SRC_RTOS_H_
#define SRC_RTOS_H_

#include "src/base/costs.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/cap/capability.h"
#include "src/firmware/image.h"
#include "src/hw/machine.h"
#include "src/kernel/system.h"
#include "src/loader/loader.h"
#include "src/mem/memory.h"
#include "src/runtime/compartment_ctx.h"
#include "src/runtime/hardening.h"

#endif  // SRC_RTOS_H_

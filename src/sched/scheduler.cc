#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/kernel/schedule_arbiter.h"
#include "src/snap/wire.h"
#include "src/trace/trace.h"

namespace cheriot {

void Scheduler::MakeReady(int thread_id) {
  GuestThread& t = T(thread_id);
  if (t.state == GuestThread::State::kExited) {
    return;
  }
  if (t.state == GuestThread::State::kReady ||
      t.state == GuestThread::State::kRunning) {
    // Already schedulable; ensure presence in a queue happens elsewhere.
  }
  // Remove from futex wait set if present.
  if (t.futex_addr != 0) {
    auto it = futex_waiters_.find(t.futex_addr);
    if (it != futex_waiters_.end()) {
      auto& q = it->second;
      q.erase(std::remove(q.begin(), q.end(), thread_id), q.end());
      if (q.empty()) {
        futex_waiters_.erase(it);
      }
    }
    t.futex_addr = 0;
  }
  if (t.multiwaiter_id >= 0) {
    multiwaiters_[t.multiwaiter_id].waiting_thread = -1;
    t.multiwaiter_id = -1;
  }
  t.wake_at = GuestThread::kNoDeadline;
  if (t.state != GuestThread::State::kReady &&
      t.state != GuestThread::State::kRunning) {
    t.state = GuestThread::State::kReady;
    ready_[t.priority % kPriorities].push_back(thread_id);
    if (trace_ != nullptr) {
      trace_->OnThreadWake(thread_id);
    }
  }
}

void Scheduler::MakeBlocked(int thread_id, Address futex_addr, Cycles wake_at) {
  GuestThread& t = T(thread_id);
  RemoveFromReady(thread_id);
  t.state = GuestThread::State::kBlocked;
  t.futex_addr = futex_addr;
  t.wake_at = wake_at;
  t.timed_out = false;
  t.block_seq = ++block_seq_counter_;
  if (futex_addr != 0) {
    futex_waiters_[futex_addr].push_back(thread_id);
    ++futex_waits_;
  }
  if (trace_ != nullptr) {
    trace_->OnThreadBlock(thread_id, futex_addr);
  }
}

void Scheduler::MakeSleeping(int thread_id, Cycles wake_at) {
  GuestThread& t = T(thread_id);
  RemoveFromReady(thread_id);
  t.state = GuestThread::State::kSleeping;
  t.futex_addr = 0;
  t.wake_at = wake_at;
  if (trace_ != nullptr) {
    trace_->OnThreadSleep(thread_id, wake_at);
  }
}

int Scheduler::PickNext() const {
  for (int p = kPriorities - 1; p >= 0; --p) {
    for (int id : ready_[p]) {
      if (T(id).state == GuestThread::State::kReady) {
        return id;
      }
    }
  }
  return -1;
}

void Scheduler::RoundRobin(int thread_id) {
  auto& q = ready_[T(thread_id).priority % kPriorities];
  auto it = std::find(q.begin(), q.end(), thread_id);
  if (it != q.end()) {
    q.erase(it);
    q.push_back(thread_id);
  }
}

void Scheduler::RemoveFromReady(int thread_id) {
  auto& q = ready_[T(thread_id).priority % kPriorities];
  q.erase(std::remove(q.begin(), q.end(), thread_id), q.end());
}

int Scheduler::FutexWake(Address addr, int count) {
  auto it = futex_waiters_.find(addr);
  int woken = 0;
  // Wake direct waiters first, FIFO in block_seq (the documented contract,
  // src/sync/sync.h). The arbiter may reorder WHICH waiter wakes first —
  // that models the wake racing with late arrivals — but the queue itself
  // must always be monotonic in park order.
  if (it != futex_waiters_.end()) {
    for (size_t i = 1; i < it->second.size(); ++i) {
      CHERIOT_CHECK(T(it->second[i - 1]).block_seq < T(it->second[i]).block_seq,
                    "futex wait queue must be FIFO in park order");
    }
    bool first_pop = true;
    while (woken < count && !it->second.empty()) {
      size_t pick = 0;
      if (first_pop && arbiter_ != nullptr && it->second.size() > 1) {
        // Decision point: which of the queued waiters observes the wake
        // first. Bounded to the four oldest to keep the branching factor
        // small; choice 0 is the FIFO default.
        const int n = static_cast<int>(std::min<size_t>(it->second.size(), 4));
        const int c = arbiter_->Choose(DecisionKind::kWakeOrder, addr, n);
        if (c > 0 && c < n) {
          pick = static_cast<size_t>(c);
        }
      }
      first_pop = false;
      const int id = it->second[pick];
      it->second.erase(it->second.begin() + static_cast<long>(pick));
      GuestThread& t = T(id);
      t.futex_addr = 0;
      t.timed_out = false;
      t.wake_at = GuestThread::kNoDeadline;
      if (t.state == GuestThread::State::kBlocked) {
        t.state = GuestThread::State::kReady;
        ready_[t.priority % kPriorities].push_back(id);
        if (trace_ != nullptr) {
          trace_->OnThreadWake(id);
        }
      }
      ++woken;
    }
    if (it->second.empty()) {
      futex_waiters_.erase(it);
    }
  }
  // Then multiwaiter waiters armed on this address, in slot order (slot ids
  // are assigned at arm time, so this too is creation-order FIFO).
  std::vector<size_t> eligible;
  for (size_t m = 0; m < multiwaiters_.size(); ++m) {
    const auto& mw = multiwaiters_[m];
    if (!mw.live || mw.waiting_thread < 0) {
      continue;
    }
    if (std::find(mw.addrs.begin(), mw.addrs.end(), addr) == mw.addrs.end()) {
      continue;
    }
    eligible.push_back(m);
  }
  if (arbiter_ != nullptr && eligible.size() > 1 && woken < count) {
    // Decision point: which armed multiwaiter completes first.
    const int n = static_cast<int>(std::min<size_t>(eligible.size(), 4));
    const int c = arbiter_->Choose(DecisionKind::kMultiwaiterOrder, addr, n);
    if (c > 0 && c < n) {
      std::rotate(eligible.begin(), eligible.begin() + c,
                  eligible.begin() + c + 1);
    }
  }
  for (size_t e = 0; e < eligible.size() && woken < count; ++e) {
    auto& mw = multiwaiters_[eligible[e]];
    if (mw.waiting_thread < 0) {
      continue;
    }
    const int id = mw.waiting_thread;
    mw.waiting_thread = -1;
    GuestThread& t = T(id);
    t.multiwaiter_id = -1;
    t.timed_out = false;
    t.wake_at = GuestThread::kNoDeadline;
    if (t.state == GuestThread::State::kBlocked) {
      t.state = GuestThread::State::kReady;
      ready_[t.priority % kPriorities].push_back(id);
      if (trace_ != nullptr) {
        trace_->OnThreadWake(id);
      }
    }
    ++woken;
  }
  return woken;
}

int Scheduler::MultiwaiterCreate(int max_events) {
  for (size_t i = 0; i < multiwaiters_.size(); ++i) {
    if (!multiwaiters_[i].live) {
      multiwaiters_[i] = {true, max_events, {}, -1};
      return static_cast<int>(i);
    }
  }
  multiwaiters_.push_back({true, max_events, {}, -1});
  return static_cast<int>(multiwaiters_.size() - 1);
}

Status Scheduler::MultiwaiterDestroy(int mw_id) {
  if (mw_id < 0 || mw_id >= static_cast<int>(multiwaiters_.size()) ||
      !multiwaiters_[mw_id].live) {
    return Status::kInvalidArgument;
  }
  if (multiwaiters_[mw_id].waiting_thread >= 0) {
    return Status::kBusy;
  }
  multiwaiters_[mw_id].live = false;
  return Status::kOk;
}

Status Scheduler::MultiwaiterArm(int mw_id, const std::vector<Address>& addrs) {
  if (mw_id < 0 || mw_id >= static_cast<int>(multiwaiters_.size()) ||
      !multiwaiters_[mw_id].live) {
    return Status::kInvalidArgument;
  }
  if (static_cast<int>(addrs.size()) > multiwaiters_[mw_id].max_events) {
    return Status::kOverflow;
  }
  multiwaiters_[mw_id].addrs = addrs;
  return Status::kOk;
}

void Scheduler::MultiwaiterDisarm(int mw_id) {
  if (mw_id >= 0 && mw_id < static_cast<int>(multiwaiters_.size())) {
    multiwaiters_[mw_id].addrs.clear();
    multiwaiters_[mw_id].waiting_thread = -1;
  }
}

const std::vector<Address>* Scheduler::MultiwaiterAddresses(int mw_id) const {
  if (mw_id < 0 || mw_id >= static_cast<int>(multiwaiters_.size()) ||
      !multiwaiters_[mw_id].live) {
    return nullptr;
  }
  return &multiwaiters_[mw_id].addrs;
}

void Scheduler::BlockOnMultiwaiter(int thread_id, int mw_id, Cycles wake_at) {
  GuestThread& t = T(thread_id);
  RemoveFromReady(thread_id);
  t.state = GuestThread::State::kBlocked;
  t.futex_addr = 0;
  t.multiwaiter_id = mw_id;
  t.wake_at = wake_at;
  t.timed_out = false;
  t.block_seq = ++block_seq_counter_;
  multiwaiters_[mw_id].waiting_thread = thread_id;
  if (trace_ != nullptr) {
    trace_->OnThreadBlock(thread_id, 0);
  }
}

int Scheduler::WakeExpired(Cycles now) {
  int woken = 0;
  for (auto& t : *threads_) {
    if ((t.state == GuestThread::State::kBlocked ||
         t.state == GuestThread::State::kSleeping) &&
        t.wake_at != GuestThread::kNoDeadline && t.wake_at <= now) {
      t.timed_out = (t.state == GuestThread::State::kBlocked);
      if (t.futex_addr != 0) {
        auto it = futex_waiters_.find(t.futex_addr);
        if (it != futex_waiters_.end()) {
          auto& q = it->second;
          q.erase(std::remove(q.begin(), q.end(), t.id), q.end());
          if (q.empty()) {
            futex_waiters_.erase(it);
          }
        }
        t.futex_addr = 0;
      }
      if (t.multiwaiter_id >= 0) {
        multiwaiters_[t.multiwaiter_id].waiting_thread = -1;
        t.multiwaiter_id = -1;
      }
      t.wake_at = GuestThread::kNoDeadline;
      t.state = GuestThread::State::kReady;
      ready_[t.priority % kPriorities].push_back(t.id);
      if (trace_ != nullptr) {
        trace_->OnThreadWake(t.id);
      }
      ++woken;
    }
  }
  return woken;
}

std::optional<Cycles> Scheduler::NextDeadline() const {
  std::optional<Cycles> next;
  for (const auto& t : *threads_) {
    if ((t.state == GuestThread::State::kBlocked ||
         t.state == GuestThread::State::kSleeping) &&
        t.wake_at != GuestThread::kNoDeadline) {
      if (!next || t.wake_at < *next) {
        next = t.wake_at;
      }
    }
  }
  return next;
}

bool Scheduler::AllExited() const {
  for (const auto& t : *threads_) {
    if (t.state != GuestThread::State::kExited) {
      return false;
    }
  }
  return true;
}

void Scheduler::SerializeState(snap::Writer& w) const {
  for (const auto& queue : ready_) {
    w.U32(static_cast<uint32_t>(queue.size()));
    for (int id : queue) {
      w.I32(id);
    }
  }
  w.U32(static_cast<uint32_t>(futex_waiters_.size()));
  for (const auto& [addr, waiters] : futex_waiters_) {
    w.U32(addr);
    w.U32(static_cast<uint32_t>(waiters.size()));
    for (int id : waiters) {
      w.I32(id);
    }
  }
  w.U32(static_cast<uint32_t>(multiwaiters_.size()));
  for (const Multiwaiter& mw : multiwaiters_) {
    w.Bool(mw.live);
    w.I32(mw.max_events);
    w.U32(static_cast<uint32_t>(mw.addrs.size()));
    for (Address a : mw.addrs) {
      w.U32(a);
    }
    w.I32(mw.waiting_thread);
  }
  for (Address a : irq_futex_addr_) {
    w.U32(a);
  }
  w.U64(idle_cycles_);
  w.U64(block_seq_counter_);
}

void Scheduler::RestoreState(snap::Reader& r) {
  for (auto& queue : ready_) {
    queue.clear();
    const uint32_t n = r.U32();
    for (uint32_t i = 0; i < n; ++i) {
      queue.push_back(r.I32());
    }
  }
  futex_waiters_.clear();
  const uint32_t sets = r.U32();
  for (uint32_t i = 0; i < sets; ++i) {
    const Address addr = r.U32();
    std::deque<int>& waiters = futex_waiters_[addr];
    const uint32_t n = r.U32();
    for (uint32_t j = 0; j < n; ++j) {
      waiters.push_back(r.I32());
    }
  }
  multiwaiters_.clear();
  multiwaiters_.resize(r.U32());
  for (Multiwaiter& mw : multiwaiters_) {
    mw.live = r.Bool();
    mw.max_events = r.I32();
    mw.addrs.resize(r.U32());
    for (Address& a : mw.addrs) {
      a = r.U32();
    }
    mw.waiting_thread = r.I32();
  }
  for (Address& a : irq_futex_addr_) {
    a = r.U32();
  }
  idle_cycles_ = r.U64();
  block_seq_counter_ = r.U64();
}

}  // namespace cheriot

// The scheduler (§3.1.4): priority-based preemptive scheduling policy, the
// least-privilege futex primitive (§3.2.4), multiwaiters, and interrupt
// futexes. Pure policy: fiber switching is performed by the kernel (System)
// acting as the switcher's context-switch path.
//
// Trust model: the scheduler can refuse to run threads (availability) but
// never touches thread register state or stacks (§3.1.4).
#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/hw/devices.h"
#include "src/kernel/guest_thread.h"

namespace cheriot {

class ScheduleArbiter;

namespace trace {
class TraceRecorder;
}  // namespace trace

namespace snap {
class Writer;
class Reader;
}  // namespace snap

class Scheduler {
 public:
  static constexpr int kPriorities = 16;

  explicit Scheduler(std::vector<GuestThread>* threads) : threads_(threads) {}

  // --- Ready-queue management ---
  void MakeReady(int thread_id);
  void MakeBlocked(int thread_id, Address futex_addr, Cycles wake_at);
  void MakeSleeping(int thread_id, Cycles wake_at);
  // Picks the highest-priority ready thread (round-robin within a priority);
  // returns -1 if none. Does not dequeue.
  int PickNext() const;
  // Rotates thread_id to the back of its priority level (timeslice expiry).
  void RoundRobin(int thread_id);
  void RemoveFromReady(int thread_id);

  // --- Futex (§3.2.4): compare-and-wait is evaluated by the caller (it
  // holds the load-permission capability); the scheduler only parks and
  // wakes. Returns the number of threads woken.
  int FutexWake(Address addr, int count);
  // Wakes every waiter on `addr` marking them timed-out=false; used by
  // multiwaiter-aware wakes as well.

  // --- Multiwaiter (§3.2.4) ---
  int MultiwaiterCreate(int max_events);
  Status MultiwaiterDestroy(int mw_id);
  // Arms the multiwaiter; the caller then blocks. Any FutexWake on one of
  // the addresses readies the thread.
  Status MultiwaiterArm(int mw_id, const std::vector<Address>& addrs);
  void MultiwaiterDisarm(int mw_id);
  const std::vector<Address>* MultiwaiterAddresses(int mw_id) const;
  void BlockOnMultiwaiter(int thread_id, int mw_id, Cycles wake_at);

  // --- Time ---
  // Wakes sleepers/timed-out waiters whose deadline passed. Returns number
  // woken.
  int WakeExpired(Cycles now);
  // Earliest pending deadline among sleeping/blocked threads.
  std::optional<Cycles> NextDeadline() const;

  // --- Interrupt futexes: one word per IRQ line, living in the scheduler's
  // compartment globals; the kernel bumps them on IRQ delivery.
  void SetInterruptFutexAddress(IrqLine line, Address addr) {
    irq_futex_addr_[static_cast<size_t>(line)] = addr;
  }
  Address InterruptFutexAddress(IrqLine line) const {
    return irq_futex_addr_[static_cast<size_t>(line)];
  }

  // --- Idle accounting (drives the Fig. 7 CPU-load measurement) ---
  void AddIdleCycles(Cycles c) { idle_cycles_ += c; }
  Cycles idle_cycles() const { return idle_cycles_; }
  // Total futex block operations. Native-only observability counter (fleet
  // metrics time-series); NOT serialized — restore replays regenerate it.
  uint64_t futex_waits() const { return futex_waits_; }

  bool AllExited() const;

  // Flight recorder for wake/sleep/block events; null when tracing is off.
  // Set by System::Boot when a recorder is attached to the machine.
  void set_trace(trace::TraceRecorder* recorder) { trace_ = recorder; }

  // Schedule-exploration arbiter (src/kernel/schedule_arbiter.h); null in
  // normal operation. Consulted for wake-order and multiwaiter-completion
  // choices in FutexWake. A host handle like trace_: never snapshotted.
  void set_arbiter(ScheduleArbiter* arbiter) { arbiter_ = arbiter; }

  // Snapshot save/restore (DESIGN.md §10): queues, wait sets, multiwaiter
  // table (including dead slots — indices are guest-visible ids) and idle
  // accounting. threads_/trace_ are host handles owned by the System.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

 private:
  GuestThread& T(int id) { return (*threads_)[id]; }
  const GuestThread& T(int id) const { return (*threads_)[id]; }

  std::vector<GuestThread>* threads_;
  std::array<std::deque<int>, kPriorities> ready_;
  // Futex wait sets: address -> waiting thread ids (FIFO).
  std::map<Address, std::deque<int>> futex_waiters_;
  struct Multiwaiter {
    bool live = false;
    int max_events = 0;
    std::vector<Address> addrs;
    int waiting_thread = -1;
  };
  std::vector<Multiwaiter> multiwaiters_;
  std::array<Address, static_cast<size_t>(IrqLine::kCount)> irq_futex_addr_{};
  Cycles idle_cycles_ = 0;
  uint64_t futex_waits_ = 0;
  // Source of GuestThread::block_seq stamps; monotonic over the machine's
  // life and serialized so FIFO wake order is pinned across snapshot/restore.
  uint64_t block_seq_counter_ = 0;
  trace::TraceRecorder* trace_ = nullptr;
  ScheduleArbiter* arbiter_ = nullptr;
};

}  // namespace cheriot

#endif  // SRC_SCHED_SCHEDULER_H_

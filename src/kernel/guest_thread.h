// A guest thread: a statically-created schedulable entity with a simulated
// stack, register state and a trusted stack (§3). Execution state is hosted
// on a ucontext fiber so the whole system runs deterministically on one host
// thread.
#ifndef SRC_KERNEL_GUEST_THREAD_H_
#define SRC_KERNEL_GUEST_THREAD_H_

#include <ucontext.h>

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/cap/capability.h"

namespace cheriot {

class GuestThread {
 public:
  enum class State : uint8_t {
    kReady,
    kRunning,
    kBlocked,   // on a futex (possibly with timeout)
    kSleeping,  // pure timed sleep
    kExited,
  };

  int id = -1;
  std::string name;
  uint16_t priority = 1;
  State state = State::kReady;

  // --- Simulated stack (grows down; sp/high_water track usage) ---
  Address stack_base = 0;
  uint32_t stack_size = 0;
  Address sp = 0;          // current stack pointer
  Address high_water = 0;  // lowest address dirtied since last zeroing
  Capability stack_cap;    // full-range template (non-global, store-local)

  // --- Trusted stack (switcher-private, in simulated memory) ---
  Address trusted_stack_base = 0;
  uint16_t max_frames = 0;
  uint16_t frame_depth = 0;

  // --- Execution state ---
  int current_compartment = -1;
  // Native mirror of the trusted stack's compartment chain (outermost first,
  // current compartment last), maintained by the switcher at the same choke
  // points as frame_depth. Lets the TCB attribute an operation to the alloc
  // service's *caller* without reading simulated memory (which would tick
  // the clock).
  std::vector<int> compartment_stack;
  bool interrupts_enabled = true;
  // Ephemeral-claim hazard slots (§3.2.5), cleared at each compartment call.
  std::array<Address, 2> hazard_slots{};
  // Compartments this thread must be forcibly unwound out of (§3.2.6 step 2).
  std::set<int> forced_unwind;

  // --- Blocking state ---
  Address futex_addr = 0;  // nonzero while blocked on a futex
  Cycles wake_at = kNoDeadline;
  bool timed_out = false;
  int multiwaiter_id = -1;  // nonzero while blocked on a multiwaiter
  // Monotonic stamp of the last time this thread parked on a futex or
  // multiwaiter. Wait queues are FIFO in this stamp (the documented wake
  // contract, src/sync/sync.h); survives snapshot/restore.
  uint64_t block_seq = 0;

  // --- Entry ---
  int entry_compartment = -1;
  int entry_export = -1;

  // --- Host fiber ---
  ucontext_t context{};
  std::vector<uint8_t> host_stack;
  bool started = false;
  void* tsan_fiber = nullptr;  // ThreadSanitizer fiber handle (TSan builds)

  // --- Accounting ---
  Cycles run_cycles = 0;
  uint32_t compartment_calls = 0;
  // Deepest stack use ever reached, in bytes. Unlike high_water (which the
  // switcher resets when it zeroes the dirty region), this is monotonic over
  // the thread's whole life — it is what the metrics snapshot reports.
  uint32_t peak_stack_bytes = 0;

  static constexpr Cycles kNoDeadline = ~0ull;

  bool Runnable() const { return state == State::kReady; }
};

}  // namespace cheriot

#endif  // SRC_KERNEL_GUEST_THREAD_H_

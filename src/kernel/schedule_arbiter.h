// ScheduleArbiter: the kernel's schedule decision points, exposed as an
// injectable policy interface for systematic concurrency exploration
// (DESIGN.md §12, tools/cheriot_mc).
//
// At every point where the kernel/scheduler makes a choice that is not
// forced by the architecture — deliver a pending IRQ now or at the deferral
// horizon, preempt at quantum expiry or let the thread run on, which of
// several futex waiters to wake first, whether an injectable fault fires —
// the kernel consults the installed arbiter. With no arbiter installed (the
// normal case) every choice takes its default, and the code path is the
// exact pre-arbiter behavior.
//
// Contract:
//  - Choice 0 is ALWAYS the default: an arbiter that returns 0 from every
//    Choose() call reproduces the unarbitered run bit-for-bit.
//  - Choose() must not tick the clock, touch simulated memory, or otherwise
//    perturb guest-visible state (the §8.1 zero-guest-cycle contract; the
//    call sites are all on uncosted paths).
//  - The arbiter is a host-side handle: never serialized into snapshots,
//    installed fresh after Boot()/Restore().
#ifndef SRC_KERNEL_SCHEDULE_ARBITER_H_
#define SRC_KERNEL_SCHEDULE_ARBITER_H_

#include <cstdint>

namespace cheriot {

// What kind of schedule decision is being made. The subject disambiguates
// instances of the same kind (thread id, futex address, pending-IRQ mask).
enum class DecisionKind : uint8_t {
  // Before a synchronous kernel entry (sched.*/alloc.* compartment call)
  // with interrupts enabled: 0 = run on, 1 = preempt to the next ready
  // thread first. Subject: current thread id. This is the classic CHESS
  // preemption point — the caller's read-then-call window.
  kSyncPreempt = 0,
  // FutexWake with >1 direct waiter: which waiter wakes first.
  // 0 = FIFO head (default), i = i-th oldest. Subject: futex address.
  kWakeOrder = 1,
  // FutexWake with >1 eligible armed multiwaiter: which completes first.
  // Subject: futex address.
  kMultiwaiterOrder = 2,
  // Pending IRQs at a guest preemption point: 0 = deliver now (default),
  // 1 = defer delivery for one tick quantum. Subject: pending mask.
  kIrqDelivery = 3,
  // Quantum expiry with another ready thread: 0 = rotate and switch
  // (default), 1 = grant the running thread one more quantum.
  // Subject: current thread id.
  kPreempt = 4,
  // Fault injection (only branched under cheriot_mc --inject-faults):
  // heap_allocate: 0 = allocate normally, 1 = fail as if out of memory.
  kAllocFail = 5,
  // NIC frame delivery: 0 = deliver, 1 = drop the frame. Subject: frame
  // sequence number on this board.
  kNicLoss = 6,
};

const char* DecisionKindName(DecisionKind kind);

class ScheduleArbiter {
 public:
  virtual ~ScheduleArbiter() = default;

  // Picks one of n_choices (>= 2) alternatives at a decision point.
  // Returns a value in [0, n_choices); out-of-range returns are clamped to
  // the default by callers. Must not perturb guest-visible state.
  virtual int Choose(DecisionKind kind, uint32_t subject, int n_choices) = 0;
};

inline const char* DecisionKindName(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kSyncPreempt: return "sync-preempt";
    case DecisionKind::kWakeOrder: return "wake-order";
    case DecisionKind::kMultiwaiterOrder: return "multiwaiter-order";
    case DecisionKind::kIrqDelivery: return "irq-delivery";
    case DecisionKind::kPreempt: return "preempt";
    case DecisionKind::kAllocFail: return "alloc-fail";
    case DecisionKind::kNicLoss: return "nic-loss";
  }
  return "?";
}

}  // namespace cheriot

#endif  // SRC_KERNEL_SCHEDULE_ARBITER_H_

// System: composes the machine, the loader output and the four TCB
// components (switcher, allocator, scheduler — the loader has already erased
// itself by the time Run() starts) and hosts guest threads on deterministic
// fibers. A System is single-threaded at any instant but carries no process-
// global mutable state, so a Fleet may run many Systems on parallel host
// threads (and migrate a System between pool threads across epochs).
#ifndef SRC_KERNEL_SYSTEM_H_
#define SRC_KERNEL_SYSTEM_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/base/check.h"
#include "src/firmware/image.h"
#include "src/hw/machine.h"
#include "src/kernel/guest_thread.h"
#include "src/kernel/schedule_arbiter.h"
#include "src/loader/loader.h"
#include "src/sched/scheduler.h"
#include "src/switcher/switcher.h"
#include "src/token/token.h"

namespace cheriot {

struct SystemOptions {
  Cycles tick_quantum = 33'000;   // 1 ms scheduler tick at 33 MHz
  Cycles idle_chunk = 1'000'000;  // max idle time-skip per step
  // Idle fast-forward: with no runnable thread, jump the clock straight to
  // the next genuine event (scheduler deadline, revoker completion, pending
  // device delivery) instead of waking at every self-armed quantum-timer
  // deadline. The quantum timer exists only to preempt running threads, so
  // skipping its idle firings is unobservable: fingerprints are bit-identical
  // with this on or off (pinned by tests/fleet_test.cpp). Escape hatch for
  // CI and for bisecting determinism regressions.
  bool fast_forward = true;
};

class System {
 public:
  // Sentinel for NextEventCycle(): no event is scheduled, ever.
  static constexpr Cycles kForever = ~0ull;
  // Augments the image with the TCB service compartments ("alloc", "sched")
  // and the "token" library, then holds it for Boot().
  System(Machine& machine, FirmwareImage image, SystemOptions options = {});
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Runs the loader, initializes the TCB and creates thread fibers.
  void Boot();

  // Cold-boot from a serialized BOOT section (DESIGN.md §10): skips the
  // loader entirely, deserializes the boot-time capability graph and rebinds
  // the host-side handles (CompartmentDef/LibraryDef pointers, native state
  // objects) against the freshly augmented image by name. The caller then
  // restores the per-subsystem state sections on top. Only valid on a
  // machine with no recorders attached and a system that has not booted.
  void BootFromSnapshot(snap::Reader& r);

  // Snapshot save/restore of kernel guest state (DESIGN.md §10): scheduler-
  // visible scalars, every thread's guest-architectural fields, and the
  // compartments' mutable micro-reboot bookkeeping (kept here so the BOOT
  // section stays byte-identical over a board's lifetime). Host fiber state
  // (ucontext, host_stack, tsan_fiber) is never serialized — restarted
  // threads are reconstructed by replay or start cold.
  void SerializeState(snap::Writer& w) const;
  void RestoreState(snap::Reader& r);

  // Runs until every thread exits, the cycle budget is exhausted, or the
  // system deadlocks (all threads blocked with no pending event).
  enum class RunResult { kAllExited, kBudgetExhausted, kDeadlock, kStopped };
  RunResult Run(Cycles max_cycles = ~0ull);
  // Runs until pred() holds (checked at every idle point / thread switch).
  bool RunUntil(const std::function<bool()>& pred, Cycles max_cycles);

  Machine& machine() { return machine_; }
  BootInfo& boot() { return *boot_; }
  Scheduler& sched() { return *sched_; }
  Switcher& switcher() { return *switcher_; }
  Allocator& alloc() { return *alloc_; }
  TokenService& token() { return *token_; }
  const SystemOptions& options() const { return options_; }

  std::vector<GuestThread>& threads() { return threads_; }
  GuestThread& current_thread() {
    // Switcher/ctx call sites must never reach here from the idle loop, where
    // no guest thread is current; indexing threads_[-1] would be silent
    // memory corruption in release builds.
    CHERIOT_CHECK(current_thread_id_ >= 0 &&
                      static_cast<size_t>(current_thread_id_) < threads_.size(),
                  "current_thread() called with no current guest thread");
    return threads_[static_cast<size_t>(current_thread_id_)];
  }
  int current_thread_id() const { return current_thread_id_; }
  Cycles Now() const { return machine_.clock().now(); }

  // The absolute cycle of the earliest thing this system could possibly do:
  // Now() if a thread is runnable or an interrupt is pending (the system is
  // busy), else the earliest of the scheduler's sleep/timeout deadlines, the
  // revoker's sweep completion and any pending device delivery (e.g. an
  // in-flight NIC frame), ignoring the self-armed quantum timer. kForever
  // when every thread is exited or blocked with no deadline and no hardware
  // event is scheduled — the deadlock condition. The fleet's idle
  // fast-forward and adaptive epoch coarsening are built on this query.
  Cycles NextEventCycle() const;

  // --- Kernel internals (used by switcher / ctx / TCB services) ---
  // Preemption point: called from the memory-access hook.
  void PreemptCheck();
  // The current thread has been marked blocked/sleeping; switch away and
  // return when it is scheduled again.
  void SwitchAway();
  // Wakes per FutexWake and preempts if a higher-priority thread woke (or
  // defers the reschedule while interrupts are off).
  int FutexWakeAndPreempt(Address addr, int count);
  // Runs a pending deferred reschedule if the current posture allows it;
  // called by the switcher when it restores an interrupt-enabled posture.
  void CheckDeferredResched();
  // Blocks the current thread on a futex word (already compared by caller).
  Status BlockCurrentOnFutex(Address addr, Cycles timeout_cycles);
  void YieldCurrent();
  void SleepCurrent(Cycles cycles);
  // Blocks the current thread until the revoker completes a sweep (or the
  // absolute-cycle deadline passes). Returns false on timeout. Used by the
  // allocator when an allocation must wait for quarantined memory (§3.1.3).
  bool WaitForRevokerPass(Cycles deadline);

  // Micro-reboot orchestration (§3.2.6). Returns cycles the reboot took.
  Cycles MicroRebootCompartment(int compartment_id);

  // Called by guards to stop the run loop (e.g. test harness hooks).
  void RequestStop() { stop_requested_ = true; }

  bool deadlocked() const { return deadlocked_; }

  // Installs the schedule-exploration arbiter (schedule_arbiter.h); null
  // detaches. Valid after Boot()/restore; mirrored into the scheduler. A
  // host handle like the trace recorder — never serialized.
  void SetArbiter(ScheduleArbiter* arbiter) {
    arbiter_ = arbiter;
    if (sched_ != nullptr) {
      sched_->set_arbiter(arbiter);
    }
  }
  ScheduleArbiter* arbiter() const { return arbiter_; }

  // Sync-preemption decision point: consulted by CompartmentCtx just before
  // a sched.*/alloc.* service call while interrupts are enabled. Choice 1
  // yields to the next ready thread first (the classic read-then-call race
  // window). No-op without an arbiter.
  void MaybeArbiterPreempt();

  // Internal: thread fiber entry.
  void RunThreadBody(int thread_id);
  int StartingThreadId() const;

 private:
  FirmwareImage AugmentWithTcb(FirmwareImage image);
  void CreateThreads();
  void SwitchTo(int thread_id);
  void SwitchToIdle();
  // All fiber switches go through here so AddressSanitizer can be told about
  // the stack change (fiber annotations); `target` is null when switching
  // back to the main context, `from_dying` when the departing fiber exits.
  void FiberSwap(ucontext_t* from, ucontext_t* to, const GuestThread* target,
                 bool from_dying);
  void ArmTimer();
  // Bumps interrupt futex words for pending non-timer IRQs, wakes waiters;
  // handles timer expiry (wake sleepers, rotate quantum). Returns true if a
  // reschedule might be needed.
  bool DeliverPendingIrqs(bool from_guest);

  Machine& machine_;
  SystemOptions options_;
  FirmwareImage image_;
  std::unique_ptr<BootInfo> boot_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<Switcher> switcher_;
  std::unique_ptr<Allocator> alloc_;
  std::unique_ptr<TokenService> token_;
  std::vector<GuestThread> threads_;

  ucontext_t main_context_{};
  // ThreadSanitizer fiber handle of the host thread currently inside Run();
  // re-captured at every Run() entry because a Fleet may step the same System
  // from different pool threads across epochs (never concurrently).
  void* main_tsan_fiber_ = nullptr;
  int current_thread_id_ = -1;
  int starting_thread_id_ = -1;
  // Thread parked by the cycle-transparent run-budget pause in
  // PreemptCheck(); Run() resumes it directly, bypassing the scheduler.
  int paused_thread_id_ = -1;
  bool in_kernel_ = false;
  bool booted_ = false;
  bool need_resched_ = false;
  bool stop_requested_ = false;
  bool deadlocked_ = false;
  Cycles quantum_end_ = 0;
  Cycles run_deadline_ = ~0ull;
  ScheduleArbiter* arbiter_ = nullptr;
  // kIrqDelivery episode tracking: consult the arbiter once per
  // pending-IRQ episode, and defer delivery no further than
  // irq_defer_until_ (unbounded deferral would starve wakes and make the
  // deadlock oracle unsound).
  bool irq_episode_consulted_ = false;
  Cycles irq_defer_until_ = 0;

  friend class Switcher;
  friend class CompartmentCtx;
};

}  // namespace cheriot

#endif  // SRC_KERNEL_SYSTEM_H_

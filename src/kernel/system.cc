#include "src/kernel/system.h"

#include <algorithm>
#include <map>

#include "src/base/costs.h"
#include "src/base/log.h"
#include "src/cov/coverage.h"
#include "src/health/forensics.h"
#include "src/runtime/compartment_ctx.h"
#include "src/snap/wire.h"
#include "src/trace/trace.h"

// AddressSanitizer needs to be told about ucontext fiber switches or it
// reports false stack-use-after-scope errors on every context switch (see
// google/sanitizers#189).
#if defined(__SANITIZE_ADDRESS__)
#define CHERIOT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CHERIOT_ASAN_FIBERS 1
#endif
#endif
#ifdef CHERIOT_ASAN_FIBERS
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer has its own fiber API; without the annotations it attributes
// one fiber's stack accesses to another and reports false races when a Fleet
// runs boards on a thread pool.
#if defined(__SANITIZE_THREAD__)
#define CHERIOT_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CHERIOT_TSAN_FIBERS 1
#endif
#endif
#ifdef CHERIOT_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace cheriot {

namespace {
// ucontext trampolines take no arguments portably; the starting thread id is
// staged in the active System. One System per host thread at any instant
// (Fleet epochs never step the same board concurrently), so thread_local is
// exactly the right scope: parallel boards don't clobber each other's slot.
thread_local System* g_active_system = nullptr;

extern "C" void ThreadTrampoline() {
#ifdef CHERIOT_ASAN_FIBERS
  // Complete the switch that started this fiber.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  System* sys = g_active_system;
  sys->RunThreadBody(sys->StartingThreadId());
}

#ifdef CHERIOT_ASAN_FIBERS
// Stack bounds of the calling host thread, for ASan's fiber bookkeeping when
// swapping back to the main context. Cached per host thread: a Fleet may
// enter Run() from any pool thread, so the bounds captured at Boot() time
// (on the booting thread) would be wrong.
struct HostStackBounds {
  const void* bottom = nullptr;
  size_t size = 0;
};
const HostStackBounds& CurrentHostStackBounds() {
  thread_local HostStackBounds bounds = [] {
    HostStackBounds b;
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* addr = nullptr;
      size_t size = 0;
      pthread_attr_getstack(&attr, &addr, &size);
      pthread_attr_destroy(&attr);
      b.bottom = addr;
      b.size = size;
    }
    return b;
  }();
  return bounds;
}
#endif
}  // namespace

System::System(Machine& machine, FirmwareImage image, SystemOptions options)
    : machine_(machine), options_(options) {
  image_ = AugmentWithTcb(std::move(image));
}

System::~System() {
  if (g_active_system == this) {
    g_active_system = nullptr;
  }
#ifdef CHERIOT_TSAN_FIBERS
  for (auto& t : threads_) {
    if (t.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(t.tsan_fiber);
      t.tsan_fiber = nullptr;
    }
  }
#endif
}

int System::StartingThreadId() const { return starting_thread_id_; }

void System::Boot() {
  boot_ = Loader::Load(machine_, std::move(image_));
  sched_ = std::make_unique<Scheduler>(&threads_);
  switcher_ = std::make_unique<Switcher>(this);
  alloc_ = std::make_unique<Allocator>(this);
  token_ = std::make_unique<TokenService>(this);
  alloc_->Init();
  token_->Init();

  // Interrupt futex words live in the scheduler compartment's globals.
  const int sched_comp = boot_->CompartmentIndex("sched");
  const Address sched_globals = boot_->compartments[sched_comp].globals_base;
  for (size_t i = 0; i < static_cast<size_t>(IrqLine::kCount); ++i) {
    sched_->SetInterruptFutexAddress(static_cast<IrqLine>(i),
                                     sched_globals + 4 * static_cast<Address>(i));
  }

  CreateThreads();
  machine_.memory().SetAccessHook(
      [](void* self) { static_cast<System*>(self)->PreemptCheck(); }, this);
  booted_ = true;

  if (auto* tr = machine_.trace()) {
    // Publish the image's name tables so events stay integer-only and the
    // exporters resolve names at the end; then close the boot attribution
    // bucket — everything from here on is charged to idle or a thread.
    std::vector<std::string> compartments;
    std::vector<std::vector<std::string>> exports;
    for (const auto& c : boot_->compartments) {
      compartments.push_back(c.name);
      std::vector<std::string> names;
      for (const auto& e : c.def->exports) {
        names.push_back(e.name);
      }
      exports.push_back(std::move(names));
    }
    std::vector<std::string> libraries;
    for (const auto& l : boot_->libraries) {
      libraries.push_back(l.name);
    }
    std::vector<std::string> thread_names;
    for (const auto& t : threads_) {
      thread_names.push_back(t.name);
    }
    tr->SetCompartmentNames(std::move(compartments));
    tr->SetExportNames(std::move(exports));
    tr->SetLibraryNames(std::move(libraries));
    tr->SetThreadNames(std::move(thread_names));
    sched_->set_trace(tr);
    tr->OnBootDone();
  }
  if (auto* hr = machine_.forensics()) {
    // Same name publication for the forensics recorder: crash records stay
    // integer-only and the health report resolves names at the end.
    std::vector<std::string> compartments;
    for (const auto& c : boot_->compartments) {
      compartments.push_back(c.name);
    }
    std::vector<std::string> thread_names;
    for (const auto& t : threads_) {
      thread_names.push_back(t.name);
    }
    hr->SetCompartmentNames(std::move(compartments));
    hr->SetThreadNames(std::move(thread_names));
  }
  if (auto* cr = machine_.cov()) {
    // Name tables plus the *static grant tables* the coverage recorder diffs
    // exercise against: MMIO windows, allocation capabilities and sealing
    // keys, all read from native loader state (RawLoadWord for the quota
    // headers) — no guest cycles. Declaration order is import-table order,
    // keeping the export byte-stable.
    std::vector<std::string> compartments;
    std::vector<std::vector<std::string>> exports;
    for (const auto& c : boot_->compartments) {
      compartments.push_back(c.name);
      std::vector<std::string> names;
      for (const auto& e : c.def->exports) {
        names.push_back(e.name);
      }
      exports.push_back(std::move(names));
    }
    std::vector<std::string> libraries;
    std::vector<std::vector<std::string>> lib_exports;
    for (const auto& l : boot_->libraries) {
      libraries.push_back(l.name);
      std::vector<std::string> names;
      for (const auto& e : l.def->exports) {
        names.push_back(e.name);
      }
      lib_exports.push_back(std::move(names));
    }
    std::vector<std::string> thread_names;
    for (const auto& t : threads_) {
      thread_names.push_back(t.name);
    }
    cr->SetCompartmentNames(std::move(compartments));
    cr->SetExportNames(std::move(exports));
    cr->SetLibraryNames(std::move(libraries));
    cr->SetLibraryExportNames(std::move(lib_exports));
    cr->SetThreadNames(std::move(thread_names));
    // Invert the virtual-type-id table once for sealing-key names.
    std::map<uint32_t, std::string> type_names;
    for (const auto& [name, id] : boot_->virtual_type_ids) {
      type_names[id] = name;
    }
    for (size_t ci = 0; ci < boot_->compartments.size(); ++ci) {
      for (const ImportBinding& b : boot_->compartments[ci].imports) {
        switch (b.kind) {
          case ImportBinding::Kind::kMmio:
            cr->AddMmioGrant(static_cast<int>(ci), b.qualified_name,
                             b.cap.base(), b.cap.length(),
                             b.cap.permissions().Has(Permission::kStore));
            break;
          case ImportBinding::Kind::kSealedObject: {
            // Allocation capabilities are sealed quota headers: magic 'ALOC',
            // then limit and used words, then the quota id.
            const Word magic = machine_.memory().RawLoadWord(b.cap.base());
            if (magic == 0x414C4F43) {
              const Word limit =
                  machine_.memory().RawLoadWord(b.cap.base() + 4);
              const Word quota_id =
                  machine_.memory().RawLoadWord(b.cap.base() + 12);
              cr->AddQuotaGrant(quota_id, static_cast<int>(ci),
                                b.qualified_name, limit);
            }
            break;
          }
          case ImportBinding::Kind::kSealingKey: {
            const uint32_t type_id = b.cap.cursor();
            auto it = type_names.find(type_id);
            cr->AddSealingGrant(static_cast<int>(ci),
                                it != type_names.end() ? it->second
                                                       : b.qualified_name,
                                type_id);
            break;
          }
          default:
            break;
        }
      }
    }
  }
}

void System::CreateThreads() {
  threads_.reserve(boot_->threads.size());
  for (size_t i = 0; i < boot_->threads.size(); ++i) {
    const ThreadLayout& layout = boot_->threads[i];
    GuestThread t;
    t.id = static_cast<int>(i);
    t.name = layout.name;
    t.priority = layout.priority;
    t.stack_base = layout.stack_base;
    t.stack_size = layout.stack_size;
    t.sp = layout.stack_base + layout.stack_size;
    t.high_water = t.sp;
    t.stack_cap =
        Capability::RootReadWrite(layout.stack_base,
                                  layout.stack_base + layout.stack_size)
            .WithPermissions(PermissionSet::Stack());
    t.trusted_stack_base = layout.trusted_stack_base;
    t.max_frames = layout.max_frames;
    t.entry_compartment = layout.entry_compartment;
    t.entry_export = layout.entry_export;
    t.host_stack.resize(256 * 1024);
    threads_.push_back(std::move(t));
  }
  for (auto& t : threads_) {
    getcontext(&t.context);
    t.context.uc_stack.ss_sp = t.host_stack.data();
    t.context.uc_stack.ss_size = t.host_stack.size();
    t.context.uc_link = &main_context_;
    makecontext(&t.context, ThreadTrampoline, 0);
#ifdef CHERIOT_TSAN_FIBERS
    t.tsan_fiber = __tsan_create_fiber(0);
#endif
    t.state = GuestThread::State::kSleeping;  // transitions to ready below
    sched_->MakeReady(t.id);
  }
}

void System::RunThreadBody(int thread_id) {
  GuestThread& t = threads_[thread_id];
  try {
    switcher_->InitialCall(t);
  } catch (UnwindException&) {
    LOG_INFO("thread %s unwound out of its entry compartment", t.name.c_str());
  } catch (ForcedUnwindException&) {
    LOG_INFO("thread %s force-unwound", t.name.c_str());
  } catch (TrapException& e) {
    LOG_WARN("thread %s died on unhandled trap: %s", t.name.c_str(), e.what());
  }
  t.state = GuestThread::State::kExited;
  sched_->RemoveFromReady(thread_id);
  const int next = sched_->PickNext();
  if (next >= 0) {
    SwitchTo(next);
  } else {
    SwitchToIdle();
  }
  // Never resumed: the fiber is dead.
}

void System::SwitchTo(int next_id) {
  GuestThread& next = threads_[next_id];
  const int prev = current_thread_id_;
  if (prev == next_id) {
    next.state = GuestThread::State::kRunning;
    return;
  }
  const bool prev_dying =
      prev >= 0 && threads_[prev].state == GuestThread::State::kExited;
  if (prev >= 0 && threads_[prev].state == GuestThread::State::kRunning) {
    threads_[prev].state = GuestThread::State::kReady;
  }
  next.state = GuestThread::State::kRunning;
  current_thread_id_ = next_id;
  quantum_end_ = Now() + options_.tick_quantum;
  ArmTimer();
  if (auto* tr = machine_.trace()) {
    // Before the tick below, so the switch cost is charged to the incoming
    // thread's context.
    tr->OnContextSwitch(prev, next_id);
  }
  if (auto* cr = machine_.cov()) {
    cr->OnContextSwitch(next_id);
  }
  machine_.Tick(cost::kContextSwitch);
  ucontext_t* prev_ctx =
      prev >= 0 ? &threads_[prev].context : &main_context_;
  if (!next.started) {
    next.started = true;
    starting_thread_id_ = next_id;
    g_active_system = this;
  }
  in_kernel_ = false;  // the target resumes in guest context
  FiberSwap(prev_ctx, &next.context, &next, prev_dying);
  // Resumed as `prev`; in_kernel_ was cleared by whoever resumed us.
}

void System::SwitchToIdle() {
  const int prev = current_thread_id_;
  const bool prev_dying =
      threads_[prev].state == GuestThread::State::kExited;
  current_thread_id_ = -1;
  if (auto* tr = machine_.trace()) {
    tr->OnContextSwitch(prev, -1);
  }
  if (auto* cr = machine_.cov()) {
    cr->OnContextSwitch(cov::kCompartmentIdle);
  }
  in_kernel_ = false;
  FiberSwap(&threads_[prev].context, &main_context_, nullptr, prev_dying);
}

void System::FiberSwap(ucontext_t* from, ucontext_t* to,
                       const GuestThread* target, bool from_dying) {
#ifdef CHERIOT_TSAN_FIBERS
  // Null target means "back to the main context" — the fiber of whichever
  // host thread entered Run() this epoch.
  __tsan_switch_to_fiber(target ? target->tsan_fiber : main_tsan_fiber_, 0);
#endif
#ifdef CHERIOT_ASAN_FIBERS
  void* fake_stack = nullptr;
  const void* bottom;
  size_t size;
  if (target) {
    bottom = target->host_stack.data();
    size = target->host_stack.size();
  } else {
    const auto& host = CurrentHostStackBounds();
    bottom = host.bottom;
    size = host.size;
  }
  // A dying fiber passes null so ASan frees its fake stack; it never resumes.
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &fake_stack, bottom,
                                 size);
  swapcontext(from, to);
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#else
  (void)target;
  (void)from_dying;
  swapcontext(from, to);
#endif
}

void System::ArmTimer() {
  Cycles deadline = Now() + options_.tick_quantum;
  if (auto next = sched_->NextDeadline()) {
    deadline = std::min(deadline, *next);
  }
  machine_.timer().SetDeadline(std::max(deadline, Now() + 1));
}

bool System::DeliverPendingIrqs(bool from_guest) {
  bool resched = false;
  auto& irqs = machine_.irqs();
  Memory& mem = machine_.memory();
  static constexpr IrqLine kFutexLines[] = {IrqLine::kRevoker,
                                            IrqLine::kEthernet, IrqLine::kUart};
  for (IrqLine line : kFutexLines) {
    if (!irqs.Pending(line)) {
      continue;
    }
    irqs.Clear(line);
    const Address fa = sched_->InterruptFutexAddress(line);
    if (fa != 0) {
      mem.RawStoreWord(fa, mem.RawLoadWord(fa) + 1);
      machine_.Tick(cost::kLoadWord + cost::kStoreWord);
      if (sched_->FutexWake(fa, 1 << 30) > 0) {
        resched = true;
      }
    }
  }
  if (irqs.Pending(IrqLine::kTimer)) {
    irqs.Clear(IrqLine::kTimer);
    if (sched_->WakeExpired(Now()) > 0) {
      resched = true;
    }
    resched = true;  // quantum may have expired
    ArmTimer();
  }
  return resched;
}

void System::PreemptCheck() {
  if (in_kernel_ || !booted_ || current_thread_id_ < 0) {
    return;
  }
  GuestThread& t = current_thread();
  // Forced unwind (micro-reboot step 2) is delivered at preemption points.
  if (!t.forced_unwind.empty() &&
      t.forced_unwind.count(t.current_compartment) > 0) {
    throw ForcedUnwindException{t.current_compartment};
  }
  // Run-budget pause: hand control back to Run() without touching the
  // scheduler, the quantum, the timer, or the clock. The pause must be
  // invisible to the simulation — if it cost even one cycle, the number of
  // epoch barriers a fleet run takes (which varies with epoch length and
  // fast-forward mode) would leak into guest-visible state and break the
  // fingerprint determinism contract.
  if (Now() >= run_deadline_ || stop_requested_) {
    in_kernel_ = true;
    paused_thread_id_ = t.id;
    FiberSwap(&t.context, &main_context_, nullptr, false);
    in_kernel_ = false;  // resumed by Run(); continue in guest context
    return;
  }
  if (!t.interrupts_enabled || !machine_.irqs().AnyPending()) {
    return;
  }
  // kIrqDelivery decision point: once per pending episode the arbiter may
  // defer delivery by one tick quantum (bounded — unbounded deferral would
  // starve wakes and make the deadlock oracle unsound). Checked before the
  // trap-entry tick so a deferred episode costs nothing until delivery.
  if (arbiter_ != nullptr) {
    if (!irq_episode_consulted_) {
      irq_episode_consulted_ = true;
      uint32_t mask = 0;
      for (size_t i = 0; i < static_cast<size_t>(IrqLine::kCount); ++i) {
        if (machine_.irqs().Pending(static_cast<IrqLine>(i))) {
          mask |= 1u << i;
        }
      }
      if (arbiter_->Choose(DecisionKind::kIrqDelivery, mask, 2) == 1) {
        irq_defer_until_ = Now() + options_.tick_quantum;
      }
    }
    if (Now() < irq_defer_until_) {
      return;
    }
    irq_episode_consulted_ = false;
    irq_defer_until_ = 0;
  }
  in_kernel_ = true;
  machine_.Tick(cost::kTrapEntry);
  const bool resched = DeliverPendingIrqs(/*from_guest=*/true);
  if (resched) {
    const int next = sched_->PickNext();
    if (next >= 0 && next != t.id) {
      const bool higher = threads_[next].priority > t.priority;
      const bool quantum_expired = Now() >= quantum_end_;
      // kPreempt decision point: at quantum expiry (never when a higher-
      // priority thread woke — priority preemption is architectural) the
      // arbiter may grant the running thread one more quantum.
      if (!higher && quantum_expired && arbiter_ != nullptr &&
          arbiter_->Choose(DecisionKind::kPreempt,
                           static_cast<uint32_t>(t.id), 2) == 1) {
        quantum_end_ = Now() + options_.tick_quantum;
      } else if (higher || quantum_expired) {
        machine_.Tick(cost::kSchedule);
        if (quantum_expired) {
          sched_->RoundRobin(t.id);
        }
        SwitchTo(next);
        return;  // in_kernel_ cleared on resume path
      }
    }
  }
  in_kernel_ = false;
}

void System::MaybeArbiterPreempt() {
  if (arbiter_ == nullptr || !booted_ || in_kernel_ || current_thread_id_ < 0) {
    return;
  }
  GuestThread& t = current_thread();
  if (!t.interrupts_enabled) {
    return;  // deferred-interrupt sections are atomic on this single core
  }
  // Only a real decision when another thread is ready to run (the current
  // thread is kRunning, so PickNext() can only name somebody else).
  if (sched_->PickNext() < 0) {
    return;
  }
  if (arbiter_->Choose(DecisionKind::kSyncPreempt,
                       static_cast<uint32_t>(t.id), 2) != 1) {
    return;
  }
  // Yield-equivalent: rotate and hand the core over, exactly as
  // YieldCurrent() would if the guest had called sched.yield here.
  sched_->RoundRobin(t.id);
  const int next = sched_->PickNext();
  if (next >= 0 && next != t.id) {
    SwitchTo(next);
  }
}

void System::SwitchAway() {
  ArmTimer();
  const int next = sched_->PickNext();
  if (next >= 0) {
    SwitchTo(next);
  } else {
    SwitchToIdle();
  }
}

Status System::BlockCurrentOnFutex(Address addr, Cycles timeout_cycles) {
  GuestThread& t = current_thread();
  const Cycles wake_at = timeout_cycles == ~0ull || timeout_cycles == ~0u
                             ? GuestThread::kNoDeadline
                             : Now() + timeout_cycles;
  machine_.Tick(cost::kSchedule / 4);
  sched_->MakeBlocked(t.id, addr, wake_at);
  SwitchAway();
  return t.timed_out ? Status::kTimedOut : Status::kOk;
}

int System::FutexWakeAndPreempt(Address addr, int count) {
  const int woken = sched_->FutexWake(addr, count);
  // A wake from inside a deferred-interrupt section (e.g. the scheduler's
  // own export) must not preempt immediately; the reschedule is deferred to
  // the point where the posture re-enables (§2.1 interrupt posture).
  if (woken > 0) {
    need_resched_ = true;
    CheckDeferredResched();
  }
  return woken;
}

void System::CheckDeferredResched() {
  if (!need_resched_ || current_thread_id_ < 0 || !booted_) {
    return;
  }
  GuestThread& t = current_thread();
  if (!t.interrupts_enabled) {
    return;  // retried when the switcher restores an enabled posture
  }
  need_resched_ = false;
  const int next = sched_->PickNext();
  if (next >= 0 && next != t.id && threads_[next].priority > t.priority) {
    machine_.Tick(cost::kSchedule);
    SwitchTo(next);
  }
}

void System::YieldCurrent() {
  GuestThread& t = current_thread();
  sched_->RoundRobin(t.id);
  const int next = sched_->PickNext();
  if (next >= 0 && next != t.id) {
    SwitchTo(next);
  }
}

void System::SleepCurrent(Cycles cycles) {
  GuestThread& t = current_thread();
  sched_->MakeSleeping(t.id, Now() + std::max<Cycles>(cycles, 1));
  SwitchAway();
}

bool System::WaitForRevokerPass(Cycles deadline) {
  Revoker& revoker = machine_.revoker();
  const uint32_t target = revoker.epoch() + 1;
  while (revoker.epoch() < target) {
    if (Now() >= deadline) {
      return false;
    }
    // Ask the revoker for a completion interrupt, then wait on its interrupt
    // futex — the same pattern guest code uses (§5.3.2).
    revoker.Mmio(12, /*is_store=*/true, 1);
    machine_.Tick(cost::kStoreWord);
    const Address fa = sched_->InterruptFutexAddress(IrqLine::kRevoker);
    const Cycles budget =
        deadline == ~0ull ? ~0ull : deadline - Now();
    BlockCurrentOnFutex(fa, budget);
  }
  return true;
}

Cycles System::MicroRebootCompartment(int compartment_id) {
  const Cycles start = Now();
  CompartmentRuntime& rt = boot_->compartments[compartment_id];
  // Step 1: close the call guard; new entries bounce with kBusy.
  rt.call_guard_closed = true;
  // Step 2: rewind all other threads that are in the compartment.
  switcher_->UnwindThreadsIn(compartment_id, current_thread_id_);
  // Step 3: release all heap memory held under the compartment's quotas.
  for (const auto& binding : rt.imports) {
    if (binding.kind != ImportBinding::Kind::kSealedObject) {
      continue;
    }
    const Capability q = alloc_->UnsealAllocCap(binding.cap);
    if (q.tag()) {
      alloc_->FreeAllForQuota(machine_.memory().LoadWord(q, q.base() + 12));
      machine_.memory().StoreWord(q, q.base() + 8, 0);  // quota whole again
    }
  }
  // Step 4: reset globals from the compile-time snapshot and rebuild the
  // native state object.
  Memory& mem = machine_.memory();
  if (rt.globals_size > 0) {
    std::copy(rt.globals_snapshot.begin(), rt.globals_snapshot.end(),
              mem.raw(rt.globals_base));
    machine_.Tick(cost::kStoreWord * (rt.globals_size / 4 + 1));
  }
  rt.state = rt.def->state_factory ? rt.def->state_factory() : nullptr;
  ++rt.reboot_count;
  // Step 5: reopen the guard.
  rt.call_guard_closed = false;
  rt.last_reboot_at = start;
  rt.last_reboot_duration = Now() - start;
  if (auto* hr = machine_.forensics()) {
    // Reboot-loop detection keys off the guest-cycle timestamps of the last
    // N micro-reboots per compartment.
    hr->OnMicroReboot(compartment_id, start);
  }
  return rt.last_reboot_duration;
}

System::RunResult System::Run(Cycles max_cycles) {
  g_active_system = this;
#ifdef CHERIOT_TSAN_FIBERS
  main_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  run_deadline_ =
      max_cycles == ~0ull ? ~0ull : Now() + max_cycles;
  stop_requested_ = false;
  while (true) {
    if (sched_->AllExited()) {
      return RunResult::kAllExited;
    }
    if (stop_requested_) {
      return RunResult::kStopped;
    }
    if (Now() >= run_deadline_) {
      return RunResult::kBudgetExhausted;
    }
    if (paused_thread_id_ >= 0) {
      // Resume a thread parked by the run-budget pause in PreemptCheck.
      // Bypass the scheduler entirely — no tick, no quantum reset, no trace
      // event — so the pause/resume pair is invisible to the simulation.
      GuestThread& t = threads_[paused_thread_id_];
      paused_thread_id_ = -1;
      g_active_system = this;
      FiberSwap(&main_context_, &t.context, &t, false);
      continue;
    }
    DeliverPendingIrqs(/*from_guest=*/false);
    sched_->WakeExpired(Now());
    const int next = sched_->PickNext();
    if (next >= 0) {
      SwitchTo(next);
      continue;
    }
    if (machine_.irqs().AnyPending()) {
      continue;  // deliver on the next iteration
    }
    // Idle: skip time to the next event, or declare deadlock. The quantum
    // timer we arm ourselves does not count as a future event — with no
    // runnable thread it would only ever re-arm itself.
    const bool has_deadline = sched_->NextDeadline().has_value();
    const bool has_hw_event = machine_.HasFutureEventIgnoringTimer();
    if (!has_deadline && !has_hw_event) {
      deadlocked_ = true;
      LOG_WARN("system deadlock: all threads blocked with no pending event");
      return RunResult::kDeadlock;
    }
    if (run_deadline_ != ~0ull && Now() >= run_deadline_) {
      // IRQ bookkeeping above can tick the clock across the deadline after
      // the top-of-loop check; recheck before computing the idle budget or
      // the subtraction below underflows into an unbounded skip.
      continue;  // the top of the loop returns kBudgetExhausted
    }
    const Cycles budget =
        run_deadline_ == ~0ull ? options_.idle_chunk
                               : std::min<Cycles>(options_.idle_chunk,
                                                  run_deadline_ - Now());
    Cycles limit = std::max<Cycles>(budget, 1);
    if (options_.fast_forward) {
      // Idle fast-forward: jump straight to the next genuine event. The
      // quantum timer armed by ArmTimer is not one — with no runnable thread
      // it would only re-arm itself every tick_quantum — so AdvanceIdle
      // ignores it; if the jump crosses its deadline the interrupt pends
      // once and is delivered at the jump target, which with no thread to
      // wake or preempt changes nothing observable. Every genuine wake
      // source still bounds the jump exactly: scheduler sleep/timeout
      // deadlines here, revoker completion and pending device deliveries
      // inside AdvanceIdle.
      if (auto d = sched_->NextDeadline()) {
        limit = std::min(limit, *d > Now() ? *d - Now() : 1);
      }
    }
    const Cycles skipped = machine_.AdvanceIdle(limit, options_.fast_forward);
    sched_->AddIdleCycles(skipped);
    if (auto* tr = machine_.trace();
        tr != nullptr && options_.fast_forward &&
        skipped >= options_.tick_quantum) {
      // Idle-span event: spans the quantum timer would have chopped. Purely
      // observational — the span is already charged to the idle context.
      tr->OnIdleFastForward(skipped);
    }
  }
}

Cycles System::NextEventCycle() const {
  if (!booted_) {
    return Now();
  }
  if (paused_thread_id_ >= 0) {
    return Now();  // a thread is mid-op in a run-budget pause: busy now
  }
  if (sched_->PickNext() >= 0 || machine_.irqs().AnyPending()) {
    return Now();
  }
  Cycles next = kForever;
  if (auto d = sched_->NextDeadline()) {
    next = std::min(next, *d);
  }
  if (auto h = machine_.NextHardwareEvent()) {
    next = std::min(next, *h);
  }
  return next;
}

bool System::RunUntil(const std::function<bool()>& pred, Cycles max_cycles) {
  const Cycles deadline = Now() + max_cycles;
  while (!pred()) {
    if (Now() >= deadline || sched_->AllExited() || deadlocked_) {
      return pred();
    }
    const Cycles slice = std::min<Cycles>(options_.tick_quantum,
                                          deadline - Now());
    Run(std::max<Cycles>(slice, 1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// TCB service compartments: "alloc" and "sched" entry points, "token" library
// ---------------------------------------------------------------------------

FirmwareImage System::AugmentWithTcb(FirmwareImage image) {
  if (image.compartments.empty() && image.threads.empty()) {
    LOG_WARN("booting an empty firmware image");
  }
  ImageBuilder b(image.name);
  // Re-seat the user image in a builder so we can append.
  FirmwareImage augmented = std::move(image);

  auto arg = [](const std::vector<Capability>& a, size_t i) {
    return i < a.size() ? a[i] : Capability();
  };

  // --- allocator compartment (TCB, trusted for heap memory safety) ---
  CompartmentDef alloc;
  alloc.name = "alloc";
  alloc.code_size = 9 * 1024;  // Table 2: 9 KB
  alloc.globals_size = 56;     // Table 2: 56 B
  alloc.exports.push_back(
      {"heap_allocate",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         // kAllocFail injection point: the arbiter may force this call to
         // fail as if the heap were exhausted (untagged result, nothing
         // allocated) — only branched under cheriot_mc --inject-faults.
         if (arbiter_ != nullptr &&
             arbiter_->Choose(DecisionKind::kAllocFail,
                              arg(a, 1).word(), 2) == 1) {
           return Capability();
         }
         return alloc_->HeapAllocate(ctx, arg(a, 0), arg(a, 1).word(),
                                     arg(a, 2).word());
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"heap_free",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return StatusCap(alloc_->HeapFree(ctx, arg(a, 0), arg(a, 1)));
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"heap_claim",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return StatusCap(alloc_->HeapClaim(ctx, arg(a, 0), arg(a, 1)));
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"heap_can_free",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return WordCap(alloc_->HeapCanFree(ctx, arg(a, 0), arg(a, 1)) ? 1 : 0);
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"quota_remaining",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return WordCap(alloc_->QuotaRemaining(ctx, arg(a, 0)));
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"heap_free_all",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return WordCap(alloc_->HeapFreeAll(ctx, arg(a, 0)));
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"token_key_new",
       [this](CompartmentCtx& ctx, const std::vector<Capability>&) {
         return alloc_->TokenKeyNew(ctx);
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"token_obj_new",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return alloc_->TokenObjNew(ctx, arg(a, 0), arg(a, 1),
                                    arg(a, 2).word());
       },
       256, 6, InterruptPosture::kDisabled});
  alloc.exports.push_back(
      {"token_obj_destroy",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return StatusCap(
             alloc_->TokenObjDestroy(ctx, arg(a, 0), arg(a, 1), arg(a, 2)));
       },
       256, 6, InterruptPosture::kDisabled});
  // The allocator blocks on the revoker's interrupt futex; it imports the
  // revoker device like any other compartment (auditable).
  alloc.mmio_imports.push_back({"revoker", kRevokerMmioBase, kMmioRegionSize,
                                true});
  augmented.compartments.push_back(std::move(alloc));

  // --- scheduler compartment (TCB, trusted for availability only) ---
  CompartmentDef sched;
  sched.name = "sched";
  sched.code_size = 3300 + 300;  // Table 2: 3.3 KB
  sched.globals_size = 472;      // Table 2: 472 B (incl. interrupt futexes)
  sched.exports.push_back(
      {"futex_timed_wait",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         const Capability word = arg(a, 0);
         const Word expected = arg(a, 1).word();
         const Word timeout = arg(a, 2).word();
         // Compare through the caller-supplied capability: the scheduler
         // needs only load permission and does not retain it (§3.2.4).
         Word value;
         try {
           value = machine_.memory().LoadWord(word, word.cursor());
         } catch (TrapException&) {
           return StatusCap(Status::kInvalidArgument);
         }
         if (value != expected) {
           return StatusCap(Status::kWouldBlock);
         }
         return StatusCap(BlockCurrentOnFutex(
             word.cursor(), timeout == ~0u ? ~0ull : timeout));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"futex_wake",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         const Capability word = arg(a, 0);
         if (!word.tag() || word.IsSealed()) {
           return StatusCap(Status::kInvalidArgument);
         }
         const int count = static_cast<int>(arg(a, 1).word());
         return WordCap(static_cast<Word>(
             FutexWakeAndPreempt(word.cursor(), count)));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"yield",
       [this](CompartmentCtx&, const std::vector<Capability>&) {
         YieldCurrent();
         return StatusCap(Status::kOk);
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"sleep",
       [this, arg](CompartmentCtx&, const std::vector<Capability>& a) {
         SleepCurrent(arg(a, 0).word());
         return StatusCap(Status::kOk);
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"interrupt_futex_get",
       [this, arg](CompartmentCtx&, const std::vector<Capability>& a) {
         const auto line = static_cast<IrqLine>(arg(a, 0).word());
         if (static_cast<size_t>(line) >=
             static_cast<size_t>(IrqLine::kCount)) {
           return StatusCap(Status::kInvalidArgument);
         }
         const Address addr = sched_->InterruptFutexAddress(line);
         // Read-only capability to the futex word (least privilege).
         return Capability::RootReadWrite(addr, addr + 4).WithPermissions(
             PermissionSet({Permission::kGlobal, Permission::kLoad}));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"multiwaiter_create",
       [this, arg](CompartmentCtx&, const std::vector<Capability>& a) {
         return WordCap(static_cast<Word>(
             sched_->MultiwaiterCreate(static_cast<int>(arg(a, 0).word()))));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"multiwaiter_wait",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         const int mw = static_cast<int>(arg(a, 0).word());
         const Capability events = arg(a, 1);
         const int count = static_cast<int>(arg(a, 2).word());
         const Word timeout = arg(a, 3).word();
         std::vector<Address> addrs;
         Memory& mem = machine_.memory();
         try {
           for (int i = 0; i < count; ++i) {
             const Address addr =
                 mem.LoadWord(events, events.cursor() + 8 * i);
             const Word expected =
                 mem.LoadWord(events, events.cursor() + 8 * i + 4);
             if (addr < mem.sram_base() || addr + 4 > mem.sram_top()) {
               return StatusCap(Status::kInvalidArgument);
             }
             const Word value = mem.RawLoadWord(addr);
             if (value != expected) {
               return StatusCap(Status::kWouldBlock);
             }
             addrs.push_back(addr);
           }
         } catch (TrapException&) {
           return StatusCap(Status::kInvalidArgument);
         }
         const Status armed = sched_->MultiwaiterArm(mw, addrs);
         if (armed != Status::kOk) {
           return StatusCap(armed);
         }
         GuestThread& t = current_thread();
         const Cycles wake_at =
             timeout == ~0u ? GuestThread::kNoDeadline : Now() + timeout;
         sched_->BlockOnMultiwaiter(t.id, mw, wake_at);
         SwitchAway();
         return StatusCap(t.timed_out ? Status::kTimedOut : Status::kOk);
       },
       256, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"multiwaiter_destroy",
       [this, arg](CompartmentCtx&, const std::vector<Capability>& a) {
         return StatusCap(
             sched_->MultiwaiterDestroy(static_cast<int>(arg(a, 0).word())));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"thread_id",
       [this](CompartmentCtx&, const std::vector<Capability>&) {
         return WordCap(static_cast<Word>(current_thread_id_));
       },
       128, 6, InterruptPosture::kDisabled});
  sched.exports.push_back(
      {"idle_cycles",
       [this](CompartmentCtx&, const std::vector<Capability>&) {
         return WordCap(static_cast<Word>(sched_->idle_cycles()));
       },
       128, 6, InterruptPosture::kDisabled});
  augmented.compartments.push_back(std::move(sched));

  // --- token shared library (fast-path unseal, §3.2.1) ---
  LibraryDef token;
  token.name = "token";
  token.code_size = 256;
  token.exports.push_back(
      {"token_unseal",
       [this, arg](CompartmentCtx& ctx, const std::vector<Capability>& a) {
         return token_->Unseal(arg(a, 0), arg(a, 1));
       },
       64, 6, InterruptPosture::kInherited});
  augmented.libraries.push_back(std::move(token));

  (void)b;
  return augmented;
}

// --- Snapshot save/restore (DESIGN.md §10) ---------------------------------

void System::BootFromSnapshot(snap::Reader& r) {
  CHERIOT_CHECK(!booted_, "BootFromSnapshot on an already-booted system");
  // The cold restore path regenerates no history, so recorders attached now
  // would start from an inconsistent blank; boards that need tracing across
  // a restore use the replay path instead.
  CHERIOT_CHECK(machine_.trace() == nullptr &&
                    machine_.forensics() == nullptr &&
                    machine_.cov() == nullptr,
                "cold snapshot restore forbids attached recorders");
  boot_ = DeserializeBootInfo(r);
  boot_->image = std::move(image_);

  // Rebind host-side handles: the serialized capability graph references the
  // image's native closures only through def/state, which cannot cross a
  // snapshot. Match by position and verify by name — the augmented image is
  // rebuilt by the same deterministic code that produced the snapshot.
  if (boot_->compartments.size() != boot_->image.compartments.size()) {
    throw snap::SnapshotError("snapshot compartment count mismatch");
  }
  for (size_t i = 0; i < boot_->compartments.size(); ++i) {
    CompartmentRuntime& rt = boot_->compartments[i];
    CompartmentDef& def = boot_->image.compartments[i];
    if (rt.name != def.name) {
      throw snap::SnapshotError("snapshot compartment name mismatch: " +
                                rt.name + " vs " + def.name);
    }
    rt.def = &def;
    rt.state = def.state_factory ? def.state_factory() : nullptr;
  }
  if (boot_->libraries.size() != boot_->image.libraries.size()) {
    throw snap::SnapshotError("snapshot library count mismatch");
  }
  for (size_t i = 0; i < boot_->libraries.size(); ++i) {
    LibraryRuntime& rt = boot_->libraries[i];
    LibraryDef& def = boot_->image.libraries[i];
    if (rt.name != def.name) {
      throw snap::SnapshotError("snapshot library name mismatch: " + rt.name +
                                " vs " + def.name);
    }
    rt.def = &def;
  }

  sched_ = std::make_unique<Scheduler>(&threads_);
  switcher_ = std::make_unique<Switcher>(this);
  alloc_ = std::make_unique<Allocator>(this);
  token_ = std::make_unique<TokenService>(this);
  // Init() re-derives the allocator's privileged heap capability and writes
  // the initial heap header / clock ticks; the caller's subsequent section
  // restores (SRAM, CLCK, ALOC) overwrite those effects with saved state.
  alloc_->Init();
  token_->Init();

  const int sched_comp = boot_->CompartmentIndex("sched");
  const Address sched_globals = boot_->compartments[sched_comp].globals_base;
  for (size_t i = 0; i < static_cast<size_t>(IrqLine::kCount); ++i) {
    sched_->SetInterruptFutexAddress(
        static_cast<IrqLine>(i), sched_globals + 4 * static_cast<Address>(i));
  }

  CreateThreads();
  machine_.memory().SetAccessHook(
      [](void* self) { static_cast<System*>(self)->PreemptCheck(); }, this);
  booted_ = true;
}

void System::SerializeState(snap::Writer& w) const {
  w.I32(current_thread_id_);
  w.I32(starting_thread_id_);
  w.I32(paused_thread_id_);
  w.Bool(in_kernel_);
  w.Bool(need_resched_);
  w.Bool(stop_requested_);
  w.Bool(deadlocked_);
  w.U64(quantum_end_);
  w.U64(run_deadline_);

  w.U32(static_cast<uint32_t>(threads_.size()));
  for (const GuestThread& t : threads_) {
    w.U16(t.priority);
    w.U8(static_cast<uint8_t>(t.state));
    w.U32(t.stack_base);
    w.U32(t.stack_size);
    w.U32(t.sp);
    w.U32(t.high_water);
    w.Cap(t.stack_cap);
    w.U32(t.trusted_stack_base);
    w.U16(t.max_frames);
    w.U16(t.frame_depth);
    w.I32(t.current_compartment);
    w.U32(static_cast<uint32_t>(t.compartment_stack.size()));
    for (int c : t.compartment_stack) {
      w.I32(c);
    }
    w.Bool(t.interrupts_enabled);
    w.U32(t.hazard_slots[0]);
    w.U32(t.hazard_slots[1]);
    w.U32(static_cast<uint32_t>(t.forced_unwind.size()));
    for (int c : t.forced_unwind) {  // std::set: deterministic order
      w.I32(c);
    }
    w.U32(t.futex_addr);
    w.U64(t.wake_at);
    w.Bool(t.timed_out);
    w.I32(t.multiwaiter_id);
    w.U64(t.block_seq);
    w.I32(t.entry_compartment);
    w.I32(t.entry_export);
    w.Bool(t.started);
    w.U64(t.run_cycles);
    w.U32(t.compartment_calls);
    w.U32(t.peak_stack_bytes);
  }

  // Mutable micro-reboot bookkeeping lives here (not in the BOOT section) so
  // a long-running board's BOOT section stays byte-identical to cold boot.
  w.U32(static_cast<uint32_t>(boot_->compartments.size()));
  for (const CompartmentRuntime& c : boot_->compartments) {
    w.Bool(c.call_guard_closed);
    w.U32(c.reboot_count);
    w.U64(c.last_reboot_at);
    w.U64(c.last_reboot_duration);
  }
}

void System::RestoreState(snap::Reader& r) {
  current_thread_id_ = r.I32();
  starting_thread_id_ = r.I32();
  paused_thread_id_ = r.I32();
  in_kernel_ = r.Bool();
  need_resched_ = r.Bool();
  stop_requested_ = r.Bool();
  deadlocked_ = r.Bool();
  quantum_end_ = r.U64();
  run_deadline_ = r.U64();

  const uint32_t n_threads = r.U32();
  if (n_threads != threads_.size()) {
    throw snap::SnapshotError("snapshot thread count mismatch");
  }
  for (GuestThread& t : threads_) {
    t.priority = r.U16();
    t.state = static_cast<GuestThread::State>(r.U8());
    t.stack_base = r.U32();
    t.stack_size = r.U32();
    t.sp = r.U32();
    t.high_water = r.U32();
    t.stack_cap = r.Cap();
    t.trusted_stack_base = r.U32();
    t.max_frames = r.U16();
    t.frame_depth = r.U16();
    t.current_compartment = r.I32();
    t.compartment_stack.resize(r.U32());
    for (int& c : t.compartment_stack) {
      c = r.I32();
    }
    t.interrupts_enabled = r.Bool();
    t.hazard_slots[0] = r.U32();
    t.hazard_slots[1] = r.U32();
    t.forced_unwind.clear();
    const uint32_t n_unwind = r.U32();
    for (uint32_t i = 0; i < n_unwind; ++i) {
      t.forced_unwind.insert(r.I32());
    }
    t.futex_addr = r.U32();
    t.wake_at = r.U64();
    t.timed_out = r.Bool();
    t.multiwaiter_id = r.I32();
    t.block_seq = r.U64();
    t.entry_compartment = r.I32();
    t.entry_export = r.I32();
    t.started = r.Bool();
    t.run_cycles = r.U64();
    t.compartment_calls = r.U32();
    t.peak_stack_bytes = r.U32();
  }

  const uint32_t n_comps = r.U32();
  if (n_comps != boot_->compartments.size()) {
    throw snap::SnapshotError("snapshot compartment-state count mismatch");
  }
  for (CompartmentRuntime& c : boot_->compartments) {
    c.call_guard_closed = r.Bool();
    c.reboot_count = r.U32();
    c.last_reboot_at = r.U64();
    c.last_reboot_duration = r.U64();
  }
}

}  // namespace cheriot
